package mega

import (
	"testing"
)

// The facade tests exercise the public API end to end, the way the
// examples and downstream users do.

func TestFacadeReorganize(t *testing.T) {
	g, err := NewGraph(6, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4}, {Src: 4, Dst: 5}, {Src: 5, Dst: 0}}, false)
	if err != nil {
		t.Fatal(err)
	}
	rep, res, err := Reorganize(g, DefaultTraverseOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BandCoverage() != 1 {
		t.Errorf("band coverage = %v, want 1", rep.BandCoverage())
	}
	if res.EdgeCoverageRatio() != 1 {
		t.Errorf("edge coverage = %v, want 1", res.EdgeCoverageRatio())
	}
	if w := AdaptiveWindow(g); w != 2 {
		t.Errorf("adaptive window = %d, want 2", w)
	}
	if lb := RevisitLowerBound(g.Degrees(), 2); lb != 0 {
		t.Errorf("revisit lower bound = %d, want 0 for a cycle at ω=2", lb)
	}
}

func TestFacadeWLSimilarity(t *testing.T) {
	a := CycleGraph(8)
	b := CycleGraph(8)
	if s := WLSimilarity(a, b, 3); s != 1 {
		t.Errorf("identical cycles similarity = %v", s)
	}
	c := PathGraph(8)
	if s := WLSimilarity(a, c, 2); s >= 1 {
		t.Errorf("cycle vs path similarity = %v, want < 1", s)
	}
}

func TestFacadeTrainQuick(t *testing.T) {
	ds, err := GenerateDataset("ZINC", DatasetConfig{TrainSize: 16, ValSize: 8, TestSize: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(ds, TrainOptions{
		Model: "GCN", Engine: EngineMega,
		Dim: 16, Layers: 2, BatchSize: 8, Epochs: 2, Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 2 || res.Sim == nil {
		t.Fatalf("unexpected result %+v", res)
	}
	if res.Stats[1].SimTime <= res.Stats[0].SimTime {
		t.Error("simulated clock should advance")
	}
}

func TestFacadeModelForward(t *testing.T) {
	ds, err := GenerateDataset("CSL", DatasetConfig{TrainSize: 4, ValSize: 0, TestSize: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewMegaContext(ds.Train, MegaOptions{}, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	m := NewGT(ModelConfig{Dim: 16, Layers: 1, Heads: 2, NodeTypes: ds.NumNodeTypes, EdgeTypes: ds.NumEdgeTypes, OutDim: ds.NumClasses})
	out := m.Forward(ctx)
	if out.Rows() != 4 || out.Cols() != ds.NumClasses {
		t.Errorf("forward output %dx%d", out.Rows(), out.Cols())
	}
}

func TestFacadeSimProfiles(t *testing.T) {
	sim := NewSim(GTX1080Config())
	ds, err := GenerateDataset("AQSOL", DatasetConfig{TrainSize: 4, ValSize: 0, TestSize: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewDGLContext(ds.Train, sim, 16)
	if err != nil {
		t.Fatal(err)
	}
	m := NewGatedGCN(ModelConfig{Dim: 16, Layers: 1, NodeTypes: ds.NumNodeTypes, EdgeTypes: ds.NumEdgeTypes, OutDim: 1})
	_ = m.Forward(ctx)
	if sim.TotalCycles() <= 0 {
		t.Error("profiled forward should cost simulated cycles")
	}
}

func TestFacadeExtensions(t *testing.T) {
	rng := NewRand(1)
	g := ErdosRenyiM(rng, 30, 60)

	t.Run("reorder", func(t *testing.T) {
		rg, perm, err := ReorderGraph(g, ReorderRCM)
		if err != nil {
			t.Fatal(err)
		}
		if len(perm) != 30 || rg.NumEdges() != g.NumEdges() {
			t.Error("reorder broke the graph")
		}
		if Bandwidth(rg) <= 0 {
			t.Error("bandwidth should be positive for a non-empty graph")
		}
	})

	t.Run("typed multipath", func(t *testing.T) {
		types := make([]int32, 30)
		for v := 15; v < 30; v++ {
			types[v] = 1
		}
		tg, err := NewTypedGraph(g, types, 2)
		if err != nil {
			t.Fatal(err)
		}
		mr, err := BuildMultiPath(tg, DefaultTraverseOptions())
		if err != nil {
			t.Fatal(err)
		}
		if mr.Coverage() != 1 {
			t.Errorf("multipath coverage = %v, want 1", mr.Coverage())
		}
	})

	t.Run("maintainer", func(t *testing.T) {
		m, err := NewMaintainer(g, DefaultTraverseOptions())
		if err != nil {
			t.Fatal(err)
		}
		added := false
		for u := NodeID(0); u < 30 && !added; u++ {
			for v := u + 1; v < 30; v++ {
				if _, err := m.AddEdge(u, v); err == nil {
					added = true
					break
				}
			}
		}
		if !added {
			t.Skip("graph already complete")
		}
		if m.Rep().BandCoverage() <= 0 {
			t.Error("maintained band collapsed")
		}
	})

	t.Run("drop strategies", func(t *testing.T) {
		res, err := Traverse(g, TraverseOptions{
			EdgeCoverage: 1, DropEdges: 0.2, DropStrategy: DropRedundant, Start: -1, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.DroppedEdges == 0 {
			t.Error("redundant dropping removed nothing")
		}
	})
}

func TestFacadeCheckpointAndServe(t *testing.T) {
	ds, err := GenerateDataset("ZINC", DatasetConfig{TrainSize: 8, ValSize: 4, TestSize: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(ds, TrainOptions{
		Model: "GT", Engine: EngineMega,
		Dim: 16, Layers: 1, Heads: 2, BatchSize: 4, Epochs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.ckpt"
	if err := SaveCheckpointFile(path, res.Checkpoint(ds.Name), res.Model); err != nil {
		t.Fatalf("save: %v", err)
	}
	srv, err := NewServerFromCheckpointFile(path, ServeOptions{MaxBatch: 2})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()
	inst := ds.Val[0]
	first, err := srv.Predict(inst)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	second, err := srv.Predict(inst)
	if err != nil {
		t.Fatalf("second predict: %v", err)
	}
	if first.CacheHit || !second.CacheHit {
		t.Errorf("cache hits: %v then %v, want false then true", first.CacheHit, second.CacheHit)
	}
	if len(first.Output) != 1 {
		t.Errorf("regression output width = %d", len(first.Output))
	}
}
