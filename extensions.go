package mega

import (
	"mega/internal/dynamic"
	"mega/internal/hetero"
	"mega/internal/reorder"
	"mega/internal/traverse"
)

// Extension surface: reordering baselines, heterogeneous multi-path
// layouts, and dynamic path maintenance (see DESIGN.md "extensions").

// ReorderPolicy selects a node-renumbering baseline.
type ReorderPolicy = reorder.Policy

// Reordering policies (GNNAdvisor-style locality baselines, §II-B2).
const (
	ReorderDegree = reorder.DegreeSort
	ReorderBFS    = reorder.BFSOrder
	ReorderRCM    = reorder.RCM
)

// ReorderGraph renumbers g under the policy, returning the relabelled graph
// and the permutation perm[old] = new.
func ReorderGraph(g *Graph, policy ReorderPolicy) (*Graph, []NodeID, error) {
	return reorder.Apply(g, policy)
}

// Bandwidth returns the adjacency bandwidth max|u−v| of a labelling.
func Bandwidth(g *Graph) int { return reorder.Bandwidth(g) }

// Drop strategies for TraverseOptions.DropStrategy.
const (
	// DropRandom removes a uniform random edge fraction (§IV-B5).
	DropRandom = traverse.DropRandom
	// DropRedundant removes high degree-product edges first (the
	// SparseGAT-inspired policy of §IV-B8).
	DropRedundant = traverse.DropRedundant
)

// TypedGraph is a vertex-typed graph for heterogeneous workloads.
type TypedGraph = hetero.TypedGraph

// MultiRep is the HAN-style hierarchical multi-path representation.
type MultiRep = hetero.MultiRep

// NewTypedGraph wraps a graph with per-vertex types.
func NewTypedGraph(g *Graph, nodeType []int32, numTypes int) (*TypedGraph, error) {
	return hetero.NewTypedGraph(g, nodeType, numTypes)
}

// BuildMultiPath traverses each node type into its own path (§IV-B8:
// "multiple paths to cover distinct node types, subsequently merging
// hierarchically").
func BuildMultiPath(tg *TypedGraph, opts TraverseOptions) (*MultiRep, error) {
	return hetero.BuildMultiPath(tg, opts)
}

// Maintainer keeps a path representation current under streaming edge
// updates (the §IV-B8 latency-constrained scenario).
type Maintainer = dynamic.Maintainer

// Repair reports how the Maintainer absorbed one update.
type Repair = dynamic.Repair

// NewMaintainer traverses g once and maintains its representation under
// AddEdge/RemoveEdge.
func NewMaintainer(g *Graph, opts TraverseOptions) (*Maintainer, error) {
	return dynamic.NewMaintainer(g, opts)
}
