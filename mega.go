// Package mega is the public API of this repository: a from-scratch
// reproduction of "MEGA: More Efficient Graph Attention for GNNs"
// (Deng & Rao, ICDCS 2024).
//
// MEGA converts a sparse graph into a path representation during a CPU
// preprocessing pass, so that graph attention becomes banded diagonal
// attention with sequential, coalesced memory access. This package
// re-exports the stable surface of the internal packages:
//
//   - graph construction and generators (Graph, NewGraph, ...);
//   - the traversal preprocessing (Reorganize, TraverseOptions);
//   - the band representation (BandRep);
//   - Weisfeiler-Lehman similarity checking (WLSimilarity);
//   - the GNN models over both attention engines (NewGatedGCN, NewGT,
//     NewDGLContext, NewMegaContext);
//   - dataset generators (GenerateDataset) and the training harness
//     (Train);
//   - the GPU memory simulator used for profiled runs (NewSim);
//   - model checkpointing (SaveCheckpoint, LoadCheckpoint) and the batched
//     inference service with path-representation caching (NewServer).
//
// See examples/quickstart for a five-minute tour.
package mega

import (
	"io"
	"math/rand"

	"mega/internal/band"
	"mega/internal/datasets"
	"mega/internal/gpusim"
	"mega/internal/graph"
	"mega/internal/models"
	"mega/internal/serve"
	"mega/internal/train"
	"mega/internal/traverse"
	"mega/internal/wl"
)

// Graph is an undirected or directed graph in COO format with a lazy CSR
// index.
type Graph = graph.Graph

// Edge is a (src, dst) vertex pair.
type Edge = graph.Edge

// NodeID identifies a vertex.
type NodeID = graph.NodeID

// NewGraph constructs a graph from an edge list.
func NewGraph(numNodes int, edges []Edge, directed bool) (*Graph, error) {
	return graph.New(numNodes, edges, directed)
}

// Generators re-exported for building synthetic workloads.
var (
	ErdosRenyi     = graph.ErdosRenyi
	ErdosRenyiM    = graph.ErdosRenyiM
	BarabasiAlbert = graph.BarabasiAlbert
	CompleteGraph  = graph.Complete
	CycleGraph     = graph.Cycle
	PathGraph      = graph.Path
	RandomTree     = graph.RandomTree
	Circulant      = graph.Circulant
)

// TraverseOptions configures the MEGA preprocessing traversal.
type TraverseOptions = traverse.Options

// TraverseResult is a computed path representation.
type TraverseResult = traverse.Result

// DefaultTraverseOptions returns full-coverage adaptive-window options.
func DefaultTraverseOptions() TraverseOptions { return traverse.DefaultOptions() }

// Traverse runs the objective traversal (the paper's Algorithm 1).
func Traverse(g *Graph, opts TraverseOptions) (*TraverseResult, error) {
	return traverse.Run(g, opts)
}

// BandRep is the banded diagonal-attention representation of a graph.
type BandRep = band.Rep

// Reorganize converts a graph into its path/band representation in one
// call: traversal plus band construction.
func Reorganize(g *Graph, opts TraverseOptions) (*BandRep, *TraverseResult, error) {
	return band.FromGraph(g, opts)
}

// AdaptiveWindow returns the adaptive attention window for a graph.
func AdaptiveWindow(g *Graph) int { return traverse.AdaptiveWindow(g) }

// RevisitLowerBound returns the paper's Σ⌈dᵢ/ω⌉−n bound.
func RevisitLowerBound(degrees []int, omega int) int {
	return traverse.RevisitLowerBound(degrees, omega)
}

// WLSimilarity computes the Weisfeiler-Lehman multiset similarity between
// two graphs after the given number of refinement hops (1.0 = WL-identical).
func WLSimilarity(a, b *Graph, hops int) float64 {
	return wl.GraphSimilarity(a, b, nil, nil, hops)
}

// Dataset is a generated evaluation workload with train/val/test splits.
type Dataset = datasets.Dataset

// DatasetConfig sizes a generated dataset.
type DatasetConfig = datasets.Config

// Instance is one graph sample.
type Instance = datasets.Instance

// Task kinds for datasets.
const (
	TaskRegression     = datasets.TaskRegression
	TaskClassification = datasets.TaskClassification
)

// GenerateDataset builds one of the paper's evaluation datasets by name:
// "ZINC", "AQSOL", "CSL" or "CYCLES".
func GenerateDataset(name string, cfg DatasetConfig) (*Dataset, error) {
	return datasets.Generate(name, cfg)
}

// DatasetNames lists the four evaluation datasets.
func DatasetNames() []string { return datasets.Names() }

// Model is a graph-prediction network runnable over either engine.
type Model = models.Model

// ModelConfig sizes a model.
type ModelConfig = models.Config

// Context carries one batch prepared for a specific attention engine.
type Context = models.Context

// MegaOptions configures MEGA-engine preprocessing.
type MegaOptions = models.MegaOptions

// EngineKind selects the attention engine.
type EngineKind = models.EngineKind

// Engine kinds.
const (
	EngineDGL  = models.EngineDGL
	EngineMega = models.EngineMega
)

// NewGatedGCN constructs the Gated Graph ConvNet configuration.
func NewGatedGCN(cfg ModelConfig) *models.GatedGCN { return models.NewGatedGCN(cfg) }

// NewGT constructs the Graph Transformer configuration.
func NewGT(cfg ModelConfig) *models.GT { return models.NewGT(cfg) }

// NewGAT constructs the Graph Attention Network (Veličković et al., the
// paper's reference [14]) configuration.
func NewGAT(cfg ModelConfig) *models.GAT { return models.NewGAT(cfg) }

// NewDGLContext prepares a batch for the conventional gather/scatter
// engine; sim may be nil to skip profiling.
func NewDGLContext(insts []Instance, sim *Sim, dim int) (*Context, error) {
	return models.NewDGLContext(insts, sim, dim)
}

// NewMegaContext prepares a batch for the banded MEGA engine; sim may be
// nil to skip profiling.
func NewMegaContext(insts []Instance, opts MegaOptions, sim *Sim, dim int) (*Context, error) {
	return models.NewMegaContext(insts, opts, sim, dim)
}

// Sim is the trace-driven GPU memory simulator.
type Sim = gpusim.Sim

// SimConfig describes a simulated device.
type SimConfig = gpusim.Config

// NewSim creates a simulator; use GTX1080Config() for the paper's device.
func NewSim(cfg SimConfig) *Sim { return gpusim.New(cfg) }

// GTX1080Config returns the paper's evaluation GPU.
func GTX1080Config() SimConfig { return gpusim.GTX1080() }

// TrainOptions configures an end-to-end training run.
type TrainOptions = train.Options

// TrainResult is a completed run with per-epoch statistics.
type TrainResult = train.Result

// Train runs end-to-end training of a model configuration on a dataset.
func Train(ds *Dataset, opts TrainOptions) (*TrainResult, error) {
	return train.Run(ds, opts)
}

// Fingerprint is a canonical topology digest: equal iff two graphs
// serialise to identical bytes — the key of the serving path cache.
type Fingerprint = graph.Fingerprint

// PreparedRep is a cached MEGA preprocessing result (traversal + band) for
// one graph, reusable across batches.
type PreparedRep = models.PreparedRep

// PrepareMega runs the MEGA preprocessing for a single graph.
func PrepareMega(g *Graph, opts MegaOptions) (*PreparedRep, error) {
	return models.PrepareMega(g, opts)
}

// NewMegaContextFromReps assembles a MEGA context from precomputed path
// representations (e.g. retrieved from a RepCache by fingerprint).
func NewMegaContextFromReps(insts []Instance, preps []*PreparedRep, sim *Sim, dim int) (*Context, error) {
	return models.NewMegaContextFromReps(insts, preps, sim, dim)
}

// Checkpoint describes a serialised trained model.
type Checkpoint = train.Checkpoint

// NewModel constructs a model by configuration name ("GCN", "GT", "GAT").
func NewModel(name string, cfg ModelConfig) (Model, error) { return train.NewModel(name, cfg) }

// SaveCheckpoint / LoadCheckpoint persist and restore trained models.
func SaveCheckpoint(w io.Writer, meta Checkpoint, model Model) error {
	return train.SaveCheckpoint(w, meta, model)
}

// LoadCheckpoint reads a checkpoint, rebuilding the model it describes.
func LoadCheckpoint(r io.Reader) (Checkpoint, Model, error) { return train.LoadCheckpoint(r) }

// SaveCheckpointFile writes a checkpoint to path.
func SaveCheckpointFile(path string, meta Checkpoint, model Model) error {
	return train.SaveCheckpointFile(path, meta, model)
}

// LoadCheckpointFile reads a checkpoint from path.
func LoadCheckpointFile(path string) (Checkpoint, Model, error) {
	return train.LoadCheckpointFile(path)
}

// Server is the concurrent batched inference service (see internal/serve
// and cmd/megaserve): micro-batched forward passes over a worker pool with
// an LRU path-representation cache and per-stage latency metrics.
type Server = serve.Server

// ServeOptions tunes the inference service.
type ServeOptions = serve.Options

// Prediction is the service's answer for one graph.
type Prediction = serve.Prediction

// RepCache is the fingerprint-keyed LRU over prepared path representations.
type RepCache = serve.RepCache

// NewRepCache creates a path-representation cache bounded to capacity
// entries.
func NewRepCache(capacity int) *RepCache { return serve.NewRepCache(capacity) }

// NewServer starts an inference service around a loaded model. Invalid
// knob combinations (negative MaxWait, ShardWorkers that don't divide 8)
// are rejected with serve.ErrBadOptions instead of silently adjusted.
func NewServer(model Model, meta Checkpoint, opts ServeOptions) (*Server, error) {
	return serve.New(model, meta, opts)
}

// NewServerFromCheckpointFile loads a megatrain checkpoint and serves it.
func NewServerFromCheckpointFile(path string, opts ServeOptions) (*Server, error) {
	return serve.NewFromCheckpointFile(path, opts)
}

// NewServerFromCheckpointDir serves the newest good checkpoint from a
// megatrain checkpoint directory, quarantining corrupt files instead of
// failing (see internal/train.LoadLatestCheckpoint).
func NewServerFromCheckpointDir(dir string, opts ServeOptions) (*Server, error) {
	return serve.NewFromCheckpointDir(dir, opts)
}

// NewRand is a convenience seeded RNG constructor for the generator
// helpers above.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
