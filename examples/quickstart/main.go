// Quickstart: build a graph, reorganise it into MEGA's path representation,
// inspect the band, and compare the simulated memory cost of conventional
// graph attention against banded diagonal attention.
package main

import (
	"fmt"
	"os"

	"mega"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. The demonstration graph of the paper's Figure 3a: seven vertices
	// with an irregular degree distribution.
	g, err := mega.NewGraph(7, []mega.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 5}, {Src: 1, Dst: 2}, {Src: 1, Dst: 3},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 4}, {Src: 3, Dst: 6}, {Src: 5, Dst: 6},
		{Src: 4, Dst: 6},
	}, false)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges, mean degree %.2f\n",
		g.NumNodes(), g.NumEdges(), g.MeanDegree())

	// 2. Reorganise: one CPU preprocessing pass derives the traversal
	// schedule and the banded layout (paper Algorithm 1 + Figure 7).
	rep, res, err := mega.Reorganize(g, mega.DefaultTraverseOptions())
	if err != nil {
		return err
	}
	fmt.Printf("path: %v\n", res.Path)
	fmt.Printf("window ω=%d, revisits=%d (lower bound %d), virtual edges=%d\n",
		res.Window, res.Revisits,
		mega.RevisitLowerBound(g.Degrees(), res.Window), res.VirtualEdges)
	fmt.Printf("band captures %d/%d edges (coverage %.0f%%), expansion %.2fx\n",
		rep.CoveredEdges, rep.TotalEdges, 100*rep.BandCoverage(), rep.Expansion())

	// 3. Structure check: the graph diagonal attention aggregates over is
	// WL-identical to the original at one hop.
	induced, err := rep.InducedGraph(res, false)
	if err != nil {
		return err
	}
	fmt.Printf("WL similarity (1 hop): %.3f\n", mega.WLSimilarity(g, induced, 1))

	// 4. Memory behaviour: replay both access patterns on the simulated
	// GTX 1080 over a realistic training batch (64 molecule-like graphs).
	// The conventional engine gathers rows by node ID; MEGA sweeps the
	// band sequentially.
	ds, err := mega.GenerateDataset("ZINC", mega.DatasetConfig{TrainSize: 64, ValSize: 1, TestSize: 1, Seed: 3})
	if err != nil {
		return err
	}
	for _, engine := range []struct {
		name string
		kind mega.EngineKind
	}{
		{name: "conventional (dgl)", kind: mega.EngineDGL},
		{name: "mega (band)", kind: mega.EngineMega},
	} {
		sim := mega.NewSim(mega.GTX1080Config())
		var ctx *mega.Context
		if engine.kind == mega.EngineMega {
			ctx, err = mega.NewMegaContext(ds.Train, mega.MegaOptions{}, sim, 64)
		} else {
			ctx, err = mega.NewDGLContext(ds.Train, sim, 64)
		}
		if err != nil {
			return err
		}
		model := mega.NewGatedGCN(mega.ModelConfig{
			Dim: 64, Layers: 4,
			NodeTypes: ds.NumNodeTypes, EdgeTypes: ds.NumEdgeTypes, OutDim: 1,
		})
		_ = model.Forward(ctx)
		fmt.Printf("%-20s %8.0f simulated cycles, SM efficiency %.2f, stalls %.2f\n",
			engine.name, sim.TotalCycles(), sim.WeightedSMEfficiency(), sim.WeightedStallPct())
	}
	return nil
}
