// Molecules: train the Gated Graph ConvNet on the ZINC-like molecular
// regression workload under both attention engines and compare convergence
// on the simulated GPU clock — a miniature of the paper's Figure 12
// protocol runnable in under a minute.
package main

import (
	"flag"
	"fmt"
	"os"

	"mega"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "molecules:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("molecules", flag.ContinueOnError)
	trainN := fs.Int("train", 128, "training instances")
	epochs := fs.Int("epochs", 5, "training epochs")
	dim := fs.Int("dim", 32, "hidden dimension")
	model := fs.String("model", "GCN", "model: GCN or GT")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ds, err := mega.GenerateDataset("ZINC", mega.DatasetConfig{
		TrainSize: *trainN, ValSize: *trainN / 4, TestSize: *trainN / 4, Seed: 11,
	})
	if err != nil {
		return err
	}
	fmt.Printf("ZINC-like dataset: %d train / %d val molecules, task %s\n",
		len(ds.Train), len(ds.Val), ds.Task)

	type outcome struct {
		name string
		res  *mega.TrainResult
	}
	var outcomes []outcome
	for _, engine := range []mega.EngineKind{mega.EngineDGL, mega.EngineMega} {
		res, err := mega.Train(ds, mega.TrainOptions{
			Model: *model, Engine: engine,
			Dim: *dim, Layers: 4, Heads: 4,
			BatchSize: 32, LR: 1e-3, Epochs: *epochs, Seed: 1,
			Profile: true,
		})
		if err != nil {
			return err
		}
		outcomes = append(outcomes, outcome{name: engine.String(), res: res})
		fmt.Printf("\n%s engine (%d params):\n", engine, res.Params)
		fmt.Printf("  %6s %14s %12s %12s\n", "epoch", "simTime(ms)", "trainLoss", "valMAE")
		for _, s := range res.Stats {
			fmt.Printf("  %6d %14.3f %12.4f %12.4f\n",
				s.Epoch, s.SimTime.Seconds()*1e3, s.TrainLoss, s.ValMetric)
		}
	}

	dgl, megaRes := outcomes[0].res, outcomes[1].res
	dglFinal := dgl.Stats[len(dgl.Stats)-1]
	megaFinal := megaRes.Stats[len(megaRes.Stats)-1]
	fmt.Printf("\nsimulated epoch-time speedup: %.2fx (dgl %v vs mega %v)\n",
		float64(dglFinal.SimTime)/float64(megaFinal.SimTime),
		dglFinal.SimTime.Round(1e5), megaFinal.SimTime.Round(1e5))
	fmt.Printf("final val MAE: dgl %.4f vs mega %.4f (paper: comparable accuracy)\n",
		dglFinal.ValMetric, megaFinal.ValMetric)
	return nil
}
