// Isomorphism: sweep graph families through the traversal and quantify how
// well the path representation preserves graph structure with the
// Weisfeiler-Lehman test, versus the fully connected graph that global
// attention implies — the paper's Figure 8 protocol as a standalone tool.
package main

import (
	"flag"
	"fmt"
	"os"

	"mega"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "isomorphism:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("isomorphism", flag.ContinueOnError)
	seed := fs.Int64("seed", 4, "random seed")
	maxHops := fs.Int("hops", 4, "maximum WL refinement hops")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := mega.NewRand(*seed)

	families := []struct {
		name string
		g    *mega.Graph
	}{
		{name: "cycle-32", g: mega.CycleGraph(32)},
		{name: "tree-32", g: mega.RandomTree(rng, 32)},
		{name: "er-64-sparse", g: mega.ErdosRenyiM(rng, 64, 100)},
		{name: "er-64-dense", g: mega.ErdosRenyiM(rng, 64, 600)},
		{name: "ba-64", g: mega.BarabasiAlbert(rng, 64, 2)},
	}

	fmt.Printf("%-14s %6s %10s %10s %10s %10s\n",
		"graph", "hops", "path", "path75", "path50", "global")
	for _, fam := range families {
		full, fullRes, err := mega.Reorganize(fam.g, mega.DefaultTraverseOptions())
		if err != nil {
			return err
		}
		part75, part75Res, err := mega.Reorganize(fam.g, mega.TraverseOptions{EdgeCoverage: 0.75, Start: -1})
		if err != nil {
			return err
		}
		part50, part50Res, err := mega.Reorganize(fam.g, mega.TraverseOptions{EdgeCoverage: 0.5, Start: -1})
		if err != nil {
			return err
		}
		global := mega.CompleteGraph(fam.g.NumNodes())
		for hops := 1; hops <= *maxHops; hops++ {
			pFull, err := inducedSim(fam.g, full, fullRes, hops)
			if err != nil {
				return err
			}
			p75, err := inducedSim(fam.g, part75, part75Res, hops)
			if err != nil {
				return err
			}
			p50, err := inducedSim(fam.g, part50, part50Res, hops)
			if err != nil {
				return err
			}
			gSim := mega.WLSimilarity(fam.g, global, hops)
			fmt.Printf("%-14s %6d %10.3f %10.3f %10.3f %10.3f\n",
				fam.name, hops, pFull, p75, p50, gSim)
		}
		fmt.Printf("  (θ=1 expansion %.2fx, revisits %d; θ=0.5 covers %.0f%% of edges)\n",
			full.Expansion(), fullRes.Revisits, 100*part50Res.EdgeCoverageRatio())
	}
	fmt.Println("\nreading: full-coverage paths preserve structure exactly; partial")
	fmt.Println("coverage trades similarity for shorter paths; global attention's")
	fmt.Println("fully connected view shares almost no WL structure with sparse graphs.")
	return nil
}

// inducedSim computes the WL similarity between g and the band-induced
// aggregation graph of a representation.
func inducedSim(g *mega.Graph, rep *mega.BandRep, res *mega.TraverseResult, hops int) (float64, error) {
	induced, err := rep.InducedGraph(res, false)
	if err != nil {
		return 0, err
	}
	return mega.WLSimilarity(g, induced, hops), nil
}
