// Distributed: partition a batched workload across worker counts and
// compare the communication structure of conventional edge-cut partitioning
// against MEGA's path partitioning, then run a live goroutine halo exchange
// to verify the analytical counts — the §IV-B6 analysis as a runnable tool.
package main

import (
	"flag"
	"fmt"
	"os"

	"mega"
	"mega/internal/band"
	"mega/internal/dist"
	"mega/internal/graph"
	"mega/internal/traverse"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "distributed:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("distributed", flag.ContinueOnError)
	graphs := fs.Int("graphs", 32, "member graphs in the batch")
	size := fs.Int("size", 20, "vertices per member graph")
	dim := fs.Int("dim", 64, "embedding dimension")
	layers := fs.Int("layers", 4, "halo-exchange rounds")
	seed := fs.Int64("seed", 9, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Build the workload: a batch of small molecule-like graphs with
	// scrambled node IDs (real node IDs carry no locality).
	rng := mega.NewRand(*seed)
	members := make([]*graph.Graph, *graphs)
	for i := range members {
		members[i] = graph.RandomTree(rng, *size)
	}
	b, err := graph.NewBatch(members)
	if err != nil {
		return err
	}
	perm := graph.RandomPermutation(rng, b.Merged.NumNodes())
	g, err := graph.PermuteNodes(b.Merged, perm)
	if err != nil {
		return err
	}
	rep, tres, err := band.FromGraph(g, traverse.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d graphs, %d total vertices, %d edges; path length %d (ω=%d)\n\n",
		*graphs, g.NumNodes(), g.NumEdges(), rep.Len(), rep.Window)

	fmt.Printf("%4s | %12s %10s %8s | %12s %10s %8s\n",
		"k", "edge msgs", "edge KB", "fanout", "path msgs", "path KB", "fanout")
	for _, k := range []int{2, 4, 8, 16} {
		edge, err := dist.AnalyzeEdgePartition(g, k, *dim)
		if err != nil {
			return err
		}
		path, err := dist.AnalyzePathPartition(rep, k, *dim)
		if err != nil {
			return err
		}
		fmt.Printf("%4d | %12d %10.1f %8d | %12d %10.1f %8d\n",
			k, edge.Messages, float64(edge.Bytes)/1024, edge.MaxFanout,
			path.Messages, float64(path.Bytes)/1024, path.MaxFanout)
	}

	fmt.Printf("\nlive sharded GNN run (k=8, %d layers, goroutine workers):\n", *layers)
	res, err := dist.RunHaloExchange(g, rep, tres, 8, *dim, *layers)
	if err != nil {
		return err
	}
	fmt.Printf("  observed: %d messages, %.1f KB total, max fanout %d\n",
		res.Messages, float64(res.Bytes)/1024, res.MaxFanout)
	ana, err := dist.AnalyzePathPartition(rep, 8, *dim)
	if err != nil {
		return err
	}
	fmt.Printf("  analysis predicts %d messages/layer -> %d over %d layers (observed %d)\n",
		ana.Messages, ana.Messages**layers, *layers, res.Messages)
	fmt.Println("\nreading: edge cuts approach all-to-all as k grows; path chunks talk")
	fmt.Println("only to their two neighbours with fixed-size halos — O(k) messages.")
	return nil
}
