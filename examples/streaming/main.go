// Streaming: serve a trained model while the graph evolves under live edge
// updates — the paper's latency-constrained scenario (§IV-B8) pushed all
// the way through the serving stack. The example trains a tiny GT, starts
// the HTTP service in-process, streams mutation batches through POST
// /update (which repairs the cached path representation incrementally
// instead of re-preprocessing), and then predicts on the mutated graph,
// which must be a cache hit on the repaired representation.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"mega"
	"mega/internal/datasets"
	"mega/internal/graph"
	"mega/internal/models"
	"mega/internal/serve"
	"mega/internal/train"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "streaming:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("streaming", flag.ContinueOnError)
	n := fs.Int("n", 500, "vertices in the evolving graph")
	updates := fs.Int("updates", 200, "edge updates to stream")
	batch := fs.Int("batch", 8, "mutations per /update request")
	seed := fs.Int64("seed", 6, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Train a small checkpoint; the serving layer only needs vocabularies
	// that cover the streamed graph's (all-zero) features.
	ds := datasets.ZINC(datasets.Config{TrainSize: 16, ValSize: 8, TestSize: 1, Seed: 11})
	res, err := train.Run(ds, train.Options{
		Model: "GT", Engine: models.EngineMega,
		Dim: 16, Layers: 1, Heads: 2, BatchSize: 8, Epochs: 1, Seed: 11,
	})
	if err != nil {
		return err
	}
	s, err := serve.New(res.Model, res.Checkpoint(ds.Name), serve.Options{MaxBatch: 4})
	if err != nil {
		return err
	}
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %s at %s\n", ds.Name, base)

	// The evolving graph starts as a scale-free topology. The client keeps
	// its own canonical edge list in the maintainer's successor order —
	// removes compact preserving order, adds append as (min,max) — so its
	// reconstruction of the mutated graph fingerprints identically to the
	// server's published representation.
	rng := mega.NewRand(*seed)
	g := graph.BarabasiAlbert(rng, *n, 3)
	edges := make([][2]int32, g.NumEdges())
	for i := range edges {
		e := g.EdgeAt(i)
		edges[i] = [2]int32{e.Src, e.Dst}
	}
	fmt.Printf("initial graph: %d vertices, %d edges\n\n", *n, len(edges))

	req := serve.UpdateRequest{
		Base: &serve.GraphRequest{NumNodes: *n, Edges: edges},
	}
	var (
		fingerprint                 string
		splices, rebuilds, prefixes int
		total, worst                time.Duration
		batches                     int
	)
	applied := 0
	for applied < *updates {
		var removes, adds [][2]int32
		for len(removes)+len(adds) < *batch && applied+len(removes)+len(adds) < *updates {
			if rng.Intn(5) == 4 && len(edges) > len(removes)+1 {
				e := edges[rng.Intn(len(edges))]
				dup := false
				for _, r := range removes {
					if r == e {
						dup = true
					}
				}
				if !dup {
					removes = append(removes, e)
				}
				continue
			}
			u, v := int32(rng.Intn(*n)), int32(rng.Intn(*n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			pair := [2]int32{u, v}
			present := false
			for _, e := range edges {
				if e == pair || (e[0] == pair[1] && e[1] == pair[0]) {
					present = true
					break
				}
			}
			for _, a := range adds {
				if a == pair {
					present = true
				}
			}
			for _, r := range removes {
				if r == pair || (r[0] == pair[1] && r[1] == pair[0]) {
					present = true
				}
			}
			if !present {
				adds = append(adds, pair)
			}
		}
		req.Remove, req.Add = removes, adds
		start := time.Now()
		var up serve.UpdateResponse
		if err := postJSON(base+"/update", req, &up); err != nil {
			return err
		}
		lat := time.Since(start)
		total += lat
		if lat > worst {
			worst = lat
		}
		batches++
		applied += len(removes) + len(adds)
		splices += up.Splices
		rebuilds += up.Rebuilds
		prefixes += up.PrefixRows
		fingerprint = up.Fingerprint

		// Mirror the canonical mutation on the client edge list.
		for _, rm := range removes {
			for i, e := range edges {
				if e == rm || (e[0] == rm[1] && e[1] == rm[0]) {
					edges = append(edges[:i], edges[i+1:]...)
					break
				}
			}
		}
		edges = append(edges, adds...)

		// Subsequent batches address the lineage by fingerprint alone.
		req = serve.UpdateRequest{Fingerprint: up.Fingerprint}
	}

	fmt.Printf("streamed %d updates in %d batches:\n", applied, batches)
	fmt.Printf("  repairs: %d splices (%d prefix rows replayed), %d rebuilds\n",
		splices, prefixes, rebuilds)
	fmt.Printf("  /update latency: mean %v, worst %v\n",
		(total / time.Duration(batches)).Round(time.Microsecond), worst.Round(time.Microsecond))

	// Predict on the mutated graph: the client's canonical reconstruction
	// must hit the representation /update published.
	var pred serve.Prediction
	start := time.Now()
	if err := postJSON(base+"/predict", serve.GraphRequest{NumNodes: *n, Edges: edges}, &pred); err != nil {
		return err
	}
	predLat := time.Since(start)
	mg, err := clientGraph(*n, edges)
	if err != nil {
		return err
	}
	if got := mg.Fingerprint().String(); got != fingerprint {
		return fmt.Errorf("client fingerprint %s diverged from server lineage %s", got, fingerprint)
	}
	fmt.Printf("\npredict on the mutated graph: cache_hit=%v, output %.6f (%v)\n",
		pred.CacheHit, pred.Output[0], predLat.Round(time.Microsecond))
	if !pred.CacheHit {
		return fmt.Errorf("prediction missed the repaired representation")
	}

	// The from-scratch alternative every batch avoided.
	start = time.Now()
	if _, err := models.PrepareMega(mg, models.MegaOptions{}); err != nil {
		return err
	}
	fmt.Printf("one full re-preprocess of the live graph: %v\n", time.Since(start).Round(time.Microsecond))

	var snap serve.Snapshot
	if err := getJSON(base+"/metrics", &snap); err != nil {
		return err
	}
	fmt.Printf("\n/metrics: updates %d, mutations %d, splices %d, rebuilds %d, sessions %d, repair p50 %.2fms\n",
		snap.Updates, snap.MutationsApplied, snap.RepairSplices, snap.RepairRebuilds,
		snap.MutationSessions, snap.RepairLatency.P50Ms)
	fmt.Println("reading: most mutations land late in the traversal, so repair replays")
	fmt.Println("the shared prefix and re-decides only the suffix; the serving cache")
	fmt.Println("stays hot across the whole mutation stream.")
	return nil
}

func clientGraph(n int, pairs [][2]int32) (*graph.Graph, error) {
	es := make([]graph.Edge, len(pairs))
	for i, p := range pairs {
		es[i] = graph.Edge{Src: p[0], Dst: p[1]}
	}
	return graph.New(n, es, false)
}

func postJSON(url string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, e["error"])
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}
