// Streaming: maintain a MEGA path representation under live edge updates,
// the paper's latency-constrained scenario (§IV-B8). Shows the repair-kind
// mix, expansion growth, and the latency gap between incremental repair and
// full re-traversal.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mega"
	"mega/internal/band"
	"mega/internal/dynamic"
	"mega/internal/graph"
	"mega/internal/traverse"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "streaming:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("streaming", flag.ContinueOnError)
	n := fs.Int("n", 2000, "vertices")
	updates := fs.Int("updates", 500, "edge updates to stream")
	budget := fs.Float64("budget", 1.5, "expansion budget before rebuild")
	seed := fs.Int64("seed", 6, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := mega.NewRand(*seed)
	g := graph.BarabasiAlbert(rng, *n, 3)
	m, err := dynamic.NewMaintainer(g, traverse.DefaultOptions())
	if err != nil {
		return err
	}
	m.ExpansionBudget = *budget
	fmt.Printf("initial: %d vertices, %d edges, path %d (expansion %.2fx)\n",
		*n, m.NumEdges(), m.Rep().Len(), m.Rep().Expansion())

	counts := map[dynamic.RepairKind]int{}
	var maxLatency, total time.Duration
	live := g.Edges() // tracked so deletions pick existing edges
	applied := 0
	for applied < *updates {
		var rep dynamic.Repair
		var start time.Time
		if applied%5 == 4 && len(live) > 0 {
			// Mix in deletions of random live edges.
			i := rng.Intn(len(live))
			e := live[i]
			start = time.Now()
			rep, err = m.RemoveEdge(e.Src, e.Dst)
			if err == nil {
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		} else {
			u := graph.NodeID(rng.Intn(*n))
			v := graph.NodeID(rng.Intn(*n))
			if u == v {
				continue
			}
			start = time.Now()
			rep, err = m.AddEdge(u, v)
			if err == nil {
				live = append(live, graph.Edge{Src: u, Dst: v})
			}
		}
		if err != nil {
			continue
		}
		lat := time.Since(start)
		total += lat
		if lat > maxLatency {
			maxLatency = lat
		}
		counts[rep.Kind]++
		applied++
	}

	fmt.Printf("\nafter %d updates:\n", applied)
	for _, k := range []dynamic.RepairKind{dynamic.RepairInBand, dynamic.RepairPatch, dynamic.RepairClear, dynamic.RepairRebuild} {
		fmt.Printf("  %-8s %5d\n", k, counts[k])
	}
	fmt.Printf("  mean latency %v, worst %v\n", (total / time.Duration(applied)).Round(time.Microsecond), maxLatency.Round(time.Microsecond))
	fmt.Printf("  path %d (expansion %.2fx), %d rebuilds\n",
		m.Rep().Len(), m.Rep().Expansion(), m.Rebuilds())

	// Compare against the from-scratch alternative.
	lg, err := m.Graph()
	if err != nil {
		return err
	}
	start := time.Now()
	if _, _, err := band.FromGraph(lg, traverse.DefaultOptions()); err != nil {
		return err
	}
	fmt.Printf("\none full re-traversal of the live graph: %v\n", time.Since(start).Round(time.Microsecond))
	fmt.Println("reading: most updates land in-band or as 2-row patches; rebuilds are")
	fmt.Println("rare and amortised by the expansion budget.")
	return nil
}
