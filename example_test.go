package mega_test

import (
	"fmt"

	"mega"
)

// ExampleReorganize converts a small graph into its path representation and
// reports coverage: the core MEGA preprocessing step.
func ExampleReorganize() {
	g, err := mega.NewGraph(5, []mega.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4},
	}, false)
	if err != nil {
		panic(err)
	}
	rep, res, err := mega.Reorganize(g, mega.TraverseOptions{Window: 1, EdgeCoverage: 1, Start: 0})
	if err != nil {
		panic(err)
	}
	fmt.Println("path:", res.Path)
	fmt.Println("revisits:", res.Revisits)
	fmt.Printf("band coverage: %.0f%%\n", 100*rep.BandCoverage())
	// Output:
	// path: [0 1 2 3 4]
	// revisits: 0
	// band coverage: 100%
}

// ExampleWLSimilarity verifies that reorganisation preserves graph
// structure under the Weisfeiler-Lehman test.
func ExampleWLSimilarity() {
	g := mega.CycleGraph(8)
	rep, res, err := mega.Reorganize(g, mega.DefaultTraverseOptions())
	if err != nil {
		panic(err)
	}
	induced, err := rep.InducedGraph(res, false)
	if err != nil {
		panic(err)
	}
	fmt.Printf("3-hop WL similarity: %.1f\n", mega.WLSimilarity(g, induced, 3))
	// Output:
	// 3-hop WL similarity: 1.0
}

// ExampleRevisitLowerBound shows the paper's Σ⌈dᵢ/ω⌉−n bound for a star
// graph, which the traversal achieves exactly.
func ExampleRevisitLowerBound() {
	// Star K_{1,4}: hub degree 4, four leaves of degree 1.
	degrees := []int{4, 1, 1, 1, 1}
	fmt.Println("ω=1:", mega.RevisitLowerBound(degrees, 1))
	fmt.Println("ω=4:", mega.RevisitLowerBound(degrees, 4))
	// Output:
	// ω=1: 3
	// ω=4: 0
}

// ExampleTraverse demonstrates edge coverage control: a partial θ stops the
// traversal early.
func ExampleTraverse() {
	g := mega.CompleteGraph(6)
	full, err := mega.Traverse(g, mega.TraverseOptions{Window: 2, EdgeCoverage: 1, Start: 0})
	if err != nil {
		panic(err)
	}
	half, err := mega.Traverse(g, mega.TraverseOptions{Window: 2, EdgeCoverage: 0.5, Start: 0})
	if err != nil {
		panic(err)
	}
	fmt.Println("full coverage path is longer:", full.Len() > half.Len())
	fmt.Println("half coverage reached:", half.EdgeCoverageRatio() >= 0.5)
	// Output:
	// full coverage path is longer: true
	// half coverage reached: true
}
