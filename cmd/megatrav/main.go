// Command megatrav inspects MEGA's path traversal on synthetic graphs: it
// prints the path, the virtual-edge markers, the band layout, coverage and
// revisit statistics — a debugging lens on the preprocessing stage.
//
// Usage:
//
//	megatrav [-kind er|ba|cycle|star|complete|tree] [-n nodes] [-m edges]
//	         [-window w] [-coverage t] [-drop f] [-seed s] [-verbose]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"mega/internal/band"
	"mega/internal/graph"
	"mega/internal/traverse"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "megatrav:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("megatrav", flag.ContinueOnError)
	kind := fs.String("kind", "er", "graph kind: er, ba, cycle, star, complete, tree")
	n := fs.Int("n", 16, "number of vertices")
	m := fs.Int("m", 32, "number of edges (er only)")
	window := fs.Int("window", 0, "traversal window ω (0 = adaptive)")
	coverage := fs.Float64("coverage", 1.0, "edge coverage θ")
	drop := fs.Float64("drop", 0, "edge-drop fraction")
	seed := fs.Int64("seed", 1, "random seed")
	verbose := fs.Bool("verbose", false, "print the full band mask")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := makeGraph(*kind, *n, *m, *seed)
	if err != nil {
		return err
	}
	opts := traverse.Options{
		Window: *window, EdgeCoverage: *coverage,
		DropEdges: *drop, Start: -1, Seed: *seed,
	}
	rep, res, err := band.FromGraph(g, opts)
	if err != nil {
		return err
	}

	fmt.Printf("graph: %s n=%d m=%d sparsity=%.3f mean-degree=%.2f\n",
		*kind, g.NumNodes(), g.NumEdges(), g.Sparsity(), g.MeanDegree())
	fmt.Printf("window ω=%d  coverage=%.1f%%  revisits=%d (lower bound %d)  virtual=%d  expansion=%.2f\n",
		res.Window, 100*res.EdgeCoverageRatio(), res.Revisits,
		traverse.RevisitLowerBound(res.Graph.Degrees(), res.Window),
		res.VirtualEdges, rep.Expansion())
	if res.DroppedEdges > 0 {
		fmt.Printf("dropped edges: %d of %d\n", res.DroppedEdges, res.DroppedEdges+res.TotalEdges)
	}
	fmt.Printf("band coverage: %.1f%% (%d/%d edges inside the band)\n",
		100*rep.BandCoverage(), rep.CoveredEdges, rep.TotalEdges)

	var b strings.Builder
	for i, v := range res.Path {
		if i > 0 {
			if res.Virtual[i] {
				b.WriteString(" ~> ")
			} else {
				b.WriteString(" -> ")
			}
		}
		fmt.Fprintf(&b, "%d", v)
	}
	fmt.Printf("path (%d steps, ~> marks virtual edges):\n  %s\n", len(res.Path), b.String())

	if *verbose {
		fmt.Println("band mask (offset rows, '#' = real edge):")
		for o := 1; o <= rep.Window; o++ {
			var row strings.Builder
			for _, on := range rep.Mask[o-1] {
				if on {
					row.WriteByte('#')
				} else {
					row.WriteByte('.')
				}
			}
			fmt.Printf("  +%d %s\n", o, row.String())
		}
	}
	return nil
}

func makeGraph(kind string, n, m int, seed int64) (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case "er":
		return graph.ErdosRenyiM(rng, n, m), nil
	case "ba":
		return graph.BarabasiAlbert(rng, n, 2), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "star":
		edges := make([]graph.Edge, 0, n-1)
		for v := 1; v < n; v++ {
			edges = append(edges, graph.Edge{Src: 0, Dst: graph.NodeID(v)})
		}
		return graph.New(n, edges, false)
	case "complete":
		return graph.Complete(n), nil
	case "tree":
		return graph.RandomTree(rng, n), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}
