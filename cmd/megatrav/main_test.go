package main

import "testing"

func TestRunKinds(t *testing.T) {
	for _, kind := range []string{"er", "ba", "cycle", "star", "complete", "tree"} {
		t.Run(kind, func(t *testing.T) {
			if err := run([]string{"-kind", kind, "-n", "10", "-m", "15", "-verbose"}); err != nil {
				t.Fatalf("run %s: %v", kind, err)
			}
		})
	}
}

func TestRunRejectsUnknownKind(t *testing.T) {
	if err := run([]string{"-kind", "hypercube"}); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestRunWithDropAndCoverage(t *testing.T) {
	if err := run([]string{"-kind", "er", "-n", "20", "-m", "40", "-drop", "0.2", "-coverage", "0.8"}); err != nil {
		t.Fatalf("run with drop: %v", err)
	}
}
