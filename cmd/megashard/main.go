// Command megashard runs one MEGA shard worker process: it loads the same
// trained checkpoint the serving tier holds, listens on a raw TCP address
// speaking the versioned dist wire protocol, and executes its contiguous
// share of each distributed forward — exchanging halo rows, duplicate-group
// folds, and edge folds directly with its peer workers. A megaserve
// supervisor (or any dist.Supervisor) dispatches jobs to a fleet of these
// processes; answers are bit-identical to the in-process engine at any
// worker count, so a SIGKILLed megashard only costs a failover, never an
// answer.
//
// On startup the process prints
//
//	MEGASHARD LISTEN <addr>
//
// to stdout once the listener is bound — dist.Spawn (and any process
// supervisor) scans for that line to learn the concrete port when -addr
// ends in :0.
//
// Usage:
//
//	megatrain -dataset ZINC -model GT -checkpoint gt.ckpt
//	megashard -checkpoint gt.ckpt -addr 127.0.0.1:9410
//	megashard -checkpoint-dir ckpts/ -addr 127.0.0.1:0
//
// Flags:
//
//	megashard -checkpoint file | -checkpoint-dir dir
//	          [-addr 127.0.0.1:0] [-recv-timeout 5s] [-write-timeout 5s]
//	          [-send-delay 0]
//
// -recv-timeout is the per-message peer-exchange deadline that detects a
// dead peer mid-wave; -send-delay artificially stretches exchange waves
// and exists for chaos drills only.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mega/internal/dist"
	"mega/internal/models"
	"mega/internal/train"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "megashard:", err)
		os.Exit(1)
	}
}

// run starts the worker. If ready is non-nil it receives the bound address
// once listening; if stop is non-nil, closing it shuts the worker down.
// Both hooks exist for tests; main passes nil.
func run(args []string, stdout io.Writer, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("megashard", flag.ContinueOnError)
	ckpt := fs.String("checkpoint", "", "trained model checkpoint written by megatrain -checkpoint")
	ckptDir := fs.String("checkpoint-dir", "", "megatrain checkpoint directory; loads the newest good checkpoint (alternative to -checkpoint)")
	addr := fs.String("addr", "127.0.0.1:0", "TCP listen address for the shard wire protocol (:0 picks a port, printed on stdout)")
	recvTimeout := fs.Duration("recv-timeout", 5*time.Second, "per-message peer exchange deadline (detects a dead peer mid-wave)")
	writeTimeout := fs.Duration("write-timeout", 5*time.Second, "per-frame write deadline")
	sendDelay := fs.Duration("send-delay", 0, "artificial delay before each exchange send (chaos drills only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*ckpt == "") == (*ckptDir == "") {
		return errors.New("exactly one of -checkpoint or -checkpoint-dir is required")
	}

	var meta train.Checkpoint
	var model models.Model
	source := *ckpt
	if *ckptDir != "" {
		source = *ckptDir
		m, mod, rep, err := train.LoadLatestCheckpoint(*ckptDir)
		if err != nil {
			return err
		}
		if len(rep.Quarantined) > 0 {
			fmt.Fprintf(stdout, "quarantined %d corrupt checkpoint(s) while loading\n", len(rep.Quarantined))
		}
		meta, model = m, mod
	} else {
		m, mod, err := train.LoadCheckpointFile(*ckpt)
		if err != nil {
			return err
		}
		meta, model = m, mod
	}

	logger := log.New(os.Stderr, "megashard: ", log.LstdFlags)
	w, err := dist.NewWorker(dist.WorkerOptions{
		Model:        model,
		RecvTimeout:  *recvTimeout,
		WriteTimeout: *writeTimeout,
		SendDelay:    *sendDelay,
		Logf:         logger.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The ready line is the process contract: supervisors scan stdout for
	// it to learn the concrete port.
	fmt.Fprintf(stdout, "%s%s\n", dist.ReadyPrefix, ln.Addr())
	fmt.Fprintf(stdout, "worker %s (%s, dim %d, %d layers) from %s\n",
		meta.Model, meta.Dataset, meta.Config.Dim, meta.Config.Layers, source)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sigCtx, cancelSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancelSig()
	go func() {
		select {
		case <-stop: // nil channel when unused: blocks forever
		case <-sigCtx.Done():
		}
		w.Close()
	}()
	return w.Serve(ln)
}
