package main

import (
	"bytes"
	"context"
	"math"
	"path/filepath"
	"testing"
	"time"

	"mega/internal/datasets"
	"mega/internal/dist"
	"mega/internal/graph"
	"mega/internal/models"
	"mega/internal/train"
	"mega/internal/traverse"

	mrand "math/rand"
)

// TestMegashardServesCheckpoint boots a worker from a real checkpoint file
// through the run() hook and drives one distributed forward through it: the
// answer must be bit-identical to the checkpointed model's own forward.
func TestMegashardServesCheckpoint(t *testing.T) {
	cfg := models.Config{Dim: 16, Layers: 2, Heads: 2, NodeTypes: 4, EdgeTypes: 2, OutDim: 1, Seed: 9}
	m := models.NewGT(cfg)
	ckpt := filepath.Join(t.TempDir(), "gt.ckpt")
	if err := train.SaveCheckpointFile(ckpt, train.Checkpoint{
		Model: "GT", Config: cfg, Task: datasets.TaskRegression, Dataset: "test",
	}, m); err != nil {
		t.Fatal(err)
	}

	ready := make(chan string, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		errc <- run([]string{"-checkpoint", ckpt, "-addr", "127.0.0.1:0"}, &out, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("worker exited early: %v (output %q)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("worker never became ready")
	}
	defer func() {
		close(stop)
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("worker exit: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("worker did not shut down")
		}
	}()
	if !bytes.Contains(out.Bytes(), []byte(dist.ReadyPrefix)) {
		t.Errorf("stdout missing ready line: %q", out.String())
	}

	g := graph.RandomTree(mrand.New(mrand.NewSource(4)), 40)
	insts := []datasets.Instance{{
		G:        g,
		NodeFeat: make([]int32, g.NumNodes()),
		EdgeFeat: make([]int32, g.NumEdges()),
	}}
	mopts := models.MegaOptions{Traverse: traverse.Options{Window: 2}}
	refCtx, err := models.NewMegaContext(insts, mopts, nil, cfg.Dim)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Forward(refCtx)

	s, err := dist.NewSupervisor(dist.SuperOptions{Workers: []string{addr}, JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	outc, err := s.Forward(context.Background(), insts, mopts.TraverseOptions(), cfg.Dim, g.Fingerprint())
	if err != nil {
		t.Fatalf("forward through megashard: %v", err)
	}
	got, err := m.ReadoutFromFinal(refCtx, outc.FinalH)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("output[%d] = %v, want %v (must be bit-identical)", i, got.Data[i], want.Data[i])
		}
	}
}

// TestMegashardFlagValidation pins the checkpoint-source requirement.
func TestMegashardFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out, nil, nil); err == nil {
		t.Error("no checkpoint source accepted")
	}
	if err := run([]string{"-checkpoint", "a", "-checkpoint-dir", "b"}, &out, nil, nil); err == nil {
		t.Error("both checkpoint sources accepted")
	}
}
