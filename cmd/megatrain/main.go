// Command megatrain trains a GNN configuration on one of the evaluation
// datasets under a chosen attention engine, printing per-epoch statistics,
// a convergence chart on the simulated GPU clock, and the kernel profile.
//
// Usage:
//
//	megatrain [-dataset ZINC] [-model GCN|GT] [-engine dgl|mega]
//	          [-dim d] [-layers L] [-batch B] [-epochs E] [-lr r]
//	          [-train n] [-val n] [-drop f] [-sparsify f] [-sparsify-seed s]
//	          [-seed s] [-profile]
//	          [-shards k] [-attention fused|staged] [-checkpoint model.ckpt]
//	          [-checkpoint-dir dir] [-checkpoint-every 1] [-resume]
//	          [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With -checkpoint, the trained parameters are saved for cmd/megaserve.
// With -checkpoint-dir, training additionally writes a crash-safe
// checkpoint (atomic rename, CRC-verified) every -checkpoint-every epochs;
// -resume continues from the newest good checkpoint in that directory,
// quarantining corrupt files instead of failing.
// -shards runs each batch's forward/backward across k shard workers
// (GT + mega engine; k must divide 8) with real halo/duplicate-sync/edge
// exchange; the trained parameters are bit-identical to -shards 1.
// -sparsify keeps only that fraction of edges via effective-resistance
// importance sampling (mega engine) before traversal; -sparsify-seed pins
// the sampler independently of -seed (default: same value as -seed).
// -cpuprofile/-memprofile write Go pprof profiles covering the training
// run (see DESIGN.md, "Profiling the Go implementation").
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"mega/internal/datasets"
	"mega/internal/models"
	"mega/internal/train"
	"mega/internal/traverse"
	"mega/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "megatrain:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("megatrain", flag.ContinueOnError)
	dsName := fs.String("dataset", "ZINC", "dataset: ZINC, AQSOL, CSL or CYCLES")
	model := fs.String("model", "GCN", "model: GCN, GT or GAT")
	engine := fs.String("engine", "mega", "attention engine: dgl or mega")
	dim := fs.Int("dim", 64, "hidden dimension")
	layers := fs.Int("layers", 4, "attention layers")
	batch := fs.Int("batch", 64, "batch size")
	epochs := fs.Int("epochs", 10, "training epochs")
	lr := fs.Float64("lr", 1e-3, "Adam learning rate")
	trainN := fs.Int("train", 256, "train instances (0 = paper size)")
	valN := fs.Int("val", 64, "validation instances (0 = paper size)")
	drop := fs.Float64("drop", 0, "edge-drop fraction (mega engine)")
	sparsify := fs.Float64("sparsify", 0, "effective-resistance keep fraction in (0,1] (mega engine; 0 = off)")
	sparsifySeed := fs.Int64("sparsify-seed", 0, "sparsifier seed (0 = use -seed)")
	seed := fs.Int64("seed", 1, "seed")
	profile := fs.Bool("profile", true, "attach the GPU simulator")
	shards := fs.Int("shards", 0, "shard-parallel workers per batch (GT + mega engine; must divide 8; disables -profile)")
	attention := fs.String("attention", "", "attention implementation: fused or staged (default: $MEGA_ATTENTION, then fused)")
	ckpt := fs.String("checkpoint", "", "write the trained model here for megaserve")
	ckptDir := fs.String("checkpoint-dir", "", "directory for periodic crash-safe checkpoints")
	ckptEvery := fs.Int("checkpoint-every", 1, "epochs between periodic checkpoints (with -checkpoint-dir)")
	resume := fs.Bool("resume", false, "resume from the newest good checkpoint in -checkpoint-dir")
	cpuProfile := fs.String("cpuprofile", "", "write a Go CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a Go heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "megatrain: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // surface live allocations, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "megatrain: memprofile:", err)
			}
		}()
	}

	ds, err := datasets.Generate(*dsName, datasets.Config{
		TrainSize: *trainN, ValSize: *valN, TestSize: 0, Seed: *seed,
	})
	if err != nil {
		return err
	}

	var kind models.EngineKind
	switch *engine {
	case "dgl":
		kind = models.EngineDGL
	case "mega":
		kind = models.EngineMega
	default:
		return fmt.Errorf("unknown engine %q (want dgl or mega)", *engine)
	}

	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	opts := train.Options{
		Model: *model, Engine: kind,
		Dim: *dim, Layers: *layers,
		BatchSize: *batch, LR: *lr, Epochs: *epochs, Seed: *seed,
		Profile: *profile, Attention: *attention,
		CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery, Resume: *resume,
		Shards: *shards,
	}
	if *shards > 0 && *profile {
		// The shard engine runs real concurrent workers; the simulated
		// GPU clock models a single device and would misattribute them.
		fmt.Println("megatrain: -shards set, disabling the GPU simulator")
		opts.Profile = false
	}
	if *drop > 0 || *sparsify > 0 {
		ss := *sparsifySeed
		if ss == 0 {
			ss = *seed
		}
		opts.Mega.Traverse = traverse.Options{
			EdgeCoverage: 1, DropEdges: *drop, Start: -1, Seed: *seed,
			SparsifyFraction: *sparsify, SparsifySeed: ss,
		}
	}

	res, err := train.Run(ds, opts)
	if err != nil {
		return err
	}
	if res.ShardFallbacks > 0 {
		fmt.Printf("shard fallbacks: %d (reasons %v)\n", res.ShardFallbacks, res.ShardFallbackReasons)
	}

	if *ckpt != "" {
		if err := train.SaveCheckpointFile(*ckpt, res.Checkpoint(*dsName), res.Model); err != nil {
			return fmt.Errorf("write checkpoint: %w", err)
		}
		fmt.Printf("checkpoint written to %s (%d params)\n", *ckpt, res.Params)
	}
	if res.ResumedEpoch > 0 {
		fmt.Printf("resumed from epoch %d\n", res.ResumedEpoch)
	}
	if res.LastCheckpoint != "" {
		fmt.Printf("periodic checkpoint: %s (save failures %d, quarantined %d)\n",
			res.LastCheckpoint, res.CheckpointFailures, res.QuarantinedCheckpoints)
	}

	metricName := "valMAE"
	if ds.Task == datasets.TaskClassification {
		metricName = "valAcc"
	}
	fmt.Printf("%s on %s (%s engine, %d params)\n", *model, *dsName, *engine, res.Params)
	fmt.Printf("%6s %14s %12s %12s %12s\n", "epoch", "simTime(ms)", "trainLoss", "valLoss", metricName)
	curve := viz.Series{Name: *engine}
	for _, s := range res.Stats {
		fmt.Printf("%6d %14.3f %12.4f %12.4f %12.4f\n",
			s.Epoch, s.SimTime.Seconds()*1e3, s.TrainLoss, s.ValLoss, s.ValMetric)
		curve.X = append(curve.X, s.SimTime.Seconds()*1e3)
		curve.Y = append(curve.Y, s.ValLoss)
	}
	fmt.Println()
	fmt.Print(viz.LineChart("val loss vs simulated time (ms)", 64, 12, curve))

	if res.Sim != nil {
		fmt.Println("\nkernel profile:")
		bars := make([]viz.Bar, 0, 8)
		for _, k := range res.Sim.Stats() {
			bars = append(bars, viz.Bar{Label: k.Name, Value: k.Cycles})
		}
		fmt.Print(viz.BarChart("cycles by kernel", 40, bars))
		fmt.Printf("\nweighted SM efficiency %.3f, memory-stall share %.3f, simulated total %v\n",
			res.Sim.WeightedSMEfficiency(), res.Sim.WeightedStallPct(), res.Sim.TotalTime())
	}
	return nil
}
