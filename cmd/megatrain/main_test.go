package main

import (
	"path/filepath"
	"testing"

	"mega/internal/train"
)

func TestRunQuickTraining(t *testing.T) {
	err := run([]string{
		"-dataset", "AQSOL", "-model", "GCN", "-engine", "mega",
		"-dim", "16", "-layers", "2", "-batch", "8",
		"-epochs", "2", "-train", "16", "-val", "8",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunClassificationDataset(t *testing.T) {
	err := run([]string{
		"-dataset", "CSL", "-model", "GT", "-engine", "dgl",
		"-dim", "16", "-layers", "1", "-batch", "8",
		"-epochs", "1", "-train", "8", "-val", "8",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsUnknownEngine(t *testing.T) {
	if err := run([]string{"-engine", "cuda", "-train", "4", "-val", "4"}); err == nil {
		t.Error("unknown engine should error")
	}
}

func TestRunRejectsUnknownDataset(t *testing.T) {
	if err := run([]string{"-dataset", "OGB"}); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestRunWithEdgeDropping(t *testing.T) {
	err := run([]string{
		"-dataset", "ZINC", "-engine", "mega", "-drop", "0.2",
		"-dim", "16", "-layers", "1", "-batch", "8",
		"-epochs", "1", "-train", "8", "-val", "4",
	})
	if err != nil {
		t.Fatalf("run with drop: %v", err)
	}
}

func TestRunWritesCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	err := run([]string{
		"-dataset", "ZINC", "-model", "GT", "-engine", "mega",
		"-dim", "16", "-layers", "1", "-batch", "8",
		"-epochs", "1", "-train", "8", "-val", "4",
		"-checkpoint", path,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	meta, model, err := train.LoadCheckpointFile(path)
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	if meta.Model != "GT" || meta.Dataset != "ZINC" || model == nil {
		t.Errorf("checkpoint meta = %+v", meta)
	}
}
