// Command megabench regenerates the paper's tables and figures.
//
// Usage:
//
//	megabench [-scale quick|medium|paper] [experiment ...]
//
// With no experiment arguments, every experiment runs in the paper's order.
// Experiment IDs: fig1b table1 table2 table3 fig4 fig5 fig6 fig8 fig9
// fig10 fig11 fig12 fig13 fig14 fig15 dist.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mega/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "megabench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("megabench", flag.ContinueOnError)
	scaleName := fs.String("scale", "medium", "experiment scale: quick, medium, or paper")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return nil
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick()
	case "medium":
		scale = experiments.Medium()
	case "paper":
		scale = experiments.Paper()
	default:
		return fmt.Errorf("unknown scale %q (want quick, medium, or paper)", *scaleName)
	}

	ids := fs.Args()
	if len(ids) == 0 {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		runner, ok := experiments.ByID(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		start := time.Now()
		report, err := runner(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Print(report.String())
		fmt.Printf("  (completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}
