package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run -list: %v", err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-scale", "quick", "table2"}); err != nil {
		t.Fatalf("run table2: %v", err)
	}
}

func TestRunRejectsUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "giant", "table2"}); err == nil {
		t.Error("unknown scale should error")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-scale", "quick", "fig99"}); err == nil {
		t.Error("unknown experiment should error")
	}
}
