// Command megastats generates the evaluation datasets and prints their
// Table II / Table III statistics plus a pooled degree histogram.
//
// Usage:
//
//	megastats [-train n] [-val n] [-test n] [-seed s] [dataset ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mega/internal/datasets"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "megastats:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("megastats", flag.ContinueOnError)
	trainN := fs.Int("train", 256, "train split size (0 = paper size)")
	valN := fs.Int("val", 64, "validation split size (0 = paper size)")
	testN := fs.Int("test", 64, "test split size (0 = paper size)")
	seed := fs.Int64("seed", 7, "generation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := fs.Args()
	if len(names) == 0 {
		names = datasets.Names()
	}

	cfg := datasets.Config{TrainSize: *trainN, ValSize: *valN, TestSize: *testN, Seed: *seed}
	fmt.Printf("%-8s %7s %7s %7s %8s %8s %10s | %10s %10s %10s %12s %8s\n",
		"dataset", "train", "val", "test", "nodes", "edges", "sparsity",
		"μ(σ(d))", "σ(dmin)", "σ(dmax)", "σ(dmean)", "μ(ε)")
	for _, name := range names {
		ds, err := datasets.Generate(name, cfg)
		if err != nil {
			return err
		}
		t2 := datasets.ComputeTableII(ds)
		t3 := datasets.ComputeTableIII(ds, 200, 60, *seed)
		fmt.Printf("%-8s %7d %7d %7d %8.1f %8.1f %10.3f | %10.4f %10.4f %10.4f %12.4f %8.2f\n",
			t2.Name, t2.Train, t2.Val, t2.Test, t2.MeanNodes, t2.MeanEdges, t2.Sparsity,
			t3.MeanDegStd, t3.StdDegMin, t3.StdDegMax, t3.StdDegMean, t3.MeanKS)
	}

	fmt.Println("\npooled degree histograms (bins 0..7):")
	for _, name := range names {
		ds, err := datasets.Generate(name, cfg)
		if err != nil {
			return err
		}
		h := datasets.DegreeHistogram(ds, 8)
		total := 0
		for _, c := range h {
			total += c
		}
		var bar strings.Builder
		for _, c := range h {
			fmt.Fprintf(&bar, " %5.1f%%", 100*float64(c)/float64(total))
		}
		fmt.Printf("%-8s%s\n", name, bar.String())
	}
	return nil
}
