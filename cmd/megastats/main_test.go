package main

import "testing"

func TestRunAllDatasets(t *testing.T) {
	if err := run([]string{"-train", "20", "-val", "5", "-test", "5"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSingleDataset(t *testing.T) {
	if err := run([]string{"-train", "20", "-val", "5", "-test", "5", "CSL"}); err != nil {
		t.Fatalf("run CSL: %v", err)
	}
}

func TestRunRejectsUnknownDataset(t *testing.T) {
	if err := run([]string{"-train", "5", "-val", "2", "-test", "2", "OGB"}); err == nil {
		t.Error("unknown dataset should error")
	}
}
