// Command megaload is the open-loop load harness and capacity autotuner
// for the MEGA serving stack. It drives either an in-process server built
// from a checkpoint (or an ephemeral untrained model) or a remote
// megaserve over HTTP, with a deterministic Poisson arrival schedule
// through configurable rate ramps and workload mixes, then reports
// client-side latency percentiles and reconciles its own counts against
// the server's /metrics.
//
// Fixed-schedule run:
//
//	megaload -phases 100x5s,250x10s,100x5s -update-frac 0.05
//	megaload -addr localhost:8391 -rate 200 -duration 10s
//
// Capacity search (-autotune): per knob configuration, double the offered
// rate until the SLO fails, bisect to the knee, and write the sweep as a
// BENCH_serve.json regression record:
//
//	megaload -autotune -slo-p99 20ms -probe-duration 2s -out BENCH_serve.json
//
// Flags:
//
//	megaload [-checkpoint ckpt | -checkpoint-dir dir | (ephemeral model)]
//	         [-addr host:port] [-phases SPEC | -rate R -duration D]
//	         [-seed 1] [-hit-frac 0.7] [-update-frac 0] [-timeout 0]
//	         [-faults none|cache|prepare|delay|chaos|workerkill]
//	         [-kill-every 2s]
//	         [-max-batch 16] [-max-wait 2ms] [-workers 0] [-shard-workers 0]
//	         [-cache 4096] [-queue 256] [-json]
//	         [-autotune] [-slo-p99 20ms] [-max-error-frac 0.005]
//	         [-probe-duration 2s] [-start-rate 25] [-tolerance 0.1]
//	         [-grid SPEC] [-out BENCH_serve.json]
//
// Without -checkpoint/-checkpoint-dir/-addr, megaload builds a small
// untrained GT model in process — load characteristics do not depend on
// trained weights, only on shapes, so the harness works out of the box.
// -faults and -autotune require the in-process server (-addr drives a
// server whose knobs this process cannot rebuild).
//
// -faults workerkill measures capacity under distributed failover: megaload
// re-execs itself as a fleet of three megashard worker processes (one
// replica group, auto-restarting), routes every batch through them via
// serve's distributed shard path, and SIGKILLs a rotating worker every
// -kill-every. Because replicas survive each kill, answers stay
// bit-identical through failover — the BENCH_serve.json capacity number
// from -autotune under this profile is the sustainable QPS while the fleet
// is being shot at.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"mega/internal/datasets"
	"mega/internal/dist"
	"mega/internal/faults"
	"mega/internal/load"
	"mega/internal/models"
	"mega/internal/serve"
	"mega/internal/train"
)

func main() {
	if os.Getenv("MEGALOAD_DIST_WORKER") == "1" {
		runDistWorker()
		return
	}
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "megaload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("megaload", flag.ContinueOnError)
	ckpt := fs.String("checkpoint", "", "trained checkpoint to serve in process")
	ckptDir := fs.String("checkpoint-dir", "", "megatrain checkpoint directory to serve in process")
	addr := fs.String("addr", "", "drive a running megaserve at this address instead of an in-process server")

	phasesSpec := fs.String("phases", "", "offered-rate ramp, e.g. 100x5s,250x10s,100x5s")
	rate := fs.Float64("rate", 100, "offered rate in requests/second (single-phase shorthand; ignored with -phases)")
	duration := fs.Duration("duration", 5*time.Second, "single-phase duration (ignored with -phases)")
	seed := fs.Int64("seed", 1, "seed for the arrival schedule and workload draws")
	hitFrac := fs.Float64("hit-frac", 0.7, "fraction of predicts aimed at the warm cache-hit pool")
	updateFrac := fs.Float64("update-frac", 0, "fraction of requests that are /update mutations")
	timeout := fs.Duration("timeout", 0, "per-request client deadline (0 = server policy only)")
	faultsProfile := fs.String("faults", "none", "fault profile to arm in process: none, cache, prepare, delay, chaos, workerkill")
	killEvery := fs.Duration("kill-every", 2*time.Second, "workerkill profile: SIGKILL cadence against the worker fleet")
	jsonOut := fs.Bool("json", false, "emit the run report as JSON instead of text")

	maxBatch := fs.Int("max-batch", 16, "in-process server: max requests per forward pass")
	maxWait := fs.Duration("max-wait", 2*time.Millisecond, "in-process server: max open-batch wait")
	workers := fs.Int("workers", 0, "in-process server: forward-pass workers (0 = GOMAXPROCS)")
	shardWorkers := fs.Int("shard-workers", 0, "in-process server: shard-parallel workers (must divide 8; 0 disables)")
	cacheCap := fs.Int("cache", 4096, "in-process server: path-representation cache capacity")
	queue := fs.Int("queue", 256, "in-process server: admission queue depth")

	autotune := fs.Bool("autotune", false, "search max sustainable QPS per knob config and write a bench record")
	sloP99 := fs.Duration("slo-p99", 20*time.Millisecond, "autotune: client-observed p99 SLO")
	maxErrFrac := fs.Float64("max-error-frac", 0.005, "autotune: max tolerated predict failure fraction")
	probeDur := fs.Duration("probe-duration", 2*time.Second, "autotune: measured window per rate probe")
	startRate := fs.Float64("start-rate", 25, "autotune: first offered rate probed")
	tolerance := fs.Float64("tolerance", 0.1, "autotune: relative capacity resolution")
	gridSpec := fs.String("grid", defaultGrid, "autotune: knob grid, comma-separated MAXBATCH/MAXWAIT/WORKERS/SHARD entries")
	out := fs.String("out", "BENCH_serve.json", "autotune: bench record output path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *addr != "" && (*ckpt != "" || *ckptDir != "") {
		return errors.New("-addr is exclusive with -checkpoint/-checkpoint-dir")
	}
	if *addr != "" && *autotune {
		return errors.New("-autotune needs the in-process server (it rebuilds knobs per config)")
	}
	if *addr != "" && *faultsProfile != "none" {
		return errors.New("-faults needs the in-process server")
	}

	phases := []load.Phase{{Name: "phase0", Rate: *rate, Duration: *duration}}
	if *phasesSpec != "" {
		var err error
		if phases, err = load.ParsePhases(*phasesSpec); err != nil {
			return err
		}
	}

	if err := armFaults(*faultsProfile, *seed); err != nil {
		return err
	}
	defer faults.Disable()

	opts := serve.Options{
		MaxBatch:     *maxBatch,
		MaxWait:      *maxWait,
		Workers:      *workers,
		ShardWorkers: *shardWorkers,
		QueueDepth:   *queue,
		Engine:       models.EngineMega,
	}.WithCacheCapacity(*cacheCap)
	if *faultsProfile == "workerkill" {
		cleanup, err := setupWorkerKill(&opts, *ckpt, *ckptDir, *killEvery, stdout)
		if err != nil {
			return err
		}
		defer cleanup()
	}

	mix := load.MixOptions{
		Seed:           *seed,
		HitFraction:    *hitFrac,
		UpdateFraction: *updateFrac,
	}

	if *autotune {
		grid, err := parseGrid(*gridSpec)
		if err != nil {
			return err
		}
		return runAutotune(stdout, autotuneConfig{
			grid:     grid,
			slo:      load.SLO{P99Ms: float64(*sloP99) / float64(time.Millisecond), MaxErrorFraction: *maxErrFrac},
			search:   load.SearchOptions{StartRate: *startRate, Tolerance: *tolerance},
			probeDur: *probeDur,
			seed:     *seed,
			mix:      mix,
			baseOpts: opts,
			ckpt:     *ckpt,
			ckptDir:  *ckptDir,
			out:      *out,
			jsonOut:  *jsonOut,
		})
	}

	target, cleanup, vocab, err := buildTarget(*addr, *ckpt, *ckptDir, opts, *timeout)
	if err != nil {
		return err
	}
	defer cleanup()
	mix.NodeTypes, mix.EdgeTypes = vocab[0], vocab[1]

	rep, err := load.Run(target, load.RunOptions{
		Seed:    *seed,
		Phases:  phases,
		Mix:     mix,
		Timeout: *timeout,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	printReport(stdout, rep)
	if !rep.Reconciliation.Clean {
		return fmt.Errorf("reconciliation failed: %s", strings.Join(rep.Reconciliation.Mismatches, "; "))
	}
	return nil
}

// defaultGrid is sized for the capacity sweep to finish in about a minute
// on a small box: batch-size and wait-window trade latency for throughput,
// and a second worker probes whether the forward pass or the batcher is
// the bottleneck.
const defaultGrid = "4/1ms/1/0,16/2ms/1/0,16/2ms/2/0,32/4ms/2/0"

func parseGrid(spec string) ([]load.KnobConfig, error) {
	var grid []load.KnobConfig
	for _, seg := range strings.Split(spec, ",") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		parts := strings.Split(seg, "/")
		if len(parts) != 4 {
			return nil, fmt.Errorf("grid entry %q (want MAXBATCH/MAXWAIT/WORKERS/SHARD, e.g. 16/2ms/1/0)", seg)
		}
		mb, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("grid entry %q: max-batch: %v", seg, err)
		}
		mw, err := time.ParseDuration(parts[1])
		if err != nil {
			return nil, fmt.Errorf("grid entry %q: max-wait: %v", seg, err)
		}
		w, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("grid entry %q: workers: %v", seg, err)
		}
		sh, err := strconv.Atoi(parts[3])
		if err != nil {
			return nil, fmt.Errorf("grid entry %q: shard-workers: %v", seg, err)
		}
		grid = append(grid, load.KnobConfig{
			Name:         fmt.Sprintf("batch%d-wait%s-w%d-shard%d", mb, mw, w, sh),
			MaxBatch:     mb,
			MaxWaitMs:    float64(mw) / float64(time.Millisecond),
			Workers:      w,
			ShardWorkers: sh,
		})
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("empty autotune grid %q", spec)
	}
	return grid, nil
}

// buildTarget wires up the system under load and returns it with its
// cleanup and the (nodeTypes, edgeTypes) vocabulary the workload must stay
// inside.
func buildTarget(addr, ckpt, ckptDir string, opts serve.Options, timeout time.Duration) (load.Target, func(), [2]int, error) {
	if addr != "" {
		base := addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		t := load.HTTPTarget{Base: base, TimeoutMs: int(timeout / time.Millisecond)}
		// A remote server's vocabulary is not on the wire; all-zero
		// features (vocab 1) are valid for any model.
		return t, func() {}, [2]int{1, 1}, nil
	}
	s, err := buildServer(ckpt, ckptDir, opts)
	if err != nil {
		return nil, nil, [2]int{}, err
	}
	meta := s.Meta()
	return load.InProcess{S: s}, func() { s.Close() }, [2]int{meta.Config.NodeTypes, meta.Config.EdgeTypes}, nil
}

func buildServer(ckpt, ckptDir string, opts serve.Options) (*serve.Server, error) {
	switch {
	case ckpt != "":
		return serve.NewFromCheckpointFile(ckpt, opts)
	case ckptDir != "":
		return serve.NewFromCheckpointDir(ckptDir, opts)
	default:
		// Ephemeral: load characteristics depend on shapes, not weights.
		model, err := train.NewModel("GT", ephemeralConfig)
		if err != nil {
			return nil, err
		}
		meta := train.Checkpoint{Model: "GT", Config: ephemeralConfig, Task: datasets.TaskRegression, Dataset: "synthetic"}
		return serve.New(model, meta, opts)
	}
}

// ephemeralConfig is the model served when no checkpoint is given. The
// workerkill fleet rebuilds the same model from the same seed, so server
// and workers agree bit-exactly without shipping parameters.
var ephemeralConfig = models.Config{Dim: 32, Layers: 2, Heads: 4, NodeTypes: 8, EdgeTypes: 4, OutDim: 1, Seed: 42}

// setupWorkerKill arms the workerkill profile: spawn one auto-restarting
// replica group of three re-exec'd worker processes, point opts.Dist at it
// with the vertex threshold floored so every batch takes the distributed
// path, and SIGKILL a rotating member every killEvery until cleanup.
func setupWorkerKill(opts *serve.Options, ckpt, ckptDir string, killEvery time.Duration, stdout io.Writer) (func(), error) {
	env := []string{"MEGALOAD_DIST_WORKER=1"}
	if ckpt != "" {
		env = append(env, "MEGALOAD_DIST_CKPT="+ckpt)
	}
	if ckptDir != "" {
		env = append(env, "MEGALOAD_DIST_CKPTDIR="+ckptDir)
	}
	sp, err := dist.Spawn(3, dist.SpawnOptions{
		Command:      []string{os.Args[0], "{addr}"},
		Env:          env,
		AutoRestart:  true,
		RestartDelay: 100 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	opts.Dist = &dist.SuperOptions{
		Workers:          sp.Addrs(),
		GroupSize:        3,
		JobWorkers:       2,
		HeartbeatEvery:   100 * time.Millisecond,
		HeartbeatTimeout: 800 * time.Millisecond,
	}
	opts.ShardVertexThreshold = 1
	fmt.Fprintf(stdout, "workerkill: fleet %v, SIGKILL every %v\n", sp.Addrs(), killEvery)

	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(killEvery)
		defer tick.Stop()
		victim := 0
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				// A restart race (victim already down) is not an error —
				// the point is sustained fire, not precise aim.
				sp.Kill(victim % 3)
				victim++
			}
		}
	}()
	return func() {
		close(stop)
		sp.Close()
	}, nil
}

// runDistWorker is the hidden re-exec mode behind -faults workerkill: a
// megashard-equivalent worker process serving the same model as the parent
// (checkpoint via env, or the deterministic ephemeral config) on the
// address the spawner appended to argv.
func runDistWorker() {
	addr := os.Args[len(os.Args)-1]
	model, err := distWorkerModel()
	if err != nil {
		fmt.Fprintln(os.Stderr, "megaload worker:", err)
		os.Exit(1)
	}
	w, err := dist.NewWorker(dist.WorkerOptions{Model: model, RecvTimeout: 5 * time.Second})
	if err != nil {
		fmt.Fprintln(os.Stderr, "megaload worker:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "megaload worker:", err)
		os.Exit(1)
	}
	fmt.Printf("%s%s\n", dist.ReadyPrefix, ln.Addr())
	if err := w.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "megaload worker:", err)
		os.Exit(1)
	}
}

func distWorkerModel() (models.Model, error) {
	if p := os.Getenv("MEGALOAD_DIST_CKPT"); p != "" {
		_, model, err := train.LoadCheckpointFile(p)
		return model, err
	}
	if d := os.Getenv("MEGALOAD_DIST_CKPTDIR"); d != "" {
		_, model, _, err := train.LoadLatestCheckpoint(d)
		return model, err
	}
	return train.NewModel("GT", ephemeralConfig)
}

// armFaults enables a named chaos profile (deterministic under the run
// seed). Profiles are intentionally survivable: error probabilities low
// enough that the breaker recovers, delays short enough that probes
// finish.
func armFaults(profile string, seed int64) error {
	var points []faults.PointConfig
	switch profile {
	case "none", "workerkill": // workerkill is structural, armed by setupWorkerKill
		return nil
	case "cache":
		points = []faults.PointConfig{
			{Name: faults.ServeCacheGet, Prob: 0.2},
			{Name: faults.ServeCachePut, Prob: 0.2},
		}
	case "prepare":
		points = []faults.PointConfig{{Name: faults.ServePrepare, Prob: 0.02}}
	case "delay":
		points = []faults.PointConfig{{Name: faults.ServeForward, Prob: 0.3, Action: faults.ActDelay, Delay: 2 * time.Millisecond}}
	case "chaos":
		points = []faults.PointConfig{
			{Name: faults.ServeCacheGet, Prob: 0.1},
			{Name: faults.ServeCachePut, Prob: 0.1},
			{Name: faults.ServePrepare, Prob: 0.01},
			{Name: faults.ServeForward, Prob: 0.1, Action: faults.ActDelay, Delay: time.Millisecond},
		}
	default:
		return fmt.Errorf("unknown fault profile %q (want none, cache, prepare, delay, chaos)", profile)
	}
	faults.Enable(faults.Plan{Seed: seed, Points: points})
	return nil
}

type autotuneConfig struct {
	grid     []load.KnobConfig
	slo      load.SLO
	search   load.SearchOptions
	probeDur time.Duration
	seed     int64
	mix      load.MixOptions
	baseOpts serve.Options
	ckpt     string
	ckptDir  string
	out      string
	jsonOut  bool
}

func runAutotune(stdout io.Writer, cfg autotuneConfig) error {
	fmt.Fprintf(stdout, "autotune: %d configs, SLO p99 <= %.2fms (err frac <= %.3g), %v probes\n",
		len(cfg.grid), cfg.slo.P99Ms, cfg.slo.MaxErrorFraction, cfg.probeDur)

	// resolvedMix is what the probes actually ran with (the workload's
	// feature vocabulary comes from the served model); the bench record
	// carries it instead of the pre-resolution flag values.
	resolvedMix := cfg.mix
	factory := func(kc load.KnobConfig) (load.ProbeFunc, func(), error) {
		opts := cfg.baseOpts
		opts.MaxBatch = kc.MaxBatch
		opts.MaxWait = kc.MaxWait()
		opts.Workers = kc.Workers
		opts.ShardWorkers = kc.ShardWorkers
		s, err := buildServer(cfg.ckpt, cfg.ckptDir, opts)
		if err != nil {
			return nil, nil, err
		}
		mix := cfg.mix
		mix.NodeTypes = s.Meta().Config.NodeTypes
		mix.EdgeTypes = s.Meta().Config.EdgeTypes
		resolvedMix = mix
		target := load.InProcess{S: s}
		probe := func(rate float64) (load.ProbeResult, error) {
			rep, err := load.Run(target, load.RunOptions{
				Seed:   cfg.seed,
				Phases: []load.Phase{{Name: "probe", Rate: rate, Duration: cfg.probeDur}},
				Mix:    mix,
			})
			if err != nil {
				return load.ProbeResult{}, err
			}
			if !rep.Reconciliation.Clean {
				return load.ProbeResult{}, fmt.Errorf("reconciliation failed at %.1f QPS: %s",
					rate, strings.Join(rep.Reconciliation.Mismatches, "; "))
			}
			return probeResult(rep), nil
		}
		return probe, func() { s.Close() }, nil
	}

	results, winner, err := load.Sweep(cfg.grid, factory, cfg.slo, cfg.search,
		func(line string) { fmt.Fprintln(stdout, "  "+line) })
	if err != nil {
		return err
	}

	rec := load.NewBenchRecord(time.Now().UTC().Format(time.RFC3339), cfg.slo, cfg.seed,
		cfg.probeDur.String(), resolvedMix, results, winner)
	if err := rec.Validate(); err != nil {
		return err
	}
	if err := rec.WriteFile(cfg.out); err != nil {
		return err
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rec)
	}
	if rec.Winner != "" {
		fmt.Fprintf(stdout, "winner: %s (%.1f QPS sustainable under p99 <= %.2fms)\n",
			rec.Winner, results[winner].Capacity.MaxQPS, cfg.slo.P99Ms)
	} else {
		fmt.Fprintln(stdout, "no config sustained the SLO at any probed rate")
	}
	fmt.Fprintf(stdout, "wrote %s\n", cfg.out)
	return nil
}

// probeResult condenses a single-phase run into the autotuner's pass/fail
// inputs.
func probeResult(rep load.Report) load.ProbeResult {
	t := rep.Total
	r := load.ProbeResult{AchievedQPS: t.AchievedQPS, P99Ms: t.Latency.P99Ms}
	if t.Predicts > 0 {
		r.ErrorFraction = float64(t.Shed+t.DeadlineExceeded+t.Canceled+t.Errors) / float64(t.Predicts)
	}
	return r
}

func printReport(stdout io.Writer, rep load.Report) {
	fmt.Fprintf(stdout, "%-10s %9s %9s %6s %6s %6s %5s %5s %5s %8s %8s %8s\n",
		"phase", "offered", "achieved", "ok", "hit", "degr", "shed", "ddl", "err", "p50ms", "p95ms", "p99ms")
	row := func(p load.PhaseReport) {
		fmt.Fprintf(stdout, "%-10s %9.1f %9.1f %6d %6d %6d %5d %5d %5d %8.2f %8.2f %8.2f\n",
			p.Name, p.OfferedQPS, p.AchievedQPS, p.OK, p.CacheHits, p.Degraded,
			p.Shed, p.DeadlineExceeded, p.Errors+p.Canceled+p.UpdateErrors,
			p.Latency.P50Ms, p.Latency.P95Ms, p.Latency.P99Ms)
	}
	for _, p := range rep.Phases {
		row(p)
	}
	row(rep.Total)
	if rep.Total.Updates > 0 {
		fmt.Fprintf(stdout, "updates: %d ok, %d failed\n", rep.Total.UpdateOK, rep.Total.UpdateErrors)
	}
	if rep.MaxPacerLagMs > 0.5 {
		fmt.Fprintf(stdout, "pacer fell behind by up to %.2fms (offered rate not fully achieved)\n", rep.MaxPacerLagMs)
	}
	if rep.Reconciliation.Clean {
		fmt.Fprintf(stdout, "reconciliation: clean (%d predicts, %d updates match /metrics exactly)\n",
			rep.Reconciliation.PredictsSent, rep.Reconciliation.UpdatesSent)
	} else {
		for _, m := range rep.Reconciliation.Mismatches {
			fmt.Fprintln(stdout, "reconciliation MISMATCH:", m)
		}
	}
}
