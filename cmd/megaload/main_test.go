package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"mega/internal/load"
)

// TestRunFixedSchedule smokes the CLI end to end against the ephemeral
// in-process server: a short run must finish, print a clean
// reconciliation, and exit nil.
func TestRunFixedSchedule(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-rate", "40", "-duration", "1s", "-seed", "7",
		"-update-frac", "0.1", "-max-batch", "8", "-max-wait", "1ms",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "reconciliation: clean") {
		t.Fatalf("output missing clean reconciliation:\n%s", out.String())
	}
}

// TestRunJSONReport pins the -json contract: stdout is one decodable
// load.Report.
func TestRunJSONReport(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-rate", "30", "-duration", "500ms", "-json"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep load.Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("decode -json report: %v\noutput:\n%s", err, out.String())
	}
	if rep.Total.Sent == 0 {
		t.Fatal("report shows zero requests sent")
	}
	if !rep.Reconciliation.Clean {
		t.Fatalf("reconciliation not clean: %v", rep.Reconciliation.Mismatches)
	}
}

// TestRunAutotuneSmoke runs a minimal one-config capacity search and
// checks the bench record lands on disk, validates, and carries probes.
func TestRunAutotuneSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity search needs multi-second probes")
	}
	outPath := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var out strings.Builder
	err := run([]string{
		"-autotune", "-slo-p99", "50ms", "-probe-duration", "400ms",
		"-start-rate", "15", "-tolerance", "0.3",
		"-grid", "8/1ms/1/0", "-out", outPath,
	}, &out)
	if err != nil {
		t.Fatalf("run -autotune: %v\noutput:\n%s", err, out.String())
	}
	rec, err := load.ReadBenchRecord(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Configs) != 1 {
		t.Fatalf("record has %d configs, want 1", len(rec.Configs))
	}
	if len(rec.Configs[0].Capacity.Probes) == 0 {
		t.Fatal("capacity search recorded no probes")
	}
	if rec.Workload.NodeTypes < 1 {
		t.Fatalf("record workload vocabulary unresolved: %+v", rec.Workload)
	}
}

// TestRunFlagValidation pins the mutually exclusive mode checks.
func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-addr", "localhost:1", "-checkpoint", "x.ckpt"},
		{"-addr", "localhost:1", "-autotune"},
		{"-addr", "localhost:1", "-faults", "chaos"},
		{"-faults", "bogus"},
		{"-phases", "not-a-spec"},
		{"-autotune", "-grid", "16/2ms/1"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) = nil, want error", args)
		}
	}
}
