package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mega/internal/datasets"
	"mega/internal/models"
	"mega/internal/serve"
	"mega/internal/train"
)

// writeCheckpoint trains a tiny model and saves it, returning the path.
func writeCheckpoint(t *testing.T) string {
	t.Helper()
	ds := datasets.ZINC(datasets.Config{TrainSize: 8, ValSize: 4, TestSize: 1, Seed: 2})
	res, err := train.Run(ds, train.Options{
		Model: "GT", Engine: models.EngineMega,
		Dim: 16, Layers: 1, Heads: 2, BatchSize: 4, Epochs: 1, Seed: 2,
	})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := train.SaveCheckpointFile(path, res.Checkpoint(ds.Name), res.Model); err != nil {
		t.Fatalf("save: %v", err)
	}
	return path
}

func TestServeEndToEnd(t *testing.T) {
	path := writeCheckpoint(t)
	ready := make(chan string, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		errc <- run([]string{
			"-checkpoint", path, "-addr", "127.0.0.1:0",
			"-max-batch", "4", "-max-wait", "5ms", "-log-every", "0",
		}, &out, ready, stop)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}

	body := []byte(`{"num_nodes":4,"edges":[[0,1],[1,2],[2,3],[3,0]],"node_feats":[0,1,2,3],"edge_feats":[0,1,0,1]}`)
	post := func() serve.Prediction {
		t.Helper()
		resp, err := http.Post("http://"+addr+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		var pred serve.Prediction
		if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return pred
	}
	first := post()
	second := post()
	if len(first.Output) != 1 {
		t.Errorf("regression output width = %d", len(first.Output))
	}
	if first.CacheHit || !second.CacheHit {
		t.Errorf("cache hits: first %v second %v, want false/true", first.CacheHit, second.CacheHit)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var snap serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	resp.Body.Close()
	if snap.Cache.Hits < 1 || snap.Requests < 2 {
		t.Errorf("metrics: %+v", snap)
	}

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server never shut down")
	}
	if !strings.Contains(out.String(), "listening on") {
		t.Errorf("startup log missing: %q", out.String())
	}
}

func TestRunRequiresCheckpoint(t *testing.T) {
	if err := run(nil, io.Discard, nil, nil); err == nil {
		t.Error("missing -checkpoint should error")
	}
}

func TestRunRejectsUnknownEngine(t *testing.T) {
	err := run([]string{"-checkpoint", "x.ckpt", "-engine", "cuda"}, io.Discard, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Errorf("err = %v", err)
	}
}

func TestRunRejectsMissingFile(t *testing.T) {
	err := run([]string{"-checkpoint", filepath.Join(t.TempDir(), "nope.ckpt")}, io.Discard, nil, nil)
	if err == nil {
		t.Error("missing checkpoint file should error")
	}
}
