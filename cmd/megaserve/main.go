// Command megaserve serves a trained MEGA checkpoint over HTTP: graphs
// posted to /predict are micro-batched into block-diagonal forward passes,
// and their path representations are cached by canonical topology hash so
// repeated graphs skip the traversal entirely.
//
// Usage:
//
//	megatrain -dataset ZINC -model GT -checkpoint gt.ckpt
//	megaserve -checkpoint gt.ckpt -addr :8391
//	curl -s localhost:8391/predict -d '{"num_nodes":3,"edges":[[0,1],[1,2]],"node_feats":[0,1,2]}'
//	curl -s localhost:8391/metrics
//
// Flags:
//
//	megaserve -checkpoint model.ckpt [-addr :8391] [-engine mega|dgl]
//	          [-max-batch 16] [-max-wait 2ms] [-workers 0]
//	          [-cache 4096] [-log-every 30s]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"mega/internal/models"
	"mega/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "megaserve:", err)
		os.Exit(1)
	}
}

// run starts the service. If ready is non-nil it receives the bound
// address once listening; if stop is non-nil, closing it shuts the server
// down gracefully. Both hooks exist for tests; main passes nil.
func run(args []string, stdout io.Writer, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("megaserve", flag.ContinueOnError)
	ckpt := fs.String("checkpoint", "", "trained model checkpoint written by megatrain -checkpoint (required)")
	addr := fs.String("addr", ":8391", "HTTP listen address")
	engine := fs.String("engine", "mega", "attention engine: dgl or mega")
	maxBatch := fs.Int("max-batch", 16, "max requests packed into one forward pass")
	maxWait := fs.Duration("max-wait", 2*time.Millisecond, "max time an open batch waits before flushing")
	workers := fs.Int("workers", 0, "forward-pass workers (0 = GOMAXPROCS)")
	cacheCap := fs.Int("cache", 4096, "path-representation cache capacity in graphs (0 disables)")
	logEvery := fs.Duration("log-every", 30*time.Second, "metrics log interval (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ckpt == "" {
		return errors.New("-checkpoint is required")
	}

	opts := serve.Options{
		MaxBatch: *maxBatch,
		MaxWait:  *maxWait,
		Workers:  *workers,
	}.WithCacheCapacity(*cacheCap)
	switch *engine {
	case "dgl":
		opts.Engine = models.EngineDGL
	case "mega":
		opts.Engine = models.EngineMega
	default:
		return fmt.Errorf("unknown engine %q (want dgl or mega)", *engine)
	}

	s, err := serve.NewFromCheckpointFile(*ckpt, opts)
	if err != nil {
		return err
	}
	defer s.Close()

	meta := s.Meta()
	fmt.Fprintf(stdout, "serving %s (%s, dim %d, %d layers, task %s) from %s\n",
		meta.Model, meta.Dataset, meta.Config.Dim, meta.Config.Layers, meta.Task, *ckpt)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "listening on %s (engine %s, max-batch %d, max-wait %v, cache %d)\n",
		ln.Addr(), *engine, *maxBatch, *maxWait, *cacheCap)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	srv := &http.Server{Handler: s.Handler()}

	logDone := make(chan struct{})
	if *logEvery > 0 {
		go logMetrics(stdout, s, *logEvery, logDone)
	}
	defer close(logDone)

	if stop != nil {
		go func() {
			<-stop
			srv.Close()
		}()
	}
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// logMetrics periodically prints a one-line service summary.
func logMetrics(stdout io.Writer, s *serve.Server, every time.Duration, done <-chan struct{}) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			m := s.MetricsSnapshot(false)
			fmt.Fprintf(stdout,
				"reqs %d (%.1f/s, %d err) batches %d (mean %.1f, max %d) cache %d/%d hit %d miss %d evict %d | queue p50 %.2fms fwd p50 %.2fms total p99 %.2fms\n",
				m.Requests, m.ThroughputRPS, m.Errors,
				m.Batches, m.MeanBatchSize, m.MaxBatchSize,
				m.Cache.Size, m.Cache.Capacity, m.Cache.Hits, m.Cache.Misses, m.Cache.Evictions,
				m.QueueLatency.P50Ms, m.ForwardLatency.P50Ms, m.TotalLatency.P99Ms)
		}
	}
}
