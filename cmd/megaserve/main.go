// Command megaserve serves a trained MEGA checkpoint over HTTP: graphs
// posted to /predict are micro-batched into block-diagonal forward passes,
// and their path representations are cached by canonical topology hash so
// repeated graphs skip the traversal entirely.
//
// Usage:
//
//	megatrain -dataset ZINC -model GT -checkpoint gt.ckpt
//	megaserve -checkpoint gt.ckpt -addr :8391
//	curl -s localhost:8391/predict -d '{"num_nodes":3,"edges":[[0,1],[1,2]],"node_feats":[0,1,2]}'
//	curl -s localhost:8391/metrics
//
// Flags:
//
//	megaserve -checkpoint model.ckpt [-addr :8391] [-engine mega|dgl]
//	          [-precision f64|f32]
//	          [-max-batch 16] [-max-wait 2ms] [-workers 0]
//	          [-cache 4096] [-log-every 30s]
//	          [-checkpoint-dir dir] [-queue 256] [-deadline 0]
//	          [-max-deadline 0] [-breaker-threshold 5]
//	          [-breaker-cooldown 500ms] [-grace 5s]
//	          [-shard-workers 0] [-shard-threshold 0]
//	          [-dist-workers addr,addr,...] [-dist-group-size 0]
//	          [-dist-job-workers 2]
//	          [-mutation-sessions 64]
//	          [-sparsify f] [-sparsify-seed s]
//
// -checkpoint-dir serves the newest good checkpoint from a megatrain
// checkpoint directory (corrupt files are quarantined, not fatal) instead
// of a single -checkpoint file. The remaining flags tune the
// fault-tolerance layer: bounded admission queue (full → 429), per-request
// deadlines (server default plus a cap on the wire's timeout_ms override),
// the circuit breaker that falls back to the DGL engine when MEGA
// preprocessing keeps failing, and the shutdown drain grace.
// -shard-workers routes large MEGA batches (total vertices at or above
// -shard-threshold) through the shard-parallel execution engine; answers
// stay bit-identical to the single-engine pass, and per-worker timing plus
// exchange traffic appear on /metrics.
//
// -dist-workers hands large MEGA batches to a fleet of megashard worker
// processes instead: the comma-separated addresses are replica groups of
// -dist-group-size (group-major; 0 = one group of all workers), graph
// fingerprints are consistent-hash routed to a group, and each job fans out
// across -dist-job-workers live replicas. A dead worker mid-batch triggers
// transparent failover to a peer replica — answers stay bit-identical to
// the in-process forward — and only a whole group down degrades the batch
// to the DGL fallback engine. Fleet liveness appears on /healthz, traffic
// and failover counters on /metrics. Every megashard must serve the same
// checkpoint file as megaserve.
//
// -precision f32 serves MEGA batches through the float32 fast path: the
// checkpoint's parameters are downcast once at load and the forward pass
// runs tape-free float32 kernels in the head-major attention layout.
// Answers carry "precision":"f32" and stay within a measured ULP envelope
// of the float64 forward (see BENCH_precision.json); degraded fallback
// answers always run float64. Only GT and GAT checkpoints qualify.
//
// -sparsify serves every MEGA representation from an effective-resistance
// sparsified copy of each posted graph: about that fraction of edges
// survives seeded importance sampling (-sparsify-seed), shrinking the
// attention band and the path. Cached reps are keyed by topology AND a
// digest of the traverse/sparsify options, so servers with different
// preprocessing never alias. Sparsified serving rejects POST /update
// (incremental repair assumes the full topology).
//
// POST /update maintains path representations incrementally for evolving
// graphs: a batch of edge inserts/deletes against a cached fingerprint
// repairs the representation in place of a full re-preprocess and publishes
// it under the successor fingerprint, so the next /predict of the mutated
// graph is a cache hit. -mutation-sessions bounds the resident mutable
// lineages.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mega/internal/dist"
	"mega/internal/models"
	"mega/internal/serve"
	"mega/internal/traverse"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "megaserve:", err)
		os.Exit(1)
	}
}

// run starts the service. If ready is non-nil it receives the bound
// address once listening; if stop is non-nil, closing it shuts the server
// down gracefully. Both hooks exist for tests; main passes nil.
func run(args []string, stdout io.Writer, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("megaserve", flag.ContinueOnError)
	ckpt := fs.String("checkpoint", "", "trained model checkpoint written by megatrain -checkpoint")
	ckptDir := fs.String("checkpoint-dir", "", "megatrain checkpoint directory; serves the newest good checkpoint (alternative to -checkpoint)")
	addr := fs.String("addr", ":8391", "HTTP listen address")
	engine := fs.String("engine", "mega", "attention engine: dgl or mega")
	precision := fs.String("precision", "f64", "inference arithmetic: f64 (training-grade) or f32 (fast path, GT/GAT only)")
	maxBatch := fs.Int("max-batch", 16, "max requests packed into one forward pass")
	maxWait := fs.Duration("max-wait", 2*time.Millisecond, "max time an open batch waits before flushing")
	workers := fs.Int("workers", 0, "forward-pass workers (0 = GOMAXPROCS)")
	cacheCap := fs.Int("cache", 4096, "path-representation cache capacity in graphs (0 disables)")
	logEvery := fs.Duration("log-every", 30*time.Second, "metrics log interval (0 disables)")
	queue := fs.Int("queue", 256, "admission queue depth; a full queue sheds requests with HTTP 429")
	deadline := fs.Duration("deadline", 0, "default per-request deadline (0 disables)")
	maxDeadline := fs.Duration("max-deadline", 0, "cap on any request deadline, including timeout_ms overrides (0 = uncapped)")
	breakerThreshold := fs.Int("breaker-threshold", 5, "consecutive preprocessing failures that trip the fallback circuit breaker")
	breakerCooldown := fs.Duration("breaker-cooldown", 500*time.Millisecond, "first breaker open window before a half-open probe")
	grace := fs.Duration("grace", 5*time.Second, "shutdown drain grace before queued requests are failed")
	shardWorkers := fs.Int("shard-workers", 0, "shard-parallel workers for large MEGA batches (must divide 8; 0 disables)")
	shardThreshold := fs.Int("shard-threshold", 0, "min total vertices in a batch before sharding (0 = default 256)")
	distWorkers := fs.String("dist-workers", "", "comma-separated megashard worker addresses, group-major (enables distributed shard serving)")
	distGroupSize := fs.Int("dist-group-size", 0, "replica count per megashard group (0 = one group of all workers)")
	distJobWorkers := fs.Int("dist-job-workers", 2, "shard fan-out per distributed job (clamped to live replicas)")
	mutationSessions := fs.Int("mutation-sessions", 64, "resident /update mutation sessions (graph lineages kept warm)")
	sparsify := fs.Float64("sparsify", 0, "effective-resistance keep fraction in (0,1] for MEGA preprocessing (0 = off)")
	sparsifySeed := fs.Int64("sparsify-seed", 1, "sparsifier seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*ckpt == "") == (*ckptDir == "") {
		return errors.New("exactly one of -checkpoint or -checkpoint-dir is required")
	}

	opts := serve.Options{
		MaxBatch:         *maxBatch,
		MaxWait:          *maxWait,
		Workers:          *workers,
		QueueDepth:       *queue,
		DefaultTimeout:   *deadline,
		MaxTimeout:       *maxDeadline,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		ShutdownGrace:    *grace,

		ShardWorkers:         *shardWorkers,
		ShardVertexThreshold: *shardThreshold,
		MutationSessions:     *mutationSessions,
		Precision:            *precision,
	}.WithCacheCapacity(*cacheCap)
	if *sparsify > 0 {
		opts.Mega = models.MegaOptions{Traverse: traverse.Options{
			EdgeCoverage: 1, Start: -1,
			SparsifyFraction: *sparsify, SparsifySeed: *sparsifySeed,
		}}
	}
	if *distWorkers != "" {
		opts.Dist = &dist.SuperOptions{
			Workers:    strings.Split(*distWorkers, ","),
			GroupSize:  *distGroupSize,
			JobWorkers: *distJobWorkers,
		}
	}
	switch *engine {
	case "dgl":
		opts.Engine = models.EngineDGL
	case "mega":
		opts.Engine = models.EngineMega
	default:
		return fmt.Errorf("unknown engine %q (want dgl or mega)", *engine)
	}

	var s *serve.Server
	var err error
	source := *ckpt
	if *ckptDir != "" {
		source = *ckptDir
		s, err = serve.NewFromCheckpointDir(*ckptDir, opts)
	} else {
		s, err = serve.NewFromCheckpointFile(*ckpt, opts)
	}
	if err != nil {
		return err
	}
	defer s.Close()

	meta := s.Meta()
	fmt.Fprintf(stdout, "serving %s (%s, dim %d, %d layers, task %s) from %s\n",
		meta.Model, meta.Dataset, meta.Config.Dim, meta.Config.Layers, meta.Task, source)
	if n := s.MetricsSnapshot(false).CheckpointRecoveries; n > 0 {
		fmt.Fprintf(stdout, "quarantined %d corrupt checkpoint(s) while loading\n", n)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "listening on %s (engine %s, precision %s, max-batch %d, max-wait %v, cache %d)\n",
		ln.Addr(), *engine, *precision, *maxBatch, *maxWait, *cacheCap)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	srv := &http.Server{Handler: s.Handler()}

	logDone := make(chan struct{})
	if *logEvery > 0 {
		go logMetrics(stdout, s, *logEvery, logDone)
	}
	defer close(logDone)

	// SIGINT/SIGTERM (or the test stop hook) trigger a graceful drain:
	// stop accepting, let in-flight HTTP finish within the grace window,
	// then the deferred s.Close drains the batcher the same way.
	sigCtx, cancelSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancelSig()
	go func() {
		select {
		case <-stop: // nil channel when unused: blocks forever
		case <-sigCtx.Done():
		}
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// logMetrics periodically prints a one-line service summary.
func logMetrics(stdout io.Writer, s *serve.Server, every time.Duration, done <-chan struct{}) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			m := s.MetricsSnapshot(false)
			fmt.Fprintf(stdout,
				"reqs %d (%.1f/s, %d err) batches %d (mean %.1f, max %d) cache %d/%d hit %d miss %d evict %d | queue p50 %.2fms fwd p50 %.2fms total p99 %.2fms\n",
				m.Requests, m.ThroughputRPS, m.Errors,
				m.Batches, m.MeanBatchSize, m.MaxBatchSize,
				m.Cache.Size, m.Cache.Capacity, m.Cache.Hits, m.Cache.Misses, m.Cache.Evictions,
				m.QueueLatency.P50Ms, m.ForwardLatency.P50Ms, m.TotalLatency.P99Ms)
		}
	}
}
