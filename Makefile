# MEGA reproduction — common entry points.

GO ?= go

.PHONY: all build vet test test-race bench fuzz experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./internal/dist/ ./internal/models/ ./internal/dynamic/

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing passes over the binary decoder and the traversal.
fuzz:
	$(GO) test ./internal/band/ -fuzz FuzzReadRep -fuzztime 30s
	$(GO) test ./internal/band/ -fuzz FuzzTraverseRoundTrip -fuzztime 30s

# Regenerate every paper table and figure at interactive scale.
experiments:
	$(GO) run ./cmd/megabench -scale medium

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/molecules -train 64 -epochs 3 -dim 32
	$(GO) run ./examples/isomorphism
	$(GO) run ./examples/distributed
	$(GO) run ./examples/streaming -n 1000 -updates 200

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
