# MEGA reproduction — common entry points.

GO ?= go

.PHONY: all check build vet test test-race race bench fuzz experiments examples clean

all: check

# check is the full verification flow CI mirrors: compile, static
# analysis, the test suite, and the race detector over everything (the
# serve worker pool makes -race load-bearing).
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the whole suite under the race detector (slow, thorough).
race:
	$(GO) test -race ./...

# test-race is the quick scoped variant covering the concurrency-bearing
# packages only.
test-race:
	$(GO) test -race ./internal/dist/ ./internal/models/ ./internal/dynamic/ ./internal/serve/ ./cmd/megaserve/

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing passes over the binary decoder and the traversal.
fuzz:
	$(GO) test ./internal/band/ -fuzz FuzzReadRep -fuzztime 30s
	$(GO) test ./internal/band/ -fuzz FuzzTraverseRoundTrip -fuzztime 30s

# Regenerate every paper table and figure at interactive scale.
experiments:
	$(GO) run ./cmd/megabench -scale medium

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/molecules -train 64 -epochs 3 -dim 32
	$(GO) run ./examples/isomorphism
	$(GO) run ./examples/distributed
	$(GO) run ./examples/streaming -n 1000 -updates 200

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
