# MEGA reproduction — common entry points.

GO ?= go

.PHONY: all check build vet test test-race race race-short chaos chaos-short dist-chaos shard-check dynamic-check load-check precision-check sparsify-check bench bench-compute bench-attention bench-dist bench-dynamic bench-serve bench-precision bench-sparsify fuzz fuzz-smoke experiments examples clean

all: check

# check is the full verification flow CI mirrors: compile, static
# analysis, the test suite, and the race detector over everything (the
# serve worker pool makes -race load-bearing).
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the whole suite under the race detector (slow, thorough).
race:
	$(GO) test -race ./...

# test-race is the quick scoped variant covering the concurrency-bearing
# packages only.
test-race:
	$(GO) test -race ./internal/dist/ ./internal/models/ ./internal/dynamic/ ./internal/serve/ ./cmd/megaserve/

# race-short is the PR-gating race pass: -short over the packages that
# exercise the compute worker pool (tensor kernels, engines, optimiser,
# trainer, server) plus the other concurrency-bearing packages. Full
# `make race` stays the push/nightly job.
race-short:
	$(GO) test -race -short ./internal/compute/ ./internal/tensor/ ./internal/nn/ ./internal/models/ ./internal/train/ ./internal/serve/ ./internal/dist/ ./internal/dynamic/

# chaos runs the fault-injection end-to-end harness (train → checkpoint →
# serve under injected faults) under the race detector with a fixed seed,
# writing the fault-point coverage log to chaos-report.log. chaos-short is
# the PR-sized variant CI runs.
chaos:
	CHAOS_REPORT=$(CURDIR)/chaos-report.log $(GO) test -race -run TestChaosEndToEnd -count=1 -v ./internal/serve/

chaos-short:
	CHAOS_REPORT=$(CURDIR)/chaos-report.log $(GO) test -race -short -run TestChaosEndToEnd -count=1 -v ./internal/serve/

# dist-chaos runs the process-level distributed chaos gate: real megashard
# worker processes (the test binary re-exec'd), a supervisor driving batches
# through them, and a SIGKILL delivered mid-batch. Asserts zero lost
# responses, bit-identical answers through replica failover, wire traffic
# exactly matching the analytical partition model, and the auto-restarted
# worker rejoining its group. The kill/failover event log lands in
# dist-chaos-report.log (the CI artifact).
dist-chaos:
	DIST_CHAOS_REPORT=$(CURDIR)/dist-chaos-report.log $(GO) test -race -run TestDistChaos -count=1 -v ./internal/dist/

# shard-check runs the shard-engine equivalence gates: bit-identical
# forward against the single engine at every worker count, k-invariant
# gradients, bit-identical training trajectories at k ∈ {2,4} vs k=1,
# observed-vs-analytical exchange traffic, and the sharded serving path.
shard-check:
	$(GO) test ./internal/models/ -run 'TestShard' -count=1
	$(GO) test ./internal/train/ -run 'TestShardedTraining' -count=1
	$(GO) test ./internal/dist/ -run 'TestRunHaloExchange|TestAnalyzePathPartition' -count=1
	$(GO) test ./internal/serve/ -run 'TestShard' -count=1

# dynamic-check runs the mutation-subsystem gates: the differential fuzz
# corpus (maintained rep bit-identical to a from-scratch rebuild after
# random add/remove streams, including fused batches), prediction
# bit-identity through the monolithic and sharded engines, splice-vs-build
# equivalence, batch atomicity, and the serve /update end-to-end tests
# (session continuation, forking, eviction, error taxonomy).
dynamic-check:
	$(GO) test ./internal/dynamic/ -run 'TestPredictionBitIdentity|TestAdoptedRepPredictionIdentity|TestSpliceMatchesBuild|TestBatchAtomicity' -count=1
	$(GO) test ./internal/dynamic/ -run '^$$' -fuzz FuzzMaintainerEquivalence -fuzztime 10s
	$(GO) test ./internal/serve/ -run 'TestUpdate|TestMutatorPool' -count=1

# load-check runs the open-loop load-harness gates: the deterministic
# scheduler and autotuner unit tests, the short end-to-end load runs
# (real checkpointed server, faults armed, exact client-vs-/metrics
# reconciliation, zero lost responses), the mixed predict/update
# bit-identity test, and the megaload CLI smoke.
load-check:
	$(GO) test -short ./internal/load/ -count=1
	$(GO) test -short ./cmd/megaload/ -count=1
	$(GO) test ./internal/serve/ -run 'TestOptionsValidate|TestNewRejectsBadOptions|TestBatcher' -count=1

# precision-check runs the float32 fast-path gates: the SIMD kernels
# pinned bit-for-bit against their scalar references, f32 kernel
# equivalence across thread counts and attention layouts, checkpoint
# downcast round-trips, the f32-vs-f64 differential suite under the ULP
# envelope, and the serve-side -precision f32 end-to-end tests (including
# degraded-mode fallback to float64).
precision-check:
	$(GO) test ./internal/tensor/ -run 'TestSIMDKernelsMatchReference|TestULPDistance32|TestMeasureDivergence|TestKernels32MatchF64|TestFusedSegmentAttention32MatchesF64|TestAttention32LayoutsBitIdentical' -count=1
	$(GO) test ./internal/models/ -run 'F32' -count=1
	$(GO) test ./internal/train/ -run 'TestCheckpointDowncast' -count=1
	$(GO) test ./internal/serve/ -run 'TestOptionsPrecisionValidate|TestPrecision' -count=1

# sparsify-check runs the effective-resistance sparsification gates: the
# scorer/sampler unit suite (bridge dominance, determinism across thread
# counts, salt independence of the drop and sparsify streams), traversal
# composition (drop+sparsify order bit-identity, independent streams,
# two-sided revisit bound, band shrinkage, options digest), the composite
# rep-cache key regression tests, the sharded-forward bit-identity suite
# over sparsified reps, and the dynamic-package rejection.
sparsify-check:
	$(GO) test ./internal/sparsify/ -count=1
	$(GO) test ./internal/traverse/ -run 'Sparsif|TestOptionsDigest' -count=1
	$(GO) test ./internal/serve/ -run 'TestRepCacheKeyCoversOptions|TestServerRepKeyIncludesSparsify|TestRepCache' -count=1
	$(GO) test ./internal/models/ -run 'Sparsified' -count=1
	$(GO) test ./internal/train/ -run 'TestShardFallback' -count=1
	$(GO) test ./internal/dynamic/ -run 'TestUnsupportedConfigurations' -count=1

# Benchmark records. Each BENCH_*.json in the repo root is regenerated by
# exactly one target below, on demand — never by `make test` or CI PR
# gates (numbers are machine-relative; every record carries its host):
#
#   BENCH_tensor.json     bench-compute    tensor kernels, f64 vs f32 fast path
#   BENCH_attention.json  bench-attention  fused vs staged attention
#   BENCH_dist.json       bench-dist       shard-parallel halo exchange at k ∈ {1,2,4}
#   BENCH_dynamic.json    bench-dynamic    incremental repair vs full re-preprocess
#   BENCH_serve.json      bench-serve      p99-SLO serving capacity autotune
#   BENCH_precision.json  bench-precision  serve-side f32-vs-f64 speedup + ULP envelope
#   BENCH_sparsify.json   bench-sparsify   effective-resistance keep-fraction matrix
#
# bench regenerates all of them.
bench: bench-compute bench-attention bench-dist bench-dynamic bench-serve bench-precision bench-sparsify

# bench-compute regenerates the tensor-kernel numbers recorded in
# BENCH_tensor.json: serial-vs-parallel float64 baselines plus the float32
# fast-path kernels in both attention scratch layouts (fixed iteration
# count for comparable runs).
bench-compute:
	BENCH_TENSOR_OUT=$(CURDIR)/BENCH_tensor.json $(GO) test ./internal/tensor/ -run TestWriteBenchTensor -count=1 -v -benchtime 5x

# bench-attention regenerates the fused-vs-staged attention numbers
# recorded in BENCH_attention.json (fixed iteration count for comparable
# runs; -benchmem because allocation counts are half the claim).
bench-attention:
	$(GO) test ./internal/models/ -run '^$$' -bench 'Attention' -benchtime 20x -benchmem

# bench-dist regenerates the shard-parallel halo-exchange numbers recorded
# in BENCH_dist.json: one full sharded forward (real GT layers + halo /
# duplicate-sync / edge-fold exchange) at k ∈ {1, 2, 4} over the same
# 512-node workload, so the k-scaling of wall time and traffic is
# directly comparable.
bench-dist:
	$(GO) test ./internal/dist/ -run '^$$' -bench 'HaloExchange' -benchtime 3x -benchmem

# bench-dynamic regenerates the incremental-repair-vs-full-re-preprocess
# numbers recorded in BENCH_dynamic.json: ApplyBatch (fused prefix-replay /
# suffix-resume) against models.PrepareMega of the identical mutated graph,
# at batch sizes {1,2,4,8} under uniform and traversal-localized mutation
# mixes.
bench-dynamic:
	BENCH_DYNAMIC_OUT=$(CURDIR)/BENCH_dynamic.json $(GO) test ./internal/dynamic/ -run TestWriteBenchDynamic -count=1 -v

# bench-serve regenerates the serving-capacity numbers recorded in
# BENCH_serve.json: the open-loop capacity autotuner sweeps the micro-batch
# knob grid, bracket-searching each configuration for its max sustainable
# QPS under the p99 SLO, with client counts reconciled against /metrics at
# every probe. Numbers are machine-relative; the record carries the host.
bench-serve:
	$(GO) run ./cmd/megaload -autotune -slo-p99 25ms -probe-duration 2s \
		-start-rate 8 -tolerance 0.1 -out $(CURDIR)/BENCH_serve.json

# bench-precision regenerates the float32 fast-path numbers recorded in
# BENCH_precision.json: serve-side f32-vs-f64 throughput per workload
# class (interleaved min-of-chunks timing), the attention-layout
# comparison, and the measured ULP/relative-error divergence — asserted
# inside the envelope on every run, with the ≥1.5× acceptance bar on full
# runs. BENCH_PRECISION_FAST=1 (the CI smoke) shrinks the timed rounds
# and skips the speedup bar.
bench-precision:
	BENCH_PRECISION_OUT=$(CURDIR)/BENCH_precision.json $(GO) test ./internal/serve/ -run TestWriteBenchPrecision -count=1 -v -timeout 30m

# bench-sparsify regenerates the effective-resistance sparsification
# matrix recorded in BENCH_sparsify.json: band half-width, revisits, path
# expansion, surviving edges, and simulated GTX1080 cycles per dataset ×
# keep fraction, plus the convergence shape at keep 0.5 vs unsparsified on
# ZINC. The keep-0.5 acceptance bar (band no wider, cycles strictly lower)
# and fixed-seed bit-reproducibility are asserted on every run.
# BENCH_SPARSIFY_FAST=1 (the CI smoke) shrinks the scale.
bench-sparsify:
	BENCH_SPARSIFY_OUT=$(CURDIR)/BENCH_sparsify.json $(GO) test ./internal/experiments/ -run TestWriteBenchSparsify -count=1 -v -timeout 30m

# Short fuzzing passes over the binary decoder, the traversal, and the
# graph hashes.
fuzz:
	$(GO) test ./internal/dist/ -fuzz FuzzWireRoundTrip -fuzztime 30s
	$(GO) test ./internal/band/ -fuzz FuzzReadRep -fuzztime 30s
	$(GO) test ./internal/band/ -fuzz FuzzTraverseRoundTrip -fuzztime 30s
	$(GO) test ./internal/graph/ -fuzz FuzzFingerprint -fuzztime 30s
	$(GO) test ./internal/traverse/ -fuzz FuzzTraverse -fuzztime 30s
	$(GO) test ./internal/traverse/ -fuzz FuzzSparsifiedTraverse -fuzztime 30s

# fuzz-smoke is the CI-sized pass: a few seconds per target, enough to
# catch regressions in the properties themselves.
fuzz-smoke:
	$(GO) test ./internal/dist/ -fuzz FuzzWireRoundTrip -fuzztime 5s
	$(GO) test ./internal/band/ -fuzz FuzzReadRep -fuzztime 5s
	$(GO) test ./internal/band/ -fuzz FuzzTraverseRoundTrip -fuzztime 5s
	$(GO) test ./internal/graph/ -fuzz FuzzFingerprint -fuzztime 5s
	$(GO) test ./internal/traverse/ -fuzz FuzzTraverse -fuzztime 5s
	$(GO) test ./internal/traverse/ -fuzz FuzzSparsifiedTraverse -fuzztime 5s

# Regenerate every paper table and figure at interactive scale.
experiments:
	$(GO) run ./cmd/megabench -scale medium

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/molecules -train 64 -epochs 3 -dim 32
	$(GO) run ./examples/isomorphism
	$(GO) run ./examples/distributed
	$(GO) run ./examples/streaming -n 1000 -updates 200

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
