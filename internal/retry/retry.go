// Package retry is the shared retry/backoff helper for transient-failure
// paths: checkpoint IO retries torn writes and flaky reads, and the serve
// circuit breaker spaces its re-open probes with the same backoff curve.
// Backoff is exponential with deterministic jitter — jitter comes from a
// hash of (seed, attempt), not a global RNG, so tests under a fixed seed
// see the same schedule every run.
package retry

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"
)

// Config tunes one retry loop. The zero value is usable: 3 attempts,
// 10ms base, 1s cap, 20% jitter, seed 1.
type Config struct {
	// Attempts is the maximum number of tries, including the first.
	Attempts int
	// Base is the sleep after the first failure; attempt k sleeps
	// Base·2^(k-1), capped at Max.
	Base time.Duration
	// Max caps a single backoff sleep.
	Max time.Duration
	// Jitter widens each sleep to [1−j, 1+j]·backoff, j in [0, 1).
	Jitter float64
	// Seed makes the jitter sequence deterministic.
	Seed int64
	// Sleep overrides the sleeper (tests); nil uses a context-aware wait
	// on a real timer.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.Base <= 0 {
		c.Base = 10 * time.Millisecond
	}
	if c.Max <= 0 {
		c.Max = time.Second
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		c.Jitter = 0.2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sleep == nil {
		c.Sleep = sleepCtx
	}
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent marks err as not worth retrying: Do returns the wrapped error
// immediately. Use it for deterministic failures (corrupt data, invalid
// input) inside otherwise-transient operations.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Backoff returns the sleep before retry number attempt (attempt 1 is the
// sleep after the first failure): exponential from cfg.Base, capped at
// cfg.Max, with deterministic jitter from cfg.Seed. Exported for callers
// that pace themselves (the breaker's successive open windows) rather
// than looping through Do.
func Backoff(attempt int, cfg Config) time.Duration {
	cfg = cfg.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := cfg.Base
	for i := 1; i < attempt && d < cfg.Max; i++ {
		d *= 2
	}
	if d > cfg.Max {
		d = cfg.Max
	}
	if cfg.Jitter > 0 {
		// u in [0,1) from a hash of (seed, attempt): deterministic, yet
		// spread across attempts.
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%d", cfg.Seed, attempt)
		u := float64(h.Sum64()>>11) / float64(1<<53)
		scale := 1 + cfg.Jitter*(2*u-1)
		d = time.Duration(float64(d) * scale)
		if d < time.Nanosecond {
			d = time.Nanosecond
		}
	}
	return d
}

// Do runs fn up to cfg.Attempts times, sleeping Backoff(k) between tries,
// until fn returns nil, a Permanent error, or the context is done. The
// returned error is fn's last error (unwrapped from Permanent); if the
// context expired first, it is joined with the context error.
func Do(ctx context.Context, cfg Config, fn func() error) error {
	cfg = cfg.withDefaults()
	var last error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return errors.Join(err, last)
		}
		err := fn()
		if err == nil {
			return nil
		}
		var p *permanentError
		if errors.As(err, &p) {
			return p.err
		}
		last = err
		if attempt >= cfg.Attempts {
			return last
		}
		if err := cfg.Sleep(ctx, Backoff(attempt, cfg)); err != nil {
			return errors.Join(err, last)
		}
	}
}
