package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeSleep records requested sleeps without waiting.
func fakeSleep(log *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*log = append(*log, d)
		return ctx.Err()
	}
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	var sleeps []time.Duration
	calls := 0
	err := Do(context.Background(), Config{Attempts: 5, Sleep: fakeSleep(&sleeps)}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if len(sleeps) != 2 {
		t.Fatalf("slept %d times, want 2", len(sleeps))
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	var sleeps []time.Duration
	boom := errors.New("boom")
	calls := 0
	err := Do(context.Background(), Config{Attempts: 3, Sleep: fakeSleep(&sleeps)}, func() error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 3 || len(sleeps) != 2 {
		t.Fatalf("err=%v calls=%d sleeps=%d", err, calls, len(sleeps))
	}
}

func TestPermanentStopsImmediately(t *testing.T) {
	deep := errors.New("corrupt")
	calls := 0
	err := Do(context.Background(), Config{Attempts: 5}, func() error {
		calls++
		return Permanent(deep)
	})
	if err != deep || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if IsPermanent(err) {
		t.Error("Do should unwrap the Permanent marker")
	}
	if !IsPermanent(Permanent(deep)) {
		t.Error("IsPermanent(Permanent(err)) = false")
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
}

func TestDoRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	calls := 0
	err := Do(ctx, Config{Attempts: 10, Sleep: func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}}, func() error {
		calls++
		return boom
	})
	if !errors.Is(err, context.Canceled) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want canceled joined with boom", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestBackoffCurve(t *testing.T) {
	cfg := Config{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: 0, Seed: 1}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond,
	}
	for i, w := range want {
		if got := Backoff(i+1, cfg); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	cfg := Config{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.2, Seed: 9}
	for attempt := 1; attempt <= 4; attempt++ {
		a, b := Backoff(attempt, cfg), Backoff(attempt, cfg)
		if a != b {
			t.Fatalf("attempt %d: jitter not deterministic (%v vs %v)", attempt, a, b)
		}
		base := Backoff(attempt, Config{Base: cfg.Base, Max: cfg.Max, Jitter: 0, Seed: cfg.Seed})
		lo := time.Duration(float64(base) * 0.8)
		hi := time.Duration(float64(base) * 1.2)
		if a < lo || a > hi {
			t.Errorf("attempt %d: %v outside [%v, %v]", attempt, a, lo, hi)
		}
	}
	if Backoff(3, cfg) == Backoff(3, Config{Base: cfg.Base, Max: cfg.Max, Jitter: 0.2, Seed: 10}) {
		t.Error("different seeds produced identical jitter")
	}
}
