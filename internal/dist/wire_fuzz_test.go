package dist

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWireRoundTrip drives the frame decoder with arbitrary bytes and
// pins two properties: (1) the decoder never panics and never accepts a
// frame whose re-encoding differs from the accepted bytes (so every
// accepted message round-trips bit-identically, NaN payloads included);
// (2) every frame the encoder produces — seeded with all message kinds,
// including NaN/±Inf payloads — decodes back to the same bits.
func FuzzWireRoundTrip(f *testing.F) {
	for _, m := range wireTestMsgs() {
		f.Add(EncodeFrame(m))
	}
	f.Add([]byte{})
	f.Add([]byte("MGW1junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := DecodeFrame(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("decode error %v consumed %d bytes", err, n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decoded frame length %d out of range [1,%d]", n, len(data))
		}
		// Accepted frames must re-encode to the exact accepted bytes: the
		// codec has one canonical encoding per message, so decode∘encode is
		// the identity on valid frames and bit-identity is structural.
		re := EncodeFrame(m)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encoded frame differs from accepted bytes")
		}
		// The streaming reader must agree with the buffer decoder.
		got, err := ReadFrame(bytes.NewReader(data[:n]))
		if err != nil {
			t.Fatalf("ReadFrame rejected a frame DecodeFrame accepted: %v", err)
		}
		if !bytes.Equal(EncodeFrame(got), re) {
			t.Fatalf("ReadFrame decoded different content than DecodeFrame")
		}
	})
}

// FuzzWireStream feeds arbitrary bytes to the streaming reader: it must
// never panic, and must terminate with io.EOF, a codec error, or a
// truncation error.
func FuzzWireStream(f *testing.F) {
	var seed bytes.Buffer
	for _, m := range wireTestMsgs() {
		_ = WriteFrame(&seed, m)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("MGW1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			_, err := ReadFrame(r)
			if err == nil {
				continue
			}
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
				errors.Is(err, ErrBadMagic) || errors.Is(err, ErrCorruptFrame) ||
				errors.Is(err, ErrFrameTooLarge) || errors.Is(err, ErrUnknownKind) {
				return
			}
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}
