package dist

import (
	"bytes"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"reflect"
	"testing"

	"mega/internal/datasets"
	"mega/internal/graph"
	"mega/internal/models"
)

// wireTestMsgs is one message of every kind, with payloads chosen to
// stress the encoder: NaN (quiet and payload-carrying), ±Inf, signed
// zero, empty and non-empty slices, empty and non-ASCII strings.
func wireTestMsgs() []Msg {
	nanPayload := math.Float64frombits(0x7ff8dead_beef0001)
	return []Msg{
		Hello{Proto: ProtoVersion, Worker: -1, Addr: "127.0.0.1:7701"},
		Ping{Seq: 42},
		Pong{Seq: 42},
		JobRequest{
			JobID: 7, Workers: 4, Index: 2, Dim: 16,
			Peers: []string{"a:1", "", "héllo:3", "d:4"},
			Traverse: WireTraverse{
				Window: 2, EdgeCoverage: 1.0, DropEdges: 0.25,
				DropStrategy: 1, RevisitPolicy: 1, Objective: 1, Start: -1, Seed: -99,
			},
			Insts: []WireInstance{
				{
					NumNodes: 3,
					Edges:    []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}},
					NodeFeat: []int32{0, 1, 2},
					EdgeFeat: []int32{1, 0},
					Target:   math.Inf(-1),
					Label:    5,
				},
				{NumNodes: 1, Directed: true},
			},
		},
		JobResult{
			JobID: 7, Lo: 4, Hi: 8, PathLen: 16,
			Rows:  []float64{0, math.Copysign(0, -1), math.NaN(), nanPayload, math.Inf(1), math.Inf(-1), 1.5},
			Stats: WireStats{HaloMessages: 1, HaloBytes: 2, SyncMessages: 3, SyncBytes: 4, EdgeMessages: 5, EdgeBytes: 6},
		},
		JobError{JobID: 9, Permanent: true, Msg: "models: context not shardable"},
		JobAbort{JobID: 9},
		Exchange{
			JobID: 7, To: 1,
			Key:  models.ShardKey{Phase: 3, Layer: -2, ID: 1 << 20, From: 7},
			Data: []float64{nanPayload, math.Inf(1), -0.0},
		},
	}
}

// bitsEqualMsg compares two messages with float64s by bit pattern (NaN !=
// NaN under reflect.DeepEqual via ==? DeepEqual treats NaN as unequal, so
// compare through the re-encoded bytes instead: equal frames ⇔ equal bits).
func bitsEqualMsg(a, b Msg) bool {
	return bytes.Equal(EncodeFrame(a), EncodeFrame(b))
}

func TestWireRoundTripAllKinds(t *testing.T) {
	for _, m := range wireTestMsgs() {
		frame := EncodeFrame(m)
		got, n, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if n != len(frame) {
			t.Errorf("%T: consumed %d of %d bytes", m, n, len(frame))
		}
		if reflect.TypeOf(got) != reflect.TypeOf(m) {
			t.Fatalf("%T: decoded as %T", m, got)
		}
		if !bitsEqualMsg(m, got) {
			t.Errorf("%T: round trip not bit-identical", m)
		}
	}
}

func TestWireStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := wireTestMsgs()
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("%T: %v", want, err)
		}
		if !bitsEqualMsg(want, got) {
			t.Errorf("%T: stream round trip not bit-identical", want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("clean end of stream: got %v, want io.EOF", err)
	}
}

// TestWireTruncatedFrames pins torn-write behaviour: every proper prefix
// of a valid frame is "need more bytes", never a misparse.
func TestWireTruncatedFrames(t *testing.T) {
	frame := EncodeFrame(wireTestMsgs()[3]) // JobRequest, the largest
	for n := 0; n < len(frame); n++ {
		if _, _, err := DecodeFrame(frame[:n]); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("prefix %d/%d: got %v, want io.ErrUnexpectedEOF", n, len(frame), err)
		}
		if _, err := ReadFrame(bytes.NewReader(frame[:n])); err == nil {
			t.Fatalf("prefix %d/%d: ReadFrame accepted a torn frame", n, len(frame))
		}
	}
}

// TestWireCorruptedFrames pins corruption behaviour: flipping any single
// byte of a frame is rejected (bad magic, oversized length, CRC mismatch,
// or malformed payload) — never silently decoded to different content.
func TestWireCorruptedFrames(t *testing.T) {
	for _, m := range wireTestMsgs() {
		frame := EncodeFrame(m)
		for i := range frame {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 0x40
			got, n, err := DecodeFrame(mut)
			if errors.Is(err, io.ErrUnexpectedEOF) {
				// A corrupted length prefix may ask for more bytes; feeding a
				// stream must still not yield a message from this frame.
				continue
			}
			if err == nil {
				// The only acceptable "success" would be decoding to the exact
				// same bits, which a bit flip inside kind+payload+crc rules out.
				if n == len(mut) && bitsEqualMsg(m, got) {
					continue
				}
				t.Fatalf("%T: byte %d flipped: decoded to different content", m, i)
			}
		}
	}
}

func TestWireRejectsOversizedLength(t *testing.T) {
	frame := EncodeFrame(Ping{Seq: 1})
	frame[4], frame[5], frame[6], frame[7] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := DecodeFrame(frame); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("DecodeFrame: got %v, want ErrFrameTooLarge", err)
	}
	if _, err := ReadFrame(bytes.NewReader(frame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("ReadFrame: got %v, want ErrFrameTooLarge", err)
	}
}

func TestWireRejectsWrongVersion(t *testing.T) {
	frame := EncodeFrame(Ping{Seq: 1})
	frame[3] = '0' + ProtoVersion + 1
	if _, _, err := DecodeFrame(frame); !errors.Is(err, ErrBadMagic) {
		t.Errorf("got %v, want ErrBadMagic", err)
	}
}

// TestWireRejectsTrailingGarbage pins that a CRC-valid frame whose payload
// decodes short of its length is rejected.
func TestWireRejectsTrailingGarbage(t *testing.T) {
	body := append(EncodeFrame(Ping{Seq: 1})[8:17:17], 0xAB) // kind+seq+junk byte
	w := &wbuf{}
	w.b = append(w.b, frameMagic[:]...)
	w.u32(uint32(len(body)))
	w.b = append(w.b, body...)
	w.u32(crc32.ChecksumIEEE(body))
	if _, _, err := DecodeFrame(w.b); !errors.Is(err, ErrCorruptFrame) {
		t.Errorf("got %v, want ErrCorruptFrame", err)
	}
}

func TestWireInstanceRoundTrip(t *testing.T) {
	g, err := graph.New(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0}}, false)
	if err != nil {
		t.Fatal(err)
	}
	in := datasets.Instance{G: g, NodeFeat: []int32{0, 1, 0, 1}, EdgeFeat: []int32{2, 0, 1, 2}, Target: 3.25, Label: 1}
	got, err := FromInstance(in).Instance()
	if err != nil {
		t.Fatal(err)
	}
	if got.G.Fingerprint() != in.G.Fingerprint() {
		t.Error("fingerprint changed across the wire")
	}
	if !reflect.DeepEqual(got.NodeFeat, in.NodeFeat) || !reflect.DeepEqual(got.EdgeFeat, in.EdgeFeat) ||
		got.Target != in.Target || got.Label != in.Label {
		t.Error("instance fields changed across the wire")
	}
}
