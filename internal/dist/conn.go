package dist

import (
	"fmt"
	"net"
	"sync"
	"time"

	"mega/internal/faults"
)

// wireConn wraps one TCP connection with frame-atomic writes: a frame is
// assembled in memory and written under a mutex with a write deadline, so
// concurrent senders never interleave frames and a stuck peer cannot
// block a sender forever.
type wireConn struct {
	c            net.Conn
	wmu          sync.Mutex
	writeTimeout time.Duration
}

func newWireConn(c net.Conn, writeTimeout time.Duration) *wireConn {
	return &wireConn{c: c, writeTimeout: writeTimeout}
}

// write sends one frame. An injected faults.DistSend error poisons the
// connection (closing it, so the peer's read loop sees the failure too) —
// the same observable outcome as a peer dying mid-stream.
func (wc *wireConn) write(m Msg) error {
	if err := faults.Inject(faults.DistSend); err != nil {
		wc.c.Close()
		return fmt.Errorf("dist: send to %s: %w", wc.c.RemoteAddr(), err)
	}
	wc.wmu.Lock()
	defer wc.wmu.Unlock()
	if wc.writeTimeout > 0 {
		wc.c.SetWriteDeadline(time.Now().Add(wc.writeTimeout))
	}
	if err := WriteFrame(wc.c, m); err != nil {
		wc.c.Close()
		return err
	}
	return nil
}

func (wc *wireConn) close() { wc.c.Close() }

// handshake exchanges Hello frames: send ours, require a protocol-matched
// Hello back before any other traffic.
func (wc *wireConn) handshake(h Hello, readTimeout time.Duration) (Hello, error) {
	if err := wc.write(h); err != nil {
		return Hello{}, err
	}
	if readTimeout > 0 {
		wc.c.SetReadDeadline(time.Now().Add(readTimeout))
		defer wc.c.SetReadDeadline(time.Time{})
	}
	m, err := ReadFrame(wc.c)
	if err != nil {
		return Hello{}, fmt.Errorf("dist: handshake read: %w", err)
	}
	peer, ok := m.(Hello)
	if !ok {
		return Hello{}, fmt.Errorf("dist: handshake: got %T, want Hello", m)
	}
	if peer.Proto != ProtoVersion {
		return Hello{}, fmt.Errorf("%w: peer speaks proto %d, we speak %d", ErrBadMagic, peer.Proto, ProtoVersion)
	}
	return peer, nil
}

// exchangeRouter demultiplexes incoming Exchange frames by job: frames
// for a registered job go to its channel, frames racing ahead of the
// job's own JobRequest are stashed, frames for completed (tombstoned)
// jobs are dropped. All methods are safe for concurrent read loops.
type exchangeRouter struct {
	mu      sync.Mutex
	jobs    map[uint64]chan Exchange
	pending map[uint64][]Exchange
	tombs   map[uint64]struct{}
	tombLog []uint64 // insertion order, for bounded tombstone memory
}

// routerChanCap bounds a job's in-flight incoming exchanges. The engine's
// per-wave message counts are far below this at serving scale; a full
// channel therefore indicates a wedged job, and the frame is dropped —
// the waiting Recv then fails by deadline rather than the reader loop
// deadlocking.
const routerChanCap = 1 << 14

// routerPendingCap bounds stashed frames for a not-yet-registered job.
const routerPendingCap = 1 << 12

// routerTombs bounds remembered completed jobs.
const routerTombs = 4096

func newExchangeRouter() *exchangeRouter {
	return &exchangeRouter{
		jobs:    make(map[uint64]chan Exchange),
		pending: make(map[uint64][]Exchange),
		tombs:   make(map[uint64]struct{}),
	}
}

// register creates the job's channel and drains any frames that arrived
// ahead of the job request.
func (r *exchangeRouter) register(jobID uint64) chan Exchange {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch, ok := r.jobs[jobID]
	if !ok {
		ch = make(chan Exchange, routerChanCap)
		r.jobs[jobID] = ch
	}
	for _, m := range r.pending[jobID] {
		select {
		case ch <- m:
		default:
		}
	}
	delete(r.pending, jobID)
	return ch
}

// unregister tombstones a completed job so straggler frames are dropped.
func (r *exchangeRouter) unregister(jobID uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.jobs, jobID)
	delete(r.pending, jobID)
	if _, ok := r.tombs[jobID]; !ok {
		r.tombs[jobID] = struct{}{}
		r.tombLog = append(r.tombLog, jobID)
		if len(r.tombLog) > routerTombs {
			delete(r.tombs, r.tombLog[0])
			r.tombLog = r.tombLog[1:]
		}
	}
}

// route delivers one incoming exchange frame.
func (r *exchangeRouter) route(m Exchange) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dead := r.tombs[m.JobID]; dead {
		return
	}
	if ch, ok := r.jobs[m.JobID]; ok {
		select {
		case ch <- m:
		default: // wedged job; Recv will time out
		}
		return
	}
	if len(r.pending[m.JobID]) < routerPendingCap {
		r.pending[m.JobID] = append(r.pending[m.JobID], m)
	}
}
