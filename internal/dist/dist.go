// Package dist implements the distributed-learning communication analysis
// of §IV-B6: the conventional edge/vertex partition of a graph requires
// communication proportional to the cut (with all-to-all message patterns),
// while partitioning MEGA's path representation into contiguous chunks
// needs only a fixed-size halo exchange between adjacent chunks — O(k)
// messages of ω·d embeddings each.
//
// Two levels are provided: closed-form analyzers that count messages and
// bytes for each strategy, and a real goroutine-based halo-exchange harness
// that moves embedding data through channels and verifies the analytical
// counts against observed traffic.
package dist

import (
	"errors"
	"fmt"
	"sync"

	"mega/internal/band"
	"mega/internal/graph"
)

// CommStats summarises one layer's communication for a partitioned graph.
type CommStats struct {
	// Workers is the partition count k.
	Workers int
	// Messages is the number of point-to-point messages per layer.
	Messages int
	// Bytes is the total payload per layer (float64 embeddings).
	Bytes int64
	// MaxFanout is the largest number of distinct peers any worker
	// exchanges with: k-1 for all-to-all patterns, <= 2 for path chunks.
	MaxFanout int
	// ReplicatedRows counts embedding rows that exist on more than one
	// worker (boundary replicas / halos).
	ReplicatedRows int
}

// ErrBadWorkers is returned for non-positive or oversized worker counts.
var ErrBadWorkers = errors.New("dist: invalid worker count")

// AnalyzeEdgePartition computes per-layer communication for the baseline:
// vertices are range-partitioned into k parts and every cut edge forces the
// two endpoint embeddings to cross the cut each layer (one message per
// ordered pair of communicating parts, batching all rows between that pair).
func AnalyzeEdgePartition(g *graph.Graph, k, dim int) (CommStats, error) {
	if k <= 0 || k > g.NumNodes() {
		return CommStats{}, fmt.Errorf("%w: %d for %d nodes", ErrBadWorkers, k, g.NumNodes())
	}
	part := func(v graph.NodeID) int {
		return int(v) * k / g.NumNodes()
	}
	// rows[pair] = set of rows moving from part a to part b.
	type pair struct{ from, to int }
	moved := make(map[pair]map[graph.NodeID]bool)
	record := func(from, to int, v graph.NodeID) {
		p := pair{from, to}
		if moved[p] == nil {
			moved[p] = make(map[graph.NodeID]bool)
		}
		moved[p][v] = true
	}
	for _, e := range g.Edges() {
		pu, pv := part(e.Src), part(e.Dst)
		if pu == pv {
			continue
		}
		record(pu, pv, e.Src) // u's embedding must reach v's part
		record(pv, pu, e.Dst)
	}
	stats := CommStats{Workers: k}
	fanout := make([]map[int]bool, k)
	for i := range fanout {
		fanout[i] = make(map[int]bool)
	}
	replicated := make(map[graph.NodeID]bool)
	for p, rows := range moved {
		stats.Messages++
		stats.Bytes += int64(len(rows)) * int64(dim) * 8
		fanout[p.from][p.to] = true
		for v := range rows {
			replicated[v] = true
		}
	}
	for _, f := range fanout {
		if len(f) > stats.MaxFanout {
			stats.MaxFanout = len(f)
		}
	}
	stats.ReplicatedRows = len(replicated)
	return stats, nil
}

// AnalyzePathPartition computes per-layer communication for MEGA: the path
// is split into k contiguous chunks; each chunk sends its trailing ω rows
// to its successor and its leading ω rows to its predecessor — "only two
// communications for adjacent path partitions" (§IV-B6) — plus one
// message pair per duplicate group spanning chunks (synchronisation).
func AnalyzePathPartition(rep *band.Rep, k, dim int) (CommStats, error) {
	L := rep.Len()
	if k <= 0 || k > L {
		return CommStats{}, fmt.Errorf("%w: %d for path length %d", ErrBadWorkers, k, L)
	}
	stats := CommStats{Workers: k}
	omega := rep.Window
	// Halo exchange: 2 messages per internal boundary.
	stats.Messages = 2 * (k - 1)
	stats.Bytes = int64(2*(k-1)*omega*dim) * 8
	if k > 1 {
		stats.MaxFanout = 2
	}
	stats.ReplicatedRows = 2 * (k - 1) * omega
	// Cross-chunk duplicate synchronisation: each group spanning c > 1
	// chunks costs (c-1) gather + (c-1) broadcast messages to its owner.
	chunkOf := func(pos int32) int {
		return int(pos) * k / L
	}
	for _, group := range rep.SyncGroups() {
		chunks := make(map[int]bool, 2)
		for _, p := range group {
			chunks[chunkOf(p)] = true
		}
		if len(chunks) > 1 {
			extra := len(chunks) - 1
			stats.Messages += 2 * extra
			stats.Bytes += int64(2*extra*dim) * 8
		}
	}
	return stats, nil
}

// HaloResult is the observed traffic of a real halo-exchange run.
type HaloResult struct {
	CommStats
	// Layers is how many exchange rounds ran.
	Layers int
	// RowsOut is each worker's final first-row checksum, for determinism
	// tests.
	Checksums []float64
}

// RunHaloExchange launches k goroutine workers over contiguous chunks of
// the path representation and performs `layers` rounds of: exchange ω-row
// halos with neighbours, then apply a banded mean-aggregation over the
// local rows (including halos). Every message is counted; returned stats
// cover all layers.
//
// The computation is a fixed smoothing kernel rather than a trained model:
// the experiment measures communication structure, not accuracy.
func RunHaloExchange(rep *band.Rep, k, dim, layers int) (*HaloResult, error) {
	L := rep.Len()
	if k <= 0 || k > L {
		return nil, fmt.Errorf("%w: %d for path length %d", ErrBadWorkers, k, L)
	}
	omega := rep.Window

	// Chunk boundaries.
	bounds := make([]int, k+1)
	for i := 0; i <= k; i++ {
		bounds[i] = i * L / k
	}

	// Initial embeddings: deterministic function of position.
	init := func(pos, j int) float64 {
		return float64(pos%17) + float64(j)*0.25
	}

	type halo struct {
		rows [][]float64
	}
	// Channels between adjacent workers, one per direction per boundary.
	right := make([]chan halo, k) // worker i sends to i+1 on right[i]
	left := make([]chan halo, k)  // worker i sends to i-1 on left[i]
	for i := 0; i < k; i++ {
		right[i] = make(chan halo, 1)
		left[i] = make(chan halo, 1)
	}

	var mu sync.Mutex
	var messages int
	var bytes int64
	send := func(ch chan halo, h halo) {
		mu.Lock()
		messages++
		for _, r := range h.rows {
			bytes += int64(len(r)) * 8
		}
		mu.Unlock()
		ch <- h
	}

	checksums := make([]float64, k)
	var wg sync.WaitGroup
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := bounds[w], bounds[w+1]
			local := make([][]float64, hi-lo)
			for i := range local {
				row := make([]float64, dim)
				for j := range row {
					row[j] = init(lo+i, j)
				}
				local[i] = row
			}
			for layer := 0; layer < layers; layer++ {
				// Send halos outward.
				if w+1 < k {
					send(right[w], halo{rows: copyRows(tail(local, omega))})
				}
				if w > 0 {
					send(left[w], halo{rows: copyRows(head(local, omega))})
				}
				// Receive halos.
				var pre, post [][]float64
				if w > 0 {
					pre = (<-right[w-1]).rows
				}
				if w+1 < k {
					post = (<-left[w+1]).rows
				}
				local = bandSmooth(pre, local, post, omega)
			}
			if len(local) > 0 {
				s := 0.0
				for _, v := range local[0] {
					s += v
				}
				checksums[w] = s
			}
		}(w)
	}
	wg.Wait()

	res := &HaloResult{Layers: layers, Checksums: checksums}
	res.Workers = k
	res.Messages = messages
	res.Bytes = bytes
	if k > 1 {
		res.MaxFanout = 2
	}
	res.ReplicatedRows = 2 * (k - 1) * omega
	return res, nil
}

// bandSmooth computes, for each local row, the mean of all rows within ω
// positions (using neighbour halos at the chunk edges).
func bandSmooth(pre, local, post [][]float64, omega int) [][]float64 {
	n := len(local)
	if n == 0 {
		return local
	}
	dim := len(local[0])
	// Virtual concatenation: pre ++ local ++ post.
	row := func(i int) []float64 {
		switch {
		case i < 0:
			pi := len(pre) + i
			if pi >= 0 {
				return pre[pi]
			}
			return nil
		case i < n:
			return local[i]
		default:
			pi := i - n
			if pi < len(post) {
				return post[pi]
			}
			return nil
		}
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		acc := make([]float64, dim)
		count := 0.0
		for o := -omega; o <= omega; o++ {
			r := row(i + o)
			if r == nil {
				continue
			}
			for j := range acc {
				acc[j] += r[j]
			}
			count++
		}
		inv := 1 / count
		for j := range acc {
			acc[j] *= inv
		}
		out[i] = acc
	}
	return out
}

func head(rows [][]float64, n int) [][]float64 {
	if n > len(rows) {
		n = len(rows)
	}
	return rows[:n]
}

func tail(rows [][]float64, n int) [][]float64 {
	if n > len(rows) {
		n = len(rows)
	}
	return rows[len(rows)-n:]
}

func copyRows(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		c := make([]float64, len(r))
		copy(c, r)
		out[i] = c
	}
	return out
}
