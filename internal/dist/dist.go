// Package dist implements the distributed-learning communication analysis
// of §IV-B6: the conventional edge/vertex partition of a graph requires
// communication proportional to the cut (with all-to-all message patterns),
// while partitioning MEGA's path representation into contiguous chunks
// needs only a fixed-size halo exchange between adjacent chunks — O(k)
// messages of ω·d embeddings each — plus owner-routed synchronisation for
// duplicate groups and edge folds that span chunks.
//
// Two levels are provided: closed-form analyzers that count messages and
// bytes for each strategy, and RunHaloExchange, which executes the real
// shard-parallel GNN engine (internal/models.ShardEngine) over the path
// representation and reports the observed traffic for verification against
// the analytical counts.
package dist

import (
	"errors"
	"fmt"

	"mega/internal/band"
	"mega/internal/datasets"
	"mega/internal/graph"
	"mega/internal/models"
	"mega/internal/traverse"
)

// CommStats summarises one layer's communication for a partitioned graph.
type CommStats struct {
	// Workers is the partition count k.
	Workers int
	// Messages is the number of point-to-point messages per layer.
	Messages int
	// Bytes is the total payload per layer (float64 embeddings).
	Bytes int64
	// MaxFanout is the largest number of distinct peers any worker
	// streams embeddings to: k-1 for all-to-all patterns, <= 2 for path
	// chunks (owner-routed duplicate/edge synchronisation is counted in
	// Messages and Bytes but not here — it is a reduction overlay, not an
	// embedding stream).
	MaxFanout int
	// ReplicatedRows counts embedding rows that exist on more than one
	// worker (boundary replicas / halos).
	ReplicatedRows int
}

// ErrBadWorkers is returned for non-positive or oversized worker counts.
var ErrBadWorkers = errors.New("dist: invalid worker count")

// AnalyzeEdgePartition computes per-layer communication for the baseline:
// vertices are range-partitioned into k parts and every cut edge forces the
// two endpoint embeddings to cross the cut each layer (one message per
// ordered pair of communicating parts, batching all rows between that pair).
func AnalyzeEdgePartition(g *graph.Graph, k, dim int) (CommStats, error) {
	if k <= 0 || k > g.NumNodes() {
		return CommStats{}, fmt.Errorf("%w: %d for %d nodes", ErrBadWorkers, k, g.NumNodes())
	}
	part := func(v graph.NodeID) int {
		return int(v) * k / g.NumNodes()
	}
	// rows[pair] = set of rows moving from part a to part b.
	type pair struct{ from, to int }
	moved := make(map[pair]map[graph.NodeID]bool)
	record := func(from, to int, v graph.NodeID) {
		p := pair{from, to}
		if moved[p] == nil {
			moved[p] = make(map[graph.NodeID]bool)
		}
		moved[p][v] = true
	}
	for _, e := range g.Edges() {
		pu, pv := part(e.Src), part(e.Dst)
		if pu == pv {
			continue
		}
		record(pu, pv, e.Src) // u's embedding must reach v's part
		record(pv, pu, e.Dst)
	}
	stats := CommStats{Workers: k}
	fanout := make([]map[int]bool, k)
	for i := range fanout {
		fanout[i] = make(map[int]bool)
	}
	replicated := make(map[graph.NodeID]bool)
	for p, rows := range moved {
		stats.Messages++
		stats.Bytes += int64(len(rows)) * int64(dim) * 8
		fanout[p.from][p.to] = true
		for v := range rows {
			replicated[v] = true
		}
	}
	for _, f := range fanout {
		if len(f) > stats.MaxFanout {
			stats.MaxFanout = len(f)
		}
	}
	stats.ReplicatedRows = len(replicated)
	return stats, nil
}

// AnalyzePathPartition computes per-layer communication for MEGA: the path
// is split into k contiguous chunks; each chunk sends its trailing ω rows
// to its successor and its leading ω rows to its predecessor — "only two
// communications for adjacent path partitions" (§IV-B6) — plus owner-routed
// synchronisation for state that spans chunks:
//
//   - Each duplicate group (a revisited node) is owned by the chunk of its
//     first member position. Every other chunk holding members sends its
//     raw member rows to the owner and receives the folded mean back:
//     2 messages and (members_c + 1)·dim·8 bytes per such chunk.
//   - Each in-band edge is owned by the chunk of its first referencing
//     attention pair. Every other chunk whose pairs reference the edge
//     sends its raw per-pair modulated-key rows to the owner and receives
//     the edge's updated feature back: 2 messages and
//     (pairRefs_c + 1)·dim·8 bytes per such chunk.
//
// These are exactly the per-layer exchanges the shard engine performs, so
// observed ShardEngine traffic equals this analysis times the layer count
// (see RunHaloExchange).
func AnalyzePathPartition(rep *band.Rep, k, dim int) (CommStats, error) {
	L := rep.Len()
	if k <= 0 || k > L {
		return CommStats{}, fmt.Errorf("%w: %d for path length %d", ErrBadWorkers, k, L)
	}
	stats := CommStats{Workers: k}
	omega := rep.Window
	// Halo exchange: 2 messages per internal boundary.
	stats.Messages = 2 * (k - 1)
	stats.Bytes = int64(2*(k-1)*omega*dim) * 8
	if k > 1 {
		stats.MaxFanout = 2
	}
	stats.ReplicatedRows = 2 * (k - 1) * omega
	chunkOf := func(pos int32) int {
		return int(pos) * k / L
	}
	// Cross-chunk duplicate synchronisation.
	for _, group := range rep.SyncGroups() {
		members := make(map[int]int, 2)
		for _, p := range group {
			members[chunkOf(p)]++
		}
		owner := chunkOf(group[0])
		for c, m := range members {
			if c == owner {
				continue
			}
			stats.Messages += 2
			stats.Bytes += int64(m+1) * int64(dim) * 8
		}
	}
	// Cross-chunk edge folds: pairs referencing an edge owned elsewhere.
	for _, refs := range rep.EdgeRefs() {
		if len(refs) == 0 {
			continue
		}
		pairRefs := make(map[int]int, 2)
		for _, pos := range refs {
			pairRefs[chunkOf(pos)]++
		}
		owner := chunkOf(refs[0])
		for c, m := range pairRefs {
			if c == owner {
				continue
			}
			stats.Messages += 2
			stats.Bytes += int64(m+1) * int64(dim) * 8
		}
	}
	return stats, nil
}

// HaloResult is the observed traffic of a real sharded forward run.
type HaloResult struct {
	CommStats
	// Layers is how many GNN layers (= exchange rounds) ran.
	Layers int
	// Checksums is each worker's first-owned-row embedding sum, for
	// determinism tests.
	Checksums []float64
	// RowSums is the per-position sum of the final embeddings (length L).
	// The shard engine is bit-deterministic, so RowSums are exactly equal
	// across worker counts.
	RowSums []float64
}

// RunHaloExchange executes the real shard-parallel MEGA engine over the
// path representation of g: a fixed-seed Graph Transformer (heads=1,
// uniform node/edge types) runs `layers` layers across k chunk workers,
// exchanging halos, duplicate-group folds, and edge folds over channels.
// Every message is counted; returned stats cover all layers and match
// AnalyzePathPartition(rep, k, dim) times layers exactly.
//
// rep and res must come from the same traversal of g (band.FromGraph).
func RunHaloExchange(g *graph.Graph, rep *band.Rep, res *traverse.Result, k, dim, layers int) (*HaloResult, error) {
	L := rep.Len()
	if k <= 0 || k > L {
		return nil, fmt.Errorf("%w: %d for path length %d", ErrBadWorkers, k, L)
	}
	if dim < 2 || layers < 1 {
		return nil, fmt.Errorf("dist: need dim >= 2 and layers >= 1, got %d, %d", dim, layers)
	}
	inst := datasets.Instance{
		G:        g,
		NodeFeat: make([]int32, g.NumNodes()),
		EdgeFeat: make([]int32, g.NumEdges()),
	}
	ctx, err := models.NewMegaContextFromReps(
		[]datasets.Instance{inst},
		[]*models.PreparedRep{{Rep: rep, Res: res}},
		nil, dim)
	if err != nil {
		return nil, err
	}
	model := models.NewGT(models.Config{
		Dim: dim, Layers: layers, Heads: 1,
		NodeTypes: 1, EdgeTypes: 1, OutDim: 1, Seed: 7,
	})
	eng, err := models.NewShardEngine(model, ctx, k)
	if err != nil {
		return nil, err
	}
	eng.Forward()
	st := eng.Stats()

	out := &HaloResult{Layers: layers}
	out.Workers = k
	out.Messages = int(st.ForwardMessages())
	out.Bytes = st.ForwardBytes()
	if k > 1 {
		out.MaxFanout = 2
	}
	out.ReplicatedRows = 2 * (k - 1) * rep.Window

	final := eng.FinalEmbeddings()
	out.RowSums = make([]float64, L)
	for i := 0; i < L; i++ {
		s := 0.0
		for j := 0; j < dim; j++ {
			s += final[i*dim+j]
		}
		out.RowSums[i] = s
	}
	bounds := eng.WorkerBounds()
	out.Checksums = make([]float64, k)
	for w := 0; w < k; w++ {
		out.Checksums[w] = out.RowSums[bounds[w]]
	}
	return out, nil
}
