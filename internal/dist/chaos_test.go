package dist

// Process-level chaos: real worker OS processes (this test binary
// re-exec'd in worker mode), a real supervisor, and a SIGKILL delivered
// mid-batch. The PR gate asserts the full robustness contract: zero lost
// responses, bit-identical answers through failover, wire traffic exactly
// matching the analytical model, and the killed worker rejoining after
// auto-restart. `make dist-chaos` runs this with DIST_CHAOS_REPORT set so
// CI uploads the kill/failover event log as an artifact.

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"mega/internal/band"
	"mega/internal/datasets"
	"mega/internal/models"
	"mega/internal/retry"
)

// TestMain intercepts re-exec'd worker-mode invocations before the test
// harness parses flags.
func TestMain(m *testing.M) {
	if os.Getenv("MEGASHARD_TEST_WORKER") == "1" {
		runTestWorker()
		return
	}
	os.Exit(m.Run())
}

// runTestWorker is the re-exec'd shard worker process: same deterministic
// model replica as the parent, listen address as the last argv element
// (the spawner's {addr} substitution).
func runTestWorker() {
	log.SetOutput(os.Stderr)
	addr := os.Args[len(os.Args)-1]
	delay, _ := time.ParseDuration(os.Getenv("MEGASHARD_TEST_SENDDELAY"))
	w, err := NewWorker(WorkerOptions{
		Model:       models.NewGT(transportConfig()),
		RecvTimeout: 2 * time.Second,
		SendDelay:   delay,
		Logf:        log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s%s\n", ReadyPrefix, ln.Addr().String())
	if err := w.Serve(ln); err != nil {
		log.Fatal(err)
	}
	os.Exit(0)
}

// eventLog collects supervisor + spawner events and can dump them as JSON
// lines for the CI artifact.
type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *eventLog) sink(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

func (l *eventLog) snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

func (l *eventLog) count(kind string) int {
	n := 0
	for _, e := range l.snapshot() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// writeReport dumps the event log to path as JSON lines.
func (l *eventLog) writeReport(t *testing.T, path string) {
	f, err := os.Create(path)
	if err != nil {
		t.Errorf("chaos report: %v", err)
		return
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, e := range l.snapshot() {
		if err := enc.Encode(e); err != nil {
			t.Errorf("chaos report: %v", err)
			return
		}
	}
	t.Logf("chaos event log: %s (%d events)", path, len(l.snapshot()))
}

// TestDistChaos SIGKILLs a real worker process mid-batch and asserts the
// request still completes — transparently, bit-identically — via replica
// failover, then that the auto-restarted process rejoins the group.
func TestDistChaos(t *testing.T) {
	if os.Getenv("MEGASHARD_TEST_WORKER") != "" {
		t.Skip("worker mode")
	}
	var events eventLog
	if path := os.Getenv("DIST_CHAOS_REPORT"); path != "" {
		defer events.writeReport(t, path)
	}

	// SendDelay stretches each exchange wave so the SIGKILL below lands
	// mid-batch, not between batches.
	sp, err := Spawn(3, SpawnOptions{
		Command:      []string{os.Args[0], "{addr}"},
		Env:          []string{"MEGASHARD_TEST_WORKER=1", "MEGASHARD_TEST_SENDDELAY=10ms"},
		AutoRestart:  true,
		RestartDelay: 200 * time.Millisecond,
		Logf:         t.Logf,
		EventSink:    events.sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	s, err := NewSupervisor(SuperOptions{
		Workers:          sp.Addrs(),
		GroupSize:        3,
		JobWorkers:       2,
		HeartbeatEvery:   100 * time.Millisecond,
		HeartbeatTimeout: 800 * time.Millisecond,
		JobTimeout:       15 * time.Second,
		MaxAttempts:      4,
		Retry:            retry.Config{Attempts: 4, Base: 20 * time.Millisecond, Max: 100 * time.Millisecond},
		Logf:             t.Logf,
		EventSink:        events.sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	m := models.NewGT(transportConfig())
	cfg := transportConfig()
	mopts := transportMegaOpts()
	topts := mopts.TraverseOptions()

	const batches = 5
	const killAt = 2 // SIGKILL lands during this batch
	type ref struct {
		insts []datasets.Instance
		want  []float64
	}
	refs := make([]ref, batches)
	for i := range refs {
		insts := []datasets.Instance{transportInstance(t, int64(i), 40)}
		refCtx, err := models.NewMegaContext(insts, mopts, nil, transportDim)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref{insts: insts, want: m.Forward(refCtx).Data}
	}

	lost := 0
	for i, r := range refs {
		if i == killAt {
			go func() {
				// The job is dispatched immediately; the SendDelay-stretched
				// exchange waves are still in flight 150ms in.
				time.Sleep(150 * time.Millisecond)
				if err := sp.Kill(0); err != nil {
					t.Errorf("kill: %v", err)
				}
			}()
		}
		refCtx, err := models.NewMegaContext(r.insts, mopts, nil, transportDim)
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.Forward(context.Background(), r.insts, topts, transportDim, r.insts[0].G.Fingerprint())
		if err != nil {
			lost++
			t.Errorf("batch %d lost: %v", i, err)
			continue
		}
		got, err := m.ReadoutFromFinal(refCtx, out.FinalH)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		bitsEqual64(t, got.Data, r.want, fmt.Sprintf("batch %d readout", i))

		// Wire traffic must equal the analytical model × layers at whatever
		// k the (possibly failed-over) job actually ran.
		rep, _, err := band.FromGraph(r.insts[0].G, topts)
		if err != nil {
			t.Fatal(err)
		}
		ana, err := AnalyzePathPartition(rep, out.K, transportDim)
		if err != nil {
			t.Fatal(err)
		}
		layers := int64(cfg.Layers)
		if out.Stats.ForwardMessages() != int64(ana.Messages)*layers || out.Stats.ForwardBytes() != ana.Bytes*layers {
			t.Errorf("batch %d (k=%d): wire traffic %d msgs/%d B, analysis predicts %d/%d × %d",
				i, out.K, out.Stats.ForwardMessages(), out.Stats.ForwardBytes(), ana.Messages, ana.Bytes, layers)
		}
	}
	if lost != 0 {
		t.Fatalf("%d of %d responses lost; robustness contract is zero", lost, batches)
	}

	if events.count("worker_killed") == 0 {
		t.Error("chaos never recorded a kill — the harness tested nothing")
	}
	if st := s.Stats(); st.Failovers == 0 && st.JobRetries == 0 {
		t.Errorf("SIGKILL mid-batch caused no retry or failover: %+v (kill too late?)", st)
	}
	if st := s.Stats(); st.GroupDown != 0 {
		t.Errorf("group went down despite live replicas: %+v", st)
	}

	// The auto-restarted process rejoins: the supervisor's heartbeat redial
	// finds it on the same address.
	deadline := time.Now().Add(10 * time.Second)
	for s.GroupsAlive()[0] < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("killed worker never rejoined: %+v", s.Health())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// And serves again: one more batch, still bit-identical.
	r := refs[0]
	refCtx, err := models.NewMegaContext(r.insts, mopts, nil, transportDim)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Forward(context.Background(), r.insts, topts, transportDim, r.insts[0].G.Fingerprint())
	if err != nil {
		t.Fatalf("post-rejoin batch: %v", err)
	}
	got, err := m.ReadoutFromFinal(refCtx, out.FinalH)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual64(t, got.Data, r.want, "post-rejoin readout")
}
