package dist

// Worker is the shard-worker half of the distributed transport: it
// accepts connections from the supervisor (job dispatch, heartbeats) and
// from peer workers (shard exchange frames), runs its share of each
// forward job via models.RunShardWorkerForward, and replies with its
// owned final-embedding rows. cmd/megashard wraps it in a process; tests
// also run it in-process against real TCP sockets.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mega/internal/band"
	"mega/internal/datasets"
	"mega/internal/faults"
	"mega/internal/models"
	"mega/internal/retry"
)

// errBadJob marks malformed job requests (undecodable instances, bad
// dims): permanent — no retry or replica can fix the request itself.
var errBadJob = errors.New("dist: malformed job request")

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Model is the model replica this worker serves; it must be the same
	// checkpoint the supervisor serves or bit-identity is meaningless.
	// Currently the shard plan supports *models.GT.
	Model models.Model

	// RecvTimeout bounds each wait for one peer exchange message; zero
	// defaults to 5s. This is the per-message deadline that detects a
	// dead peer mid-wave.
	RecvTimeout time.Duration
	// WriteTimeout bounds each frame write; zero defaults to 5s.
	WriteTimeout time.Duration
	// DialRetry configures peer dial retry/backoff; zero value defaults
	// to 3 attempts from 20ms.
	DialRetry retry.Config

	// SendDelay, when positive, sleeps before every exchange send. Test
	// hook: it stretches a job's wave so a chaos harness can SIGKILL the
	// process reliably mid-batch. Production configs leave it zero.
	SendDelay time.Duration

	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (o *WorkerOptions) withDefaults() {
	if o.RecvTimeout <= 0 {
		o.RecvTimeout = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 5 * time.Second
	}
	if o.DialRetry.Attempts == 0 {
		o.DialRetry = retry.Config{Attempts: 3, Base: 20 * time.Millisecond, Max: 200 * time.Millisecond}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Worker serves shard jobs over the wire protocol.
type Worker struct {
	opts   WorkerOptions
	gt     *models.GT
	router *exchangeRouter

	mu     sync.Mutex
	aborts map[uint64]chan struct{}
	peers  map[string]*wireConn // outbound exchange conns by peer address
	conns  map[net.Conn]struct{}
	ln     net.Listener
	closed bool

	prepMu sync.Mutex
	preps  map[string]*models.PreparedRep
}

// NewWorker validates the model and builds a worker.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	gt, ok := opts.Model.(*models.GT)
	if !ok {
		return nil, fmt.Errorf("dist: worker model %T does not support shard plans", opts.Model)
	}
	opts.withDefaults()
	return &Worker{
		opts:   opts,
		gt:     gt,
		router: newExchangeRouter(),
		aborts: make(map[uint64]chan struct{}),
		peers:  make(map[string]*wireConn),
		conns:  make(map[net.Conn]struct{}),
		preps:  make(map[string]*models.PreparedRep),
	}, nil
}

// Serve accepts connections on ln until Close (or a listener error). It
// blocks; run it in a goroutine for in-process use.
func (w *Worker) Serve(ln net.Listener) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		ln.Close()
		return errors.New("dist: worker closed")
	}
	w.ln = ln
	w.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		w.mu.Lock()
		w.conns[c] = struct{}{}
		w.mu.Unlock()
		go w.handleConn(c)
	}
}

// Close stops the accept loop and tears down every connection.
func (w *Worker) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	ln := w.ln
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	peers := w.peers
	w.peers = make(map[string]*wireConn)
	w.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	for _, pc := range peers {
		pc.close()
	}
}

// handleConn serves one inbound connection (supervisor or peer): Hello
// handshake, then a demux loop over the control and exchange frames.
func (w *Worker) handleConn(c net.Conn) {
	defer func() {
		w.mu.Lock()
		delete(w.conns, c)
		w.mu.Unlock()
		c.Close()
	}()
	wc := newWireConn(c, w.opts.WriteTimeout)
	c.SetReadDeadline(time.Now().Add(w.opts.RecvTimeout))
	first, err := ReadFrame(c)
	if err != nil {
		return
	}
	hello, ok := first.(Hello)
	if !ok || hello.Proto != ProtoVersion {
		w.opts.Logf("dist: worker: rejecting conn from %s: bad hello", c.RemoteAddr())
		return
	}
	c.SetReadDeadline(time.Time{})
	if err := wc.write(Hello{Proto: ProtoVersion, Worker: -2}); err != nil {
		return
	}
	for {
		m, err := ReadFrame(c)
		if err != nil {
			return
		}
		switch v := m.(type) {
		case Ping:
			if err := wc.write(Pong{Seq: v.Seq}); err != nil {
				return
			}
		case JobRequest:
			in := w.router.register(v.JobID)
			abort := make(chan struct{})
			w.mu.Lock()
			w.aborts[v.JobID] = abort
			w.mu.Unlock()
			go w.runJob(wc, v, in, abort)
		case JobAbort:
			w.mu.Lock()
			if ch, ok := w.aborts[v.JobID]; ok {
				delete(w.aborts, v.JobID)
				close(ch)
			}
			w.mu.Unlock()
		case Exchange:
			w.router.route(v)
		default:
			// Unknown-but-valid control traffic is ignored for forward
			// compatibility within a protocol version.
		}
	}
}

// runJob executes one job and replies on the dispatching connection.
func (w *Worker) runJob(reply *wireConn, req JobRequest, in chan Exchange, abort chan struct{}) {
	res, err := w.execJob(req, in, abort)
	w.router.unregister(req.JobID)
	w.mu.Lock()
	delete(w.aborts, req.JobID)
	w.mu.Unlock()
	if err != nil {
		perm := errors.Is(err, models.ErrUnshardable) || errors.Is(err, errBadJob)
		w.opts.Logf("dist: worker: job %d failed (permanent=%v): %v", req.JobID, perm, err)
		reply.write(JobError{JobID: req.JobID, Permanent: perm, Msg: err.Error()})
		return
	}
	reply.write(JobResult{
		JobID: req.JobID,
		Lo:    int32(res.Lo), Hi: int32(res.Hi), PathLen: int32(res.PathLen),
		Rows: res.Rows,
		Stats: WireStats{
			HaloMessages: res.Stats.HaloMessages, HaloBytes: res.Stats.HaloBytes,
			SyncMessages: res.Stats.SyncMessages, SyncBytes: res.Stats.SyncBytes,
			EdgeMessages: res.Stats.EdgeMessages, EdgeBytes: res.Stats.EdgeBytes,
		},
	})
}

func (w *Worker) execJob(req JobRequest, in chan Exchange, abort chan struct{}) (models.ShardWorkerResult, error) {
	var zero models.ShardWorkerResult
	if int(req.Workers) != len(req.Peers) || req.Index < 0 || req.Index >= req.Workers {
		return zero, fmt.Errorf("%w: %d peers for k=%d index %d", errBadJob, len(req.Peers), req.Workers, req.Index)
	}
	if len(req.Insts) == 0 {
		return zero, fmt.Errorf("%w: empty batch", errBadJob)
	}
	batch, preps, err := w.prepareBatch(req)
	if err != nil {
		return zero, err
	}
	ctx, err := models.NewMegaContextFromReps(batch, preps, nil, int(req.Dim))
	if err != nil {
		return zero, fmt.Errorf("%w: %v", errBadJob, err)
	}
	link := &remoteLink{
		w: w, jobID: req.JobID, self: int(req.Index), peers: req.Peers,
		in: in, abort: abort,
		stash:   make(map[models.ShardKey][]float64),
		timeout: w.opts.RecvTimeout, sendDelay: w.opts.SendDelay,
	}
	return models.RunShardWorkerForward(w.gt, ctx, int(req.Workers), int(req.Index), link)
}

// prepareBatch rebuilds the job's instances and their path
// representations, caching reps by (graph fingerprint, traversal
// options) — the worker-side analogue of serve's rep cache, and the
// reason repeated traffic for the same graph skips preprocessing.
func (w *Worker) prepareBatch(req JobRequest) ([]datasets.Instance, []*models.PreparedRep, error) {
	topts := req.Traverse.Options()
	// The canonical options digest covers every field (including the
	// sparsify knobs) under a versioned encoding — the same keying
	// discipline as serve's RepKey, so a hand-rolled format string can
	// never silently miss a new option.
	optDigest := topts.Digest()
	optKey := string(optDigest[:])
	insts := make([]datasets.Instance, len(req.Insts))
	preps := make([]*models.PreparedRep, len(req.Insts))
	for i, win := range req.Insts {
		inst, err := win.Instance()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", errBadJob, err)
		}
		insts[i] = inst
		fp := inst.G.Fingerprint()
		key := string(fp[:]) + optKey
		w.prepMu.Lock()
		prep := w.preps[key]
		w.prepMu.Unlock()
		if prep == nil {
			rep, res, err := band.FromGraph(inst.G, topts)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: preprocessing: %v", errBadJob, err)
			}
			prep = &models.PreparedRep{Rep: rep, Res: res}
			w.prepMu.Lock()
			w.preps[key] = prep
			w.prepMu.Unlock()
		}
		preps[i] = prep
	}
	return insts, preps, nil
}

// peerConn returns a cached outbound exchange connection to addr, dialing
// (with retry/backoff and the dist.dial fault point) on first use. Peer
// connections are unidirectional: each worker writes its own sends on its
// own outbound conns, and the accept side routes them — no rendezvous.
func (w *Worker) peerConn(addr string) (*wireConn, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, errors.New("dist: worker closed")
	}
	if pc, ok := w.peers[addr]; ok {
		w.mu.Unlock()
		return pc, nil
	}
	w.mu.Unlock()
	var pc *wireConn
	err := retry.Do(context.Background(), w.opts.DialRetry, func() error {
		if err := faults.Inject(faults.DistDial); err != nil {
			return err
		}
		c, err := net.DialTimeout("tcp", addr, w.opts.WriteTimeout)
		if err != nil {
			return err
		}
		wc := newWireConn(c, w.opts.WriteTimeout)
		if _, err := wc.handshake(Hello{Proto: ProtoVersion, Worker: -2}, w.opts.RecvTimeout); err != nil {
			wc.close()
			return err
		}
		// Drain the peer's side of the conn so its write of Pong/etc never
		// blocks; exchange conns only ever receive Hello back.
		go func() {
			for {
				if _, err := ReadFrame(c); err != nil {
					return
				}
			}
		}()
		pc = wc
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("dist: dial peer %s: %w", addr, err)
	}
	w.mu.Lock()
	if cached, ok := w.peers[addr]; ok {
		w.mu.Unlock()
		pc.close()
		return cached, nil
	}
	w.peers[addr] = pc
	w.mu.Unlock()
	return pc, nil
}

// dropPeer invalidates a cached peer connection after a send failure so
// the next job redials.
func (w *Worker) dropPeer(addr string, pc *wireConn) {
	w.mu.Lock()
	if w.peers[addr] == pc {
		delete(w.peers, addr)
	}
	w.mu.Unlock()
	pc.close()
}

// errJobAborted is returned from Recv when the supervisor aborts a job.
var errJobAborted = errors.New("dist: job aborted by supervisor")

// remoteLink is the models.ShardLink over the wire: sends go to peer
// workers' exchange connections, receives drain this job's routed channel
// with a per-message deadline.
type remoteLink struct {
	w         *Worker
	jobID     uint64
	self      int
	peers     []string
	in        chan Exchange
	abort     chan struct{}
	stash     map[models.ShardKey][]float64
	timeout   time.Duration
	sendDelay time.Duration
}

func (l *remoteLink) Send(to int, key models.ShardKey, data []float64) error {
	if to < 0 || to >= len(l.peers) {
		return fmt.Errorf("dist: send to worker %d of %d", to, len(l.peers))
	}
	if l.sendDelay > 0 {
		time.Sleep(l.sendDelay)
	}
	pc, err := l.w.peerConn(l.peers[to])
	if err != nil {
		return err
	}
	if err := pc.write(Exchange{JobID: l.jobID, To: int32(to), Key: key, Data: data}); err != nil {
		l.w.dropPeer(l.peers[to], pc)
		return err
	}
	return nil
}

func (l *remoteLink) Recv(key models.ShardKey) ([]float64, error) {
	if d, ok := l.stash[key]; ok {
		delete(l.stash, key)
		return d, nil
	}
	timer := time.NewTimer(l.timeout)
	defer timer.Stop()
	for {
		select {
		case m := <-l.in:
			if m.Key == key {
				return m.Data, nil
			}
			l.stash[m.Key] = m.Data
		case <-l.abort:
			return nil, errJobAborted
		case <-timer.C:
			return nil, fmt.Errorf("dist: worker %d: no %+v within %v (peer dead?)", l.self, key, l.timeout)
		}
	}
}
