package dist

// Supervisor is the serve-side half of the distributed transport: it
// holds the worker fleet (replica groups over a consistent-hash ring),
// heartbeats every member, dispatches forward jobs to k live members of
// the routed group, and fails over — first to the group's peer replicas
// (possibly at a smaller k; the engine's k-invariance keeps the answer
// bit-identical), then, only when the whole group is down, to the
// caller's degraded path (serve's breaker → DGL fallback engine).

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mega/internal/datasets"
	"mega/internal/faults"
	"mega/internal/graph"
	"mega/internal/models"
	"mega/internal/retry"
	"mega/internal/traverse"
)

// ErrGroupDown means every replica of the routed group is dead or the
// job failed on every failover attempt: the caller should degrade (serve
// feeds this to its dist breaker → DGL fallback).
var ErrGroupDown = errors.New("dist: replica group down")

// ErrRemoteUnshardable wraps a worker-reported permanent job failure; it
// matches models.ErrUnshardable via errors.Is so callers use one check
// for local and remote plan rejections.
type remoteUnshardableError struct{ msg string }

func (e *remoteUnshardableError) Error() string { return "dist: remote: " + e.msg }
func (e *remoteUnshardableError) Is(target error) bool {
	return target == models.ErrUnshardable
}

// Member states.
const (
	stateAlive int32 = iota
	stateDead
)

// SuperOptions configures a Supervisor.
type SuperOptions struct {
	// Workers lists every worker address, group-major: with GroupSize g,
	// addresses [0,g) are replica group 0, [g,2g) group 1, and so on.
	Workers []string
	// GroupSize is the replica count per group; zero means one group of
	// all workers. len(Workers) must be a multiple of it.
	GroupSize int
	// JobWorkers is the preferred shard fan-out k per job; it is clamped
	// per attempt to the largest divisor of 8 that live members allow.
	// Zero defaults to 2.
	JobWorkers int

	// HeartbeatEvery is the ping cadence (default 500ms);
	// HeartbeatTimeout the pong age that marks a member dead (default
	// 2s).
	HeartbeatEvery   time.Duration
	HeartbeatTimeout time.Duration
	// JobTimeout bounds one job attempt end to end (default 10s).
	JobTimeout time.Duration
	// WriteTimeout bounds each frame write (default 5s).
	WriteTimeout time.Duration
	// MaxAttempts caps failover attempts per Forward call (default 3).
	MaxAttempts int
	// Retry configures the inter-attempt backoff and dial retries.
	Retry retry.Config

	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
	// EventSink, when set, receives every liveness and failover event —
	// the chaos harness and CI artifact log tap in here.
	EventSink func(Event)
}

// Event is one supervisor incident: worker death, job retry, failover,
// group-down degradation.
type Event struct {
	Time    time.Time `json:"time"`
	Kind    string    `json:"kind"` // dial_failed | worker_dead | worker_alive | job_retry | job_failover | group_down | job_ok
	Addr    string    `json:"addr,omitempty"`
	Group   int       `json:"group"`
	JobID   uint64    `json:"job_id,omitempty"`
	Attempt int       `json:"attempt,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

func (o *SuperOptions) withDefaults() error {
	if len(o.Workers) == 0 {
		return errors.New("dist: supervisor needs at least one worker address")
	}
	if o.GroupSize == 0 {
		o.GroupSize = len(o.Workers)
	}
	if o.GroupSize < 1 || len(o.Workers)%o.GroupSize != 0 {
		return fmt.Errorf("dist: %d workers not divisible into groups of %d", len(o.Workers), o.GroupSize)
	}
	if o.JobWorkers == 0 {
		o.JobWorkers = 2
	}
	if o.JobWorkers < 1 || o.JobWorkers > o.GroupSize {
		return fmt.Errorf("dist: job workers %d outside [1, group size %d]", o.JobWorkers, o.GroupSize)
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 500 * time.Millisecond
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 4 * o.HeartbeatEvery
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 10 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 5 * time.Second
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 3
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// member is one worker in the fleet.
type member struct {
	addr  string
	group int

	state    atomic.Int32
	lastPong atomic.Int64 // unix nanos of the last Pong (or successful dial)
	jobs     atomic.Uint64
	failures atomic.Uint64

	mu   sync.Mutex
	conn *wireConn
}

// SuperStats is the supervisor's cumulative counters, exported on serve's
// /metrics.
type SuperStats struct {
	Jobs         uint64 `json:"jobs"`
	JobRetries   uint64 `json:"job_retries"`
	Failovers    uint64 `json:"failovers"` // jobs that succeeded only after ≥1 failed attempt
	GroupDown    uint64 `json:"group_down"`
	Unshardable  uint64 `json:"unshardable"`
	WorkerDeaths uint64 `json:"worker_deaths"`
	PayloadBytes uint64 `json:"payload_bytes"` // summed exchange payload bytes across jobs
}

// WorkerHealth is one member's liveness for /healthz.
type WorkerHealth struct {
	Addr            string  `json:"addr"`
	Group           int     `json:"group"`
	State           string  `json:"state"`
	LastHeartbeatMs float64 `json:"last_heartbeat_ms"` // age; -1 if never heard from
	Jobs            uint64  `json:"jobs"`
	Failures        uint64  `json:"failures"`
}

// Supervisor manages the worker fleet and dispatches shard jobs.
type Supervisor struct {
	opts    SuperOptions
	members []*member
	groups  [][]*member
	ring    *hashRing

	jobSeq  atomic.Uint64
	pingSeq atomic.Uint64

	pendMu  sync.Mutex
	pending map[uint64]chan Msg

	jobs         atomic.Uint64
	jobRetries   atomic.Uint64
	failovers    atomic.Uint64
	groupDown    atomic.Uint64
	unshardable  atomic.Uint64
	workerDeaths atomic.Uint64
	payloadBytes atomic.Uint64

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewSupervisor validates opts, builds the fleet, and starts the
// heartbeat loop. Workers are dialed lazily; a fleet whose workers are
// still starting becomes healthy as heartbeats land.
func NewSupervisor(opts SuperOptions) (*Supervisor, error) {
	if err := opts.withDefaults(); err != nil {
		return nil, err
	}
	s := &Supervisor{
		opts:    opts,
		ring:    newHashRing(len(opts.Workers) / opts.GroupSize),
		pending: make(map[uint64]chan Msg),
		stop:    make(chan struct{}),
	}
	for i, addr := range opts.Workers {
		m := &member{addr: addr, group: i / opts.GroupSize}
		m.lastPong.Store(0)
		s.members = append(s.members, m)
	}
	s.groups = make([][]*member, len(opts.Workers)/opts.GroupSize)
	for _, m := range s.members {
		s.groups[m.group] = append(s.groups[m.group], m)
	}
	s.wg.Add(1)
	go s.heartbeatLoop()
	return s, nil
}

// Close stops the heartbeat loop and closes every member connection.
func (s *Supervisor) Close() {
	select {
	case <-s.stop:
		return
	default:
	}
	close(s.stop)
	// Close connections before waiting: readLoops are blocked in ReadFrame
	// and only exit when their conn dies. A concurrent dial that slips past
	// the stop check finishes while holding m.mu, so this loop (which also
	// takes m.mu) always closes it afterwards.
	for _, m := range s.members {
		m.mu.Lock()
		if m.conn != nil {
			m.conn.close()
			m.conn = nil
		}
		m.mu.Unlock()
	}
	s.wg.Wait()
}

func (s *Supervisor) event(e Event) {
	e.Time = time.Now()
	if s.opts.EventSink != nil {
		s.opts.EventSink(e)
	}
}

// Stats snapshots the cumulative counters.
func (s *Supervisor) Stats() SuperStats {
	return SuperStats{
		Jobs:         s.jobs.Load(),
		JobRetries:   s.jobRetries.Load(),
		Failovers:    s.failovers.Load(),
		GroupDown:    s.groupDown.Load(),
		Unshardable:  s.unshardable.Load(),
		WorkerDeaths: s.workerDeaths.Load(),
		PayloadBytes: s.payloadBytes.Load(),
	}
}

// Health reports every member's liveness, fleet order.
func (s *Supervisor) Health() []WorkerHealth {
	now := time.Now().UnixNano()
	out := make([]WorkerHealth, len(s.members))
	for i, m := range s.members {
		h := WorkerHealth{
			Addr: m.addr, Group: m.group,
			Jobs: m.jobs.Load(), Failures: m.failures.Load(),
			LastHeartbeatMs: -1,
		}
		if m.state.Load() == stateAlive {
			h.State = "alive"
		} else {
			h.State = "dead"
		}
		if lp := m.lastPong.Load(); lp > 0 {
			h.LastHeartbeatMs = float64(now-lp) / 1e6
		}
		out[i] = h
	}
	return out
}

// GroupsAlive reports, per replica group, how many members are alive.
func (s *Supervisor) GroupsAlive() []int {
	out := make([]int, len(s.groups))
	for g, ms := range s.groups {
		for _, m := range ms {
			if m.state.Load() == stateAlive {
				out[g]++
			}
		}
	}
	return out
}

// conn returns the member's connection, dialing (with the dist.dial
// fault point) if needed. Dial failure marks the member dead.
func (s *Supervisor) conn(m *member) (*wireConn, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.conn != nil {
		return m.conn, nil
	}
	select {
	case <-s.stop:
		return nil, errors.New("dist: supervisor closed")
	default:
	}
	if err := faults.Inject(faults.DistDial); err != nil {
		s.markDead(m, err.Error())
		return nil, err
	}
	c, err := net.DialTimeout("tcp", m.addr, s.opts.WriteTimeout)
	if err != nil {
		s.markDead(m, err.Error())
		s.event(Event{Kind: "dial_failed", Addr: m.addr, Group: m.group, Detail: err.Error()})
		return nil, err
	}
	wc := newWireConn(c, s.opts.WriteTimeout)
	if _, err := wc.handshake(Hello{Proto: ProtoVersion, Worker: -1}, s.opts.WriteTimeout); err != nil {
		wc.close()
		s.markDead(m, err.Error())
		return nil, err
	}
	m.conn = wc
	s.markAlive(m)
	s.wg.Add(1)
	go s.readLoop(m, wc)
	return wc, nil
}

// readLoop routes a member connection's inbound frames: Pongs refresh
// liveness, job results and errors resolve pending jobs. A read error
// tears the connection down and marks the member dead.
func (s *Supervisor) readLoop(m *member, wc *wireConn) {
	defer s.wg.Done()
	for {
		msg, err := ReadFrame(wc.c)
		if err != nil {
			m.mu.Lock()
			if m.conn == wc {
				m.conn = nil
			}
			m.mu.Unlock()
			wc.close()
			select {
			case <-s.stop:
			default:
				if m.state.Load() == stateAlive {
					s.markDead(m, fmt.Sprintf("connection lost: %v", err))
					s.event(Event{Kind: "worker_dead", Addr: m.addr, Group: m.group, Detail: err.Error()})
				}
			}
			return
		}
		switch v := msg.(type) {
		case Pong:
			m.lastPong.Store(time.Now().UnixNano())
			s.markAlive(m)
		case JobResult:
			s.resolve(v.JobID, v)
		case JobError:
			s.resolve(v.JobID, v)
		}
	}
}

func (s *Supervisor) resolve(jobID uint64, msg Msg) {
	s.pendMu.Lock()
	ch := s.pending[jobID]
	s.pendMu.Unlock()
	if ch != nil {
		select {
		case ch <- msg:
		default:
		}
	}
}

func (s *Supervisor) markDead(m *member, why string) {
	if m.state.Swap(stateDead) != stateDead {
		s.workerDeaths.Add(1)
		s.opts.Logf("dist: worker %s (group %d) marked dead: %s", m.addr, m.group, why)
	}
}

func (s *Supervisor) markAlive(m *member) {
	if m.state.Swap(stateAlive) != stateAlive {
		s.opts.Logf("dist: worker %s (group %d) alive", m.addr, m.group)
		s.event(Event{Kind: "worker_alive", Addr: m.addr, Group: m.group})
	}
}

// heartbeatLoop pings every member each tick; members whose last pong is
// older than HeartbeatTimeout are marked dead, and dead members are
// redialed (so a restarted worker process rejoins automatically).
func (s *Supervisor) heartbeatLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		for _, m := range s.members {
			wc, err := s.conn(m)
			if err != nil {
				continue
			}
			seq := s.pingSeq.Add(1)
			if err := wc.write(Ping{Seq: seq}); err != nil {
				continue // readLoop handles the teardown
			}
			if lp := m.lastPong.Load(); lp > 0 &&
				time.Since(time.Unix(0, lp)) > s.opts.HeartbeatTimeout &&
				m.state.Load() == stateAlive {
				s.markDead(m, "heartbeat timeout")
				s.event(Event{Kind: "worker_dead", Addr: m.addr, Group: m.group, Detail: "heartbeat timeout"})
				m.mu.Lock()
				if m.conn != nil {
					m.conn.close() // readLoop exits and clears it
				}
				m.mu.Unlock()
			}
		}
	}
}

// probe pings m and waits briefly for a pong, refreshing liveness after a
// job failure so the next attempt's member choice reflects reality.
func (s *Supervisor) probe(m *member, wait time.Duration) bool {
	wc, err := s.conn(m)
	if err != nil {
		return false
	}
	start := time.Now()
	if err := wc.write(Ping{Seq: s.pingSeq.Add(1)}); err != nil {
		return false
	}
	deadline := start.Add(wait)
	for time.Now().Before(deadline) {
		if lp := m.lastPong.Load(); lp > 0 && time.Unix(0, lp).After(start) {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.markDead(m, "probe timeout")
	return false
}

// largestDivisorK returns the largest divisor of 8 that is ≤ n (and ≥ 1).
func largestDivisorK(n int) int {
	for _, k := range []int{8, 4, 2, 1} {
		if k <= n {
			return k
		}
	}
	return 1
}

// JobOutcome is one successful distributed forward.
type JobOutcome struct {
	FinalH  []float64 // PathLen×dim assembled final embeddings
	PathLen int
	Dim     int
	K       int // worker count the successful attempt ran at
	Group   int
	Attempt int // 1 = first try; >1 means failover happened
	Stats   models.ShardStats
}

// Forward runs one distributed forward for a batch: route the batch
// fingerprint to a replica group, dispatch to k live members, and on
// failure retry on the survivors (transparent failover — the engine's
// k-invariance keeps every answer bit-identical). Permanent failures
// (unshardable context) return an error matching models.ErrUnshardable;
// exhausted attempts or an empty group return ErrGroupDown.
func (s *Supervisor) Forward(ctx context.Context, insts []datasets.Instance, topts traverse.Options, dim int, fp graph.Fingerprint) (*JobOutcome, error) {
	group := s.ring.lookup(fp)
	s.jobs.Add(1)
	var lastErr error
	for attempt := 1; attempt <= s.opts.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		live := make([]*member, 0, s.opts.GroupSize)
		for _, m := range s.groups[group] {
			if m.state.Load() == stateAlive {
				live = append(live, m)
			} else if _, err := s.conn(m); err == nil {
				// A dead member with a fresh successful dial is back.
				live = append(live, m)
			}
		}
		if len(live) == 0 {
			lastErr = fmt.Errorf("no live members in group %d", group)
			break
		}
		k := largestDivisorK(min(s.opts.JobWorkers, len(live)))
		out, err := s.runJob(ctx, group, live[:k], k, insts, topts, dim)
		if err == nil {
			out.Attempt = attempt
			if attempt > 1 {
				s.failovers.Add(1)
				s.event(Event{Kind: "job_failover", Group: group, JobID: s.jobSeq.Load(), Attempt: attempt,
					Detail: fmt.Sprintf("recovered at k=%d", k)})
			}
			s.payloadBytes.Add(uint64(out.Stats.ForwardBytes()))
			return out, nil
		}
		if errors.Is(err, models.ErrUnshardable) {
			s.unshardable.Add(1)
			return nil, err
		}
		lastErr = err
		s.jobRetries.Add(1)
		s.event(Event{Kind: "job_retry", Group: group, Attempt: attempt, Detail: err.Error()})
		// Refresh liveness before re-picking members: a mid-job SIGKILL
		// surfaces as a recv timeout on a *surviving* worker, so probe the
		// whole group to find the actual corpse.
		for _, m := range s.groups[group] {
			s.probe(m, 250*time.Millisecond)
		}
		if attempt < s.opts.MaxAttempts {
			select {
			case <-time.After(retry.Backoff(attempt, s.opts.Retry)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	s.groupDown.Add(1)
	s.event(Event{Kind: "group_down", Group: group, Detail: fmt.Sprint(lastErr)})
	return nil, fmt.Errorf("%w (group %d): %v", ErrGroupDown, group, lastErr)
}

// runJob dispatches one attempt to exactly the chosen members and
// assembles their results.
func (s *Supervisor) runJob(ctx context.Context, group int, members []*member, k int, insts []datasets.Instance, topts traverse.Options, dim int) (*JobOutcome, error) {
	jobID := s.jobSeq.Add(1)
	ch := make(chan Msg, k)
	s.pendMu.Lock()
	s.pending[jobID] = ch
	s.pendMu.Unlock()
	defer func() {
		s.pendMu.Lock()
		delete(s.pending, jobID)
		s.pendMu.Unlock()
	}()

	peers := make([]string, k)
	for i, m := range members {
		peers[i] = m.addr
	}
	wireInsts := make([]WireInstance, len(insts))
	for i, inst := range insts {
		wireInsts[i] = FromInstance(inst)
	}
	abort := func() {
		for _, m := range members {
			m.mu.Lock()
			wc := m.conn
			m.mu.Unlock()
			if wc != nil {
				wc.write(JobAbort{JobID: jobID})
			}
		}
	}
	for i, m := range members {
		wc, err := s.conn(m)
		if err != nil {
			abort()
			return nil, fmt.Errorf("dispatch to %s: %w", m.addr, err)
		}
		req := JobRequest{
			JobID: jobID, Workers: int32(k), Index: int32(i), Dim: int32(dim),
			Peers: peers, Traverse: FromTraverse(topts), Insts: wireInsts,
		}
		if err := wc.write(req); err != nil {
			m.failures.Add(1)
			abort()
			return nil, fmt.Errorf("dispatch to %s: %w", m.addr, err)
		}
		m.jobs.Add(1)
	}

	// Collect k results under the job deadline.
	results := make([]JobResult, 0, k)
	timer := time.NewTimer(s.opts.JobTimeout)
	defer timer.Stop()
	for len(results) < k {
		select {
		case msg := <-ch:
			switch v := msg.(type) {
			case JobResult:
				results = append(results, v)
			case JobError:
				abort()
				if v.Permanent {
					return nil, &remoteUnshardableError{msg: v.Msg}
				}
				return nil, fmt.Errorf("job %d failed on a worker: %s", jobID, v.Msg)
			}
		case <-timer.C:
			abort()
			return nil, fmt.Errorf("job %d timed out after %v", jobID, s.opts.JobTimeout)
		case <-ctx.Done():
			abort()
			return nil, ctx.Err()
		}
	}

	// Assemble: every owned row range exactly once, full coverage.
	pathLen := int(results[0].PathLen)
	finalH := make([]float64, pathLen*dim)
	covered := 0
	var stats models.ShardStats
	stats.Workers = k
	for _, res := range results {
		lo, hi := int(res.Lo), int(res.Hi)
		if int(res.PathLen) != pathLen || lo < 0 || hi > pathLen || (hi-lo)*dim != len(res.Rows) {
			return nil, fmt.Errorf("job %d: inconsistent result geometry", jobID)
		}
		copy(finalH[lo*dim:hi*dim], res.Rows)
		covered += hi - lo
		stats.HaloMessages += res.Stats.HaloMessages
		stats.HaloBytes += res.Stats.HaloBytes
		stats.SyncMessages += res.Stats.SyncMessages
		stats.SyncBytes += res.Stats.SyncBytes
		stats.EdgeMessages += res.Stats.EdgeMessages
		stats.EdgeBytes += res.Stats.EdgeBytes
	}
	if covered != pathLen {
		return nil, fmt.Errorf("job %d: results cover %d of %d rows", jobID, covered, pathLen)
	}
	return &JobOutcome{FinalH: finalH, PathLen: pathLen, Dim: dim, K: k, Group: group, Stats: stats}, nil
}
