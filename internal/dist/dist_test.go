package dist

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mega/internal/band"
	"mega/internal/graph"
	"mega/internal/traverse"
)

func buildFor(t testing.TB, g *graph.Graph, window int) (*band.Rep, *traverse.Result) {
	t.Helper()
	rep, res, err := band.FromGraph(g, traverse.Options{Window: window, EdgeCoverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	return rep, res
}

func buildRep(t testing.TB, g *graph.Graph, window int) *band.Rep {
	rep, _ := buildFor(t, g, window)
	return rep
}

func TestAnalyzeEdgePartitionValidation(t *testing.T) {
	g := graph.Cycle(8)
	if _, err := AnalyzeEdgePartition(g, 0, 16); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := AnalyzeEdgePartition(g, 9, 16); err == nil {
		t.Error("k > n should error")
	}
}

func TestAnalyzeEdgePartitionSingleWorker(t *testing.T) {
	g := graph.Cycle(8)
	s, err := AnalyzeEdgePartition(g, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.Messages != 0 || s.Bytes != 0 {
		t.Errorf("single worker should not communicate: %+v", s)
	}
}

func TestAnalyzeEdgePartitionCycleCut(t *testing.T) {
	// Range partition of a cycle into k=2: exactly two cut edges, both
	// parts exchange both directions: 2 messages, 2 rows each way.
	g := graph.Cycle(8)
	s, err := AnalyzeEdgePartition(g, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Messages != 2 {
		t.Errorf("messages = %d, want 2", s.Messages)
	}
	// Rows moved: each direction carries the 2 boundary vertices of one
	// side (vertices 0,7 to part 1's side is... both cut edges (3,4) and
	// (7,0): part0 sends {3, 0}... i.e. 2 rows per direction.
	if s.Bytes != int64(2*2*4*8) {
		t.Errorf("bytes = %d, want %d", s.Bytes, 2*2*4*8)
	}
	if s.MaxFanout != 1 {
		t.Errorf("fanout = %d, want 1", s.MaxFanout)
	}
}

func TestEdgePartitionDenseGraphAllToAll(t *testing.T) {
	g := graph.Complete(16)
	s, err := AnalyzeEdgePartition(g, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxFanout != 3 {
		t.Errorf("complete graph fanout = %d, want k-1 = 3", s.MaxFanout)
	}
	if s.Messages != 4*3 {
		t.Errorf("messages = %d, want 12 (all ordered pairs)", s.Messages)
	}
}

// TestAnalyzePathPartitionExact pins every analyzer term on a hand-built
// representation: L=16, ω=1, k=4 (chunks of 4 rows), one duplicate group
// spanning chunks 0 and 2, one cross-chunk edge, one intra-chunk edge.
func TestAnalyzePathPartitionExact(t *testing.T) {
	const L, dim, k = 16, 8, 4
	rep := &band.Rep{
		Path:       make([]graph.NodeID, L),
		Window:     1,
		NumNodes:   15,
		Mask:       [][]bool{make([]bool, L-1)},
		EdgeID:     [][]int32{make([]int32, L-1)},
		Positions:  make([][]int32, 15),
		TotalEdges: 2,
	}
	for i := range rep.EdgeID[0] {
		rep.EdgeID[0][i] = -1
	}
	// Vertex 2 appears at positions 2 and 9: the group is owned by chunk
	// 0, chunk 2 holds one member -> 2 messages, (1+1)·dim·8 bytes.
	rep.Positions[2] = []int32{2, 9}
	// Edge 0 pairs positions 3 and 4: owner is chunk 0 (first receiver,
	// position 3); chunk 1 references it once (receiver position 4) ->
	// 2 messages, (1+1)·dim·8 bytes.
	rep.Mask[0][3] = true
	rep.EdgeID[0][3] = 0
	// Edge 1 pairs positions 5 and 6, both in chunk 1: no traffic.
	rep.Mask[0][5] = true
	rep.EdgeID[0][5] = 1

	s, err := AnalyzePathPartition(rep, k, dim)
	if err != nil {
		t.Fatal(err)
	}
	wantMsgs := 2*(k-1) + 2 + 2
	if s.Messages != wantMsgs {
		t.Errorf("messages = %d, want %d", s.Messages, wantMsgs)
	}
	wantBytes := int64(2*(k-1)*1*dim*8) + 2*int64(2*dim*8)
	if s.Bytes != wantBytes {
		t.Errorf("bytes = %d, want %d", s.Bytes, wantBytes)
	}
	if s.MaxFanout != 2 {
		t.Errorf("fanout = %d, want 2", s.MaxFanout)
	}
	if s.ReplicatedRows != 2*(k-1)*1 {
		t.Errorf("replicated rows = %d, want %d", s.ReplicatedRows, 2*(k-1))
	}
	if _, err := AnalyzePathPartition(rep, 0, dim); err == nil {
		t.Error("k=0 should error")
	}
}

func TestPathPartitionBeatsEdgePartitionOnDenseGraphs(t *testing.T) {
	// The §IV-B6 claim: O(k) messages for paths vs up to O(k²) for cuts,
	// with bounded fanout. The workload shape is the paper's: a batch of
	// small sparse graphs whose node IDs carry no locality (scrambled),
	// so a range partition cuts heavily while the traversal lays each
	// member graph out contiguously.
	rng := rand.New(rand.NewSource(1))
	members := make([]*graph.Graph, 24)
	for i := range members {
		members[i] = graph.RandomTree(rng, 16)
	}
	b, err := graph.NewBatch(members)
	if err != nil {
		t.Fatal(err)
	}
	perm := graph.RandomPermutation(rng, b.Merged.NumNodes())
	g, err := graph.PermuteNodes(b.Merged, perm)
	if err != nil {
		t.Fatal(err)
	}
	rep := buildRep(t, g, 0)
	for _, k := range []int{4, 8, 16} {
		edge, err := AnalyzeEdgePartition(g, k, 64)
		if err != nil {
			t.Fatal(err)
		}
		path, err := AnalyzePathPartition(rep, k, 64)
		if err != nil {
			t.Fatal(err)
		}
		if path.MaxFanout > 2 {
			t.Errorf("k=%d: path fanout = %d, want <= 2", k, path.MaxFanout)
		}
		if edge.MaxFanout <= path.MaxFanout && k > 4 {
			t.Errorf("k=%d: edge fanout %d should exceed path fanout %d", k, edge.MaxFanout, path.MaxFanout)
		}
		if path.Messages >= edge.Messages && k > 4 {
			t.Errorf("k=%d: path messages %d should be below edge messages %d", k, path.Messages, edge.Messages)
		}
		// Byte advantage grows with k: edge-cut traffic scales with the
		// boundary (≈ all-to-all), halo traffic scales O(k).
		if k >= 8 && path.Bytes >= edge.Bytes {
			t.Errorf("k=%d: path bytes %d should be below edge bytes %d", k, path.Bytes, edge.Bytes)
		}
	}
}

// revisitHeavyGraph builds a random tree: its traversal must backtrack at
// every leaf, so the path is full of revisits (duplicate groups).
func revisitHeavyGraph(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return graph.RandomTree(rng, n)
}

// spanningChunks returns the number of distinct k-chunks the widest
// duplicate group of rep touches.
func spanningChunks(rep *band.Rep, k int) int {
	L := rep.Len()
	max := 0
	for _, g := range rep.SyncGroups() {
		chunks := make(map[int]bool)
		for _, p := range g {
			chunks[int(p)*k/L] = true
		}
		if len(chunks) > max {
			max = len(chunks)
		}
	}
	return max
}

// TestRunHaloExchangeMatchesAnalysis is the end-to-end traffic property:
// the observed message and byte counts of the real sharded GNN equal the
// closed-form analysis times the layer count, on revisit-heavy graphs
// whose duplicate groups span more than two chunks.
func TestRunHaloExchangeMatchesAnalysis(t *testing.T) {
	const dim, layers = 4, 2
	spanned := false
	for seed := int64(0); seed < 6; seed++ {
		g := revisitHeavyGraph(seed, 40)
		rep, res := buildFor(t, g, 2)
		for _, k := range []int{2, 4, 8} {
			if spanningChunks(rep, k) > 2 {
				spanned = true
			}
			obs, err := RunHaloExchange(g, rep, res, k, dim, layers)
			if err != nil {
				t.Fatalf("seed %d k=%d: %v", seed, k, err)
			}
			ana, err := AnalyzePathPartition(rep, k, dim)
			if err != nil {
				t.Fatal(err)
			}
			if obs.Messages != ana.Messages*layers {
				t.Errorf("seed %d k=%d: observed %d messages, analysis predicts %d x %d",
					seed, k, obs.Messages, ana.Messages, layers)
			}
			if obs.Bytes != ana.Bytes*int64(layers) {
				t.Errorf("seed %d k=%d: observed %d bytes, analysis predicts %d x %d",
					seed, k, obs.Bytes, ana.Bytes, layers)
			}
		}
	}
	if !spanned {
		t.Fatal("workload never produced a duplicate group spanning > 2 chunks; property under-tested")
	}
}

// TestRunHaloExchangeTrafficProperty drives the same observed-vs-analysis
// equality through randomized shapes.
func TestRunHaloExchangeTrafficProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%24) + 16
		g := revisitHeavyGraph(seed, n)
		rep, res, err := band.FromGraph(g, traverse.Options{Window: 2, EdgeCoverage: 1})
		if err != nil || rep.Len() < 16 {
			return true // skip degenerate shapes
		}
		k := []int{2, 4, 8}[int(kRaw)%3]
		obs, err := RunHaloExchange(g, rep, res, k, 4, 2)
		if err != nil {
			return false
		}
		ana, err := AnalyzePathPartition(rep, k, 4)
		if err != nil {
			return false
		}
		return obs.Messages == ana.Messages*2 && obs.Bytes == ana.Bytes*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRunHaloExchangeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.ErdosRenyiM(rng, 60, 150)
	rep, res := buildFor(t, g, 2)
	a, err := RunHaloExchange(g, rep, res, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHaloExchange(g, rep, res, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.RowSums {
		if math.Float64bits(a.RowSums[i]) != math.Float64bits(b.RowSums[i]) {
			t.Fatalf("row %d differs across identical runs", i)
		}
	}
}

// TestRunHaloExchangeMatchesSingleWorker pins the engine's bit-determinism
// across worker counts: the distributed forward is exactly the k=1 result.
func TestRunHaloExchangeMatchesSingleWorker(t *testing.T) {
	g := graph.Path(48)
	rep, res := buildFor(t, g, 2)
	single, err := RunHaloExchange(g, rep, res, 1, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if single.Messages != 0 {
		t.Errorf("single worker sent %d messages", single.Messages)
	}
	for _, k := range []int{2, 4, 8} {
		multi, err := RunHaloExchange(g, rep, res, k, 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := range single.RowSums {
			if math.Float64bits(single.RowSums[i]) != math.Float64bits(multi.RowSums[i]) {
				t.Fatalf("k=%d: row %d diverges from single-worker result", k, i)
			}
		}
	}
}

// Property: path partition messages are exactly 2(k-1) plus sync traffic,
// independent of graph density.
func TestPathPartitionMessageProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%40) + 8
		rng := rand.New(rand.NewSource(seed))
		g := graph.ErdosRenyiM(rng, n, n*2)
		rep, _, err := band.FromGraph(g, traverse.DefaultOptions())
		if err != nil {
			return false
		}
		k := int(kRaw%4) + 2
		if k > rep.Len() {
			k = rep.Len()
		}
		s, err := AnalyzePathPartition(rep, k, 16)
		if err != nil {
			return false
		}
		return s.Messages >= 2*(k-1) && s.MaxFanout <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHaloExchange(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ErdosRenyiM(rng, 512, 1500)
	rep, res := buildFor(b, g, 2)
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunHaloExchange(g, rep, res, k, 32, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
