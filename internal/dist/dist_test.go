package dist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mega/internal/band"
	"mega/internal/graph"
	"mega/internal/traverse"
)

func buildRep(t testing.TB, g *graph.Graph, window int) *band.Rep {
	t.Helper()
	rep, _, err := band.FromGraph(g, traverse.Options{Window: window, EdgeCoverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestAnalyzeEdgePartitionValidation(t *testing.T) {
	g := graph.Cycle(8)
	if _, err := AnalyzeEdgePartition(g, 0, 16); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := AnalyzeEdgePartition(g, 9, 16); err == nil {
		t.Error("k > n should error")
	}
}

func TestAnalyzeEdgePartitionSingleWorker(t *testing.T) {
	g := graph.Cycle(8)
	s, err := AnalyzeEdgePartition(g, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.Messages != 0 || s.Bytes != 0 {
		t.Errorf("single worker should not communicate: %+v", s)
	}
}

func TestAnalyzeEdgePartitionCycleCut(t *testing.T) {
	// Range partition of a cycle into k=2: exactly two cut edges, both
	// parts exchange both directions: 2 messages, 2 rows each way.
	g := graph.Cycle(8)
	s, err := AnalyzeEdgePartition(g, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Messages != 2 {
		t.Errorf("messages = %d, want 2", s.Messages)
	}
	// Rows moved: each direction carries the 2 boundary vertices of one
	// side (vertices 0,7 to part 1's side is... both cut edges (3,4) and
	// (7,0): part0 sends {3, 0}... i.e. 2 rows per direction.
	if s.Bytes != int64(2*2*4*8) {
		t.Errorf("bytes = %d, want %d", s.Bytes, 2*2*4*8)
	}
	if s.MaxFanout != 1 {
		t.Errorf("fanout = %d, want 1", s.MaxFanout)
	}
}

func TestEdgePartitionDenseGraphAllToAll(t *testing.T) {
	g := graph.Complete(16)
	s, err := AnalyzeEdgePartition(g, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxFanout != 3 {
		t.Errorf("complete graph fanout = %d, want k-1 = 3", s.MaxFanout)
	}
	if s.Messages != 4*3 {
		t.Errorf("messages = %d, want 12 (all ordered pairs)", s.Messages)
	}
}

func TestAnalyzePathPartition(t *testing.T) {
	g := graph.Path(32)
	rep := buildRep(t, g, 2)
	s, err := AnalyzePathPartition(rep, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Messages != 2*(4-1) {
		t.Errorf("messages = %d, want 6 (2 per boundary)", s.Messages)
	}
	if s.MaxFanout != 2 {
		t.Errorf("fanout = %d, want 2 (adjacent chunks only)", s.MaxFanout)
	}
	wantBytes := int64(2*3*2*8) * 8 // 2(k-1) * ω rows * dim * 8 bytes
	if s.Bytes != wantBytes {
		t.Errorf("bytes = %d, want %d", s.Bytes, wantBytes)
	}
	if _, err := AnalyzePathPartition(rep, 0, 8); err == nil {
		t.Error("k=0 should error")
	}
}

func TestPathPartitionBeatsEdgePartitionOnDenseGraphs(t *testing.T) {
	// The §IV-B6 claim: O(k) messages for paths vs up to O(k²) for cuts,
	// with bounded fanout. The workload shape is the paper's: a batch of
	// small sparse graphs whose node IDs carry no locality (scrambled),
	// so a range partition cuts heavily while the traversal lays each
	// member graph out contiguously.
	rng := rand.New(rand.NewSource(1))
	members := make([]*graph.Graph, 24)
	for i := range members {
		members[i] = graph.RandomTree(rng, 16)
	}
	b, err := graph.NewBatch(members)
	if err != nil {
		t.Fatal(err)
	}
	perm := graph.RandomPermutation(rng, b.Merged.NumNodes())
	g, err := graph.PermuteNodes(b.Merged, perm)
	if err != nil {
		t.Fatal(err)
	}
	rep := buildRep(t, g, 0)
	for _, k := range []int{4, 8, 16} {
		edge, err := AnalyzeEdgePartition(g, k, 64)
		if err != nil {
			t.Fatal(err)
		}
		path, err := AnalyzePathPartition(rep, k, 64)
		if err != nil {
			t.Fatal(err)
		}
		if path.MaxFanout > 2 {
			t.Errorf("k=%d: path fanout = %d, want <= 2", k, path.MaxFanout)
		}
		if edge.MaxFanout <= path.MaxFanout && k > 4 {
			t.Errorf("k=%d: edge fanout %d should exceed path fanout %d", k, edge.MaxFanout, path.MaxFanout)
		}
		if path.Messages >= edge.Messages && k > 4 {
			t.Errorf("k=%d: path messages %d should be below edge messages %d", k, path.Messages, edge.Messages)
		}
		// Byte advantage grows with k: edge-cut traffic scales with the
		// boundary (≈ all-to-all), halo traffic scales O(k).
		if k >= 8 && path.Bytes >= edge.Bytes {
			t.Errorf("k=%d: path bytes %d should be below edge bytes %d", k, path.Bytes, edge.Bytes)
		}
	}
}

func TestRunHaloExchangeMatchesAnalysis(t *testing.T) {
	g := graph.Path(64)
	rep := buildRep(t, g, 2)
	const k, dim, layers = 4, 8, 3
	res, err := RunHaloExchange(rep, k, dim, layers)
	if err != nil {
		t.Fatal(err)
	}
	ana, err := AnalyzePathPartition(rep, k, dim)
	if err != nil {
		t.Fatal(err)
	}
	// Observed messages = per-layer halo messages × layers (path graph
	// has no duplicates, so sync traffic is zero).
	if res.Messages != ana.Messages*layers {
		t.Errorf("observed messages %d, want %d x %d", res.Messages, ana.Messages, layers)
	}
	if res.Bytes != ana.Bytes*int64(layers) {
		t.Errorf("observed bytes %d, want %d x %d", res.Bytes, ana.Bytes, layers)
	}
}

func TestRunHaloExchangeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.ErdosRenyiM(rng, 60, 150)
	rep := buildRep(t, g, 0)
	a, err := RunHaloExchange(rep, 3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHaloExchange(rep, 3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Checksums {
		if a.Checksums[i] != b.Checksums[i] {
			t.Errorf("worker %d checksum differs across runs", i)
		}
	}
}

func TestRunHaloExchangeMatchesSingleWorker(t *testing.T) {
	// Partitioned smoothing must equal the k=1 (no communication) result:
	// halos make the chunked computation exact.
	g := graph.Path(48)
	rep := buildRep(t, g, 2)
	single, err := RunHaloExchange(rep, 1, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunHaloExchange(rep, 4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if single.Messages != 0 {
		t.Errorf("single worker sent %d messages", single.Messages)
	}
	// Worker 0 of the multi run owns the path prefix, so its first-row
	// checksum must match the single worker's.
	if diff := single.Checksums[0] - multi.Checksums[0]; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("chunked result diverges from single-worker: %v vs %v", multi.Checksums[0], single.Checksums[0])
	}
}

// Property: path partition messages are exactly 2(k-1) plus sync traffic,
// independent of graph density.
func TestPathPartitionMessageProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%40) + 8
		rng := rand.New(rand.NewSource(seed))
		g := graph.ErdosRenyiM(rng, n, n*2)
		rep, _, err := band.FromGraph(g, traverse.DefaultOptions())
		if err != nil {
			return false
		}
		k := int(kRaw%4) + 2
		if k > rep.Len() {
			k = rep.Len()
		}
		s, err := AnalyzePathPartition(rep, k, 16)
		if err != nil {
			return false
		}
		return s.Messages >= 2*(k-1) && s.MaxFanout <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHaloExchange(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ErdosRenyiM(rng, 512, 1500)
	rep := buildRep(b, g, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunHaloExchange(rep, 8, 32, 2); err != nil {
			b.Fatal(err)
		}
	}
}
