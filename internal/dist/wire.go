package dist

// Wire codec for the distributed shard transport: a length-prefixed,
// CRC-framed binary protocol carrying the shard engine's halo / dup-sync /
// edge-fold exchange messages plus the control plane (hello, heartbeat,
// job dispatch, results, aborts) between the serve supervisor and
// megashard worker processes.
//
// Frame layout (all integers little-endian):
//
//	magic   4 bytes  "MGW1" — protocol name + version
//	length  u32      byte length of kind+payload
//	kind    u8       message kind
//	payload variable kind-specific body
//	crc     u32      CRC-32 (IEEE) over kind+payload
//
// A torn write (process killed mid-frame) surfaces as a short read or a
// CRC mismatch — never as a misparsed message. Float64 payloads travel as
// raw IEEE-754 bit patterns, so NaN payloads and signed zeros survive the
// trip and the engine's bit-identity invariant is preserved end to end.

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"mega/internal/datasets"
	"mega/internal/graph"
	"mega/internal/models"
	"mega/internal/traverse"
)

// ProtoVersion is the wire protocol version; it rides in the frame magic
// ("MGW" + version digit) and in Hello, so a mixed-version pairing fails
// at the first frame instead of misbehaving later. Version 2 added the
// sparsify fields to WireTraverse.
const ProtoVersion = 2

var frameMagic = [4]byte{'M', 'G', 'W', '0' + ProtoVersion}

// MaxFrameLen bounds kind+payload. Frames carry at most one exchange
// message (ω·d halo rows dominate) or one job request (a serving batch);
// 1 GiB is far above any legitimate frame and small enough to reject a
// garbage length prefix before allocating.
const MaxFrameLen = 1 << 30

// Codec errors. Transport-level failures (short reads, closed
// connections) pass through as the underlying io errors.
var (
	ErrBadMagic      = errors.New("dist: bad frame magic (wrong protocol or version)")
	ErrCorruptFrame  = errors.New("dist: corrupt frame (CRC mismatch or malformed payload)")
	ErrFrameTooLarge = errors.New("dist: frame exceeds MaxFrameLen")
	ErrUnknownKind   = errors.New("dist: unknown message kind")
)

// Message kinds.
const (
	kindHello byte = iota + 1
	kindPing
	kindPong
	kindJobRequest
	kindJobResult
	kindJobError
	kindJobAbort
	kindExchange
)

// Msg is one decoded wire message.
type Msg interface{ kind() byte }

// Hello opens every connection: both sides announce the protocol version
// and role so a mismatched pairing fails loudly at the first frame.
type Hello struct {
	Proto  uint32
	Worker int32 // sender's worker index, -1 for the supervisor
	Addr   string
}

// Ping is a supervisor→worker heartbeat probe.
type Ping struct{ Seq uint64 }

// Pong answers a Ping with the same sequence number.
type Pong struct{ Seq uint64 }

// WireInstance is one graph instance of a job batch: exactly the fields a
// worker needs to rebuild the instance (and therefore, with the job's
// traversal options, a bit-identical MEGA context).
type WireInstance struct {
	NumNodes int32
	Directed bool
	Edges    []graph.Edge
	NodeFeat []int32
	EdgeFeat []int32
	Target   float64
	Label    int32
}

// WireTraverse is the resolved traversal options of a job, shipped so
// worker-side preprocessing reproduces the supervisor's representation
// bit for bit.
type WireTraverse struct {
	Window           int32
	EdgeCoverage     float64
	DropEdges        float64
	DropStrategy     int32
	RevisitPolicy    int32
	Objective        int32
	Start            int32
	Seed             int64
	SparsifyFraction float64
	SparsifySeed     int64
}

// FromTraverse converts resolved traversal options to wire form.
func FromTraverse(o traverse.Options) WireTraverse {
	return WireTraverse{
		Window:           int32(o.Window),
		EdgeCoverage:     o.EdgeCoverage,
		DropEdges:        o.DropEdges,
		DropStrategy:     int32(o.DropStrategy),
		RevisitPolicy:    int32(o.RevisitPolicy),
		Objective:        int32(o.Objective),
		Start:            int32(o.Start),
		Seed:             o.Seed,
		SparsifyFraction: o.SparsifyFraction,
		SparsifySeed:     o.SparsifySeed,
	}
}

// Options converts wire form back to traversal options.
func (w WireTraverse) Options() traverse.Options {
	return traverse.Options{
		Window:           int(w.Window),
		EdgeCoverage:     w.EdgeCoverage,
		DropEdges:        w.DropEdges,
		DropStrategy:     traverse.DropStrategy(w.DropStrategy),
		RevisitPolicy:    traverse.RevisitPolicy(w.RevisitPolicy),
		Objective:        traverse.Objective(w.Objective),
		Start:            graph.NodeID(w.Start),
		Seed:             w.Seed,
		SparsifyFraction: w.SparsifyFraction,
		SparsifySeed:     w.SparsifySeed,
	}
}

// JobRequest dispatches one worker's share of a forward job. Every worker
// of the job receives the same batch and plan shape plus its own index;
// Peers lists all k worker addresses in plan order for the peer-to-peer
// exchange mesh.
type JobRequest struct {
	JobID    uint64
	Workers  int32
	Index    int32
	Dim      int32
	Peers    []string
	Traverse WireTraverse
	Insts    []WireInstance
}

// WireStats is the send-side traffic a worker originated for one job, in
// the shard engine's logical units (one message per halo boundary / dup
// group / edge fold per layer; bytes are payload float64s × 8).
type WireStats struct {
	HaloMessages, HaloBytes int64
	SyncMessages, SyncBytes int64
	EdgeMessages, EdgeBytes int64
}

// JobResult returns one worker's owned final-embedding rows.
type JobResult struct {
	JobID   uint64
	Lo, Hi  int32
	PathLen int32
	Rows    []float64
	Stats   WireStats
}

// JobError reports a failed job. Permanent marks structural failures
// (unshardable context, malformed batch) that no retry or failover can
// fix; the supervisor falls back locally instead of burning replicas.
type JobError struct {
	JobID     uint64
	Permanent bool
	Msg       string
}

// JobAbort tells a worker to drop a job (a peer died; the supervisor is
// failing the attempt over to another replica set).
type JobAbort struct{ JobID uint64 }

// Exchange carries one shard engine message between workers: the key is
// models.ShardKey verbatim, the payload raw float64 bits.
type Exchange struct {
	JobID uint64
	To    int32
	Key   models.ShardKey
	Data  []float64
}

func (Hello) kind() byte      { return kindHello }
func (Ping) kind() byte       { return kindPing }
func (Pong) kind() byte       { return kindPong }
func (JobRequest) kind() byte { return kindJobRequest }
func (JobResult) kind() byte  { return kindJobResult }
func (JobError) kind() byte   { return kindJobError }
func (JobAbort) kind() byte   { return kindJobAbort }
func (Exchange) kind() byte   { return kindExchange }

// wbuf is a little-endian append-only encoder.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v byte) { w.b = append(w.b, v) }
func (w *wbuf) u16(v uint16) {
	w.b = append(w.b, byte(v), byte(v>>8))
}
func (w *wbuf) u32(v uint32) {
	w.b = append(w.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (w *wbuf) u64(v uint64) {
	w.u32(uint32(v))
	w.u32(uint32(v >> 32))
}
func (w *wbuf) i32(v int32)   { w.u32(uint32(v)) }
func (w *wbuf) i64(v int64)   { w.u64(uint64(v)) }
func (w *wbuf) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *wbuf) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *wbuf) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}
func (w *wbuf) f64s(v []float64) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.f64(x)
	}
}
func (w *wbuf) i32s(v []int32) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.i32(x)
	}
}

// rbuf is the matching bounds-checked decoder. The first out-of-bounds
// read latches err; all subsequent reads return zero values, so decoders
// can run straight through and check err once.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail() { r.err = ErrCorruptFrame }
func (r *rbuf) take(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		if r.err == nil {
			r.fail()
		}
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}
func (r *rbuf) u8() byte {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}
func (r *rbuf) u16() uint16 {
	s := r.take(2)
	if s == nil {
		return 0
	}
	return uint16(s[0]) | uint16(s[1])<<8
}
func (r *rbuf) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return uint32(s[0]) | uint32(s[1])<<8 | uint32(s[2])<<16 | uint32(s[3])<<24
}
func (r *rbuf) u64() uint64 {
	lo := r.u32()
	hi := r.u32()
	return uint64(lo) | uint64(hi)<<32
}
func (r *rbuf) i32() int32     { return int32(r.u32()) }
func (r *rbuf) i64() int64     { return int64(r.u64()) }
func (r *rbuf) f64() float64   { return math.Float64frombits(r.u64()) }
func (r *rbuf) boolv() bool    { return r.u8() != 0 }
func (r *rbuf) remaining() int { return len(r.b) - r.off }

// count reads a slice length and rejects any count the remaining payload
// cannot hold at elemSize bytes per element, so a corrupt length cannot
// trigger a huge allocation.
func (r *rbuf) count(elemSize int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if int64(n)*int64(elemSize) > int64(r.remaining()) {
		r.fail()
		return 0
	}
	return int(n)
}
func (r *rbuf) str() string {
	n := r.count(1)
	return string(r.take(n))
}
func (r *rbuf) f64s() []float64 {
	n := r.count(8)
	if r.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}
func (r *rbuf) i32s() []int32 {
	n := r.count(4)
	if r.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = r.i32()
	}
	return out
}

func encodeBody(m Msg) []byte {
	w := &wbuf{b: make([]byte, 0, 64)}
	w.u8(m.kind())
	switch v := m.(type) {
	case Hello:
		w.u32(v.Proto)
		w.i32(v.Worker)
		w.str(v.Addr)
	case Ping:
		w.u64(v.Seq)
	case Pong:
		w.u64(v.Seq)
	case JobRequest:
		w.u64(v.JobID)
		w.i32(v.Workers)
		w.i32(v.Index)
		w.i32(v.Dim)
		w.u32(uint32(len(v.Peers)))
		for _, p := range v.Peers {
			w.str(p)
		}
		t := v.Traverse
		w.i32(t.Window)
		w.f64(t.EdgeCoverage)
		w.f64(t.DropEdges)
		w.i32(t.DropStrategy)
		w.i32(t.RevisitPolicy)
		w.i32(t.Objective)
		w.i32(t.Start)
		w.i64(t.Seed)
		w.f64(t.SparsifyFraction)
		w.i64(t.SparsifySeed)
		w.u32(uint32(len(v.Insts)))
		for _, in := range v.Insts {
			w.i32(in.NumNodes)
			w.bool(in.Directed)
			w.u32(uint32(len(in.Edges)))
			for _, e := range in.Edges {
				w.i32(e.Src)
				w.i32(e.Dst)
			}
			w.i32s(in.NodeFeat)
			w.i32s(in.EdgeFeat)
			w.f64(in.Target)
			w.i32(in.Label)
		}
	case JobResult:
		w.u64(v.JobID)
		w.i32(v.Lo)
		w.i32(v.Hi)
		w.i32(v.PathLen)
		w.f64s(v.Rows)
		s := v.Stats
		w.i64(s.HaloMessages)
		w.i64(s.HaloBytes)
		w.i64(s.SyncMessages)
		w.i64(s.SyncBytes)
		w.i64(s.EdgeMessages)
		w.i64(s.EdgeBytes)
	case JobError:
		w.u64(v.JobID)
		w.bool(v.Permanent)
		w.str(v.Msg)
	case JobAbort:
		w.u64(v.JobID)
	case Exchange:
		w.u64(v.JobID)
		w.i32(v.To)
		w.u8(byte(v.Key.Phase))
		w.u16(uint16(v.Key.Layer))
		w.u32(uint32(v.Key.ID))
		w.u8(byte(v.Key.From))
		w.f64s(v.Data)
	default:
		panic(fmt.Sprintf("dist: encodeBody: unhandled message type %T", m))
	}
	return w.b
}

func decodeBody(b []byte) (Msg, error) {
	if len(b) < 1 {
		return nil, ErrCorruptFrame
	}
	r := &rbuf{b: b, off: 1}
	var m Msg
	switch b[0] {
	case kindHello:
		m = Hello{Proto: r.u32(), Worker: r.i32(), Addr: r.str()}
	case kindPing:
		m = Ping{Seq: r.u64()}
	case kindPong:
		m = Pong{Seq: r.u64()}
	case kindJobRequest:
		v := JobRequest{JobID: r.u64(), Workers: r.i32(), Index: r.i32(), Dim: r.i32()}
		np := r.count(4) // a peer is at least a 4-byte length prefix
		for i := 0; i < np && r.err == nil; i++ {
			v.Peers = append(v.Peers, r.str())
		}
		v.Traverse = WireTraverse{
			Window: r.i32(), EdgeCoverage: r.f64(), DropEdges: r.f64(),
			DropStrategy: r.i32(), RevisitPolicy: r.i32(), Objective: r.i32(),
			Start: r.i32(), Seed: r.i64(),
			SparsifyFraction: r.f64(), SparsifySeed: r.i64(),
		}
		ni := r.count(1)
		for i := 0; i < ni && r.err == nil; i++ {
			in := WireInstance{NumNodes: r.i32(), Directed: r.boolv()}
			ne := r.count(8)
			if r.err == nil {
				in.Edges = make([]graph.Edge, ne)
				for j := range in.Edges {
					in.Edges[j] = graph.Edge{Src: r.i32(), Dst: r.i32()}
				}
			}
			in.NodeFeat = r.i32s()
			in.EdgeFeat = r.i32s()
			in.Target = r.f64()
			in.Label = r.i32()
			v.Insts = append(v.Insts, in)
		}
		m = v
	case kindJobResult:
		v := JobResult{JobID: r.u64(), Lo: r.i32(), Hi: r.i32(), PathLen: r.i32(), Rows: r.f64s()}
		v.Stats = WireStats{
			HaloMessages: r.i64(), HaloBytes: r.i64(),
			SyncMessages: r.i64(), SyncBytes: r.i64(),
			EdgeMessages: r.i64(), EdgeBytes: r.i64(),
		}
		m = v
	case kindJobError:
		m = JobError{JobID: r.u64(), Permanent: r.boolv(), Msg: r.str()}
	case kindJobAbort:
		m = JobAbort{JobID: r.u64()}
	case kindExchange:
		v := Exchange{JobID: r.u64(), To: r.i32()}
		v.Key = models.ShardKey{
			Phase: int8(r.u8()), Layer: int16(r.u16()), ID: int32(r.u32()), From: int8(r.u8()),
		}
		v.Data = r.f64s()
		m = v
	default:
		return nil, fmt.Errorf("%w: 0x%02x", ErrUnknownKind, b[0])
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		// Trailing garbage inside a CRC-valid frame is an encoder bug or a
		// forged frame; reject rather than silently ignore.
		return nil, ErrCorruptFrame
	}
	return m, nil
}

// EncodeFrame serialises m into a complete frame.
func EncodeFrame(m Msg) []byte {
	body := encodeBody(m)
	w := &wbuf{b: make([]byte, 0, len(body)+12)}
	w.b = append(w.b, frameMagic[:]...)
	w.u32(uint32(len(body)))
	w.b = append(w.b, body...)
	w.u32(crc32.ChecksumIEEE(body))
	return w.b
}

// DecodeFrame parses one complete frame from the front of b, returning
// the message and the number of bytes consumed. io.ErrUnexpectedEOF means
// b holds a prefix of a valid frame (read more); other errors mean the
// stream is poisoned and the connection should be dropped.
func DecodeFrame(b []byte) (Msg, int, error) {
	if len(b) < 8 {
		return nil, 0, io.ErrUnexpectedEOF
	}
	if [4]byte(b[:4]) != frameMagic {
		return nil, 0, ErrBadMagic
	}
	n := uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24
	if n > MaxFrameLen {
		return nil, 0, ErrFrameTooLarge
	}
	total := 8 + int(n) + 4
	if len(b) < total {
		return nil, 0, io.ErrUnexpectedEOF
	}
	body := b[8 : 8+n]
	crc := uint32(b[8+n]) | uint32(b[8+n+1])<<8 | uint32(b[8+n+2])<<16 | uint32(b[8+n+3])<<24
	if crc32.ChecksumIEEE(body) != crc {
		return nil, 0, ErrCorruptFrame
	}
	m, err := decodeBody(body)
	if err != nil {
		return nil, 0, err
	}
	return m, total, nil
}

// WriteFrame writes one frame to w. The frame is assembled first so the
// write is a single Write call — a killed peer tears the frame, never
// interleaves it.
func WriteFrame(w io.Writer, m Msg) error {
	_, err := w.Write(EncodeFrame(m))
	return err
}

// ReadFrame reads exactly one frame from r. A clean EOF at a frame
// boundary returns io.EOF; EOF inside a frame (torn write) returns
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (Msg, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if [4]byte(hdr[:4]) != frameMagic {
		return nil, ErrBadMagic
	}
	n := uint32(hdr[4]) | uint32(hdr[5])<<8 | uint32(hdr[6])<<16 | uint32(hdr[7])<<24
	if n > MaxFrameLen {
		return nil, ErrFrameTooLarge
	}
	rest := make([]byte, int(n)+4)
	if _, err := io.ReadFull(r, rest); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	body := rest[:n]
	crc := uint32(rest[n]) | uint32(rest[n+1])<<8 | uint32(rest[n+2])<<16 | uint32(rest[n+3])<<24
	if crc32.ChecksumIEEE(body) != crc {
		return nil, ErrCorruptFrame
	}
	return decodeBody(body)
}

// FromInstance converts a dataset instance to wire form.
func FromInstance(in datasets.Instance) WireInstance {
	return WireInstance{
		NumNodes: int32(in.G.NumNodes()),
		Directed: in.G.Directed(),
		Edges:    in.G.Edges(),
		NodeFeat: in.NodeFeat,
		EdgeFeat: in.EdgeFeat,
		Target:   in.Target,
		Label:    int32(in.Label),
	}
}

// Instance rebuilds the dataset instance. The graph is reconstructed from
// the exact edge list, so its fingerprint — and any MEGA preprocessing —
// matches the sender's bit for bit.
func (w WireInstance) Instance() (datasets.Instance, error) {
	g, err := graph.New(int(w.NumNodes), w.Edges, w.Directed)
	if err != nil {
		return datasets.Instance{}, fmt.Errorf("dist: wire instance: %w", err)
	}
	return datasets.Instance{
		G:        g,
		NodeFeat: w.NodeFeat,
		EdgeFeat: w.EdgeFeat,
		Target:   w.Target,
		Label:    int(w.Label),
	}, nil
}
