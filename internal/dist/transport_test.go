package dist

import (
	"context"
	"errors"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"mega/internal/band"
	"mega/internal/datasets"
	"mega/internal/models"
	"mega/internal/retry"
	"mega/internal/traverse"
)

// The transport tests run real Workers on real TCP listeners (in-process,
// so coverage and -race see both sides) under a real Supervisor, and pin
// the tentpole contract: a remote-sharded forward is bit-identical to
// m.Forward(ctx), and its wire traffic equals AnalyzePathPartition × layers.

const transportDim = 16

func transportConfig() models.Config {
	// Deterministic seed: every worker that builds this config holds the
	// same replica, which is what makes bit-identity meaningful without
	// shipping a checkpoint in-process.
	return models.Config{Dim: transportDim, Layers: 2, Heads: 2, NodeTypes: 4, EdgeTypes: 2, OutDim: 1, Seed: 7}
}

func transportMegaOpts() models.MegaOptions {
	return models.MegaOptions{Traverse: traverse.Options{Window: 2}}
}

// transportInstance builds a revisit-heavy instance (random tree: the
// traversal backtracks at every leaf, so duplicate groups abound).
func transportInstance(t testing.TB, seed int64, n int) datasets.Instance {
	t.Helper()
	g := revisitHeavyGraph(seed, n)
	return datasets.Instance{
		G:        g,
		NodeFeat: make([]int32, g.NumNodes()),
		EdgeFeat: make([]int32, g.NumEdges()),
		Target:   1,
	}
}

// startWorkers runs n in-process workers on ephemeral TCP ports, each with
// its own model replica (same config seed). Returns addresses and workers.
func startWorkers(t testing.TB, n int, tweak func(*WorkerOptions)) ([]string, []*Worker) {
	t.Helper()
	addrs := make([]string, n)
	workers := make([]*Worker, n)
	for i := 0; i < n; i++ {
		opts := WorkerOptions{
			Model:       models.NewGT(transportConfig()),
			RecvTimeout: 2 * time.Second,
			Logf:        t.Logf,
		}
		if tweak != nil {
			tweak(&opts)
		}
		w, err := NewWorker(opts)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		workers[i] = w
		go w.Serve(ln)
		t.Cleanup(w.Close)
	}
	return addrs, workers
}

func fastSuperOpts(addrs []string, jobWorkers int) SuperOptions {
	return SuperOptions{
		Workers:          addrs,
		GroupSize:        len(addrs),
		JobWorkers:       jobWorkers,
		HeartbeatEvery:   50 * time.Millisecond,
		HeartbeatTimeout: 400 * time.Millisecond,
		JobTimeout:       5 * time.Second,
		MaxAttempts:      4,
		Retry:            retry.Config{Attempts: 4, Base: 10 * time.Millisecond, Max: 50 * time.Millisecond},
	}
}

// remoteForward runs one batch through the supervisor and reads the result
// out through the reference model, returning the outcome alongside.
func remoteForward(t *testing.T, s *Supervisor, m *models.GT, insts []datasets.Instance) ([]float64, *JobOutcome) {
	t.Helper()
	mopts := transportMegaOpts()
	refCtx, err := models.NewMegaContext(insts, mopts, nil, transportDim)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Forward(context.Background(), insts, mopts.TraverseOptions(), transportDim, insts[0].G.Fingerprint())
	if err != nil {
		t.Fatalf("supervisor forward: %v", err)
	}
	got, err := m.ReadoutFromFinal(refCtx, out.FinalH)
	if err != nil {
		t.Fatal(err)
	}
	return got.Data, out
}

func bitsEqual64(t *testing.T, got, want []float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: [%d] = %v (bits %x), want %v (bits %x) — must be bit-identical",
				what, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestSupervisorForwardBitIdentical is the tentpole wire contract: a
// forward sharded across real TCP workers returns final embeddings whose
// readout is bit-identical to the in-process m.Forward(ctx), and the
// summed per-worker wire traffic equals AnalyzePathPartition × layers.
func TestSupervisorForwardBitIdentical(t *testing.T) {
	addrs, _ := startWorkers(t, 2, nil)
	s, err := NewSupervisor(fastSuperOpts(addrs, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	m := models.NewGT(transportConfig())
	cfg := transportConfig()
	topts := transportMegaOpts().TraverseOptions()
	for seed := int64(0); seed < 3; seed++ {
		insts := []datasets.Instance{transportInstance(t, seed, 40)}
		refCtx, err := models.NewMegaContext(insts, transportMegaOpts(), nil, transportDim)
		if err != nil {
			t.Fatal(err)
		}
		want := m.Forward(refCtx)
		got, out := remoteForward(t, s, m, insts)
		bitsEqual64(t, got, want.Data, "remote-sharded readout")

		if out.K != 2 {
			t.Fatalf("seed %d: ran at k=%d, want 2", seed, out.K)
		}
		rep, _, err := band.FromGraph(insts[0].G, topts)
		if err != nil {
			t.Fatal(err)
		}
		ana, err := AnalyzePathPartition(rep, out.K, transportDim)
		if err != nil {
			t.Fatal(err)
		}
		layers := int64(cfg.Layers)
		if out.Stats.ForwardMessages() != int64(ana.Messages)*layers {
			t.Errorf("seed %d: wire messages %d, analysis predicts %d × %d",
				seed, out.Stats.ForwardMessages(), ana.Messages, layers)
		}
		if out.Stats.ForwardBytes() != ana.Bytes*layers {
			t.Errorf("seed %d: wire bytes %d, analysis predicts %d × %d",
				seed, out.Stats.ForwardBytes(), ana.Bytes, layers)
		}
	}
	if st := s.Stats(); st.Jobs != 3 || st.JobRetries != 0 || st.Failovers != 0 {
		t.Errorf("healthy fleet stats = %+v, want 3 clean jobs", st)
	}
}

// TestSupervisorFailoverToReplica kills a worker and proves the next
// request fails over to the surviving replicas with a bit-identical
// answer — the engine's k-invariance doing its job across the wire.
func TestSupervisorFailoverToReplica(t *testing.T) {
	addrs, workers := startWorkers(t, 3, nil)
	s, err := NewSupervisor(fastSuperOpts(addrs, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	m := models.NewGT(transportConfig())
	insts := []datasets.Instance{transportInstance(t, 11, 40)}
	refCtx, err := models.NewMegaContext(insts, transportMegaOpts(), nil, transportDim)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Forward(refCtx)

	got, _ := remoteForward(t, s, m, insts)
	bitsEqual64(t, got, want.Data, "pre-kill readout")

	// Kill the first member — the one a k=2 job would be dispatched to.
	workers[0].Close()

	got, out := remoteForward(t, s, m, insts)
	bitsEqual64(t, got, want.Data, "post-kill readout")
	if out.K > 2 {
		t.Errorf("post-kill job ran at k=%d with 2 survivors", out.K)
	}

	// The supervisor now knows the member is dead.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if alive := s.GroupsAlive()[0]; alive == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("supervisor never marked the killed worker dead: %+v", s.Health())
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, h := range s.Health() {
		if h.Addr == addrs[0] && h.State != "dead" {
			t.Errorf("killed worker reported %q", h.State)
		}
	}
}

// TestSupervisorUnshardableIsPermanent proves a structurally unshardable
// batch comes back as models.ErrUnshardable with no retries: the failover
// ladder must not burn attempts on requests no replica can serve.
func TestSupervisorUnshardableIsPermanent(t *testing.T) {
	addrs, _ := startWorkers(t, 2, nil)
	s, err := NewSupervisor(fastSuperOpts(addrs, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// A 3-node path graph traverses into fewer than 8 rows: unshardable.
	g := revisitHeavyGraph(3, 3)
	insts := []datasets.Instance{{
		G:        g,
		NodeFeat: make([]int32, g.NumNodes()),
		EdgeFeat: make([]int32, g.NumEdges()),
	}}
	_, err = s.Forward(context.Background(), insts, transportMegaOpts().TraverseOptions(), transportDim, g.Fingerprint())
	if !errors.Is(err, models.ErrUnshardable) {
		t.Fatalf("got %v, want models.ErrUnshardable", err)
	}
	st := s.Stats()
	if st.Unshardable != 1 {
		t.Errorf("unshardable = %d, want 1", st.Unshardable)
	}
	if st.JobRetries != 0 {
		t.Errorf("permanent failure burned %d retries", st.JobRetries)
	}
}

// TestSupervisorGroupDown proves the bottom of the failover ladder: with
// every replica unreachable, Forward returns ErrGroupDown (the signal
// serve's breaker turns into a DGL degrade) instead of hanging.
func TestSupervisorGroupDown(t *testing.T) {
	// Grab a port, then close it: dials fail fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	opts := fastSuperOpts([]string{addr}, 1)
	opts.MaxAttempts = 2
	var events []Event
	opts.EventSink = func(e Event) { events = append(events, e) }
	s, err := NewSupervisor(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	insts := []datasets.Instance{transportInstance(t, 5, 40)}
	_, err = s.Forward(context.Background(), insts, transportMegaOpts().TraverseOptions(), transportDim, insts[0].G.Fingerprint())
	if !errors.Is(err, ErrGroupDown) {
		t.Fatalf("got %v, want ErrGroupDown", err)
	}
	if st := s.Stats(); st.GroupDown != 1 {
		t.Errorf("group_down = %d, want 1", st.GroupDown)
	}
	sawDown := false
	for _, e := range events {
		if e.Kind == "group_down" {
			sawDown = true
		}
	}
	if !sawDown {
		t.Errorf("no group_down event emitted; events: %+v", events)
	}
}

// TestSupervisorRejectsBadFleet pins option validation.
func TestSupervisorRejectsBadFleet(t *testing.T) {
	if _, err := NewSupervisor(SuperOptions{}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := NewSupervisor(SuperOptions{Workers: []string{"a", "b", "c"}, GroupSize: 2}); err == nil {
		t.Error("3 workers in groups of 2 accepted")
	}
	if _, err := NewSupervisor(SuperOptions{Workers: []string{"a"}, GroupSize: 1, JobWorkers: 2}); err == nil {
		t.Error("job fan-out above group size accepted")
	}
}

// TestWorkerRejectsNonGT pins the worker-side model check.
func TestWorkerRejectsNonGT(t *testing.T) {
	if _, err := NewWorker(WorkerOptions{Model: nil}); err == nil {
		t.Error("nil model accepted")
	} else if !strings.Contains(err.Error(), "shard plans") {
		t.Errorf("unexpected error: %v", err)
	}
}
