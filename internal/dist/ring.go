package dist

import (
	"fmt"
	"hash/fnv"
	"sort"

	"mega/internal/graph"
)

// hashRing maps graph fingerprints to replica groups by consistent
// hashing: each group contributes ringVnodes virtual points on a 64-bit
// ring, and a fingerprint routes to the group owning the first point at
// or after its hash. Routing is therefore stable — adding or removing a
// group remaps only the keys adjacent to its points, so a given graph
// keeps hitting the same group's rep caches.
type hashRing struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	group int
}

const ringVnodes = 64

func newHashRing(groups int) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, groups*ringVnodes)}
	for g := 0; g < groups; g++ {
		for v := 0; v < ringVnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "group-%d-vnode-%d", g, v)
			r.points = append(r.points, ringPoint{hash: h.Sum64(), group: g})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].group < r.points[j].group
	})
	return r
}

// lookup routes a fingerprint to its replica group.
func (r *hashRing) lookup(fp graph.Fingerprint) int {
	h := fnv.New64a()
	h.Write(fp[:])
	x := h.Sum64()
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= x })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].group
}
