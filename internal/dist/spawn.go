package dist

// Spawner launches and supervises shard worker processes. The worker
// binary (cmd/megashard, or any process honouring the same contract)
// must print "MEGASHARD LISTEN <addr>\n" on stdout once its listener is
// bound; the spawner scans for that line to learn the concrete address.
// Killed workers can auto-restart on the same address, so a supervisor
// holding the fleet's addresses sees the member come back through its
// normal heartbeat redial.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"
)

// ReadyPrefix is the stdout line prefix a worker process prints when its
// listener is bound, followed by the concrete address.
const ReadyPrefix = "MEGASHARD LISTEN "

// AddrPlaceholder in a SpawnOptions.Command argv is replaced with the
// desired listen address per process.
const AddrPlaceholder = "{addr}"

// SpawnOptions configures a worker fleet launch.
type SpawnOptions struct {
	// Command is the argv template; every AddrPlaceholder occurrence is
	// replaced with the process's listen address ("127.0.0.1:0" on first
	// launch, the concrete bound address on restarts).
	Command []string
	// Env is extra environment ("K=V") appended to the parent's.
	Env []string
	// ReadyTimeout bounds the wait for the ready line (default 30s).
	ReadyTimeout time.Duration
	// AutoRestart relaunches a worker that exits, after RestartDelay
	// (default 100ms), on its original address.
	AutoRestart  bool
	RestartDelay time.Duration
	// Logf receives worker stderr lines and spawner progress; nil
	// discards them.
	Logf func(format string, args ...any)
	// EventSink, when set, receives spawn/kill/restart events (merged by
	// the chaos harness with the supervisor's failover events).
	EventSink func(Event)
}

func (o *SpawnOptions) withDefaults() error {
	if len(o.Command) == 0 {
		return errors.New("dist: spawner needs a command")
	}
	if o.ReadyTimeout <= 0 {
		o.ReadyTimeout = 30 * time.Second
	}
	if o.RestartDelay <= 0 {
		o.RestartDelay = 100 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// proc is one supervised worker process slot.
type proc struct {
	index int
	addr  string // concrete address after first ready line

	mu  sync.Mutex
	cmd *exec.Cmd
}

// Spawner owns a fleet of worker processes.
type Spawner struct {
	opts   SpawnOptions
	procs  []*proc
	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// Spawn launches n worker processes and waits until every one has
// printed its ready line. On error, everything already started is
// killed.
func Spawn(n int, opts SpawnOptions) (*Spawner, error) {
	if err := opts.withDefaults(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, errors.New("dist: spawn needs n >= 1")
	}
	sp := &Spawner{opts: opts}
	for i := 0; i < n; i++ {
		p := &proc{index: i}
		sp.procs = append(sp.procs, p)
		addr, err := sp.launch(p, "127.0.0.1:0")
		if err != nil {
			sp.Close()
			return nil, fmt.Errorf("dist: spawn worker %d: %w", i, err)
		}
		p.addr = addr
	}
	return sp, nil
}

// launch starts one process on listenAddr and waits for its ready line.
func (sp *Spawner) launch(p *proc, listenAddr string) (string, error) {
	argv := make([]string, len(sp.opts.Command))
	for i, a := range sp.opts.Command {
		argv[i] = strings.ReplaceAll(a, AddrPlaceholder, listenAddr)
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(cmd.Environ(), sp.opts.Env...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", err
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return "", err
	}
	if err := cmd.Start(); err != nil {
		return "", err
	}
	go sp.drain(p.index, "stderr", stderr)

	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if a, ok := strings.CutPrefix(line, ReadyPrefix); ok {
				select {
				case ready <- strings.TrimSpace(a):
				default:
				}
				continue
			}
			sp.opts.Logf("dist: worker %d stdout: %s", p.index, line)
		}
	}()

	select {
	case addr := <-ready:
		p.mu.Lock()
		p.cmd = cmd
		p.mu.Unlock()
		sp.event(Event{Kind: "worker_spawned", Addr: addr, Group: -1, Detail: fmt.Sprintf("pid %d", cmd.Process.Pid)})
		sp.wg.Add(1)
		go sp.reap(p, cmd)
		return addr, nil
	case <-time.After(sp.opts.ReadyTimeout):
		cmd.Process.Kill()
		go cmd.Wait()
		return "", fmt.Errorf("worker %d never printed %q", p.index, ReadyPrefix)
	}
}

func (sp *Spawner) drain(index int, stream string, r io.Reader) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		sp.opts.Logf("dist: worker %d %s: %s", index, stream, sc.Text())
	}
}

// reap waits for a process to exit and, when configured, restarts it on
// the same address so the supervisor's fleet list stays valid.
func (sp *Spawner) reap(p *proc, cmd *exec.Cmd) {
	defer sp.wg.Done()
	err := cmd.Wait()
	sp.mu.Lock()
	closed := sp.closed
	sp.mu.Unlock()
	sp.event(Event{Kind: "worker_exited", Addr: p.addr, Group: -1, Detail: fmt.Sprint(err)})
	if closed || !sp.opts.AutoRestart {
		return
	}
	time.Sleep(sp.opts.RestartDelay)
	sp.mu.Lock()
	closed = sp.closed
	sp.mu.Unlock()
	if closed {
		return
	}
	if _, rerr := sp.launch(p, p.addr); rerr != nil {
		sp.opts.Logf("dist: restart worker %d on %s failed: %v", p.index, p.addr, rerr)
		sp.event(Event{Kind: "worker_restart_failed", Addr: p.addr, Group: -1, Detail: rerr.Error()})
		return
	}
	sp.event(Event{Kind: "worker_restarted", Addr: p.addr, Group: -1})
}

func (sp *Spawner) event(e Event) {
	e.Time = time.Now()
	if sp.opts.EventSink != nil {
		sp.opts.EventSink(e)
	}
}

// Addrs returns the fleet's concrete addresses in spawn order — the
// Workers list for SuperOptions.
func (sp *Spawner) Addrs() []string {
	out := make([]string, len(sp.procs))
	for i, p := range sp.procs {
		out[i] = p.addr
	}
	return out
}

// Kill SIGKILLs worker i (the chaos harness's weapon of choice). With
// AutoRestart the process comes back on the same address.
func (sp *Spawner) Kill(i int) error {
	if i < 0 || i >= len(sp.procs) {
		return fmt.Errorf("dist: kill worker %d of %d", i, len(sp.procs))
	}
	p := sp.procs[i]
	p.mu.Lock()
	cmd := p.cmd
	p.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("dist: worker %d not running", i)
	}
	sp.event(Event{Kind: "worker_killed", Addr: p.addr, Group: -1, Detail: fmt.Sprintf("pid %d SIGKILL", cmd.Process.Pid)})
	return cmd.Process.Signal(syscall.SIGKILL)
}

// Close kills every worker process and stops restarts.
func (sp *Spawner) Close() {
	sp.mu.Lock()
	if sp.closed {
		sp.mu.Unlock()
		return
	}
	sp.closed = true
	sp.mu.Unlock()
	for _, p := range sp.procs {
		p.mu.Lock()
		if p.cmd != nil && p.cmd.Process != nil {
			p.cmd.Process.Kill()
		}
		p.mu.Unlock()
	}
	sp.wg.Wait()
}
