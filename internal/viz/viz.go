// Package viz renders terminal charts for the experiment tooling: line
// charts for convergence curves (loss vs simulated time, the Figures 11–15
// visual form) and horizontal bar charts for kernel metrics. Pure text,
// no dependencies, deterministic output for testability.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// LineChart renders one or more series into a width×height character grid
// with axis labels. Each series draws with its own glyph; overlapping
// points show the later series.
func LineChart(title string, width, height int, series ...Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}

	// Bounds over all series.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			points++
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if points == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			c := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			r := int((maxY - s.Y[i]) / (maxY - minY) * float64(height-1))
			grid[r][c] = g
		}
	}
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3g", maxY)
		case height - 1:
			label = fmt.Sprintf("%8.3g", minY)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%8s  %-10.3g%*s\n", "", minX, width-10, fmt.Sprintf("%.3g", maxX))
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", glyphs[si%len(glyphs)], s.Name))
	}
	fmt.Fprintf(&b, "          %s\n", strings.Join(legend, "   "))
	return b.String()
}

// Bar is one row of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to the maximum value.
func BarChart(title string, width int, bars []Bar) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(bars) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	maxV := 0.0
	maxLabel := 0
	for _, bar := range bars {
		if bar.Value > maxV {
			maxV = bar.Value
		}
		if len(bar.Label) > maxLabel {
			maxLabel = len(bar.Label)
		}
	}
	for _, bar := range bars {
		n := 0
		if maxV > 0 {
			n = int(bar.Value / maxV * float64(width))
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "  %-*s |%s %.4g\n", maxLabel, bar.Label, strings.Repeat("=", n), bar.Value)
	}
	return b.String()
}

// Sparkline compresses a series into a single line of block glyphs.
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	minY, maxY := ys[0], ys[0]
	for _, y := range ys[1:] {
		minY = math.Min(minY, y)
		maxY = math.Max(maxY, y)
	}
	var b strings.Builder
	for _, y := range ys {
		idx := 0
		if maxY > minY {
			idx = int((y - minY) / (maxY - minY) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
