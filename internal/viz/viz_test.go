package viz

import (
	"strings"
	"testing"
)

func TestLineChartBasics(t *testing.T) {
	out := LineChart("loss", 40, 8,
		Series{Name: "dgl", X: []float64{0, 1, 2, 3}, Y: []float64{4, 3, 2, 1}},
		Series{Name: "mega", X: []float64{0, 1, 2, 3}, Y: []float64{4, 2, 1, 0.5}},
	)
	if !strings.Contains(out, "loss") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "dgl") || !strings.Contains(out, "mega") {
		t.Error("missing legend entries")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing series glyphs")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + x-axis + legend.
	if len(lines) != 1+8+1+1 {
		t.Errorf("line count = %d, want 11", len(lines))
	}
}

func TestLineChartEmpty(t *testing.T) {
	out := LineChart("empty", 40, 8)
	if !strings.Contains(out, "(no data)") {
		t.Error("empty chart should say so")
	}
}

func TestLineChartSinglePoint(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	out := LineChart("pt", 20, 5, Series{Name: "s", X: []float64{1}, Y: []float64{2}})
	if !strings.Contains(out, "*") {
		t.Error("single point should render")
	}
}

func TestLineChartClampsTinyDimensions(t *testing.T) {
	out := LineChart("tiny", 1, 1, Series{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}})
	if len(out) == 0 {
		t.Error("tiny chart should still render")
	}
}

func TestLineChartDeterministic(t *testing.T) {
	s := Series{Name: "s", X: []float64{0, 1, 2}, Y: []float64{1, 4, 2}}
	if LineChart("d", 30, 6, s) != LineChart("d", 30, 6, s) {
		t.Error("chart output must be deterministic")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("kernels", 20, []Bar{
		{Label: "sgemm", Value: 10},
		{Label: "dgl", Value: 5},
		{Label: "zero", Value: 0},
	})
	if !strings.Contains(out, "sgemm") || !strings.Contains(out, "====") {
		t.Errorf("bar chart malformed:\n%s", out)
	}
	// sgemm's bar must be about twice dgl's.
	lines := strings.Split(out, "\n")
	count := func(l string) int { return strings.Count(l, "=") }
	var sgemm, dgl int
	for _, l := range lines {
		if strings.Contains(l, "sgemm") {
			sgemm = count(l)
		}
		if strings.Contains(l, "dgl") {
			dgl = count(l)
		}
	}
	if sgemm != 2*dgl {
		t.Errorf("bar lengths %d vs %d, want 2:1", sgemm, dgl)
	}
}

func TestBarChartEmpty(t *testing.T) {
	if out := BarChart("none", 20, nil); !strings.Contains(out, "(no data)") {
		t.Error("empty bar chart should say so")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline rune count = %d, want 4", len([]rune(s)))
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat sparkline should use the lowest block, got %q", flat)
		}
	}
}
