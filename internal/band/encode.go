package band

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary serialisation for path representations. MEGA's preprocessing is a
// one-time CPU pass whose output is reused across every training epoch and
// every restart; persisting it avoids re-traversing large graphs. The
// format is versioned little-endian with an explicit magic, so corrupt or
// foreign files fail fast.

const (
	repMagic   = uint32(0x4D454741) // "MEGA"
	repVersion = uint32(1)
)

// Encoding errors.
var (
	ErrBadMagic    = errors.New("band: not a MEGA representation file")
	ErrBadVersion  = errors.New("band: unsupported representation version")
	ErrCorruptFile = errors.New("band: corrupt representation")
)

// WriteTo serialises the representation. It implements io.WriterTo.
func (r *Rep) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	put := func(vs ...uint32) error {
		for _, v := range vs {
			if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	putI32s := func(xs []int32) error {
		if err := put(uint32(len(xs))); err != nil {
			return err
		}
		return binary.Write(cw, binary.LittleEndian, xs)
	}

	if err := put(repMagic, repVersion); err != nil {
		return cw.n, err
	}
	if err := put(uint32(len(r.Path)), uint32(r.Window), uint32(r.NumNodes),
		uint32(r.CoveredEdges), uint32(r.TotalEdges)); err != nil {
		return cw.n, err
	}
	path := make([]int32, len(r.Path))
	for i, v := range r.Path {
		path[i] = int32(v)
	}
	if err := binary.Write(cw, binary.LittleEndian, path); err != nil {
		return cw.n, err
	}
	// Masks are stored as the edge-ID arrays only; the mask is EdgeID>=0.
	for o := 0; o < r.Window; o++ {
		if err := putI32s(r.EdgeID[o]); err != nil {
			return cw.n, err
		}
	}
	if bw, ok := cw.w.(*bufio.Writer); ok {
		if err := bw.Flush(); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// ReadRep deserialises a representation written by WriteTo.
func ReadRep(r io.Reader) (*Rep, error) {
	br := bufio.NewReader(r)
	var magic, version uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptFile, err)
	}
	if magic != repMagic {
		return nil, ErrBadMagic
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptFile, err)
	}
	if version != repVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	var hdr [5]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrCorruptFile, err)
		}
	}
	pathLen, window, numNodes := int(hdr[0]), int(hdr[1]), int(hdr[2])
	// A window larger than the path is legitimate for tiny graphs (the
	// adaptive window comes from the degree, not the path length), so the
	// sanity bounds only reject sizes that would make allocation unsafe.
	const sanityCap = 1 << 28
	if pathLen > sanityCap || window > sanityCap || numNodes > sanityCap {
		return nil, fmt.Errorf("%w: implausible header %v", ErrCorruptFile, hdr)
	}
	rep := &Rep{
		Window:       window,
		NumNodes:     numNodes,
		CoveredEdges: int(hdr[3]),
		TotalEdges:   int(hdr[4]),
	}
	path := make([]int32, pathLen)
	if err := binary.Read(br, binary.LittleEndian, path); err != nil {
		return nil, fmt.Errorf("%w: path: %v", ErrCorruptFile, err)
	}
	rep.Path = make([]int32, pathLen)
	copy(rep.Path, path)
	rep.Mask = make([][]bool, window)
	rep.EdgeID = make([][]int32, window)
	for o := 0; o < window; o++ {
		var size uint32
		if err := binary.Read(br, binary.LittleEndian, &size); err != nil {
			return nil, fmt.Errorf("%w: offset %d: %v", ErrCorruptFile, o+1, err)
		}
		if int(size) != max(0, pathLen-(o+1)) {
			return nil, fmt.Errorf("%w: offset %d size %d", ErrCorruptFile, o+1, size)
		}
		eids := make([]int32, size)
		if err := binary.Read(br, binary.LittleEndian, eids); err != nil {
			return nil, fmt.Errorf("%w: offset %d data: %v", ErrCorruptFile, o+1, err)
		}
		mask := make([]bool, size)
		for i, e := range eids {
			if int(e) >= rep.TotalEdges {
				return nil, fmt.Errorf("%w: edge id %d out of %d", ErrCorruptFile, e, rep.TotalEdges)
			}
			mask[i] = e >= 0
		}
		rep.EdgeID[o] = eids
		rep.Mask[o] = mask
	}
	// Rebuild the positions index and covered-edge count.
	rep.Positions = make([][]int32, numNodes)
	for i, v := range rep.Path {
		if int(v) < 0 || int(v) >= numNodes {
			return nil, fmt.Errorf("%w: path vertex %d out of %d", ErrCorruptFile, v, numNodes)
		}
		rep.Positions[v] = append(rep.Positions[v], int32(i))
	}
	return rep, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// countingWriter tracks bytes written.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
