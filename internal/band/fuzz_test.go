package band

import (
	"bytes"
	"math/rand"
	"testing"

	"mega/internal/graph"
	"mega/internal/traverse"
)

// FuzzReadRep hammers the binary decoder with arbitrary bytes: it must
// never panic, and whatever it accepts must be internally consistent.
func FuzzReadRep(f *testing.F) {
	// Seed with a few valid encodings.
	for _, g := range []*graph.Graph{graph.Cycle(5), graph.Path(7), graph.Complete(4)} {
		rep, _, err := FromGraph(g, traverse.DefaultOptions())
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := rep.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0x41, 0x47, 0x45, 0x4D}) // magic only

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := ReadRep(bytes.NewReader(data))
		if err != nil {
			return // rejection is always fine
		}
		// Accepted representations must be structurally sound.
		if rep.Window < 0 || rep.NumNodes < 0 {
			t.Fatalf("negative dimensions: %+v", rep)
		}
		for _, v := range rep.Path {
			if int(v) < 0 || int(v) >= rep.NumNodes {
				t.Fatalf("path vertex %d out of %d", v, rep.NumNodes)
			}
		}
		for o := 0; o < rep.Window; o++ {
			if len(rep.Mask[o]) != len(rep.EdgeID[o]) {
				t.Fatal("mask/edge-id length mismatch")
			}
			for i, on := range rep.Mask[o] {
				if on != (rep.EdgeID[o][i] >= 0) {
					t.Fatal("mask inconsistent with edge ids")
				}
			}
		}
	})
}

// FuzzTraverseRoundTrip drives the traversal with fuzzer-chosen topology
// parameters: every accepted input must produce a valid full-coverage path
// whose serialisation round-trips.
func FuzzTraverseRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(12), uint8(2))
	f.Add(int64(7), uint8(3), uint8(0), uint8(1))
	f.Add(int64(42), uint8(20), uint8(40), uint8(5))

	f.Fuzz(func(t *testing.T, seed int64, nRaw, mRaw, wRaw uint8) {
		n := int(nRaw%30) + 1
		maxM := n * (n - 1) / 2
		m := 0
		if maxM > 0 {
			m = int(mRaw) % (maxM + 1)
		}
		w := int(wRaw%6) + 1
		g := graph.ErdosRenyiM(newRand(seed), n, m)
		rep, res, err := FromGraph(g, traverse.Options{Window: w, EdgeCoverage: 1})
		if err != nil {
			t.Fatalf("traversal failed on valid input: %v", err)
		}
		if res.EdgeCoverageRatio() < 1 {
			t.Fatalf("coverage %v < 1 at θ=1", res.EdgeCoverageRatio())
		}
		var buf bytes.Buffer
		if _, err := rep.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadRep(&buf)
		if err != nil {
			t.Fatalf("round trip rejected own encoding: %v", err)
		}
		if got.Len() != rep.Len() || got.Window != rep.Window {
			t.Fatal("round trip changed the representation")
		}
	})
}

// newRand is a tiny helper so fuzz bodies stay deterministic per input.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
