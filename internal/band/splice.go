package band

import (
	"fmt"

	"mega/internal/graph"
	"mega/internal/traverse"
)

// Splice builds the band representation of a repaired traversal by reusing
// the prefix of an existing Rep. res is the full new traversal over g, whose
// first prefix path entries are identical to old.Path; band entries whose
// pair (i, i+o) lies entirely inside the prefix are copied from old (with
// edge IDs translated through eidRemap), and only entries touching the
// suffix are recomputed with adjacency lookups. The result is byte-identical
// to Build(g, res, old.Window) — Splice is a cost optimisation, not an
// approximation — so the canonical EdgeRefs ordering the shard planner
// relies on is preserved by construction.
//
// eidRemap translates old COO edge indices to their indices in g (the
// order-preserving compaction map after deletions); nil means identity
// (pure insertions keep existing IDs stable). A prefix band entry whose
// remapped edge is gone (-1) indicates a caller bug and returns an error.
func Splice(old *Rep, res *traverse.Result, g *graph.Graph, prefix int, eidRemap []int32) (*Rep, error) {
	if res.Window != old.Window {
		return nil, fmt.Errorf("band: splice window mismatch: old %d, new %d", old.Window, res.Window)
	}
	window := old.Window
	if window < 1 {
		return nil, fmt.Errorf("%w: %d", ErrWindowTooSmall, window)
	}
	L := len(res.Path)
	if prefix < 0 || prefix > L || prefix > len(old.Path) {
		return nil, fmt.Errorf("band: splice prefix %d out of range (new path %d, old path %d)", prefix, L, len(old.Path))
	}
	for i := 0; i < prefix; i++ {
		if res.Path[i] != old.Path[i] {
			return nil, fmt.Errorf("band: splice prefix disagrees at position %d: old %d, new %d", i, old.Path[i], res.Path[i])
		}
	}

	rep := &Rep{
		Path:       append([]graph.NodeID(nil), res.Path...),
		Window:     window,
		NumNodes:   g.NumNodes(),
		Mask:       make([][]bool, window),
		EdgeID:     make([][]int32, window),
		Positions:  make([][]int32, g.NumNodes()),
		TotalEdges: g.NumEdges(),
	}
	for i, v := range rep.Path {
		rep.Positions[v] = append(rep.Positions[v], int32(i))
	}
	covered := make([]bool, g.NumEdges())
	for o := 1; o <= window; o++ {
		size := L - o
		if size < 0 {
			size = 0
		}
		mask := make([]bool, size)
		eids := make([]int32, size)
		// Pairs entirely inside the prefix (i+o < prefix) are unchanged:
		// both endpoints avoid the mutated vertices, so the connecting
		// edge exists in g iff it existed before.
		reuse := prefix - o
		if reuse > size {
			reuse = size
		}
		if reuse < 0 {
			reuse = 0
		}
		oldMask, oldEids := old.Mask[o-1], old.EdgeID[o-1]
		for i := 0; i < reuse; i++ {
			if !oldMask[i] {
				eids[i] = -1
				continue
			}
			e := oldEids[i]
			if eidRemap != nil {
				e = eidRemap[e]
			}
			if e < 0 {
				return nil, fmt.Errorf("band: splice prefix references removed edge (offset %d, position %d)", o, i)
			}
			mask[i] = true
			eids[i] = e
			covered[e] = true
		}
		for i := reuse; i < size; i++ {
			eids[i] = -1
			u, v := rep.Path[i], rep.Path[i+o]
			if u == v {
				continue
			}
			eid, ok := edgeBetween(g, u, v)
			if !ok {
				continue
			}
			mask[i] = true
			eids[i] = eid
			covered[eid] = true
		}
		rep.Mask[o-1] = mask
		rep.EdgeID[o-1] = eids
	}
	for _, c := range covered {
		if c {
			rep.CoveredEdges++
		}
	}
	return rep, nil
}
