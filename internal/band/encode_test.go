package band

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"mega/internal/graph"
	"mega/internal/traverse"
)

func roundTrip(t *testing.T, rep *Rep) *Rep {
	t.Helper()
	var buf bytes.Buffer
	n, err := rep.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadRep(&buf)
	if err != nil {
		t.Fatalf("ReadRep: %v", err)
	}
	return got
}

func repsEqual(t *testing.T, want, got *Rep) {
	t.Helper()
	if got.Window != want.Window || got.NumNodes != want.NumNodes ||
		got.CoveredEdges != want.CoveredEdges || got.TotalEdges != want.TotalEdges {
		t.Fatalf("header mismatch: got %+v", got)
	}
	if len(got.Path) != len(want.Path) {
		t.Fatalf("path length %d, want %d", len(got.Path), len(want.Path))
	}
	for i := range want.Path {
		if got.Path[i] != want.Path[i] {
			t.Fatalf("path[%d] = %d, want %d", i, got.Path[i], want.Path[i])
		}
	}
	for o := 0; o < want.Window; o++ {
		for i := range want.EdgeID[o] {
			if got.EdgeID[o][i] != want.EdgeID[o][i] {
				t.Fatalf("edge id [%d][%d] mismatch", o, i)
			}
			if got.Mask[o][i] != want.Mask[o][i] {
				t.Fatalf("mask [%d][%d] mismatch", o, i)
			}
		}
	}
	for v := range want.Positions {
		if len(got.Positions[v]) != len(want.Positions[v]) {
			t.Fatalf("positions[%d] length mismatch", v)
		}
		for i := range want.Positions[v] {
			if got.Positions[v][i] != want.Positions[v][i] {
				t.Fatalf("positions[%d][%d] mismatch", v, i)
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ErdosRenyiM(rng, 30, 80)
	rep, _, err := FromGraph(g, traverse.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	repsEqual(t, rep, roundTrip(t, rep))
}

func TestRoundTripEdgelessGraph(t *testing.T) {
	g := graph.MustNew(3, nil, false)
	rep, _, err := FromGraph(g, traverse.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	repsEqual(t, rep, roundTrip(t, rep))
}

func TestReadRepRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{name: "empty", data: nil},
		{name: "short", data: []byte{1, 2}},
		{name: "wrong magic", data: []byte{0, 0, 0, 0, 1, 0, 0, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadRep(bytes.NewReader(tt.data)); err == nil {
				t.Error("garbage should not parse")
			}
		})
	}
}

func TestReadRepRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	g := graph.Cycle(5)
	rep, _, err := FromGraph(g, traverse.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 0xFF // corrupt version field
	if _, err := ReadRep(bytes.NewReader(data)); err == nil {
		t.Error("wrong version should be rejected")
	}
}

func TestReadRepRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	rng := rand.New(rand.NewSource(2))
	g := graph.ErdosRenyiM(rng, 20, 50)
	rep, _, err := FromGraph(g, traverse.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{9, len(full) / 2, len(full) - 3} {
		if _, err := ReadRep(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d should be rejected", cut)
		}
	}
}

// Property: round trips are lossless for arbitrary traversals.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.ErdosRenyi(rng, n, 0.3)
		rep, _, err := FromGraph(g, traverse.DefaultOptions())
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := rep.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadRep(&buf)
		if err != nil {
			return false
		}
		if got.Window != rep.Window || len(got.Path) != len(rep.Path) {
			return false
		}
		for i := range rep.Path {
			if got.Path[i] != rep.Path[i] {
				return false
			}
		}
		return got.BandCoverage() == rep.BandCoverage()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWriteTo(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.BarabasiAlbert(rng, 1000, 3)
	rep, _, err := FromGraph(g, traverse.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := rep.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
