package band

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mega/internal/graph"
	"mega/internal/traverse"
	"mega/internal/wl"
)

func buildFor(t *testing.T, g *graph.Graph, opts traverse.Options) (*Rep, *traverse.Result) {
	t.Helper()
	rep, res, err := FromGraph(g, opts)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	return rep, res
}

func TestBuildWindowValidation(t *testing.T) {
	g := graph.Cycle(5)
	res, err := traverse.Run(g, traverse.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, res, -1); err == nil {
		t.Error("negative window should error")
	}
	rep, err := Build(g, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Window != res.Window {
		t.Errorf("window 0 should default to traversal window %d, got %d", res.Window, rep.Window)
	}
}

func TestMaskMatchesGraphEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ErdosRenyiM(rng, 20, 50)
	rep, _ := buildFor(t, g, traverse.DefaultOptions())
	for o := 1; o <= rep.Window; o++ {
		mask := rep.Mask[o-1]
		eids := rep.EdgeID[o-1]
		if len(mask) != rep.Len()-o {
			t.Fatalf("offset %d: mask len %d, want %d", o, len(mask), rep.Len()-o)
		}
		for i := range mask {
			u, v := rep.Path[i], rep.Path[i+o]
			if mask[i] != (u != v && g.HasEdge(u, v)) {
				t.Errorf("offset %d pos %d: mask %v for pair (%d,%d)", o, i, mask[i], u, v)
			}
			if mask[i] {
				e := g.EdgeAt(int(eids[i]))
				if !((e.Src == u && e.Dst == v) || (e.Src == v && e.Dst == u)) {
					t.Errorf("offset %d pos %d: edge id %d = %v does not connect (%d,%d)", o, i, eids[i], e, u, v)
				}
			} else if eids[i] != -1 {
				t.Errorf("offset %d pos %d: unmasked entry has edge id %d", o, i, eids[i])
			}
		}
	}
}

func TestFullCoverageBandCoversAllEdges(t *testing.T) {
	// With θ=1, every edge must land inside the band.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		g := graph.ErdosRenyiM(rng, 15+trial, 30+2*trial)
		rep, _ := buildFor(t, g, traverse.DefaultOptions())
		if rep.BandCoverage() != 1 {
			t.Errorf("trial %d: band coverage = %v, want 1 (missing %v)", trial, rep.BandCoverage(), rep.MissingEdges())
		}
		if len(rep.MissingEdges()) != 0 {
			t.Errorf("trial %d: missing edges %v", trial, rep.MissingEdges())
		}
	}
}

func TestPositionsInverse(t *testing.T) {
	g := graph.Complete(8)
	rep, _ := buildFor(t, g, traverse.DefaultOptions())
	total := 0
	for v, positions := range rep.Positions {
		total += len(positions)
		for _, p := range positions {
			if rep.Path[p] != graph.NodeID(v) {
				t.Errorf("Positions[%d] includes %d but Path[%d] = %d", v, p, p, rep.Path[p])
			}
		}
	}
	if total != rep.Len() {
		t.Errorf("positions cover %d entries, path has %d", total, rep.Len())
	}
}

func TestSyncGroupsOnlyDuplicates(t *testing.T) {
	// Star graph with ω=1 forces hub revisits -> at least one sync group.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 0, Dst: 4}}
	g := graph.MustNew(5, edges, false)
	rep, _ := buildFor(t, g, traverse.Options{Window: 1, EdgeCoverage: 1, Start: 0})
	groups := rep.SyncGroups()
	if len(groups) == 0 {
		t.Fatal("star with ω=1 must produce duplicates")
	}
	for _, grp := range groups {
		if len(grp) < 2 {
			t.Errorf("sync group %v has fewer than 2 positions", grp)
		}
		v := rep.Path[grp[0]]
		for _, p := range grp[1:] {
			if rep.Path[p] != v {
				t.Errorf("sync group %v mixes vertices", grp)
			}
		}
	}
}

func TestNoSyncGroupsWithoutRevisits(t *testing.T) {
	g := graph.Path(10)
	rep, res := buildFor(t, g, traverse.Options{Window: 1, EdgeCoverage: 1, Start: 0})
	if res.Revisits != 0 {
		t.Fatalf("path graph should have no revisits, got %d", res.Revisits)
	}
	if groups := rep.SyncGroups(); len(groups) != 0 {
		t.Errorf("unexpected sync groups %v", groups)
	}
}

func TestGatherIndex(t *testing.T) {
	g := graph.Cycle(6)
	rep, _ := buildFor(t, g, traverse.DefaultOptions())
	idx := rep.GatherIndex()
	if len(idx) != rep.Len() {
		t.Fatalf("gather index len %d, want %d", len(idx), rep.Len())
	}
	for i, v := range idx {
		if graph.NodeID(v) != rep.Path[i] {
			t.Errorf("GatherIndex[%d] = %d, want %d", i, v, rep.Path[i])
		}
	}
	idx[0] = 99 // must be a copy
	if rep.Path[0] == 99 {
		t.Error("GatherIndex exposed internal storage")
	}
}

func TestExpansion(t *testing.T) {
	g := graph.Path(10)
	rep, _ := buildFor(t, g, traverse.Options{Window: 1, EdgeCoverage: 1, Start: 0})
	if rep.Expansion() != 1 {
		t.Errorf("path graph expansion = %v, want 1", rep.Expansion())
	}
}

func TestInducedGraphWLSimilarity(t *testing.T) {
	// Full-coverage band: the induced graph contains every original edge,
	// so 1-hop WL similarity must be >= the original's (virtual edges may
	// add structure but nothing is lost). This is the Figure 8 "path
	// representation consistently ensures identity in 1-hop" claim when
	// no virtual edges are needed.
	g := graph.Path(12)
	rep, res := buildFor(t, g, traverse.Options{Window: 1, EdgeCoverage: 1, Start: 0})
	ind, err := rep.InducedGraph(res, false)
	if err != nil {
		t.Fatal(err)
	}
	if s := wl.GraphSimilarity(g, ind, nil, nil, 1); s != 1 {
		t.Errorf("1-hop WL similarity = %v, want 1 (no virtual edges needed)", s)
	}
	if s := wl.GraphSimilarity(g, ind, nil, nil, 3); s != 1 {
		t.Errorf("3-hop WL similarity = %v, want 1", s)
	}
}

func TestInducedGraphContainsAllCoveredEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.ErdosRenyiM(rng, 18, 40)
	rep, res := buildFor(t, g, traverse.DefaultOptions())
	ind, err := rep.InducedGraph(res, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if !ind.HasEdge(e.Src, e.Dst) {
			t.Errorf("covered edge (%d,%d) missing from induced graph", e.Src, e.Dst)
		}
	}
}

func TestEdgeDroppedBandExcludesDroppedEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.ErdosRenyiM(rng, 25, 80)
	rep, res, err := FromGraph(g, traverse.Options{EdgeCoverage: 1, DropEdges: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedEdges == 0 {
		t.Skip("no edges dropped at this seed")
	}
	if rep.TotalEdges != res.TotalEdges {
		t.Errorf("band total edges %d, traversal %d", rep.TotalEdges, res.TotalEdges)
	}
	// The band is built against the dropped graph, so full coverage of
	// the REMAINING edges is still expected.
	if rep.BandCoverage() != 1 {
		t.Errorf("band coverage of kept edges = %v, want 1", rep.BandCoverage())
	}
}

// Property: band coverage is always >= the traversal's reported coverage
// (same window), and equals 1 under θ=1 on connected simple graphs.
func TestBandCoverageProperty(t *testing.T) {
	f := func(seed int64, nRaw, wRaw uint8) bool {
		n := int(nRaw%20) + 3
		w := int(wRaw%4) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.ErdosRenyiM(rng, n, n*2)
		res, err := traverse.Run(g, traverse.Options{Window: w, EdgeCoverage: 1})
		if err != nil {
			return false
		}
		rep, err := Build(res.Graph, res, 0)
		if err != nil {
			return false
		}
		return rep.BandCoverage() >= res.EdgeCoverageRatio()-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: every masked band entry corresponds to a real edge, and every
// real edge is masked somewhere when coverage is full.
func TestMaskSoundnessProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%15) + 3
		rng := rand.New(rand.NewSource(seed))
		g := graph.ErdosRenyi(rng, n, 0.3)
		rep, res, err := FromGraph(g, traverse.DefaultOptions())
		if err != nil {
			return false
		}
		_ = res
		for o := 1; o <= rep.Window; o++ {
			for i, m := range rep.Mask[o-1] {
				if m != (rep.Path[i] != rep.Path[i+o] && g.HasEdge(rep.Path[i], rep.Path[i+o])) {
					return false
				}
			}
		}
		return rep.BandCoverage() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.BarabasiAlbert(rng, 500, 3)
	res, err := traverse.Run(g, traverse.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, res, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPositionGraph(t *testing.T) {
	g := graph.Path(6)
	rep, _ := buildFor(t, g, traverse.Options{Window: 1, EdgeCoverage: 1, Start: 0})
	pg, err := rep.PositionGraph()
	if err != nil {
		t.Fatal(err)
	}
	if pg.NumNodes() != rep.Len() {
		t.Fatalf("position graph nodes = %d, want %d", pg.NumNodes(), rep.Len())
	}
	// Path graph, no revisits: position graph is isomorphic to the input.
	if pg.NumEdges() != g.NumEdges() {
		t.Errorf("position graph edges = %d, want %d", pg.NumEdges(), g.NumEdges())
	}
	if s := wl.GraphSimilarity(g, pg, nil, nil, 3); s != 1 {
		t.Errorf("position graph WL similarity = %v, want 1 on a revisit-free path", s)
	}
}

func TestPositionGraphWithRevisits(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}}
	g := graph.MustNew(4, edges, false)
	rep, _ := buildFor(t, g, traverse.Options{Window: 1, EdgeCoverage: 1, Start: 0})
	pg, err := rep.PositionGraph()
	if err != nil {
		t.Fatal(err)
	}
	// Every masked band entry maps to exactly one position edge.
	want := 0
	for o := 1; o <= rep.Window; o++ {
		for _, on := range rep.Mask[o-1] {
			if on {
				want++
			}
		}
	}
	if pg.NumEdges() != want {
		t.Errorf("position graph edges = %d, want %d", pg.NumEdges(), want)
	}
}

func TestFirstAppearance(t *testing.T) {
	g := graph.Cycle(5)
	rep, _ := buildFor(t, g, traverse.Options{Window: 1, EdgeCoverage: 1, Start: 0})
	first := rep.FirstAppearance()
	if len(first) != 5 {
		t.Fatalf("first appearance length = %d", len(first))
	}
	for v, p := range first {
		if p < 0 {
			t.Fatalf("vertex %d missing from full-coverage path", v)
		}
		if rep.Path[p] != graph.NodeID(v) {
			t.Errorf("FirstAppearance[%d] = %d but Path[%d] = %d", v, p, p, rep.Path[p])
		}
		for _, q := range rep.Positions[v] {
			if q < p {
				t.Errorf("position %d of vertex %d precedes reported first %d", q, v, p)
			}
		}
	}
}

func TestEdgeRefsCanonicalOrder(t *testing.T) {
	g := graph.Cycle(6)
	rep, _ := buildFor(t, g, traverse.Options{Window: 2, EdgeCoverage: 1, Start: 0})
	refs := rep.EdgeRefs()
	if len(refs) != rep.TotalEdges {
		t.Fatalf("refs length = %d, want %d", len(refs), rep.TotalEdges)
	}
	// Rebuild the expected per-edge receiver lists by walking the mask in
	// the canonical order and check exact equality.
	want := make([][]int32, rep.TotalEdges)
	for o := 1; o <= rep.Window; o++ {
		for i, m := range rep.Mask[o-1] {
			if m {
				e := rep.EdgeID[o-1][i]
				want[e] = append(want[e], int32(i), int32(i+o))
			}
		}
	}
	covered := 0
	for e := range refs {
		if len(refs[e]) != len(want[e]) {
			t.Fatalf("edge %d: %d refs, want %d", e, len(refs[e]), len(want[e]))
		}
		for j := range refs[e] {
			if refs[e][j] != want[e][j] {
				t.Fatalf("edge %d ref %d = %d, want %d", e, j, refs[e][j], want[e][j])
			}
		}
		if len(refs[e]) > 0 {
			covered++
			// Receiver positions must carry the edge within the band window.
			for j := 0; j+1 < len(refs[e]); j += 2 {
				lo, hi := refs[e][j], refs[e][j+1]
				if hi <= lo || int(hi-lo) > rep.Window {
					t.Fatalf("edge %d pair (%d,%d) outside band", e, lo, hi)
				}
			}
		}
	}
	if covered != rep.CoveredEdges {
		t.Errorf("edges with refs = %d, want CoveredEdges = %d", covered, rep.CoveredEdges)
	}
}
