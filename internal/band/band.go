// Package band materialises MEGA's diagonal attention representation from a
// traversal result: the reordered adjacency matrix whose edges all fall
// within a band of half-width ω around the diagonal (Figure 7), plus the
// bookkeeping needed to run attention over it — per-offset edge masks,
// original-edge indices for edge features, and the duplicate-position map
// used to synchronise nodes that appear several times in the path.
//
// During attention, position i aggregates from positions i±1 .. i±ω; the
// per-offset layout means each offset is one shifted, fully dense,
// sequential sweep over the path — the access pattern that coalesces on a
// GPU and that the gpusim substrate rewards.
package band

import (
	"errors"
	"fmt"

	"mega/internal/graph"
	"mega/internal/traverse"
)

// Rep is a path/band representation of one graph.
type Rep struct {
	// Path is the vertex visiting order (length L, entries may repeat).
	Path []graph.NodeID
	// Window is the band half-width ω.
	Window int
	// NumNodes is the original vertex count n.
	NumNodes int

	// Mask[o-1][i] reports that positions i and i+o are connected by a
	// real original edge, for offset o in [1, ω] and i in [0, L-o).
	Mask [][]bool
	// EdgeID[o-1][i] is the original COO edge index behind Mask[o-1][i],
	// or -1 where the mask is false.
	EdgeID [][]int32

	// Positions[v] lists the path positions where original vertex v
	// appears (empty for vertices missing from a partial-coverage path).
	Positions [][]int32

	// CoveredEdges counts distinct original edges captured by the band.
	CoveredEdges int
	// TotalEdges is the graph's edge count (after any dropping).
	TotalEdges int
}

// ErrWindowTooSmall is returned when a non-positive window is requested.
var ErrWindowTooSmall = errors.New("band: window must be >= 1")

// Build materialises the band representation of g induced by a traversal
// result. The band half-width defaults to the traversal's window; a wider
// window captures more edges at higher attention cost.
func Build(g *graph.Graph, res *traverse.Result, window int) (*Rep, error) {
	if window == 0 {
		window = res.Window
	}
	if window < 1 {
		return nil, fmt.Errorf("%w: %d", ErrWindowTooSmall, window)
	}
	L := len(res.Path)
	rep := &Rep{
		Path:       append([]graph.NodeID(nil), res.Path...),
		Window:     window,
		NumNodes:   g.NumNodes(),
		Mask:       make([][]bool, window),
		EdgeID:     make([][]int32, window),
		Positions:  make([][]int32, g.NumNodes()),
		TotalEdges: g.NumEdges(),
	}
	for i, v := range rep.Path {
		rep.Positions[v] = append(rep.Positions[v], int32(i))
	}
	covered := make(map[int32]bool, g.NumEdges())
	for o := 1; o <= window; o++ {
		size := L - o
		if size < 0 {
			size = 0
		}
		mask := make([]bool, size)
		eids := make([]int32, size)
		for i := range eids {
			eids[i] = -1
		}
		for i := 0; i+o < L; i++ {
			u, v := rep.Path[i], rep.Path[i+o]
			if u == v {
				continue
			}
			eid, ok := edgeBetween(g, u, v)
			if !ok {
				continue
			}
			mask[i] = true
			eids[i] = eid
			covered[eid] = true
		}
		rep.Mask[o-1] = mask
		rep.EdgeID[o-1] = eids
	}
	rep.CoveredEdges = len(covered)
	return rep, nil
}

// edgeBetween returns the COO index of an edge connecting u and v.
func edgeBetween(g *graph.Graph, u, v graph.NodeID) (int32, bool) {
	nbrs := g.Neighbors(u)
	eids := g.NeighborEdges(u)
	for i, w := range nbrs {
		if w == v {
			return eids[i], true
		}
	}
	return -1, false
}

// Len returns the path length L.
func (r *Rep) Len() int { return len(r.Path) }

// Expansion returns L / n, the memory blow-up of the representation.
func (r *Rep) Expansion() float64 {
	if r.NumNodes == 0 {
		return 1
	}
	return float64(len(r.Path)) / float64(r.NumNodes)
}

// BandCoverage returns the fraction of original edges captured inside the
// band (1 if the graph has no edges). The traversal walks edges
// consecutively (offset 1), so BandCoverage is always at least the walked
// coverage and typically higher: non-consecutive path neighbours within ω
// positions are captured for free.
func (r *Rep) BandCoverage() float64 {
	if r.TotalEdges == 0 {
		return 1
	}
	return float64(r.CoveredEdges) / float64(r.TotalEdges)
}

// MissingEdges returns the original COO edge indices that fall outside the
// band. These are the edges diagonal attention cannot see; the Figure 8
// isomorphism experiment quantifies their structural impact.
func (r *Rep) MissingEdges() []int32 {
	present := make([]bool, r.TotalEdges)
	for _, eids := range r.EdgeID {
		for _, e := range eids {
			if e >= 0 {
				present[e] = true
			}
		}
	}
	var missing []int32
	for e, ok := range present {
		if !ok {
			missing = append(missing, int32(e))
		}
	}
	return missing
}

// InducedGraph projects the band back to an original-ID graph: one vertex
// per original vertex, one edge per *captured* original edge, optionally
// plus the virtual transitions the traversal introduced (consecutive path
// entries not connected in the original graph). With includeVirtual=false
// this is exactly what diagonal attention aggregates over — the masked
// band excludes virtual pairs; the WL comparison of Figure 8 uses that
// form. Pass includeVirtual=true to audit how much hypothetical structure
// the virtual transitions would add.
func (r *Rep) InducedGraph(res *traverse.Result, includeVirtual bool) (*graph.Graph, error) {
	seen := make(map[[2]graph.NodeID]bool)
	var edges []graph.Edge
	add := func(u, v graph.NodeID) {
		if u == v {
			return
		}
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		key := [2]graph.NodeID{a, b}
		if seen[key] {
			return
		}
		seen[key] = true
		edges = append(edges, graph.Edge{Src: a, Dst: b})
	}
	for o := 1; o <= r.Window; o++ {
		for i, m := range r.Mask[o-1] {
			if m {
				add(r.Path[i], r.Path[i+o])
			}
		}
	}
	if includeVirtual {
		for i := 1; i < len(res.Path); i++ {
			if res.Virtual[i] {
				add(res.Path[i-1], res.Path[i])
			}
		}
	}
	return graph.New(r.NumNodes, edges, false)
}

// PositionGraph materialises the band at position granularity: one vertex
// per path position, one edge per masked band pair. Aggregation over this
// graph is what each attention layer literally computes before duplicate
// synchronisation; comparing its multi-hop WL labels against the original
// graph quantifies the structural cost of node revisits (Figure 8's
// hop-count fluctuation).
func (r *Rep) PositionGraph() (*graph.Graph, error) {
	var edges []graph.Edge
	for o := 1; o <= r.Window; o++ {
		for i, m := range r.Mask[o-1] {
			if m {
				edges = append(edges, graph.Edge{Src: graph.NodeID(i), Dst: graph.NodeID(i + o)})
			}
		}
	}
	return graph.New(len(r.Path), edges, false)
}

// FirstAppearance returns, for each original vertex, its first path
// position (-1 for vertices missing from a partial-coverage path). Used to
// project position-level WL labels back to nodes.
func (r *Rep) FirstAppearance() []int32 {
	out := make([]int32, r.NumNodes)
	for v := range out {
		if len(r.Positions[v]) > 0 {
			out[v] = r.Positions[v][0]
		} else {
			out[v] = -1
		}
	}
	return out
}

// SyncGroups returns the duplicate groups: for every original vertex with
// more than one path appearance, its position list. The attention engines
// average embeddings across each group after every layer so duplicates stay
// consistent; the cost is charged to the profiler as a sync kernel.
func (r *Rep) SyncGroups() [][]int32 {
	var groups [][]int32
	for _, pos := range r.Positions {
		if len(pos) > 1 {
			groups = append(groups, pos)
		}
	}
	return groups
}

// EdgeRefs returns, for every original edge, the receiver positions of the
// directed attention pairs that read the edge's feature, in the canonical
// pair-enumeration order shared by the attention engines and the shard
// planner: offset o ascending, band index i ascending, each masked slot
// expanding to the low-position receiver then the high-position receiver.
// The first entry of a list is therefore the edge's owning position under
// the shard protocol (the chunk of the first referencing pair owns the
// edge's fold); edges outside the band get empty lists.
func (r *Rep) EdgeRefs() [][]int32 {
	refs := make([][]int32, r.TotalEdges)
	for o := 1; o <= r.Window; o++ {
		mask, eids := r.Mask[o-1], r.EdgeID[o-1]
		for i, m := range mask {
			if !m {
				continue
			}
			e := eids[i]
			refs[e] = append(refs[e], int32(i), int32(i+o))
		}
	}
	return refs
}

// GatherIndex returns, for embedding initialisation, the original vertex ID
// behind every path position (a copy safe to mutate).
func (r *Rep) GatherIndex() []int32 {
	out := make([]int32, len(r.Path))
	for i, v := range r.Path {
		out[i] = int32(v)
	}
	return out
}

// FromGraph is the one-call convenience used by the public API and the
// examples: run the traversal with the given options and build the band
// representation at the traversal's window.
func FromGraph(g *graph.Graph, opts traverse.Options) (*Rep, *traverse.Result, error) {
	res, err := traverse.Run(g, opts)
	if err != nil {
		return nil, nil, err
	}
	rep, err := Build(res.Graph, res, 0)
	if err != nil {
		return nil, nil, err
	}
	return rep, res, nil
}
