package graph

import (
	"fmt"
	"math/rand"
)

// Generators for the synthetic workloads used across the evaluation. All
// generators are deterministic given the *rand.Rand they receive.

// ErdosRenyi samples an undirected G(n, p) graph: each of the n(n-1)/2
// vertex pairs is an edge independently with probability p.
func ErdosRenyi(rng *rand.Rand, n int, p float64) *Graph {
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, Edge{Src: NodeID(u), Dst: NodeID(v)})
			}
		}
	}
	return MustNew(n, edges, false)
}

// ErdosRenyiM samples an undirected graph with exactly m distinct edges
// chosen uniformly among vertex pairs (no self loops).
func ErdosRenyiM(rng *rand.Rand, n, m int) *Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	seen := make(map[[2]NodeID]bool, m)
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]NodeID{u, v}
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, Edge{Src: u, Dst: v})
	}
	return MustNew(n, edges, false)
}

// BarabasiAlbert grows a preferential-attachment graph: starting from a
// clique of m0 = m vertices, each new vertex attaches to m existing
// vertices with probability proportional to their degree. Produces the
// skewed (power-law) degree distributions §III-B calls out as the hard case
// for workload balance.
func BarabasiAlbert(rng *rand.Rand, n, m int) *Graph {
	if m < 1 {
		m = 1
	}
	if n <= m {
		return Complete(n)
	}
	var edges []Edge
	// Repeated-endpoint list: sampling uniformly from it is sampling
	// proportionally to degree.
	var endpoints []NodeID
	for u := 0; u < m; u++ {
		for v := u + 1; v < m; v++ {
			edges = append(edges, Edge{Src: NodeID(u), Dst: NodeID(v)})
			endpoints = append(endpoints, NodeID(u), NodeID(v))
		}
	}
	for v := m; v < n; v++ {
		chosen := make(map[NodeID]bool, m)
		for len(chosen) < m {
			var t NodeID
			if len(endpoints) == 0 {
				t = NodeID(rng.Intn(v))
			} else {
				t = endpoints[rng.Intn(len(endpoints))]
			}
			if int(t) == v || chosen[t] {
				continue
			}
			chosen[t] = true
		}
		for t := range chosen {
			edges = append(edges, Edge{Src: NodeID(v), Dst: t})
			endpoints = append(endpoints, NodeID(v), t)
		}
	}
	return MustNew(n, edges, false)
}

// Complete returns the fully connected undirected graph on n vertices, the
// "hypothetical fully connected graph" global attention operates on (§I).
func Complete(n int) *Graph {
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{Src: NodeID(u), Dst: NodeID(v)})
		}
	}
	return MustNew(n, edges, false)
}

// Cycle returns the n-cycle.
func Cycle(n int) *Graph {
	edges := make([]Edge, 0, n)
	for v := 0; v < n; v++ {
		edges = append(edges, Edge{Src: NodeID(v), Dst: NodeID((v + 1) % n)})
	}
	if n == 2 {
		edges = edges[:1]
	}
	return MustNew(n, edges, false)
}

// Path returns the n-vertex path graph.
func Path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, Edge{Src: NodeID(v), Dst: NodeID(v + 1)})
	}
	return MustNew(n, edges, false)
}

// Circulant returns the circulant graph C_n(skips): vertex v connects to
// v±s (mod n) for every s in skips. CSL(n, R) is Circulant(n, []int{1, R}).
func Circulant(n int, skips []int) (*Graph, error) {
	seen := make(map[[2]NodeID]bool)
	var edges []Edge
	for _, s := range skips {
		if s <= 0 || s >= n {
			return nil, fmt.Errorf("graph: circulant skip %d out of range for n=%d", s, n)
		}
		for v := 0; v < n; v++ {
			u := NodeID(v)
			w := NodeID((v + s) % n)
			a, b := u, w
			if a > b {
				a, b = b, a
			}
			key := [2]NodeID{a, b}
			if a == b || seen[key] {
				continue
			}
			seen[key] = true
			edges = append(edges, Edge{Src: a, Dst: b})
		}
	}
	return New(n, edges, false)
}

// RandomTree returns a uniform random labelled tree on n vertices via a
// random Prüfer-like attachment (each vertex v>0 attaches to a uniformly
// random earlier vertex). Trees are the backbone of the molecular-graph
// generators.
func RandomTree(rng *rand.Rand, n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		edges = append(edges, Edge{Src: NodeID(u), Dst: NodeID(v)})
	}
	return MustNew(n, edges, false)
}

// RandomRegular attempts to sample an r-regular graph on n vertices using
// the pairing model with retries; it falls back to a near-regular graph if
// a perfect matching is not found quickly. n*r must be even for exact
// regularity.
func RandomRegular(rng *rand.Rand, n, r int) *Graph {
	for attempt := 0; attempt < 20; attempt++ {
		stubs := make([]NodeID, 0, n*r)
		for v := 0; v < n; v++ {
			for k := 0; k < r; k++ {
				stubs = append(stubs, NodeID(v))
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		seen := make(map[[2]NodeID]bool)
		edges := make([]Edge, 0, len(stubs)/2)
		ok := true
		for i := 0; i+1 < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			key := [2]NodeID{a, b}
			if seen[key] {
				ok = false
				break
			}
			seen[key] = true
			edges = append(edges, Edge{Src: a, Dst: b})
		}
		if ok {
			return MustNew(n, edges, false)
		}
	}
	// Fallback: ring + extra chords, near-regular.
	g := Cycle(n)
	return g
}

// PermuteNodes returns a copy of g with node IDs relabelled by perm
// (perm[old] = new). Used to generate isomorphic dataset instances (e.g.
// CSL class members differing only by labelling).
func PermuteNodes(g *Graph, perm []NodeID) (*Graph, error) {
	if len(perm) != g.NumNodes() {
		return nil, fmt.Errorf("graph: permutation length %d != n %d", len(perm), g.NumNodes())
	}
	edges := make([]Edge, g.NumEdges())
	for i, e := range g.edges {
		edges[i] = Edge{Src: perm[e.Src], Dst: perm[e.Dst]}
	}
	return New(g.NumNodes(), edges, g.Directed())
}

// RandomPermutation returns a uniformly random permutation of [0, n).
func RandomPermutation(rng *rand.Rand, n int) []NodeID {
	perm := make([]NodeID, n)
	for i := range perm {
		perm[i] = NodeID(i)
	}
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}
