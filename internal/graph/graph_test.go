package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// paperGraph is the 7-node demonstration graph of Figure 3a. The exact
// topology in the figure is illustrative; this fixture gives tests a small
// irregular graph with a hub.
func paperGraph(t *testing.T) *Graph {
	t.Helper()
	edges := []Edge{
		{0, 1}, {0, 5}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {3, 6}, {5, 6}, {4, 6},
	}
	g, err := New(7, edges, false)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		n       int
		edges   []Edge
		wantErr bool
	}{
		{name: "empty", n: 0, edges: nil, wantErr: false},
		{name: "negative nodes", n: -1, edges: nil, wantErr: true},
		{name: "edge out of range high", n: 2, edges: []Edge{{0, 2}}, wantErr: true},
		{name: "edge out of range negative", n: 2, edges: []Edge{{-1, 0}}, wantErr: true},
		{name: "valid", n: 3, edges: []Edge{{0, 1}, {1, 2}}, wantErr: false},
		{name: "self loop allowed", n: 2, edges: []Edge{{1, 1}}, wantErr: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.n, tt.edges, false)
			if (err != nil) != tt.wantErr {
				t.Errorf("New(%d, %v) error = %v, wantErr %v", tt.n, tt.edges, err, tt.wantErr)
			}
		})
	}
}

func TestNeighborsSortedAndComplete(t *testing.T) {
	g := paperGraph(t)
	want := map[NodeID][]NodeID{
		0: {1, 5},
		1: {0, 2, 3},
		2: {1, 3},
		3: {1, 2, 4, 6},
		4: {3, 6},
		5: {0, 6},
		6: {3, 4, 5},
	}
	for v, wantRow := range want {
		got := g.Neighbors(v)
		if len(got) != len(wantRow) {
			t.Fatalf("Neighbors(%d) = %v, want %v", v, got, wantRow)
		}
		for i := range got {
			if got[i] != wantRow[i] {
				t.Errorf("Neighbors(%d) = %v, want %v", v, got, wantRow)
				break
			}
		}
	}
}

func TestDegreeAndMeanDegree(t *testing.T) {
	g := paperGraph(t)
	wantDeg := []int{2, 3, 2, 4, 2, 2, 3}
	for v, w := range wantDeg {
		if got := g.Degree(NodeID(v)); got != w {
			t.Errorf("Degree(%d) = %d, want %d", v, got, w)
		}
	}
	wantMean := 18.0 / 7.0
	if got := g.MeanDegree(); got != wantMean {
		t.Errorf("MeanDegree() = %v, want %v", got, wantMean)
	}
}

func TestDegreesMatchesDegree(t *testing.T) {
	g := paperGraph(t)
	degs := g.Degrees()
	for v := 0; v < g.NumNodes(); v++ {
		if degs[v] != g.Degree(NodeID(v)) {
			t.Errorf("Degrees()[%d] = %d, Degree = %d", v, degs[v], g.Degree(NodeID(v)))
		}
	}
}

func TestHasEdge(t *testing.T) {
	g := paperGraph(t)
	if !g.HasEdge(3, 6) || !g.HasEdge(6, 3) {
		t.Error("HasEdge(3,6) should hold in both directions")
	}
	if g.HasEdge(0, 6) {
		t.Error("HasEdge(0,6) should be false")
	}
}

func TestDirectedCSROneDirection(t *testing.T) {
	g := MustNew(3, []Edge{{0, 1}, {1, 2}}, true)
	if got := g.Degree(0); got != 1 {
		t.Errorf("directed out-degree(0) = %d, want 1", got)
	}
	if got := len(g.Neighbors(1)); got != 1 {
		t.Errorf("directed Neighbors(1) len = %d, want 1", got)
	}
	if len(g.Neighbors(2)) != 0 {
		t.Errorf("directed Neighbors(2) = %v, want empty", g.Neighbors(2))
	}
}

func TestNeighborEdgesAlignment(t *testing.T) {
	g := paperGraph(t)
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		nbrs := g.Neighbors(v)
		eids := g.NeighborEdges(v)
		if len(nbrs) != len(eids) {
			t.Fatalf("node %d: %d neighbors but %d edge ids", v, len(nbrs), len(eids))
		}
		for i, u := range nbrs {
			e := g.EdgeAt(int(eids[i]))
			if !((e.Src == v && e.Dst == u) || (e.Src == u && e.Dst == v)) {
				t.Errorf("node %d nbr %d: edge id %d is %v", v, u, eids[i], e)
			}
		}
	}
}

func TestSparsity(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want float64
	}{
		{name: "complete", g: Complete(10), want: 1.0},
		{name: "empty", g: MustNew(10, nil, false), want: 0.0},
		{name: "single node", g: MustNew(1, nil, false), want: 0.0},
		{name: "cycle4", g: Cycle(4), want: 8.0 / 12.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Sparsity(); got != tt.want {
				t.Errorf("Sparsity() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSparsityIgnoresSelfLoops(t *testing.T) {
	g := MustNew(3, []Edge{{0, 0}, {0, 1}}, false)
	want := 2.0 / 6.0
	if got := g.Sparsity(); got != want {
		t.Errorf("Sparsity() = %v, want %v", got, want)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := MustNew(6, []Edge{{0, 1}, {1, 2}, {3, 4}}, false)
	labels, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("nodes 0,1,2 should share a component: %v", labels)
	}
	if labels[3] != labels[4] {
		t.Errorf("nodes 3,4 should share a component: %v", labels)
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Errorf("node 5 should be isolated: %v", labels)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := paperGraph(t)
	c := g.Clone()
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatal("clone size mismatch")
	}
	// Mutating the clone's edge list must not affect the original.
	c.edges[0] = Edge{6, 6}
	if g.edges[0] == (Edge{6, 6}) {
		t.Error("clone shares edge storage with original")
	}
}

func TestEdgesReturnsCopy(t *testing.T) {
	g := paperGraph(t)
	es := g.Edges()
	es[0] = Edge{6, 6}
	if g.EdgeAt(0) == (Edge{6, 6}) {
		t.Error("Edges() exposed internal storage")
	}
}

func TestBatchBlockDiagonal(t *testing.T) {
	g1 := Cycle(3)
	g2 := Path(4)
	b, err := NewBatch([]*Graph{g1, g2})
	if err != nil {
		t.Fatalf("NewBatch: %v", err)
	}
	if b.Merged.NumNodes() != 7 {
		t.Fatalf("merged nodes = %d, want 7", b.Merged.NumNodes())
	}
	if b.Merged.NumEdges() != g1.NumEdges()+g2.NumEdges() {
		t.Fatalf("merged edges = %d", b.Merged.NumEdges())
	}
	// No cross-graph edges.
	for _, e := range b.Merged.Edges() {
		if (e.Src < 3) != (e.Dst < 3) {
			t.Errorf("cross-graph edge %v", e)
		}
	}
	if lo, hi := b.MemberNodes(1); lo != 3 || hi != 7 {
		t.Errorf("MemberNodes(1) = [%d,%d), want [3,7)", lo, hi)
	}
	for v := 0; v < 3; v++ {
		if b.GraphOf[v] != 0 {
			t.Errorf("GraphOf[%d] = %d, want 0", v, b.GraphOf[v])
		}
	}
	for v := 3; v < 7; v++ {
		if b.GraphOf[v] != 1 {
			t.Errorf("GraphOf[%d] = %d, want 1", v, b.GraphOf[v])
		}
	}
	if b.NumGraphs() != 2 {
		t.Errorf("NumGraphs = %d, want 2", b.NumGraphs())
	}
}

func TestGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	t.Run("erdos renyi m exact edges", func(t *testing.T) {
		g := ErdosRenyiM(rng, 20, 30)
		if g.NumEdges() != 30 {
			t.Errorf("edges = %d, want 30", g.NumEdges())
		}
	})
	t.Run("erdos renyi m caps at complete", func(t *testing.T) {
		g := ErdosRenyiM(rng, 5, 100)
		if g.NumEdges() != 10 {
			t.Errorf("edges = %d, want 10", g.NumEdges())
		}
	})
	t.Run("complete degree", func(t *testing.T) {
		g := Complete(6)
		for v := 0; v < 6; v++ {
			if g.Degree(NodeID(v)) != 5 {
				t.Errorf("Degree(%d) = %d, want 5", v, g.Degree(NodeID(v)))
			}
		}
	})
	t.Run("cycle degree 2", func(t *testing.T) {
		g := Cycle(9)
		for v := 0; v < 9; v++ {
			if g.Degree(NodeID(v)) != 2 {
				t.Errorf("Degree(%d) = %d, want 2", v, g.Degree(NodeID(v)))
			}
		}
	})
	t.Run("random tree is connected acyclic", func(t *testing.T) {
		g := RandomTree(rng, 25)
		if g.NumEdges() != 24 {
			t.Fatalf("tree edges = %d, want 24", g.NumEdges())
		}
		if _, count := g.ConnectedComponents(); count != 1 {
			t.Errorf("tree components = %d, want 1", count)
		}
	})
	t.Run("barabasi albert connected", func(t *testing.T) {
		g := BarabasiAlbert(rng, 50, 2)
		if _, count := g.ConnectedComponents(); count != 1 {
			t.Errorf("BA components = %d, want 1", count)
		}
		if g.NumNodes() != 50 {
			t.Errorf("BA nodes = %d", g.NumNodes())
		}
	})
	t.Run("circulant CSL shape", func(t *testing.T) {
		g, err := Circulant(41, []int{1, 9})
		if err != nil {
			t.Fatalf("Circulant: %v", err)
		}
		for v := 0; v < 41; v++ {
			if g.Degree(NodeID(v)) != 4 {
				t.Errorf("circulant Degree(%d) = %d, want 4", v, g.Degree(NodeID(v)))
			}
		}
		if g.NumEdges() != 82 {
			t.Errorf("circulant edges = %d, want 82", g.NumEdges())
		}
	})
	t.Run("circulant rejects bad skip", func(t *testing.T) {
		if _, err := Circulant(10, []int{0}); err == nil {
			t.Error("skip 0 should error")
		}
		if _, err := Circulant(10, []int{10}); err == nil {
			t.Error("skip n should error")
		}
	})
	t.Run("random regular degree", func(t *testing.T) {
		g := RandomRegular(rng, 20, 3)
		degs := g.Degrees()
		sum := 0
		for _, d := range degs {
			sum += d
		}
		if sum != g.NumEdges()*2 {
			t.Errorf("degree sum %d != 2m %d", sum, 2*g.NumEdges())
		}
	})
}

func TestPermuteNodesPreservesDegreeMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := ErdosRenyiM(rng, 30, 60)
	perm := RandomPermutation(rng, 30)
	pg, err := PermuteNodes(g, perm)
	if err != nil {
		t.Fatalf("PermuteNodes: %v", err)
	}
	for v := 0; v < 30; v++ {
		if g.Degree(NodeID(v)) != pg.Degree(perm[v]) {
			t.Errorf("degree of %d changed under permutation", v)
		}
	}
}

func TestPermuteNodesLengthMismatch(t *testing.T) {
	g := Cycle(4)
	if _, err := PermuteNodes(g, []NodeID{0, 1}); err == nil {
		t.Error("want error on wrong permutation length")
	}
}

// Property: for any undirected graph, the sum of degrees equals twice the
// number of non-self-loop edges plus the self-loop contribution.
func TestDegreeSumProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw%40) + 2
		m := int(mRaw) % (n * (n - 1) / 2)
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyiM(rng, n, m)
		sum := 0
		for _, d := range g.Degrees() {
			sum += d
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: CSR round trip — every COO edge appears in both adjacency rows.
func TestCSRContainsAllEdgesProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(rng, n, 0.3)
		for _, e := range g.Edges() {
			if !g.HasEdge(e.Src, e.Dst) || !g.HasEdge(e.Dst, e.Src) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCSRBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := ErdosRenyiM(rng, 2000, 12000)
	edges := base.Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := MustNew(2000, edges, false)
		g.buildCSR()
	}
}

func BenchmarkBatchMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	members := make([]*Graph, 64)
	for i := range members {
		members[i] = ErdosRenyiM(rng, 25, 50)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewBatch(members); err != nil {
			b.Fatal(err)
		}
	}
}
