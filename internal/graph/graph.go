// Package graph provides the graph substrate used throughout MEGA: a
// coordinate-format (COO) edge list with an optional compressed sparse row
// (CSR) index, degree statistics, block-diagonal batching for GNN training,
// and synthetic generators for the evaluation workloads.
//
// Graphs are stored undirected by default: an undirected edge {u, v} is kept
// once in the COO list and expanded to both directions in the CSR index,
// matching the paper's convention ("we assume the graph to be undirected ...
// with minor adjustments needed for directed graphs", §III-B).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a vertex within a single graph. IDs are dense in
// [0, NumNodes).
type NodeID = int32

// Edge is a single (source, destination) vertex pair in coordinate format.
type Edge struct {
	Src NodeID
	Dst NodeID
}

// Graph is an in-memory graph in coordinate format with an optional CSR
// index built on demand. The zero value is an empty graph.
//
// Node and edge feature matrices are deliberately *not* stored here; they
// live in the tensor layer, indexed by NodeID, so that the graph substrate
// stays a pure topology structure.
type Graph struct {
	numNodes int
	edges    []Edge // undirected edges stored once, or directed edges
	directed bool

	// CSR index, built lazily by buildCSR.
	csrBuilt bool
	rowPtr   []int32  // len numNodes+1
	colIdx   []NodeID // len 2*len(edges) for undirected graphs
	// edgePos[i] is the index into edges of the undirected edge that
	// produced colIdx[i]; used to carry edge features through aggregation.
	edgePos []int32
}

// Common validation errors returned by the constructors.
var (
	ErrNegativeNodes  = errors.New("graph: number of nodes must be non-negative")
	ErrEdgeOutOfRange = errors.New("graph: edge endpoint out of range")
)

// New constructs a graph with numNodes vertices and the given edges.
// Undirected edges must be listed once; duplicate and self-loop edges are
// permitted (some generators use self loops) but not deduplicated.
func New(numNodes int, edges []Edge, directed bool) (*Graph, error) {
	if numNodes < 0 {
		return nil, ErrNegativeNodes
	}
	for _, e := range edges {
		if e.Src < 0 || int(e.Src) >= numNodes || e.Dst < 0 || int(e.Dst) >= numNodes {
			return nil, fmt.Errorf("%w: (%d,%d) with n=%d", ErrEdgeOutOfRange, e.Src, e.Dst, numNodes)
		}
	}
	g := &Graph{numNodes: numNodes, directed: directed}
	g.edges = make([]Edge, len(edges))
	copy(g.edges, edges)
	return g, nil
}

// MustNew is New for statically known-good inputs (tests, generators).
// It panics on invalid input.
func MustNew(numNodes int, edges []Edge, directed bool) *Graph {
	g, err := New(numNodes, edges, directed)
	if err != nil {
		panic(err)
	}
	return g
}

// NumNodes returns the number of vertices.
func (g *Graph) NumNodes() int { return g.numNodes }

// NumEdges returns the number of stored edges (undirected edges count once).
func (g *Graph) NumEdges() int { return len(g.edges) }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// Edges returns a copy of the COO edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// EdgeAt returns the i-th stored edge.
func (g *Graph) EdgeAt(i int) Edge { return g.edges[i] }

// Sparsity returns |E_directed| / (n*(n-1)), the ratio of present directed
// edges to the fully connected count, as used in Table II. Self loops are
// excluded from the numerator. Returns 0 for graphs with fewer than 2 nodes.
func (g *Graph) Sparsity() float64 {
	n := g.numNodes
	if n < 2 {
		return 0
	}
	m := 0
	for _, e := range g.edges {
		if e.Src != e.Dst {
			m++
		}
	}
	if !g.directed {
		m *= 2
	}
	return float64(m) / float64(n*(n-1))
}

// buildCSR constructs the CSR adjacency index. For undirected graphs each
// stored edge contributes both directions.
func (g *Graph) buildCSR() {
	if g.csrBuilt {
		return
	}
	n := g.numNodes
	deg := make([]int32, n)
	for _, e := range g.edges {
		deg[e.Src]++
		if !g.directed && e.Src != e.Dst {
			deg[e.Dst]++
		}
	}
	g.rowPtr = make([]int32, n+1)
	for i := 0; i < n; i++ {
		g.rowPtr[i+1] = g.rowPtr[i] + deg[i]
	}
	total := g.rowPtr[n]
	g.colIdx = make([]NodeID, total)
	g.edgePos = make([]int32, total)
	cursor := make([]int32, n)
	copy(cursor, g.rowPtr[:n])
	for i, e := range g.edges {
		g.colIdx[cursor[e.Src]] = e.Dst
		g.edgePos[cursor[e.Src]] = int32(i)
		cursor[e.Src]++
		if !g.directed && e.Src != e.Dst {
			g.colIdx[cursor[e.Dst]] = e.Src
			g.edgePos[cursor[e.Dst]] = int32(i)
			cursor[e.Dst]++
		}
	}
	// Sort each row for deterministic iteration and binary-search lookups.
	for v := 0; v < n; v++ {
		lo, hi := g.rowPtr[v], g.rowPtr[v+1]
		row := g.colIdx[lo:hi]
		pos := g.edgePos[lo:hi]
		sort.Sort(&rowSorter{row: row, pos: pos})
	}
	g.csrBuilt = true
}

type rowSorter struct {
	row []NodeID
	pos []int32
}

func (s *rowSorter) Len() int           { return len(s.row) }
func (s *rowSorter) Less(i, j int) bool { return s.row[i] < s.row[j] }
func (s *rowSorter) Swap(i, j int) {
	s.row[i], s.row[j] = s.row[j], s.row[i]
	s.pos[i], s.pos[j] = s.pos[j], s.pos[i]
}

// Neighbors returns the adjacency row of v (sorted, possibly with
// duplicates if parallel edges exist). The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	g.buildCSR()
	return g.colIdx[g.rowPtr[v]:g.rowPtr[v+1]]
}

// NeighborEdges returns, aligned with Neighbors(v), the index into the COO
// edge list of the edge connecting v to each neighbor. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) NeighborEdges(v NodeID) []int32 {
	g.buildCSR()
	return g.edgePos[g.rowPtr[v]:g.rowPtr[v+1]]
}

// Degree returns the degree of v (out-degree for directed graphs).
func (g *Graph) Degree(v NodeID) int {
	g.buildCSR()
	return int(g.rowPtr[v+1] - g.rowPtr[v])
}

// Degrees returns the degree of every vertex.
func (g *Graph) Degrees() []int {
	g.buildCSR()
	out := make([]int, g.numNodes)
	for v := 0; v < g.numNodes; v++ {
		out[v] = int(g.rowPtr[v+1] - g.rowPtr[v])
	}
	return out
}

// MeanDegree returns the average vertex degree.
func (g *Graph) MeanDegree() float64 {
	if g.numNodes == 0 {
		return 0
	}
	g.buildCSR()
	return float64(g.rowPtr[g.numNodes]) / float64(g.numNodes)
}

// HasEdge reports whether v has u in its adjacency row.
func (g *Graph) HasEdge(v, u NodeID) bool {
	row := g.Neighbors(v)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= u })
	return i < len(row) && row[i] == u
}

// ConnectedComponents returns a component label per vertex and the number of
// components, treating edges as undirected.
func (g *Graph) ConnectedComponents() (labels []int, count int) {
	labels = make([]int, g.numNodes)
	for i := range labels {
		labels[i] = -1
	}
	var stack []NodeID
	for start := 0; start < g.numNodes; start++ {
		if labels[start] != -1 {
			continue
		}
		labels[start] = count
		stack = append(stack[:0], NodeID(start))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.undirectedNeighbors(v) {
				if labels[u] == -1 {
					labels[u] = count
					stack = append(stack, u)
				}
			}
		}
		count++
	}
	return labels, count
}

// undirectedNeighbors returns neighbors treating the graph as undirected;
// for directed graphs this is an O(m) scan fallback used only by component
// analysis.
func (g *Graph) undirectedNeighbors(v NodeID) []NodeID {
	if !g.directed {
		return g.Neighbors(v)
	}
	var out []NodeID
	for _, e := range g.edges {
		if e.Src == v {
			out = append(out, e.Dst)
		}
		if e.Dst == v {
			out = append(out, e.Src)
		}
	}
	return out
}

// Clone returns a deep copy of the graph (without the CSR index, which is
// rebuilt on demand).
func (g *Graph) Clone() *Graph {
	out := &Graph{numNodes: g.numNodes, directed: g.directed}
	out.edges = make([]Edge, len(g.edges))
	copy(out.edges, g.edges)
	return out
}
