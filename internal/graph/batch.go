package graph

// Batch merges several graphs into one block-diagonal graph, the standard
// GNN batching scheme: node IDs of graph i are offset by the total node
// count of graphs 0..i-1, so the merged adjacency matrix is block diagonal
// and a single kernel launch covers the whole batch.
type Batch struct {
	// Merged is the block-diagonal union graph.
	Merged *Graph
	// NodeOffset[i] is the first merged NodeID of member graph i;
	// NodeOffset[len] equals Merged.NumNodes().
	NodeOffset []int32
	// EdgeOffset[i] is the first merged COO edge index of member graph i.
	EdgeOffset []int32
	// GraphOf[v] is the member-graph index owning merged node v.
	GraphOf []int32
}

// NewBatch builds a block-diagonal batch from the given member graphs.
// All members must share the same directedness.
func NewBatch(members []*Graph) (*Batch, error) {
	totalN, totalM := 0, 0
	directed := false
	for i, g := range members {
		if i == 0 {
			directed = g.Directed()
		}
		totalN += g.NumNodes()
		totalM += g.NumEdges()
	}
	edges := make([]Edge, 0, totalM)
	nodeOffset := make([]int32, len(members)+1)
	edgeOffset := make([]int32, len(members)+1)
	graphOf := make([]int32, 0, totalN)
	off := int32(0)
	for i, g := range members {
		nodeOffset[i] = off
		edgeOffset[i] = int32(len(edges))
		for _, e := range g.edges {
			edges = append(edges, Edge{Src: e.Src + off, Dst: e.Dst + off})
		}
		for v := 0; v < g.NumNodes(); v++ {
			graphOf = append(graphOf, int32(i))
		}
		off += int32(g.NumNodes())
	}
	nodeOffset[len(members)] = off
	edgeOffset[len(members)] = int32(len(edges))
	merged, err := New(totalN, edges, directed)
	if err != nil {
		return nil, err
	}
	return &Batch{
		Merged:     merged,
		NodeOffset: nodeOffset,
		EdgeOffset: edgeOffset,
		GraphOf:    graphOf,
	}, nil
}

// NumGraphs returns the number of member graphs.
func (b *Batch) NumGraphs() int { return len(b.NodeOffset) - 1 }

// MemberNodes returns the merged node-ID range [lo, hi) of member i.
func (b *Batch) MemberNodes(i int) (lo, hi int32) {
	return b.NodeOffset[i], b.NodeOffset[i+1]
}
