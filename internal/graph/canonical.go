package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// canonicalVersion is mixed into every canonical digest so the hash space
// can be invalidated wholesale if the refinement ever changes.
const canonicalVersion = "mega/graph.canon.v1"

// CanonicalHash returns a permutation-invariant digest of g's topology:
// relabelling the nodes never changes it, unlike Fingerprint, which hashes
// the stored byte representation (and is the right key for the
// preprocessing cache, whose traversal is label-sensitive).
//
// The digest is built by Weisfeiler-Leman colour refinement: every node
// starts from its degree, then repeatedly absorbs the sorted multiset of
// its neighbours' colours until the colour partition stops refining. The
// final digest covers the node count, directedness, edge count, and the
// sorted multiset of stable colours, plus the connected-component count
// (which separates classic WL-1 ties like one 6-cycle vs. two triangles)
// — all isomorphism invariants. The combination is still not a complete
// isomorphism test (WL-equivalent connected non-isomorphic graphs, such
// as same-size circulants from the CSL dataset, can collide), but
// isomorphic graphs always hash equal, and edits that change the node
// count, edge count, component count, or any WL signature always hash
// differently.
//
// For directed graphs refinement uses out-neighbourhoods only.
func (g *Graph) CanonicalHash() Fingerprint {
	n := g.numNodes
	colors := make([]uint64, n)
	for v := 0; v < n; v++ {
		colors[v] = mix64(0x9e3779b97f4a7c15, uint64(g.Degree(NodeID(v))))
	}
	next := make([]uint64, n)
	distinct := countDistinct(colors)
	for round := 0; round < n; round++ {
		for v := 0; v < n; v++ {
			nb := g.Neighbors(NodeID(v))
			sig := make([]uint64, len(nb))
			for i, u := range nb {
				sig[i] = colors[u]
			}
			// Sorting makes the neighbour multiset order-free, which is
			// what buys permutation invariance.
			sort.Slice(sig, func(i, j int) bool { return sig[i] < sig[j] })
			h := mix64(0x2545f4914f6cdd1d, colors[v])
			for _, s := range sig {
				h = mix64(h, s)
			}
			next[v] = h
		}
		colors, next = next, colors
		// The distinct-colour count is itself an isomorphism invariant, so
		// stopping on it keeps the round count permutation-independent.
		if d := countDistinct(colors); d == distinct {
			break
		} else {
			distinct = d
		}
	}

	sorted := append([]uint64(nil), colors...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	h := sha256.New()
	h.Write([]byte(canonicalVersion))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	h.Write(buf[:])
	if g.directed {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(len(g.edges)))
	h.Write(buf[:])
	_, comps := g.ConnectedComponents()
	binary.LittleEndian.PutUint64(buf[:], uint64(comps))
	h.Write(buf[:])
	for _, c := range sorted {
		binary.LittleEndian.PutUint64(buf[:], c)
		h.Write(buf[:])
	}
	var out Fingerprint
	h.Sum(out[:0])
	return out
}

// mix64 folds v into accumulator h with a splitmix64-style finaliser —
// cheap, well-distributed, and stable across platforms.
func mix64(h, v uint64) uint64 {
	h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func countDistinct(colors []uint64) int {
	seen := make(map[uint64]struct{}, len(colors))
	for _, c := range colors {
		seen[c] = struct{}{}
	}
	return len(seen)
}
