package graph

import "testing"

func TestFingerprintDeterministic(t *testing.T) {
	g := MustNew(4, []Edge{{0, 1}, {1, 2}, {2, 3}}, false)
	if g.Fingerprint() != g.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	if g.Fingerprint() != g.Clone().Fingerprint() {
		t.Fatal("clone fingerprint differs")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := MustNew(4, []Edge{{0, 1}, {1, 2}}, false)
	cases := map[string]*Graph{
		"extra node":      MustNew(5, []Edge{{0, 1}, {1, 2}}, false),
		"extra edge":      MustNew(4, []Edge{{0, 1}, {1, 2}, {2, 3}}, false),
		"edge order":      MustNew(4, []Edge{{1, 2}, {0, 1}}, false),
		"edge direction":  MustNew(4, []Edge{{1, 0}, {1, 2}}, false),
		"directed flag":   MustNew(4, []Edge{{0, 1}, {1, 2}}, true),
		"empty edge list": MustNew(4, nil, false),
	}
	for name, g := range cases {
		if g.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s: fingerprint collided with base", name)
		}
	}
}

func TestFingerprintStringIsHex(t *testing.T) {
	g := MustNew(2, []Edge{{0, 1}}, false)
	s := g.Fingerprint().String()
	if len(s) != 64 {
		t.Fatalf("hex fingerprint length = %d, want 64", len(s))
	}
}
