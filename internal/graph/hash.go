package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Fingerprint is a collision-resistant digest of a graph's exact byte
// representation: node count, directedness, and the COO edge list in stored
// order. Two graphs share a fingerprint iff they serialise identically —
// "isomorphic by bytes", not graph-isomorphic — which is exactly the
// equality an inference cache needs: the MEGA preprocessing (traversal +
// band construction) is a deterministic function of this representation, so
// a fingerprint match guarantees the cached path representation is the one
// a fresh Reorganize would produce.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// ParseFingerprint decodes the hex form String produces. It is the inverse
// needed by wire protocols that address cached representations by
// fingerprint (e.g. the serving /update endpoint).
func ParseFingerprint(s string) (Fingerprint, error) {
	var f Fingerprint
	b, err := hex.DecodeString(s)
	if err != nil {
		return f, fmt.Errorf("graph: bad fingerprint %q: %w", s, err)
	}
	if len(b) != len(f) {
		return f, fmt.Errorf("graph: fingerprint %q is %d bytes, want %d", s, len(b), len(f))
	}
	copy(f[:], b)
	return f, nil
}

// fingerprintVersion is mixed into every digest so the key space can be
// invalidated wholesale if the serialisation ever changes.
const fingerprintVersion = "mega/graph.v1"

// Fingerprint computes the canonical topology hash of g. The digest covers
// only topology (features live outside the Graph), matching what the
// traversal consumes.
func (g *Graph) Fingerprint() Fingerprint {
	h := sha256.New()
	h.Write([]byte(fingerprintVersion))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.numNodes))
	h.Write(buf[:])
	if g.directed {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(len(g.edges)))
	h.Write(buf[:])
	for _, e := range g.edges {
		binary.LittleEndian.PutUint32(buf[:4], uint32(e.Src))
		binary.LittleEndian.PutUint32(buf[4:], uint32(e.Dst))
		h.Write(buf[:])
	}
	var out Fingerprint
	h.Sum(out[:0])
	return out
}
