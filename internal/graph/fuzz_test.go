package graph

import (
	"math/rand"
	"testing"
)

// fuzzGraph decodes a fuzzer-chosen byte string into an undirected graph
// on n nodes: consecutive byte pairs become edges (mod n), duplicates and
// self-loops included — the fuzzer explores multigraph corners too.
func fuzzGraph(nRaw uint8, edgeData []byte) *Graph {
	n := int(nRaw)%30 + 2
	if len(edgeData) > 128 {
		edgeData = edgeData[:128]
	}
	var edges []Edge
	for i := 0; i+1 < len(edgeData); i += 2 {
		edges = append(edges, Edge{
			Src: NodeID(int(edgeData[i]) % n),
			Dst: NodeID(int(edgeData[i+1]) % n),
		})
	}
	return MustNew(n, edges, false)
}

// FuzzFingerprint pins the two hashing contracts against arbitrary
// topologies:
//
//   - Fingerprint is a byte-level identity: equal for an identical copy,
//     different after any edge edit.
//   - CanonicalHash is permutation-invariant: equal across arbitrary node
//     relabellings of the same graph, different after an edge deletion
//     (which changes the hashed edge count).
func FuzzFingerprint(f *testing.F) {
	f.Add(uint8(5), []byte{0, 1, 1, 2, 2, 3, 3, 4, 4, 0}, int64(1))
	f.Add(uint8(7), []byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6}, int64(42))
	f.Add(uint8(3), []byte{}, int64(7))
	f.Add(uint8(12), []byte{1, 1, 2, 2, 3, 4, 3, 4}, int64(-9))

	f.Fuzz(func(t *testing.T, nRaw uint8, edgeData []byte, permSeed int64) {
		g := fuzzGraph(nRaw, edgeData)

		// Byte-identical copy: both hashes agree.
		cp := g.Clone()
		if g.Fingerprint() != cp.Fingerprint() {
			t.Fatal("identical copy changed Fingerprint")
		}
		if g.CanonicalHash() != cp.CanonicalHash() {
			t.Fatal("identical copy changed CanonicalHash")
		}

		// Permuted-isomorphic graph: CanonicalHash must not move.
		perm := RandomPermutation(rand.New(rand.NewSource(permSeed)), g.NumNodes())
		pg, err := PermuteNodes(g, perm)
		if err != nil {
			t.Fatal(err)
		}
		if g.CanonicalHash() != pg.CanonicalHash() {
			t.Fatalf("CanonicalHash not permutation-invariant: n=%d edges=%v perm=%v",
				g.NumNodes(), g.Edges(), perm)
		}

		// Edge deletion: both hashes must move (Fingerprint hashes the edge
		// bytes; CanonicalHash covers the edge count).
		if m := g.NumEdges(); m > 0 {
			drop := int(permSeed) % m
			if drop < 0 {
				drop += m
			}
			edges := g.Edges()
			edited := make([]Edge, 0, m-1)
			edited = append(edited, edges[:drop]...)
			edited = append(edited, edges[drop+1:]...)
			eg := MustNew(g.NumNodes(), edited, false)
			if g.Fingerprint() == eg.Fingerprint() {
				t.Fatalf("Fingerprint unchanged after deleting edge %d of %v", drop, edges)
			}
			if g.CanonicalHash() == eg.CanonicalHash() {
				t.Fatalf("CanonicalHash unchanged after deleting edge %d of %v", drop, edges)
			}
			// And the permuted edit differs from the permuted original.
			peg, err := PermuteNodes(eg, perm)
			if err != nil {
				t.Fatal(err)
			}
			if pg.CanonicalHash() == peg.CanonicalHash() {
				t.Fatal("CanonicalHash unchanged after permuted edge deletion")
			}
		}
	})
}

// TestCanonicalHashKnownPairs pins the invariance on deterministic cases
// (so the property is checked even in plain `go test` runs with no fuzzing
// engine).
func TestCanonicalHashKnownPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		n := rng.Intn(25) + 2
		g := ErdosRenyi(rng, n, 0.3)
		pg, err := PermuteNodes(g, RandomPermutation(rng, n))
		if err != nil {
			t.Fatal(err)
		}
		if g.CanonicalHash() != pg.CanonicalHash() {
			t.Fatalf("case %d: permuted hash differs", i)
		}
		if g.NumEdges() > 0 {
			edges := g.Edges()
			eg := MustNew(n, edges[:len(edges)-1], false)
			if g.CanonicalHash() == eg.CanonicalHash() {
				t.Fatalf("case %d: deletion left hash unchanged", i)
			}
		}
	}
	// Distinguishes structures beyond degree distributions: a 6-cycle and
	// two triangles are both 2-regular on 6 nodes and WL-1 equivalent; the
	// component count in the digest separates them.
	c6 := Cycle(6)
	tt := MustNew(6, []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}}, false)
	if c6.CanonicalHash() == tt.CanonicalHash() {
		t.Error("C6 and 2xC3 should hash differently (component counts differ)")
	}
	// A path and a star on 5 nodes have the same n, m, and component count
	// but different degree multisets; WL separates them in round zero.
	if Path(5).CanonicalHash() == MustNew(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}}, false).CanonicalHash() {
		t.Error("P5 and K1,4 should hash differently")
	}
}
