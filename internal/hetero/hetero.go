// Package hetero extends MEGA to heterogeneous graphs, the paper's §IV-B8
// direction: "For heterogeneous graph scenarios, MEGA can leverage the idea
// in HAN; MEGA can arrange multiple paths to cover distinct node types,
// subsequently merging hierarchically."
//
// A typed graph is split into per-type induced subgraphs; each subgraph is
// traversed into its own path (so every path is type-homogeneous and its
// band attention stays semantically meaningful, as HAN's per-meta-path
// attention is), and cross-type edges form an explicit bridge pair list
// processed in a second, hierarchical stage. CompareCost replays both the
// naive flat layout and the multi-path layout on the GPU simulator.
package hetero

import (
	"errors"
	"fmt"

	"mega/internal/band"
	"mega/internal/gpusim"
	"mega/internal/graph"
	"mega/internal/traverse"
)

// TypedGraph is a graph whose vertices carry a type.
type TypedGraph struct {
	G        *graph.Graph
	NodeType []int32
	NumTypes int
}

// Validation errors.
var (
	ErrTypeLen   = errors.New("hetero: node type slice length mismatch")
	ErrTypeRange = errors.New("hetero: node type out of range")
)

// NewTypedGraph validates and wraps a typed graph.
func NewTypedGraph(g *graph.Graph, nodeType []int32, numTypes int) (*TypedGraph, error) {
	if len(nodeType) != g.NumNodes() {
		return nil, fmt.Errorf("%w: %d types for %d nodes", ErrTypeLen, len(nodeType), g.NumNodes())
	}
	for v, t := range nodeType {
		if t < 0 || int(t) >= numTypes {
			return nil, fmt.Errorf("%w: node %d has type %d of %d", ErrTypeRange, v, t, numTypes)
		}
	}
	types := make([]int32, len(nodeType))
	copy(types, nodeType)
	return &TypedGraph{G: g, NodeType: types, NumTypes: numTypes}, nil
}

// Subgraph is one type's induced subgraph with its ID mapping.
type Subgraph struct {
	Type int
	G    *graph.Graph
	// ToGlobal[local] is the original vertex ID of local vertex `local`.
	ToGlobal []graph.NodeID
}

// Bridge is one cross-type edge in original vertex IDs.
type Bridge struct {
	U, V graph.NodeID
	// EdgeID indexes the original COO edge list.
	EdgeID int32
}

// Split partitions the typed graph into per-type induced subgraphs plus the
// bridge list of cross-type edges.
func Split(tg *TypedGraph) ([]Subgraph, []Bridge, error) {
	n := tg.G.NumNodes()
	toLocal := make([]graph.NodeID, n)
	subs := make([]Subgraph, tg.NumTypes)
	for t := range subs {
		subs[t].Type = t
	}
	for v := 0; v < n; v++ {
		t := tg.NodeType[v]
		toLocal[v] = graph.NodeID(len(subs[t].ToGlobal))
		subs[t].ToGlobal = append(subs[t].ToGlobal, graph.NodeID(v))
	}
	edgesPerType := make([][]graph.Edge, tg.NumTypes)
	var bridges []Bridge
	for ei, e := range tg.G.Edges() {
		tu, tv := tg.NodeType[e.Src], tg.NodeType[e.Dst]
		if tu == tv {
			edgesPerType[tu] = append(edgesPerType[tu], graph.Edge{
				Src: toLocal[e.Src], Dst: toLocal[e.Dst],
			})
		} else {
			bridges = append(bridges, Bridge{U: e.Src, V: e.Dst, EdgeID: int32(ei)})
		}
	}
	for t := range subs {
		g, err := graph.New(len(subs[t].ToGlobal), edgesPerType[t], false)
		if err != nil {
			return nil, nil, err
		}
		subs[t].G = g
	}
	return subs, bridges, nil
}

// MultiRep is the hierarchical multi-path representation.
type MultiRep struct {
	// PerType holds each type's subgraph, band representation and
	// traversal result; types with no vertices have a nil Rep.
	PerType []TypedRep
	// Bridges are the cross-type edges handled in the merge stage.
	Bridges []Bridge
	// IntraEdges / InterEdges count the edge split.
	IntraEdges int
	InterEdges int
}

// TypedRep is one type's path representation.
type TypedRep struct {
	Sub Subgraph
	Rep *band.Rep
	Res *traverse.Result
}

// BuildMultiPath traverses every non-empty type subgraph.
func BuildMultiPath(tg *TypedGraph, opts traverse.Options) (*MultiRep, error) {
	subs, bridges, err := Split(tg)
	if err != nil {
		return nil, err
	}
	mr := &MultiRep{Bridges: bridges, InterEdges: len(bridges)}
	for _, sub := range subs {
		tr := TypedRep{Sub: sub}
		if sub.G.NumNodes() > 0 {
			rep, res, err := band.FromGraph(sub.G, opts)
			if err != nil {
				return nil, err
			}
			tr.Rep = rep
			tr.Res = res
			mr.IntraEdges += sub.G.NumEdges()
		}
		mr.PerType = append(mr.PerType, tr)
	}
	return mr, nil
}

// Coverage returns the fraction of ALL original edges captured by the
// hierarchical representation: intra-type edges inside per-type bands plus
// every bridge (bridges are processed exactly in the merge stage).
func (mr *MultiRep) Coverage() float64 {
	total := mr.IntraEdges + mr.InterEdges
	if total == 0 {
		return 1
	}
	covered := mr.InterEdges
	for _, tr := range mr.PerType {
		if tr.Rep != nil {
			covered += tr.Rep.CoveredEdges
		}
	}
	return float64(covered) / float64(total)
}

// TotalPathLen sums all per-type path lengths.
func (mr *MultiRep) TotalPathLen() int {
	total := 0
	for _, tr := range mr.PerType {
		if tr.Rep != nil {
			total += tr.Rep.Len()
		}
	}
	return total
}

// CostComparison is the simulated cycle cost of each layout strategy for
// one attention pass.
type CostComparison struct {
	// Flat treats the heterogeneous graph as one homogeneous graph
	// traversed into a single path (types interleave; a HAN-style model
	// cannot use such a band per relation).
	Flat float64
	// MultiPath runs each type's band sweep plus a gather/scatter pass
	// over the bridge edges (the hierarchical merge stage).
	MultiPath float64
	// Baseline is the conventional per-edge gather/scatter over the whole
	// graph.
	Baseline float64
}

// CompareCost replays one attention pass under each strategy at embedding
// width dim.
func CompareCost(tg *TypedGraph, opts traverse.Options, dim int) (CostComparison, error) {
	rowBytes := int64(dim) * 4
	var out CostComparison

	// Baseline: gather+scatter over the full edge list.
	{
		sim := gpusim.New(gpusim.GTX1080())
		base := sim.Alloc(int64(tg.G.NumNodes()) * rowBytes)
		src := make([]int32, 0, 2*tg.G.NumEdges())
		dst := make([]int32, 0, 2*tg.G.NumEdges())
		for _, e := range tg.G.Edges() {
			src = append(src, e.Src, e.Dst)
			dst = append(dst, e.Dst, e.Src)
		}
		sim.GatherRows("gather", base, src, rowBytes)
		sim.ScatterRows("scatter", base, dst, rowBytes)
		out.Baseline = sim.TotalCycles()
	}

	// Flat MEGA: one path over everything.
	{
		rep, _, err := band.FromGraph(tg.G, opts)
		if err != nil {
			return out, err
		}
		sim := gpusim.New(gpusim.GTX1080())
		base := sim.Alloc(int64(rep.Len()) * rowBytes)
		sim.BandSweep("band", base, rep.Len(), 2*rep.Window, rowBytes)
		out.Flat = sim.TotalCycles()
	}

	// Multi-path: per-type sweeps + bridge gather/scatter.
	{
		mr, err := BuildMultiPath(tg, opts)
		if err != nil {
			return out, err
		}
		sim := gpusim.New(gpusim.GTX1080())
		for _, tr := range mr.PerType {
			if tr.Rep == nil || tr.Rep.Len() == 0 {
				continue
			}
			base := sim.Alloc(int64(tr.Rep.Len()) * rowBytes)
			sim.BandSweep("band", base, tr.Rep.Len(), 2*tr.Rep.Window, rowBytes)
		}
		if len(mr.Bridges) > 0 {
			base := sim.Alloc(int64(tg.G.NumNodes()) * rowBytes)
			us := make([]int32, len(mr.Bridges))
			vs := make([]int32, len(mr.Bridges))
			for i, b := range mr.Bridges {
				us[i] = b.U
				vs[i] = b.V
			}
			sim.GatherRows("bridge", base, us, rowBytes)
			sim.ScatterRows("bridge", base, vs, rowBytes)
		}
		out.MultiPath = sim.TotalCycles()
	}
	return out, nil
}
