package hetero

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mega/internal/graph"
	"mega/internal/traverse"
)

// bipartiteish builds a typed graph with two types: type-0 vertices form a
// ring among themselves, type-1 vertices a second ring, with some random
// bridges — a paper-style heterogeneous structure (e.g. users and items).
func bipartiteish(t *testing.T, rng *rand.Rand, perType, bridges int) *TypedGraph {
	t.Helper()
	n := 2 * perType
	var edges []graph.Edge
	for v := 0; v < perType; v++ {
		edges = append(edges, graph.Edge{Src: graph.NodeID(v), Dst: graph.NodeID((v + 1) % perType)})
	}
	for v := 0; v < perType; v++ {
		a := graph.NodeID(perType + v)
		b := graph.NodeID(perType + (v+1)%perType)
		edges = append(edges, graph.Edge{Src: a, Dst: b})
	}
	seen := make(map[[2]graph.NodeID]bool)
	for len(seen) < bridges {
		u := graph.NodeID(rng.Intn(perType))
		v := graph.NodeID(perType + rng.Intn(perType))
		key := [2]graph.NodeID{u, v}
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, graph.Edge{Src: u, Dst: v})
	}
	g := graph.MustNew(n, edges, false)
	types := make([]int32, n)
	for v := perType; v < n; v++ {
		types[v] = 1
	}
	tg, err := NewTypedGraph(g, types, 2)
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func TestNewTypedGraphValidation(t *testing.T) {
	g := graph.Cycle(4)
	if _, err := NewTypedGraph(g, []int32{0, 1}, 2); err == nil {
		t.Error("wrong type-slice length should error")
	}
	if _, err := NewTypedGraph(g, []int32{0, 1, 2, 0}, 2); err == nil {
		t.Error("out-of-range type should error")
	}
	if _, err := NewTypedGraph(g, []int32{0, 1, 1, 0}, 2); err != nil {
		t.Errorf("valid typed graph rejected: %v", err)
	}
}

func TestSplitPartitionsEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tg := bipartiteish(t, rng, 10, 5)
	subs, bridges, err := Split(tg)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("subgraphs = %d, want 2", len(subs))
	}
	if subs[0].G.NumNodes() != 10 || subs[1].G.NumNodes() != 10 {
		t.Errorf("subgraph sizes %d/%d, want 10/10", subs[0].G.NumNodes(), subs[1].G.NumNodes())
	}
	intra := subs[0].G.NumEdges() + subs[1].G.NumEdges()
	if intra+len(bridges) != tg.G.NumEdges() {
		t.Errorf("edge partition %d + %d != %d", intra, len(bridges), tg.G.NumEdges())
	}
	if len(bridges) != 5 {
		t.Errorf("bridges = %d, want 5", len(bridges))
	}
	// Every bridge really is cross-type; every subgraph edge really maps
	// to a same-type original edge.
	for _, b := range bridges {
		if tg.NodeType[b.U] == tg.NodeType[b.V] {
			t.Errorf("bridge (%d,%d) is intra-type", b.U, b.V)
		}
	}
	for _, sub := range subs {
		for _, e := range sub.G.Edges() {
			gu, gv := sub.ToGlobal[e.Src], sub.ToGlobal[e.Dst]
			if !tg.G.HasEdge(gu, gv) {
				t.Errorf("subgraph edge (%d,%d) not in original", gu, gv)
			}
			if tg.NodeType[gu] != int32(sub.Type) || tg.NodeType[gv] != int32(sub.Type) {
				t.Errorf("subgraph %d contains foreign-type edge", sub.Type)
			}
		}
	}
}

func TestSplitEmptyType(t *testing.T) {
	g := graph.Cycle(4)
	tg, err := NewTypedGraph(g, []int32{0, 0, 0, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	subs, bridges, err := Split(tg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bridges) != 0 {
		t.Errorf("homogeneous graph should have no bridges")
	}
	if subs[1].G.NumNodes() != 0 || subs[2].G.NumNodes() != 0 {
		t.Error("empty types should produce empty subgraphs")
	}
}

func TestBuildMultiPathCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tg := bipartiteish(t, rng, 12, 6)
	mr, err := BuildMultiPath(tg, traverse.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if mr.Coverage() != 1 {
		t.Errorf("hierarchical coverage = %v, want 1 (θ=1 per type + all bridges)", mr.Coverage())
	}
	if mr.InterEdges != 6 {
		t.Errorf("inter edges = %d, want 6", mr.InterEdges)
	}
	if mr.TotalPathLen() < 24 {
		t.Errorf("total path length %d too small for 24 vertices", mr.TotalPathLen())
	}
	// Per-type paths must be type-pure.
	for _, tr := range mr.PerType {
		if tr.Rep == nil {
			continue
		}
		for _, local := range tr.Rep.Path {
			global := tr.Sub.ToGlobal[local]
			if tg.NodeType[global] != int32(tr.Sub.Type) {
				t.Fatalf("type-%d path contains type-%d vertex", tr.Sub.Type, tg.NodeType[global])
			}
		}
	}
}

func TestCompareCostShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tg := bipartiteish(t, rng, 400, 60)
	costs, err := CompareCost(tg, traverse.DefaultOptions(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if costs.MultiPath >= costs.Baseline {
		t.Errorf("multi-path %v should beat the gather/scatter baseline %v", costs.MultiPath, costs.Baseline)
	}
	if costs.Flat >= costs.Baseline {
		t.Errorf("flat path %v should beat the baseline %v", costs.Flat, costs.Baseline)
	}
	t.Logf("baseline %.3g, flat %.3g, multipath %.3g", costs.Baseline, costs.Flat, costs.MultiPath)
}

// Property: splitting always conserves vertices and edges.
func TestSplitConservationProperty(t *testing.T) {
	f := func(seed int64, nRaw, tRaw uint8) bool {
		n := int(nRaw%20) + 4
		numTypes := int(tRaw%3) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.ErdosRenyiM(rng, n, n*2)
		types := make([]int32, n)
		for v := range types {
			types[v] = int32(rng.Intn(numTypes))
		}
		tg, err := NewTypedGraph(g, types, numTypes)
		if err != nil {
			return false
		}
		subs, bridges, err := Split(tg)
		if err != nil {
			return false
		}
		nodes, intra := 0, 0
		for _, s := range subs {
			nodes += s.G.NumNodes()
			intra += s.G.NumEdges()
		}
		return nodes == n && intra+len(bridges) == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuildMultiPath(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.BarabasiAlbert(rng, 1000, 3)
	types := make([]int32, 1000)
	for v := range types {
		types[v] = int32(rng.Intn(3))
	}
	tg, err := NewTypedGraph(g, types, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildMultiPath(tg, traverse.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
