package load

import (
	"net/http/httptest"
	"testing"
	"time"

	"mega/internal/datasets"
	"mega/internal/faults"
	"mega/internal/models"
	"mega/internal/serve"
	"mega/internal/train"
)

// trainServer trains a tiny real checkpoint and serves it — the harness
// must hold its contracts against the genuine train → checkpoint → serve
// pipeline, not a hand-built model.
func trainServer(t *testing.T, opts serve.Options) *serve.Server {
	t.Helper()
	dir := t.TempDir()
	ds := datasets.ZINC(datasets.Config{TrainSize: 16, ValSize: 4, TestSize: 1, Seed: 5})
	if _, err := train.Run(ds, train.Options{
		Model: "GT", Engine: models.EngineMega,
		Dim: 16, Layers: 1, Heads: 2, BatchSize: 8, Epochs: 2, Seed: 5,
		CheckpointDir: dir, CheckpointEvery: 1,
	}); err != nil {
		t.Fatalf("train: %v", err)
	}
	s, err := serve.NewFromCheckpointDir(dir, opts)
	if err != nil {
		t.Fatalf("serve from checkpoint: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// assertNoLostResponses checks that every dispatched request resolved into
// exactly one outcome class — the zero-lost-responses contract.
func assertNoLostResponses(t *testing.T, rep Report) {
	t.Helper()
	tot := rep.Total
	resolved := tot.OK + tot.Shed + tot.DeadlineExceeded + tot.Canceled + tot.Errors +
		tot.UpdateOK + tot.UpdateErrors
	if resolved != tot.Sent {
		t.Fatalf("lost responses: %d resolved of %d sent (%+v)", resolved, tot.Sent, tot)
	}
	if !rep.Reconciliation.Clean {
		t.Fatalf("client counts do not reconcile with /metrics: %v", rep.Reconciliation.Mismatches)
	}
}

// TestEndToEndLoadWithFaults drives a real checkpointed server with a
// mixed predict/update stream while a survivable fault profile is armed
// (cache faults force recomputes, preprocessing faults trip the breaker
// into degraded fallbacks, forward delays stretch latencies): every
// request must resolve, and the client's accounting must match the
// server's /metrics counters exactly, fault-by-fault.
func TestEndToEndLoadWithFaults(t *testing.T) {
	// faults is a process-global registry: no t.Parallel anywhere in this
	// file.
	dur := 6 * time.Second
	if testing.Short() {
		dur = 2 * time.Second
	}
	s := trainServer(t, serve.Options{
		MaxBatch: 8, MaxWait: time.Millisecond, Workers: 2, QueueDepth: 64,
		BreakerThreshold: 3, BreakerCooldown: 20 * time.Millisecond,
	})

	faults.ArmT(t, faults.Plan{Seed: 99, Points: []faults.PointConfig{
		{Name: faults.ServeCacheGet, Prob: 0.2, Action: faults.ActError},
		{Name: faults.ServeCachePut, Prob: 0.2, Action: faults.ActError},
		{Name: faults.ServePrepare, Prob: 0.1, Action: faults.ActError},
		{Name: faults.ServeForward, Prob: 0.1, Action: faults.ActDelay, Delay: 2 * time.Millisecond},
	}})

	rep, err := Run(InProcess{S: s}, RunOptions{
		Seed: 11,
		Phases: []Phase{
			{Name: "ramp", Rate: 30, Duration: dur / 2},
			{Name: "peak", Rate: 60, Duration: dur / 2},
		},
		Mix: MixOptions{Seed: 11, UpdateFraction: 0.08, NodeTypes: s.Meta().Config.NodeTypes,
			EdgeTypes: s.Meta().Config.EdgeTypes},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertNoLostResponses(t, rep)
	if rep.Total.OK == 0 {
		t.Fatal("no successful predictions under the survivable fault profile")
	}
	if rep.Total.Updates == 0 {
		t.Fatal("mix produced no /update traffic")
	}
	// The armed profile must have actually fired — otherwise this test is
	// reconciling fair weather.
	fired := 0
	for _, r := range faults.Report() {
		fired += r.Fired
	}
	if fired == 0 {
		t.Fatal("fault profile armed but nothing fired")
	}
	t.Logf("e2e: %d sent (%d ok, %d degraded, %d err, %d updates), %d faults fired, p99 %.2fms",
		rep.Total.Sent, rep.Total.OK, rep.Total.Degraded,
		rep.Total.Errors, rep.Total.Updates, fired, rep.Total.Latency.P99Ms)
}

// TestEndToEndLoadOverHTTP runs the same reconciliation contract across
// the wire: an httptest server around the real handler, the HTTPTarget
// mapping status codes back to typed errors, no client-side socket
// timeouts — counts must still match exactly.
func TestEndToEndLoadOverHTTP(t *testing.T) {
	dur := 4 * time.Second
	if testing.Short() {
		dur = 2 * time.Second
	}
	s := trainServer(t, serve.Options{
		MaxBatch: 8, MaxWait: time.Millisecond, Workers: 2, QueueDepth: 64,
	})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	rep, err := Run(HTTPTarget{Base: hs.URL}, RunOptions{
		Seed:   21,
		Phases: []Phase{{Name: "steady", Rate: 40, Duration: dur}},
		Mix: MixOptions{Seed: 21, UpdateFraction: 0.1, NodeTypes: s.Meta().Config.NodeTypes,
			EdgeTypes: s.Meta().Config.EdgeTypes},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertNoLostResponses(t, rep)
	if rep.Total.OK == 0 || rep.Total.UpdateOK == 0 {
		t.Fatalf("HTTP run too thin: %+v", rep.Total)
	}
	if rep.Total.CacheHits == 0 {
		t.Fatal("warm pool produced no cache hits over HTTP")
	}
}

// TestRunShedsAtOverload pins the open-loop property the harness exists
// for: offering far beyond a tiny server's capacity must surface shedding
// (not silently throttle the generator), and shed counts must reconcile
// exactly too.
func TestRunShedsAtOverload(t *testing.T) {
	s := trainServer(t, serve.Options{
		MaxBatch: 1, MaxWait: time.Millisecond, Workers: 1, QueueDepth: 2,
	})
	rep, err := Run(InProcess{S: s}, RunOptions{
		Seed:   31,
		Phases: []Phase{{Name: "flood", Rate: 600, Duration: 1500 * time.Millisecond}},
		Mix: MixOptions{Seed: 31, NodeTypes: s.Meta().Config.NodeTypes,
			EdgeTypes: s.Meta().Config.EdgeTypes},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertNoLostResponses(t, rep)
	if rep.Total.Shed == 0 {
		t.Fatalf("600 QPS against a queue of 2 shed nothing: %+v", rep.Total)
	}
}
