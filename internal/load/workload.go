package load

import (
	"fmt"
	"math/rand"

	"mega/internal/datasets"
	"mega/internal/graph"
	"mega/internal/serve"
)

// SizeClass describes one graph population in the mix: random trees on
// Nodes vertices with ExtraEdges additional chords (connected, undirected,
// mildly cyclic — the molecular-graph regime the models are trained on),
// drawn with probability proportional to Weight.
type SizeClass struct {
	Nodes      int     `json:"nodes"`
	ExtraEdges int     `json:"extra_edges"`
	Weight     float64 `json:"weight"`
}

// MixOptions shapes the request stream.
type MixOptions struct {
	// Seed drives every workload draw (graph shapes, features, mix
	// choices); fixed seed, fixed plan.
	Seed int64 `json:"seed"`
	// Sizes is the graph-size mix (default: 32/96/224-node classes
	// weighted 0.6/0.3/0.1).
	Sizes []SizeClass `json:"sizes"`
	// HitFraction is the fraction of predict requests aimed at the warm
	// pool of PoolSize graphs per size class — after warm-up those are
	// path-representation cache hits. The rest carry a fresh topology each
	// (a cold traversal). Default 0.7.
	HitFraction float64 `json:"hit_fraction"`
	// UpdateFraction is the fraction of all requests that are /update
	// mutations (each against its own base graph, exercising session
	// adoption plus one incremental repair). Default 0.
	UpdateFraction float64 `json:"update_fraction"`
	// PoolSize is the number of warm graphs per size class (default 8).
	PoolSize int `json:"pool_size"`
	// NodeTypes/EdgeTypes bound the categorical features sampled onto
	// generated graphs; they must not exceed the served checkpoint's
	// vocabularies. Default 1 (all-zero features, valid for any model).
	NodeTypes int `json:"node_types"`
	EdgeTypes int `json:"edge_types"`
}

func (o MixOptions) withDefaults() MixOptions {
	if len(o.Sizes) == 0 {
		o.Sizes = []SizeClass{
			{Nodes: 32, ExtraEdges: 6, Weight: 0.6},
			{Nodes: 96, ExtraEdges: 18, Weight: 0.3},
			{Nodes: 224, ExtraEdges: 40, Weight: 0.1},
		}
	}
	if o.HitFraction == 0 {
		o.HitFraction = 0.7
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 8
	}
	if o.NodeTypes <= 0 {
		o.NodeTypes = 1
	}
	if o.EdgeTypes <= 0 {
		o.EdgeTypes = 1
	}
	return o
}

// ReqKind classifies one planned request.
type ReqKind int

const (
	// KindPredictHit posts a warm-pool graph to /predict (a cache hit
	// after warm-up).
	KindPredictHit ReqKind = iota
	// KindPredictMiss posts a fresh unique topology to /predict (a cold
	// traversal).
	KindPredictMiss
	// KindUpdate posts a self-contained mutation batch to /update: a fresh
	// base graph plus one edge insert.
	KindUpdate
)

func (k ReqKind) String() string {
	switch k {
	case KindPredictHit:
		return "predict-hit"
	case KindPredictMiss:
		return "predict-miss"
	case KindUpdate:
		return "update"
	default:
		return fmt.Sprintf("ReqKind(%d)", int(k))
	}
}

// Request is one planned unit of work, self-contained so dispatch needs no
// shared mutable state.
type Request struct {
	Kind   ReqKind
	Inst   datasets.Instance   // predicts
	Update serve.UpdateRequest // updates
}

// Workload precomputes the warm pool and plans deterministic request
// streams over arrival schedules.
type Workload struct {
	opts MixOptions
	pool []datasets.Instance
	// cumWeight is the normalised cumulative size-class distribution.
	cumWeight []float64
}

// NewWorkload validates the mix and materialises the warm pool.
func NewWorkload(opts MixOptions) (*Workload, error) {
	opts = opts.withDefaults()
	if opts.HitFraction < 0 || opts.HitFraction > 1 {
		return nil, fmt.Errorf("load: HitFraction %v outside [0,1]", opts.HitFraction)
	}
	if opts.UpdateFraction < 0 || opts.UpdateFraction > 1 {
		return nil, fmt.Errorf("load: UpdateFraction %v outside [0,1]", opts.UpdateFraction)
	}
	total := 0.0
	for i, sc := range opts.Sizes {
		if sc.Nodes < 2 {
			return nil, fmt.Errorf("load: size class %d has %d nodes (want >= 2)", i, sc.Nodes)
		}
		if opts.UpdateFraction > 0 && sc.Nodes < 3 {
			return nil, fmt.Errorf("load: size class %d has %d nodes; update mixes need >= 3 (a 2-vertex graph has no insertable edge)", i, sc.Nodes)
		}
		if sc.Weight <= 0 {
			return nil, fmt.Errorf("load: size class %d weight %v must be > 0", i, sc.Weight)
		}
		total += sc.Weight
	}
	w := &Workload{opts: opts}
	cum := 0.0
	for _, sc := range opts.Sizes {
		cum += sc.Weight / total
		w.cumWeight = append(w.cumWeight, cum)
	}
	// The warm pool is drawn from a dedicated generator so pool membership
	// is independent of how many plans are cut from this workload.
	rng := rand.New(rand.NewSource(opts.Seed))
	for _, sc := range opts.Sizes {
		for i := 0; i < opts.PoolSize; i++ {
			w.pool = append(w.pool, w.instance(rng, sc))
		}
	}
	return w, nil
}

// Pool returns the warm-pool instances (the cache-hit population); the
// runner predicts each once before the measured window.
func (w *Workload) Pool() []datasets.Instance { return w.pool }

// Plan assigns a request to every arrival, deterministically from the
// workload seed and the arrival count. Fresh-topology requests draw new
// graphs per call, so two plans from one workload do not share miss
// fingerprints.
func (w *Workload) Plan(arrivals []Arrival) []Request {
	// Offset the stream seed so plan draws never collide with pool draws.
	rng := rand.New(rand.NewSource(w.opts.Seed + 0x9e3779b9))
	reqs := make([]Request, len(arrivals))
	for i := range arrivals {
		u := rng.Float64()
		switch {
		case u < w.opts.UpdateFraction:
			reqs[i] = w.planUpdate(rng)
		case rng.Float64() < w.opts.HitFraction:
			reqs[i] = Request{Kind: KindPredictHit, Inst: w.pool[rng.Intn(len(w.pool))]}
		default:
			reqs[i] = Request{Kind: KindPredictMiss, Inst: w.instance(rng, w.sizeClass(rng))}
		}
	}
	return reqs
}

func (w *Workload) sizeClass(rng *rand.Rand) SizeClass {
	u := rng.Float64()
	for i, cw := range w.cumWeight {
		if u < cw {
			return w.opts.Sizes[i]
		}
	}
	return w.opts.Sizes[len(w.opts.Sizes)-1]
}

// instance builds one connected random graph with in-vocabulary features.
func (w *Workload) instance(rng *rand.Rand, sc SizeClass) datasets.Instance {
	g := randGraph(rng, sc.Nodes, sc.ExtraEdges)
	nf := make([]int32, g.NumNodes())
	for i := range nf {
		nf[i] = int32(rng.Intn(w.opts.NodeTypes))
	}
	ef := make([]int32, g.NumEdges())
	for i := range ef {
		ef[i] = int32(rng.Intn(w.opts.EdgeTypes))
	}
	return datasets.Instance{G: g, NodeFeat: nf, EdgeFeat: ef}
}

// planUpdate builds a self-contained /update: a fresh base graph and one
// absent edge to insert.
func (w *Workload) planUpdate(rng *rand.Rand) Request {
	sc := w.sizeClass(rng)
	g := randGraph(rng, sc.Nodes, sc.ExtraEdges)
	base := &serve.GraphRequest{NumNodes: g.NumNodes(), Edges: edgePairs(g)}
	req := serve.UpdateRequest{Base: base}
	n := g.NumNodes()
	if g.NumEdges() >= n*(n-1)/2 {
		// Complete graph (possible only when ExtraEdges saturates a tiny
		// class): nothing to insert, delete a chord instead. n >= 3, so the
		// graph stays connected.
		e := g.EdgeAt(g.NumEdges() - 1)
		req.Remove = [][2]int32{{int32(e.Src), int32(e.Dst)}}
	} else {
		req.Add = [][2]int32{absentEdge(rng, g)}
	}
	return Request{Kind: KindUpdate, Update: req}
}

// randGraph samples a random tree on n vertices plus extra distinct chords:
// connected, undirected, no self loops.
func randGraph(rng *rand.Rand, n, extra int) *graph.Graph {
	g := graph.RandomTree(rng, n)
	if extra <= 0 {
		return g
	}
	edges := g.Edges()
	seen := make(map[[2]graph.NodeID]bool, len(edges)+extra)
	for _, e := range edges {
		a, b := e.Src, e.Dst
		if a > b {
			a, b = b, a
		}
		seen[[2]graph.NodeID{a, b}] = true
	}
	maxExtra := n*(n-1)/2 - len(edges)
	if extra > maxExtra {
		extra = maxExtra
	}
	for added := 0; added < extra; {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]graph.NodeID{u, v}
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, graph.Edge{Src: u, Dst: v})
		added++
	}
	return graph.MustNew(n, edges, false)
}

// absentEdge finds an edge not present in g (and not a self loop).
func absentEdge(rng *rand.Rand, g *graph.Graph) [2]int32 {
	n := g.NumNodes()
	for {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if u > v {
			u, v = v, u
		}
		return [2]int32{int32(u), int32(v)}
	}
}

// edgePairs converts a graph's edge list to the wire format, preserving
// stored order (the byte-level fingerprint is order-sensitive).
func edgePairs(g *graph.Graph) [][2]int32 {
	out := make([][2]int32, g.NumEdges())
	for i, e := range g.Edges() {
		out[i] = [2]int32{int32(e.Src), int32(e.Dst)}
	}
	return out
}
