package load

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// BenchSchemaVersion gates BENCH_serve.json readers: bump on any
// backwards-incompatible change to BenchRecord.
const BenchSchemaVersion = 1

// MachineInfo records where a bench record was produced — capacity numbers
// are meaningless without it.
type MachineInfo struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// CurrentMachine captures the running host.
func CurrentMachine() MachineInfo {
	return MachineInfo{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
}

// BenchRecord is the standing BENCH_serve.json regression gate: the knob
// grid swept, each configuration's max sustainable QPS under the stated
// SLO, and the winner. Committed records pin the methodology (schema,
// seed, workload, SLO) so reruns are comparable; the QPS numbers
// themselves are machine-relative and carry their MachineInfo.
type BenchRecord struct {
	SchemaVersion int         `json:"schema_version"`
	GeneratedAt   string      `json:"generated_at"` // RFC 3339
	Machine       MachineInfo `json:"machine"`

	SLO           SLO        `json:"slo"`
	Seed          int64      `json:"seed"`
	ProbeDuration string     `json:"probe_duration"`
	Workload      MixOptions `json:"workload"`

	Configs []ConfigResult `json:"configs"`
	// Winner is the name of the config with the highest max sustainable
	// QPS ("" if nothing sustained any rate).
	Winner string `json:"winner"`
}

// NewBenchRecord assembles a record from a sweep's results.
func NewBenchRecord(generatedAt string, slo SLO, seed int64, probeDuration string, mix MixOptions, results []ConfigResult, winner int) BenchRecord {
	rec := BenchRecord{
		SchemaVersion: BenchSchemaVersion,
		GeneratedAt:   generatedAt,
		Machine:       CurrentMachine(),
		SLO:           slo,
		Seed:          seed,
		ProbeDuration: probeDuration,
		Workload:      mix.withDefaults(),
		Configs:       results,
	}
	if winner >= 0 && winner < len(results) {
		rec.Winner = results[winner].Config.Name
	}
	return rec
}

// Validate rejects records a regression gate must not trust: wrong schema,
// an empty sweep, or a named winner that is not in the sweep.
func (r BenchRecord) Validate() error {
	if r.SchemaVersion != BenchSchemaVersion {
		return fmt.Errorf("load: bench record schema %d, this reader wants %d", r.SchemaVersion, BenchSchemaVersion)
	}
	if len(r.Configs) == 0 {
		return fmt.Errorf("load: bench record has no configs")
	}
	if r.Winner != "" {
		found := false
		for _, c := range r.Configs {
			if c.Config.Name == r.Winner {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("load: bench record winner %q not among its configs", r.Winner)
		}
	}
	return nil
}

// WriteFile writes the record as indented JSON (the file is committed and
// diffed, so stable formatting matters).
func (r BenchRecord) WriteFile(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReadBenchRecord loads and validates a committed record.
func ReadBenchRecord(path string) (BenchRecord, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return BenchRecord{}, err
	}
	var rec BenchRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return BenchRecord{}, fmt.Errorf("load: parse %s: %w", path, err)
	}
	if err := rec.Validate(); err != nil {
		return BenchRecord{}, fmt.Errorf("load: %s: %w", path, err)
	}
	return rec, nil
}
