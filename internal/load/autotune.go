package load

import (
	"fmt"
	"math"
	"time"
)

// SLO is the pass/fail criterion for one probe: client-observed p99 at or
// under P99Ms, and no more than MaxErrorFraction of predict requests
// failing (shed, deadline, or error — an overloaded server that sheds its
// way to a good p99 is not meeting capacity).
type SLO struct {
	P99Ms            float64 `json:"p99_ms"`
	MaxErrorFraction float64 `json:"max_error_fraction"`
}

// ProbeResult is what one fixed-rate probe observed.
type ProbeResult struct {
	AchievedQPS   float64 `json:"achieved_qps"`
	P99Ms         float64 `json:"p99_ms"`
	ErrorFraction float64 `json:"error_fraction"`
}

// Pass reports whether the probe met the SLO.
func (r ProbeResult) Pass(slo SLO) bool {
	return r.P99Ms <= slo.P99Ms && r.ErrorFraction <= slo.MaxErrorFraction
}

// ProbeFunc runs the system at one offered rate for a fixed window and
// reports what the client observed. The autotuner is pure search logic
// over this function, so tests drive it with synthetic latency curves and
// the CLI drives it with real measured runs — same code path.
type ProbeFunc func(rate float64) (ProbeResult, error)

// ProbePoint records one step of the search, pass or fail, for the bench
// record's audit trail.
type ProbePoint struct {
	Rate   float64     `json:"rate"`
	Result ProbeResult `json:"result"`
	Pass   bool        `json:"pass"`
}

// SearchOptions bounds the capacity search.
type SearchOptions struct {
	// StartRate is the first offered rate probed (default 10 QPS).
	StartRate float64
	// MaxRate caps the bracketing phase (default 1e6 QPS). Hitting it
	// without a failure marks the result Saturated: the true capacity is at
	// least MaxRate, the generator or the cap ran out first.
	MaxRate float64
	// Tolerance is the relative bracket width at which bisection stops
	// (default 0.05: capacity resolved to within 5%).
	Tolerance float64
}

func (o SearchOptions) withDefaults() SearchOptions {
	if o.StartRate <= 0 {
		o.StartRate = 10
	}
	if o.MaxRate <= 0 {
		o.MaxRate = 1e6
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 0.05
	}
	return o
}

// CapacityResult is the outcome of one capacity search.
type CapacityResult struct {
	// MaxQPS is the highest offered rate that met the SLO (0 if even
	// StartRate failed).
	MaxQPS float64 `json:"max_qps"`
	// AtCapacity is the probe observation at MaxQPS.
	AtCapacity ProbeResult `json:"at_capacity"`
	// Saturated means the search never found a failing rate below MaxRate;
	// MaxQPS is a lower bound, not a knee.
	Saturated bool `json:"saturated"`
	// Probes is every rate tried, in order.
	Probes []ProbePoint `json:"probes"`
}

// SearchCapacity finds the maximum sustainable offered rate meeting the
// SLO with a bracketed search: double the rate from StartRate until a
// probe fails (bracketing the knee between the last pass and the first
// fail), then bisect the bracket until its relative width is inside
// Tolerance. Monotone latency-vs-rate is assumed on the bracket — the
// standard shape for a queueing system — so each probe halves the
// uncertainty.
func SearchCapacity(probe ProbeFunc, slo SLO, opts SearchOptions) (CapacityResult, error) {
	opts = opts.withDefaults()
	if slo.P99Ms <= 0 {
		return CapacityResult{}, fmt.Errorf("load: SLO p99 %v must be > 0", slo.P99Ms)
	}
	res := CapacityResult{}
	try := func(rate float64) (ProbeResult, bool, error) {
		r, err := probe(rate)
		if err != nil {
			return ProbeResult{}, false, fmt.Errorf("load: probe at %.6g QPS: %w", rate, err)
		}
		pass := r.Pass(slo)
		res.Probes = append(res.Probes, ProbePoint{Rate: rate, Result: r, Pass: pass})
		return r, pass, nil
	}

	// Bracket: double until a probe fails or the cap is hit.
	lo, hi := 0.0, 0.0 // lo = best passing rate, hi = lowest failing rate
	var loRes ProbeResult
	rate := opts.StartRate
	for {
		r, pass, err := try(rate)
		if err != nil {
			return res, err
		}
		if !pass {
			hi = rate
			break
		}
		lo, loRes = rate, r
		if rate >= opts.MaxRate {
			res.MaxQPS, res.AtCapacity, res.Saturated = lo, loRes, true
			return res, nil
		}
		rate = math.Min(rate*2, opts.MaxRate)
	}
	if lo == 0 {
		// Even the starting rate missed the SLO: no sustainable capacity in
		// the searched range.
		return res, nil
	}

	// Bisect [lo, hi) until the bracket is narrow relative to its midpoint.
	for (hi-lo)/hi > opts.Tolerance {
		mid := (lo + hi) / 2
		r, pass, err := try(mid)
		if err != nil {
			return res, err
		}
		if pass {
			lo, loRes = mid, r
		} else {
			hi = mid
		}
	}
	res.MaxQPS, res.AtCapacity = lo, loRes
	return res, nil
}

// KnobConfig is one point of the serve-options sweep grid.
type KnobConfig struct {
	Name         string  `json:"name"`
	MaxBatch     int     `json:"max_batch"`
	MaxWaitMs    float64 `json:"max_wait_ms"`
	Workers      int     `json:"workers"`
	ShardWorkers int     `json:"shard_workers"`
}

// MaxWait converts the JSON-friendly milliseconds back to a duration.
func (k KnobConfig) MaxWait() time.Duration {
	return time.Duration(k.MaxWaitMs * float64(time.Millisecond))
}

// ConfigResult pairs a knob configuration with its measured capacity.
type ConfigResult struct {
	Config   KnobConfig     `json:"config"`
	Capacity CapacityResult `json:"capacity"`
}

// ProbeFactory builds a ProbeFunc for one knob configuration (typically:
// construct a fresh server with those options, return a closure that runs
// a fixed-duration measured window at the given rate). The returned
// cleanup tears the server down; it may be nil.
type ProbeFactory func(cfg KnobConfig) (ProbeFunc, func(), error)

// Sweep runs the capacity search once per knob configuration and returns
// results in grid order plus the index of the winner (highest MaxQPS; -1
// if no config sustained any rate). Configurations run sequentially — the
// probes saturate the machine by design, so parallel sweeping would
// measure contention between configs, not capacity.
func Sweep(grid []KnobConfig, factory ProbeFactory, slo SLO, opts SearchOptions, progress func(string)) ([]ConfigResult, int, error) {
	if progress == nil {
		progress = func(string) {}
	}
	results := make([]ConfigResult, 0, len(grid))
	winner := -1
	for i, cfg := range grid {
		probe, cleanup, err := factory(cfg)
		if err != nil {
			return results, winner, fmt.Errorf("load: config %q: %w", cfg.Name, err)
		}
		cap, err := SearchCapacity(probe, slo, opts)
		if cleanup != nil {
			cleanup()
		}
		if err != nil {
			return results, winner, fmt.Errorf("load: config %q: %w", cfg.Name, err)
		}
		results = append(results, ConfigResult{Config: cfg, Capacity: cap})
		if cap.MaxQPS > 0 && (winner == -1 || cap.MaxQPS > results[winner].Capacity.MaxQPS) {
			winner = i
		}
		progress(fmt.Sprintf("%s: max sustainable %.1f QPS (p99 %.2fms at capacity, %d probes)",
			cfg.Name, cap.MaxQPS, cap.AtCapacity.P99Ms, len(cap.Probes)))
	}
	return results, winner, nil
}
