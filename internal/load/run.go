package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"mega/internal/datasets"
	"mega/internal/serve"
)

// Target is the system under load. The two implementations — InProcess
// around a serve.Server and HTTPTarget around a running megaserve — expose
// the same request surface, so a run's accounting is identical either way.
type Target interface {
	Predict(ctx context.Context, inst datasets.Instance) (serve.Prediction, error)
	Update(req serve.UpdateRequest) (serve.UpdateResponse, error)
	// Metrics snapshots the server's counters; the runner diffs snapshots
	// taken around the measured window to reconcile its own accounting.
	Metrics() (serve.Snapshot, error)
}

// InProcess drives a serve.Server directly — no HTTP layer, so client-side
// latency is queueing plus forward pass only, and reconciliation is exact.
type InProcess struct{ S *serve.Server }

func (t InProcess) Predict(ctx context.Context, inst datasets.Instance) (serve.Prediction, error) {
	return t.S.PredictCtx(ctx, inst)
}
func (t InProcess) Update(req serve.UpdateRequest) (serve.UpdateResponse, error) {
	return t.S.Update(req)
}
func (t InProcess) Metrics() (serve.Snapshot, error) {
	return t.S.MetricsSnapshot(false), nil
}

// HTTPTarget drives a served endpoint over its wire format. Requests never
// carry a client-side socket deadline — per-request timeouts travel as
// timeout_ms and come back as typed statuses — so every issued request
// observes exactly one server-accounted response and reconciliation stays
// exact across the wire.
type HTTPTarget struct {
	Base   string // e.g. "http://127.0.0.1:8391"
	Client *http.Client
	// TimeoutMs is forwarded on every /predict body (0 = server default).
	TimeoutMs int
}

func (t HTTPTarget) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func (t HTTPTarget) Predict(ctx context.Context, inst datasets.Instance) (serve.Prediction, error) {
	req := serve.GraphRequest{
		NumNodes:  inst.G.NumNodes(),
		Edges:     edgePairs(inst.G),
		NodeFeats: inst.NodeFeat,
		EdgeFeats: inst.EdgeFeat,
		TimeoutMs: t.TimeoutMs,
	}
	var pred serve.Prediction
	if err := t.post(ctx, "/predict", req, &pred); err != nil {
		return serve.Prediction{}, err
	}
	return pred, nil
}

func (t HTTPTarget) Update(req serve.UpdateRequest) (serve.UpdateResponse, error) {
	var resp serve.UpdateResponse
	if err := t.post(context.Background(), "/update", req, &resp); err != nil {
		return serve.UpdateResponse{}, err
	}
	return resp, nil
}

func (t HTTPTarget) Metrics() (serve.Snapshot, error) {
	resp, err := t.client().Get(t.Base + "/metrics")
	if err != nil {
		return serve.Snapshot{}, err
	}
	defer resp.Body.Close()
	var snap serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return serve.Snapshot{}, fmt.Errorf("load: decode /metrics: %w", err)
	}
	return snap, nil
}

// post sends one JSON request and maps error statuses back onto the
// service's typed error vocabulary, so report classification is uniform
// across in-process and HTTP targets.
func (t HTTPTarget) post(ctx context.Context, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.Base+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		return fmt.Errorf("%w: %s", serve.ErrOverloaded, msg)
	case http.StatusGatewayTimeout:
		return fmt.Errorf("load: %s: %w", msg, context.DeadlineExceeded)
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %s", serve.ErrShuttingDown, msg)
	case http.StatusBadRequest:
		return fmt.Errorf("%w: %s", serve.ErrInvalidInstance, msg)
	default:
		return fmt.Errorf("load: %s %s: HTTP %d: %s", path, t.Base, resp.StatusCode, msg)
	}
}

// RunOptions configures one measured run.
type RunOptions struct {
	// Seed drives the arrival schedule; the workload has its own seed in
	// Mix.
	Seed   int64
	Phases []Phase
	Mix    MixOptions
	// Timeout is the per-request client deadline (0 = none beyond the
	// server's own policy).
	Timeout time.Duration
	// SkipWarm skips pre-warming the hit pool before the measured window
	// (warm-up predictions land outside the before/after metric snapshots
	// either way).
	SkipWarm bool
}

// LatencyStats are exact order statistics over client-observed latencies
// of successful predictions (ceiling-rank quantiles, like the server's
// histogram quantiles, but from raw samples — no bucket rounding).
type LatencyStats struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func latencyStats(samples []time.Duration) LatencyStats {
	s := LatencyStats{Count: len(samples)}
	if len(samples) == 0 {
		return s
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	sum := time.Duration(0)
	for _, d := range samples {
		sum += d
	}
	q := func(p float64) float64 {
		rank := int(float64(len(samples)) * p)
		if float64(rank) < float64(len(samples))*p {
			rank++
		}
		if rank < 1 {
			rank = 1
		}
		if rank > len(samples) {
			rank = len(samples)
		}
		return ms(samples[rank-1])
	}
	s.MeanMs = ms(sum) / float64(len(samples))
	s.P50Ms, s.P95Ms, s.P99Ms = q(0.50), q(0.95), q(0.99)
	s.MaxMs = ms(samples[len(samples)-1])
	return s
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// PhaseReport aggregates one phase (or the whole run, for Report.Total).
type PhaseReport struct {
	Name        string  `json:"name"`
	OfferedQPS  float64 `json:"offered_qps"`
	DurationSec float64 `json:"duration_sec"`

	Sent     int `json:"sent"`
	Predicts int `json:"predicts"`
	Updates  int `json:"updates"`

	OK        int `json:"ok"`
	Degraded  int `json:"degraded"`
	CacheHits int `json:"cache_hits"`

	Shed             int `json:"shed"`
	DeadlineExceeded int `json:"deadline_exceeded"`
	Canceled         int `json:"canceled"`
	Errors           int `json:"errors"`

	UpdateOK     int `json:"update_ok"`
	UpdateErrors int `json:"update_errors"`

	// AchievedQPS is dispatched arrivals over the phase duration; under an
	// on-schedule pacer it tracks OfferedQPS to within pacing jitter.
	AchievedQPS float64 `json:"achieved_qps"`
	// Latency covers successful predictions only (client timestamps).
	Latency LatencyStats `json:"latency"`
}

// Reconciliation cross-checks the client's own accounting against the
// server's /metrics deltas over the measured window. Every field pair must
// agree exactly — a lost or double-counted response shows up here.
type Reconciliation struct {
	PredictsSent  uint64 `json:"predicts_sent"`
	RequestsDelta uint64 `json:"requests_delta"`

	PredictErrors uint64 `json:"predict_errors"` // shed + deadline + canceled + other
	ErrorsDelta   uint64 `json:"errors_delta"`

	Shed      uint64 `json:"shed"`
	ShedDelta uint64 `json:"shed_delta"`

	DeadlineExceeded uint64 `json:"deadline_exceeded"`
	DeadlineDelta    uint64 `json:"deadline_delta"`

	UpdatesSent  uint64 `json:"updates_sent"`
	UpdatesDelta uint64 `json:"updates_delta"`

	UpdateErrors      uint64 `json:"update_errors"`
	UpdateErrorsDelta uint64 `json:"update_errors_delta"`

	Clean      bool     `json:"clean"`
	Mismatches []string `json:"mismatches,omitempty"`
}

func (r *Reconciliation) check(name string, client, server uint64) {
	if client != server {
		r.Mismatches = append(r.Mismatches,
			fmt.Sprintf("%s: client %d != metrics delta %d", name, client, server))
	}
}

// Report is the outcome of one run.
type Report struct {
	Seed           int64          `json:"seed"`
	WallSec        float64        `json:"wall_sec"`
	MaxPacerLagMs  float64        `json:"max_pacer_lag_ms"`
	Phases         []PhaseReport  `json:"phases"`
	Total          PhaseReport    `json:"total"`
	Reconciliation Reconciliation `json:"reconciliation"`
}

// outcome is one dispatched request's client-side record.
type outcome struct {
	phase   int
	kind    ReqKind
	latency time.Duration
	class   outcomeClass
	hit     bool
	degr    bool
}

type outcomeClass int

const (
	classOK outcomeClass = iota
	classShed
	classDeadline
	classCanceled
	classError
	classUpdateOK
	classUpdateError
)

// classify maps a request error onto the service's declared failure
// vocabulary.
func classify(err error) outcomeClass {
	switch {
	case err == nil:
		return classOK
	case errors.Is(err, serve.ErrOverloaded):
		return classShed
	case errors.Is(err, context.DeadlineExceeded):
		return classDeadline
	case errors.Is(err, context.Canceled):
		return classCanceled
	default:
		return classError
	}
}

// Run executes one open-loop measured window against the target: warm the
// hit pool, snapshot /metrics, fire the scheduled arrivals (never waiting
// for responses), wait for every response, snapshot again, aggregate, and
// reconcile. Every dispatched request resolves into exactly one outcome —
// the zero-lost-responses contract the e2e test pins.
func Run(target Target, opts RunOptions) (Report, error) {
	if len(opts.Phases) == 0 {
		return Report{}, errors.New("load: no phases")
	}
	wk, err := NewWorkload(opts.Mix)
	if err != nil {
		return Report{}, err
	}
	arrivals, err := Schedule(opts.Seed, opts.Phases)
	if err != nil {
		return Report{}, err
	}
	plan := wk.Plan(arrivals)

	if !opts.SkipWarm {
		for _, inst := range wk.Pool() {
			if _, err := target.Predict(context.Background(), inst); err != nil {
				return Report{}, fmt.Errorf("load: warm-up predict: %w", err)
			}
		}
	}

	before, err := target.Metrics()
	if err != nil {
		return Report{}, err
	}

	outcomes := make([]outcome, len(plan))
	var wg sync.WaitGroup
	var lagMu sync.Mutex
	maxLag := time.Duration(0)
	t0 := time.Now()
	for i := range plan {
		// Open loop: sleep to the arrival's absolute offset regardless of
		// outstanding responses. A late pacer fires immediately and the
		// lag is reported, never silently absorbed into the offered rate.
		wait := arrivals[i].At - time.Since(t0)
		if wait > 0 {
			time.Sleep(wait)
		} else if -wait > maxLag {
			lagMu.Lock()
			if -wait > maxLag {
				maxLag = -wait
			}
			lagMu.Unlock()
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i] = dispatch(target, plan[i], arrivals[i].Phase, opts.Timeout)
		}(i)
	}
	wg.Wait()
	wall := time.Since(t0)

	after, err := target.Metrics()
	if err != nil {
		return Report{}, err
	}

	rep := aggregate(opts, arrivals, outcomes)
	rep.WallSec = wall.Seconds()
	rep.MaxPacerLagMs = ms(maxLag)
	rep.Reconciliation = reconcile(rep.Total, before, after)
	return rep, nil
}

// dispatch issues one request and records its client-side outcome.
func dispatch(target Target, req Request, phase int, timeout time.Duration) outcome {
	o := outcome{phase: phase, kind: req.Kind}
	start := time.Now()
	switch req.Kind {
	case KindUpdate:
		_, err := target.Update(req.Update)
		o.latency = time.Since(start)
		if err != nil {
			o.class = classUpdateError
		} else {
			o.class = classUpdateOK
		}
	default:
		ctx := context.Background()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		pred, err := target.Predict(ctx, req.Inst)
		o.latency = time.Since(start)
		o.class = classify(err)
		if err == nil {
			o.hit = pred.CacheHit
			o.degr = pred.Degraded
		}
	}
	return o
}

func aggregate(opts RunOptions, arrivals []Arrival, outcomes []outcome) Report {
	rep := Report{Seed: opts.Seed}
	perPhase := make([][]time.Duration, len(opts.Phases))
	reports := make([]PhaseReport, len(opts.Phases))
	for i, ph := range opts.Phases {
		reports[i] = PhaseReport{Name: ph.Name, OfferedQPS: ph.Rate, DurationSec: ph.Duration.Seconds()}
	}
	var totalLat []time.Duration
	total := PhaseReport{Name: "total"}
	for _, ph := range opts.Phases {
		total.DurationSec += ph.Duration.Seconds()
	}
	for _, o := range outcomes {
		pr := &reports[o.phase]
		tally(pr, o)
		tally(&total, o)
		if o.class == classOK {
			perPhase[o.phase] = append(perPhase[o.phase], o.latency)
			totalLat = append(totalLat, o.latency)
		}
	}
	for i := range reports {
		if reports[i].DurationSec > 0 {
			reports[i].AchievedQPS = float64(reports[i].Sent) / reports[i].DurationSec
		}
		reports[i].Latency = latencyStats(perPhase[i])
	}
	if total.DurationSec > 0 {
		total.AchievedQPS = float64(total.Sent) / total.DurationSec
	}
	total.Latency = latencyStats(totalLat)
	if len(arrivals) > 0 {
		total.OfferedQPS = float64(len(arrivals)) / total.DurationSec
	}
	rep.Phases = reports
	rep.Total = total
	return rep
}

func tally(pr *PhaseReport, o outcome) {
	pr.Sent++
	switch o.class {
	case classUpdateOK:
		pr.Updates++
		pr.UpdateOK++
		return
	case classUpdateError:
		pr.Updates++
		pr.UpdateErrors++
		return
	}
	pr.Predicts++
	switch o.class {
	case classOK:
		pr.OK++
		if o.hit {
			pr.CacheHits++
		}
		if o.degr {
			pr.Degraded++
		}
	case classShed:
		pr.Shed++
	case classDeadline:
		pr.DeadlineExceeded++
	case classCanceled:
		pr.Canceled++
	case classError:
		pr.Errors++
	}
}

// reconcile diffs the server's counters across the measured window against
// the client's totals. The serving contract makes every pair exact: each
// predict increments requests exactly once, each failure increments errors
// exactly once on the same path that returns it to this client, and
// updates are accounted separately from predicts.
func reconcile(total PhaseReport, before, after serve.Snapshot) Reconciliation {
	r := Reconciliation{
		PredictsSent:  uint64(total.Predicts),
		RequestsDelta: after.Requests - before.Requests,

		PredictErrors: uint64(total.Shed + total.DeadlineExceeded + total.Canceled + total.Errors),
		ErrorsDelta:   after.Errors - before.Errors,

		Shed:      uint64(total.Shed),
		ShedDelta: after.Shed - before.Shed,

		DeadlineExceeded: uint64(total.DeadlineExceeded),
		DeadlineDelta:    after.DeadlineExceeded - before.DeadlineExceeded,

		UpdatesSent:  uint64(total.Updates),
		UpdatesDelta: after.Updates - before.Updates,

		UpdateErrors:      uint64(total.UpdateErrors),
		UpdateErrorsDelta: after.UpdateErrors - before.UpdateErrors,
	}
	r.check("predicts", r.PredictsSent, r.RequestsDelta)
	r.check("predict errors", r.PredictErrors, r.ErrorsDelta)
	r.check("shed", r.Shed, r.ShedDelta)
	r.check("deadline exceeded", r.DeadlineExceeded, r.DeadlineDelta)
	r.check("updates", r.UpdatesSent, r.UpdatesDelta)
	r.check("update errors", r.UpdateErrors, r.UpdateErrorsDelta)
	r.Clean = len(r.Mismatches) == 0
	return r
}
