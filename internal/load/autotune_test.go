package load

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

// syntheticProbe models a queueing system with a known capacity knee:
// p99 latency follows an M/M/1-style blow-up around cap, and beyond
// shedCap a growing fraction of requests fail. Monotone in rate, so the
// bracketed search's assumption holds and the knee is computable in the
// test.
func syntheticProbe(baseMs, cap float64) ProbeFunc {
	return func(rate float64) (ProbeResult, error) {
		r := ProbeResult{AchievedQPS: rate}
		if rate >= cap {
			r.P99Ms = 1e6 // saturated: latency off the chart
			r.ErrorFraction = 0.5
			return r, nil
		}
		r.P99Ms = baseMs / (1 - rate/cap)
		return r, nil
	}
}

// TestSearchCapacityConvergesOnKnownCurve runs the bracketed search
// against synthetic latency curves whose SLO crossing is known in closed
// form: p99(rate) = base/(1-rate/cap) <= slo  ⇔  rate <= cap*(1-base/slo).
func TestSearchCapacityConvergesOnKnownCurve(t *testing.T) {
	cases := []struct {
		name        string
		baseMs, cap float64
		sloMs       float64
		startRate   float64
	}{
		{"mid-range knee", 2, 1000, 20, 10},
		{"knee below first double", 2, 40, 20, 25},
		{"high capacity", 5, 40000, 50, 10},
		{"tight slo", 8, 500, 10, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			slo := SLO{P99Ms: tc.sloMs, MaxErrorFraction: 0.01}
			tol := 0.02
			res, err := SearchCapacity(syntheticProbe(tc.baseMs, tc.cap), slo,
				SearchOptions{StartRate: tc.startRate, Tolerance: tol})
			if err != nil {
				t.Fatal(err)
			}
			knee := tc.cap * (1 - tc.baseMs/tc.sloMs)
			if res.MaxQPS > knee*(1+1e-9) {
				t.Fatalf("MaxQPS %.2f exceeds the true knee %.2f (reported capacity it cannot sustain)", res.MaxQPS, knee)
			}
			if res.MaxQPS < knee*(1-2*tol) {
				t.Fatalf("MaxQPS %.2f undershoots knee %.2f beyond tolerance", res.MaxQPS, knee)
			}
			if res.Saturated {
				t.Fatal("bounded curve reported as saturated")
			}
			if !res.AtCapacity.Pass(slo) {
				t.Fatalf("AtCapacity %+v does not meet the SLO it was reported under", res.AtCapacity)
			}
			// Bracket-and-bisect is logarithmic: generous cap to catch a
			// linear-scan regression.
			if len(res.Probes) > 40 {
				t.Fatalf("search took %d probes (bracketed search should be logarithmic)", len(res.Probes))
			}
		})
	}
}

// TestSearchCapacityErrorFractionLimited pins the second SLO axis: a
// system whose latency is always fine but which starts failing requests
// past a known rate must be capped by the error fraction, not latency.
func TestSearchCapacityErrorFractionLimited(t *testing.T) {
	const failAt = 300.0
	probe := func(rate float64) (ProbeResult, error) {
		r := ProbeResult{AchievedQPS: rate, P99Ms: 1}
		if rate > failAt {
			r.ErrorFraction = 0.2
		}
		return r, nil
	}
	res, err := SearchCapacity(probe, SLO{P99Ms: 100, MaxErrorFraction: 0.01},
		SearchOptions{StartRate: 10, Tolerance: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxQPS > failAt || res.MaxQPS < failAt*0.95 {
		t.Fatalf("MaxQPS %.2f, want just under the %.0f failure threshold", res.MaxQPS, failAt)
	}
}

// TestSearchCapacityStartRateFails: if even the first probe misses the
// SLO, capacity is 0 — not an error, not a made-up number.
func TestSearchCapacityStartRateFails(t *testing.T) {
	res, err := SearchCapacity(syntheticProbe(30, 1000), SLO{P99Ms: 20, MaxErrorFraction: 0},
		SearchOptions{StartRate: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxQPS != 0 {
		t.Fatalf("MaxQPS = %.2f, want 0 (base latency above SLO at every rate)", res.MaxQPS)
	}
	if len(res.Probes) != 1 {
		t.Fatalf("search kept probing after the floor failed: %d probes", len(res.Probes))
	}
}

// TestSearchCapacitySaturates: a system that never fails up to MaxRate is
// reported as a lower bound, flagged Saturated.
func TestSearchCapacitySaturates(t *testing.T) {
	probe := func(rate float64) (ProbeResult, error) {
		return ProbeResult{AchievedQPS: rate, P99Ms: 1}, nil
	}
	res, err := SearchCapacity(probe, SLO{P99Ms: 20, MaxErrorFraction: 0},
		SearchOptions{StartRate: 10, MaxRate: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatal("search hit MaxRate without a failure but did not flag Saturated")
	}
	if res.MaxQPS != 5000 {
		t.Fatalf("MaxQPS = %.2f, want the 5000 cap", res.MaxQPS)
	}
}

// TestSearchCapacityPropagatesProbeErrors: a broken probe aborts the
// search with context, it does not fabricate a capacity.
func TestSearchCapacityPropagatesProbeErrors(t *testing.T) {
	boom := errors.New("server fell over")
	probe := func(rate float64) (ProbeResult, error) {
		if rate > 50 {
			return ProbeResult{}, boom
		}
		return ProbeResult{AchievedQPS: rate, P99Ms: 1}, nil
	}
	_, err := SearchCapacity(probe, SLO{P99Ms: 20}, SearchOptions{StartRate: 10})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped probe error", err)
	}
}

// TestSweepPicksWinner runs the full sweep over synthetic configs with
// known capacities and checks ordering, winner selection, and cleanup.
func TestSweepPicksWinner(t *testing.T) {
	caps := map[string]float64{"small": 200, "big": 900, "medium": 500}
	grid := []KnobConfig{
		{Name: "small", MaxBatch: 4},
		{Name: "big", MaxBatch: 32},
		{Name: "medium", MaxBatch: 16},
	}
	cleanups := 0
	factory := func(cfg KnobConfig) (ProbeFunc, func(), error) {
		return syntheticProbe(1, caps[cfg.Name]), func() { cleanups++ }, nil
	}
	slo := SLO{P99Ms: 10, MaxErrorFraction: 0.01}
	results, winner, err := Sweep(grid, factory, slo, SearchOptions{StartRate: 10, Tolerance: 0.02}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("sweep returned %d results, want 3", len(results))
	}
	if winner != 1 || results[winner].Config.Name != "big" {
		t.Fatalf("winner = %d (%q), want 1 (big)", winner, results[winner].Config.Name)
	}
	if cleanups != 3 {
		t.Fatalf("%d cleanups ran, want 3 (one per config)", cleanups)
	}
	// Measured capacities sort the way the true ones do.
	for _, r := range results {
		knee := caps[r.Config.Name] * (1 - 1.0/slo.P99Ms)
		if math.Abs(r.Capacity.MaxQPS-knee)/knee > 0.05 {
			t.Errorf("%s: capacity %.1f, want ~%.1f", r.Config.Name, r.Capacity.MaxQPS, knee)
		}
	}
}

// TestSweepFactoryError: a config whose server cannot be built aborts the
// sweep with the config named.
func TestSweepFactoryError(t *testing.T) {
	grid := []KnobConfig{{Name: "ok"}, {Name: "broken"}}
	factory := func(cfg KnobConfig) (ProbeFunc, func(), error) {
		if cfg.Name == "broken" {
			return nil, nil, fmt.Errorf("no such knob")
		}
		return syntheticProbe(1, 100), nil, nil
	}
	results, _, err := Sweep(grid, factory, SLO{P99Ms: 10}, SearchOptions{StartRate: 10}, nil)
	if err == nil {
		t.Fatal("sweep swallowed the factory error")
	}
	if len(results) != 1 {
		t.Fatalf("sweep kept %d results before the failure, want 1", len(results))
	}
}
