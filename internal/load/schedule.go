// Package load is an open-loop load-generation and capacity-search harness
// for the serving stack. It drives a real serve.Server — in-process or over
// HTTP — with a deterministic Poisson arrival process through configurable
// rate ramps and workload mixes (graph sizes, cache hit/miss, /predict vs
// /update), measures latency from client-side timestamps, and reconciles
// its own request accounting against the server's /metrics counters.
//
// Open loop means arrivals are scheduled by the clock, not by responses: a
// slow server does not throttle the generator, it accumulates queueing —
// exactly how overload manifests in production. Closed-loop generators
// (fixed worker count, next request after the last response) hide the
// retrograde part of the latency-throughput curve behind coordinated
// omission; the capacity search below needs to see it.
package load

import (
	"fmt"
	"math/rand"
	"time"
)

// Phase is one segment of an offered-rate ramp: hold Rate arrivals/second
// for Duration.
type Phase struct {
	Name     string
	Rate     float64 // offered arrivals per second; must be > 0
	Duration time.Duration
}

// Arrival is one scheduled request: an offset from the run's start and the
// phase it belongs to.
type Arrival struct {
	At    time.Duration
	Phase int
}

// Schedule materialises the deterministic open-loop arrival process for a
// sequence of phases: within each phase, interarrival gaps are exponential
// with mean 1/Rate (a Poisson process — the memoryless arrivals of
// aggregated independent clients), drawn from a generator seeded with
// seed, so a fixed seed yields a bit-identical arrival timeline on every
// run. Phase boundaries are hard: the first arrival of phase k+1 restarts
// the exponential clock at the boundary, so each phase's offered rate is
// exactly its own.
func Schedule(seed int64, phases []Phase) ([]Arrival, error) {
	for i, ph := range phases {
		if ph.Rate <= 0 {
			return nil, fmt.Errorf("load: phase %d (%q) rate %v must be > 0", i, ph.Name, ph.Rate)
		}
		if ph.Duration <= 0 {
			return nil, fmt.Errorf("load: phase %d (%q) duration %v must be > 0", i, ph.Name, ph.Duration)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	var arrivals []Arrival
	base := time.Duration(0)
	for pi, ph := range phases {
		// Exponential interarrivals accumulated in float seconds; the first
		// gap starts at the phase boundary.
		elapsed := 0.0
		limit := ph.Duration.Seconds()
		for {
			elapsed += rng.ExpFloat64() / ph.Rate
			if elapsed >= limit {
				break
			}
			arrivals = append(arrivals, Arrival{
				At:    base + time.Duration(elapsed*float64(time.Second)),
				Phase: pi,
			})
		}
		base += ph.Duration
	}
	return arrivals, nil
}

// ParsePhases parses a ramp spec of the form "100x2s,250x5s,100x2s": a
// comma-separated list of rate×duration segments. Single-phase shorthand
// "250x10s" works too.
func ParsePhases(spec string) ([]Phase, error) {
	var phases []Phase
	for i, seg := range splitNonEmpty(spec, ',') {
		var rate float64
		var durStr string
		if _, err := fmt.Sscanf(seg, "%gx%s", &rate, &durStr); err != nil {
			return nil, fmt.Errorf("load: phase segment %q (want RATExDURATION, e.g. 100x2s): %v", seg, err)
		}
		dur, err := time.ParseDuration(durStr)
		if err != nil {
			return nil, fmt.Errorf("load: phase segment %q: %v", seg, err)
		}
		phases = append(phases, Phase{Name: fmt.Sprintf("phase%d", i), Rate: rate, Duration: dur})
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("load: empty phase spec %q", spec)
	}
	return phases, nil
}

func splitNonEmpty(s string, sep byte) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == sep {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
