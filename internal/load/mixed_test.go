package load

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"mega/internal/datasets"
	"mega/internal/graph"
	"mega/internal/serve"
)

// clientMirror tracks a mutation session's graph the way the serving
// contract defines the successor: removes compact the edge list preserving
// order, adds append as (min, max). Keeping an independent copy lets the
// test (a) build /predict instances for intermediate states and (b) verify
// the server's published fingerprints against a from-scratch hash.
type clientMirror struct {
	n     int
	edges []graph.Edge
}

func (m *clientMirror) apply(req serve.UpdateRequest) {
	if len(req.Remove) > 0 {
		drop := make(map[[2]int32]int, len(req.Remove))
		for _, r := range req.Remove {
			a, b := r[0], r[1]
			if a > b {
				a, b = b, a
			}
			drop[[2]int32{a, b}]++
		}
		kept := m.edges[:0]
		for _, e := range m.edges {
			a, b := int32(e.Src), int32(e.Dst)
			if a > b {
				a, b = b, a
			}
			key := [2]int32{a, b}
			if drop[key] > 0 {
				drop[key]--
				continue
			}
			kept = append(kept, e)
		}
		m.edges = kept
	}
	for _, a := range req.Add {
		u, v := a[0], a[1]
		if u > v {
			u, v = v, u
		}
		m.edges = append(m.edges, graph.Edge{Src: graph.NodeID(u), Dst: graph.NodeID(v)})
	}
}

func (m *clientMirror) graph() *graph.Graph {
	edges := make([]graph.Edge, len(m.edges))
	copy(edges, m.edges)
	return graph.MustNew(m.n, edges, false)
}

// TestMixedPredictUpdateBitIdentity runs a mutation session with
// predictions issued concurrently against the evolving graph's states and
// pins the serving invariant end to end: an answer served mid-churn from
// incrementally repaired path representations is bit-identical to the
// quiesced re-run — and to a fresh server that never saw a mutation and
// preprocesses the final graph from scratch.
func TestMixedPredictUpdateBitIdentity(t *testing.T) {
	newServer := func() *serve.Server {
		return trainServer(t, serve.Options{MaxBatch: 4, MaxWait: 0, Workers: 2, QueueDepth: 64})
	}
	s := newServer()
	meta := s.Meta()

	rng := rand.New(rand.NewSource(17))
	const n = 24
	mirror := &clientMirror{n: n, edges: randGraph(rng, n, 5).Edges()}
	nodeFeat := make([]int32, n)
	for i := range nodeFeat {
		nodeFeat[i] = int32(rng.Intn(meta.Config.NodeTypes))
	}
	instance := func(g *graph.Graph) datasets.Instance {
		// Edge features must track the mutating edge count; zeros are in
		// any vocabulary and identical across rebuilds.
		return datasets.Instance{G: g, NodeFeat: nodeFeat, EdgeFeat: make([]int32, g.NumEdges())}
	}

	// Seed the session from the base graph, then chain by fingerprint.
	type step struct {
		inst datasets.Instance
		fp   string
	}
	var (
		steps   []step
		preds   []serve.Prediction
		mu      sync.Mutex
		wg      sync.WaitGroup
		predErr error
	)
	fp := ""
	const rounds = 16
	for k := 0; k < rounds; k++ {
		req := serve.UpdateRequest{}
		if k == 0 {
			g := mirror.graph()
			req.Base = &serve.GraphRequest{NumNodes: n, Edges: edgePairs(g)}
		} else {
			req.Fingerprint = fp
		}
		// Alternate inserts and deletes so the path repair sees both splice
		// directions; every third round batches two mutations.
		if k%2 == 0 {
			req.Add = [][2]int32{absentEdge(rng, mirror.graph())}
		} else {
			e := mirror.edges[rng.Intn(len(mirror.edges))]
			a, b := int32(e.Src), int32(e.Dst)
			if a > b {
				a, b = b, a
			}
			req.Remove = [][2]int32{{a, b}}
		}
		if k%3 == 2 {
			req.Add = append(req.Add, absentEdge(rng, func() *graph.Graph {
				m2 := &clientMirror{n: n, edges: append([]graph.Edge(nil), mirror.edges...)}
				m2.apply(serve.UpdateRequest{Remove: req.Remove, Add: req.Add})
				return m2.graph()
			}()))
		}

		resp, err := s.Update(req)
		if err != nil {
			t.Fatalf("round %d: update: %v", k, err)
		}
		mirror.apply(req)
		g := mirror.graph()
		if got := g.Fingerprint().String(); got != resp.Fingerprint {
			t.Fatalf("round %d: successor fingerprint %s, client mirror %s (successor edge-order contract broken)",
				k, resp.Fingerprint, got)
		}
		fp = resp.Fingerprint

		// Predict this state concurrently with the remaining mutation churn.
		st := step{inst: instance(g), fp: fp}
		steps = append(steps, st)
		preds = append(preds, serve.Prediction{})
		idx := len(preds) - 1
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := s.Predict(st.inst)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && predErr == nil {
				predErr = err
			}
			preds[idx] = p
		}()
	}
	wg.Wait()
	if predErr != nil {
		t.Fatalf("mid-churn predict: %v", predErr)
	}

	// Quiesced: re-predict every recorded state on the same server.
	for i, st := range steps {
		again, err := s.Predict(st.inst)
		if err != nil {
			t.Fatalf("quiesced re-predict of step %d: %v", i, err)
		}
		assertBitIdentical(t, "same server, step", i, preds[i].Output, again.Output)
	}

	// A fresh server (same checkpoint pipeline, never mutated) must agree
	// on the final graph: incremental repair vs from-scratch preprocessing.
	final := steps[len(steps)-1]
	fresh := newServer()
	ref, err := fresh.Predict(final.inst)
	if err != nil {
		t.Fatalf("fresh-server predict of final graph: %v", err)
	}
	// Both servers trained the same seed/epochs, so weights are identical;
	// only the path-representation provenance differs.
	assertBitIdentical(t, "fresh server, final state", len(steps)-1,
		preds[len(preds)-1].Output, ref.Output)

	// The published successor snapshot makes the final state a cache hit.
	hit, err := s.Predict(final.inst)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatal("final mutated graph was not served from the published snapshot")
	}
	snap := s.MetricsSnapshot(false)
	if snap.Updates != rounds || snap.UpdateErrors != 0 {
		t.Fatalf("updates = %d (errors %d), want %d clean", snap.Updates, snap.UpdateErrors, rounds)
	}
}

func assertBitIdentical(t *testing.T, what string, idx int, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s %d: output length %d vs %d", what, idx, len(got), len(want))
	}
	for j := range want {
		if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
			t.Fatalf("%s %d: output[%d] = %x, want %x (not bit-identical)",
				what, idx, j, math.Float64bits(got[j]), math.Float64bits(want[j]))
		}
	}
}
