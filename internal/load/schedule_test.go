package load

import (
	"math"
	"testing"
	"time"
)

// TestScheduleDeterministic pins the open-loop generator's core contract:
// a fixed seed yields a bit-identical arrival timeline, and a different
// seed yields a different one.
func TestScheduleDeterministic(t *testing.T) {
	phases := []Phase{
		{Name: "warm", Rate: 100, Duration: 2 * time.Second},
		{Name: "peak", Rate: 400, Duration: 3 * time.Second},
	}
	a, err := Schedule(42, phases)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(42, phases)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different arrival counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := Schedule(43, phases)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical schedules")
		}
	}
}

// TestScheduleOfferedRate checks the realised rate of the synthetic
// timeline (no wall clock involved): over a long window the Poisson
// process must offer within 1% of the configured rate, and interarrival
// gaps must have the exponential distribution's mean.
func TestScheduleOfferedRate(t *testing.T) {
	cases := []struct {
		rate float64
		dur  time.Duration
	}{
		{1000, 200 * time.Second},
		{2000, 100 * time.Second},
		{250, 800 * time.Second},
	}
	for _, tc := range cases {
		arr, err := Schedule(7, []Phase{{Name: "p", Rate: tc.rate, Duration: tc.dur}})
		if err != nil {
			t.Fatal(err)
		}
		offered := float64(len(arr)) / tc.dur.Seconds()
		if rel := math.Abs(offered-tc.rate) / tc.rate; rel > 0.01 {
			t.Errorf("rate %.0f over %v: offered %.1f (%.2f%% off, want <=1%%)",
				tc.rate, tc.dur, offered, rel*100)
		}
		// Mean interarrival gap ≈ 1/rate (same tolerance).
		gaps := 0.0
		for i := 1; i < len(arr); i++ {
			gaps += (arr[i].At - arr[i-1].At).Seconds()
		}
		meanGap := gaps / float64(len(arr)-1)
		if rel := math.Abs(meanGap-1/tc.rate) / (1 / tc.rate); rel > 0.01 {
			t.Errorf("rate %.0f: mean gap %.6fs, want ~%.6fs", tc.rate, meanGap, 1/tc.rate)
		}
	}
}

// TestSchedulePhaseBoundaries pins that arrivals are sorted, stay inside
// their phase's window, and carry the right phase index — phase rates must
// not bleed into each other.
func TestSchedulePhaseBoundaries(t *testing.T) {
	phases := []Phase{
		{Name: "low", Rate: 50, Duration: 4 * time.Second},
		{Name: "high", Rate: 800, Duration: 2 * time.Second},
		{Name: "low2", Rate: 50, Duration: 4 * time.Second},
	}
	arr, err := Schedule(3, phases)
	if err != nil {
		t.Fatal(err)
	}
	bounds := []time.Duration{0, 4 * time.Second, 6 * time.Second, 10 * time.Second}
	counts := make([]int, len(phases))
	for i, a := range arr {
		if i > 0 && a.At < arr[i-1].At {
			t.Fatalf("arrival %d at %v precedes arrival %d at %v", i, a.At, i-1, arr[i-1].At)
		}
		if a.Phase < 0 || a.Phase >= len(phases) {
			t.Fatalf("arrival %d has phase %d", i, a.Phase)
		}
		if a.At < bounds[a.Phase] || a.At >= bounds[a.Phase+1] {
			t.Fatalf("arrival %d at %v outside phase %d window [%v, %v)",
				i, a.At, a.Phase, bounds[a.Phase], bounds[a.Phase+1])
		}
		counts[a.Phase]++
	}
	// Each phase's own offered rate holds to the statistical tolerance of
	// its sample size (5 sigma).
	for i, ph := range phases {
		want := ph.Rate * ph.Duration.Seconds()
		if sigma := math.Sqrt(want); math.Abs(float64(counts[i])-want) > 5*sigma {
			t.Errorf("phase %d: %d arrivals, want %.0f +- %.0f", i, counts[i], want, 5*sigma)
		}
	}
}

func TestScheduleRejectsBadPhases(t *testing.T) {
	for _, phases := range [][]Phase{
		{{Rate: 0, Duration: time.Second}},
		{{Rate: -5, Duration: time.Second}},
		{{Rate: 100, Duration: 0}},
		{{Rate: 100, Duration: -time.Second}},
		{{Rate: 100, Duration: time.Second}, {Rate: 0, Duration: time.Second}},
	} {
		if _, err := Schedule(1, phases); err == nil {
			t.Errorf("Schedule(%+v) = nil error, want rejection", phases)
		}
	}
}

func TestParsePhases(t *testing.T) {
	phases, err := ParsePhases("100x2s,250x5s,100x2s")
	if err != nil {
		t.Fatal(err)
	}
	want := []Phase{
		{Name: "phase0", Rate: 100, Duration: 2 * time.Second},
		{Name: "phase1", Rate: 250, Duration: 5 * time.Second},
		{Name: "phase2", Rate: 100, Duration: 2 * time.Second},
	}
	if len(phases) != len(want) {
		t.Fatalf("parsed %d phases, want %d", len(phases), len(want))
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Errorf("phase %d = %+v, want %+v", i, phases[i], want[i])
		}
	}
	if p, err := ParsePhases("12.5x500ms"); err != nil || p[0].Rate != 12.5 || p[0].Duration != 500*time.Millisecond {
		t.Errorf("fractional-rate shorthand = %+v, %v", p, err)
	}
	for _, bad := range []string{"", ",", "x2s", "100x", "100", "abcx2s", "100xbogus"} {
		if _, err := ParsePhases(bad); err == nil {
			t.Errorf("ParsePhases(%q) = nil error, want rejection", bad)
		}
	}
}
