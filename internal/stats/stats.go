// Package stats provides the statistical utilities the evaluation uses:
// summary statistics over per-graph degree distributions and the two-sample
// Kolmogorov–Smirnov test used in Table III to quantify how similar degree
// distributions are across graphs within a dataset.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmptySample is returned when a statistic is requested over no data.
var ErrEmptySample = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0], nil
	}
	if q >= 1 {
		return sorted[len(sorted)-1], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic
// D = sup_x |F1(x) - F2(x)| between the empirical CDFs of a and b.
func KSStatistic(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmptySample
	}
	sa := make([]float64, len(a))
	copy(sa, a)
	sort.Float64s(sa)
	sb := make([]float64, len(b))
	copy(sb, b)
	sort.Float64s(sb)

	var d float64
	i, j := 0, 0
	na, nb := float64(len(sa)), float64(len(sb))
	for i < len(sa) && j < len(sb) {
		x := math.Min(sa[i], sb[j])
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/na - float64(j)/nb)
		if diff > d {
			d = diff
		}
	}
	return d, nil
}

// KSPValue returns the asymptotic p-value of the two-sample KS statistic d
// for sample sizes n and m, via the Kolmogorov distribution
// Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²) with the standard
// finite-sample correction (Hodges 1958, the paper's reference [38]).
// The returned value is in [0, 1]; values near 1 indicate the two samples
// are consistent with the same distribution — the paper's μ(ε)≈1 reading.
func KSPValue(d float64, n, m int) float64 {
	if n == 0 || m == 0 {
		return 0
	}
	ne := float64(n) * float64(m) / float64(n+m)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*lambda*lambda*float64(k)*float64(k))
		sum += term
		sign = -sign
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Summary bundles the basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmptySample
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    mn,
		Max:    mx,
	}, nil
}

// Histogram counts xs into nBins equal-width bins over [lo, hi]; values
// outside the range are clamped into the edge bins.
func Histogram(xs []float64, lo, hi float64, nBins int) []int {
	counts := make([]int, nBins)
	if nBins == 0 || hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(nBins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nBins {
			b = nBins - 1
		}
		counts[b]++
	}
	return counts
}

// IntsToFloats converts an int slice to float64, a convenience for feeding
// degree sequences into the statistics above.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
