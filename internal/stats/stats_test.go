package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	tests := []struct {
		name           string
		xs             []float64
		mean, vari, sd float64
	}{
		{name: "empty", xs: nil, mean: 0, vari: 0, sd: 0},
		{name: "single", xs: []float64{5}, mean: 5, vari: 0, sd: 0},
		{name: "pair", xs: []float64{2, 4}, mean: 3, vari: 1, sd: 1},
		{name: "uniform", xs: []float64{1, 1, 1, 1}, mean: 1, vari: 0, sd: 0},
		{name: "mixed", xs: []float64{1, 2, 3, 4, 5}, mean: 3, vari: 2, sd: math.Sqrt(2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almostEqual(got, tt.mean, 1e-12) {
				t.Errorf("Mean = %v, want %v", got, tt.mean)
			}
			if got := Variance(tt.xs); !almostEqual(got, tt.vari, 1e-12) {
				t.Errorf("Variance = %v, want %v", got, tt.vari)
			}
			if got := StdDev(tt.xs); !almostEqual(got, tt.sd, 1e-12) {
				t.Errorf("StdDev = %v, want %v", got, tt.sd)
			}
		})
	}
}

func TestMinMaxErrors(t *testing.T) {
	if _, err := Min(nil); err == nil {
		t.Error("Min(nil) should error")
	}
	if _, err := Max(nil); err == nil {
		t.Error("Max(nil) should error")
	}
	xs := []float64{3, -1, 7, 0}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Errorf("Min = %v, %v", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Errorf("Max = %v, %v", mx, err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {-0.5, 1}, {1.5, 4},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tt.q, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile(nil) should error")
	}
}

func TestKSStatisticIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	d, err := KSStatistic(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("KS of identical samples = %v, want 0", d)
	}
}

func TestKSStatisticDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	d, err := KSStatistic(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestKSStatisticKnownValue(t *testing.T) {
	// a = {1,2}, b = {1.5, 2.5}: CDFs differ by at most 0.5.
	d, err := KSStatistic([]float64{1, 2}, []float64{1.5, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 0.5, 1e-12) {
		t.Errorf("KS = %v, want 0.5", d)
	}
}

func TestKSStatisticEmpty(t *testing.T) {
	if _, err := KSStatistic(nil, []float64{1}); err == nil {
		t.Error("want error on empty sample")
	}
}

func TestKSPValueBounds(t *testing.T) {
	if p := KSPValue(0, 100, 100); !almostEqual(p, 1, 1e-6) {
		t.Errorf("p(d=0) = %v, want ~1", p)
	}
	if p := KSPValue(1, 100, 100); p > 1e-6 {
		t.Errorf("p(d=1) = %v, want ~0", p)
	}
	if p := KSPValue(0.5, 0, 10); p != 0 {
		t.Errorf("p with n=0 = %v, want 0", p)
	}
}

func TestKSPValueSameDistributionHigh(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	d, err := KSStatistic(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p := KSPValue(d, len(a), len(b)); p < 0.05 {
		t.Errorf("same-distribution p = %v, want > 0.05 (d=%v)", p, d)
	}
}

func TestKSPValueDifferentDistributionLow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 3
	}
	d, err := KSStatistic(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p := KSPValue(d, len(a), len(b)); p > 0.01 {
		t.Errorf("shifted-distribution p = %v, want < 0.01", p)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("Summarize(nil) should error")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.5, 0.9, 1.0, -5, 5}
	h := Histogram(xs, 0, 1, 2)
	// Bins: [0,0.5) gets {0, 0.1, -5 clamped}; [0.5,1] gets {0.5, 0.9, 1.0 clamped, 5 clamped}.
	if h[0] != 3 || h[1] != 4 {
		t.Errorf("Histogram = %v, want [3 4]", h)
	}
	if h := Histogram(xs, 1, 0, 2); h[0] != 0 || h[1] != 0 {
		t.Errorf("inverted range should give zeros, got %v", h)
	}
	if h := Histogram(xs, 0, 1, 0); len(h) != 0 {
		t.Errorf("zero bins should give empty, got %v", h)
	}
}

func TestIntsToFloats(t *testing.T) {
	got := IntsToFloats([]int{1, -2, 3})
	want := []float64{1, -2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IntsToFloats = %v, want %v", got, want)
			break
		}
	}
}

// Property: KS statistic is symmetric and in [0, 1].
func TestKSSymmetryProperty(t *testing.T) {
	f := func(seed int64, la, lb uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		na, nb := int(la%50)+1, int(lb%50)+1
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = rng.Float64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		d1, err1 := KSStatistic(a, b)
		d2, err2 := KSStatistic(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(d1, d2, 1e-12) && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n%30)+1)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v, err := Quantile(xs, q)
			if err != nil || v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKSStatistic(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KSStatistic(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}
