// Package traverse implements MEGA's preprocessing stage: the objective
// graph traversal (the paper's Algorithm 1) that converts a graph into a
// *path representation* — an ordering of vertices, with bounded revisits,
// such that every edge falls within ω positions of its endpoints' path
// appearances. Downstream, diagonal attention over this path replaces
// irregular gather/scatter with banded dense operations (package band).
//
// An edge {u, v} is *covered* once an appearance of u and an appearance of
// v land within ω path positions of each other — the condition for the edge
// to fall inside the attention band. This matches the paper's revisit lower
// bound Σ⌈dᵢ/ω⌉ − n (§III-B), where each appearance of a vertex can cover
// up to ω incident edges.
//
// The traversal keeps candidate pools in the paper's priority order:
//
//  1. unvisited neighbours of the current vertex with uncovered edges,
//  2. unvisited vertices with an uncovered edge into the trailing window
//     (reached by a virtual transition but covering at least one edge
//     with zero revisits — the mechanism that lets a larger ω approach the
//     lower bound),
//  3. already-visited vertices with remaining uncovered edges (a LIFO
//     stack, so the revisited vertex is the one most correlated with the
//     recently traversed path),
//  4. any remaining unvisited vertex (a pure virtual jump).
//
// Ties inside a pool are broken by the correlate() objective of Eq. (2):
// the candidate with the most neighbours among the trailing ω path entries
// wins, which maximises how much of the local neighbourhood lands inside
// the attention window.
package traverse

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"mega/internal/graph"
	"mega/internal/sparsify"
)

// Options configures a traversal.
type Options struct {
	// Window is ω, the coverage window (and downstream attention band
	// half-width). Zero selects the adaptive policy: ω = max(1,
	// round(mean degree)), per §III-B ("adaptively tuned based on the mean
	// degree of the input processing graph").
	Window int
	// EdgeCoverage is θ ∈ (0, 1]: the traversal may stop once this
	// fraction of edges is covered and all vertices visited. Zero selects
	// 1.0 (cover everything), the setting used for the paper's end-to-end
	// speedup comparisons ("path representations ... encompassed all nodes
	// and edges present in the original graph", §IV-A).
	EdgeCoverage float64
	// DropEdges removes this fraction of edges before traversal (the
	// §IV-B5 "edge dropping" mode; the paper drops 20%). 0 disables
	// dropping.
	DropEdges float64
	// DropStrategy selects which edges go. The zero value is DropRandom
	// (the paper's §IV-B5 setting); DropRedundant drops the edges whose
	// endpoints have the most alternative connections first — the
	// SparseGAT-inspired sparsity exploration of §IV-B8.
	DropStrategy DropStrategy
	// RevisitPolicy selects which pending vertex a revisit returns to
	// when the local pools are exhausted. The zero value is RevisitLIFO,
	// the paper's stack ("the topmost vertex popped from the stack is the
	// most correlated to the recently traversed path").
	RevisitPolicy RevisitPolicy
	// Objective selects the candidate-ranking function. The zero value
	// is ObjectiveCorrelate, the paper's Eq. (2); ObjectiveCoverage ranks
	// by how many *uncovered* edges the candidate would close, a greedy
	// variant that packs more edges per appearance.
	Objective Objective
	// Start pins the starting vertex. Negative selects the default:
	// the highest-degree vertex (ties to the lowest ID), a deterministic
	// choice that tends to anchor the path in a dense cluster.
	Start graph.NodeID
	// Seed seeds edge dropping. Traversal itself is deterministic.
	Seed int64
	// SparsifyFraction enables effective-resistance sparsification
	// (package sparsify) as a second, independent edge filter: the sampler
	// keeps about this fraction of edges, preferring structurally
	// irreplaceable ones. 0 disables; 1 is a validated no-op. Composes
	// with DropEdges: both filters decide against the ORIGINAL edge list
	// and the keep-masks are intersected, so the two samplers never couple
	// and their application order cannot matter.
	SparsifyFraction float64
	// SparsifySeed seeds the sparsifier. It is deliberately separate from
	// Seed, and the sparsify sampler hashes per edge under a distinct salt,
	// so even SparsifySeed == Seed cannot correlate the two filters.
	SparsifySeed int64
}

// DefaultOptions returns the options used by the end-to-end experiments:
// full edge coverage, adaptive window, no dropping.
func DefaultOptions() Options {
	return Options{Window: 0, EdgeCoverage: 1.0, DropEdges: 0, Start: -1}
}

// Result is a computed path representation.
type Result struct {
	// Path is the vertex visiting order; vertices may repeat (revisits).
	Path []graph.NodeID
	// Virtual[i] reports that the transition Path[i-1] -> Path[i] is a
	// virtual edge: the two vertices are not adjacent in the (possibly
	// edge-dropped) input graph. Virtual[0] is always false.
	Virtual []bool
	// Source[i] records which candidate pool produced Path[i]. The trace
	// lets a later run replay this path step-for-step without re-ranking
	// candidates (package dynamic's prefix replay): every pool choice is a
	// pure function of the traversal state except the stack pop, which the
	// trace lets the replayer reproduce exactly.
	Source []StepSource
	// Window is the effective ω used.
	Window int
	// CoveredEdges counts distinct edges whose endpoints came within ω
	// path positions — the edges the attention band will see.
	CoveredEdges int
	// TotalEdges is the number of edges after dropping.
	TotalEdges int
	// DroppedEdges is the number of edges the DropEdges filter rejected
	// (counted against the original edge list, independent of whether the
	// sparsifier would also have rejected them).
	DroppedEdges int
	// SparsifiedEdges is the number of edges the SparsifyFraction filter
	// removed beyond DropEdges: original edges the drop filter kept but
	// the sparsifier rejected. TotalEdges + DroppedEdges + SparsifiedEdges
	// equals the original edge count.
	SparsifiedEdges int
	// SparsifyWeights holds the importance-sampling reweighting (1/pₑ)
	// aligned with Graph's edge list when SparsifyFraction was active, nil
	// otherwise. Downstream consumers that want the Laplacian-preserving
	// estimator scale edge contributions by these.
	SparsifyWeights []float64
	// Revisits is len(Path) minus the number of distinct vertices.
	Revisits int
	// VirtualEdges counts true entries of Virtual.
	VirtualEdges int
	// Graph is the graph the traversal actually walked: the input graph,
	// or the filtered copy when DropEdges/SparsifyFraction were set.
	// Downstream band construction must use this graph so removed edges
	// stay removed.
	Graph *graph.Graph
}

// Len returns the path length (number of vertex appearances).
func (r *Result) Len() int { return len(r.Path) }

// EdgeCoverageRatio returns CoveredEdges / TotalEdges (1 if the graph has
// no edges).
func (r *Result) EdgeCoverageRatio() float64 {
	if r.TotalEdges == 0 {
		return 1
	}
	return float64(r.CoveredEdges) / float64(r.TotalEdges)
}

// Expansion returns len(Path) / n, the memory blow-up of the path
// representation ("this value does not surpass a certain degree", §IV-B6).
func (r *Result) Expansion(n int) float64 {
	if n == 0 {
		return 1
	}
	return float64(len(r.Path)) / float64(n)
}

// StepSource identifies the candidate pool that produced one path step.
type StepSource uint8

// Step sources, in the pool priority order of the decision loop.
const (
	// SourceStart is the pinned or max-degree starting vertex (step 0).
	SourceStart StepSource = iota
	// SourceNeighbor is pool 1: an unvisited neighbour of the current
	// vertex reached through an uncovered edge.
	SourceNeighbor
	// SourceNeighborRevisit is pool 1b: a visited neighbour reached
	// through an uncovered edge.
	SourceNeighborRevisit
	// SourceWindow is pool 2: an unvisited vertex with an uncovered edge
	// into the trailing window.
	SourceWindow
	// SourceStack is pool 3: a revisit popped from the pending stack.
	SourceStack
	// SourceJump is pool 4: a pure virtual jump to an unvisited vertex.
	SourceJump
)

// String implements fmt.Stringer.
func (s StepSource) String() string {
	switch s {
	case SourceStart:
		return "start"
	case SourceNeighbor:
		return "neighbor"
	case SourceNeighborRevisit:
		return "neighbor-revisit"
	case SourceWindow:
		return "window"
	case SourceStack:
		return "stack"
	case SourceJump:
		return "jump"
	default:
		return fmt.Sprintf("StepSource(%d)", int(s))
	}
}

// Errors returned by Run and the Walker.
var (
	ErrEmptyGraph = errors.New("traverse: graph has no vertices")
	ErrBadOptions = errors.New("traverse: invalid options")
	// ErrReplayDiverged is returned by Walker.Replay when a replayed step
	// is inconsistent with the traversal state — the recorded path cannot
	// have been produced by this graph from this prefix.
	ErrReplayDiverged = errors.New("traverse: replay diverged from recorded path")
)

// AdaptiveWindow returns the adaptive ω for a graph: max(1, round(mean
// degree)). Exposed so callers (and the ablation bench) can compare fixed
// and adaptive policies.
func AdaptiveWindow(g *graph.Graph) int {
	w := int(g.MeanDegree() + 0.5)
	if w < 1 {
		w = 1
	}
	return w
}

// RevisitLowerBound returns the paper's optimistic lower bound on the
// number of revisits for window ω: Σ_i ⌈d_i/ω⌉ − n (§III-B "Limiting
// vertex revisit").
func RevisitLowerBound(degrees []int, omega int) int {
	if omega < 1 {
		omega = 1
	}
	total := 0
	for _, d := range degrees {
		if d == 0 {
			total++ // isolated vertices still appear once
			continue
		}
		total += (d + omega - 1) / omega
	}
	return total - len(degrees)
}

// Run executes the objective traversal on g and returns the path
// representation.
func Run(g *graph.Graph, opts Options) (*Result, error) {
	w, err := NewWalker(g, opts)
	if err != nil {
		return nil, err
	}
	return w.Complete(), nil
}

// Walker is a resumable objective traversal: the decision loop of Run,
// split so a caller can first *replay* a known-good path prefix (no
// candidate ranking, O(ω) per step) and then let the decision loop finish
// the suffix. Package dynamic uses this for incremental repair: after an
// edge mutation, the traversal of the new graph provably matches the old
// path up to the first appearance of a mutated endpoint, so that prefix is
// replayed and only the remainder is re-decided.
//
// A Walker is single-use: Replay zero or more steps, then Complete once.
type Walker struct {
	t            *traversal
	work         *graph.Graph
	omega        int
	start        graph.NodeID
	target       int
	dropped      int
	sparsified   int
	sparsWeights []float64
	sources      []StepSource
	done         bool
}

// NewWalker validates options, applies edge dropping, and resolves the
// effective window, start vertex, and coverage target without taking any
// steps.
func NewWalker(g *graph.Graph, opts Options) (*Walker, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	if opts.EdgeCoverage == 0 {
		opts.EdgeCoverage = 1.0
	}
	if opts.EdgeCoverage < 0 || opts.EdgeCoverage > 1 {
		return nil, fmt.Errorf("%w: edge coverage %v", ErrBadOptions, opts.EdgeCoverage)
	}
	if opts.DropEdges < 0 || opts.DropEdges >= 1 {
		if opts.DropEdges != 0 {
			return nil, fmt.Errorf("%w: drop fraction %v", ErrBadOptions, opts.DropEdges)
		}
	}
	if opts.SparsifyFraction < 0 || opts.SparsifyFraction > 1 {
		return nil, fmt.Errorf("%w: sparsify fraction %v", ErrBadOptions, opts.SparsifyFraction)
	}

	work := g
	dropped, sparsified := 0, 0
	var sparsWeights []float64
	dropOn := opts.DropEdges > 0
	sparsOn := opts.SparsifyFraction > 0 && opts.SparsifyFraction < 1
	if dropOn || sparsOn {
		// Both filters decide against the original edge list, then the
		// keep-masks are intersected. Evaluating each filter on g (never on
		// the other's output) is what makes the composition commute
		// bit-for-bit and keeps either filter's random stream fixed when the
		// other is toggled.
		edges := g.Edges()
		keep := make([]bool, len(edges))
		for i := range keep {
			keep[i] = true
		}
		if dropOn {
			for i, k := range dropKeepMask(g, opts.DropEdges, opts.DropStrategy, opts.Seed) {
				if !k {
					keep[i] = false
					dropped++
				}
			}
		}
		var plan *sparsify.Plan
		if sparsOn {
			var err error
			plan, err = sparsify.New(g, sparsify.Options{Fraction: opts.SparsifyFraction, Seed: opts.SparsifySeed})
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadOptions, err)
			}
			for i := range keep {
				if !plan.Keep[i] {
					if keep[i] {
						sparsified++
					}
					keep[i] = false
				}
			}
		}
		kept := make([]graph.Edge, 0, len(edges)-dropped-sparsified)
		for i, e := range edges {
			if keep[i] {
				kept = append(kept, e)
			}
		}
		if sparsOn {
			sparsWeights = make([]float64, 0, len(kept))
			for i := range keep {
				if keep[i] {
					sparsWeights = append(sparsWeights, plan.Weight[i])
				}
			}
		}
		var err error
		work, err = graph.New(g.NumNodes(), kept, g.Directed())
		if err != nil {
			return nil, err
		}
	}

	omega := opts.Window
	if omega <= 0 {
		omega = AdaptiveWindow(work)
	}

	t := newTraversal(work, omega)
	t.revisit = opts.RevisitPolicy
	t.objective = opts.Objective
	start := opts.Start
	if start < 0 {
		start = maxDegreeVertex(work)
	} else if int(start) >= n {
		return nil, fmt.Errorf("%w: start vertex %d out of range", ErrBadOptions, start)
	}
	return &Walker{
		t:            t,
		work:         work,
		omega:        omega,
		start:        start,
		target:       int(opts.EdgeCoverage * float64(work.NumEdges())),
		dropped:      dropped,
		sparsified:   sparsified,
		sparsWeights: sparsWeights,
	}, nil
}

// Window returns the effective band half-width ω.
func (w *Walker) Window() int { return w.omega }

// Start returns the resolved starting vertex.
func (w *Walker) Start() graph.NodeID { return w.start }

// Target returns the edge-coverage target ⌊θ·m⌋.
func (w *Walker) Target() int { return w.target }

// Covered returns the number of edges covered so far.
func (w *Walker) Covered() int { return w.t.covered }

// PathLen returns the number of steps taken so far.
func (w *Walker) PathLen() int { return len(w.t.path) }

// Graph returns the graph being walked (post-drop).
func (w *Walker) Graph() *graph.Graph { return w.work }

// Replay takes one step along a previously recorded path without ranking
// candidates, applying exactly the state updates the decision loop would
// have applied for a step of the given source. The caller must guarantee
// the recorded decision is still valid for this graph; the one invariant
// Replay itself verifies is the stack pop (SourceStack must pop the
// recorded vertex), since that is the only pool choice with side effects.
func (w *Walker) Replay(v graph.NodeID, src StepSource) error {
	if w.done {
		return fmt.Errorf("%w: walker already completed", ErrReplayDiverged)
	}
	if len(w.t.path) == 0 {
		if src != SourceStart || v != w.start {
			return fmt.Errorf("%w: step 0 must be the start vertex %d", ErrReplayDiverged, w.start)
		}
		w.t.visit(v, false)
		w.sources = append(w.sources, SourceStart)
		return nil
	}
	curr := w.t.path[len(w.t.path)-1]
	virtual := false
	switch src {
	case SourceStart:
		return fmt.Errorf("%w: start source after step 0", ErrReplayDiverged)
	case SourceNeighbor, SourceNeighborRevisit:
		// Real-edge transition by construction.
	case SourceStack:
		next, ok := w.t.popStack()
		if !ok || next != v {
			return fmt.Errorf("%w: stack pop produced %v, recorded %v", ErrReplayDiverged, next, v)
		}
		virtual = !w.work.HasEdge(curr, v)
	case SourceWindow, SourceJump:
		virtual = !w.work.HasEdge(curr, v)
	default:
		return fmt.Errorf("%w: unknown step source %d", ErrReplayDiverged, int(src))
	}
	w.t.visit(v, virtual)
	w.sources = append(w.sources, src)
	return nil
}

// Complete runs the decision loop from the current state to termination
// and assembles the Result. If no steps were replayed it visits the start
// vertex first, making NewWalker(g, opts) + Complete() exactly Run(g, opts).
func (w *Walker) Complete() *Result {
	if !w.done {
		if len(w.t.path) == 0 {
			w.t.visit(w.start, false)
			w.sources = append(w.sources, SourceStart)
		}
		w.runLoop()
		w.done = true
	}
	return w.result()
}

func (w *Walker) runLoop() {
	t, work, target := w.t, w.work, w.target
	for {
		nodesDone := len(t.unvisited) == 0
		edgesDone := t.covered >= target
		if nodesDone && edgesDone {
			break
		}
		curr := t.path[len(t.path)-1]
		// Pool 1: unvisited neighbours of curr via uncovered edges.
		if next, ok := t.bestRemainingNeighbor(curr, true); ok {
			t.visit(next, false)
			w.sources = append(w.sources, SourceNeighbor)
			continue
		}
		if !edgesDone {
			// Pool 1b: uncovered edges to visited neighbours (needed to
			// reach θ = 1; see package comment).
			if next, ok := t.bestRemainingNeighbor(curr, false); ok {
				t.visit(next, false)
				w.sources = append(w.sources, SourceNeighborRevisit)
				continue
			}
			// Pool 2: unvisited vertices with an uncovered edge into the
			// trailing window — covers edges without revisits.
			if next, ok := t.bestWindowCoveringUnvisited(); ok {
				t.visit(next, !work.HasEdge(curr, next))
				w.sources = append(w.sources, SourceWindow)
				continue
			}
			// Pool 3: revisit the most recently stacked vertex that still
			// has uncovered incident edges.
			if next, ok := t.popStack(); ok {
				t.visit(next, !work.HasEdge(curr, next))
				w.sources = append(w.sources, SourceStack)
				continue
			}
		}
		// Pool 4: pure virtual jump to any remaining unvisited vertex.
		if !nodesDone {
			next := t.bestUnvisited()
			t.visit(next, !work.HasEdge(curr, next))
			w.sources = append(w.sources, SourceJump)
			continue
		}
		// All vertices visited and no coverable edges remain anywhere:
		// the coverage target is unreachable (rounding on tiny graphs).
		break
	}
}

func (w *Walker) result() *Result {
	t := w.t
	res := &Result{
		Path:            t.path,
		Virtual:         t.virtual,
		Source:          w.sources,
		Window:          w.omega,
		CoveredEdges:    t.covered,
		TotalEdges:      w.work.NumEdges(),
		DroppedEdges:    w.dropped,
		SparsifiedEdges: w.sparsified,
		SparsifyWeights: w.sparsWeights,
		Graph:           w.work,
	}
	seen := make(map[graph.NodeID]bool, w.work.NumNodes())
	for _, v := range t.path {
		seen[v] = true
	}
	res.Revisits = len(t.path) - len(seen)
	for _, vt := range t.virtual {
		if vt {
			res.VirtualEdges++
		}
	}
	return res
}

// traversal is the mutable state of one objective-traversal run.
type traversal struct {
	g     *graph.Graph
	omega int

	// remaining[v] holds v's not-yet-covered incident edges as neighbour
	// IDs; removal is swap-delete, with remIdx tracking positions for
	// O(1) removal of a specific neighbour.
	remaining [][]graph.NodeID
	remIdx    []map[graph.NodeID]int

	unvisited map[graph.NodeID]bool
	stack     []graph.NodeID
	onStack   []bool
	revisit   RevisitPolicy
	objective Objective

	path    []graph.NodeID
	virtual []bool
	// window is a ring of the trailing ω path entries, with inWindow
	// counting occurrences for O(1) membership tests.
	window   []graph.NodeID
	inWindow map[graph.NodeID]int

	covered int
}

func newTraversal(g *graph.Graph, omega int) *traversal {
	n := g.NumNodes()
	t := &traversal{
		g:         g,
		omega:     omega,
		remaining: make([][]graph.NodeID, n),
		remIdx:    make([]map[graph.NodeID]int, n),
		unvisited: make(map[graph.NodeID]bool, n),
		onStack:   make([]bool, n),
		inWindow:  make(map[graph.NodeID]int, omega+1),
	}
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(graph.NodeID(v))
		t.remaining[v] = make([]graph.NodeID, 0, len(nbrs))
		idx := make(map[graph.NodeID]int, len(nbrs))
		for _, u := range nbrs {
			if _, dup := idx[u]; dup {
				continue // parallel edges cover together
			}
			idx[u] = len(t.remaining[v])
			t.remaining[v] = append(t.remaining[v], u)
		}
		t.remIdx[v] = idx
		t.unvisited[graph.NodeID(v)] = true
	}
	return t
}

// visit appends v to the path, covering every uncovered edge between v and
// the vertices currently inside the trailing window, and updates all
// bookkeeping.
func (t *traversal) visit(v graph.NodeID, isVirtual bool) {
	// Cover edges from v into the window *before* v joins it.
	for u := range t.inWindow {
		if t.removeRemaining(v, u) {
			if u != v {
				t.removeRemaining(u, v)
			}
			t.covered++
		}
	}
	t.path = append(t.path, v)
	t.virtual = append(t.virtual, isVirtual)
	delete(t.unvisited, v)
	if len(t.remaining[v]) > 0 && !t.onStack[v] {
		t.stack = append(t.stack, v)
		t.onStack[v] = true
	}
	// Slide the window.
	t.window = append(t.window, v)
	t.inWindow[v]++
	if len(t.window) > t.omega {
		old := t.window[0]
		t.window = t.window[1:]
		t.inWindow[old]--
		if t.inWindow[old] == 0 {
			delete(t.inWindow, old)
		}
	}
}

// removeRemaining deletes u from v's remaining-neighbour set, reporting
// whether it was present.
func (t *traversal) removeRemaining(v, u graph.NodeID) bool {
	idx, ok := t.remIdx[v][u]
	if !ok {
		return false
	}
	rem := t.remaining[v]
	last := len(rem) - 1
	moved := rem[last]
	rem[idx] = moved
	t.remaining[v] = rem[:last]
	if moved != u {
		t.remIdx[v][moved] = idx
	}
	delete(t.remIdx[v], u)
	return true
}

// Objective selects the candidate-ranking function.
type Objective int

// Objectives.
const (
	// ObjectiveCorrelate ranks by Eq. (2): neighbours in the trailing
	// window (the paper's objective).
	ObjectiveCorrelate Objective = iota
	// ObjectiveCoverage ranks by the number of uncovered edges appending
	// the candidate would close — greedy edge packing.
	ObjectiveCoverage
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	if o == ObjectiveCoverage {
		return "coverage"
	}
	return "correlate"
}

// correlate ranks a candidate under the configured objective. The default
// implements Eq. (2): the number of v's original neighbours among the
// trailing ω path entries (counting window multiplicity, so a neighbour
// appearing twice in the window scores twice — it will be attended twice).
// The coverage objective counts only window members whose edge to v is
// still uncovered.
func (t *traversal) correlate(v graph.NodeID) int {
	if t.objective == ObjectiveCoverage {
		score := 0
		for u := range t.inWindow {
			if _, ok := t.remIdx[v][u]; ok {
				score++
			}
		}
		return score
	}
	score := 0
	for _, u := range t.g.Neighbors(v) {
		score += t.inWindow[u]
	}
	return score
}

// bestRemainingNeighbor returns the neighbour of curr with an uncovered
// connecting edge that maximises correlate(), preferring lower IDs on ties
// for determinism. With unvisitedOnly, candidates are restricted to
// unvisited vertices (the paper's first candidate pool).
func (t *traversal) bestRemainingNeighbor(curr graph.NodeID, unvisitedOnly bool) (graph.NodeID, bool) {
	best := graph.NodeID(-1)
	bestScore := -1
	for _, u := range t.remaining[curr] {
		if u == curr {
			continue // self loops cover via the window, not transitions
		}
		if unvisitedOnly && !t.unvisited[u] {
			continue
		}
		s := t.correlate(u)
		if s > bestScore || (s == bestScore && u < best) {
			best, bestScore = u, s
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// bestWindowCoveringUnvisited scans the trailing window for unvisited
// vertices reachable through an uncovered edge and returns the one
// maximising correlate(). Appending such a vertex covers at least one edge
// without any revisit.
func (t *traversal) bestWindowCoveringUnvisited() (graph.NodeID, bool) {
	best := graph.NodeID(-1)
	bestScore := -1
	for w := range t.inWindow {
		for _, u := range t.remaining[w] {
			if !t.unvisited[u] {
				continue
			}
			s := t.correlate(u)
			if s > bestScore || (s == bestScore && u < best) {
				best, bestScore = u, s
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// RevisitPolicy selects the pending-vertex order for revisits.
type RevisitPolicy int

// Revisit policies.
const (
	// RevisitLIFO pops the most recently deferred vertex (the paper's
	// stack design).
	RevisitLIFO RevisitPolicy = iota
	// RevisitFIFO dequeues the oldest deferred vertex — the ablation
	// contrast showing why recency matters for window correlation.
	RevisitFIFO
	// RevisitMostCorrelated scans all pending vertices for the one with
	// the highest correlate() score — slower per step but revisits land
	// closest to their remaining neighbourhoods.
	RevisitMostCorrelated
)

// String implements fmt.Stringer.
func (p RevisitPolicy) String() string {
	switch p {
	case RevisitFIFO:
		return "fifo"
	case RevisitMostCorrelated:
		return "correlated"
	default:
		return "lifo"
	}
}

// popStack discards exhausted pending entries and selects the next revisit
// vertex per the configured policy.
func (t *traversal) popStack() (graph.NodeID, bool) {
	switch t.revisit {
	case RevisitFIFO:
		for len(t.stack) > 0 {
			head := t.stack[0]
			t.stack = t.stack[1:]
			t.onStack[head] = false
			if len(t.remaining[head]) > 0 {
				return head, true
			}
		}
		return 0, false
	case RevisitMostCorrelated:
		bestIdx := -1
		bestScore := -1
		// Compact exhausted entries while scanning.
		live := t.stack[:0]
		for _, v := range t.stack {
			if len(t.remaining[v]) == 0 {
				t.onStack[v] = false
				continue
			}
			live = append(live, v)
			if s := t.correlate(v); s > bestScore {
				bestScore = s
				bestIdx = len(live) - 1
			}
		}
		t.stack = live
		if bestIdx < 0 {
			return 0, false
		}
		v := t.stack[bestIdx]
		t.stack = append(t.stack[:bestIdx], t.stack[bestIdx+1:]...)
		t.onStack[v] = false
		return v, true
	default: // RevisitLIFO
		for len(t.stack) > 0 {
			top := t.stack[len(t.stack)-1]
			t.stack = t.stack[:len(t.stack)-1]
			t.onStack[top] = false
			if len(t.remaining[top]) > 0 {
				return top, true
			}
		}
		return 0, false
	}
}

// bestUnvisited returns the unvisited vertex maximising correlate(),
// breaking ties toward the lowest ID.
func (t *traversal) bestUnvisited() graph.NodeID {
	best := graph.NodeID(-1)
	bestScore := -1
	for v := range t.unvisited {
		s := t.correlate(v)
		if s > bestScore || (s == bestScore && (best < 0 || v < best)) {
			best, bestScore = v, s
		}
	}
	return best
}

// maxDegreeVertex returns the highest-degree vertex, lowest ID on ties.
func maxDegreeVertex(g *graph.Graph) graph.NodeID {
	best := graph.NodeID(0)
	bestDeg := -1
	for v := 0; v < g.NumNodes(); v++ {
		d := g.Degree(graph.NodeID(v))
		if d > bestDeg {
			best, bestDeg = graph.NodeID(v), d
		}
	}
	return best
}

// DropStrategy selects how DropEdges chooses victims.
type DropStrategy int

// Drop strategies.
const (
	// DropRandom removes a uniform random fraction (DropEdge-style).
	DropRandom DropStrategy = iota
	// DropRedundant removes the highest degree-product edges first: both
	// endpoints keep many alternative connections, so the structural loss
	// is smallest — the SparseGAT-inspired heuristic. Ties and the exact
	// count are randomised by Seed.
	DropRedundant
)

// String implements fmt.Stringer.
func (s DropStrategy) String() string {
	if s == DropRedundant {
		return "redundant"
	}
	return "random"
}

// dropKeepMask computes the DropEdges filter's per-edge keep decisions
// over g's original edge list (true = survives). Returning a mask rather
// than a rebuilt graph lets NewWalker intersect this filter with the
// sparsifier's: each decides against the original list, so neither can
// perturb the other's stream. The DropRandom stream (one sequential
// rng.Float64 per original edge, seeded seed^0xD20B) is the pre-existing
// pinned behaviour and must not change.
func dropKeepMask(g *graph.Graph, frac float64, strategy DropStrategy, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed ^ 0xD20B))
	edges := g.Edges()
	keep := make([]bool, len(edges))
	switch strategy {
	case DropRedundant:
		target := int(frac * float64(len(edges)))
		// Score = deg(u)*deg(v) with a small random perturbation so
		// equal-score edges drop in varying order across seeds.
		type scored struct {
			idx   int
			score float64
		}
		ranked := make([]scored, len(edges))
		for i, e := range edges {
			ranked[i] = scored{
				idx:   i,
				score: float64(g.Degree(e.Src)*g.Degree(e.Dst)) * (1 + 0.01*rng.Float64()),
			}
		}
		sort.Slice(ranked, func(a, b int) bool { return ranked[a].score > ranked[b].score })
		for _, s := range ranked[target:] {
			keep[s.idx] = true
		}
	default:
		for i := range edges {
			if rng.Float64() >= frac {
				keep[i] = true
			}
		}
	}
	return keep
}
