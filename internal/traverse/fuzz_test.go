package traverse

import (
	"math/rand"
	"testing"

	"mega/internal/graph"
)

// FuzzTraverse drives the objective traversal over fuzzer-chosen random
// topologies, windows, and policies, and checks the structural invariants
// every full-coverage path representation must satisfy:
//
//   - every vertex appears in the path, every entry is in range;
//   - with θ = 1 every edge is covered (EdgeCoverageRatio exactly 1);
//   - Revisits and VirtualEdges agree with the path itself;
//   - the revisit count respects the two-sided coverage lower bound
//     Σ⌈d_i/(2ω)⌉ − n: one appearance can band-cover at most ω preceding
//     plus ω following neighbours, so full coverage forces at least that
//     many appearances. (The paper's §III-B figure Σ⌈d_i/ω⌉ − n counts
//     one-sided coverage and is routinely beaten by real paths.)
func FuzzTraverse(f *testing.F) {
	f.Add(uint8(10), uint16(15), int64(1), uint8(0), uint8(0))
	f.Add(uint8(5), uint16(10), int64(2), uint8(1), uint8(1))
	f.Add(uint8(30), uint16(200), int64(3), uint8(3), uint8(2))
	f.Add(uint8(1), uint16(0), int64(4), uint8(2), uint8(3))
	f.Add(uint8(17), uint16(40), int64(-5), uint8(5), uint8(4))

	f.Fuzz(func(t *testing.T, nRaw uint8, mRaw uint16, seed int64, wRaw, policyRaw uint8) {
		n := int(nRaw)%40 + 1
		maxM := n * (n - 1) / 2
		m := 0
		if maxM > 0 {
			m = int(mRaw) % (maxM + 1)
		}
		g := graph.ErdosRenyiM(rand.New(rand.NewSource(seed)), n, m)
		opts := Options{
			Window:        int(wRaw) % 6, // 0 selects the adaptive window
			EdgeCoverage:  1,
			Start:         -1,
			RevisitPolicy: RevisitPolicy(int(policyRaw) % 3),
			Objective:     Objective(int(policyRaw/3) % 2),
		}
		res, err := Run(g, opts)
		if err != nil {
			t.Fatalf("n=%d m=%d: %v", n, m, err)
		}

		if len(res.Virtual) != len(res.Path) {
			t.Fatalf("virtual len %d != path len %d", len(res.Virtual), len(res.Path))
		}
		seen := make(map[graph.NodeID]bool, n)
		virt := 0
		for i, v := range res.Path {
			if int(v) < 0 || int(v) >= n {
				t.Fatalf("path[%d] = %d out of [0,%d)", i, v, n)
			}
			seen[v] = true
			if res.Virtual[i] {
				virt++
			}
		}
		if len(seen) != n {
			t.Fatalf("path covers %d of %d vertices", len(seen), n)
		}
		if len(res.Virtual) > 0 && res.Virtual[0] {
			t.Fatal("Virtual[0] must be false")
		}
		if virt != res.VirtualEdges {
			t.Fatalf("VirtualEdges = %d, path has %d", res.VirtualEdges, virt)
		}
		if got := len(res.Path) - len(seen); got != res.Revisits {
			t.Fatalf("Revisits = %d, path implies %d", res.Revisits, got)
		}

		if res.Window < 1 {
			t.Fatalf("effective window %d < 1", res.Window)
		}
		if res.TotalEdges != g.NumEdges() {
			t.Fatalf("TotalEdges = %d, graph has %d", res.TotalEdges, g.NumEdges())
		}
		if res.CoveredEdges > res.TotalEdges {
			t.Fatalf("covered %d > total %d", res.CoveredEdges, res.TotalEdges)
		}
		if res.EdgeCoverageRatio() != 1 {
			t.Fatalf("θ=1 left coverage at %v (%d/%d)",
				res.EdgeCoverageRatio(), res.CoveredEdges, res.TotalEdges)
		}

		if lb := RevisitLowerBound(g.Degrees(), 2*res.Window); res.Revisits < lb {
			t.Fatalf("revisits %d below two-sided lower bound %d (ω=%d)", res.Revisits, lb, res.Window)
		}
	})
}
