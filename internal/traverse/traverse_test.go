package traverse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mega/internal/graph"
)

// figure3Graph is the paper's 7-node demonstration graph (Figure 3a shape).
func figure3Graph(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.MustNew(7, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 5}, {Src: 1, Dst: 2}, {Src: 1, Dst: 3},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 4}, {Src: 3, Dst: 6}, {Src: 5, Dst: 6},
		{Src: 4, Dst: 6},
	}, false)
}

// checkInvariants validates the structural invariants every traversal must
// satisfy.
func checkInvariants(t *testing.T, g *graph.Graph, res *Result, wantFullNodes bool) {
	t.Helper()
	if len(res.Path) == 0 {
		t.Fatal("empty path")
	}
	if len(res.Virtual) != len(res.Path) {
		t.Fatalf("Virtual len %d != Path len %d", len(res.Virtual), len(res.Path))
	}
	if res.Virtual[0] {
		t.Error("Virtual[0] must be false")
	}
	// Non-virtual transitions must be real edges of the walked graph.
	for i := 1; i < len(res.Path); i++ {
		u, v := res.Path[i-1], res.Path[i]
		if !res.Virtual[i] && !res.Graph.HasEdge(u, v) {
			t.Errorf("step %d: (%d,%d) marked real but not an edge", i, u, v)
		}
		if res.Virtual[i] && res.Graph.HasEdge(u, v) {
			t.Errorf("step %d: (%d,%d) marked virtual but is an edge", i, u, v)
		}
	}
	if wantFullNodes {
		seen := make(map[graph.NodeID]bool)
		for _, v := range res.Path {
			seen[v] = true
		}
		if len(seen) != g.NumNodes() {
			t.Errorf("path visits %d of %d vertices", len(seen), g.NumNodes())
		}
	}
	if res.Revisits != len(res.Path)-countDistinct(res.Path) {
		t.Errorf("Revisits = %d, want %d", res.Revisits, len(res.Path)-countDistinct(res.Path))
	}
	nVirt := 0
	for _, v := range res.Virtual {
		if v {
			nVirt++
		}
	}
	if res.VirtualEdges != nVirt {
		t.Errorf("VirtualEdges = %d, want %d", res.VirtualEdges, nVirt)
	}
}

func countDistinct(path []graph.NodeID) int {
	seen := make(map[graph.NodeID]bool, len(path))
	for _, v := range path {
		seen[v] = true
	}
	return len(seen)
}

func TestRunEmptyGraph(t *testing.T) {
	g := graph.MustNew(0, nil, false)
	if _, err := Run(g, DefaultOptions()); err == nil {
		t.Error("empty graph should error")
	}
}

func TestRunSingleVertex(t *testing.T) {
	g := graph.MustNew(1, nil, false)
	res, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Path) != 1 || res.Path[0] != 0 {
		t.Errorf("Path = %v", res.Path)
	}
	if res.EdgeCoverageRatio() != 1 {
		t.Errorf("coverage = %v, want 1 for edgeless graph", res.EdgeCoverageRatio())
	}
}

func TestRunPaperGraphFullCoverage(t *testing.T) {
	g := figure3Graph(t)
	res, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, g, res, true)
	if res.EdgeCoverageRatio() != 1 {
		t.Errorf("edge coverage = %v, want 1 (θ=1)", res.EdgeCoverageRatio())
	}
	if res.CoveredEdges != g.NumEdges() {
		t.Errorf("covered %d of %d edges", res.CoveredEdges, g.NumEdges())
	}
}

func TestRunPathGraphNoRevisits(t *testing.T) {
	// A path graph has an Eulerian path: the traversal should walk it
	// with zero revisits and zero virtual edges.
	g := graph.Path(10)
	res, err := Run(g, Options{Window: 1, EdgeCoverage: 1, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, g, res, true)
	if res.Revisits != 0 {
		t.Errorf("path graph revisits = %d, want 0", res.Revisits)
	}
	if res.VirtualEdges != 0 {
		t.Errorf("path graph virtual edges = %d, want 0", res.VirtualEdges)
	}
	if len(res.Path) != 10 {
		t.Errorf("path length = %d, want 10", len(res.Path))
	}
}

func TestRunCycleGraph(t *testing.T) {
	g := graph.Cycle(8)
	res, err := Run(g, Options{Window: 1, EdgeCoverage: 1, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, g, res, true)
	// A cycle is Eulerian: 8 edges walkable with one revisit (returning
	// to the start) and no virtual edges.
	if res.EdgeCoverageRatio() != 1 {
		t.Errorf("coverage = %v", res.EdgeCoverageRatio())
	}
	if res.VirtualEdges != 0 {
		t.Errorf("cycle virtual edges = %d, want 0", res.VirtualEdges)
	}
}

func TestRunDisconnectedGraphUsesVirtualEdges(t *testing.T) {
	// Two disjoint triangles: a virtual jump is unavoidable.
	g := graph.MustNew(6, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 5}, {Src: 5, Dst: 3},
	}, false)
	res, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, g, res, true)
	if res.VirtualEdges == 0 {
		t.Error("disconnected graph must use at least one virtual edge")
	}
	if res.EdgeCoverageRatio() != 1 {
		t.Errorf("coverage = %v, want 1", res.EdgeCoverageRatio())
	}
}

func TestRunStarGraphRevisitsHub(t *testing.T) {
	// Star K_{1,5}: the hub must be revisited to walk every spoke.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 0, Dst: 4}, {Src: 0, Dst: 5}}
	g := graph.MustNew(6, edges, false)
	res, err := Run(g, Options{Window: 1, EdgeCoverage: 1, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, g, res, true)
	if res.EdgeCoverageRatio() != 1 {
		t.Errorf("coverage = %v, want 1", res.EdgeCoverageRatio())
	}
	hubAppearances := 0
	for _, v := range res.Path {
		if v == 0 {
			hubAppearances++
		}
	}
	if hubAppearances < 3 {
		t.Errorf("hub appears %d times; star needs >= 3 with ω=1", hubAppearances)
	}
	// The lower bound for the star with ω=1: ⌈5/1⌉ + 5·⌈1/1⌉ - 6 = 4.
	if lb := RevisitLowerBound(g.Degrees(), 1); lb != 4 {
		t.Errorf("RevisitLowerBound = %d, want 4", lb)
	}
}

func TestPartialEdgeCoverageStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.ErdosRenyiM(rng, 40, 200)
	full, err := Run(g, Options{Window: 2, EdgeCoverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	half, err := Run(g, Options{Window: 2, EdgeCoverage: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, g, half, true)
	if half.EdgeCoverageRatio() < 0.5 {
		t.Errorf("coverage = %v, want >= 0.5", half.EdgeCoverageRatio())
	}
	if len(half.Path) >= len(full.Path) {
		t.Errorf("partial coverage path (%d) should be shorter than full (%d)", len(half.Path), len(full.Path))
	}
}

func TestEdgeDropping(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.ErdosRenyiM(rng, 30, 120)
	res, err := Run(g, Options{Window: 2, EdgeCoverage: 1, DropEdges: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, g, res, true)
	if res.DroppedEdges == 0 {
		t.Error("expected some dropped edges at 20%")
	}
	if res.TotalEdges != g.NumEdges()-res.DroppedEdges {
		t.Errorf("TotalEdges = %d, want %d", res.TotalEdges, g.NumEdges()-res.DroppedEdges)
	}
	if res.Graph.NumEdges() != res.TotalEdges {
		t.Errorf("result graph has %d edges, want %d", res.Graph.NumEdges(), res.TotalEdges)
	}
}

func TestEdgeDroppingDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.ErdosRenyiM(rng, 20, 60)
	a, err := Run(g, Options{Window: 1, EdgeCoverage: 1, DropEdges: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, Options{Window: 1, EdgeCoverage: 1, DropEdges: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.DroppedEdges != b.DroppedEdges || len(a.Path) != len(b.Path) {
		t.Error("same seed should give identical traversals")
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			t.Fatalf("paths diverge at %d", i)
		}
	}
}

func TestInvalidOptions(t *testing.T) {
	g := graph.Cycle(4)
	tests := []struct {
		name string
		opts Options
	}{
		{name: "negative coverage", opts: Options{EdgeCoverage: -0.1}},
		{name: "coverage > 1", opts: Options{EdgeCoverage: 1.5}},
		{name: "drop = 1", opts: Options{EdgeCoverage: 1, DropEdges: 1}},
		{name: "negative drop", opts: Options{EdgeCoverage: 1, DropEdges: -0.2}},
		{name: "start out of range", opts: Options{EdgeCoverage: 1, Start: 99}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(g, tt.opts); err == nil {
				t.Errorf("Run(%+v) should error", tt.opts)
			}
		})
	}
}

func TestAdaptiveWindow(t *testing.T) {
	if w := AdaptiveWindow(graph.Cycle(10)); w != 2 {
		t.Errorf("cycle adaptive window = %d, want 2", w)
	}
	if w := AdaptiveWindow(graph.MustNew(3, nil, false)); w != 1 {
		t.Errorf("edgeless adaptive window = %d, want 1", w)
	}
	if w := AdaptiveWindow(graph.Complete(9)); w != 8 {
		t.Errorf("K9 adaptive window = %d, want 8", w)
	}
}

func TestAdaptiveWindowUsedWhenZero(t *testing.T) {
	g := graph.Complete(7)
	res, err := Run(g, Options{Window: 0, EdgeCoverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Window != 6 {
		t.Errorf("effective window = %d, want 6 (adaptive on K7)", res.Window)
	}
}

func TestRevisitLowerBound(t *testing.T) {
	tests := []struct {
		name    string
		degrees []int
		omega   int
		want    int
	}{
		{name: "path graph w1", degrees: []int{1, 2, 2, 1}, omega: 1, want: 2},
		{name: "path graph w2", degrees: []int{1, 2, 2, 1}, omega: 2, want: 0},
		{name: "isolated vertices", degrees: []int{0, 0}, omega: 1, want: 0},
		{name: "hub w1", degrees: []int{5, 1, 1, 1, 1, 1}, omega: 1, want: 4},
		{name: "hub w5", degrees: []int{5, 1, 1, 1, 1, 1}, omega: 5, want: 0},
		{name: "omega clamped", degrees: []int{3}, omega: 0, want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := RevisitLowerBound(tt.degrees, tt.omega); got != tt.want {
				t.Errorf("RevisitLowerBound(%v, %d) = %d, want %d", tt.degrees, tt.omega, got, tt.want)
			}
		})
	}
}

func TestLargerWindowReducesRevisits(t *testing.T) {
	// The §III-B adaptivity claim: enlarging ω cuts revisits on graphs
	// with high-degree vertices.
	rng := rand.New(rand.NewSource(11))
	g := graph.BarabasiAlbert(rng, 60, 3)
	r1, err := Run(g, Options{Window: 1, EdgeCoverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(g, Options{Window: 4, EdgeCoverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Revisits > r1.Revisits {
		t.Errorf("ω=4 revisits (%d) should not exceed ω=1 revisits (%d)", r4.Revisits, r1.Revisits)
	}
}

func TestExpansionBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := graph.ErdosRenyiM(rng, 50, 150)
	res, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Worst case appearance count is bounded by one per walked edge plus
	// jumps; in practice the adaptive window keeps expansion modest.
	if exp := res.Expansion(g.NumNodes()); exp > 3.5 {
		t.Errorf("expansion = %v, unexpectedly large", exp)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g := figure3Graph(t)
	a, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Path) != len(b.Path) {
		t.Fatal("nondeterministic path length")
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			t.Fatalf("paths diverge at %d: %v vs %v", i, a.Path, b.Path)
		}
	}
}

// Property: every traversal visits all vertices, covers the requested edge
// fraction, and has consistent virtual-edge marking.
func TestTraversalInvariantsProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8, wRaw uint8) bool {
		n := int(nRaw%30) + 2
		maxM := n * (n - 1) / 2
		m := int(mRaw) % (maxM + 1)
		w := int(wRaw%4) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.ErdosRenyiM(rng, n, m)
		res, err := Run(g, Options{Window: w, EdgeCoverage: 1})
		if err != nil {
			return false
		}
		if res.Graph == nil || res.EdgeCoverageRatio() < 1 {
			return false
		}
		seen := make(map[graph.NodeID]bool)
		for i, v := range res.Path {
			seen[v] = true
			if i > 0 {
				real := res.Graph.HasEdge(res.Path[i-1], v)
				if real == res.Virtual[i] {
					return false
				}
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: walked edges never exceed total edges, and revisits are
// non-negative and consistent.
func TestTraversalCountsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%25) + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.ErdosRenyi(rng, n, 0.25)
		res, err := Run(g, DefaultOptions())
		if err != nil {
			return false
		}
		return res.CoveredEdges <= res.TotalEdges && res.Revisits >= 0 &&
			len(res.Path) >= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRunMolecular(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ErdosRenyiM(rng, 25, 28)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunLarge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.BarabasiAlbert(rng, 2000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDropRedundantTargetsHighDegreeEdges(t *testing.T) {
	// Hub-and-spoke plus a pendant chain: redundant dropping must prefer
	// edges between high-degree vertices over the pendant edges.
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 1, Dst: 2},
		{Src: 1, Dst: 3}, {Src: 2, Dst: 3}, // K4 core
		{Src: 3, Dst: 4}, {Src: 4, Dst: 5}, // pendant chain
	}
	g := graph.MustNew(6, edges, false)
	res, err := Run(g, Options{
		Window: 2, EdgeCoverage: 1,
		DropEdges: 0.25, DropStrategy: DropRedundant, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedEdges != 2 {
		t.Fatalf("dropped = %d, want 2 (25%% of 8)", res.DroppedEdges)
	}
	// The pendant edges (4,5) and (3,4) have the lowest degree products
	// and must survive.
	if !res.Graph.HasEdge(4, 5) || !res.Graph.HasEdge(3, 4) {
		t.Error("redundant dropping removed a pendant edge")
	}
	checkInvariants(t, g, res, true)
}

func TestDropStrategiesDiffer(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.BarabasiAlbert(rng, 60, 3)
	random, err := Run(g, Options{EdgeCoverage: 1, DropEdges: 0.3, DropStrategy: DropRandom, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	redundant, err := Run(g, Options{EdgeCoverage: 1, DropEdges: 0.3, DropStrategy: DropRedundant, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Redundant dropping trims hubs, so the surviving graph's max degree
	// must not exceed random dropping's.
	maxDeg := func(g *graph.Graph) int {
		m := 0
		for _, d := range g.Degrees() {
			if d > m {
				m = d
			}
		}
		return m
	}
	if maxDeg(redundant.Graph) > maxDeg(random.Graph) {
		t.Errorf("redundant max degree %d should be <= random %d",
			maxDeg(redundant.Graph), maxDeg(random.Graph))
	}
}

func TestDropStrategyString(t *testing.T) {
	if DropRandom.String() != "random" || DropRedundant.String() != "redundant" {
		t.Error("drop strategy strings wrong")
	}
}

func TestRevisitPoliciesAllValid(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graph.BarabasiAlbert(rng, 80, 3)
	for _, p := range []RevisitPolicy{RevisitLIFO, RevisitFIFO, RevisitMostCorrelated} {
		t.Run(p.String(), func(t *testing.T) {
			res, err := Run(g, Options{EdgeCoverage: 1, RevisitPolicy: p, Start: -1})
			if err != nil {
				t.Fatal(err)
			}
			checkInvariants(t, g, res, true)
			if res.EdgeCoverageRatio() != 1 {
				t.Errorf("%s coverage = %v, want 1", p, res.EdgeCoverageRatio())
			}
		})
	}
}

func TestRevisitPolicyString(t *testing.T) {
	if RevisitLIFO.String() != "lifo" || RevisitFIFO.String() != "fifo" || RevisitMostCorrelated.String() != "correlated" {
		t.Error("revisit policy strings wrong")
	}
}

// BenchmarkAblationRevisitPolicy compares revisit counts across policies on
// a power-law graph — the DESIGN.md "LIFO stack vs FIFO queue" ablation.
func BenchmarkAblationRevisitPolicy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.BarabasiAlbert(rng, 1000, 3)
	for _, p := range []RevisitPolicy{RevisitLIFO, RevisitFIFO, RevisitMostCorrelated} {
		b.Run(p.String(), func(b *testing.B) {
			var revisits, pathLen int
			for i := 0; i < b.N; i++ {
				res, err := Run(g, Options{EdgeCoverage: 1, RevisitPolicy: p, Start: -1})
				if err != nil {
					b.Fatal(err)
				}
				revisits = res.Revisits
				pathLen = res.Len()
			}
			b.ReportMetric(float64(revisits), "revisits")
			b.ReportMetric(float64(pathLen), "pathlen")
		})
	}
}

func TestObjectiveCoverageValidAndTighter(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.BarabasiAlbert(rng, 200, 3)
	base, err := Run(g, Options{EdgeCoverage: 1, Start: -1})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Run(g, Options{EdgeCoverage: 1, Objective: ObjectiveCoverage, Start: -1})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, g, greedy, true)
	if greedy.EdgeCoverageRatio() != 1 {
		t.Fatalf("greedy coverage = %v", greedy.EdgeCoverageRatio())
	}
	t.Logf("expansion: correlate %.2f vs coverage %.2f",
		base.Expansion(g.NumNodes()), greedy.Expansion(g.NumNodes()))
}

func TestObjectiveString(t *testing.T) {
	if ObjectiveCorrelate.String() != "correlate" || ObjectiveCoverage.String() != "coverage" {
		t.Error("objective strings wrong")
	}
}

// BenchmarkAblationObjective contrasts the paper's correlation objective
// with greedy uncovered-edge packing.
func BenchmarkAblationObjective(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.BarabasiAlbert(rng, 1000, 3)
	for _, o := range []Objective{ObjectiveCorrelate, ObjectiveCoverage} {
		b.Run(o.String(), func(b *testing.B) {
			var revisits int
			for i := 0; i < b.N; i++ {
				res, err := Run(g, Options{EdgeCoverage: 1, Objective: o, Start: -1})
				if err != nil {
					b.Fatal(err)
				}
				revisits = res.Revisits
			}
			b.ReportMetric(float64(revisits), "revisits")
		})
	}
}
