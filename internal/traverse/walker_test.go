package traverse

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"mega/internal/graph"
)

// TestWalkerReplayReproducesRun replays a full recorded path on a fresh
// walker over the same graph: the state updates must reproduce the original
// result exactly, including coverage counts and virtual flags.
func TestWalkerReplayReproducesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		g := graph.ErdosRenyiM(rng, 15+rng.Intn(15), 30+rng.Intn(30))
		opts := DefaultOptions()
		ref, err := Run(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(ref.Source) != len(ref.Path) {
			t.Fatalf("source trace length %d != path length %d", len(ref.Source), len(ref.Path))
		}
		w, err := NewWalker(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range ref.Path {
			if err := w.Replay(v, ref.Source[i]); err != nil {
				t.Fatalf("trial %d: replay step %d: %v", trial, i, err)
			}
		}
		got := w.Complete()
		if !reflect.DeepEqual(got.Path, ref.Path) || !reflect.DeepEqual(got.Virtual, ref.Virtual) ||
			!reflect.DeepEqual(got.Source, ref.Source) {
			t.Fatalf("trial %d: full replay diverged from the recorded run", trial)
		}
		if got.CoveredEdges != ref.CoveredEdges || got.Revisits != ref.Revisits ||
			got.VirtualEdges != ref.VirtualEdges {
			t.Fatalf("trial %d: replay stats differ: %+v vs %+v", trial, got, ref)
		}
	}
}

// TestWalkerPartialReplayThenComplete replays only a prefix and lets the
// decision loop finish; on an unchanged graph the outcome must still equal
// the full run.
func TestWalkerPartialReplayThenComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.BarabasiAlbert(rng, 60, 2)
	opts := DefaultOptions()
	ref, err := Run(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0, 0.25, 0.5, 0.9} {
		p := int(frac * float64(len(ref.Path)))
		w, err := NewWalker(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < p; i++ {
			if err := w.Replay(ref.Path[i], ref.Source[i]); err != nil {
				t.Fatalf("prefix %d: replay step %d: %v", p, i, err)
			}
		}
		got := w.Complete()
		if !reflect.DeepEqual(got.Path, ref.Path) || !reflect.DeepEqual(got.Source, ref.Source) {
			t.Fatalf("prefix %d: resume diverged from the full run", p)
		}
	}
}

func TestWalkerReplayDivergence(t *testing.T) {
	g := graph.Path(6)
	opts := Options{Window: 1, EdgeCoverage: 1, Start: 0}
	w, err := NewWalker(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Step 0 must be the resolved start.
	if err := w.Replay(3, SourceStart); !errors.Is(err, ErrReplayDiverged) {
		t.Errorf("wrong start vertex: %v", err)
	}
	if err := w.Replay(0, SourceStart); err != nil {
		t.Fatal(err)
	}
	// A stack pop when the stack is empty must report divergence.
	if err := w.Replay(5, SourceStack); !errors.Is(err, ErrReplayDiverged) {
		t.Errorf("impossible stack pop: %v", err)
	}
}

func TestWalkerResolvesLikeRun(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.ErdosRenyiM(rng, 30, 80)
	w, err := NewWalker(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if w.Window() != AdaptiveWindow(g) {
		t.Errorf("walker window %d, adaptive %d", w.Window(), AdaptiveWindow(g))
	}
	res, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if w.Start() != res.Path[0] {
		t.Errorf("walker start %d, run start %d", w.Start(), res.Path[0])
	}
	if w.Target() != g.NumEdges() {
		t.Errorf("walker target %d, want %d", w.Target(), g.NumEdges())
	}
}
