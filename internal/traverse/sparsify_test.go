package traverse

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"mega/internal/graph"
	"mega/internal/sparsify"
)

func sparsTestGraph(seed int64, n, m int) *graph.Graph {
	return graph.ErdosRenyiM(rand.New(rand.NewSource(seed)), n, m)
}

func pathsEqual(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func edgesEqual(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSparsifyValidation(t *testing.T) {
	g := sparsTestGraph(1, 10, 20)
	for _, f := range []float64{-0.1, 1.5} {
		if _, err := Run(g, Options{EdgeCoverage: 1, Start: -1, SparsifyFraction: f}); !errors.Is(err, ErrBadOptions) {
			t.Errorf("fraction %v: got %v, want ErrBadOptions", f, err)
		}
	}
}

func TestSparsifyFractionOneIsNoOp(t *testing.T) {
	g := sparsTestGraph(2, 25, 80)
	plain, err := Run(g, Options{EdgeCoverage: 1, Start: -1})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(g, Options{EdgeCoverage: 1, Start: -1, SparsifyFraction: 1, SparsifySeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !pathsEqual(plain.Path, one.Path) {
		t.Fatal("SparsifyFraction=1 changed the path")
	}
	if one.SparsifiedEdges != 0 || one.TotalEdges != g.NumEdges() {
		t.Fatalf("fraction 1 removed edges: sparsified=%d total=%d", one.SparsifiedEdges, one.TotalEdges)
	}
}

func TestSparsifyDeterministicAndSeedSensitive(t *testing.T) {
	g := sparsTestGraph(3, 40, 200)
	opts := Options{EdgeCoverage: 1, Start: -1, SparsifyFraction: 0.5, SparsifySeed: 11}
	a, err := Run(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !pathsEqual(a.Path, b.Path) || !edgesEqual(a.Graph.Edges(), b.Graph.Edges()) {
		t.Fatal("identical options produced different sparsified traversals")
	}
	for i := range a.SparsifyWeights {
		if math.Float64bits(a.SparsifyWeights[i]) != math.Float64bits(b.SparsifyWeights[i]) {
			t.Fatalf("weight %d differs across identical runs", i)
		}
	}
	opts.SparsifySeed = 12
	c, err := Run(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if edgesEqual(a.Graph.Edges(), c.Graph.Edges()) {
		t.Fatal("different sparsify seeds kept identical edge sets")
	}
}

func TestSparsifyWeightsAlignWithWalkedGraph(t *testing.T) {
	g := sparsTestGraph(4, 30, 120)
	res, err := Run(g, Options{EdgeCoverage: 1, Start: -1, SparsifyFraction: 0.6, SparsifySeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SparsifyWeights) != res.Graph.NumEdges() {
		t.Fatalf("weights len %d, walked graph has %d edges", len(res.SparsifyWeights), res.Graph.NumEdges())
	}
	for i, w := range res.SparsifyWeights {
		if w < 1-1e-9 {
			t.Fatalf("kept edge %d has weight %v < 1", i, w)
		}
	}
	if res.TotalEdges+res.DroppedEdges+res.SparsifiedEdges != g.NumEdges() {
		t.Fatalf("edge accounting: %d+%d+%d != %d",
			res.TotalEdges, res.DroppedEdges, res.SparsifiedEdges, g.NumEdges())
	}
}

// TestSparsifyDropIndependentStreams pins the satellite-3 contract: with
// Seed == SparsifySeed, the drop filter and the sparsifier must still
// decide independently — the combined run keeps exactly the intersection
// of what each filter keeps alone, and enabling the sparsifier must not
// shift a single drop decision.
func TestSparsifyDropIndependentStreams(t *testing.T) {
	g := sparsTestGraph(5, 40, 240)
	const seed = 77
	dropOnly, err := Run(g, Options{EdgeCoverage: 1, Start: -1, DropEdges: 0.3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sparsOnly, err := Run(g, Options{EdgeCoverage: 1, Start: -1, SparsifyFraction: 0.5, SparsifySeed: seed})
	if err != nil {
		t.Fatal(err)
	}
	both, err := Run(g, Options{EdgeCoverage: 1, Start: -1,
		DropEdges: 0.3, Seed: seed, SparsifyFraction: 0.5, SparsifySeed: seed})
	if err != nil {
		t.Fatal(err)
	}

	if both.DroppedEdges != dropOnly.DroppedEdges {
		t.Fatalf("enabling sparsify changed the drop count: %d vs %d",
			both.DroppedEdges, dropOnly.DroppedEdges)
	}

	inDrop := make(map[graph.Edge]bool, dropOnly.TotalEdges)
	for _, e := range dropOnly.Graph.Edges() {
		inDrop[e] = true
	}
	inSpars := make(map[graph.Edge]bool, sparsOnly.TotalEdges)
	for _, e := range sparsOnly.Graph.Edges() {
		inSpars[e] = true
	}
	var want []graph.Edge
	for _, e := range g.Edges() {
		if inDrop[e] && inSpars[e] {
			want = append(want, e)
		}
	}
	if !edgesEqual(both.Graph.Edges(), want) {
		t.Fatalf("combined run kept %d edges, intersection of solo runs has %d — streams coupled",
			both.TotalEdges, len(want))
	}
}

// TestSparsifyDropOrderBitIdentity applies the two keep-masks in both
// orders over the original edge list and asserts the surviving edge lists
// are bit-identical to each other and to what NewWalker builds — the
// mask-intersection design makes application order structurally incapable
// of mattering.
func TestSparsifyDropOrderBitIdentity(t *testing.T) {
	g := sparsTestGraph(6, 35, 180)
	const seed = 13
	dk := dropKeepMask(g, 0.25, DropRandom, seed)
	plan, err := sparsify.New(g, sparsify.Options{Fraction: 0.5, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	var dropFirst, sparsFirst []graph.Edge
	for i, e := range edges {
		if dk[i] && plan.Keep[i] {
			dropFirst = append(dropFirst, e)
		}
		if plan.Keep[i] && dk[i] {
			sparsFirst = append(sparsFirst, e)
		}
	}
	if !edgesEqual(dropFirst, sparsFirst) {
		t.Fatal("mask application order changed the surviving edge list")
	}

	res, err := Run(g, Options{EdgeCoverage: 1, Start: -1,
		DropEdges: 0.25, Seed: seed, SparsifyFraction: 0.5, SparsifySeed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !edgesEqual(res.Graph.Edges(), dropFirst) {
		t.Fatal("NewWalker's composed filter disagrees with the hand-applied masks")
	}
	res2, err := Run(g, Options{EdgeCoverage: 1, Start: -1,
		DropEdges: 0.25, Seed: seed, SparsifyFraction: 0.5, SparsifySeed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !pathsEqual(res.Path, res2.Path) {
		t.Fatal("composed traversal not bit-reproducible")
	}
}

// TestSparsifiedRevisitBound is the differential suite: traversal over
// sparsified topologies must satisfy every full-coverage invariant the
// fuzz corpus pins for plain graphs, including the two-sided revisit
// bound Σ⌈d/(2ω)⌉ − n evaluated on the walked (sparsified) graph.
func TestSparsifiedRevisitBound(t *testing.T) {
	for _, tc := range []struct {
		n, m int
		frac float64
		seed int64
	}{
		{20, 60, 0.75, 1}, {30, 150, 0.5, 2}, {40, 300, 0.5, 3},
		{25, 100, 0.25, 4}, {50, 200, 0.5, 5}, {15, 40, 0.9, 6},
	} {
		g := sparsTestGraph(tc.seed, tc.n, tc.m)
		res, err := Run(g, Options{EdgeCoverage: 1, Start: -1,
			SparsifyFraction: tc.frac, SparsifySeed: tc.seed})
		if err != nil {
			t.Fatalf("n=%d m=%d frac=%v: %v", tc.n, tc.m, tc.frac, err)
		}
		if res.EdgeCoverageRatio() != 1 {
			t.Fatalf("n=%d m=%d frac=%v: coverage %v != 1", tc.n, tc.m, tc.frac, res.EdgeCoverageRatio())
		}
		if lb := RevisitLowerBound(res.Graph.Degrees(), 2*res.Window); res.Revisits < lb {
			t.Fatalf("n=%d m=%d frac=%v: revisits %d below two-sided bound %d (ω=%d)",
				tc.n, tc.m, tc.frac, res.Revisits, lb, res.Window)
		}
	}
}

// TestSparsifyShrinksBand pins the headline effect: at keep 0.5 on a dense
// graph the adaptive window (mean-degree driven) must not grow, and on
// this topology strictly shrinks.
func TestSparsifyShrinksBand(t *testing.T) {
	g := sparsTestGraph(7, 60, 600)
	plain, err := Run(g, Options{EdgeCoverage: 1, Start: -1})
	if err != nil {
		t.Fatal(err)
	}
	spars, err := Run(g, Options{EdgeCoverage: 1, Start: -1, SparsifyFraction: 0.5, SparsifySeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if spars.Window >= plain.Window {
		t.Fatalf("keep-0.5 window %d not below unsparsified %d", spars.Window, plain.Window)
	}
}

func TestOptionsDigest(t *testing.T) {
	base := Options{Window: 2, EdgeCoverage: 1, Start: -1, Seed: 5}
	if base.Digest() != base.Digest() {
		t.Fatal("digest not deterministic")
	}
	variants := []Options{
		{Window: 3, EdgeCoverage: 1, Start: -1, Seed: 5},
		{Window: 2, EdgeCoverage: 0.9, Start: -1, Seed: 5},
		{Window: 2, EdgeCoverage: 1, Start: -1, Seed: 5, DropEdges: 0.2},
		{Window: 2, EdgeCoverage: 1, Start: -1, Seed: 5, DropStrategy: DropRedundant},
		{Window: 2, EdgeCoverage: 1, Start: -1, Seed: 5, RevisitPolicy: RevisitPolicy(1)},
		{Window: 2, EdgeCoverage: 1, Start: -1, Seed: 5, Objective: Objective(1)},
		{Window: 2, EdgeCoverage: 1, Start: 0, Seed: 5},
		{Window: 2, EdgeCoverage: 1, Start: -1, Seed: 6},
		{Window: 2, EdgeCoverage: 1, Start: -1, Seed: 5, SparsifyFraction: 0.5},
		{Window: 2, EdgeCoverage: 1, Start: -1, Seed: 5, SparsifyFraction: 0.5, SparsifySeed: 1},
	}
	seen := map[OptionsDigest]int{base.Digest(): -1}
	for i, v := range variants {
		d := v.Digest()
		if prev, dup := seen[d]; dup {
			t.Fatalf("variant %d collides with variant %d", i, prev)
		}
		seen[d] = i
	}
}

// FuzzSparsifiedTraverse extends the FuzzTraverse invariants to
// sparsified topologies: fuzzer-chosen graphs, keep fractions, and seeds,
// with full coverage, edge accounting, weight alignment, and the
// two-sided revisit bound all asserted on the walked graph.
func FuzzSparsifiedTraverse(f *testing.F) {
	f.Add(uint8(10), uint16(15), int64(1), uint8(128), uint8(0))
	f.Add(uint8(30), uint16(200), int64(3), uint8(64), uint8(2))
	f.Add(uint8(17), uint16(40), int64(-5), uint8(255), uint8(4))
	f.Add(uint8(25), uint16(90), int64(8), uint8(32), uint8(1))

	f.Fuzz(func(t *testing.T, nRaw uint8, mRaw uint16, seed int64, fracRaw, wRaw uint8) {
		n := int(nRaw)%40 + 1
		maxM := n * (n - 1) / 2
		m := 0
		if maxM > 0 {
			m = int(mRaw) % (maxM + 1)
		}
		g := graph.ErdosRenyiM(rand.New(rand.NewSource(seed)), n, m)
		frac := (float64(fracRaw) + 1) / 256 // (0, 1]
		opts := Options{
			Window:           int(wRaw) % 6,
			EdgeCoverage:     1,
			Start:            -1,
			SparsifyFraction: frac,
			SparsifySeed:     seed,
		}
		res, err := Run(g, opts)
		if err != nil {
			t.Fatalf("n=%d m=%d frac=%v: %v", n, m, frac, err)
		}
		if res.EdgeCoverageRatio() != 1 {
			t.Fatalf("coverage %v != 1", res.EdgeCoverageRatio())
		}
		seen := make(map[graph.NodeID]bool, n)
		for i, v := range res.Path {
			if int(v) < 0 || int(v) >= n {
				t.Fatalf("path[%d] = %d out of range", i, v)
			}
			seen[v] = true
		}
		if len(seen) != n {
			t.Fatalf("path covers %d of %d vertices", len(seen), n)
		}
		if res.TotalEdges+res.DroppedEdges+res.SparsifiedEdges != g.NumEdges() {
			t.Fatalf("edge accounting: %d+%d+%d != %d",
				res.TotalEdges, res.DroppedEdges, res.SparsifiedEdges, g.NumEdges())
		}
		if res.SparsifyWeights != nil && len(res.SparsifyWeights) != res.Graph.NumEdges() {
			t.Fatalf("weights len %d != walked edges %d", len(res.SparsifyWeights), res.Graph.NumEdges())
		}
		if lb := RevisitLowerBound(res.Graph.Degrees(), 2*res.Window); res.Revisits < lb {
			t.Fatalf("revisits %d below two-sided bound %d (ω=%d)", res.Revisits, lb, res.Window)
		}
	})
}
