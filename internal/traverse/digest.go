package traverse

import (
	"crypto/sha256"
	"fmt"
)

// OptionsDigest is a canonical hash of an Options value. Serving and
// distributed-worker caches key prepared path representations by
// (topology fingerprint, options digest): two option sets that could
// produce different reps must never share a cache entry (the PR 1 design
// keyed by topology alone, which silently served stale reps if options
// ever differed).
type OptionsDigest [sha256.Size]byte

// Digest returns the canonical hash of o. The encoding is versioned: any
// change to Options' semantics (a new field, a meaning change) must bump
// the version string so old digests can never alias new option sets.
// Floats are rendered with %g, which is injective on float64 in Go.
func (o Options) Digest() OptionsDigest {
	return sha256.Sum256([]byte(fmt.Sprintf(
		"mega/traverse-options.v1\nw=%d ec=%g de=%g ds=%d rp=%d ob=%d st=%d sd=%d sf=%g ss=%d\n",
		o.Window, o.EdgeCoverage, o.DropEdges, o.DropStrategy, o.RevisitPolicy,
		o.Objective, o.Start, o.Seed, o.SparsifyFraction, o.SparsifySeed,
	)))
}
