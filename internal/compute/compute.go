// Package compute is the process-wide parallel runtime underneath the
// tensor/nn stack: a range-splitting primitive that fans loop bodies out
// across CPU cores with a hard, token-bounded thread budget.
//
// Design goals, in order:
//
//  1. Determinism. The same input must produce bit-identical output at any
//     thread count. Parallel callers therefore never share an accumulator:
//     Parallel splits an index range into disjoint chunks whose writes do
//     not overlap, and ReduceSum combines partial sums over a *fixed*
//     partition (independent of the thread count) in a fixed order. There
//     is no atomic float accumulation anywhere.
//  2. No oversubscription. Helper goroutines are admitted by a global token
//     bucket of MaxThreads−1 slots, so no matter how many Parallel calls
//     run concurrently (e.g. the serve worker pool running batched forward
//     passes), the process never runs more than MaxThreads compute threads
//     plus the callers themselves. A caller that cannot get a token simply
//     runs the chunk inline — correctness never depends on a token.
//  3. Zero setup. There is no pool object to thread through APIs; the
//     budget is process-global, sized by runtime.NumCPU() and overridable
//     via the MEGA_NUM_THREADS environment variable or SetMaxThreads.
package compute

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
)

// PanicError carries a panic raised inside a parallel region back to the
// goroutine that called Parallel/ParallelGrain/ReduceSum. Panics on helper
// goroutines cannot be recovered by the submitter's own deferred recover —
// Go recovers only same-goroutine panics — so without this capture a panic
// deep in a kernel would crash the whole process no matter how carefully
// the serving layer guards its forward passes. Every chunk (helper or
// inline) runs under a collector; the first panic wins, remaining chunks
// finish, and the submitter re-panics with the value and original stack.
type PanicError struct {
	// Value is the original panic value.
	Value any
	// Stack is the stack of the panicking goroutine, captured at the
	// panic site.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("compute: panic in parallel region: %v", e.Value)
}

// Unwrap exposes a wrapped error panic value to errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// panicCollector records the first panic from any chunk of one parallel
// region.
type panicCollector struct {
	mu  sync.Mutex
	err *PanicError
}

// run executes fn(lo, hi), converting a panic into a recorded PanicError.
func (c *panicCollector) run(fn func(lo, hi int), lo, hi int) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		pe, ok := r.(*PanicError)
		if !ok {
			pe = &PanicError{Value: r, Stack: debug.Stack()}
		}
		c.mu.Lock()
		if c.err == nil {
			c.err = pe
		}
		c.mu.Unlock()
	}()
	fn(lo, hi)
}

// rethrow re-raises the recorded panic, if any, on the calling goroutine.
func (c *panicCollector) rethrow() {
	if c.err != nil {
		panic(c.err)
	}
}

// EnvNumThreads is the environment variable consulted at startup for the
// initial thread budget (like OMP_NUM_THREADS for OpenMP programs).
const EnvNumThreads = "MEGA_NUM_THREADS"

var (
	mu sync.Mutex
	// limit is the current thread budget (>= 1).
	limit int
	// tokens holds limit−1 admission slots for helper goroutines; the
	// calling goroutine is the limit-th thread. Replaced wholesale by
	// SetMaxThreads; in-flight workers return tokens to the channel they
	// drew from, so a stale channel drains harmlessly.
	tokens chan struct{}
)

func init() {
	n := runtime.NumCPU()
	if s := os.Getenv(EnvNumThreads); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	setLimit(n)
}

// setLimit installs a new budget and a fresh full token bucket.
func setLimit(n int) {
	if n < 1 {
		n = 1
	}
	limit = n
	tokens = make(chan struct{}, n-1)
	for i := 0; i < n-1; i++ {
		tokens <- struct{}{}
	}
}

// MaxThreads returns the current thread budget.
func MaxThreads() int {
	mu.Lock()
	defer mu.Unlock()
	return limit
}

// SetMaxThreads sets the process-wide thread budget (clamped to >= 1) and
// returns the previous value. Safe to call at any time; Parallel calls
// already in flight keep their snapshot of the old budget.
func SetMaxThreads(n int) (prev int) {
	mu.Lock()
	defer mu.Unlock()
	prev = limit
	setLimit(n)
	return prev
}

// snapshot returns the current budget and its token bucket.
func snapshot() (int, chan struct{}) {
	mu.Lock()
	defer mu.Unlock()
	return limit, tokens
}

// Parallel runs fn over the disjoint chunks of [0, n) — fn(lo, hi) for
// each chunk — using up to MaxThreads concurrent goroutines (including the
// caller). fn must write only state owned by its chunk; under that
// contract the result is identical to fn(0, n) regardless of thread count
// or scheduling. Parallel returns when every chunk has completed.
func Parallel(n int, fn func(lo, hi int)) {
	ParallelGrain(n, 1, fn)
}

// ParallelGrain is Parallel with a minimum chunk size: the range is split
// into at most ceil(n/grain) chunks so each carries enough work to cover
// goroutine overhead. grain <= 1 means no minimum.
func ParallelGrain(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	p, tok := snapshot()
	if max := (n + grain - 1) / grain; p > max {
		p = max
	}
	if p <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + p - 1) / p
	var wg sync.WaitGroup
	var col panicCollector
	// Hand chunks after the first to helpers when tokens allow; the first
	// chunk always runs on the caller, guaranteeing progress even when the
	// bucket is exhausted by concurrent Parallel calls. Every chunk runs
	// under the collector so a panic anywhere — helper or inline — lets
	// the remaining chunks finish and then re-raises on the caller, where
	// an ordinary deferred recover can see it.
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		select {
		case <-tok:
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				defer func() { tok <- struct{}{} }()
				col.run(fn, lo, hi)
			}(lo, hi)
		default:
			col.run(fn, lo, hi)
		}
	}
	col.run(fn, 0, chunk)
	wg.Wait()
	col.rethrow()
}

// Borrow debits up to n helper tokens from the global bucket for a
// long-lived parallel section that cannot express itself as a single
// Parallel call — the shard engine's worker goroutines, which must all
// run concurrently because they exchange messages with each other.
// It returns how many tokens were actually obtained (possibly 0: the
// caller's own thread is never represented by a token) and a release
// function that must be called exactly once to return them.
//
// Borrow never blocks: like Parallel's helpers, it takes only the tokens
// available right now, so a busy process degrades to fewer borrowed
// threads rather than deadlocking two borrowers against each other.
// Kernels running inside the borrowed goroutines still admit their own
// helpers through the same bucket, keeping the process-wide thread count
// within MaxThreads regardless of nesting.
func Borrow(n int) (got int, release func()) {
	_, tok := snapshot()
	for got < n {
		select {
		case <-tok:
			got++
		default:
			release = makeRelease(tok, got)
			return got, release
		}
	}
	return got, makeRelease(tok, got)
}

// makeRelease returns the tokens to the bucket they were drawn from (a
// stale bucket after SetMaxThreads drains harmlessly, mirroring
// ParallelGrain's helpers).
func makeRelease(tok chan struct{}, got int) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			for i := 0; i < got; i++ {
				tok <- struct{}{}
			}
		})
	}
}

// reduceChunks is the fixed partition width for ReduceSum. It is a
// constant — never derived from the thread budget — so the grouping of
// partial sums, and therefore the floating-point result, is identical at
// every thread count.
const reduceChunks = 64

// ReduceSum computes the sum of partial(lo, hi) over a fixed partition of
// [0, n) into at most reduceChunks contiguous chunks. Partials may be
// computed concurrently, but they are combined serially in chunk order, so
// the result depends only on n and the partial function — not on the
// thread count. partial must be a pure function of its range.
func ReduceSum(n int, partial func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	c := reduceChunks
	if c > n {
		c = n
	}
	chunk := (n + c - 1) / c
	c = (n + chunk - 1) / chunk
	partials := make([]float64, c)
	Parallel(c, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			plo := i * chunk
			phi := plo + chunk
			if phi > n {
				phi = n
			}
			partials[i] = partial(plo, phi)
		}
	})
	s := 0.0
	for _, v := range partials {
		s += v
	}
	return s
}
