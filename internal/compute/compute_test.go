package compute

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// withThreads runs fn under a temporary thread budget.
func withThreads(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := SetMaxThreads(n)
	defer SetMaxThreads(prev)
	fn()
}

func TestSetMaxThreadsClamps(t *testing.T) {
	prev := SetMaxThreads(0)
	defer SetMaxThreads(prev)
	if got := MaxThreads(); got != 1 {
		t.Fatalf("MaxThreads after Set(0) = %d, want 1", got)
	}
	if p := SetMaxThreads(7); p != 1 {
		t.Fatalf("SetMaxThreads returned prev %d, want 1", p)
	}
	if got := MaxThreads(); got != 7 {
		t.Fatalf("MaxThreads = %d, want 7", got)
	}
}

func TestParallelCoversRangeExactlyOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 8} {
		withThreads(t, threads, func() {
			for _, n := range []int{0, 1, 2, 7, 64, 1000, 4096 + 17} {
				hits := make([]int32, n)
				Parallel(n, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Errorf("bad chunk [%d,%d) of %d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("threads=%d n=%d: index %d visited %d times", threads, n, i, h)
					}
				}
			}
		})
	}
}

func TestParallelGrainBoundsChunkCount(t *testing.T) {
	withThreads(t, 8, func() {
		var calls int32
		ParallelGrain(100, 50, func(lo, hi int) {
			atomic.AddInt32(&calls, 1)
			if hi-lo < 50 && lo != 50 { // last chunk may be short
				t.Errorf("chunk [%d,%d) shorter than grain", lo, hi)
			}
		})
		if calls > 2 {
			t.Fatalf("grain 50 over n=100 produced %d chunks, want <= 2", calls)
		}
	})
}

func TestParallelNestedAndConcurrentDoesNotDeadlock(t *testing.T) {
	withThreads(t, 4, func() {
		var wg sync.WaitGroup
		for r := 0; r < 16; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				total := int64(0)
				Parallel(128, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt64(&total, 1)
					}
				})
				if total != 128 {
					t.Errorf("covered %d of 128", total)
				}
			}()
		}
		wg.Wait()
	})
}

// TestReduceSumThreadCountInvariant is the determinism contract: the sum is
// bit-identical at every thread budget because the partition is fixed.
func TestReduceSumThreadCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 3, 63, 64, 65, 1000, 40000} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 1e3
		}
		sum := func() float64 {
			return ReduceSum(n, func(lo, hi int) float64 {
				s := 0.0
				for i := lo; i < hi; i++ {
					s += xs[i]
				}
				return s
			})
		}
		var ref float64
		withThreads(t, 1, func() { ref = sum() })
		for _, threads := range []int{2, 3, 8, 32} {
			withThreads(t, threads, func() {
				if got := sum(); got != ref {
					t.Fatalf("n=%d threads=%d: ReduceSum %v != serial %v", n, threads, got, ref)
				}
			})
		}
	}
}

func TestReduceSumEmpty(t *testing.T) {
	if got := ReduceSum(0, func(lo, hi int) float64 { return 1 }); got != 0 {
		t.Fatalf("ReduceSum(0) = %v", got)
	}
}

func TestBorrowDebitsAndReturnsTokens(t *testing.T) {
	withThreads(t, 5, func() { // bucket holds 4 helper tokens
		got, release := Borrow(3)
		if got != 3 {
			t.Fatalf("Borrow(3) got %d, want 3", got)
		}
		// Only one token left; an over-ask must not block.
		got2, release2 := Borrow(10)
		if got2 != 1 {
			t.Fatalf("Borrow(10) with 1 token left got %d, want 1", got2)
		}
		got3, release3 := Borrow(2)
		if got3 != 0 {
			t.Fatalf("Borrow(2) on empty bucket got %d, want 0", got3)
		}
		release3()
		release2()
		release()
		// All 4 tokens are back.
		got4, release4 := Borrow(10)
		if got4 != 4 {
			t.Fatalf("after release, Borrow(10) got %d, want 4", got4)
		}
		release4()
	})
}

func TestBorrowReleaseIdempotent(t *testing.T) {
	withThreads(t, 3, func() {
		got, release := Borrow(2)
		if got != 2 {
			t.Fatalf("Borrow(2) got %d", got)
		}
		release()
		release() // second call must not double-credit the bucket
		got2, release2 := Borrow(10)
		defer release2()
		if got2 != 2 {
			t.Fatalf("after double release, Borrow(10) got %d, want 2", got2)
		}
	})
}

func TestBorrowedSectionStillWithinBudget(t *testing.T) {
	withThreads(t, 4, func() {
		// Borrow 2 tokens as "worker goroutines"; kernels inside them plus
		// this goroutine can then only admit the remaining 1 helper.
		got, release := Borrow(2)
		if got != 2 {
			t.Fatalf("Borrow(2) got %d", got)
		}
		defer release()
		var peak atomic.Int64
		var cur atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < got; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				Parallel(64, func(lo, hi int) {
					n := cur.Add(1)
					for {
						p := peak.Load()
						if n <= p || peak.CompareAndSwap(p, n) {
							break
						}
					}
					for i := 0; i < 1000; i++ {
						_ = rand.Int()
					}
					cur.Add(-1)
				})
			}()
		}
		wg.Wait()
		// 2 borrowed workers + at most 1 remaining helper token.
		if p := peak.Load(); p > 3 {
			t.Fatalf("peak concurrent chunks %d exceeds borrowed budget 3", p)
		}
	})
}
