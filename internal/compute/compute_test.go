package compute

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// withThreads runs fn under a temporary thread budget.
func withThreads(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := SetMaxThreads(n)
	defer SetMaxThreads(prev)
	fn()
}

func TestSetMaxThreadsClamps(t *testing.T) {
	prev := SetMaxThreads(0)
	defer SetMaxThreads(prev)
	if got := MaxThreads(); got != 1 {
		t.Fatalf("MaxThreads after Set(0) = %d, want 1", got)
	}
	if p := SetMaxThreads(7); p != 1 {
		t.Fatalf("SetMaxThreads returned prev %d, want 1", p)
	}
	if got := MaxThreads(); got != 7 {
		t.Fatalf("MaxThreads = %d, want 7", got)
	}
}

func TestParallelCoversRangeExactlyOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 8} {
		withThreads(t, threads, func() {
			for _, n := range []int{0, 1, 2, 7, 64, 1000, 4096 + 17} {
				hits := make([]int32, n)
				Parallel(n, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Errorf("bad chunk [%d,%d) of %d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("threads=%d n=%d: index %d visited %d times", threads, n, i, h)
					}
				}
			}
		})
	}
}

func TestParallelGrainBoundsChunkCount(t *testing.T) {
	withThreads(t, 8, func() {
		var calls int32
		ParallelGrain(100, 50, func(lo, hi int) {
			atomic.AddInt32(&calls, 1)
			if hi-lo < 50 && lo != 50 { // last chunk may be short
				t.Errorf("chunk [%d,%d) shorter than grain", lo, hi)
			}
		})
		if calls > 2 {
			t.Fatalf("grain 50 over n=100 produced %d chunks, want <= 2", calls)
		}
	})
}

func TestParallelNestedAndConcurrentDoesNotDeadlock(t *testing.T) {
	withThreads(t, 4, func() {
		var wg sync.WaitGroup
		for r := 0; r < 16; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				total := int64(0)
				Parallel(128, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt64(&total, 1)
					}
				})
				if total != 128 {
					t.Errorf("covered %d of 128", total)
				}
			}()
		}
		wg.Wait()
	})
}

// TestReduceSumThreadCountInvariant is the determinism contract: the sum is
// bit-identical at every thread budget because the partition is fixed.
func TestReduceSumThreadCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 3, 63, 64, 65, 1000, 40000} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 1e3
		}
		sum := func() float64 {
			return ReduceSum(n, func(lo, hi int) float64 {
				s := 0.0
				for i := lo; i < hi; i++ {
					s += xs[i]
				}
				return s
			})
		}
		var ref float64
		withThreads(t, 1, func() { ref = sum() })
		for _, threads := range []int{2, 3, 8, 32} {
			withThreads(t, threads, func() {
				if got := sum(); got != ref {
					t.Fatalf("n=%d threads=%d: ReduceSum %v != serial %v", n, threads, got, ref)
				}
			})
		}
	}
}

func TestReduceSumEmpty(t *testing.T) {
	if got := ReduceSum(0, func(lo, hi int) float64 { return 1 }); got != 0 {
		t.Fatalf("ReduceSum(0) = %v", got)
	}
}
