package compute

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// recoverParallel runs fn and returns what a deferred recover on the
// submitting goroutine sees.
func recoverParallel(fn func()) (r any) {
	defer func() { r = recover() }()
	fn()
	return nil
}

// TestParallelPropagatesHelperPanic is the regression test for the PR 2
// gotcha: a panic raised on a pool helper goroutine must surface on the
// submitting goroutine — with the original panic value and stack — so a
// caller's recover() (e.g. serve's guarded forward pass) actually protects
// the process. Run under -race this also checks the collector is race-free.
func TestParallelPropagatesHelperPanic(t *testing.T) {
	for _, threads := range []int{2, 4, 8} {
		withThreads(t, threads, func() {
			var ran atomic.Int32
			r := recoverParallel(func() {
				Parallel(1024, func(lo, hi int) {
					ran.Add(1)
					if lo >= 512 {
						panic(errors.New("kernel exploded"))
					}
				})
			})
			pe, ok := r.(*PanicError)
			if !ok {
				t.Fatalf("threads=%d: recovered %#v, want *PanicError", threads, r)
			}
			if err, ok := pe.Value.(error); !ok || err.Error() != "kernel exploded" {
				t.Errorf("panic value = %#v", pe.Value)
			}
			if !errors.Is(pe, pe.Value.(error)) {
				t.Error("PanicError should unwrap to the original error value")
			}
			if !strings.Contains(string(pe.Stack), "panic_test.go") {
				t.Errorf("stack does not point at the panic site:\n%s", pe.Stack)
			}
			if ran.Load() == 0 {
				t.Error("no chunks ran")
			}
		})
	}
}

// TestParallelSingleThreadPanicStillRecoverable covers the p<=1 inline
// path: the panic propagates natively (same goroutine), no wrapping
// needed, but it must still be catchable.
func TestParallelSingleThreadPanicStillRecoverable(t *testing.T) {
	withThreads(t, 1, func() {
		r := recoverParallel(func() {
			Parallel(100, func(lo, hi int) { panic("inline") })
		})
		if r == nil {
			t.Fatal("panic lost on single-thread path")
		}
	})
}

// TestParallelPanicDoesNotLeakTokens drives many panicking regions and
// then a normal one: if a panicking helper failed to return its admission
// token, the pool would degrade to serial (or deadlock a waiter).
func TestParallelPanicDoesNotLeakTokens(t *testing.T) {
	withThreads(t, 4, func() {
		for i := 0; i < 50; i++ {
			recoverParallel(func() {
				Parallel(256, func(lo, hi int) {
					if lo == 0 {
						panic(i)
					}
				})
			})
		}
		var hits atomic.Int32
		Parallel(256, func(lo, hi int) { hits.Add(int32(hi - lo)) })
		if hits.Load() != 256 {
			t.Fatalf("post-panic Parallel covered %d of 256", hits.Load())
		}
	})
}

// TestReduceSumPropagatesPanic: ReduceSum builds on Parallel and must
// inherit the capture behaviour.
func TestReduceSumPropagatesPanic(t *testing.T) {
	withThreads(t, 4, func() {
		r := recoverParallel(func() {
			ReduceSum(10000, func(lo, hi int) float64 {
				if lo > 5000 {
					panic("partial failed")
				}
				return 1
			})
		})
		if r == nil {
			t.Fatal("ReduceSum swallowed the panic")
		}
		if pe, ok := r.(*PanicError); !ok || pe.Value != "partial failed" {
			t.Fatalf("recovered %#v", r)
		}
	})
}

// TestConcurrentRegionsIsolatePanics: a panic in one goroutine's region
// must not disturb healthy regions running concurrently on the shared
// token bucket.
func TestConcurrentRegionsIsolatePanics(t *testing.T) {
	withThreads(t, 4, func() {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					if g%2 == 0 {
						r := recoverParallel(func() {
							Parallel(128, func(lo, hi int) { panic("odd one out") })
						})
						if r == nil {
							t.Error("panic lost in concurrent region")
						}
					} else {
						var total atomic.Int64
						Parallel(128, func(lo, hi int) { total.Add(int64(hi - lo)) })
						if total.Load() != 128 {
							t.Errorf("healthy region covered %d of 128", total.Load())
						}
					}
				}
			}(g)
		}
		wg.Wait()
	})
}

// TestNestedParallelPanicKeepsOriginal: a panic inside a nested region is
// wrapped once and re-raised verbatim by the outer region.
func TestNestedParallelPanicKeepsOriginal(t *testing.T) {
	withThreads(t, 4, func() {
		r := recoverParallel(func() {
			Parallel(64, func(lo, hi int) {
				Parallel(64, func(lo2, hi2 int) {
					if lo2 == 0 && lo == 0 {
						panic("deep")
					}
				})
			})
		})
		pe, ok := r.(*PanicError)
		if !ok || pe.Value != "deep" {
			t.Fatalf("recovered %#v, want PanicError{deep}", r)
		}
	})
}
