package nn

import (
	"math"
	"math/rand"
	"testing"

	"mega/internal/tensor"
)

func TestLinearShapesAndParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 4, 3)
	x := tensor.Randn(rng, 5, 4, 1)
	y := l.Forward(x)
	if y.Rows() != 5 || y.Cols() != 3 {
		t.Fatalf("output %dx%d, want 5x3", y.Rows(), y.Cols())
	}
	if CountParams(l.Params()) != 4*3+3 {
		t.Errorf("params = %d, want 15", CountParams(l.Params()))
	}
}

func TestLinearGradientFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(rng, 3, 2)
	x := tensor.Randn(rng, 4, 3, 1)
	tensor.Sum(l.Forward(x)).Backward()
	if l.W.Grad == nil || l.B.Grad == nil {
		t.Fatal("gradients not populated")
	}
	// Bias gradient of Sum is the row count.
	for _, g := range l.B.Grad {
		if g != 4 {
			t.Errorf("bias grad = %v, want 4", g)
		}
	}
}

func TestEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := NewEmbedding(rng, 10, 4)
	out := e.Forward([]int32{1, 1, 7})
	if out.Rows() != 3 || out.Cols() != 4 {
		t.Fatalf("output %dx%d", out.Rows(), out.Cols())
	}
	for j := 0; j < 4; j++ {
		if out.At(0, j) != out.At(1, j) {
			t.Error("same id should give same row")
		}
	}
	tensor.Sum(out).Backward()
	// Row 1 was used twice: grad 2; row 7 once: grad 1; row 0 unused: 0.
	if e.Table.Grad[1*4] != 2 || e.Table.Grad[7*4] != 1 || e.Table.Grad[0] != 0 {
		t.Errorf("embedding grads wrong: %v", e.Table.Grad[:8])
	}
}

func TestNormKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.Randn(rng, 6, 8, 3)
	for _, tt := range []struct {
		name string
		kind NormKind
	}{
		{name: "layer", kind: LayerNorm},
		{name: "batch", kind: BatchNorm},
	} {
		t.Run(tt.name, func(t *testing.T) {
			n := NewNorm(tt.kind, 8)
			y := n.Forward(x)
			if y.Rows() != 6 || y.Cols() != 8 {
				t.Fatalf("output %dx%d", y.Rows(), y.Cols())
			}
			if !y.IsFinite() {
				t.Error("non-finite norm output")
			}
			if len(n.Params()) != 2 {
				t.Error("norm should expose gamma and beta")
			}
		})
	}
}

func TestMLPReadout(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, 8, 16, 1)
	x := tensor.Randn(rng, 3, 8, 1)
	y := m.Forward(x)
	if y.Rows() != 3 || y.Cols() != 1 {
		t.Fatalf("output %dx%d", y.Rows(), y.Cols())
	}
	if CountParams(m.Params()) != 8*16+16+16*1+1 {
		t.Errorf("params = %d", CountParams(m.Params()))
	}
}

func TestCollectParams(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l1 := NewLinear(rng, 2, 2)
	l2 := NewLinear(rng, 2, 2)
	ps := CollectParams(l1, l2)
	if len(ps) != 4 {
		t.Errorf("collected %d params, want 4", len(ps))
	}
}

func TestAdamReducesQuadratic(t *testing.T) {
	// Minimise ||x - c||² — Adam should converge close to c.
	rng := rand.New(rand.NewSource(7))
	x := tensor.Randn(rng, 1, 4, 1).RequireGrad()
	c := tensor.New(1, 4, []float64{1, -2, 3, 0.5})
	opt := NewAdam([]*tensor.Tensor{x}, 0.05)
	var loss float64
	for i := 0; i < 500; i++ {
		opt.ZeroGrad()
		l := tensor.MSELoss(x, c)
		l.Backward()
		opt.Step()
		loss = l.Item()
	}
	if loss > 1e-4 {
		t.Errorf("final loss = %v, want < 1e-4", loss)
	}
	for j := 0; j < 4; j++ {
		if math.Abs(x.At(0, j)-c.At(0, j)) > 0.05 {
			t.Errorf("x[%d] = %v, want %v", j, x.At(0, j), c.At(0, j))
		}
	}
}

func TestAdamGradientClipping(t *testing.T) {
	x := tensor.New(1, 1, []float64{0}).RequireGrad()
	opt := NewAdam([]*tensor.Tensor{x}, 0.1)
	x.Grad = []float64{1e9} // absurd gradient
	opt.Step()
	if math.Abs(x.Data[0]) > 1 {
		t.Errorf("clipped step moved x to %v; clipping failed", x.Data[0])
	}
}

func TestAdamSkipsNilGrads(t *testing.T) {
	x := tensor.Zeros(1, 2).RequireGrad()
	opt := NewAdam([]*tensor.Tensor{x}, 0.1)
	opt.Step() // no grads accumulated; must not panic
	if x.Data[0] != 0 {
		t.Error("step without grads should not move params")
	}
}

func TestAdamZeroGrad(t *testing.T) {
	x := tensor.Zeros(1, 2).RequireGrad()
	tensor.Sum(x).Backward()
	opt := NewAdam([]*tensor.Tensor{x}, 0.1)
	opt.ZeroGrad()
	for _, g := range x.Grad {
		if g != 0 {
			t.Error("ZeroGrad left residue")
		}
	}
}

func TestTrainSmallRegression(t *testing.T) {
	// End-to-end: a 2-layer MLP fits y = sum(x) on random data.
	rng := rand.New(rand.NewSource(8))
	mlp := NewMLP(rng, 3, 16, 1)
	opt := NewAdam(mlp.Params(), 0.01)
	var final float64
	for epoch := 0; epoch < 300; epoch++ {
		x := tensor.Randn(rng, 16, 3, 1)
		target := tensor.Zeros(16, 1)
		for i := 0; i < 16; i++ {
			s := 0.0
			for j := 0; j < 3; j++ {
				s += x.At(i, j)
			}
			target.Set(i, 0, s)
		}
		opt.ZeroGrad()
		loss := tensor.MSELoss(mlp.Forward(x), target)
		loss.Backward()
		opt.Step()
		final = loss.Item()
	}
	if final > 0.1 {
		t.Errorf("MLP failed to fit linear target: loss %v", final)
	}
}

func BenchmarkLinearForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 128, 128)
	opt := NewAdam(l.Params(), 1e-3)
	x := tensor.Randn(rng, 256, 128, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.ZeroGrad()
		tensor.Sum(l.Forward(x)).Backward()
		opt.Step()
	}
}

func TestPlateauScheduler(t *testing.T) {
	x := tensor.Zeros(1, 1).RequireGrad()
	opt := NewAdam([]*tensor.Tensor{x}, 0.1)
	s := NewPlateauScheduler(opt)
	s.Patience = 2

	// Improving values never decay.
	for _, v := range []float64{1.0, 0.9, 0.8} {
		if s.Step(v) {
			t.Error("decayed while improving")
		}
	}
	if opt.LR != 0.1 {
		t.Errorf("LR changed to %v", opt.LR)
	}
	// Two flat epochs trip the decay.
	s.Step(0.8)
	if !s.Step(0.8) {
		t.Error("expected decay after patience exhausted")
	}
	if opt.LR != 0.05 {
		t.Errorf("LR = %v, want 0.05", opt.LR)
	}
	// Floor at MinLR.
	s.MinLR = 0.04
	s.Step(0.8)
	s.Step(0.8) // decays to MinLR (0.04 floor beats 0.025)
	if opt.LR != 0.04 {
		t.Errorf("LR = %v, want MinLR 0.04", opt.LR)
	}
	// At the floor, no further decay is reported.
	s.Step(0.8)
	if s.Step(0.8) {
		t.Error("decay reported at MinLR floor")
	}
}
