// Package nn provides the neural building blocks above the tensor engine:
// parameterised layers (linear, embedding, normalisation wrappers, MLP
// readout) and the Adam optimiser. Layers expose their trainable tensors
// through Params() so models can register everything with one optimiser.
package nn

import (
	"math"
	"math/rand"

	"mega/internal/compute"
	"mega/internal/tensor"
)

// Layer is anything with trainable parameters.
type Layer interface {
	Params() []*tensor.Tensor
}

// Linear is a fully connected layer y = x·W + b.
type Linear struct {
	W *tensor.Tensor
	B *tensor.Tensor
}

var _ Layer = (*Linear)(nil)

// NewLinear constructs a Glorot-initialised in×out linear layer.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	std := math.Sqrt(2.0 / float64(in+out))
	return &Linear{
		W: tensor.Randn(rng, in, out, std).RequireGrad(),
		B: tensor.Zeros(1, out).RequireGrad(),
	}
}

// Forward applies the layer to x (rows×in).
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	return tensor.AddRowVec(tensor.MatMul(x, l.W), l.B)
}

// Params implements Layer.
func (l *Linear) Params() []*tensor.Tensor { return []*tensor.Tensor{l.W, l.B} }

// Embedding maps categorical IDs to dense rows of a trainable table.
type Embedding struct {
	Table *tensor.Tensor
}

var _ Layer = (*Embedding)(nil)

// NewEmbedding constructs a numTypes×dim embedding table.
func NewEmbedding(rng *rand.Rand, numTypes, dim int) *Embedding {
	return &Embedding{Table: tensor.Randn(rng, numTypes, dim, 0.1).RequireGrad()}
}

// Forward looks up the rows for ids.
func (e *Embedding) Forward(ids []int32) *tensor.Tensor {
	return tensor.EmbedRows(e.Table, ids)
}

// Params implements Layer.
func (e *Embedding) Params() []*tensor.Tensor { return []*tensor.Tensor{e.Table} }

// Norm wraps either LayerNorm or BatchNorm with trainable affine
// parameters; which one is selected by kind.
type Norm struct {
	Gamma *tensor.Tensor
	Beta  *tensor.Tensor
	kind  NormKind
}

var _ Layer = (*Norm)(nil)

// NormKind selects the normalisation flavour.
type NormKind int

// Normalisation flavours: GatedGCN uses batch norm, GT uses layer norm.
const (
	LayerNorm NormKind = iota + 1
	BatchNorm
)

// NewNorm constructs a normalisation layer over dim features.
func NewNorm(kind NormKind, dim int) *Norm {
	return &Norm{
		Gamma: tensor.Full(1, dim, 1).RequireGrad(),
		Beta:  tensor.Zeros(1, dim).RequireGrad(),
		kind:  kind,
	}
}

// Forward normalises x.
func (n *Norm) Forward(x *tensor.Tensor) *tensor.Tensor {
	if n.kind == BatchNorm {
		return tensor.BatchNorm(x, n.Gamma, n.Beta)
	}
	return tensor.LayerNorm(x, n.Gamma, n.Beta)
}

// Params implements Layer.
func (n *Norm) Params() []*tensor.Tensor { return []*tensor.Tensor{n.Gamma, n.Beta} }

// MLP is a two-layer ReLU perceptron used as the graph-level readout head.
type MLP struct {
	L1 *Linear
	L2 *Linear
}

var _ Layer = (*MLP)(nil)

// NewMLP constructs an in→hidden→out readout.
func NewMLP(rng *rand.Rand, in, hidden, out int) *MLP {
	return &MLP{L1: NewLinear(rng, in, hidden), L2: NewLinear(rng, hidden, out)}
}

// Forward applies the MLP.
func (m *MLP) Forward(x *tensor.Tensor) *tensor.Tensor {
	return m.L2.Forward(tensor.ReLU(m.L1.Forward(x)))
}

// Params implements Layer.
func (m *MLP) Params() []*tensor.Tensor {
	return append(m.L1.Params(), m.L2.Params()...)
}

// Replicate returns a view of the layer sharing the parameter Data slices
// but carrying independent Grad buffers. The shard engine builds one
// replica per chunk so each worker's tape accumulates gradients privately;
// values stay in lockstep for free because the optimiser mutates the
// shared Data in place.
func (l *Linear) Replicate() *Linear {
	return &Linear{W: replicaOf(l.W), B: replicaOf(l.B)}
}

// Replicate returns a grad-isolated, data-shared view (see Linear.Replicate).
func (e *Embedding) Replicate() *Embedding {
	return &Embedding{Table: replicaOf(e.Table)}
}

// Replicate returns a grad-isolated, data-shared view (see Linear.Replicate).
func (n *Norm) Replicate() *Norm {
	return &Norm{Gamma: replicaOf(n.Gamma), Beta: replicaOf(n.Beta), kind: n.kind}
}

// Replicate returns a grad-isolated, data-shared view (see Linear.Replicate).
func (m *MLP) Replicate() *MLP {
	return &MLP{L1: m.L1.Replicate(), L2: m.L2.Replicate()}
}

// replicaOf wraps p's backing data in a fresh trainable leaf.
func replicaOf(p *tensor.Tensor) *tensor.Tensor {
	return tensor.New(p.Rows(), p.Cols(), p.Data).RequireGrad()
}

// CollectParams flattens the parameters of many layers.
func CollectParams(layers ...Layer) []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range layers {
		out = append(out, l.Params()...)
	}
	return out
}

// CountParams returns the total number of scalar parameters, the "Parameter
// Volume" of Table I.
func CountParams(params []*tensor.Tensor) int {
	total := 0
	for _, p := range params {
		total += p.Size()
	}
	return total
}

// Adam is the Adam optimiser (Kingma & Ba) over a fixed parameter list.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	params  []*tensor.Tensor
	m, v    [][]float64
	step    int
	maxNorm float64
}

// NewAdam constructs an Adam optimiser with the given learning rate and
// default betas (0.9, 0.999). Gradients are clipped to global norm 5, the
// benchmark-suite default.
func NewAdam(params []*tensor.Tensor, lr float64) *Adam {
	a := &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		params:  params,
		m:       make([][]float64, len(params)),
		v:       make([][]float64, len(params)),
		maxNorm: 5,
	}
	for i, p := range params {
		a.m[i] = make([]float64, p.Size())
		a.v[i] = make([]float64, p.Size())
	}
	return a
}

// ZeroGrad clears every parameter gradient.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// Step applies one Adam update from the accumulated gradients. The squared
// gradient norm reduces per parameter through compute.ReduceSum's fixed
// partition (combined in parameter order), and the elementwise update fans
// out across the worker pool — both thread-count invariant.
func (a *Adam) Step() {
	a.step++
	// Global-norm gradient clipping.
	norm := 0.0
	for _, p := range a.params {
		grad := p.Grad
		norm += compute.ReduceSum(len(grad), func(lo, hi int) float64 {
			s := 0.0
			for e := lo; e < hi; e++ {
				s += grad[e] * grad[e]
			}
			return s
		})
	}
	norm = math.Sqrt(norm)
	clip := 1.0
	if a.maxNorm > 0 && norm > a.maxNorm {
		clip = a.maxNorm / norm
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.params {
		if p.Grad == nil {
			continue
		}
		m, v, grad, data := a.m[i], a.v[i], p.Grad, p.Data
		compute.ParallelGrain(len(data), 2048, func(lo, hi int) {
			for e := lo; e < hi; e++ {
				g := grad[e] * clip
				m[e] = a.Beta1*m[e] + (1-a.Beta1)*g
				v[e] = a.Beta2*v[e] + (1-a.Beta2)*g*g
				mh := m[e] / bc1
				vh := v[e] / bc2
				data[e] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
			}
		})
	}
}

// NumParams returns the total scalar parameter count under optimisation.
func (a *Adam) NumParams() int { return CountParams(a.params) }

// SetLR updates the learning rate (used by schedulers).
func (a *Adam) SetLR(lr float64) { a.LR = lr }

// PlateauScheduler halves (by Factor) the optimiser's learning rate when
// the monitored value stops improving for Patience epochs — the
// benchmark-suite training protocol (Dwivedi et al., the paper's [45]).
type PlateauScheduler struct {
	Opt      *Adam
	Factor   float64 // multiplier on plateau (default 0.5)
	Patience int     // epochs without improvement before decay (default 5)
	MinLR    float64 // stop decaying below this (default 1e-5)

	best   float64
	since  int
	inited bool
}

// NewPlateauScheduler wraps an optimiser with the default schedule.
func NewPlateauScheduler(opt *Adam) *PlateauScheduler {
	return &PlateauScheduler{Opt: opt, Factor: 0.5, Patience: 5, MinLR: 1e-5}
}

// Step observes one epoch's monitored value (typically validation loss)
// and returns true if it decayed the learning rate.
func (s *PlateauScheduler) Step(value float64) bool {
	if !s.inited || value < s.best {
		s.best = value
		s.inited = true
		s.since = 0
		return false
	}
	s.since++
	if s.since < s.Patience {
		return false
	}
	s.since = 0
	next := s.Opt.LR * s.Factor
	if next < s.MinLR {
		next = s.MinLR
	}
	if next == s.Opt.LR {
		return false
	}
	s.Opt.SetLR(next)
	return true
}
