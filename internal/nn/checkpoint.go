package nn

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"mega/internal/tensor"
)

// Checkpointing: serialise and restore a model's parameter list. The format
// is versioned little-endian — a magic, the tensor count, then each
// tensor's shape and float64 data. Parameters are matched positionally, so
// the loading model must be built with the same configuration.

const (
	ckptMagic   = uint32(0x4D504152) // "MPAR"
	ckptVersion = uint32(1)
)

// Checkpoint errors.
var (
	ErrCkptMagic    = errors.New("nn: not a checkpoint file")
	ErrCkptVersion  = errors.New("nn: unsupported checkpoint version")
	ErrCkptMismatch = errors.New("nn: checkpoint does not match the model")
	ErrCkptCorrupt  = errors.New("nn: corrupt checkpoint")
)

// SaveParams writes the parameter list to w.
func SaveParams(w io.Writer, params []*tensor.Tensor) error {
	bw := bufio.NewWriter(w)
	for _, v := range []uint32{ckptMagic, ckptVersion, uint32(len(params))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, p := range params {
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.Rows())); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.Cols())); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, p.Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadParams restores parameters in place from r. Every tensor's shape must
// match the checkpoint exactly.
func LoadParams(r io.Reader, params []*tensor.Tensor) error {
	br := bufio.NewReader(r)
	var magic, version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("%w: %v", ErrCkptCorrupt, err)
	}
	if magic != ckptMagic {
		return ErrCkptMagic
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return fmt.Errorf("%w: %v", ErrCkptCorrupt, err)
	}
	if version != ckptVersion {
		return fmt.Errorf("%w: %d", ErrCkptVersion, version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("%w: %v", ErrCkptCorrupt, err)
	}
	if int(count) != len(params) {
		return fmt.Errorf("%w: %d tensors in file, model has %d", ErrCkptMismatch, count, len(params))
	}
	for i, p := range params {
		var rows, cols uint32
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return fmt.Errorf("%w: tensor %d: %v", ErrCkptCorrupt, i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return fmt.Errorf("%w: tensor %d: %v", ErrCkptCorrupt, i, err)
		}
		if int(rows) != p.Rows() || int(cols) != p.Cols() {
			return fmt.Errorf("%w: tensor %d is %dx%d in file, %dx%d in model",
				ErrCkptMismatch, i, rows, cols, p.Rows(), p.Cols())
		}
		if err := binary.Read(br, binary.LittleEndian, p.Data); err != nil {
			return fmt.Errorf("%w: tensor %d data: %v", ErrCkptCorrupt, i, err)
		}
	}
	return nil
}
