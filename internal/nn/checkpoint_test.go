package nn

import (
	"bytes"
	"math/rand"
	"testing"

	"mega/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := NewMLP(rng, 4, 8, 2)
	dst := NewMLP(rand.New(rand.NewSource(2)), 4, 8, 2)

	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	// Outputs must now be identical.
	x := tensor.Randn(rng, 3, 4, 1)
	a := src.Forward(x.Detach())
	b := dst.Forward(x.Detach())
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("restored model diverges at %d: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}

func TestCheckpointRejectsMismatchedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := NewMLP(rng, 4, 8, 2)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}

	t.Run("wrong count", func(t *testing.T) {
		b := bytes.NewReader(buf.Bytes())
		short := NewLinear(rng, 4, 8)
		if err := LoadParams(b, short.Params()); err == nil {
			t.Error("mismatched tensor count should error")
		}
	})
	t.Run("wrong shape", func(t *testing.T) {
		b := bytes.NewReader(buf.Bytes())
		other := NewMLP(rng, 8, 4, 2) // transposed dims, same tensor count
		if err := LoadParams(b, other.Params()); err == nil {
			t.Error("mismatched shapes should error")
		}
	})
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewLinear(rng, 2, 2)
	for _, data := range [][]byte{nil, {1, 2, 3}, bytes.Repeat([]byte{0xFF}, 16)} {
		if err := LoadParams(bytes.NewReader(data), m.Params()); err == nil {
			t.Error("garbage should not load")
		}
	}
}

func TestCheckpointRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := NewLinear(rng, 8, 8)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if err := LoadParams(bytes.NewReader(full[:len(full)/2]), src.Params()); err == nil {
		t.Error("truncated checkpoint should error")
	}
}

func TestCheckpointPreservesTrainingProgress(t *testing.T) {
	// Train, checkpoint, keep training two copies from the same state:
	// both must evolve identically.
	rng := rand.New(rand.NewSource(6))
	m1 := NewMLP(rng, 3, 8, 1)
	x := tensor.Randn(rng, 8, 3, 1)
	target := tensor.Randn(rng, 8, 1, 1)

	opt := NewAdam(m1.Params(), 0.01)
	for i := 0; i < 5; i++ {
		opt.ZeroGrad()
		tensor.MSELoss(m1.Forward(x), target).Backward()
		opt.Step()
	}
	var buf bytes.Buffer
	if err := SaveParams(&buf, m1.Params()); err != nil {
		t.Fatal(err)
	}
	m2 := NewMLP(rand.New(rand.NewSource(99)), 3, 8, 1)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), m2.Params()); err != nil {
		t.Fatal(err)
	}
	l1 := tensor.MSELoss(m1.Forward(x), target).Item()
	l2 := tensor.MSELoss(m2.Forward(x), target).Item()
	if l1 != l2 {
		t.Errorf("restored loss %v != original %v", l2, l1)
	}
}
