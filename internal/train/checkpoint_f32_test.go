package train

import (
	"bytes"
	"testing"

	"mega/internal/datasets"
	"mega/internal/models"
)

// TestCheckpointDowncastDeterministic pins the checkpoint→float32 pipeline:
// loading the same checkpoint twice — and through both container versions —
// must produce bit-identical downcast parameter snapshots. The downcast is
// one rounding per weight at load; nothing about container framing or load
// order may leak into the frozen f32 model.
func TestCheckpointDowncastDeterministic(t *testing.T) {
	for _, name := range []string{"GT", "GAT"} {
		orig, err := NewModel(name, tinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		meta := Checkpoint{Model: name, Config: tinyConfig(), Task: datasets.TaskRegression}
		var buf bytes.Buffer
		if err := SaveCheckpoint(&buf, meta, orig); err != nil {
			t.Fatal(err)
		}
		v2 := buf.Bytes()

		// The v1 container is the same framing without the CRC trailer.
		v1 := append([]byte(ckptMagicV1), v2[len(ckptMagic):len(v2)-ckptTrailerLen]...)

		want, err := models.PrepareF32(orig)
		if err != nil {
			t.Fatal(err)
		}
		ref := want.SnapshotParams()
		if len(ref) == 0 {
			t.Fatal("empty f32 snapshot")
		}
		for _, c := range []struct {
			container string
			data      []byte
		}{
			{"MEGACKP2", v2}, {"MEGACKP2-again", v2}, {"MEGACKP1", v1},
		} {
			_, m, err := LoadCheckpoint(bytes.NewReader(c.data))
			if err != nil {
				t.Fatalf("%s/%s: %v", name, c.container, err)
			}
			f32m, err := models.PrepareF32(m)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, c.container, err)
			}
			snap := f32m.SnapshotParams()
			if len(snap) != len(ref) {
				t.Fatalf("%s/%s: snapshot length %d, want %d", name, c.container, len(snap), len(ref))
			}
			for i := range snap {
				if snap[i] != ref[i] {
					t.Fatalf("%s/%s: downcast differs at %d: %v vs %v",
						name, c.container, i, snap[i], ref[i])
				}
			}
		}
	}
}
