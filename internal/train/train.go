// Package train runs end-to-end GNN training for the convergence
// experiments (Figures 11–15): real learning dynamics computed in Go,
// placed on the simulated GPU clock from gpusim so the wall-clock axis
// reflects the kernels each engine would execute (see DESIGN.md,
// substitutions).
package train

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"mega/internal/compute"
	"mega/internal/datasets"
	"mega/internal/gpusim"
	"mega/internal/models"
	"mega/internal/nn"
	"mega/internal/retry"
	"mega/internal/tensor"
)

// Options configures one training run.
type Options struct {
	// Model selects the configuration: "GCN" or "GT".
	Model string
	// Engine selects the attention engine.
	Engine models.EngineKind
	// Dim/Layers/Heads size the model (defaults 64/4/4).
	Dim    int
	Layers int
	Heads  int
	// BatchSize groups instances per step (default 64).
	BatchSize int
	// LR is the Adam learning rate (default 1e-3).
	LR float64
	// Epochs bounds training (default 10).
	Epochs int
	// Seed seeds parameter init.
	Seed int64
	// Profile attaches a GPU simulator; required for simulated-time axes.
	Profile bool
	// Mega configures MEGA preprocessing (Engine == EngineMega only).
	Mega models.MegaOptions
	// MaxTrain/MaxVal cap the instances used (0 = all), for fast tests.
	MaxTrain int
	MaxVal   int
	// LRPlateau enables the benchmark suite's reduce-on-plateau schedule:
	// halve the learning rate after 5 epochs without validation-loss
	// improvement.
	LRPlateau bool
	// Threads caps the compute worker pool for the duration of the run
	// (0 = leave the process-wide budget alone; see internal/compute).
	// Results are identical at any setting — the kernels partition work
	// deterministically — so this is purely a resource-control knob.
	Threads int
	// Attention selects the attention implementation ("fused"/"staged");
	// empty defers to MEGA_ATTENTION then the fused default. Both paths
	// are bit-identical, so this is a performance knob, not a result knob.
	Attention string
	// CheckpointDir enables periodic checkpointing: every CheckpointEvery
	// epochs (and after the final epoch) the model is written atomically
	// to CheckpointDir/ckpt-<epoch>.ckpt. Empty disables.
	CheckpointDir string
	// CheckpointEvery is the epoch interval for periodic checkpoints
	// (default 1 when CheckpointDir is set).
	CheckpointEvery int
	// Resume loads the newest good checkpoint from CheckpointDir before
	// training and continues from its recorded epoch. Corrupt files are
	// quarantined, not fatal; an empty directory starts fresh. The
	// checkpoint must match this run's model name and configuration.
	// Optimiser moments are not checkpointed: the resumed run restarts
	// Adam at the loaded parameters.
	Resume bool
	// Shards enables shard-parallel execution of the MEGA engine: each
	// training batch runs forward and backward across Shards chunk
	// workers (GT + EngineMega only; Shards must divide 8). The training
	// trajectory is bit-identical at every Shards value >= 1 — Shards=1
	// runs the same chunked engine on one worker — but differs from the
	// Shards=0 monolithic path, whose gradient reductions accumulate in
	// a different (equally valid) order. Contexts the planner rejects
	// (path shorter than 8 chunks, window wider than a chunk) fall back
	// to the monolithic path; the fallback is worker-count-independent,
	// so trajectories stay comparable across Shards values. 0 disables.
	Shards int
}

func (o Options) withDefaults() Options {
	if o.Model == "" {
		o.Model = "GCN"
	}
	if o.Engine == 0 {
		o.Engine = models.EngineDGL
	}
	if o.Dim == 0 {
		o.Dim = 64
	}
	if o.Layers == 0 {
		o.Layers = 4
	}
	if o.Heads == 0 {
		o.Heads = 4
	}
	if o.BatchSize == 0 {
		o.BatchSize = 64
	}
	if o.LR == 0 {
		o.LR = 1e-3
	}
	if o.Epochs == 0 {
		o.Epochs = 10
	}
	if o.CheckpointDir != "" && o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1
	}
	return o
}

// EpochStat records one epoch's outcome.
type EpochStat struct {
	Epoch     int
	TrainLoss float64
	ValLoss   float64
	// ValMetric is MAE for regression, accuracy for classification.
	ValMetric float64
	// SimTime is the cumulative simulated GPU time at epoch end.
	SimTime time.Duration
	// WallTime is cumulative real (Go) time, informational only.
	WallTime time.Duration
}

// Result is a completed run.
type Result struct {
	Stats []EpochStat
	// Sim exposes the simulator for kernel-level reporting (nil when
	// profiling is off).
	Sim *gpusim.Sim
	// Params is the model's trainable parameter count.
	Params int
	// Task echoes the dataset task.
	Task datasets.Task
	// Model is the trained network, kept for checkpointing and direct
	// inference after the run.
	Model models.Model
	// ModelName and Config record the architecture for Checkpoint().
	ModelName string
	Config    models.Config
	// Diverged reports that training aborted early because the loss went
	// non-finite; Stats covers only the completed epochs.
	Diverged bool
	// ResumedEpoch is the checkpointed epoch the run continued from
	// (0 = fresh start).
	ResumedEpoch int
	// LastCheckpoint is the newest checkpoint file this run wrote.
	LastCheckpoint string
	// CheckpointFailures counts periodic checkpoints that failed even
	// after retries; training continues past them.
	CheckpointFailures int
	// QuarantinedCheckpoints counts corrupt files quarantined while
	// resuming.
	QuarantinedCheckpoints int
	// ShardFallbacks counts training contexts the shard planner rejected
	// (path too short to cut into µchunks); those contexts trained through
	// the monolithic path instead. Only meaningful when Options.Shards > 0.
	ShardFallbacks int
	// ShardFallbackReasons breaks ShardFallbacks down by cause, mirroring
	// serve's shard_fallback_reasons taxonomy: "unshardable" for
	// structural rejections (models.ErrUnshardable — path too short, band
	// wider than a µchunk), "error" for anything else. nil when nothing
	// fell back.
	ShardFallbackReasons map[string]int
}

// FinalMetric returns the last epoch's validation metric.
func (r *Result) FinalMetric() float64 {
	if len(r.Stats) == 0 {
		return 0
	}
	return r.Stats[len(r.Stats)-1].ValMetric
}

// TimeToLoss returns the first simulated time at which validation loss
// dropped to at most target, and whether it happened — the convergence-
// speedup measure of §IV-B4.
func (r *Result) TimeToLoss(target float64) (time.Duration, bool) {
	for _, s := range r.Stats {
		if s.ValLoss <= target {
			return s.SimTime, true
		}
	}
	return 0, false
}

// ErrUnknownModel is returned for model names other than GCN/GT.
var ErrUnknownModel = errors.New("train: unknown model")

// Run trains the configured model on ds and returns per-epoch statistics.
func Run(ds *datasets.Dataset, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Threads > 0 {
		prev := compute.SetMaxThreads(opts.Threads)
		defer compute.SetMaxThreads(prev)
	}

	cfg := models.Config{
		Dim: opts.Dim, Layers: opts.Layers, Heads: opts.Heads,
		NodeTypes: ds.NumNodeTypes, EdgeTypes: ds.NumEdgeTypes,
		OutDim: 1, Seed: opts.Seed, Attention: opts.Attention,
	}
	if ds.Task == datasets.TaskClassification {
		cfg.OutDim = ds.NumClasses
	}
	model, err := NewModel(opts.Model, cfg)
	if err != nil {
		return nil, err
	}

	startEpoch := 1
	var quarantined int
	if opts.CheckpointDir != "" {
		if err := os.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("train: checkpoint dir: %w", err)
		}
	}
	if opts.Resume && opts.CheckpointDir != "" {
		meta, loaded, rep, lerr := LoadLatestCheckpoint(opts.CheckpointDir)
		quarantined = len(rep.Quarantined)
		switch {
		case errors.Is(lerr, ErrNoCheckpoint):
			// Fresh start; quarantines (if any) are still reported.
		case lerr != nil:
			return nil, lerr
		case meta.Model != opts.Model || meta.Config != cfg:
			return nil, fmt.Errorf("%w: checkpoint %s holds %s %+v, run wants %s %+v",
				ErrResumeMismatch, rep.Path, meta.Model, meta.Config, opts.Model, cfg)
		default:
			model = loaded
			startEpoch = meta.Epoch + 1
		}
	}

	// Sharded execution: validated here, after any checkpoint resume, so
	// shardGT always points at the model that will actually train.
	var shardGT *models.GT
	if opts.Shards > 0 {
		if opts.Engine != models.EngineMega {
			return nil, fmt.Errorf("train: sharded execution requires the MEGA engine")
		}
		if opts.Profile {
			return nil, fmt.Errorf("train: sharded execution does not support profiling")
		}
		gt, ok := model.(*models.GT)
		if !ok {
			return nil, fmt.Errorf("train: sharded execution requires the GT model, got %s", opts.Model)
		}
		shardGT = gt
	}

	var sim *gpusim.Sim
	if opts.Profile {
		sim = gpusim.New(gpusim.GTX1080())
	}

	trainInsts := capInstances(ds.Train, opts.MaxTrain)
	valInsts := capInstances(ds.Val, opts.MaxVal)
	// One arena for the whole run: every batch reuses the same scratch
	// buffers, so the steady-state fused-attention path allocates nothing.
	arena := tensor.NewArena()
	trainCtxs, err := buildContexts(trainInsts, opts, sim, arena)
	if err != nil {
		return nil, err
	}
	valCtxs, err := buildContexts(valInsts, opts, sim, arena)
	if err != nil {
		return nil, err
	}
	// Per-context shard engines, built once and reused every epoch (the
	// plan and parameter replicas are static; only tapes are per-step).
	// A context the planner rejects keeps a nil engine and trains through
	// the monolithic path — the rejection criteria are chunk-level, so a
	// context falls back identically at every worker count.
	var shardEngines []*models.ShardEngine
	shardFallbacks := 0
	var shardFallbackReasons map[string]int
	if shardGT != nil {
		shardEngines = make([]*models.ShardEngine, len(trainCtxs))
		var fallbackErr error
		for i, ctx := range trainCtxs {
			if eng, err := models.NewShardEngine(shardGT, ctx, opts.Shards); err == nil {
				shardEngines[i] = eng
			} else {
				shardFallbacks++
				fallbackErr = err
				reason := "error"
				if errors.Is(err, models.ErrUnshardable) {
					reason = "unshardable"
				}
				if shardFallbackReasons == nil {
					shardFallbackReasons = make(map[string]int)
				}
				shardFallbackReasons[reason]++
			}
		}
		if shardFallbacks > 0 {
			// One line for the whole run, not one per context: the
			// rejection criteria are chunk-level and static, so every epoch
			// would repeat the same message. The reasons map mirrors serve's
			// shard_fallback_reasons so the fallback is never silent.
			log.Printf("train: %d/%d contexts fell back to the monolithic engine (shards=%d, reasons=%v): %v",
				shardFallbacks, len(trainCtxs), opts.Shards, shardFallbackReasons, fallbackErr)
		}
	}

	opt := nn.NewAdam(model.Params(), opts.LR)
	res := &Result{
		Sim: sim, Params: opt.NumParams(), Task: ds.Task,
		Model: model, ModelName: opts.Model, Config: cfg,
		QuarantinedCheckpoints: quarantined,
		ShardFallbacks:         shardFallbacks,
		ShardFallbackReasons:   shardFallbackReasons,
	}
	if startEpoch > 1 {
		res.ResumedEpoch = startEpoch - 1
	}
	var sched *nn.PlateauScheduler
	if opts.LRPlateau {
		sched = nn.NewPlateauScheduler(opt)
	}

	start := time.Now()
	for epoch := startEpoch; epoch <= opts.Epochs; epoch++ {
		trainLoss := 0.0
		for i, ctx := range trainCtxs {
			opt.ZeroGrad()
			var eng *models.ShardEngine
			if shardEngines != nil {
				eng = shardEngines[i]
			}
			var out *tensor.Tensor
			if eng != nil {
				out = eng.Forward()
			} else {
				out = model.Forward(ctx)
			}
			loss := lossFor(ds.Task, out, ctx)
			if !loss.IsFinite() {
				// Divergence guard: a NaN/Inf loss poisons every later
				// step; abort and report what completed.
				res.Diverged = true
				return res, nil
			}
			loss.Backward()
			if eng != nil {
				// loss.Backward seeded the readout and final-embedding
				// gradients; the shard workers now push them through the
				// layers and fold replica gradients into the model.
				eng.Backward()
			}
			ctx.Prof.Backward()
			opt.Step()
			trainLoss += loss.Item()
		}
		if len(trainCtxs) > 0 {
			trainLoss /= float64(len(trainCtxs))
		}

		valLoss, valMetric := evaluate(ds.Task, model, valCtxs)
		if sched != nil {
			sched.Step(valLoss)
		}

		stat := EpochStat{
			Epoch:     epoch,
			TrainLoss: trainLoss,
			ValLoss:   valLoss,
			ValMetric: valMetric,
			WallTime:  time.Since(start),
		}
		if sim != nil {
			stat.SimTime = sim.TotalTime()
		}
		res.Stats = append(res.Stats, stat)

		if opts.CheckpointDir != "" &&
			(epoch%opts.CheckpointEvery == 0 || epoch == opts.Epochs) {
			meta := res.Checkpoint(ds.Name)
			meta.Epoch = epoch
			path := CheckpointPath(opts.CheckpointDir, epoch)
			err := retry.Do(context.Background(), ckptSaveRetry, func() error {
				return SaveCheckpointFile(path, meta, model)
			})
			if err != nil {
				// A failed periodic checkpoint costs durability, not the
				// run: keep training and surface the count.
				res.CheckpointFailures++
			} else {
				res.LastCheckpoint = path
			}
		}
	}
	return res, nil
}

// ckptSaveRetry paces periodic-checkpoint write retries (torn writes are
// retried against a fresh temp file; the rename is atomic either way).
var ckptSaveRetry = retry.Config{Attempts: 3, Base: 5 * time.Millisecond}

// ErrResumeMismatch means the newest good checkpoint does not describe the
// model this run is configured to train.
var ErrResumeMismatch = errors.New("train: resume checkpoint mismatch")

// Evaluate runs inference over prebuilt contexts; exported for the test
// split of the experiments.
func Evaluate(task datasets.Task, model models.Model, ctxs []*models.Context) (loss, metric float64) {
	return evaluate(task, model, ctxs)
}

func evaluate(task datasets.Task, model models.Model, ctxs []*models.Context) (loss, metric float64) {
	if len(ctxs) == 0 {
		return 0, 0
	}
	for _, ctx := range ctxs {
		out := model.Forward(ctx)
		l := lossFor(task, out, ctx)
		loss += l.Item()
		if task == datasets.TaskClassification {
			metric += tensor.Accuracy(out, ctx.Labels)
		} else {
			metric += tensor.MAELoss(out.Detach(), ctx.Targets).Item()
		}
		ctx.Prof.Discard()
	}
	n := float64(len(ctxs))
	return loss / n, metric / n
}

// lossFor selects the training loss per task: MAE-style L1 for the
// molecular regressions (the benchmark-suite convention), cross-entropy
// for classification.
func lossFor(task datasets.Task, out *tensor.Tensor, ctx *models.Context) *tensor.Tensor {
	if task == datasets.TaskClassification {
		return tensor.CrossEntropyLoss(out, ctx.Labels)
	}
	return tensor.MAELoss(out, ctx.Targets)
}

// buildContexts batches instances and constructs per-batch engine contexts
// sharing one scratch arena.
func buildContexts(insts []datasets.Instance, opts Options, sim *gpusim.Sim, arena *tensor.Arena) ([]*models.Context, error) {
	var out []*models.Context
	for lo := 0; lo < len(insts); lo += opts.BatchSize {
		hi := lo + opts.BatchSize
		if hi > len(insts) {
			hi = len(insts)
		}
		var ctx *models.Context
		var err error
		if opts.Engine == models.EngineMega {
			ctx, err = models.NewMegaContext(insts[lo:hi], opts.Mega, sim, opts.Dim)
		} else {
			ctx, err = models.NewDGLContext(insts[lo:hi], sim, opts.Dim)
		}
		if err != nil {
			return nil, err
		}
		ctx.Scratch = arena
		out = append(out, ctx)
	}
	return out, nil
}

func capInstances(insts []datasets.Instance, max int) []datasets.Instance {
	if max > 0 && len(insts) > max {
		return insts[:max]
	}
	return insts
}
