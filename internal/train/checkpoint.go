package train

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"mega/internal/datasets"
	"mega/internal/models"
	"mega/internal/nn"
)

// Checkpointing: persist a trained model so a separate process (megaserve)
// can load it without retraining. The format is a small self-describing
// container — magic, a JSON header carrying the model architecture and
// task, then the nn parameter blob — so loading needs no out-of-band
// configuration: the header rebuilds the exact model shape and the blob
// fills it.

const ckptMagic = "MEGACKP1"

// Checkpoint describes a serialised model: everything needed to rebuild the
// network and interpret its outputs.
type Checkpoint struct {
	// Model is the configuration name: "GCN", "GT" or "GAT".
	Model string `json:"model"`
	// Config sizes the network; it must rebuild the identical parameter
	// shapes (nn.LoadParams matches positionally).
	Config models.Config `json:"config"`
	// Task tells consumers how to read the output rows: regression
	// (one scalar) or classification (class logits).
	Task datasets.Task `json:"task"`
	// Dataset names the training workload, informational only.
	Dataset string `json:"dataset,omitempty"`
}

// Checkpoint container errors.
var (
	ErrCkptMagic  = errors.New("train: not a model checkpoint")
	ErrCkptHeader = errors.New("train: corrupt checkpoint header")
)

// NewModel constructs a model by configuration name — the single switch
// shared by the trainer and checkpoint loading.
func NewModel(name string, cfg models.Config) (models.Model, error) {
	switch name {
	case "GCN":
		return models.NewGatedGCN(cfg), nil
	case "GT":
		return models.NewGT(cfg), nil
	case "GAT":
		return models.NewGAT(cfg), nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
}

// SaveCheckpoint writes meta and the model's parameters to w.
func SaveCheckpoint(w io.Writer, meta Checkpoint, model models.Model) error {
	header, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ckptMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(header))); err != nil {
		return err
	}
	if _, err := bw.Write(header); err != nil {
		return err
	}
	if err := nn.SaveParams(bw, model.Params()); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadCheckpoint reads a checkpoint from r, rebuilds the model it
// describes, and restores its parameters.
func LoadCheckpoint(r io.Reader) (Checkpoint, models.Model, error) {
	var meta Checkpoint
	br := bufio.NewReader(r)
	magic := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return meta, nil, fmt.Errorf("%w: %v", ErrCkptMagic, err)
	}
	if string(magic) != ckptMagic {
		return meta, nil, ErrCkptMagic
	}
	var headerLen uint32
	if err := binary.Read(br, binary.LittleEndian, &headerLen); err != nil {
		return meta, nil, fmt.Errorf("%w: %v", ErrCkptHeader, err)
	}
	header := make([]byte, headerLen)
	if _, err := io.ReadFull(br, header); err != nil {
		return meta, nil, fmt.Errorf("%w: %v", ErrCkptHeader, err)
	}
	if err := json.Unmarshal(header, &meta); err != nil {
		return meta, nil, fmt.Errorf("%w: %v", ErrCkptHeader, err)
	}
	model, err := NewModel(meta.Model, meta.Config)
	if err != nil {
		return meta, nil, err
	}
	if err := nn.LoadParams(br, model.Params()); err != nil {
		return meta, nil, err
	}
	return meta, model, nil
}

// SaveCheckpointFile writes the checkpoint to path.
func SaveCheckpointFile(path string, meta Checkpoint, model models.Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveCheckpoint(f, meta, model); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCheckpointFile reads a checkpoint from path.
func LoadCheckpointFile(path string) (Checkpoint, models.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return Checkpoint{}, nil, err
	}
	defer f.Close()
	return LoadCheckpoint(f)
}

// Checkpoint packages a completed run's model description for
// serialisation: SaveCheckpointFile(path, res.Checkpoint(dsName), res.Model).
func (r *Result) Checkpoint(dataset string) Checkpoint {
	return Checkpoint{Model: r.ModelName, Config: r.Config, Task: r.Task, Dataset: dataset}
}
