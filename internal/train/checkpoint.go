package train

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"time"

	"mega/internal/datasets"
	"mega/internal/faults"
	"mega/internal/models"
	"mega/internal/nn"
	"mega/internal/retry"
)

// Checkpointing: persist a trained model so a separate process (megaserve)
// can load it without retraining. The format is a small self-describing
// container — magic, a JSON header carrying the model architecture and
// task, then the nn parameter blob, then a CRC32 trailer — so loading
// needs no out-of-band configuration and silently corrupted files are
// detected rather than served.
//
// Crash safety: SaveCheckpointFile writes a temp file, fsyncs, and
// renames into place, so a crash (kill -9 included) at any instant leaves
// either the previous checkpoint or the new one — never a torn file under
// the final name. LoadLatestCheckpoint walks a checkpoint directory
// newest-first, quarantines files that fail integrity checks (renamed to
// *.corrupt, never deleted), and returns the newest good one.

const (
	// ckptMagic is the current container format: v2 appends a CRC32-IEEE
	// trailer over every preceding byte.
	ckptMagic = "MEGACKP2"
	// ckptMagicV1 is the PR 1 format without the trailer; still loadable
	// so existing checkpoint files keep working.
	ckptMagicV1 = "MEGACKP1"
	// ckptTrailerLen is the trailer size: one little-endian uint32 CRC.
	ckptTrailerLen = 4
)

// Checkpoint describes a serialised model: everything needed to rebuild the
// network and interpret its outputs.
type Checkpoint struct {
	// Model is the configuration name: "GCN", "GT" or "GAT".
	Model string `json:"model"`
	// Config sizes the network; it must rebuild the identical parameter
	// shapes (nn.LoadParams matches positionally).
	Config models.Config `json:"config"`
	// Task tells consumers how to read the output rows: regression
	// (one scalar) or classification (class logits).
	Task datasets.Task `json:"task"`
	// Dataset names the training workload, informational only.
	Dataset string `json:"dataset,omitempty"`
	// Epoch records how many epochs the parameters have trained for —
	// the resume point for train.Run's periodic checkpointing. Optimiser
	// state (Adam moments) is not captured: a resumed run restarts the
	// optimiser at the checkpointed parameters.
	Epoch int `json:"epoch,omitempty"`
}

// Checkpoint container errors.
var (
	ErrCkptMagic   = errors.New("train: not a model checkpoint")
	ErrCkptHeader  = errors.New("train: corrupt checkpoint header")
	ErrCkptCorrupt = errors.New("train: checkpoint failed integrity check")
	// ErrNoCheckpoint is returned by LoadLatestCheckpoint when the
	// directory holds no loadable checkpoint.
	ErrNoCheckpoint = errors.New("train: no usable checkpoint")
)

// NewModel constructs a model by configuration name — the single switch
// shared by the trainer and checkpoint loading.
func NewModel(name string, cfg models.Config) (models.Model, error) {
	switch name {
	case "GCN":
		return models.NewGatedGCN(cfg), nil
	case "GT":
		return models.NewGT(cfg), nil
	case "GAT":
		return models.NewGAT(cfg), nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
}

// SaveCheckpoint writes meta and the model's parameters to w, trailed by a
// CRC32 over every preceding byte.
func SaveCheckpoint(w io.Writer, meta Checkpoint, model models.Model) error {
	header, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(w)
	cw := io.MultiWriter(bw, crc)
	if _, err := io.WriteString(cw, ckptMagic); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(len(header))); err != nil {
		return err
	}
	if _, err := cw.Write(header); err != nil {
		return err
	}
	if err := nn.SaveParams(cw, model.Params()); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadCheckpoint reads a checkpoint from r, verifies its integrity,
// rebuilds the model it describes, and restores its parameters. Both the
// current (CRC-trailed) and the legacy v1 container load.
func LoadCheckpoint(r io.Reader) (Checkpoint, models.Model, error) {
	var meta Checkpoint
	data, err := io.ReadAll(r)
	if err != nil {
		return meta, nil, fmt.Errorf("%w: %v", ErrCkptCorrupt, err)
	}
	if len(data) < len(ckptMagic) {
		return meta, nil, fmt.Errorf("%w: %d bytes", ErrCkptMagic, len(data))
	}
	body := data[len(ckptMagic):]
	switch string(data[:len(ckptMagic)]) {
	case ckptMagic:
		if len(body) < ckptTrailerLen {
			return meta, nil, fmt.Errorf("%w: truncated before trailer", ErrCkptCorrupt)
		}
		payload := data[:len(data)-ckptTrailerLen]
		want := binary.LittleEndian.Uint32(data[len(data)-ckptTrailerLen:])
		if got := crc32.ChecksumIEEE(payload); got != want {
			return meta, nil, fmt.Errorf("%w: crc 0x%08x, trailer 0x%08x", ErrCkptCorrupt, got, want)
		}
		body = body[:len(body)-ckptTrailerLen]
	case ckptMagicV1:
		// Legacy container: no integrity trailer to verify.
	default:
		return meta, nil, ErrCkptMagic
	}

	br := bytes.NewReader(body)
	var headerLen uint32
	if err := binary.Read(br, binary.LittleEndian, &headerLen); err != nil {
		return meta, nil, fmt.Errorf("%w: %v", ErrCkptHeader, err)
	}
	if int64(headerLen) > int64(br.Len()) {
		return meta, nil, fmt.Errorf("%w: header length %d exceeds file", ErrCkptHeader, headerLen)
	}
	header := make([]byte, headerLen)
	if _, err := io.ReadFull(br, header); err != nil {
		return meta, nil, fmt.Errorf("%w: %v", ErrCkptHeader, err)
	}
	if err := json.Unmarshal(header, &meta); err != nil {
		return meta, nil, fmt.Errorf("%w: %v", ErrCkptHeader, err)
	}
	model, err := NewModel(meta.Model, meta.Config)
	if err != nil {
		return meta, nil, err
	}
	if err := nn.LoadParams(br, model.Params()); err != nil {
		return meta, nil, fmt.Errorf("%w: %v", ErrCkptCorrupt, err)
	}
	return meta, model, nil
}

// SaveCheckpointFile atomically writes the checkpoint to path: the bytes
// land in a temp file in the same directory, are fsynced, and are renamed
// over path, so a crash mid-write never leaves a torn file under the
// final name. The faults.TrainCkptSave injection point fires after the
// partial write and before the rename — the window a real crash would hit.
func SaveCheckpointFile(path string, meta Checkpoint, model models.Model) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := SaveCheckpoint(tmp, meta, model); err != nil {
		return err
	}
	if err := faults.Inject(faults.TrainCkptSave); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	// Persist the rename itself; best effort — some filesystems reject
	// directory fsync and the rename is already atomic.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadCheckpointFile reads a checkpoint from path.
func LoadCheckpointFile(path string) (Checkpoint, models.Model, error) {
	if err := faults.Inject(faults.TrainCkptLoad); err != nil {
		return Checkpoint{}, nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return Checkpoint{}, nil, err
	}
	defer f.Close()
	return LoadCheckpoint(f)
}

// CheckpointPath names the periodic checkpoint for one epoch inside dir;
// lexicographic order equals epoch order, which LoadLatestCheckpoint
// relies on.
func CheckpointPath(dir string, epoch int) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%06d.ckpt", epoch))
}

// LoadReport describes what LoadLatestCheckpoint did to find a good file.
type LoadReport struct {
	// Path is the checkpoint that loaded.
	Path string
	// Quarantined lists files that failed integrity checks and were
	// renamed aside (original names).
	Quarantined []string
	// Skipped lists files that kept failing with transient (IO) errors
	// after retries; they are left in place.
	Skipped []string
}

// ckptLoadRetry paces re-reads of a checkpoint that failed with a
// transient IO error (distinct from corruption, which is permanent).
var ckptLoadRetry = retry.Config{Attempts: 3, Base: 5 * time.Millisecond}

// LoadLatestCheckpoint scans dir for ckpt-*.ckpt files newest-first and
// returns the first one that loads cleanly. Files that fail integrity
// checks are quarantined — renamed to <name>.corrupt so they never shadow
// a good checkpoint again but remain for inspection. Transient IO errors
// are retried with backoff before the file is skipped. If nothing loads,
// the error is ErrNoCheckpoint.
func LoadLatestCheckpoint(dir string) (Checkpoint, models.Model, LoadReport, error) {
	var rep LoadReport
	entries, err := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if err != nil {
		return Checkpoint{}, nil, rep, err
	}
	sort.Sort(sort.Reverse(sort.StringSlice(entries)))
	for _, path := range entries {
		var meta Checkpoint
		var model models.Model
		err := retry.Do(context.Background(), ckptLoadRetry, func() error {
			m, mod, err := LoadCheckpointFile(path)
			if err == nil {
				meta, model = m, mod
				return nil
			}
			if corruptCheckpoint(err) {
				return retry.Permanent(err)
			}
			return err // transient: injected fault or filesystem hiccup
		})
		switch {
		case err == nil:
			rep.Path = path
			return meta, model, rep, nil
		case corruptCheckpoint(err):
			if qerr := os.Rename(path, path+".corrupt"); qerr == nil {
				rep.Quarantined = append(rep.Quarantined, path)
			} else {
				rep.Skipped = append(rep.Skipped, path)
			}
		default:
			rep.Skipped = append(rep.Skipped, path)
		}
	}
	return Checkpoint{}, nil, rep, fmt.Errorf("%w in %s", ErrNoCheckpoint, dir)
}

// corruptCheckpoint classifies a load failure: container/integrity/parse
// errors are permanent corruption (quarantine), while injected faults and
// filesystem errors are transient (retry, then skip).
func corruptCheckpoint(err error) bool {
	if err == nil || faults.IsInjected(err) {
		return false
	}
	var pathErr *fs.PathError
	if errors.As(err, &pathErr) {
		return false
	}
	return true
}

// Checkpoint packages a completed run's model description for
// serialisation: SaveCheckpointFile(path, res.Checkpoint(dsName), res.Model).
func (r *Result) Checkpoint(dataset string) Checkpoint {
	return Checkpoint{Model: r.ModelName, Config: r.Config, Task: r.Task, Dataset: dataset}
}
