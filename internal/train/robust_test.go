package train

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mega/internal/datasets"
	"mega/internal/faults"
)

// writeCkpt saves a tiny model checkpoint for epoch into dir and returns
// its path plus the model that produced it.
func writeCkpt(t *testing.T, dir string, epoch int, seed int64) string {
	t.Helper()
	cfg := tinyConfig()
	cfg.Seed = seed
	model, err := NewModel("GT", cfg)
	if err != nil {
		t.Fatal(err)
	}
	meta := Checkpoint{Model: "GT", Config: cfg, Task: datasets.TaskRegression, Dataset: "ZINC", Epoch: epoch}
	path := CheckpointPath(dir, epoch)
	if err := SaveCheckpointFile(path, meta, model); err != nil {
		t.Fatalf("save epoch %d: %v", epoch, err)
	}
	return path
}

func TestCheckpointCRCRoundTripWithEpoch(t *testing.T) {
	dir := t.TempDir()
	writeCkpt(t, dir, 7, 3)
	meta, model, err := LoadCheckpointFile(CheckpointPath(dir, 7))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if meta.Epoch != 7 || model == nil {
		t.Fatalf("meta = %+v", meta)
	}
}

func TestLegacyV1CheckpointStillLoads(t *testing.T) {
	// Hand-build a v1 container (no CRC trailer) from a v2 file by
	// swapping the magic and dropping the trailer.
	dir := t.TempDir()
	path := writeCkpt(t, dir, 1, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	legacy := append([]byte("MEGACKP1"), data[8:len(data)-4]...)
	legacyPath := filepath.Join(dir, "legacy.ckpt")
	if err := os.WriteFile(legacyPath, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpointFile(legacyPath); err != nil {
		t.Fatalf("legacy container rejected: %v", err)
	}
}

// corruptions is the matrix of ways a checkpoint file can rot on disk.
var corruptions = []struct {
	name   string
	mangle func(data []byte) []byte
}{
	{"truncated", func(d []byte) []byte { return d[:len(d)/2] }},
	{"truncated-to-magic", func(d []byte) []byte { return d[:8] }},
	{"flipped-header-byte", func(d []byte) []byte {
		d[12] ^= 0xff // inside the JSON header
		return d
	}},
	{"flipped-params-byte", func(d []byte) []byte {
		d[len(d)-64] ^= 0xff // deep in the parameter blob
		return d
	}},
	{"flipped-crc", func(d []byte) []byte {
		d[len(d)-1] ^= 0xff
		return d
	}},
	{"zeroed-file", func(d []byte) []byte { return make([]byte, len(d)) }},
}

// TestCorruptCheckpointDetected: every corruption in the matrix must fail
// the direct load with a typed container error, never load silently wrong
// parameters.
func TestCorruptCheckpointDetected(t *testing.T) {
	dir := t.TempDir()
	good := writeCkpt(t, dir, 1, 3)
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			bad := filepath.Join(t.TempDir(), "bad.ckpt")
			if err := os.WriteFile(bad, tc.mangle(append([]byte(nil), data...)), 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, err := LoadCheckpointFile(bad)
			if err == nil {
				t.Fatal("corrupt checkpoint loaded without error")
			}
			if !errors.Is(err, ErrCkptCorrupt) && !errors.Is(err, ErrCkptMagic) && !errors.Is(err, ErrCkptHeader) {
				t.Fatalf("untyped corruption error: %v", err)
			}
		})
	}
}

// TestLoadLatestQuarantinesCorruptAndRecovers: with a good older
// checkpoint and a corrupted newest one, LoadLatestCheckpoint must load
// the previous good file and quarantine the bad one for every corruption
// in the matrix.
func TestLoadLatestQuarantinesCorruptAndRecovers(t *testing.T) {
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeCkpt(t, dir, 1, 3)
			newest := writeCkpt(t, dir, 2, 4)
			data, err := os.ReadFile(newest)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(newest, tc.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}
			meta, model, rep, err := LoadLatestCheckpoint(dir)
			if err != nil {
				t.Fatalf("recovery failed: %v (report %+v)", err, rep)
			}
			if meta.Epoch != 1 || model == nil {
				t.Fatalf("loaded epoch %d, want previous good epoch 1", meta.Epoch)
			}
			if len(rep.Quarantined) != 1 || rep.Quarantined[0] != newest {
				t.Fatalf("quarantined = %v, want [%s]", rep.Quarantined, newest)
			}
			if _, err := os.Stat(newest + ".corrupt"); err != nil {
				t.Errorf("corrupt file not renamed aside: %v", err)
			}
			if _, err := os.Stat(newest); !os.IsNotExist(err) {
				t.Errorf("corrupt file still shadows the good one: %v", err)
			}
		})
	}
}

// TestCrashDuringSaveLeavespreviousGood simulates the kill -9 window via
// the faults package: the injected failure fires after partial bytes hit
// the temp file and before the atomic rename, exactly where a crash would
// land. The final checkpoint name must never hold a torn file, and the
// next load must get the previous good checkpoint.
func TestCrashDuringSaveLeavesPreviousGood(t *testing.T) {
	dir := t.TempDir()
	writeCkpt(t, dir, 1, 3)

	faults.ArmT(t, faults.Plan{Seed: 1, Points: []faults.PointConfig{
		{Name: faults.TrainCkptSave, Prob: 1},
	}})
	cfg := tinyConfig()
	model, err := NewModel("GT", cfg)
	if err != nil {
		t.Fatal(err)
	}
	meta := Checkpoint{Model: "GT", Config: cfg, Task: datasets.TaskRegression, Epoch: 2}
	if err := SaveCheckpointFile(CheckpointPath(dir, 2), meta, model); !faults.IsInjected(err) {
		t.Fatalf("save err = %v, want injected", err)
	}
	faults.Disable()

	if _, err := os.Stat(CheckpointPath(dir, 2)); !os.IsNotExist(err) {
		t.Fatal("crashed save left a file under the final checkpoint name")
	}
	gotMeta, _, rep, err := LoadLatestCheckpoint(dir)
	if err != nil || gotMeta.Epoch != 1 {
		t.Fatalf("after crashed save: meta %+v err %v (report %+v)", gotMeta, err, rep)
	}
	if len(rep.Quarantined) != 0 {
		t.Errorf("crashed save should leave nothing to quarantine: %+v", rep)
	}
}

// TestLoadLatestRetriesTransientFaults: injected (transient) load errors
// with prob < 1 are retried rather than quarantining a perfectly good
// file.
func TestLoadLatestRetriesTransientFaults(t *testing.T) {
	dir := t.TempDir()
	writeCkpt(t, dir, 3, 3)
	// Budget 1: the first load attempt fails, the retry succeeds.
	faults.ArmT(t, faults.Plan{Seed: 1, Points: []faults.PointConfig{
		{Name: faults.TrainCkptLoad, Prob: 1, Budget: 1},
	}})
	meta, _, rep, err := LoadLatestCheckpoint(dir)
	if err != nil || meta.Epoch != 3 {
		t.Fatalf("meta %+v err %v", meta, err)
	}
	if len(rep.Quarantined) != 0 || len(rep.Skipped) != 0 {
		t.Fatalf("transient fault quarantined/skipped a good file: %+v", rep)
	}
}

func TestLoadLatestEmptyDir(t *testing.T) {
	_, _, _, err := LoadLatestCheckpoint(t.TempDir())
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

// TestRunPeriodicCheckpointAndResume drives the full loop: train with
// periodic checkpointing, corrupt the newest file (the "crash"), resume,
// and confirm the run continues from the newest *good* epoch with the bad
// file quarantined.
func TestRunPeriodicCheckpointAndResume(t *testing.T) {
	dir := t.TempDir()
	ds := datasets.ZINC(datasets.Config{TrainSize: 8, ValSize: 4, TestSize: 1, Seed: 3})
	opts := Options{
		Model: "GT", Dim: 16, Layers: 1, Heads: 2,
		BatchSize: 4, Epochs: 3, Seed: 3,
		CheckpointDir: dir, CheckpointEvery: 1,
	}
	res, err := Run(ds, opts)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if res.LastCheckpoint != CheckpointPath(dir, 3) || res.CheckpointFailures != 0 {
		t.Fatalf("first run checkpoints: last=%q failures=%d", res.LastCheckpoint, res.CheckpointFailures)
	}
	for e := 1; e <= 3; e++ {
		if _, err := os.Stat(CheckpointPath(dir, e)); err != nil {
			t.Fatalf("missing periodic checkpoint for epoch %d: %v", e, err)
		}
	}

	// Corrupt the newest checkpoint, then resume with 2 more epochs.
	newest := CheckpointPath(dir, 3)
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	opts.Epochs = 5
	opts.Resume = true
	res2, err := Run(ds, opts)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if res2.ResumedEpoch != 2 {
		t.Fatalf("ResumedEpoch = %d, want 2 (epoch 3 was corrupt)", res2.ResumedEpoch)
	}
	if res2.QuarantinedCheckpoints != 1 {
		t.Fatalf("QuarantinedCheckpoints = %d, want 1", res2.QuarantinedCheckpoints)
	}
	if len(res2.Stats) != 3 || res2.Stats[0].Epoch != 3 || res2.Stats[2].Epoch != 5 {
		t.Fatalf("resumed stats = %+v, want epochs 3..5", res2.Stats)
	}
	if res2.LastCheckpoint != CheckpointPath(dir, 5) {
		t.Fatalf("resumed LastCheckpoint = %q", res2.LastCheckpoint)
	}

	// A third run with everything trained: resume finds epoch 5, nothing
	// left to do.
	res3, err := Run(ds, opts)
	if err != nil {
		t.Fatalf("no-op resume: %v", err)
	}
	if res3.ResumedEpoch != 5 || len(res3.Stats) != 0 {
		t.Fatalf("no-op resume: ResumedEpoch=%d stats=%d", res3.ResumedEpoch, len(res3.Stats))
	}
}

func TestRunResumeRejectsMismatchedConfig(t *testing.T) {
	dir := t.TempDir()
	ds := datasets.ZINC(datasets.Config{TrainSize: 8, ValSize: 4, TestSize: 1, Seed: 3})
	if _, err := Run(ds, Options{
		Model: "GT", Dim: 16, Layers: 1, Heads: 2, BatchSize: 4, Epochs: 1, Seed: 3,
		CheckpointDir: dir,
	}); err != nil {
		t.Fatal(err)
	}
	_, err := Run(ds, Options{
		Model: "GT", Dim: 32, Layers: 1, Heads: 2, BatchSize: 4, Epochs: 2, Seed: 3,
		CheckpointDir: dir, Resume: true,
	})
	if !errors.Is(err, ErrResumeMismatch) {
		t.Fatalf("err = %v, want ErrResumeMismatch", err)
	}
	if err != nil && !strings.Contains(err.Error(), "ckpt-") {
		t.Errorf("mismatch error should name the checkpoint: %v", err)
	}
}
