package train

import (
	"testing"

	"mega/internal/compute"
	"mega/internal/datasets"
	"mega/internal/models"
)

// End-to-end thread-count equivalence: an identical GT training run must
// produce bit-identical losses and metrics whether the compute pool runs
// one thread or many. GT is the model with the guarantee — GatedGCN's
// BatchNorm shares the same deterministic kernels, but GT exercises the
// full attention path (softmax, layer norm, segment ops) end to end.
func TestTrainingThreadEquivalence(t *testing.T) {
	d, err := datasets.Generate("ZINC", datasets.Config{TrainSize: 16, ValSize: 8, TestSize: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	run := func(threads int, engine models.EngineKind) *Result {
		res, err := Run(d, Options{
			Model: "GT", Engine: engine,
			Dim: 16, Layers: 2, Heads: 2,
			BatchSize: 8, LR: 3e-3, Epochs: 2, Seed: 9,
			Threads: threads,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, engine := range []models.EngineKind{models.EngineDGL, models.EngineMega} {
		t.Run(engine.String(), func(t *testing.T) {
			serial := run(1, engine)
			for _, n := range []int{3, 8} {
				par := run(n, engine)
				for i, s := range serial.Stats {
					p := par.Stats[i]
					if p.TrainLoss != s.TrainLoss || p.ValLoss != s.ValLoss || p.ValMetric != s.ValMetric {
						t.Errorf("threads=%d epoch %d: (train %v, val %v, metric %v) != serial (train %v, val %v, metric %v)",
							n, s.Epoch, p.TrainLoss, p.ValLoss, p.ValMetric, s.TrainLoss, s.ValLoss, s.ValMetric)
					}
				}
			}
		})
	}
}

// TestThreadsOptionRestoresBudget pins that Run's thread override is
// scoped to the run.
func TestThreadsOptionRestoresBudget(t *testing.T) {
	before := compute.MaxThreads()
	d, err := datasets.Generate("ZINC", datasets.Config{TrainSize: 8, ValSize: 4, TestSize: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(d, Options{Model: "GCN", Dim: 8, Layers: 1, Epochs: 1, BatchSize: 8, Threads: before + 3}); err != nil {
		t.Fatal(err)
	}
	if got := compute.MaxThreads(); got != before {
		t.Errorf("thread budget after Run = %d, want restored %d", got, before)
	}
}
