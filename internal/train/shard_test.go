package train

import (
	"math"
	"testing"

	"mega/internal/models"
	"mega/internal/traverse"
)

func shardOpts(shards int) Options {
	o := Options{
		Model: "GT", Engine: models.EngineMega,
		Dim: 16, Layers: 2, Heads: 2,
		BatchSize: 8, LR: 3e-3, Epochs: 3, Seed: 1,
		Shards: shards,
	}
	o.Mega.Traverse = traverse.Options{Window: 2}
	return o
}

// TestShardedTrainingTrajectoryBitIdentical is the tentpole acceptance
// test: a full training run at 2 and 4 shard workers leaves every model
// parameter bit-identical to the 1-worker run — the shard engine's
// exchanges and reductions are exact, not approximately associative.
func TestShardedTrainingTrajectoryBitIdentical(t *testing.T) {
	d := tinyDataset(t, "ZINC")

	ref, err := Run(d, shardOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	refParams := ref.Model.Params()

	for _, k := range []int{2, 4} {
		res, err := Run(d, shardOpts(k))
		if err != nil {
			t.Fatal(err)
		}
		params := res.Model.Params()
		if len(params) != len(refParams) {
			t.Fatalf("shards=%d: %d params, want %d", k, len(params), len(refParams))
		}
		for pi, p := range params {
			for i := range p.Data {
				if math.Float64bits(p.Data[i]) != math.Float64bits(refParams[pi].Data[i]) {
					t.Fatalf("shards=%d: param %d element %d diverged from shards=1 trajectory",
						k, pi, i)
				}
			}
		}
		// The trajectories also produced the same losses, necessarily.
		for e := range res.Stats {
			if res.Stats[e].TrainLoss != ref.Stats[e].TrainLoss {
				t.Errorf("shards=%d: epoch %d train loss %v, want %v",
					k, e+1, res.Stats[e].TrainLoss, ref.Stats[e].TrainLoss)
			}
		}
	}
}

// TestShardedTrainingValidation covers the option guards.
func TestShardedTrainingValidation(t *testing.T) {
	d := tinyDataset(t, "ZINC")

	o := shardOpts(2)
	o.Engine = models.EngineDGL
	if _, err := Run(d, o); err == nil {
		t.Error("sharded + DGL engine should error")
	}

	o = shardOpts(2)
	o.Model = "GCN"
	if _, err := Run(d, o); err == nil {
		t.Error("sharded + GCN should error")
	}

	o = shardOpts(2)
	o.Profile = true
	if _, err := Run(d, o); err == nil {
		t.Error("sharded + profiling should error")
	}
}
