package train

import (
	"bytes"
	"log"
	"math"
	"strings"
	"testing"

	"mega/internal/datasets"
	"mega/internal/graph"
	"mega/internal/models"
	"mega/internal/traverse"
)

func shardOpts(shards int) Options {
	o := Options{
		Model: "GT", Engine: models.EngineMega,
		Dim: 16, Layers: 2, Heads: 2,
		BatchSize: 8, LR: 3e-3, Epochs: 3, Seed: 1,
		Shards: shards,
	}
	o.Mega.Traverse = traverse.Options{Window: 2}
	return o
}

// TestShardedTrainingTrajectoryBitIdentical is the tentpole acceptance
// test: a full training run at 2 and 4 shard workers leaves every model
// parameter bit-identical to the 1-worker run — the shard engine's
// exchanges and reductions are exact, not approximately associative.
func TestShardedTrainingTrajectoryBitIdentical(t *testing.T) {
	d := tinyDataset(t, "ZINC")

	ref, err := Run(d, shardOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	refParams := ref.Model.Params()

	for _, k := range []int{2, 4} {
		res, err := Run(d, shardOpts(k))
		if err != nil {
			t.Fatal(err)
		}
		params := res.Model.Params()
		if len(params) != len(refParams) {
			t.Fatalf("shards=%d: %d params, want %d", k, len(params), len(refParams))
		}
		for pi, p := range params {
			for i := range p.Data {
				if math.Float64bits(p.Data[i]) != math.Float64bits(refParams[pi].Data[i]) {
					t.Fatalf("shards=%d: param %d element %d diverged from shards=1 trajectory",
						k, pi, i)
				}
			}
		}
		// The trajectories also produced the same losses, necessarily.
		for e := range res.Stats {
			if res.Stats[e].TrainLoss != ref.Stats[e].TrainLoss {
				t.Errorf("shards=%d: epoch %d train loss %v, want %v",
					k, e+1, res.Stats[e].TrainLoss, ref.Stats[e].TrainLoss)
			}
		}
	}
}

// TestShardFallbackCountedAndLogged pins the per-context fallback
// accounting: a training batch whose path is too short to cut into µchunks
// trains through the monolithic engine, and the run reports how many
// contexts did. The log side is covered by capturing the standard logger.
func TestShardFallbackCountedAndLogged(t *testing.T) {
	// A triangle's traversal path (3 rows) cannot be cut into 8 µchunks,
	// so with BatchSize 1 every context must fall back.
	tri, err := graph.New(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}}, false)
	if err != nil {
		t.Fatal(err)
	}
	inst := datasets.Instance{
		G:        tri,
		NodeFeat: []int32{0, 1, 0},
		EdgeFeat: []int32{0, 0, 1},
		Target:   1.5,
	}
	d := &datasets.Dataset{
		Name: "tiny-tri", Task: datasets.TaskRegression,
		NumNodeTypes: 2, NumEdgeTypes: 2,
		Train: []datasets.Instance{inst, inst},
		Val:   []datasets.Instance{inst},
		Test:  []datasets.Instance{inst},
	}
	o := shardOpts(2)
	o.BatchSize = 1
	o.Epochs = 1

	var logged bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&logged)
	defer log.SetOutput(prev)

	res, err := Run(d, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardFallbacks != 2 {
		t.Errorf("ShardFallbacks = %d, want 2 (every context)", res.ShardFallbacks)
	}
	// The structural rejection (path shorter than 8 µchunks) must be
	// attributed, not hidden: per-reason counts mirror serve's
	// shard_fallback_reasons taxonomy.
	if got := res.ShardFallbackReasons["unshardable"]; got != 2 {
		t.Errorf("ShardFallbackReasons[unshardable] = %d, want 2 (got %v)", got, res.ShardFallbackReasons)
	}
	if n := strings.Count(logged.String(), "fell back to the monolithic engine"); n != 1 {
		t.Errorf("fallback logged %d times, want exactly once:\n%s", n, logged.String())
	}
	if !strings.Contains(logged.String(), "unshardable") {
		t.Errorf("fallback log line does not name the reason:\n%s", logged.String())
	}

	// Shardable runs must not report fallbacks.
	full, err := Run(tinyDataset(t, "ZINC"), shardOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if full.ShardFallbacks != 0 {
		t.Errorf("shardable run reported %d fallbacks", full.ShardFallbacks)
	}
	if full.ShardFallbackReasons != nil {
		t.Errorf("shardable run reported fallback reasons: %v", full.ShardFallbackReasons)
	}
}

// TestShardedTrainingValidation covers the option guards.
func TestShardedTrainingValidation(t *testing.T) {
	d := tinyDataset(t, "ZINC")

	o := shardOpts(2)
	o.Engine = models.EngineDGL
	if _, err := Run(d, o); err == nil {
		t.Error("sharded + DGL engine should error")
	}

	o = shardOpts(2)
	o.Model = "GCN"
	if _, err := Run(d, o); err == nil {
		t.Error("sharded + GCN should error")
	}

	o = shardOpts(2)
	o.Profile = true
	if _, err := Run(d, o); err == nil {
		t.Error("sharded + profiling should error")
	}
}
