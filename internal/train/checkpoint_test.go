package train

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"mega/internal/datasets"
	"mega/internal/models"
)

func tinyConfig() models.Config {
	return models.Config{
		Dim: 16, Layers: 2, Heads: 2,
		NodeTypes: 8, EdgeTypes: 4, OutDim: 1, Seed: 7,
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	for _, name := range []string{"GCN", "GT", "GAT"} {
		orig, err := NewModel(name, tinyConfig())
		if err != nil {
			t.Fatalf("NewModel(%s): %v", name, err)
		}
		meta := Checkpoint{Model: name, Config: tinyConfig(), Task: datasets.TaskRegression, Dataset: "ZINC"}
		var buf bytes.Buffer
		if err := SaveCheckpoint(&buf, meta, orig); err != nil {
			t.Fatalf("save %s: %v", name, err)
		}
		gotMeta, loaded, err := LoadCheckpoint(&buf)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		if gotMeta != meta {
			t.Errorf("%s: meta round-trip: got %+v want %+v", name, gotMeta, meta)
		}
		op, lp := orig.Params(), loaded.Params()
		if len(op) != len(lp) {
			t.Fatalf("%s: %d tensors loaded, want %d", name, len(lp), len(op))
		}
		for i := range op {
			for j, v := range op[i].Data {
				if lv := lp[i].Data[j]; lv != v {
					t.Fatalf("%s: tensor %d element %d: %v != %v", name, i, j, lv, v)
				}
			}
		}
	}
}

func TestCheckpointFileAndServingMatch(t *testing.T) {
	// A model trained for a couple of steps must survive the file round
	// trip with identical forward outputs.
	ds := datasets.ZINC(datasets.Config{TrainSize: 8, ValSize: 4, TestSize: 1, Seed: 3})
	res, err := Run(ds, Options{
		Model: "GT", Engine: models.EngineMega,
		Dim: 16, Layers: 1, Heads: 2, BatchSize: 4, Epochs: 1, Seed: 3,
	})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := SaveCheckpointFile(path, res.Checkpoint(ds.Name), res.Model); err != nil {
		t.Fatalf("save file: %v", err)
	}
	meta, loaded, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatalf("load file: %v", err)
	}
	if meta.Model != "GT" || meta.Task != datasets.TaskRegression || meta.Dataset != "ZINC" {
		t.Errorf("meta = %+v", meta)
	}
	ctx, err := models.NewDGLContext(ds.Val[:2], nil, meta.Config.Dim)
	if err != nil {
		t.Fatalf("context: %v", err)
	}
	want := res.Model.Forward(ctx)
	got := loaded.Forward(ctx)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("forward mismatch at %d: %v != %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestLoadCheckpointRejectsGarbage(t *testing.T) {
	if _, _, err := LoadCheckpoint(bytes.NewReader([]byte("not a checkpoint at all"))); !errors.Is(err, ErrCkptMagic) {
		t.Errorf("garbage magic: err = %v, want ErrCkptMagic", err)
	}
	// Valid magic, truncated header.
	if _, _, err := LoadCheckpoint(bytes.NewReader([]byte("MEGACKP1\xff\xff"))); !errors.Is(err, ErrCkptHeader) {
		t.Errorf("truncated header: err = %v, want ErrCkptHeader", err)
	}
}

func TestNewModelRejectsUnknown(t *testing.T) {
	if _, err := NewModel("RNN", tinyConfig()); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("err = %v, want ErrUnknownModel", err)
	}
}
