package train

import (
	"testing"

	"mega/internal/datasets"
	"mega/internal/models"
)

func tinyDataset(t *testing.T, name string) *datasets.Dataset {
	t.Helper()
	d, err := datasets.Generate(name, datasets.Config{TrainSize: 24, ValSize: 8, TestSize: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func tinyOpts(engine models.EngineKind) Options {
	return Options{
		Model: "GCN", Engine: engine,
		Dim: 16, Layers: 2, Heads: 2,
		BatchSize: 8, LR: 3e-3, Epochs: 3, Seed: 1,
	}
}

func TestRunUnknownModel(t *testing.T) {
	d := tinyDataset(t, "ZINC")
	opts := tinyOpts(models.EngineDGL)
	opts.Model = "SAGE"
	if _, err := Run(d, opts); err == nil {
		t.Error("unknown model should error")
	}
}

func TestRunRegressionBothEngines(t *testing.T) {
	d := tinyDataset(t, "ZINC")
	for _, engine := range []models.EngineKind{models.EngineDGL, models.EngineMega} {
		t.Run(engine.String(), func(t *testing.T) {
			res, err := Run(d, tinyOpts(engine))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Stats) != 3 {
				t.Fatalf("epochs = %d, want 3", len(res.Stats))
			}
			if res.Params == 0 {
				t.Error("param count missing")
			}
			first, last := res.Stats[0], res.Stats[len(res.Stats)-1]
			if last.TrainLoss >= first.TrainLoss {
				t.Errorf("train loss did not decrease: %v -> %v", first.TrainLoss, last.TrainLoss)
			}
			if res.Task != datasets.TaskRegression {
				t.Error("task not propagated")
			}
		})
	}
}

func TestRunClassification(t *testing.T) {
	d := tinyDataset(t, "CYCLES")
	opts := tinyOpts(models.EngineDGL)
	opts.Epochs = 5
	res, err := Run(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Stats[len(res.Stats)-1]
	if last.ValMetric < 0 || last.ValMetric > 1 {
		t.Errorf("accuracy = %v out of range", last.ValMetric)
	}
	if last.TrainLoss >= res.Stats[0].TrainLoss {
		t.Errorf("classification loss did not decrease: %v -> %v", res.Stats[0].TrainLoss, last.TrainLoss)
	}
}

func TestSimulatedClockAdvances(t *testing.T) {
	d := tinyDataset(t, "AQSOL")
	opts := tinyOpts(models.EngineDGL)
	opts.Profile = true
	res, err := Run(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sim == nil {
		t.Fatal("profiling requested but Sim nil")
	}
	prev := int64(-1)
	for _, s := range res.Stats {
		if int64(s.SimTime) <= prev {
			t.Errorf("sim time not strictly increasing: %v then %v", prev, s.SimTime)
		}
		prev = int64(s.SimTime)
	}
}

func TestMegaConvergesFasterOnSimClock(t *testing.T) {
	// The end-to-end claim (Figs 11-14): at equal epochs, MEGA's simulated
	// time per epoch is lower, so time-to-loss is lower.
	d := tinyDataset(t, "ZINC")
	mkOpts := func(engine models.EngineKind) Options {
		o := tinyOpts(engine)
		o.Model = "GT"
		o.Profile = true
		o.Epochs = 2
		return o
	}
	dgl, err := Run(d, mkOpts(models.EngineDGL))
	if err != nil {
		t.Fatal(err)
	}
	mega, err := Run(d, mkOpts(models.EngineMega))
	if err != nil {
		t.Fatal(err)
	}
	dglT := dgl.Stats[len(dgl.Stats)-1].SimTime
	megaT := mega.Stats[len(mega.Stats)-1].SimTime
	if megaT >= dglT {
		t.Errorf("mega simulated epoch time %v should be below dgl %v", megaT, dglT)
	}
	t.Logf("GT 2-epoch sim time: dgl=%v mega=%v speedup=%.2fx", dglT, megaT, float64(dglT)/float64(megaT))
}

func TestTimeToLoss(t *testing.T) {
	r := &Result{Stats: []EpochStat{
		{Epoch: 1, ValLoss: 1.0, SimTime: 10},
		{Epoch: 2, ValLoss: 0.5, SimTime: 20},
		{Epoch: 3, ValLoss: 0.4, SimTime: 30},
	}}
	if tt, ok := r.TimeToLoss(0.5); !ok || tt != 20 {
		t.Errorf("TimeToLoss(0.5) = %v, %v", tt, ok)
	}
	if _, ok := r.TimeToLoss(0.1); ok {
		t.Error("unreachable target should report false")
	}
	if r.FinalMetric() != 0 {
		t.Errorf("FinalMetric = %v", r.FinalMetric())
	}
}

func TestMaxTrainCaps(t *testing.T) {
	d := tinyDataset(t, "ZINC")
	opts := tinyOpts(models.EngineDGL)
	opts.MaxTrain = 8
	opts.BatchSize = 8
	opts.Epochs = 1
	res, err := Run(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 1 {
		t.Fatal("expected 1 epoch")
	}
}

func TestEdgeDroppingTrains(t *testing.T) {
	d := tinyDataset(t, "AQSOL")
	opts := tinyOpts(models.EngineMega)
	opts.Mega.Traverse.EdgeCoverage = 1
	opts.Mega.Traverse.DropEdges = 0.2
	opts.Mega.Traverse.Seed = 3
	res, err := Run(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats[len(res.Stats)-1].TrainLoss >= res.Stats[0].TrainLoss {
		t.Error("edge-dropped training did not reduce loss")
	}
}

func TestDivergenceGuard(t *testing.T) {
	// An absurd learning rate drives the loss non-finite within a few
	// steps; the trainer must stop cleanly instead of emitting NaNs.
	d := tinyDataset(t, "ZINC")
	opts := tinyOpts(models.EngineDGL)
	opts.LR = 1e15
	opts.Epochs = 50
	res, err := Run(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diverged {
		t.Skip("training survived the absurd LR (clipping held); nothing to assert")
	}
	if len(res.Stats) >= 50 {
		t.Error("diverged run should stop early")
	}
	for _, s := range res.Stats {
		if s.TrainLoss != s.TrainLoss { // NaN check
			t.Error("recorded stats contain NaN")
		}
	}
}

func TestRunGATModel(t *testing.T) {
	d := tinyDataset(t, "ZINC")
	opts := tinyOpts(models.EngineMega)
	opts.Model = "GAT"
	res, err := Run(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats[len(res.Stats)-1].TrainLoss >= res.Stats[0].TrainLoss {
		t.Error("GAT loss did not decrease")
	}
}

func TestEvaluateExported(t *testing.T) {
	d := tinyDataset(t, "ZINC")
	ctx, err := models.NewDGLContext(d.Val, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	m := models.NewGatedGCN(models.Config{
		Dim: 16, Layers: 1, NodeTypes: d.NumNodeTypes, EdgeTypes: d.NumEdgeTypes, OutDim: 1, Seed: 1,
	})
	loss, metric := Evaluate(d.Task, m, []*models.Context{ctx})
	if loss <= 0 || metric <= 0 {
		t.Errorf("Evaluate returned loss %v metric %v", loss, metric)
	}
	if l2, _ := Evaluate(d.Task, m, nil); l2 != 0 {
		t.Errorf("empty context list should evaluate to 0, got %v", l2)
	}
}
