package gpusim

import "testing"

func TestAnalyzeSegments(t *testing.T) {
	st := AnalyzeSegments([]int32{1, 3, 8})
	if st.Segments != 3 || st.Total != 12 || st.Max != 8 || st.Mean != 4 {
		t.Errorf("stats = %+v", st)
	}
	empty := AnalyzeSegments(nil)
	if empty.Segments != 0 || empty.Mean != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

// skewedSegments builds a power-law-ish workload: one huge hub segment and
// many unit segments.
func skewedSegments(n int, hub int32) []int32 {
	segs := make([]int32, n)
	for i := range segs {
		segs[i] = 1
	}
	segs[0] = hub
	return segs
}

func TestImbalanceTailPenalty(t *testing.T) {
	const rowBytes = 128
	skewed := skewedSegments(1000, 2000)
	uniform := make([]int32, 1000)
	total := int32(0)
	for _, l := range skewed {
		total += l
	}
	for i := range uniform {
		uniform[i] = total / 1000
	}
	// pad remainder into the first segment to equalise totals
	uniform[0] += total - (total/1000)*1000

	sSkew := New(GTX1080())
	sSkew.ScatterSegments("agg", sSkew.Alloc(1<<22), skewed, rowBytes, false)
	sUni := New(GTX1080())
	sUni.ScatterSegments("agg", sUni.Alloc(1<<22), uniform, rowBytes, false)

	if sSkew.TotalCycles() <= sUni.TotalCycles() {
		t.Errorf("skewed workload %v should cost more than uniform %v",
			sSkew.TotalCycles(), sUni.TotalCycles())
	}
}

func TestNeighborGroupingRemovesTail(t *testing.T) {
	const rowBytes = 128
	skewed := skewedSegments(1000, 2000)

	naive := New(GTX1080())
	naive.ScatterSegments("agg", naive.Alloc(1<<22), skewed, rowBytes, false)
	grouped := New(GTX1080())
	grouped.ScatterSegments("agg", grouped.Alloc(1<<22), skewed, rowBytes, true)

	if grouped.TotalCycles() >= naive.TotalCycles() {
		t.Errorf("neighbor grouping %v should beat naive %v on skewed input",
			grouped.TotalCycles(), naive.TotalCycles())
	}
	// Grouping pays extra atomic traffic.
	kg, _ := grouped.Kernel("agg")
	kn, _ := naive.Kernel("agg")
	if kg.StoreTransactions <= kn.StoreTransactions {
		t.Errorf("grouping stores %d should exceed naive %d (atomic merges)",
			kg.StoreTransactions, kn.StoreTransactions)
	}
}

func TestGroupingNeutralOnUniformWork(t *testing.T) {
	// With no skew there is no tail; grouping only adds (tiny) overhead.
	const rowBytes = 128
	uniform := make([]int32, 500)
	for i := range uniform {
		uniform[i] = 4
	}
	naive := New(GTX1080())
	naive.ScatterSegments("agg", naive.Alloc(1<<22), uniform, rowBytes, false)
	grouped := New(GTX1080())
	grouped.ScatterSegments("agg", grouped.Alloc(1<<22), uniform, rowBytes, true)
	ratio := grouped.TotalCycles() / naive.TotalCycles()
	if ratio > 1.5 {
		t.Errorf("grouping overhead on uniform work too high: %.2fx", ratio)
	}
}
