package gpusim

// cache is a set-associative LRU cache over line addresses, standing in for
// the GTX 1080's 2 MiB L2 (§IV-A: "The L2 cache capacity of GTX 1080 GPUs
// is 2048 KB, which proves inadequate for caching node and edge
// embeddings").
type cache struct {
	lineBytes uint64
	numSets   uint64
	ways      int
	// sets[s] holds up to ways line tags in LRU order: index 0 is the
	// least recently used entry.
	sets [][]uint64

	hits   int64
	misses int64
}

// newCache builds a cache of totalBytes capacity with the given line size
// and associativity. The set count is rounded down to a power of two so the
// index can be computed with a mask.
func newCache(totalBytes, lineBytes int64, ways int) *cache {
	if lineBytes <= 0 {
		lineBytes = 128
	}
	if ways <= 0 {
		ways = 16
	}
	numLines := totalBytes / lineBytes
	numSets := numLines / int64(ways)
	if numSets < 1 {
		numSets = 1
	}
	// Round down to a power of two.
	p := uint64(1)
	for p*2 <= uint64(numSets) {
		p *= 2
	}
	c := &cache{
		lineBytes: uint64(lineBytes),
		numSets:   p,
		ways:      ways,
		sets:      make([][]uint64, p),
	}
	return c
}

// access touches one line address, returning true on hit. Misses install
// the line, evicting the LRU way if the set is full.
func (c *cache) access(lineAddr uint64) bool {
	set := lineAddr & (c.numSets - 1)
	entries := c.sets[set]
	for i, tag := range entries {
		if tag == lineAddr {
			// Move to MRU position.
			copy(entries[i:], entries[i+1:])
			entries[len(entries)-1] = lineAddr
			c.hits++
			return true
		}
	}
	c.misses++
	if len(entries) < c.ways {
		c.sets[set] = append(entries, lineAddr)
		return false
	}
	copy(entries, entries[1:])
	entries[len(entries)-1] = lineAddr
	return false
}

// accessBytes touches every line in [addr, addr+bytes) and returns the
// number of lines touched and how many missed.
func (c *cache) accessBytes(addr, bytes uint64) (lines, misses int64) {
	if bytes == 0 {
		return 0, 0
	}
	first := addr / c.lineBytes
	last := (addr + bytes - 1) / c.lineBytes
	for l := first; l <= last; l++ {
		lines++
		if !c.access(l) {
			misses++
		}
	}
	return lines, misses
}

// reset clears contents and counters.
func (c *cache) reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.hits, c.misses = 0, 0
}
