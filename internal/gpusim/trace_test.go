package gpusim

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTraceDisabledByDefault(t *testing.T) {
	s := New(GTX1080())
	s.Sgemm(64, 64, 64)
	if s.TraceLen() != 0 {
		t.Errorf("trace recorded %d events without EnableTrace", s.TraceLen())
	}
}

func TestTraceRecordsLaunches(t *testing.T) {
	s := New(GTX1080())
	s.EnableTrace()
	s.Sgemm(64, 64, 64)
	s.Memcpy(1 << 16)
	s.Elementwise("relu", 1000, 4)
	if s.TraceLen() != 3 {
		t.Fatalf("trace events = %d, want 3", s.TraceLen())
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	s := New(GTX1080())
	s.EnableTrace()
	s.Sgemm(64, 64, 64)
	idx := []int32{1, 5, 9}
	s.GatherRows("dgl", s.Alloc(1<<16), idx, 128)

	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(parsed.TraceEvents))
	}
	// Events are complete-phase, sequential, and non-negative.
	prevEnd := 0.0
	for _, e := range parsed.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("phase = %q, want X", e.Ph)
		}
		if e.Ts < prevEnd-1e-9 {
			t.Errorf("event %q starts at %v before previous end %v", e.Name, e.Ts, prevEnd)
		}
		if e.Dur <= 0 {
			t.Errorf("event %q has non-positive duration", e.Name)
		}
		prevEnd = e.Ts + e.Dur
	}
	if parsed.TraceEvents[0].Name != "sgemm" || parsed.TraceEvents[1].Name != "dgl" {
		t.Errorf("event order wrong: %v", parsed.TraceEvents)
	}
}

func TestResetClearsTrace(t *testing.T) {
	s := New(GTX1080())
	s.EnableTrace()
	s.Sgemm(32, 32, 32)
	s.Reset()
	if s.TraceLen() != 0 {
		t.Error("reset should clear the trace")
	}
}
