package gpusim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheBasicLRU(t *testing.T) {
	c := newCache(4*128, 128, 2) // 4 lines, 2 ways, 2 sets
	if c.access(0) {
		t.Error("cold access should miss")
	}
	if !c.access(0) {
		t.Error("second access should hit")
	}
	// Set 0 holds even lines: fill ways with 0, 2; then 4 evicts 0 (LRU).
	c.access(2)
	c.access(4)
	if c.access(0) {
		t.Error("line 0 should have been evicted by LRU")
	}
	if !c.access(4) {
		t.Error("line 4 should be resident")
	}
}

func TestCacheLRUOrderRefreshedOnHit(t *testing.T) {
	c := newCache(4*128, 128, 2)
	c.access(0)
	c.access(2)
	c.access(0) // refresh 0 to MRU
	c.access(4) // evicts 2, not 0
	if !c.access(0) {
		t.Error("refreshed line 0 should survive")
	}
	if c.access(2) {
		t.Error("line 2 should have been evicted")
	}
}

func TestCacheAccessBytesSpansLines(t *testing.T) {
	c := newCache(1<<20, 128, 16)
	lines, misses := c.accessBytes(100, 100) // crosses the 128 boundary
	if lines != 2 || misses != 2 {
		t.Errorf("lines=%d misses=%d, want 2,2", lines, misses)
	}
	lines, misses = c.accessBytes(100, 100)
	if lines != 2 || misses != 0 {
		t.Errorf("warm lines=%d misses=%d, want 2,0", lines, misses)
	}
	if lines, misses := c.accessBytes(0, 0); lines != 0 || misses != 0 {
		t.Errorf("zero bytes should touch nothing, got %d,%d", lines, misses)
	}
}

func TestCacheReset(t *testing.T) {
	c := newCache(1<<20, 128, 16)
	c.access(1)
	c.reset()
	if c.hits != 0 || c.misses != 0 {
		t.Error("reset should clear counters")
	}
	if c.access(1) {
		t.Error("reset should clear contents")
	}
}

func TestAllocAlignedAndDisjoint(t *testing.T) {
	s := New(GTX1080())
	a := s.Alloc(1000)
	b := s.Alloc(1000)
	if a%256 != 0 || b%256 != 0 {
		t.Errorf("allocations not 256-aligned: %d %d", a, b)
	}
	if b < a+1000 {
		t.Errorf("allocations overlap: a=%d b=%d", a, b)
	}
}

func TestGatherRandomVsSequentialIndices(t *testing.T) {
	// The core premise: gathering rows at random indices costs more
	// simulated time than gathering the same rows sequentially.
	const rows, rowBytes = 20000, 256
	rng := rand.New(rand.NewSource(1))

	randIdx := make([]int32, rows)
	for i := range randIdx {
		randIdx[i] = int32(rng.Intn(rows))
	}
	seqIdx := make([]int32, rows)
	for i := range seqIdx {
		seqIdx[i] = int32(i)
	}

	sRand := New(GTX1080())
	base := sRand.Alloc(rows * rowBytes)
	sRand.GatherRows("dgl", base, randIdx, rowBytes)

	sSeq := New(GTX1080())
	base2 := sSeq.Alloc(rows * rowBytes)
	sSeq.Sequential("mega", KindBand, base2, rows*rowBytes, false)

	if sRand.TotalCycles() <= sSeq.TotalCycles() {
		t.Errorf("random gather (%v cycles) should exceed sequential scan (%v cycles)",
			sRand.TotalCycles(), sSeq.TotalCycles())
	}
	kRand, _ := sRand.Kernel("dgl")
	kSeq, _ := sSeq.Kernel("mega")
	if kRand.StallPct() <= kSeq.StallPct() {
		t.Errorf("gather stall %v should exceed sequential stall %v", kRand.StallPct(), kSeq.StallPct())
	}
	if kRand.SMEfficiency() >= kSeq.SMEfficiency() {
		t.Errorf("gather SM eff %v should be below sequential %v", kRand.SMEfficiency(), kSeq.SMEfficiency())
	}
}

func TestSgemmHighEfficiency(t *testing.T) {
	s := New(GTX1080())
	s.Sgemm(2048, 128, 128)
	k, ok := s.Kernel("sgemm")
	if !ok {
		t.Fatal("sgemm stats missing")
	}
	if eff := k.SMEfficiency(); eff < 0.8 {
		t.Errorf("sgemm SM efficiency = %v, want >= 0.8 (paper Fig 4)", eff)
	}
	if st := k.StallPct(); st > 0.2 {
		t.Errorf("sgemm stall = %v, want <= 0.2", st)
	}
}

func TestSortLowEfficiency(t *testing.T) {
	s := New(GTX1080())
	s.Sort("cub", 50000, 4)
	k, ok := s.Kernel("cub")
	if !ok {
		t.Fatal("cub stats missing")
	}
	if eff := k.SMEfficiency(); eff > 0.6 {
		t.Errorf("cub SM efficiency = %v, want < 0.6 (paper Fig 4)", eff)
	}
}

func TestGatherCacheLocalityMatters(t *testing.T) {
	// Gathering a working set that fits in L2 twice: the second pass hits
	// and should be cheaper.
	const rows, rowBytes = 2000, 256 // 512 KB < 2 MiB
	idx := make([]int32, rows)
	for i := range idx {
		idx[i] = int32((i * 7) % rows)
	}
	s := New(GTX1080())
	base := s.Alloc(rows * rowBytes)
	s.GatherRows("first", base, idx, rowBytes)
	s.GatherRows("second", base, idx, rowBytes)
	k1, _ := s.Kernel("first")
	k2, _ := s.Kernel("second")
	if k2.L2Misses >= k1.L2Misses {
		t.Errorf("warm pass misses %d should be below cold %d", k2.L2Misses, k1.L2Misses)
	}
	if k2.Cycles >= k1.Cycles {
		t.Errorf("warm pass cycles %v should be below cold %v", k2.Cycles, k1.Cycles)
	}
}

func TestScatterCountsLoadAndStore(t *testing.T) {
	s := New(GTX1080())
	base := s.Alloc(1 << 20)
	idx := []int32{0, 10, 20, 30}
	s.ScatterRows("scatter", base, idx, 128)
	k, _ := s.Kernel("scatter")
	if k.LoadTransactions != 4 || k.StoreTransactions != 4 {
		t.Errorf("scatter tx = %d load / %d store, want 4/4 (atomics RMW)", k.LoadTransactions, k.StoreTransactions)
	}
}

func TestBandSweepBeatsGatherOnSameWork(t *testing.T) {
	// MEGA's claim, reduced to its kernel essence: banded sequential
	// attention over an expanded path beats per-edge gathering at equal
	// logical work.
	const nodes, dim = 30000, 64
	const rowBytes = dim * 4
	const meanDeg = 4
	edges := nodes * meanDeg / 2

	// DGL-style: two gathers + one scatter per edge (src emb, dst emb,
	// accumulate), random order.
	rng := rand.New(rand.NewSource(2))
	srcIdx := make([]int32, edges)
	dstIdx := make([]int32, edges)
	for i := range srcIdx {
		srcIdx[i] = int32(rng.Intn(nodes))
		dstIdx[i] = int32(rng.Intn(nodes))
	}
	dgl := New(GTX1080())
	nodeBuf := dgl.Alloc(nodes * rowBytes)
	dgl.GatherRows("dgl-gather", nodeBuf, srcIdx, rowBytes)
	dgl.GatherRows("dgl-gather", nodeBuf, dstIdx, rowBytes)
	dgl.ScatterRows("dgl-scatter", nodeBuf, dstIdx, rowBytes)

	// MEGA: banded sweep over a path ~1.4x nodes with window meanDeg.
	mega := New(GTX1080())
	pathBuf := mega.Alloc(int64(float64(nodes)*1.4) * rowBytes)
	mega.BandSweep("mega-band", pathBuf, int(float64(nodes)*1.4), meanDeg, rowBytes)

	if mega.TotalCycles() >= dgl.TotalCycles() {
		t.Errorf("mega band (%v cycles) should beat dgl gather/scatter (%v cycles)",
			mega.TotalCycles(), dgl.TotalCycles())
	}
}

func TestWeightedMetrics(t *testing.T) {
	s := New(GTX1080())
	if s.WeightedSMEfficiency() != 0 || s.WeightedStallPct() != 0 {
		t.Error("empty sim should report zero metrics")
	}
	s.Sgemm(512, 64, 64)
	idx := make([]int32, 10000)
	rng := rand.New(rand.NewSource(3))
	for i := range idx {
		idx[i] = int32(rng.Intn(100000))
	}
	base := s.Alloc(100000 * 256)
	s.GatherRows("dgl", base, idx, 256)
	eff := s.WeightedSMEfficiency()
	if eff <= 0 || eff >= 1 {
		t.Errorf("weighted SM efficiency = %v, want in (0,1)", eff)
	}
	stall := s.WeightedStallPct()
	if stall <= 0 || stall >= 1 {
		t.Errorf("weighted stall = %v, want in (0,1)", stall)
	}
	share := s.KernelTimeShare()
	total := 0.0
	for _, v := range share {
		total += v
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("kernel time shares sum to %v, want 1", total)
	}
}

func TestStatsSortedByCycles(t *testing.T) {
	s := New(GTX1080())
	s.Sgemm(64, 64, 64)
	s.Memcpy(1 << 20)
	s.Elementwise("relu", 100000, 4)
	stats := s.Stats()
	if len(stats) != 3 {
		t.Fatalf("got %d kernels, want 3", len(stats))
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].Cycles > stats[i-1].Cycles {
			t.Errorf("stats not sorted: %v then %v", stats[i-1].Cycles, stats[i].Cycles)
		}
	}
}

func TestKernelAccumulatesAcrossCalls(t *testing.T) {
	s := New(GTX1080())
	s.Sgemm(64, 64, 64)
	s.Sgemm(64, 64, 64)
	k, _ := s.Kernel("sgemm")
	if k.Calls != 2 {
		t.Errorf("calls = %d, want 2", k.Calls)
	}
}

func TestReset(t *testing.T) {
	s := New(GTX1080())
	s.Sgemm(64, 64, 64)
	s.Reset()
	if s.TotalCycles() != 0 || len(s.Stats()) != 0 {
		t.Error("reset should clear stats")
	}
	if _, ok := s.Kernel("sgemm"); ok {
		t.Error("reset should drop kernels")
	}
}

func TestTotalTimePositive(t *testing.T) {
	s := New(GTX1080())
	s.Sgemm(512, 64, 64)
	if s.TotalTime() <= 0 {
		t.Errorf("TotalTime = %v, want > 0", s.TotalTime())
	}
}

func TestMemcpyAndElementwiseAccounted(t *testing.T) {
	s := New(GTX1080())
	s.Memcpy(1 << 20)
	s.Elementwise("sigmoid", 1<<18, 4)
	s.SyncRows("sync", s.Alloc(1<<20), []int32{1, 2, 3, 100, 101}, 256)
	for _, name := range []string{"memcpy", "sigmoid", "sync"} {
		k, ok := s.Kernel(name)
		if !ok || k.Cycles <= 0 {
			t.Errorf("kernel %q missing or zero cycles", name)
		}
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindSgemm: "sgemm", KindGather: "gather", KindScatter: "scatter",
		KindSort: "sort", KindElementwise: "elementwise", KindMemcpy: "memcpy",
		KindBand: "band", KindSync: "sync", Kind(0): "Kind(0)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestNewZeroConfigDefaults(t *testing.T) {
	s := New(Config{})
	if s.Config().ClockHz != GTX1080().ClockHz {
		t.Error("zero config should default to GTX1080")
	}
}

// Property: cache hit+miss counts always equal total accesses, and hit rate
// of an immediately repeated access pattern is 1 when it fits.
func TestCacheCountsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newCache(1<<18, 128, 8) // 2048 lines
		n := int(nRaw)%500 + 1
		addrs := make([]uint64, n)
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(1000))
		}
		for _, a := range addrs {
			c.access(a)
		}
		if c.hits+c.misses != int64(n) {
			return false
		}
		if c.misses < 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: simulated cycles are monotone in work size for gathers.
func TestGatherMonotoneProperty(t *testing.T) {
	f := func(seed int64, small uint8) bool {
		nSmall := int(small)%1000 + 10
		nLarge := nSmall * 2
		rng := rand.New(rand.NewSource(seed))
		mk := func(n int) []int32 {
			idx := make([]int32, n)
			for i := range idx {
				idx[i] = int32(rng.Intn(100000))
			}
			return idx
		}
		s1 := New(GTX1080())
		s1.GatherRows("g", s1.Alloc(100000*128), mk(nSmall), 128)
		s2 := New(GTX1080())
		s2.GatherRows("g", s2.Alloc(100000*128), mk(nLarge), 128)
		return s2.TotalCycles() > s1.TotalCycles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGatherRows(b *testing.B) {
	s := New(GTX1080())
	base := s.Alloc(100000 * 256)
	rng := rand.New(rand.NewSource(1))
	idx := make([]int32, 10000)
	for i := range idx {
		idx[i] = int32(rng.Intn(100000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.GatherRows("bench", base, idx, 256)
	}
}

func BenchmarkBandSweep(b *testing.B) {
	s := New(GTX1080())
	base := s.Alloc(1 << 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BandSweep("bench", base, 30000, 4, 256)
	}
}

// BenchmarkAblationL2Sweep sweeps the L2 capacity to find where the
// gather-based baseline stops being latency-crippled: even when the whole
// working set fits in a huge L2, index-dependent loads still pay hit
// latency with low MLP, so MEGA's advantage shrinks but does not vanish.
func BenchmarkAblationL2Sweep(b *testing.B) {
	const rows, rowBytes = 50000, 256 // 12.8 MB working set
	rng := rand.New(rand.NewSource(7))
	idx := make([]int32, rows)
	for i := range idx {
		idx[i] = int32(rng.Intn(rows))
	}
	for _, l2MB := range []int64{1, 2, 8, 32} {
		cfg := GTX1080()
		cfg.L2Bytes = l2MB << 20
		b.Run(fmtMB(l2MB), func(b *testing.B) {
			var gather, band float64
			for i := 0; i < b.N; i++ {
				sg := New(cfg)
				base := sg.Alloc(rows * rowBytes)
				sg.GatherRows("g", base, idx, rowBytes)
				gather = sg.TotalCycles()

				sb := New(cfg)
				base2 := sb.Alloc(rows * rowBytes)
				sb.BandSweep("b", base2, rows, 4, rowBytes)
				band = sb.TotalCycles()
			}
			b.ReportMetric(gather/band, "gather/band")
		})
	}
}

func fmtMB(mb int64) string {
	switch mb {
	case 1:
		return "L2_1MB"
	case 2:
		return "L2_2MB"
	case 8:
		return "L2_8MB"
	default:
		return "L2_32MB"
	}
}

func TestL2SizeShrinksGatherAdvantageGap(t *testing.T) {
	// Larger L2 must reduce gather cost (more hits) but never below the
	// banded sweep at equal work.
	const rows, rowBytes = 50000, 256
	rng := rand.New(rand.NewSource(8))
	idx := make([]int32, rows)
	for i := range idx {
		idx[i] = int32(rng.Intn(rows))
	}
	cost := func(l2 int64) float64 {
		cfg := GTX1080()
		cfg.L2Bytes = l2
		s := New(cfg)
		base := s.Alloc(rows * rowBytes)
		s.GatherRows("g", base, idx, rowBytes)
		return s.TotalCycles()
	}
	small := cost(1 << 20)
	big := cost(64 << 20)
	if big >= small {
		t.Errorf("64MB L2 gather cost %v should be below 1MB cost %v", big, small)
	}
}

func TestModernDeviceWidensGatherGap(t *testing.T) {
	// Across GPU generations, bandwidth and compute scale far faster than
	// memory latency. The band sweep is bandwidth-bound so it rides the
	// scaling; the gather stays latency-bound — the gap between them
	// *widens* on a modern device, which is exactly why the paper's
	// conclusion ties MEGA to "the ongoing trend of expanding model
	// sizes".
	const rows, rowBytes = 100000, 256
	rng := rand.New(rand.NewSource(11))
	idx := make([]int32, rows)
	for i := range idx {
		idx[i] = int32(rng.Intn(rows))
	}
	gap := func(cfg Config) float64 {
		g := New(cfg)
		g.GatherRows("g", g.Alloc(rows*rowBytes), idx, rowBytes)
		b := New(cfg)
		b.BandSweep("b", b.Alloc(rows*rowBytes), rows, 4, rowBytes)
		return g.TotalCycles() / b.TotalCycles()
	}
	old := gap(GTX1080())
	modern := gap(A100Class())
	if old <= 1 || modern <= 1 {
		t.Errorf("gather/band gap must exceed 1 on both devices: %v, %v", old, modern)
	}
	if modern <= old {
		t.Errorf("modern gap %v should exceed GTX 1080 gap %v (bandwidth scales, latency does not)", modern, old)
	}
	t.Logf("gather/band cycle ratio: GTX1080 %.2f, A100-class %.2f", old, modern)
}
