// Package gpusim is a trace-driven GPU memory-hierarchy simulator that
// stands in for the paper's GTX 1080 + nvprof measurement stack (see
// DESIGN.md, substitutions). The attention engines feed it their actual
// memory-access patterns — per-row gathers and scatters for the DGL-style
// baseline, sequential banded sweeps for MEGA — and it derives the metrics
// the paper profiles: per-kernel cycles, SM efficiency, memory-stall
// percentage, global-load transaction counts, and call counts (Figs 1b, 4,
// 5, 6, 9, 10).
//
// The cost model per kernel launch:
//
//	time  = max(compute, memPipeline) + exposedStall
//
// where compute is issue cycles for useful math, memPipeline is the
// bandwidth-bound cost of the touched transactions, and exposedStall is
// per-access latency (global or L2) divided by the kernel's memory-level
// parallelism (MLP). Streaming kernels (sgemm, elementwise, banded
// attention) enjoy high MLP — hardware prefetching and abundant independent
// loads hide latency. Index-dependent kernels (gather/scatter/sort) have
// low MLP: the address is not known until the index arrives, which is
// exactly the "un-coalesced memory access" bottleneck of §II-B2.
//
// Whether an access hits in L2 is decided by an actual set-associative LRU
// cache simulation over the engine-provided addresses, so locality effects
// (e.g. MEGA's reordering making neighbour rows adjacent) emerge rather
// than being asserted.
package gpusim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Kind classifies kernels by their access behaviour; it selects the MLP
// model and groups kernels for reporting.
type Kind int

// Kernel behaviour classes.
const (
	// KindSgemm is dense matrix multiply (cuBLAS sgemm): compute bound,
	// streaming memory.
	KindSgemm Kind = iota + 1
	// KindGather is index-based row gathering (the dgl aggregation
	// kernels): low MLP, index-dependent addressing.
	KindGather
	// KindScatter is index-based row scattering with atomics.
	KindScatter
	// KindSort is cub radix sort over index keys.
	KindSort
	// KindElementwise is streaming per-element math (activations, norms).
	KindElementwise
	// KindMemcpy is host<->device or device<->device copy.
	KindMemcpy
	// KindBand is MEGA's banded diagonal attention sweep: sequential
	// shifted streams.
	KindBand
	// KindSync is MEGA's duplicate-position synchronisation reduction.
	KindSync
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSgemm:
		return "sgemm"
	case KindGather:
		return "gather"
	case KindScatter:
		return "scatter"
	case KindSort:
		return "sort"
	case KindElementwise:
		return "elementwise"
	case KindMemcpy:
		return "memcpy"
	case KindBand:
		return "band"
	case KindSync:
		return "sync"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// mlp returns the modelled memory-level parallelism for the kind: how many
// outstanding accesses hide each other's latency.
func (k Kind) mlp() float64 {
	switch k {
	case KindSgemm, KindElementwise, KindMemcpy, KindBand:
		// Streaming: hardware prefetch plus >1000 warps in flight hide
		// essentially all latency; the stream is bandwidth bound.
		return 2048
	case KindSort:
		return 64 // multi-pass with partial regularity
	case KindSync:
		return 32 // few indexed rows per group, batched
	default:
		return 8 // gather/scatter: index-dependent addresses
	}
}

// Config describes the simulated device. Defaults model a GeForce GTX 1080
// (§IV-A): 2 MiB L2, 320 GB/s global memory, 1.6 GHz SM clock, 20 SMs,
// 128 B memory transactions.
type Config struct {
	ClockHz          float64
	L2Bytes          int64
	L2Ways           int
	LineBytes        int64
	GlobalLatency    float64 // cycles per global-memory access
	L2Latency        float64 // cycles per L2 hit
	BytesPerCycle    float64 // DRAM bandwidth in bytes per SM-clock cycle
	FlopsPerCycle    float64 // device-wide fp32 throughput per cycle
	LaunchOverhead   float64 // cycles per kernel launch
	WarpSize         int
	TransactionBytes int64
}

// GTX1080 returns the default device configuration.
func GTX1080() Config {
	return Config{
		ClockHz:          1.6e9,
		L2Bytes:          2 << 20,
		L2Ways:           16,
		LineBytes:        128,
		GlobalLatency:    400,
		L2Latency:        200,
		BytesPerCycle:    200,  // 320 GB/s at 1.6 GHz
		FlopsPerCycle:    5000, // ~8 TFLOP/s fp32
		LaunchOverhead:   4000,
		WarpSize:         32,
		TransactionBytes: 128,
	}
}

// A100Class returns a modern-datacenter-GPU configuration (40 MiB L2,
// ~1.5 TB/s HBM, ~19 TFLOP/s fp32). Useful for sensitivity analysis: MEGA's
// advantage shrinks as caches grow and latency hiding improves, but the
// irregular kernels remain latency-bound — the trend the paper's conclusion
// points at ("the ongoing trend of expanding model sizes").
func A100Class() Config {
	return Config{
		ClockHz:          1.4e9,
		L2Bytes:          40 << 20,
		L2Ways:           16,
		LineBytes:        128,
		GlobalLatency:    350,
		L2Latency:        180,
		BytesPerCycle:    1100,  // ~1.5 TB/s at 1.4 GHz
		FlopsPerCycle:    14000, // ~19 TFLOP/s fp32
		LaunchOverhead:   3000,
		WarpSize:         32,
		TransactionBytes: 128,
	}
}

// KernelStats aggregates every launch of one named kernel.
type KernelStats struct {
	Name string
	Kind Kind

	Calls         int64
	Cycles        float64
	ComputeCycles float64
	StallCycles   float64
	// LoadTransactions counts 128 B global-load transactions; the paper's
	// "Warp-level instructions for global loads" (Fig 6).
	LoadTransactions  int64
	StoreTransactions int64
	L2Hits            int64
	L2Misses          int64
}

// SMEfficiency returns the fraction of kernel time the SMs were issuing
// work rather than stalled, the nvprof sm_efficiency analogue.
func (k *KernelStats) SMEfficiency() float64 {
	if k.Cycles == 0 {
		return 0
	}
	return (k.Cycles - k.StallCycles) / k.Cycles
}

// StallPct returns the fraction of kernel time stalled on memory, the
// nvprof stall_memory_dependency analogue.
func (k *KernelStats) StallPct() float64 {
	if k.Cycles == 0 {
		return 0
	}
	return k.StallCycles / k.Cycles
}

// Sim is one simulated device. It is not safe for concurrent use; training
// loops drive it from a single goroutine, matching a CUDA stream.
type Sim struct {
	cfg     Config
	l2      *cache
	kernels map[string]*KernelStats
	next    uint64 // bump allocator cursor
	cycles  float64
	tracing bool
	trace   []traceEvent
}

// New returns a simulator over the given device config.
func New(cfg Config) *Sim {
	if cfg.ClockHz == 0 {
		cfg = GTX1080()
	}
	return &Sim{
		cfg:     cfg,
		l2:      newCache(cfg.L2Bytes, cfg.LineBytes, cfg.L2Ways),
		kernels: make(map[string]*KernelStats),
		next:    1 << 20, // leave a guard region at 0
	}
}

// Addr is a simulated device address.
type Addr = uint64

// Alloc reserves bytes of simulated device memory and returns its base
// address, 256-byte aligned like cudaMalloc.
func (s *Sim) Alloc(bytes int64) Addr {
	const align = 256
	base := (s.next + align - 1) &^ (align - 1)
	s.next = base + uint64(bytes)
	return base
}

// stats returns (creating on first use) the accumulator for a kernel name.
func (s *Sim) stats(name string, kind Kind) *KernelStats {
	k, ok := s.kernels[name]
	if !ok {
		k = &KernelStats{Name: name, Kind: kind}
		s.kernels[name] = k
	}
	return k
}

// account finalises one kernel launch given its compute cycles and the
// memory traffic it generated.
func (s *Sim) account(k *KernelStats, compute float64, loadTx, storeTx, hits, misses int64) {
	memBytes := float64(loadTx+storeTx) * float64(s.cfg.TransactionBytes)
	memPipeline := memBytes / s.cfg.BytesPerCycle
	latency := float64(misses)*s.cfg.GlobalLatency + float64(hits)*s.cfg.L2Latency
	// Effective MLP grows with launch size: a bigger launch puts more
	// independent accesses in flight (occupancy), so per-access latency
	// exposure falls — the amortization larger batches buy in Figure 5.
	// Index-dependent kinds cap out quickly (dependent addressing and
	// atomic contention bound their parallelism).
	mlp := k.Kind.mlp() * occupancyScale(hits+misses, k.Kind.occupancyCap())
	stall := latency / mlp
	// Streaming kernels overlap latency with useful issue; only the
	// portion beyond the busy window is exposed.
	busy := compute
	if memPipeline > busy {
		busy = memPipeline
	}
	exposed := stall - busy
	if exposed < 0 {
		exposed = 0
	}
	total := busy + exposed + s.cfg.LaunchOverhead

	k.Calls++
	k.Cycles += total
	k.ComputeCycles += compute
	k.StallCycles += exposed
	k.LoadTransactions += loadTx
	k.StoreTransactions += storeTx
	k.L2Hits += hits
	k.L2Misses += misses
	s.recordTrace(k.Name, k.Kind, s.cycles, total)
	s.cycles += total
}

// GatherRows simulates an index-based row gather (one dgl aggregation
// read): for every index, a row of rowBytes is loaded from base +
// idx*rowBytes. Rows are 128 B-coalesced internally (feature dim across
// lanes), so the cost of irregularity is cache behaviour and exposed
// latency, not intra-row divergence.
func (s *Sim) GatherRows(name string, base Addr, indices []int32, rowBytes int64) {
	k := s.stats(name, KindGather)
	var loadTx, hits, misses int64
	for _, idx := range indices {
		addr := base + uint64(idx)*uint64(rowBytes)
		lines, miss := s.l2.accessBytes(addr, uint64(rowBytes))
		loadTx += lines
		misses += miss
		hits += lines - miss
	}
	// Index array itself streams in.
	idxLines, idxMiss := s.streamTouch(s.next+1<<25, int64(len(indices))*4)
	loadTx += idxLines
	misses += idxMiss
	hits += idxLines - idxMiss
	compute := float64(len(indices)) // one address computation per row
	s.account(k, compute, loadTx, 0, hits, misses)
}

// ScatterRows simulates an index-based row scatter (atomic accumulation of
// rowBytes rows into base + idx*rowBytes). Atomics read-modify-write, so
// each line is both loaded and stored.
func (s *Sim) ScatterRows(name string, base Addr, indices []int32, rowBytes int64) {
	k := s.stats(name, KindScatter)
	var tx, hits, misses int64
	for _, idx := range indices {
		addr := base + uint64(idx)*uint64(rowBytes)
		lines, miss := s.l2.accessBytes(addr, uint64(rowBytes))
		tx += lines
		misses += miss
		hits += lines - miss
	}
	compute := 2 * float64(len(indices)) // address + atomic op
	s.account(k, compute, tx, tx, hits, misses)
}

// Sequential simulates a coalesced streaming pass over [base, base+bytes),
// as a read or a write, under the given kernel name and kind.
func (s *Sim) Sequential(name string, kind Kind, base Addr, bytes int64, write bool) {
	k := s.stats(name, kind)
	lines, miss := s.l2.accessBytes(uint64(base), uint64(bytes))
	hits := lines - miss
	compute := float64(bytes) / 16 // light per-element work
	if write {
		s.account(k, compute, 0, lines, hits, miss)
	} else {
		s.account(k, compute, lines, 0, hits, miss)
	}
}

// Sgemm simulates a dense (m×k)·(k×n) fp32 matrix multiply with cuBLAS-like
// tiling: 2mkn flops of compute and one streaming pass over each operand.
func (s *Sim) Sgemm(m, k, n int) {
	st := s.stats("sgemm", KindSgemm)
	const elem = 4
	var loadTx, storeTx, hits, misses int64
	for _, sz := range []int64{int64(m) * int64(k) * elem, int64(k) * int64(n) * elem} {
		lines, miss := s.streamTouch(s.next+uint64(loadTx)*128, sz)
		loadTx += lines
		misses += miss
		hits += lines - miss
	}
	outLines, outMiss := s.streamTouch(s.next+1<<24, int64(m)*int64(n)*elem)
	storeTx += outLines
	misses += outMiss
	hits += outLines - outMiss
	compute := 2 * float64(m) * float64(k) * float64(n) / s.cfg.FlopsPerCycle * s.warpIssueFactor()
	s.account(st, compute, loadTx, storeTx, hits, misses)
}

// warpIssueFactor converts device-wide flop throughput into issue cycles.
// Kept at 1: FlopsPerCycle is already device wide.
func (s *Sim) warpIssueFactor() float64 { return 1 }

// occupancyScale models how launch size buys memory-level parallelism:
// below the reference access count the device is underoccupied (scale 1);
// beyond it, additional in-flight accesses overlap as sqrt of the excess,
// capped by the kind's scheduling limit.
func occupancyScale(accesses int64, limit float64) float64 {
	const reference = 1024.0
	if float64(accesses) <= reference {
		return 1
	}
	scale := math.Sqrt(float64(accesses) / reference)
	if scale > limit {
		return limit
	}
	return scale
}

// occupancyCap bounds how much extra MLP a large launch can expose.
func (k Kind) occupancyCap() float64 {
	switch k {
	case KindGather, KindScatter:
		return 2.5 // dependent addressing and atomics saturate early
	case KindSort, KindSync:
		return 2
	default:
		return 8 // streaming kinds are bandwidth bound anyway
	}
}

// streamTouch models a streaming scan of bytes starting at a synthetic
// address; it deliberately bypasses detailed L2 state for large transient
// streams (they would only wipe the cache), charging a fixed L2 hit ratio
// for re-streamed data.
func (s *Sim) streamTouch(base uint64, bytes int64) (lines, misses int64) {
	if bytes <= 0 {
		return 0, 0
	}
	lines = (bytes + s.cfg.LineBytes - 1) / s.cfg.LineBytes
	// Streams are consumed once; treat them as mostly missing (they are
	// too large/transient to live in L2) but prefetched.
	misses = lines
	return lines, misses
}

// Elementwise simulates a streaming elementwise kernel over elems elements
// of elemBytes (read + write).
func (s *Sim) Elementwise(name string, elems int, elemBytes int64) {
	k := s.stats(name, KindElementwise)
	bytes := int64(elems) * elemBytes
	lines, miss := s.streamTouch(s.next+1<<26, bytes)
	compute := float64(elems) / 128 // fused math, 128 lanes/cycle
	s.account(k, compute, lines, lines, lines-miss, miss)
}

// Sort simulates a cub radix sort over keys 4-byte keys with payloadBytes
// of attached payload: four counting passes, each streaming reads plus
// scattered writes.
func (s *Sim) Sort(name string, keys int, payloadBytes int64) {
	k := s.stats(name, KindSort)
	const passes = 4
	recBytes := int64(4) + payloadBytes
	bytes := int64(keys) * recBytes
	var loadTx, storeTx, hits, misses int64
	for p := 0; p < passes; p++ {
		lines, miss := s.streamTouch(s.next+1<<27, bytes)
		loadTx += lines
		misses += miss
		hits += lines - miss
		// Scattered writes: each record lands in its bucket; records
		// smaller than a line each touch a distinct line.
		recs := int64(keys)
		perLine := s.cfg.LineBytes / recBytes
		wl := recs
		if perLine > 1 {
			wl = recs / perLine * 2 // partial locality inside buckets
		}
		storeTx += wl
		misses += wl / 2
		hits += wl - wl/2
	}
	compute := float64(keys) * passes / 64
	s.account(k, compute, loadTx, storeTx, hits, misses)
}

// Memcpy simulates a device-side copy of bytes.
func (s *Sim) Memcpy(bytes int64) {
	k := s.stats("memcpy", KindMemcpy)
	lines, miss := s.streamTouch(s.next+1<<28, bytes)
	s.account(k, float64(lines)/64, lines, lines, lines-miss, miss)
}

// BandSweep simulates MEGA's diagonal attention pass: for each of offsets
// shifted sweeps over a path of pathLen rows of rowBytes, both operands
// stream sequentially (the shifted stream hits lines the unshifted stream
// just touched).
func (s *Sim) BandSweep(name string, base Addr, pathLen, offsets int, rowBytes int64) {
	k := s.stats(name, KindBand)
	bytes := int64(pathLen) * rowBytes
	var loadTx, hits, misses int64
	for o := 0; o < offsets; o++ {
		// Two operand streams per offset (positions i and i+o). The
		// first offset misses on first touch; later offsets and the
		// shifted stream hit lines the unshifted stream just brought in.
		lines, miss := s.streamTouch(uint64(base), bytes)
		loadTx += 2 * lines
		if o == 0 {
			misses += miss
			hits += 2*lines - miss
		} else {
			hits += 2 * lines
		}
	}
	outLines, outMiss := s.streamTouch(uint64(base)+1<<24, bytes)
	compute := float64(pathLen*offsets) * float64(rowBytes) / 4 / s.cfg.FlopsPerCycle * 8
	s.account(k, compute, loadTx, outLines, hits+outLines-outMiss, misses+outMiss)
}

// SyncRows simulates MEGA's duplicate-position synchronisation: a segment
// reduction over groups of row positions. Indices are path positions (near
// each other for most duplicates), modelled through the live cache.
func (s *Sim) SyncRows(name string, base Addr, positions []int32, rowBytes int64) {
	k := s.stats(name, KindSync)
	var tx, hits, misses int64
	for _, p := range positions {
		addr := base + uint64(p)*uint64(rowBytes)
		lines, miss := s.l2.accessBytes(addr, uint64(rowBytes))
		tx += lines
		misses += miss
		hits += lines - miss
	}
	s.account(k, float64(len(positions)), tx, tx, hits, misses)
}

// Stats returns per-kernel statistics sorted by descending cycles.
func (s *Sim) Stats() []KernelStats {
	out := make([]KernelStats, 0, len(s.kernels))
	for _, k := range s.kernels {
		out = append(out, *k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Kernel returns a copy of one kernel's stats and whether it exists.
func (s *Sim) Kernel(name string) (KernelStats, bool) {
	k, ok := s.kernels[name]
	if !ok {
		return KernelStats{}, false
	}
	return *k, true
}

// TotalCycles returns the simulated cycles across all launches.
func (s *Sim) TotalCycles() float64 { return s.cycles }

// TotalTime converts simulated cycles to wall-clock time on the device.
func (s *Sim) TotalTime() time.Duration {
	return time.Duration(s.cycles / s.cfg.ClockHz * float64(time.Second))
}

// WeightedSMEfficiency implements the paper's normalised metric
// (§IV-B2): Σ_k metric_k·n_k / Σ_k n_k with n_k the call count.
func (s *Sim) WeightedSMEfficiency() float64 {
	var num, den float64
	for _, k := range s.kernels {
		num += k.SMEfficiency() * float64(k.Calls)
		den += float64(k.Calls)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// WeightedStallPct is the call-weighted memory-stall percentage.
func (s *Sim) WeightedStallPct() float64 {
	var num, den float64
	for _, k := range s.kernels {
		num += k.StallPct() * float64(k.Calls)
		den += float64(k.Calls)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// KernelTimeShare returns each kernel's share of total cycles.
func (s *Sim) KernelTimeShare() map[string]float64 {
	out := make(map[string]float64, len(s.kernels))
	if s.cycles == 0 {
		return out
	}
	for name, k := range s.kernels {
		out[name] = k.Cycles / s.cycles
	}
	return out
}

// Reset clears all counters, trace events and cache state but keeps
// allocations.
func (s *Sim) Reset() {
	s.kernels = make(map[string]*KernelStats)
	s.cycles = 0
	s.trace = s.trace[:0]
	s.l2.reset()
}

// Config returns the device configuration.
func (s *Sim) Config() Config { return s.cfg }
