package gpusim

import (
	"bufio"
	"encoding/json"
	"io"
)

// Chrome-trace export: with tracing enabled, every kernel launch is
// recorded with its start cycle and duration, and WriteChromeTrace emits
// the Trace Event Format JSON that chrome://tracing and Perfetto load —
// the visual counterpart of an nvprof timeline.

// traceEvent is one completed kernel launch.
type traceEvent struct {
	name  string
	kind  Kind
	start float64 // cycles
	dur   float64 // cycles
}

// EnableTrace starts recording per-launch events (off by default: traces
// grow with every launch).
func (s *Sim) EnableTrace() { s.tracing = true }

// TraceLen returns the number of recorded launches.
func (s *Sim) TraceLen() int { return len(s.trace) }

// recordTrace appends one launch if tracing is on; called by account.
func (s *Sim) recordTrace(name string, kind Kind, start, dur float64) {
	if !s.tracing {
		return
	}
	s.trace = append(s.trace, traceEvent{name: name, kind: kind, start: start, dur: dur})
}

// chromeEvent is the Trace Event Format record.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// WriteChromeTrace emits the recorded launches as Trace Event Format JSON.
// Kernel kinds map to separate "threads" so the timeline groups dense,
// graph, and transfer work on distinct rows.
func (s *Sim) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	events := make([]chromeEvent, 0, len(s.trace))
	cyclesToUs := 1e6 / s.cfg.ClockHz
	for _, e := range s.trace {
		events = append(events, chromeEvent{
			Name: e.name,
			Cat:  e.kind.String(),
			Ph:   "X",
			Ts:   e.start * cyclesToUs,
			Dur:  e.dur * cyclesToUs,
			PID:  0,
			TID:  int(e.kind),
		})
	}
	enc := json.NewEncoder(bw)
	if err := enc.Encode(map[string]any{"traceEvents": events}); err != nil {
		return err
	}
	return bw.Flush()
}
