package gpusim

// Workload-imbalance modelling (§II-B2 "Significant workload imbalance"):
// aggregation kernels assign one compute unit per destination vertex, so a
// skewed degree distribution leaves most units idle while the hub's unit
// grinds — the kernel runs until its longest segment finishes. GNNAdvisor's
// *neighbor grouping* splits oversized segments into average-degree chunks
// merged with atomics, trading tail latency for atomic traffic.

// SegmentStats summarises a segmented workload.
type SegmentStats struct {
	Segments int
	Total    int64
	Max      int64
	Mean     float64
}

// AnalyzeSegments computes the degree-segment statistics used by the
// imbalance model.
func AnalyzeSegments(segLens []int32) SegmentStats {
	st := SegmentStats{Segments: len(segLens)}
	for _, l := range segLens {
		st.Total += int64(l)
		if int64(l) > st.Max {
			st.Max = int64(l)
		}
	}
	if st.Segments > 0 {
		st.Mean = float64(st.Total) / float64(st.Segments)
	}
	return st
}

// ScatterSegments simulates destination-major aggregation: segLens[i] rows
// of rowBytes accumulate into destination i (consecutive destinations).
// Without grouping, kernel time is bounded below by the longest segment's
// serial work — the tail-latency effect. With grouping, segments split into
// mean-degree chunks (no tail) but every chunk merges through an extra
// atomic round trip.
func (s *Sim) ScatterSegments(name string, base Addr, segLens []int32, rowBytes int64, grouped bool) {
	k := s.stats(name, KindScatter)
	st := AnalyzeSegments(segLens)
	var tx, hits, misses int64
	addr := uint64(base)
	for _, l := range segLens {
		for r := int32(0); r < l; r++ {
			lines, miss := s.l2.accessBytes(addr, uint64(rowBytes))
			tx += lines
			misses += miss
			hits += lines - miss
		}
		addr += uint64(rowBytes)
	}
	compute := 2 * float64(st.Total)

	if grouped {
		// Neighbor grouping: extra atomic merge per chunk beyond the
		// first — a read-modify-write round trip per chunk.
		if st.Mean >= 1 {
			chunks := int64(0)
			group := int64(st.Mean + 0.5)
			if group < 1 {
				group = 1
			}
			for _, l := range segLens {
				c := (int64(l) + group - 1) / group
				if c > 1 {
					chunks += c - 1
				}
			}
			extra := chunks * (rowBytes + s.cfg.LineBytes - 1) / s.cfg.LineBytes
			tx += extra
			hits += extra
			compute += 2 * float64(chunks)
		}
		s.account(k, compute, tx, tx, hits, misses)
		return
	}

	// Unbalanced: the longest segment runs serially; charge its exposed
	// serial latency as additional stall beyond the balanced account.
	s.account(k, compute, tx, tx, hits, misses)
	if st.Mean > 0 && float64(st.Max) > st.Mean {
		linesPerRow := (rowBytes + s.cfg.LineBytes - 1) / s.cfg.LineBytes
		tail := float64(st.Max-int64(st.Mean)) * float64(linesPerRow) * s.cfg.L2Latency
		k.Cycles += tail
		k.StallCycles += tail
		s.cycles += tail
		s.recordTrace(name+"-tail", KindScatter, s.cycles-tail, tail)
	}
}
