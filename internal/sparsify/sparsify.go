// Package sparsify builds spectral graph sparsifiers from approximate
// effective-resistance edge scores — the preprocessing mode of Srinivasa
// et al. ("Fast Graph Attention Networks Using Effective Resistance Based
// Graph Sparsification"), grafted onto MEGA's pipeline: a sparsified graph
// has a lower mean degree, so the adaptive attention band shrinks, the
// path shortens, and every downstream fast path compounds on top.
//
// Effective resistance R(u,v) treats the graph as a resistor network with
// unit conductances; edges whose endpoints have few alternative routes
// (bridges, tree edges) have R ≈ 1 and are structurally irreplaceable,
// while edges inside dense clusters share current across many parallel
// paths and score low. Sampling edge e with probability proportional to
// R(e) and reweighting survivors by 1/pₑ preserves the graph's Laplacian
// quadratic form in expectation (Spielman–Srivastava) — the property that
// makes aggressive keep fractions survivable for attention quality.
//
// Scores are approximated with the standard random-projection sketch:
// t random ±1/√t signed edge probes are pushed through the incidence
// operator and a few-iteration conjugate-gradient Laplacian solve, giving
// R(u,v) ≈ Σⱼ (zⱼ[u] − zⱼ[v])² over the t solution vectors. Everything is
// deterministic under the seed: probe signs come from a seeded generator,
// the solver runs a fixed iteration budget with order-fixed serial
// reductions, and per-edge keep decisions are pure hashes of
// (seed, salt, edge) — no sequential stream, so the sampler composes with
// other edge filters (traverse.Options.DropEdges) without coupling.
package sparsify

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mega/internal/compute"
	"mega/internal/graph"
	"mega/internal/tensor"
)

// Defaults for the scoring sketch. Eight probes resolve score ratios to
// well under the ~4× contrast between bridge and cluster edges, and 24 CG
// iterations drive the residual far below sampling noise on the evaluation
// graphs (tens to hundreds of vertices).
const (
	DefaultProbes     = 8
	DefaultIterations = 24
)

// ErrBadFraction rejects keep fractions outside (0, 1].
var ErrBadFraction = errors.New("sparsify: keep fraction outside (0, 1]")

// Options configures a sparsification plan.
type Options struct {
	// Fraction is the target keep fraction in (0, 1]: the sampler aims to
	// keep Fraction·m edges in expectation. 1 keeps every edge (weights
	// all 1) — the identity plan.
	Fraction float64
	// Seed drives the probe signs and the per-edge keep decisions. Plans
	// are bit-reproducible for a fixed (graph, Options) pair.
	Seed int64
	// Probes is the number of random ±1 probe vectors (0 selects
	// DefaultProbes). More probes sharpen the score estimates.
	Probes int
	// Iterations bounds the conjugate-gradient Laplacian solve (0 selects
	// DefaultIterations; always capped at the vertex count).
	Iterations int
}

// Plan is a computed sparsification: per-edge keep decisions over a
// graph's COO edge list, with importance-sampling reweighting for the
// survivors. Slices are indexed by the original edge order.
type Plan struct {
	// Keep[i] reports that edge i survives.
	Keep []bool
	// Weight[i] is the reweighting 1/pᵢ for kept edges (≥ 1 up to float
	// rounding) and 0 for removed ones; pᵢ is the keep probability the
	// sampler used, so the reweighted Laplacian matches the original in
	// expectation.
	Weight []float64
	// Scores holds the approximate effective resistance of every edge.
	Scores []float64
	// Kept counts true entries of Keep.
	Kept int
}

// New scores g's edges by approximate effective resistance and samples a
// keep set of expected size Fraction·m, deterministically under the seed.
func New(g *graph.Graph, opts Options) (*Plan, error) {
	if opts.Fraction <= 0 || opts.Fraction > 1 {
		return nil, fmt.Errorf("%w: %v", ErrBadFraction, opts.Fraction)
	}
	m := g.NumEdges()
	p := &Plan{Keep: make([]bool, m), Weight: make([]float64, m)}
	if m == 0 {
		return p, nil
	}
	p.Scores = Scores(g, opts.Probes, opts.Iterations, opts.Seed)
	probs := keepProbabilities(p.Scores, opts.Fraction)
	for i, e := range g.Edges() {
		if edgeCoin(uint64(opts.Seed), saltSample, i, e.Src, e.Dst) < probs[i] {
			p.Keep[i] = true
			p.Weight[i] = 1 / probs[i]
			p.Kept++
		}
	}
	return p, nil
}

// Apply materialises the plan: a graph over the same vertex set holding
// exactly the kept edges, in their original relative order (order
// stability is what lets two independent edge filters compose
// commutatively — see traverse.NewWalker).
func (p *Plan) Apply(g *graph.Graph) (*graph.Graph, error) {
	kept := make([]graph.Edge, 0, p.Kept)
	for i, e := range g.Edges() {
		if p.Keep[i] {
			kept = append(kept, e)
		}
	}
	return graph.New(g.NumNodes(), kept, g.Directed())
}

// KeptWeights returns the reweighting coefficients aligned with the edge
// list of Apply's output (kept edges only, original relative order).
func (p *Plan) KeptWeights() []float64 {
	out := make([]float64, 0, p.Kept)
	for i, w := range p.Weight {
		if p.Keep[i] {
			out = append(out, w)
		}
	}
	return out
}

// Scores approximates the effective resistance of every edge of g with the
// random-projection sketch: for each of t probes, a signed edge vector
// yⱼ = Σₑ ±(e_u − e_v)/√t is solved against the regularised Laplacian
// (L + λI) zⱼ = yⱼ by fixed-iteration conjugate gradient, and
// R(u,v) ≈ Σⱼ (zⱼ[u] − zⱼ[v])². Each edge's probe contributions are ± the
// same magnitude within its connected component, so every component's
// right-hand side sums to zero and the tiny λ only stabilises the solve.
//
// The solutions live in a probes×n tensor and the matvec + scoring loops
// run on the compute worker pool — each output element is written by
// exactly one worker from inputs fixed before the region, so scores are
// bit-identical at any thread count.
func Scores(g *graph.Graph, probes, iters int, seed int64) []float64 {
	n, m := g.NumNodes(), g.NumEdges()
	scores := make([]float64, m)
	if n == 0 || m == 0 {
		return scores
	}
	if probes <= 0 {
		probes = DefaultProbes
	}
	if iters <= 0 {
		iters = DefaultIterations
	}
	if iters > n {
		iters = n
	}
	edges := g.Edges()
	lambda := 1e-8 * (1 + g.MeanDegree())
	inv := 1 / math.Sqrt(float64(probes))

	z := tensor.Zeros(probes, n)
	rng := rand.New(rand.NewSource(int64(mix64(uint64(seed) ^ saltProbe))))
	b := make([]float64, n)
	for j := 0; j < probes; j++ {
		for i := range b {
			b[i] = 0
		}
		for _, e := range edges {
			if e.Src == e.Dst {
				continue // self loops carry no resistance
			}
			s := inv
			if rng.Intn(2) == 1 {
				s = -inv
			}
			b[e.Src] += s
			b[e.Dst] -= s
		}
		solveCG(g, b, lambda, iters, z.Data[j*n:(j+1)*n])
	}

	compute.ParallelGrain(m, 256, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := edges[i]
			s := 0.0
			for j := 0; j < probes; j++ {
				d := z.Data[j*n+int(e.Src)] - z.Data[j*n+int(e.Dst)]
				s += d * d
			}
			scores[i] = s
		}
	})
	return scores
}

// solveCG runs plain conjugate gradient on (L + λI) x = b for a fixed
// iteration budget, writing the solution into out. The dot products are
// serial (order-fixed reductions keep the solve bit-reproducible); the
// matvec parallelises by row.
func solveCG(g *graph.Graph, b []float64, lambda float64, iters int, out []float64) {
	n := len(b)
	for i := range out {
		out[i] = 0
	}
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	ap := make([]float64, n)
	rs := dot(r, r)
	for it := 0; it < iters && rs > 1e-24; it++ {
		lapMul(g, lambda, p, ap)
		den := dot(p, ap)
		if den <= 0 {
			break
		}
		alpha := rs / den
		for i := range out {
			out[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rs2 := dot(r, r)
		beta := rs2 / rs
		rs = rs2
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
}

// lapMul computes out = (L + λI)·x over the CSR adjacency. Every out[v] is
// owned by exactly one worker and accumulates serially in neighbour order,
// so the product is thread-count-invariant.
func lapMul(g *graph.Graph, lambda float64, x, out []float64) {
	compute.ParallelGrain(len(x), 128, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			nbrs := g.Neighbors(graph.NodeID(v))
			acc := (float64(len(nbrs)) + lambda) * x[v]
			for _, u := range nbrs {
				acc -= x[u]
			}
			out[v] = acc
		}
	})
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// keepProbabilities converts scores into per-edge keep probabilities
// pᵢ = min(1, c·(sᵢ+ε)) with c chosen by bisection so Σpᵢ ≈ frac·m. The ε
// floor keeps zero-resistance edges (self loops, exact duplicates)
// sampleable rather than certainly dropped.
func keepProbabilities(scores []float64, frac float64) []float64 {
	m := len(scores)
	target := frac * float64(m)
	mean := 0.0
	for _, s := range scores {
		mean += s
	}
	mean /= float64(m)
	eps := 1e-12 + 1e-3*mean
	expected := func(c float64) float64 {
		t := 0.0
		for _, s := range scores {
			t += math.Min(1, c*(s+eps))
		}
		return t
	}
	lo, hi := 0.0, 1.0
	for expected(hi) < target && hi < 1e30 {
		hi *= 2
	}
	for it := 0; it < 64; it++ {
		mid := (lo + hi) / 2
		if expected(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	out := make([]float64, m)
	for i, s := range scores {
		out[i] = math.Min(1, hi*(s+eps))
	}
	return out
}

// Hash salts separating this package's random streams from each other and
// from every other per-edge sampler (traverse's drop filter derives its
// stream differently); distinct salts keep equal seed *values* from
// coupling the decisions.
const (
	saltProbe  = 0x9E3779B97F4A7C15
	saltSample = 0xC2B2AE3D27D4EB4F
)

// mix64 is the splitmix64 finalizer: a bijective avalanche mix.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// edgeCoin returns the uniform [0, 1) decision variable for one edge: a
// pure hash of (seed, salt, index, endpoints) with no sequential state, so
// two samplers with distinct salts are independent even under equal seeds,
// and one sampler's decisions never shift when another filter is toggled.
func edgeCoin(seed, salt uint64, idx int, src, dst int32) float64 {
	h := mix64(seed ^ salt)
	h = mix64(h ^ uint64(uint32(src)) ^ uint64(uint32(dst))<<32)
	h = mix64(h ^ uint64(idx))
	return float64(h>>11) / (1 << 53)
}
