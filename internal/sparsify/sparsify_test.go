package sparsify

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"mega/internal/compute"
	"mega/internal/graph"
)

// barbell builds two k-cliques joined by a single bridge edge; the bridge
// is the highest-effective-resistance edge by a wide margin (R ≈ 1 vs
// ≈ 2/k inside the cliques).
func barbell(k int) (*graph.Graph, int) {
	var edges []graph.Edge
	for c := 0; c < 2; c++ {
		off := int32(c * k)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				edges = append(edges, graph.Edge{Src: off + int32(i), Dst: off + int32(j)})
			}
		}
	}
	bridge := len(edges)
	edges = append(edges, graph.Edge{Src: 0, Dst: int32(k)})
	return graph.MustNew(2*k, edges, false), bridge
}

func TestScoresBridgeDominates(t *testing.T) {
	g, bridge := barbell(6)
	scores := Scores(g, 32, 0, 3)
	for i, s := range scores {
		if i == bridge {
			continue
		}
		if s >= scores[bridge] {
			t.Fatalf("clique edge %d scored %v >= bridge %v", i, s, scores[bridge])
		}
	}
	// The bridge carries the whole inter-clique current: R ≈ 1, while
	// clique edges sit near 2/k. The sketch is noisy, but a 2× separation
	// must survive it.
	maxClique := 0.0
	for i, s := range scores {
		if i != bridge && s > maxClique {
			maxClique = s
		}
	}
	if scores[bridge] < 2*maxClique {
		t.Fatalf("bridge score %v not well above clique max %v", scores[bridge], maxClique)
	}
}

func TestScoresDeterministicAcrossThreads(t *testing.T) {
	g := graph.ErdosRenyiM(rand.New(rand.NewSource(11)), 40, 120)
	a := Scores(g, 0, 0, 7)
	prev := compute.SetMaxThreads(1)
	b := Scores(g, 0, 0, 7)
	compute.SetMaxThreads(prev)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("score %d differs across thread counts: %v vs %v", i, a[i], b[i])
		}
	}
	c := Scores(g, 0, 0, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical score vectors")
	}
}

func TestPlanKeepFraction(t *testing.T) {
	g := graph.ErdosRenyiM(rand.New(rand.NewSource(5)), 60, 300)
	p, err := New(g, Options{Fraction: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m := g.NumEdges()
	// Expected 150 kept; Bernoulli sd is < 9, so ±45 is a 5σ envelope.
	if p.Kept < m/2-45 || p.Kept > m/2+45 {
		t.Fatalf("kept %d of %d, want about %d", p.Kept, m, m/2)
	}
	for i := range p.Keep {
		if p.Keep[i] && p.Weight[i] < 1-1e-9 {
			t.Fatalf("kept edge %d has weight %v < 1", i, p.Weight[i])
		}
		if !p.Keep[i] && p.Weight[i] != 0 {
			t.Fatalf("removed edge %d has nonzero weight %v", i, p.Weight[i])
		}
	}
}

func TestPlanDeterministic(t *testing.T) {
	g := graph.ErdosRenyiM(rand.New(rand.NewSource(2)), 30, 90)
	a, err := New(g, Options{Fraction: 0.4, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(g, Options{Fraction: 0.4, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if a.Kept != b.Kept {
		t.Fatalf("kept %d vs %d across identical runs", a.Kept, b.Kept)
	}
	for i := range a.Keep {
		if a.Keep[i] != b.Keep[i] {
			t.Fatalf("keep decision %d differs across identical runs", i)
		}
		if math.Float64bits(a.Weight[i]) != math.Float64bits(b.Weight[i]) {
			t.Fatalf("weight %d differs across identical runs", i)
		}
	}
}

func TestPlanFractionOneIsIdentity(t *testing.T) {
	g := graph.ErdosRenyiM(rand.New(rand.NewSource(4)), 20, 50)
	p, err := New(g, Options{Fraction: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Kept != g.NumEdges() {
		t.Fatalf("fraction 1 kept %d of %d", p.Kept, g.NumEdges())
	}
	for i, w := range p.Weight {
		if math.Abs(w-1) > 1e-9 {
			t.Fatalf("fraction 1 edge %d weight %v, want 1", i, w)
		}
	}
}

func TestApplyAndKeptWeights(t *testing.T) {
	g := graph.ErdosRenyiM(rand.New(rand.NewSource(8)), 25, 80)
	p, err := New(g, Options{Fraction: 0.5, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := p.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumNodes() != g.NumNodes() {
		t.Fatalf("apply changed node count: %d vs %d", sg.NumNodes(), g.NumNodes())
	}
	if sg.NumEdges() != p.Kept {
		t.Fatalf("applied graph has %d edges, plan kept %d", sg.NumEdges(), p.Kept)
	}
	// Kept edges appear in original relative order.
	want := make([]graph.Edge, 0, p.Kept)
	for i, e := range g.Edges() {
		if p.Keep[i] {
			want = append(want, e)
		}
	}
	got := sg.Edges()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: got %v want %v (order not preserved)", i, got[i], want[i])
		}
	}
	if w := p.KeptWeights(); len(w) != p.Kept {
		t.Fatalf("KeptWeights length %d, want %d", len(w), p.Kept)
	}
}

func TestBadFraction(t *testing.T) {
	g := graph.MustNew(3, []graph.Edge{{Src: 0, Dst: 1}}, false)
	for _, f := range []float64{0, -0.2, 1.5} {
		if _, err := New(g, Options{Fraction: f}); !errors.Is(err, ErrBadFraction) {
			t.Errorf("fraction %v: got %v, want ErrBadFraction", f, err)
		}
	}
}

// TestSamplerSaltIndependence pins the stream-independence contract: the
// per-edge coins under distinct salts are uncorrelated even for the same
// seed, so no two samplers sharing a seed value can couple.
func TestSamplerSaltIndependence(t *testing.T) {
	const n = 4096
	match := 0
	for i := 0; i < n; i++ {
		a := edgeCoin(7, saltSample, i, int32(i), int32(i+1)) < 0.5
		b := edgeCoin(7, saltProbe, i, int32(i), int32(i+1)) < 0.5
		if a == b {
			match++
		}
	}
	// Independent fair coins agree ~n/2 ± a few sd (sd = 32); 6σ bounds.
	if match < n/2-200 || match > n/2+200 {
		t.Fatalf("salted streams agree on %d/%d decisions — correlated", match, n)
	}
}
