//go:build amd64

package tensor

// SSE inner loops for the float32 fast path. Plain SSE (MOVUPS/MULPS/
// ADDPS) is part of the amd64 baseline, so there is no feature detection
// and no dispatch cost. Each vector lane performs exactly the scalar
// kernel's multiply-add on its own output element, in the same ascending
// accumulation order — four independent scalar chains executed side by
// side — so results are bit-identical to the portable fallbacks in
// simd_generic.go (pinned by TestSIMDKernelsMatchReference). The float64
// training path never calls these.

// saxpy32 computes y[i] += alpha*x[i] for i < len(y). len(x) must be at
// least len(y).
//
//go:noescape
func saxpy32(alpha float32, x, y []float32)

// matmulTile32 accumulates one 16-column register tile of an output row:
// o[j] += Σ_p a[p]·b[p*stride+j] for j < 16, with the tile's partial
// sums held in registers across the whole sweep of a, and rows with
// a[p] == 0 skipped like the scalar kernels. len(o) must be at least 16
// and len(b) at least (len(a)-1)*stride+16.
//
//go:noescape
func matmulTile32(a, b, o []float32, stride int)
