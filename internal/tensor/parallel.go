package tensor

// Parallelisation policy for the tensor kernels, built on the
// internal/compute worker pool. Every kernel in this package follows one
// of two deterministic decompositions:
//
//   - row/element split: each chunk owns a disjoint slice of the output
//     (and of the gradient it writes), computed in exactly the serial
//     order — bit-identical at any thread count;
//   - column split: scatter-style accumulations (ScatterAddRows, MatMul's
//     dB, gather backward) partition the *columns* so concurrent chunks
//     never touch the same accumulator, while the row-ascending
//     accumulation order per element stays the serial order.
//
// No kernel combines partial floating-point sums across chunks except via
// compute.ReduceSum, whose partition is fixed independent of the thread
// count. See DESIGN.md, "Threading model".

const (
	// elemGrain is the minimum number of elements per chunk for flat
	// elementwise loops; below ~4k elements goroutine handoff costs more
	// than the loop body.
	elemGrain = 4096
	// flopGrain is the minimum number of multiply-adds per chunk for
	// matmul-like kernels.
	flopGrain = 1 << 15
	// matmulKBlock tiles the shared dimension so a block of B rows stays
	// cache-resident while a row chunk sweeps it.
	matmulKBlock = 64
)

// rowGrain returns the minimum rows per chunk for a row-split kernel over
// cols-wide rows.
func rowGrain(cols int) int {
	if cols < 1 {
		cols = 1
	}
	g := elemGrain / cols
	if g < 1 {
		g = 1
	}
	return g
}

// workGrain returns the minimum outer iterations per chunk when each
// iteration performs `inner` multiply-adds.
func workGrain(inner int) int {
	if inner < 1 {
		inner = 1
	}
	g := flopGrain / inner
	if g < 1 {
		g = 1
	}
	return g
}
