package tensor

import (
	"fmt"
	"math"

	"mega/internal/compute"
)

// Float32 forward-only variants of the fused attention kernels, in two
// memory layouts.
//
// The float64 kernels walk node-major [R,d] rows: a per-(receiver, head)
// segment sweep touches one dk-wide stripe of each sender row, so
// consecutive senders are d elements apart — with 4 heads, 3/4 of every
// fetched cache line is for other heads. LayoutHeadMajor repacks Q/K/V
// (and the edge modulation) head-major — element (row r, head a, lane j)
// at a·(R·dk) + r·dk + j — so each segment sweep reads one contiguous
// ~len·dk stream per head: band-graph senders are near-consecutive
// positions, so the stream is dense. LayoutInterleaved keeps the float64
// kernels' node-major walk for comparison (`make bench-precision` reports
// both).
//
// Both layouts perform identical arithmetic in identical per-element
// accumulation order — only the addresses differ — so their outputs are
// bit-identical (pinned by TestAttention32LayoutsBitIdentical). Across
// precisions the contract is the divergence envelope, not bit-identity.

// AttnLayout selects the scratch memory layout of the f32 attention
// kernels.
type AttnLayout int

const (
	// LayoutHeadMajor streams each (receiver, head) segment sweep over
	// contiguous per-head panels. The serving default.
	LayoutHeadMajor AttnLayout = iota
	// LayoutInterleaved keeps the float64 kernels' node-major row layout.
	LayoutInterleaved
)

func (l AttnLayout) String() string {
	switch l {
	case LayoutHeadMajor:
		return "head-major"
	case LayoutInterleaved:
		return "interleaved"
	default:
		return fmt.Sprintf("AttnLayout(%d)", int(l))
	}
}

// exp32 evaluates exp in float64 and rounds once — Go has no float32
// stdlib exp, and one correctly-rounded evaluation keeps the softmax the
// tightest float32 can represent.
func exp32(x float32) float32 { return float32(math.Exp(float64(x))) }

// packHeadMajor copies node-major src [rows,d] into dst laid out
// head-major: dst[a·rows·dk + i·dk + j] = src[i·d + a·dk + j].
func packHeadMajor(dst, src []float32, rows, heads, dk int) {
	d := heads * dk
	compute.ParallelGrain(rows, rowGrain(d), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := src[i*d : (i+1)*d]
			for a := 0; a < heads; a++ {
				copy(dst[a*rows*dk+i*dk:a*rows*dk+(i+1)*dk], row[a*dk:(a+1)*dk])
			}
		}
	})
}

// unpackHeadMajor is the inverse copy, back to node-major.
func unpackHeadMajor(dst, src []float32, rows, heads, dk int) {
	d := heads * dk
	compute.ParallelGrain(rows, rowGrain(d), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := dst[i*d : (i+1)*d]
			for a := 0; a < heads; a++ {
				copy(row[a*dk:(a+1)*dk], src[a*rows*dk+i*dk:a*rows*dk+(i+1)*dk])
			}
		}
	})
}

// FusedSegmentAttention32 is the forward-only float32 counterpart of
// FusedSegmentAttention: scaled dot-product attention with edge-modulated
// keys over a directed pair list, softmax-normalised per receiver segment,
// plus (when ew is non-nil) the per-edge mean of k⊙w as the GT edge-stream
// input. bySend is not needed — there is no backward.
func FusedSegmentAttention32(q, k, v, ew *F32, recv, send, edgeIdx []int32,
	byRecv, byEdge *Segments, heads int, layout AttnLayout, arena *Arena) (att, edgeOut *F32) {

	rows, d := q.rows, q.cols
	if k.rows != rows || k.cols != d || v.rows != rows || v.cols != d {
		panic(fmt.Sprintf("tensor: fusedattn32 shape q %dx%d k %dx%d v %dx%d",
			q.rows, q.cols, k.rows, k.cols, v.rows, v.cols))
	}
	if heads < 1 || d%heads != 0 {
		panic(fmt.Sprintf("tensor: fusedattn32 %d cols with %d heads", d, heads))
	}
	P := len(recv)
	if len(send) != P || len(edgeIdx) != P {
		panic(fmt.Sprintf("tensor: fusedattn32 index lengths %d/%d/%d", len(recv), len(send), len(edgeIdx)))
	}
	numEdges := 0
	if ew != nil {
		if ew.cols != d {
			panic(fmt.Sprintf("tensor: fusedattn32 edge cols %d != %d", ew.cols, d))
		}
		numEdges = ew.rows
		if byEdge == nil || len(byEdge.Start) != numEdges+1 {
			panic("tensor: fusedattn32 missing/mis-sized edge segments")
		}
	}
	if byRecv == nil || len(byRecv.Start) != rows+1 {
		panic("tensor: fusedattn32 missing/mis-sized recv segments")
	}
	for p := 0; p < P; p++ {
		if r := recv[p]; r < 0 || int(r) >= rows {
			panic(fmt.Sprintf("tensor: fusedattn32 recv %d out of %d rows", r, rows))
		}
		if s := send[p]; s < 0 || int(s) >= rows {
			panic(fmt.Sprintf("tensor: fusedattn32 send %d out of %d rows", s, rows))
		}
		if ew != nil {
			if e := edgeIdx[p]; e < 0 || int(e) >= numEdges {
				panic(fmt.Sprintf("tensor: fusedattn32 edge %d out of %d", e, numEdges))
			}
		}
	}

	dk := d / heads
	scale := float32(1 / math.Sqrt(float64(dk)))
	att = arena.GetF32(rows, d)
	if ew != nil {
		edgeOut = arena.GetF32(numEdges, d)
	}

	if layout == LayoutInterleaved {
		fusedSegmentAttention32Interleaved(q, k, v, ew, att, edgeOut,
			recv, send, edgeIdx, byRecv, byEdge, heads, dk, scale, arena)
		return att, edgeOut
	}

	// Head-major panels for everything the segment sweeps touch.
	qh := arena.Get32(rows * d)
	kh := arena.Get32(rows * d)
	vh := arena.Get32(rows * d)
	packHeadMajor(qh, q.Data, rows, heads, dk)
	packHeadMajor(kh, k.Data, rows, heads, dk)
	packHeadMajor(vh, v.Data, rows, heads, dk)
	var ewh []float32
	if ew != nil {
		ewh = arena.Get32(numEdges * d)
		packHeadMajor(ewh, ew.Data, numEdges, heads, dk)
	}

	// Scores, head-major sBuf[a·P + p]: per (head, pair-chunk) both the q
	// row stripe and the k/w stripes are contiguous dk runs inside the
	// head's panel. The j-sum is a serial ascending register accumulation
	// — the float64 kernel's order.
	sBuf := arena.Get32(P * heads)
	pairGrain := workGrain(d)
	compute.ParallelGrain(P, pairGrain, func(lo, hi int) {
		for a := 0; a < heads; a++ {
			qa := qh[a*rows*dk : (a+1)*rows*dk]
			ka := kh[a*rows*dk : (a+1)*rows*dk]
			var ewa []float32
			if ew != nil {
				ewa = ewh[a*numEdges*dk : (a+1)*numEdges*dk]
			}
			sa := sBuf[a*P : (a+1)*P]
			for p := lo; p < hi; p++ {
				r, s := int(recv[p])*dk, int(send[p])*dk
				var sum float32
				if ew != nil {
					e := int(edgeIdx[p]) * dk
					for j := 0; j < dk; j++ {
						sum += qa[r+j] * (ka[s+j] * ewa[e+j])
					}
				} else {
					for j := 0; j < dk; j++ {
						sum += qa[r+j] * ka[s+j]
					}
				}
				sa[p] = sum * scale
			}
		}
	})

	// Softmax + aggregation, receiver-segment-parallel: each (r, a) output
	// stripe is one contiguous dk run in the head's panel of attH, fed by
	// contiguous sender stripes of vh. Ascending pair order per segment.
	attH := arena.Get32(rows * d)
	segGrain := workGrain(2 * d * (P/rows + 1))
	compute.ParallelGrain(rows, segGrain, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			seg := byRecv.Order[byRecv.Start[r]:byRecv.Start[r+1]]
			if len(seg) == 0 {
				continue
			}
			for a := 0; a < heads; a++ {
				va := vh[a*rows*dk : (a+1)*rows*dk]
				sa := sBuf[a*P : (a+1)*P]
				mx := float32(math.Inf(-1))
				for _, p := range seg {
					if sv := sa[p]; sv > mx {
						mx = sv
					}
				}
				var denom float32
				for _, p := range seg {
					ex := exp32(sa[p] - mx)
					sa[p] = ex
					denom += ex
				}
				recip := 1 / (denom + 1e-9)
				orow := attH[a*rows*dk+r*dk : a*rows*dk+(r+1)*dk]
				for _, p := range seg {
					alpha := sa[p] * recip
					saxpy32(alpha, va[int(send[p])*dk:(int(send[p])+1)*dk], orow)
				}
			}
		}
	})
	unpackHeadMajor(att.Data, attH, rows, heads, dk)
	arena.Put32(attH)
	arena.Put32(sBuf)
	arena.Put32(qh)
	arena.Put32(vh)

	// Edge stream: per-edge mean of k⊙w, edge-segment-parallel, from the
	// head-major k/w panels into the node-major output. Per element the
	// pair accumulation order matches the float64 kernel (ascending pair
	// index, then one 1/count scale).
	if ew != nil {
		compute.ParallelGrain(numEdges, segGrain, func(lo, hi int) {
			for e := lo; e < hi; e++ {
				seg := byEdge.Order[byEdge.Start[e]:byEdge.Start[e+1]]
				if len(seg) == 0 {
					continue
				}
				for _, p := range seg {
					s := int(send[p]) * dk
					for a := 0; a < heads; a++ {
						ka := kh[a*rows*dk:]
						ewa := ewh[a*numEdges*dk:]
						orow := edgeOut.Data[e*d+a*dk : e*d+(a+1)*dk]
						eo := e * dk
						for j := range orow {
							orow[j] += ka[s+j] * ewa[eo+j]
						}
					}
				}
				inv := 1 / float32(len(seg))
				orow := edgeOut.Data[e*d : (e+1)*d]
				for j := range orow {
					orow[j] *= inv
				}
			}
		})
		arena.Put32(ewh)
	}
	arena.Put32(kh)
	return att, edgeOut
}

// fusedSegmentAttention32Interleaved is the node-major reference walk —
// the float64 kernel's loop structure in float32.
func fusedSegmentAttention32Interleaved(q, k, v, ew, att, edgeOut *F32,
	recv, send, edgeIdx []int32, byRecv, byEdge *Segments,
	heads, dk int, scale float32, arena *Arena) {

	rows, d := q.rows, q.cols
	P := len(recv)
	sBuf := arena.Get32(P * heads)
	pairGrain := workGrain(d)
	compute.ParallelGrain(P, pairGrain, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			r, s := int(recv[p])*d, int(send[p])*d
			var eOff int
			if ew != nil {
				eOff = int(edgeIdx[p]) * d
			}
			for a := 0; a < heads; a++ {
				base := a * dk
				var sum float32
				if ew != nil {
					for j := base; j < base+dk; j++ {
						sum += q.Data[r+j] * (k.Data[s+j] * ew.Data[eOff+j])
					}
				} else {
					for j := base; j < base+dk; j++ {
						sum += q.Data[r+j] * k.Data[s+j]
					}
				}
				sBuf[p*heads+a] = sum * scale
			}
		}
	})

	segGrain := workGrain(2 * d * (P/rows + 1))
	compute.ParallelGrain(rows, segGrain, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			seg := byRecv.Order[byRecv.Start[r]:byRecv.Start[r+1]]
			if len(seg) == 0 {
				continue
			}
			for a := 0; a < heads; a++ {
				mx := float32(math.Inf(-1))
				for _, p := range seg {
					if sv := sBuf[int(p)*heads+a]; sv > mx {
						mx = sv
					}
				}
				var denom float32
				for _, p := range seg {
					ex := exp32(sBuf[int(p)*heads+a] - mx)
					sBuf[int(p)*heads+a] = ex
					denom += ex
				}
				recip := 1 / (denom + 1e-9)
				base := a * dk
				for _, p := range seg {
					alpha := sBuf[int(p)*heads+a] * recip
					s := int(send[p]) * d
					o := r * d
					saxpy32(alpha, v.Data[s+base:s+base+dk], att.Data[o+base:o+base+dk])
				}
			}
		}
	})
	arena.Put32(sBuf)

	if ew != nil {
		numEdges := ew.rows
		compute.ParallelGrain(numEdges, segGrain, func(lo, hi int) {
			for e := lo; e < hi; e++ {
				seg := byEdge.Order[byEdge.Start[e]:byEdge.Start[e+1]]
				if len(seg) == 0 {
					continue
				}
				o, eOff := e*d, e*d
				for _, p := range seg {
					s := int(send[p]) * d
					for j := 0; j < d; j++ {
						edgeOut.Data[o+j] += k.Data[s+j] * ew.Data[eOff+j]
					}
				}
				inv := 1 / float32(len(seg))
				for j := 0; j < d; j++ {
					edgeOut.Data[o+j] *= inv
				}
			}
		})
	}
}

// gatScore32 is LeakyReLU with slope 0.2 in the staged decomposition the
// float64 kernel uses (relu + (x−relu)·0.2).
func gatScore32(x float32) float32 {
	relu := x
	if relu < 0 {
		relu = 0
	}
	return relu + (x-relu)*0.2
}

// FusedAdditiveAttention32 is the forward-only float32 counterpart of
// FusedAdditiveAttention (GAT): per-pair leaky additive scores from
// per-row halves, softmax per receiver segment, aggregating alpha·w_s per
// head. aL/aR are the flattened 1×d attention vectors.
func FusedAdditiveAttention32(wh *F32, aL, aR []float32, recv, send []int32,
	byRecv *Segments, heads int, layout AttnLayout, arena *Arena) *F32 {

	rows, d := wh.rows, wh.cols
	if heads < 1 || d%heads != 0 {
		panic(fmt.Sprintf("tensor: fusedattn32 %d cols with %d heads", d, heads))
	}
	if len(aL) != d || len(aR) != d {
		panic(fmt.Sprintf("tensor: fusedattn32 attention vectors %d/%d for dim %d", len(aL), len(aR), d))
	}
	P := len(recv)
	if len(send) != P {
		panic(fmt.Sprintf("tensor: fusedattn32 index lengths %d/%d", len(recv), len(send)))
	}
	if byRecv == nil || len(byRecv.Start) != rows+1 {
		panic("tensor: fusedattn32 missing/mis-sized recv segments")
	}
	for p := 0; p < P; p++ {
		if r := recv[p]; r < 0 || int(r) >= rows {
			panic(fmt.Sprintf("tensor: fusedattn32 recv %d out of %d rows", r, rows))
		}
		if s := send[p]; s < 0 || int(s) >= rows {
			panic(fmt.Sprintf("tensor: fusedattn32 send %d out of %d rows", s, rows))
		}
	}

	dk := d / heads
	att := arena.GetF32(rows, d)

	// Per-row score halves rs[r,a] = Σ_j ascending wh[r,aj]·a[aj]: layout-
	// independent (node-major read order per row equals head-major per-head
	// order — same elements, same ascending j).
	rsL := arena.Get32(rows * heads)
	rsR := arena.Get32(rows * heads)
	rowG := workGrain(d)
	compute.ParallelGrain(rows, rowG, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for a := 0; a < heads; a++ {
				base := a * dk
				var sl, sr float32
				for j := base; j < base+dk; j++ {
					sl += wh.Data[i*d+j] * aL[j]
					sr += wh.Data[i*d+j] * aR[j]
				}
				rsL[i*heads+a] = sl
				rsR[i*heads+a] = sr
			}
		}
	})

	segGrain := workGrain(2 * d * (P/rows + 1))
	if layout == LayoutHeadMajor {
		// Head-major value panel: the aggregation is the only pair-major
		// sweep over wh, so only it needs repacking.
		whh := arena.Get32(rows * d)
		packHeadMajor(whh, wh.Data, rows, heads, dk)
		attH := arena.Get32(rows * d)
		compute.ParallelGrain(rows, segGrain, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				seg := byRecv.Order[byRecv.Start[r]:byRecv.Start[r+1]]
				if len(seg) == 0 {
					continue
				}
				for a := 0; a < heads; a++ {
					wa := whh[a*rows*dk : (a+1)*rows*dk]
					mx := float32(math.Inf(-1))
					for _, p := range seg {
						if sv := gatScore32(rsL[r*heads+a] + rsR[int(send[p])*heads+a]); sv > mx {
							mx = sv
						}
					}
					var denom float32
					for _, p := range seg {
						denom += exp32(gatScore32(rsL[r*heads+a]+rsR[int(send[p])*heads+a]) - mx)
					}
					recip := 1 / (denom + 1e-9)
					orow := attH[a*rows*dk+r*dk : a*rows*dk+(r+1)*dk]
					for _, p := range seg {
						ex := exp32(gatScore32(rsL[r*heads+a]+rsR[int(send[p])*heads+a]) - mx)
						alpha := ex * recip
						saxpy32(alpha, wa[int(send[p])*dk:(int(send[p])+1)*dk], orow)
					}
				}
			}
		})
		unpackHeadMajor(att.Data, attH, rows, heads, dk)
		arena.Put32(attH)
		arena.Put32(whh)
	} else {
		compute.ParallelGrain(rows, segGrain, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				seg := byRecv.Order[byRecv.Start[r]:byRecv.Start[r+1]]
				if len(seg) == 0 {
					continue
				}
				for a := 0; a < heads; a++ {
					mx := float32(math.Inf(-1))
					for _, p := range seg {
						if sv := gatScore32(rsL[r*heads+a] + rsR[int(send[p])*heads+a]); sv > mx {
							mx = sv
						}
					}
					var denom float32
					for _, p := range seg {
						denom += exp32(gatScore32(rsL[r*heads+a]+rsR[int(send[p])*heads+a]) - mx)
					}
					recip := 1 / (denom + 1e-9)
					base := a * dk
					for _, p := range seg {
						ex := exp32(gatScore32(rsL[r*heads+a]+rsR[int(send[p])*heads+a]) - mx)
						alpha := ex * recip
						s := int(send[p]) * d
						saxpy32(alpha, wh.Data[s+base:s+base+dk], att.Data[r*d+base:r*d+base+dk])
					}
				}
			}
		})
	}
	arena.Put32(rsL)
	arena.Put32(rsR)
	return att
}
