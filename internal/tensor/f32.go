package tensor

import (
	"fmt"
	"math"
)

// F32 is the inference-only float32 matrix. It carries no tape: the f32
// kernels in kernels32.go / attention32.go are forward-only functions over
// frozen (downcast) weights, so there is nothing to differentiate and no
// graph to build. Training stays entirely on the float64 Tensor.
type F32 struct {
	rows, cols int
	Data       []float32
}

// NewF32 wraps data as a rows×cols matrix (data is aliased, not copied).
func NewF32(rows, cols int, data []float32) *F32 {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: f32 data %d != %dx%d", len(data), rows, cols))
	}
	return &F32{rows: rows, cols: cols, Data: data}
}

// ZerosF32 allocates a zeroed rows×cols matrix from the heap.
func ZerosF32(rows, cols int) *F32 {
	return &F32{rows: rows, cols: cols, Data: make([]float32, rows*cols)}
}

// Rows returns the row count.
func (t *F32) Rows() int { return t.rows }

// Cols returns the column count.
func (t *F32) Cols() int { return t.cols }

// At returns element (i, j).
func (t *F32) At(i, j int) float32 { return t.Data[i*t.cols+j] }

// GetF32 checks out a zeroed rows×cols matrix backed by arena scratch.
// Release it with PutF32 when the value dies; the F32 header itself is a
// small heap object, only the payload is pooled.
func (a *Arena) GetF32(rows, cols int) *F32 {
	return &F32{rows: rows, cols: cols, Data: a.Get32(rows * cols)}
}

// PutF32 parks t's payload back in the arena. nil t is a no-op.
func (a *Arena) PutF32(t *F32) {
	if t == nil {
		return
	}
	a.Put32(t.Data)
	t.Data = nil
}

// Downcast rounds x to float32 (one rounding per element, round-to-nearest
// — Go's float64→float32 conversion). This is the checkpoint downcast: it
// runs once at load, so serving never re-rounds weights per request.
func Downcast(x *Tensor) *F32 {
	out := ZerosF32(x.rows, x.cols)
	for i, v := range x.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// DowncastSlice rounds src into a fresh float32 slice.
func DowncastSlice(src []float64) []float32 {
	out := make([]float32, len(src))
	for i, v := range src {
		out[i] = float32(v)
	}
	return out
}

// Upcast widens t back to a plain (no-grad) float64 Tensor — the serve
// boundary conversion from the f32 fast path to the float64 wire format.
func (t *F32) Upcast() *Tensor {
	out := Zeros(t.rows, t.cols)
	for i, v := range t.Data {
		out.Data[i] = float64(v)
	}
	return out
}

// ---------------------------------------------------------------------------
// ULP / relative-error divergence measurement.
//
// Bit-identity cannot hold across precisions, so the differential harness
// quantifies the gap instead: for each output it measures the ULP distance
// between the f32 result and the correctly-rounded f64 reference, and the
// relative error with a floored denominator. Near-zero references are
// excluded from the ULP statistic (catastrophic cancellation makes ULP
// distance meaningless at the bottom of the float range) but still count
// toward the absolute-error statistic.

// ULPDistance32 returns how many representable float32 values lie between
// a and b (0 when bit-equal; +0 and -0 are identified). NaN on either side
// returns MaxInt64.
func ULPDistance32(a, b float32) int64 {
	if a != a || b != b {
		return math.MaxInt64
	}
	d := orderedBits32(math.Float32bits(a)) - orderedBits32(math.Float32bits(b))
	if d < 0 {
		d = -d
	}
	return d
}

// orderedBits32 maps float32 bit patterns to integers so that the float
// ordering matches the integer ordering and adjacent floats map to
// adjacent integers.
func orderedBits32(b uint32) int64 {
	if b&0x8000_0000 != 0 {
		return -int64(b & 0x7fff_ffff)
	}
	return int64(b)
}

// Divergence summarises the elementwise gap between a float32 result and
// its float64 reference. Zero value = "nothing compared yet"; fold runs
// together with Merge.
type Divergence struct {
	// MaxULP is the worst ULP distance over elements whose reference
	// magnitude is at least the measurement floor.
	MaxULP int64 `json:"max_ulp"`
	// MaxRelErr is the worst |got−ref| / max(|ref|, floor).
	MaxRelErr float64 `json:"max_rel_err"`
	// MaxAbsErr is the worst |got−ref| over all elements.
	MaxAbsErr float64 `json:"max_abs_err"`
	// Compared counts elements folded in.
	Compared int `json:"compared"`
}

// MeasureDivergence compares got against the float64 reference ref.
// relFloor (> 0) is both the relative-error denominator floor and the
// magnitude below which elements are excluded from the ULP statistic.
func MeasureDivergence(got []float32, ref []float64, relFloor float64) Divergence {
	if len(got) != len(ref) {
		panic(fmt.Sprintf("tensor: divergence lengths %d/%d", len(got), len(ref)))
	}
	if relFloor <= 0 {
		panic("tensor: divergence floor must be positive")
	}
	var d Divergence
	for i, g := range got {
		r := ref[i]
		abs := math.Abs(float64(g) - r)
		if abs > d.MaxAbsErr {
			d.MaxAbsErr = abs
		}
		den := math.Abs(r)
		if den < relFloor {
			den = relFloor
		} else if u := ULPDistance32(g, float32(r)); u > d.MaxULP {
			d.MaxULP = u
		}
		if rel := abs / den; rel > d.MaxRelErr {
			d.MaxRelErr = rel
		}
		d.Compared++
	}
	return d
}

// Merge folds o into d (running worst-case over multiple outputs).
func (d *Divergence) Merge(o Divergence) {
	if o.MaxULP > d.MaxULP {
		d.MaxULP = o.MaxULP
	}
	if o.MaxRelErr > d.MaxRelErr {
		d.MaxRelErr = o.MaxRelErr
	}
	if o.MaxAbsErr > d.MaxAbsErr {
		d.MaxAbsErr = o.MaxAbsErr
	}
	d.Compared += o.Compared
}

// Within returns nil when the measured envelope fits the given bounds.
func (d Divergence) Within(maxULP int64, maxRelErr float64) error {
	if d.MaxULP > maxULP {
		return fmt.Errorf("tensor: divergence max ULP %d exceeds bound %d", d.MaxULP, maxULP)
	}
	if d.MaxRelErr > maxRelErr {
		return fmt.Errorf("tensor: divergence max rel err %.3g exceeds bound %.3g", d.MaxRelErr, maxRelErr)
	}
	return nil
}
