package tensor

import "testing"

// Fixture graph for the fused-attention tests: 5 nodes, 7 directed pairs,
// 4 edges (pairs 5 and 6 share edge 3, modelling MEGA's duplicated
// undirected edges). Node 3 receives nothing — its attention row must
// stay zero — and node 2 sends nothing.
var (
	attnRecv = []int32{0, 0, 1, 2, 2, 2, 4}
	attnSend = []int32{1, 3, 0, 1, 3, 4, 0}
	attnEdge = []int32{0, 1, 0, 2, 1, 3, 3}
)

func attnSegments() (byRecv, bySend, byEdge *Segments) {
	return BuildSegments(attnRecv, 5), BuildSegments(attnSend, 5), BuildSegments(attnEdge, 4)
}

func TestBuildSegments(t *testing.T) {
	seg := BuildSegments(attnRecv, 5)
	wantStart := []int32{0, 2, 3, 6, 6, 7}
	if len(seg.Start) != len(wantStart) {
		t.Fatalf("Start length %d, want %d", len(seg.Start), len(wantStart))
	}
	for i, w := range wantStart {
		if seg.Start[i] != w {
			t.Fatalf("Start[%d] = %d, want %d", i, seg.Start[i], w)
		}
	}
	// The sort must be stable: within each segment, pair indices ascend,
	// so a serial sweep over a segment reproduces the staged ops' global
	// ascending-pair accumulation order bit for bit.
	for k := 0; k < 5; k++ {
		for i := int(seg.Start[k]) + 1; i < int(seg.Start[k+1]); i++ {
			if seg.Order[i-1] >= seg.Order[i] {
				t.Fatalf("segment %d not ascending: Order[%d]=%d, Order[%d]=%d",
					k, i-1, seg.Order[i-1], i, seg.Order[i])
			}
		}
		if got := seg.Len(k); got != int(seg.Start[k+1]-seg.Start[k]) {
			t.Fatalf("Len(%d) = %d", k, got)
		}
	}
	for i, p := range seg.Order {
		if attnRecv[p] != func() int32 {
			for k := 0; k < 5; k++ {
				if int32(i) >= seg.Start[k] && int32(i) < seg.Start[k+1] {
					return int32(k)
				}
			}
			return -1
		}() {
			t.Fatalf("Order[%d]=%d landed in the wrong segment", i, p)
		}
	}
}

// TestFusedAttentionGradients central-difference-checks the hand-written
// backward passes. The models-package tests pin bit-exact equality against
// the staged pipeline; these pin that the shared chain is itself correct
// calculus, independent of any reference implementation.
func TestFusedAttentionGradients(t *testing.T) {
	byRecv, bySend, byEdge := attnSegments()
	cases := []gradCase{
		{name: "FusedSegmentAttention", tol: 1e-5,
			inputs: []*Tensor{randT(60, 5, 4), randT(61, 5, 4), randT(62, 5, 4), randT(63, 4, 4)},
			build: func(ins []*Tensor) *Tensor {
				att, edgeOut := FusedSegmentAttention(ins[0], ins[1], ins[2], ins[3],
					attnRecv, attnSend, attnEdge, byRecv, bySend, byEdge, 2, nil)
				// Tap both outputs so the edge-stream gradient folds into
				// the shared backward, as it does inside the GT layer.
				return Add(weightedSum(att), weightedSum(edgeOut))
			}},
		{name: "FusedSegmentAttention/noEdge", tol: 1e-5,
			inputs: []*Tensor{randT(64, 5, 4), randT(65, 5, 4), randT(66, 5, 4)},
			build: func(ins []*Tensor) *Tensor {
				att, _ := FusedSegmentAttention(ins[0], ins[1], ins[2], nil,
					attnRecv, attnSend, attnEdge, byRecv, bySend, nil, 2, nil)
				return weightedSum(att)
			}},
		{name: "FusedSegmentAttention/deadEdgeBranch", tol: 1e-5,
			// edgeOut is discarded (the GT's last layer drops its edge
			// stream); its nil gradient must read as zero, not crash.
			inputs: []*Tensor{randT(67, 5, 4), randT(68, 5, 4), randT(69, 5, 4), randT(70, 4, 4)},
			build: func(ins []*Tensor) *Tensor {
				att, _ := FusedSegmentAttention(ins[0], ins[1], ins[2], ins[3],
					attnRecv, attnSend, attnEdge, byRecv, bySend, byEdge, 2, nil)
				return weightedSum(att)
			}},
		{name: "FusedAdditiveAttention", tol: 1e-5,
			inputs: []*Tensor{randT(71, 5, 4), randT(72, 1, 4), randT(73, 1, 4)},
			build: func(ins []*Tensor) *Tensor {
				att := FusedAdditiveAttention(ins[0], ins[1], ins[2],
					attnRecv, attnSend, byRecv, bySend, 2, nil)
				return weightedSum(att)
			}},
		{name: "FusedAdditiveAttention/oneHead", tol: 1e-5,
			inputs: []*Tensor{randT(74, 5, 3), randT(75, 1, 3), randT(76, 1, 3)},
			build: func(ins []*Tensor) *Tensor {
				att := FusedAdditiveAttention(ins[0], ins[1], ins[2],
					attnRecv, attnSend, byRecv, bySend, 1, nil)
				return weightedSum(att)
			}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) { checkGradients(t, tc) })
	}
}

// TestFusedAttentionEmptyReceiver pins the zero-degree convention: a node
// with no incoming pairs contributes a zero attention row (no NaNs from
// the empty softmax) and receives no gradient through the kernel.
func TestFusedAttentionEmptyReceiver(t *testing.T) {
	byRecv, bySend, byEdge := attnSegments()
	q := randT(80, 5, 4).RequireGrad()
	k := randT(81, 5, 4).RequireGrad()
	v := randT(82, 5, 4).RequireGrad()
	ew := randT(83, 4, 4).RequireGrad()
	att, edgeOut := FusedSegmentAttention(q, k, v, ew,
		attnRecv, attnSend, attnEdge, byRecv, bySend, byEdge, 2, nil)
	for j := 0; j < 4; j++ {
		if got := att.Data[3*4+j]; got != 0 {
			t.Fatalf("receiver 3 has no pairs but att[3,%d] = %v", j, got)
		}
	}
	Add(weightedSum(att), weightedSum(edgeOut)).Backward()
	for i := range att.Data {
		if att.Data[i] != att.Data[i] { // NaN check
			t.Fatalf("NaN in attention output at %d", i)
		}
	}
	for _, in := range []*Tensor{q, k, v, ew} {
		if in.Grad == nil {
			t.Fatal("input missing gradient")
		}
		for i, g := range in.Grad {
			if g != g {
				t.Fatalf("NaN gradient at %d", i)
			}
		}
	}
}
