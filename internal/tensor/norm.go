package tensor

import (
	"math"

	"mega/internal/compute"
)

// Fused normalisation ops with hand-written backward passes. Both models
// use normalisation after every attention block (GatedGCN: batch norm;
// Graph Transformer: layer norm), so these are hot paths worth fusing.
//
// LayerNorm statistics live per row, so it splits rows; BatchNorm
// statistics live per column, so every stage of it splits columns. Either
// way each mean/variance/gradient accumulator is owned by exactly one
// chunk and accumulated in serial order — thread-count invariant.

const normEps = 1e-5

// LayerNorm normalises each row of x to zero mean and unit variance, then
// applies the affine transform gamma⊙x̂ + beta (gamma, beta of shape
// 1×cols).
func LayerNorm(x, gamma, beta *Tensor) *Tensor {
	if gamma.rows != 1 || gamma.cols != x.cols || beta.rows != 1 || beta.cols != x.cols {
		panic("tensor: layernorm affine shape mismatch")
	}
	n := float64(x.cols)
	cols := x.cols
	out := newResult(x.rows, x.cols, x, gamma, beta)
	xhat := make([]float64, len(x.Data))
	invStd := make([]float64, x.rows)
	compute.ParallelGrain(x.rows, rowGrain(cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := x.Data[i*cols : (i+1)*cols]
			mean := 0.0
			for _, v := range row {
				mean += v
			}
			mean /= n
			vari := 0.0
			for _, v := range row {
				d := v - mean
				vari += d * d
			}
			vari /= n
			is := 1 / math.Sqrt(vari+normEps)
			invStd[i] = is
			for j, v := range row {
				h := (v - mean) * is
				xhat[i*cols+j] = h
				out.Data[i*cols+j] = gamma.Data[j]*h + beta.Data[j]
			}
		}
	})
	if out.requiresGrad {
		out.backFn = func() {
			if gamma.requiresGrad || beta.requiresGrad {
				if gamma.requiresGrad {
					gamma.ensureGrad()
				}
				if beta.requiresGrad {
					beta.ensureGrad()
				}
				// gamma/beta gradients sum over rows: column split so each
				// chunk owns disjoint accumulators.
				compute.ParallelGrain(cols, workGrain(x.rows), func(jlo, jhi int) {
					for i := 0; i < x.rows; i++ {
						for j := jlo; j < jhi; j++ {
							g := out.Grad[i*cols+j]
							if gamma.requiresGrad {
								gamma.Grad[j] += g * xhat[i*cols+j]
							}
							if beta.requiresGrad {
								beta.Grad[j] += g
							}
						}
					}
				})
			}
			if x.requiresGrad {
				x.ensureGrad()
				compute.ParallelGrain(x.rows, rowGrain(cols), func(lo, hi int) {
					for i := lo; i < hi; i++ {
						// dxhat = dOut ⊙ gamma; standard layernorm backward:
						// dx = invStd/n * (n·dxhat − Σdxhat − x̂·Σ(dxhat⊙x̂))
						var sumD, sumDX float64
						for j := 0; j < cols; j++ {
							d := out.Grad[i*cols+j] * gamma.Data[j]
							sumD += d
							sumDX += d * xhat[i*cols+j]
						}
						for j := 0; j < cols; j++ {
							d := out.Grad[i*cols+j] * gamma.Data[j]
							x.Grad[i*cols+j] += invStd[i] / n *
								(n*d - sumD - xhat[i*cols+j]*sumDX)
						}
					}
				})
			}
		}
	}
	return out
}

// BatchNorm normalises each column of x over the batch (rows) to zero mean
// and unit variance, then applies gamma⊙x̂ + beta. This is training-mode
// batch norm; the models run full-batch statistics every step, which is how
// the reference benchmark configures GatedGCN.
func BatchNorm(x, gamma, beta *Tensor) *Tensor {
	if gamma.rows != 1 || gamma.cols != x.cols || beta.rows != 1 || beta.cols != x.cols {
		panic("tensor: batchnorm affine shape mismatch")
	}
	m := float64(x.rows)
	cols := x.cols
	out := newResult(x.rows, x.cols, x, gamma, beta)
	xhat := make([]float64, len(x.Data))
	invStd := make([]float64, x.cols)
	means := make([]float64, x.cols)
	colGrain := workGrain(x.rows)
	compute.ParallelGrain(cols, colGrain, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			mean := 0.0
			for i := 0; i < x.rows; i++ {
				mean += x.Data[i*cols+j]
			}
			mean /= m
			means[j] = mean
			vari := 0.0
			for i := 0; i < x.rows; i++ {
				d := x.Data[i*cols+j] - mean
				vari += d * d
			}
			vari /= m
			invStd[j] = 1 / math.Sqrt(vari+normEps)
		}
	})
	compute.ParallelGrain(x.rows, rowGrain(cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < cols; j++ {
				h := (x.Data[i*cols+j] - means[j]) * invStd[j]
				xhat[i*cols+j] = h
				out.Data[i*cols+j] = gamma.Data[j]*h + beta.Data[j]
			}
		}
	})
	if out.requiresGrad {
		out.backFn = func() {
			if gamma.requiresGrad || beta.requiresGrad {
				if gamma.requiresGrad {
					gamma.ensureGrad()
				}
				if beta.requiresGrad {
					beta.ensureGrad()
				}
				compute.ParallelGrain(cols, colGrain, func(jlo, jhi int) {
					for i := 0; i < x.rows; i++ {
						for j := jlo; j < jhi; j++ {
							g := out.Grad[i*cols+j]
							if gamma.requiresGrad {
								gamma.Grad[j] += g * xhat[i*cols+j]
							}
							if beta.requiresGrad {
								beta.Grad[j] += g
							}
						}
					}
				})
			}
			if x.requiresGrad {
				x.ensureGrad()
				compute.ParallelGrain(cols, colGrain, func(jlo, jhi int) {
					for j := jlo; j < jhi; j++ {
						var sumD, sumDX float64
						for i := 0; i < x.rows; i++ {
							d := out.Grad[i*cols+j] * gamma.Data[j]
							sumD += d
							sumDX += d * xhat[i*cols+j]
						}
						for i := 0; i < x.rows; i++ {
							d := out.Grad[i*cols+j] * gamma.Data[j]
							x.Grad[i*cols+j] += invStd[j] / m *
								(m*d - sumD - xhat[i*cols+j]*sumDX)
						}
					}
				})
			}
		}
	}
	return out
}
