package tensor

import "math"

// Fused normalisation ops with hand-written backward passes. Both models
// use normalisation after every attention block (GatedGCN: batch norm;
// Graph Transformer: layer norm), so these are hot paths worth fusing.

const normEps = 1e-5

// LayerNorm normalises each row of x to zero mean and unit variance, then
// applies the affine transform gamma⊙x̂ + beta (gamma, beta of shape
// 1×cols).
func LayerNorm(x, gamma, beta *Tensor) *Tensor {
	if gamma.rows != 1 || gamma.cols != x.cols || beta.rows != 1 || beta.cols != x.cols {
		panic("tensor: layernorm affine shape mismatch")
	}
	n := float64(x.cols)
	out := newResult(x.rows, x.cols, x, gamma, beta)
	xhat := make([]float64, len(x.Data))
	invStd := make([]float64, x.rows)
	for i := 0; i < x.rows; i++ {
		row := x.Data[i*x.cols : (i+1)*x.cols]
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= n
		vari := 0.0
		for _, v := range row {
			d := v - mean
			vari += d * d
		}
		vari /= n
		is := 1 / math.Sqrt(vari+normEps)
		invStd[i] = is
		for j, v := range row {
			h := (v - mean) * is
			xhat[i*x.cols+j] = h
			out.Data[i*x.cols+j] = gamma.Data[j]*h + beta.Data[j]
		}
	}
	if out.requiresGrad {
		out.backFn = func() {
			if gamma.requiresGrad {
				gamma.ensureGrad()
				for i := 0; i < x.rows; i++ {
					for j := 0; j < x.cols; j++ {
						gamma.Grad[j] += out.Grad[i*x.cols+j] * xhat[i*x.cols+j]
					}
				}
			}
			if beta.requiresGrad {
				beta.ensureGrad()
				for i := 0; i < x.rows; i++ {
					for j := 0; j < x.cols; j++ {
						beta.Grad[j] += out.Grad[i*x.cols+j]
					}
				}
			}
			if x.requiresGrad {
				x.ensureGrad()
				for i := 0; i < x.rows; i++ {
					// dxhat = dOut ⊙ gamma; standard layernorm backward:
					// dx = invStd/n * (n·dxhat − Σdxhat − x̂·Σ(dxhat⊙x̂))
					var sumD, sumDX float64
					for j := 0; j < x.cols; j++ {
						d := out.Grad[i*x.cols+j] * gamma.Data[j]
						sumD += d
						sumDX += d * xhat[i*x.cols+j]
					}
					for j := 0; j < x.cols; j++ {
						d := out.Grad[i*x.cols+j] * gamma.Data[j]
						x.Grad[i*x.cols+j] += invStd[i] / n *
							(n*d - sumD - xhat[i*x.cols+j]*sumDX)
					}
				}
			}
		}
	}
	return out
}

// BatchNorm normalises each column of x over the batch (rows) to zero mean
// and unit variance, then applies gamma⊙x̂ + beta. This is training-mode
// batch norm; the models run full-batch statistics every step, which is how
// the reference benchmark configures GatedGCN.
func BatchNorm(x, gamma, beta *Tensor) *Tensor {
	if gamma.rows != 1 || gamma.cols != x.cols || beta.rows != 1 || beta.cols != x.cols {
		panic("tensor: batchnorm affine shape mismatch")
	}
	m := float64(x.rows)
	out := newResult(x.rows, x.cols, x, gamma, beta)
	xhat := make([]float64, len(x.Data))
	invStd := make([]float64, x.cols)
	means := make([]float64, x.cols)
	for j := 0; j < x.cols; j++ {
		mean := 0.0
		for i := 0; i < x.rows; i++ {
			mean += x.Data[i*x.cols+j]
		}
		mean /= m
		means[j] = mean
		vari := 0.0
		for i := 0; i < x.rows; i++ {
			d := x.Data[i*x.cols+j] - mean
			vari += d * d
		}
		vari /= m
		invStd[j] = 1 / math.Sqrt(vari+normEps)
	}
	for i := 0; i < x.rows; i++ {
		for j := 0; j < x.cols; j++ {
			h := (x.Data[i*x.cols+j] - means[j]) * invStd[j]
			xhat[i*x.cols+j] = h
			out.Data[i*x.cols+j] = gamma.Data[j]*h + beta.Data[j]
		}
	}
	if out.requiresGrad {
		out.backFn = func() {
			if gamma.requiresGrad {
				gamma.ensureGrad()
				for i := 0; i < x.rows; i++ {
					for j := 0; j < x.cols; j++ {
						gamma.Grad[j] += out.Grad[i*x.cols+j] * xhat[i*x.cols+j]
					}
				}
			}
			if beta.requiresGrad {
				beta.ensureGrad()
				for i := 0; i < x.rows; i++ {
					for j := 0; j < x.cols; j++ {
						beta.Grad[j] += out.Grad[i*x.cols+j]
					}
				}
			}
			if x.requiresGrad {
				x.ensureGrad()
				for j := 0; j < x.cols; j++ {
					var sumD, sumDX float64
					for i := 0; i < x.rows; i++ {
						d := out.Grad[i*x.cols+j] * gamma.Data[j]
						sumD += d
						sumDX += d * xhat[i*x.cols+j]
					}
					for i := 0; i < x.rows; i++ {
						d := out.Grad[i*x.cols+j] * gamma.Data[j]
						x.Grad[i*x.cols+j] += invStd[j] / m *
							(m*d - sumD - xhat[i*x.cols+j]*sumDX)
					}
				}
			}
		}
	}
	return out
}
