package tensor

import (
	"fmt"
	"math"

	"mega/internal/compute"
)

// Loss functions, each returning a 1×1 tensor suitable for Backward.

// MSELoss returns mean((pred − target)²) over all elements. target carries
// no gradient.
func MSELoss(pred, target *Tensor) *Tensor {
	assertSameShape("mse", pred, target)
	d := Sub(pred, target)
	return Mean(Mul(d, d))
}

// MAELoss returns mean(|pred − target|), the metric the ZINC/AQSOL
// regression benchmarks report. The reduction uses compute.ReduceSum's
// fixed partition, so the value is thread-count invariant.
func MAELoss(pred, target *Tensor) *Tensor {
	assertSameShape("mae", pred, target)
	out := newResult(1, 1, pred)
	s := compute.ReduceSum(len(pred.Data), func(lo, hi int) float64 {
		t := 0.0
		for i := lo; i < hi; i++ {
			t += math.Abs(pred.Data[i] - target.Data[i])
		}
		return t
	})
	out.Data[0] = s / float64(len(pred.Data))
	if out.requiresGrad {
		out.backFn = func() {
			pred.ensureGrad()
			g := out.Grad[0] / float64(len(pred.Data))
			compute.ParallelGrain(len(pred.Data), elemGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					switch {
					case pred.Data[i] > target.Data[i]:
						pred.Grad[i] += g
					case pred.Data[i] < target.Data[i]:
						pred.Grad[i] -= g
					}
				}
			})
		}
	}
	return out
}

// CrossEntropyLoss returns the mean softmax cross-entropy of logits
// (rows×classes) against integer labels, fused for numerical stability.
// Rows are processed in parallel into a per-row loss scratch that is then
// summed serially in row order, so the total matches the serial kernel
// bit for bit.
func CrossEntropyLoss(logits *Tensor, labels []int) *Tensor {
	if len(labels) != logits.rows {
		panic(fmt.Sprintf("tensor: %d labels for %d rows", len(labels), logits.rows))
	}
	cols := logits.cols
	for i, l := range labels {
		if l < 0 || l >= cols {
			panic(fmt.Sprintf("tensor: label %d (row %d) out of %d classes", l, i, cols))
		}
	}
	out := newResult(1, 1, logits)
	probs := make([]float64, len(logits.Data))
	rowLoss := make([]float64, logits.rows)
	compute.ParallelGrain(logits.rows, rowGrain(cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := logits.Data[i*cols : (i+1)*cols]
			mx := math.Inf(-1)
			for _, v := range row {
				if v > mx {
					mx = v
				}
			}
			sum := 0.0
			for j, v := range row {
				e := math.Exp(v - mx)
				probs[i*cols+j] = e
				sum += e
			}
			for j := range row {
				probs[i*cols+j] /= sum
			}
			rowLoss[i] = -math.Log(probs[i*cols+labels[i]] + 1e-12)
		}
	})
	total := 0.0
	for _, l := range rowLoss {
		total += l
	}
	out.Data[0] = total / float64(logits.rows)
	if out.requiresGrad {
		out.backFn = func() {
			logits.ensureGrad()
			g := out.Grad[0] / float64(logits.rows)
			compute.ParallelGrain(logits.rows, rowGrain(cols), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					for j := 0; j < cols; j++ {
						p := probs[i*cols+j]
						if j == labels[i] {
							p -= 1
						}
						logits.Grad[i*cols+j] += g * p
					}
				}
			})
		}
	}
	return out
}

// Accuracy returns the fraction of rows whose argmax matches the label.
// Pure metric: no gradient.
func Accuracy(logits *Tensor, labels []int) float64 {
	if logits.rows == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < logits.rows; i++ {
		row := logits.Data[i*logits.cols : (i+1)*logits.cols]
		best, bestV := 0, math.Inf(-1)
		for j, v := range row {
			if v > bestV {
				best, bestV = j, v
			}
		}
		if best == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(logits.rows)
}
