package tensor

import (
	"fmt"
	"math"
)

// Loss functions, each returning a 1×1 tensor suitable for Backward.

// MSELoss returns mean((pred − target)²) over all elements. target carries
// no gradient.
func MSELoss(pred, target *Tensor) *Tensor {
	assertSameShape("mse", pred, target)
	d := Sub(pred, target)
	return Mean(Mul(d, d))
}

// MAELoss returns mean(|pred − target|), the metric the ZINC/AQSOL
// regression benchmarks report.
func MAELoss(pred, target *Tensor) *Tensor {
	assertSameShape("mae", pred, target)
	out := newResult(1, 1, pred)
	s := 0.0
	for i := range pred.Data {
		s += math.Abs(pred.Data[i] - target.Data[i])
	}
	out.Data[0] = s / float64(len(pred.Data))
	if out.requiresGrad {
		out.backFn = func() {
			pred.ensureGrad()
			g := out.Grad[0] / float64(len(pred.Data))
			for i := range pred.Data {
				switch {
				case pred.Data[i] > target.Data[i]:
					pred.Grad[i] += g
				case pred.Data[i] < target.Data[i]:
					pred.Grad[i] -= g
				}
			}
		}
	}
	return out
}

// CrossEntropyLoss returns the mean softmax cross-entropy of logits
// (rows×classes) against integer labels, fused for numerical stability.
func CrossEntropyLoss(logits *Tensor, labels []int) *Tensor {
	if len(labels) != logits.rows {
		panic(fmt.Sprintf("tensor: %d labels for %d rows", len(labels), logits.rows))
	}
	out := newResult(1, 1, logits)
	probs := make([]float64, len(logits.Data))
	total := 0.0
	for i := 0; i < logits.rows; i++ {
		if labels[i] < 0 || labels[i] >= logits.cols {
			panic(fmt.Sprintf("tensor: label %d out of %d classes", labels[i], logits.cols))
		}
		row := logits.Data[i*logits.cols : (i+1)*logits.cols]
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - mx)
			probs[i*logits.cols+j] = e
			sum += e
		}
		for j := range row {
			probs[i*logits.cols+j] /= sum
		}
		total += -math.Log(probs[i*logits.cols+labels[i]] + 1e-12)
	}
	out.Data[0] = total / float64(logits.rows)
	if out.requiresGrad {
		out.backFn = func() {
			logits.ensureGrad()
			g := out.Grad[0] / float64(logits.rows)
			for i := 0; i < logits.rows; i++ {
				for j := 0; j < logits.cols; j++ {
					p := probs[i*logits.cols+j]
					if j == labels[i] {
						p -= 1
					}
					logits.Grad[i*logits.cols+j] += g * p
				}
			}
		}
	}
	return out
}

// Accuracy returns the fraction of rows whose argmax matches the label.
// Pure metric: no gradient.
func Accuracy(logits *Tensor, labels []int) float64 {
	if logits.rows == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < logits.rows; i++ {
		row := logits.Data[i*logits.cols : (i+1)*logits.cols]
		best, bestV := 0, math.Inf(-1)
		for j, v := range row {
			if v > bestV {
				best, bestV = j, v
			}
		}
		if best == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(logits.rows)
}
