package tensor

import (
	"fmt"
	"math"

	"mega/internal/compute"
)

// Additional ops used by the attention formulations.

// AddScalar returns a + c elementwise for a constant c.
func AddScalar(a *Tensor, c float64) *Tensor {
	return unary(a,
		func(x float64) float64 { return x + c },
		func(_, _ float64) float64 { return 1 })
}

// Reciprocal returns 1/a elementwise.
func Reciprocal(a *Tensor) *Tensor {
	return unary(a,
		func(x float64) float64 { return 1 / x },
		func(_, y float64) float64 { return -y * y })
}

// Exp returns e^a elementwise.
func Exp(a *Tensor) *Tensor {
	return unary(a, math.Exp, func(_, y float64) float64 { return y })
}

// Div returns a / b elementwise (same shape).
func Div(a, b *Tensor) *Tensor {
	assertSameShape("div", a, b)
	return Mul(a, Reciprocal(b))
}

// RowSum returns the per-row sum as an m×1 tensor. Row-parallel: each
// row's sum stays a single serial accumulation.
func RowSum(a *Tensor) *Tensor {
	out := newResult(a.rows, 1, a)
	cols := a.cols
	compute.ParallelGrain(a.rows, rowGrain(cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := 0.0
			for j := 0; j < cols; j++ {
				s += a.Data[i*cols+j]
			}
			out.Data[i] = s
		}
	})
	if out.requiresGrad {
		out.backFn = func() {
			a.ensureGrad()
			compute.ParallelGrain(a.rows, rowGrain(cols), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					g := out.Grad[i]
					for j := 0; j < cols; j++ {
						a.Grad[i*cols+j] += g
					}
				}
			})
		}
	}
	return out
}

// RowDot returns the per-row dot product of a and b as an m×1 tensor:
// out[i] = Σ_j a[i,j]·b[i,j]. This is the q·k score of scaled dot-product
// attention.
func RowDot(a, b *Tensor) *Tensor {
	assertSameShape("rowdot", a, b)
	return RowSum(Mul(a, b))
}

// NarrowCols returns columns [start, start+n) of x; gradients add back.
func NarrowCols(x *Tensor, start, n int) *Tensor {
	if start < 0 || n < 0 || start+n > x.cols {
		panic(fmt.Sprintf("tensor: narrowcols [%d,%d) of %d cols", start, start+n, x.cols))
	}
	out := newResult(x.rows, n, x)
	compute.ParallelGrain(x.rows, rowGrain(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(out.Data[i*n:(i+1)*n], x.Data[i*x.cols+start:i*x.cols+start+n])
		}
	})
	if out.requiresGrad {
		out.backFn = func() {
			x.ensureGrad()
			compute.ParallelGrain(x.rows, rowGrain(n), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					for j := 0; j < n; j++ {
						x.Grad[i*x.cols+start+j] += out.Grad[i*n+j]
					}
				}
			})
		}
	}
	return out
}

// MulMask returns a with masked-out elements zeroed; mask is a constant.
func MulMask(a *Tensor, mask []bool) *Tensor {
	if len(mask) != len(a.Data) {
		panic(fmt.Sprintf("tensor: mask len %d != %d", len(mask), len(a.Data)))
	}
	out := newResult(a.rows, a.cols, a)
	compute.ParallelGrain(len(out.Data), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if mask[i] {
				out.Data[i] = a.Data[i]
			}
		}
	})
	if out.requiresGrad {
		out.backFn = func() {
			a.ensureGrad()
			compute.ParallelGrain(len(out.Grad), elemGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if mask[i] {
						a.Grad[i] += out.Grad[i]
					}
				}
			})
		}
	}
	return out
}
