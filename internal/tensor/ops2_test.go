package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestOps2Values(t *testing.T) {
	a := New(2, 2, []float64{1, 2, 4, 8})
	if out := AddScalar(a, 3); out.At(1, 1) != 11 {
		t.Errorf("AddScalar = %v", out.Data)
	}
	if out := Reciprocal(a); out.At(1, 0) != 0.25 {
		t.Errorf("Reciprocal = %v", out.Data)
	}
	if out := Exp(Zeros(1, 2)); out.At(0, 0) != 1 {
		t.Errorf("Exp(0) = %v", out.Data)
	}
	b := New(2, 2, []float64{2, 2, 2, 2})
	if out := Div(a, b); out.At(1, 1) != 4 {
		t.Errorf("Div = %v", out.Data)
	}
	if out := RowSum(a); out.At(0, 0) != 3 || out.At(1, 0) != 12 {
		t.Errorf("RowSum = %v", out.Data)
	}
	if out := RowDot(a, b); out.At(0, 0) != 6 || out.At(1, 0) != 24 {
		t.Errorf("RowDot = %v", out.Data)
	}
	x := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	nc := NarrowCols(x, 1, 2)
	if nc.At(0, 0) != 2 || nc.At(1, 1) != 6 {
		t.Errorf("NarrowCols = %v", nc.Data)
	}
	m := MulMask(x, []bool{true, false, true, false, true, false})
	if m.At(0, 1) != 0 || m.At(0, 0) != 1 || m.At(1, 1) != 5 {
		t.Errorf("MulMask = %v", m.Data)
	}
}

func TestOps2GradChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := randTensor(rng, 3, 4)
	// Keep away from zero for reciprocal stability.
	for i := range a.Data {
		if math.Abs(a.Data[i]) < 0.3 {
			a.Data[i] = 0.7
		}
	}
	b := randTensor(rng, 3, 4)
	for i := range b.Data {
		if math.Abs(b.Data[i]) < 0.3 {
			b.Data[i] = -0.8
		}
	}
	w := randTensor(rng, 3, 4)
	gradCheck(t, "addscalar", []*Tensor{a}, func() *Tensor { return Sum(Mul(AddScalar(a, 1.5), w)) })
	gradCheck(t, "reciprocal", []*Tensor{a}, func() *Tensor { return Sum(Mul(Reciprocal(a), w)) })
	gradCheck(t, "exp", []*Tensor{a}, func() *Tensor { return Sum(Mul(Exp(a), w)) })
	gradCheck(t, "div", []*Tensor{a, b}, func() *Tensor { return Sum(Mul(Div(a, b), w)) })

	w1 := randTensor(rng, 3, 1)
	gradCheck(t, "rowsum", []*Tensor{a}, func() *Tensor { return Sum(Mul(RowSum(a), w1)) })
	gradCheck(t, "rowdot", []*Tensor{a, b}, func() *Tensor { return Sum(Mul(RowDot(a, b), w1)) })

	w2 := randTensor(rng, 3, 2)
	gradCheck(t, "narrowcols", []*Tensor{a}, func() *Tensor { return Sum(Mul(NarrowCols(a, 1, 2), w2)) })

	mask := []bool{true, false, true, true, false, true, true, true, false, true, false, true}
	gradCheck(t, "mulmask", []*Tensor{a}, func() *Tensor { return Sum(Mul(MulMask(a, mask), w)) })
}

func TestNarrowColsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range NarrowCols should panic")
		}
	}()
	NarrowCols(Zeros(2, 3), 2, 2)
}
