package tensor

import (
	"fmt"
	"math"

	"mega/internal/compute"
)

// FusedAdditiveAttention is the GAT-style counterpart of
// FusedSegmentAttention: per pair p with receiver r and sender s,
//
//	score_p^a = LeakyReLU( a_l^a · w_r + a_r^a · w_s )   (slope 0.2)
//
// softmax-normalised per receiver, aggregating alpha·w_s per head. wh is
// node-major [R,d]; aL/aR are the 1×d attention vectors (one dk block per
// head). The node subsumes the staged path's broadcast row products,
// per-pair gathers, row sums, leaky activation, softmax, and aggregation,
// and its backward replicates that chain's accumulation orders exactly —
// including the order the three staged consumers of wh (the aR product,
// the aL product, then the value gather) accumulate into wh.Grad.
func FusedAdditiveAttention(wh, aL, aR *Tensor, recv, send []int32,
	byRecv, bySend *Segments, heads int, arena *Arena) *Tensor {

	rows, d := wh.rows, wh.cols
	if heads < 1 || d%heads != 0 {
		panic(fmt.Sprintf("tensor: fusedattn %d cols with %d heads", d, heads))
	}
	if aL.rows != 1 || aL.cols != d || aR.rows != 1 || aR.cols != d {
		panic(fmt.Sprintf("tensor: fusedattn attention vectors %dx%d/%dx%d for dim %d",
			aL.rows, aL.cols, aR.rows, aR.cols, d))
	}
	P := len(recv)
	if len(send) != P {
		panic(fmt.Sprintf("tensor: fusedattn index lengths %d/%d", len(recv), len(send)))
	}
	if byRecv == nil || len(byRecv.Start) != rows+1 || bySend == nil || len(bySend.Start) != rows+1 {
		panic("tensor: fusedattn missing/mis-sized recv/send segments")
	}
	for p := 0; p < P; p++ {
		if r := recv[p]; r < 0 || int(r) >= rows {
			panic(fmt.Sprintf("tensor: fusedattn recv %d out of %d rows", r, rows))
		}
		if s := send[p]; s < 0 || int(s) >= rows {
			panic(fmt.Sprintf("tensor: fusedattn send %d out of %d rows", s, rows))
		}
	}

	dk := d / heads
	att := newResult(rows, d, wh, aL, aR)

	// Per-row score halves rs[r,a] = Σ_j ascending wh[r,aj]·a[aj] — the
	// same products and the same j-order the staged RowSum over the
	// broadcast Mul accumulates per pair, hoisted node-major.
	rsL := arena.Get(rows * heads)
	rsR := arena.Get(rows * heads)
	rowG := workGrain(d)
	compute.ParallelGrain(rows, rowG, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for a := 0; a < heads; a++ {
				base := a * dk
				sl, sr := 0.0, 0.0
				for j := base; j < base+dk; j++ {
					sl += wh.Data[i*d+j] * aL.Data[j]
					sr += wh.Data[i*d+j] * aR.Data[j]
				}
				rsL[i*heads+a] = sl
				rsR[i*heads+a] = sr
			}
		}
	})

	// Softmax + aggregation, receiver-segment-parallel, ascending pair
	// order within each segment (the staged ScatterAddRows order).
	maxBuf := arena.Get(rows * heads)
	denomBuf := arena.Get(rows * heads)
	segGrain := workGrain(2 * d * (P/rows + 1))
	compute.ParallelGrain(rows, segGrain, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			seg := byRecv.Order[byRecv.Start[r]:byRecv.Start[r+1]]
			if len(seg) == 0 {
				continue
			}
			for a := 0; a < heads; a++ {
				mx := math.Inf(-1)
				for _, p := range seg {
					if sv := gatScore(rsL[r*heads+a] + rsR[int(send[p])*heads+a]); sv > mx {
						mx = sv
					}
				}
				maxBuf[r*heads+a] = mx
				denom := 0.0
				for _, p := range seg {
					denom += math.Exp(gatScore(rsL[r*heads+a]+rsR[int(send[p])*heads+a]) - mx)
				}
				denomBuf[r*heads+a] = denom
				recip := 1 / (denom + 1e-9)
				base := a * dk
				for _, p := range seg {
					ex := math.Exp(gatScore(rsL[r*heads+a]+rsR[int(send[p])*heads+a]) - mx)
					alpha := ex * recip
					s := int(send[p]) * d
					for j := base; j < base+dk; j++ {
						att.Data[r*d+j] += wh.Data[s+j] * alpha
					}
				}
			}
		}
	})

	if !att.requiresGrad {
		arena.Put(rsL)
		arena.Put(rsR)
		arena.Put(maxBuf)
		arena.Put(denomBuf)
		return att
	}

	att.backFn = func() {
		fusedAdditiveBackward(wh, aL, aR, att, recv, send, byRecv, bySend,
			heads, dk, rsL, rsR, maxBuf, denomBuf, arena)
		arena.Put(rsL)
		arena.Put(rsR)
		arena.Put(maxBuf)
		arena.Put(denomBuf)
	}
	return att
}

// gatScore is LeakyReLU with slope 0.2, computed with the exact staged
// decomposition relu + (x-relu)·0.2 (two ReLU nodes in the staged graph;
// the formula reproduces their combined value bit-for-bit).
func gatScore(x float64) float64 {
	relu := math.Max(0, x)
	return relu + (x-relu)*0.2
}

// fusedAdditiveBackward recomputes the per-pair exps from the saved
// node-major buffers and accumulates dWh/dAL/dAR in the staged orders.
func fusedAdditiveBackward(wh, aL, aR, att *Tensor, recv, send []int32,
	byRecv, bySend *Segments, heads, dk int,
	rsL, rsR, maxBuf, denomBuf []float64, arena *Arena) {

	if att.Grad == nil {
		return
	}
	d := wh.cols
	rows := wh.rows
	P := len(recv)
	dAtt := att.Grad

	// Pass 0, pair-parallel: ex and the alpha-gradient Σ_j dAtt·wh_s.
	exBuf := arena.Get(P * heads)
	gBuf := arena.Get(P * heads)
	compute.ParallelGrain(P, workGrain(d), func(lo, hi int) {
		for p := lo; p < hi; p++ {
			r, s := int(recv[p]), int(send[p])
			for a := 0; a < heads; a++ {
				sc := gatScore(rsL[r*heads+a] + rsR[s*heads+a])
				exBuf[p*heads+a] = math.Exp(sc - maxBuf[r*heads+a])
				base := a * dk
				g := 0.0
				for j := base; j < base+dk; j++ {
					g += dAtt[r*d+j] * wh.Data[s*d+j]
				}
				gBuf[p*heads+a] = g
			}
		}
	})

	// Pass 1, receiver-segment-parallel: softmax backward to the score
	// gradient, gated through the leaky slope to dx (overwriting gBuf),
	// plus the receiver-side sum dsL[r,a] = Σ ascending dx.
	dsL := arena.Get(rows * heads)
	segGrain := workGrain(2 * d * (P/rows + 1))
	compute.ParallelGrain(rows, segGrain, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			seg := byRecv.Order[byRecv.Start[r]:byRecv.Start[r+1]]
			if len(seg) == 0 {
				continue
			}
			for a := 0; a < heads; a++ {
				recip := 1 / (denomBuf[r*heads+a] + 1e-9)
				dDenom := 0.0
				for _, p := range seg {
					rg := gBuf[int(p)*heads+a] * exBuf[int(p)*heads+a]
					dDenom += rg * ((-recip) * recip)
				}
				sum := 0.0
				for _, p := range seg {
					pi := int(p)
					exg := gBuf[pi*heads+a]*recip + dDenom
					sg := exg * exBuf[pi*heads+a]
					dx := sg
					if rsL[r*heads+a]+rsR[int(send[pi])*heads+a] <= 0 {
						dx = sg * 0.2
					}
					gBuf[pi*heads+a] = dx
					sum += dx
				}
				dsL[r*heads+a] = sum
			}
		}
	})

	// Pass 2, sender-segment-parallel: dWh. The staged path accumulates
	// three terms per element in reverse-topological order — the aR
	// product, the aL product, then the value-gather terms in ascending
	// pair order — so replicate exactly that sequence per sender row.
	if wh.requiresGrad {
		wh.ensureGrad()
	}
	dsR := arena.Get(rows * heads)
	compute.ParallelGrain(rows, segGrain, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			seg := bySend.Order[bySend.Start[s]:bySend.Start[s+1]]
			for a := 0; a < heads; a++ {
				sum := 0.0
				for _, p := range seg {
					sum += gBuf[int(p)*heads+a]
				}
				dsR[s*heads+a] = sum
			}
			if wh.Grad == nil {
				continue
			}
			for a := 0; a < heads; a++ {
				base := a * dk
				for j := base; j < base+dk; j++ {
					wh.Grad[s*d+j] += dsR[s*heads+a] * aR.Data[j]
					wh.Grad[s*d+j] += dsL[s*heads+a] * aL.Data[j]
				}
			}
			for _, p := range seg {
				pi := int(p)
				r := int(recv[pi])
				for a := 0; a < heads; a++ {
					alpha := exBuf[pi*heads+a] * (1 / (denomBuf[r*heads+a] + 1e-9))
					base := a * dk
					for j := base; j < base+dk; j++ {
						wh.Grad[s*d+j] += dAtt[r*d+j] * alpha
					}
				}
			}
		}
	})

	// Pass 3, column-striped: dAL/dAR accumulate over rows in ascending
	// order — the staged broadcast-gather backward order.
	if aL.requiresGrad {
		aL.ensureGrad()
		compute.ParallelGrain(d, workGrain(rows), func(jlo, jhi int) {
			for i := 0; i < rows; i++ {
				for j := jlo; j < jhi; j++ {
					aL.Grad[j] += dsL[i*heads+j/dk] * wh.Data[i*d+j]
				}
			}
		})
	}
	if aR.requiresGrad {
		aR.ensureGrad()
		compute.ParallelGrain(d, workGrain(rows), func(jlo, jhi int) {
			for i := 0; i < rows; i++ {
				for j := jlo; j < jhi; j++ {
					aR.Grad[j] += dsR[i*heads+j/dk] * wh.Data[i*d+j]
				}
			}
		})
	}

	arena.Put(exBuf)
	arena.Put(gBuf)
	arena.Put(dsL)
	arena.Put(dsR)
}
