package tensor

import (
	"fmt"
	"math"

	"mega/internal/compute"
)

// MatMul returns a·b for a [m×k] and b [k×n]. The kernel is cache-blocked
// over the shared dimension and row-parallel across the worker pool; each
// output row is owned by one chunk and accumulated in ascending-k order,
// so the result is bit-identical to the serial kernel at any thread count.
func MatMul(a, b *Tensor) *Tensor {
	if a.cols != b.rows {
		panic(fmt.Sprintf("tensor: matmul %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	m, k, n := a.rows, a.cols, b.cols
	out := newResult(m, n, a, b)
	matmulForward(out.Data, a.Data, b.Data, m, k, n)
	if out.requiresGrad {
		out.backFn = func() {
			if a.requiresGrad {
				a.ensureGrad()
				matmulGradA(a.Grad, out.Grad, b.Data, m, k, n)
			}
			if b.requiresGrad {
				b.ensureGrad()
				matmulGradB(b.Grad, a.Data, out.Grad, m, k, n)
			}
		}
	}
	return out
}

// matmulForward accumulates dst += a·b. Row-parallel over m; the k loop is
// tiled so the active matmulKBlock×n block of b stays cache-resident while
// a chunk of rows sweeps it. Per output element the adds happen in
// ascending-p order regardless of tiling or thread count.
func matmulForward(dst, a, b []float64, m, k, n int) {
	compute.ParallelGrain(m, workGrain(k*n), func(lo, hi int) {
		for kb := 0; kb < k; kb += matmulKBlock {
			kend := kb + matmulKBlock
			if kend > k {
				kend = k
			}
			for i := lo; i < hi; i++ {
				arow := a[i*k : (i+1)*k]
				orow := dst[i*n : (i+1)*n]
				for p := kb; p < kend; p++ {
					av := arow[p]
					if av == 0 {
						continue
					}
					brow := b[p*n : (p+1)*n]
					for j := range orow {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	})
}

// matmulGradA accumulates dA += dOut·Bᵀ, row-parallel over m (each chunk
// owns disjoint rows of dA).
func matmulGradA(da, dout, b []float64, m, k, n int) {
	compute.ParallelGrain(m, workGrain(k*n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			grow := dout[i*n : (i+1)*n]
			agrow := da[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				brow := b[p*n : (p+1)*n]
				s := 0.0
				for j := range grow {
					s += grow[j] * brow[j]
				}
				agrow[p] += s
			}
		}
	})
}

// matmulGradB accumulates dB += Aᵀ·dOut. dB rows are hit by every i, so
// the split is over columns: each chunk owns a disjoint column stripe of
// dB and accumulates it in ascending-i order — the serial order.
func matmulGradB(db, a, dout []float64, m, k, n int) {
	compute.ParallelGrain(n, workGrain(m*k), func(jlo, jhi int) {
		for i := 0; i < m; i++ {
			arow := a[i*k : (i+1)*k]
			grow := dout[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				bgrow := db[p*n : (p+1)*n]
				for j := jlo; j < jhi; j++ {
					bgrow[j] += av * grow[j]
				}
			}
		}
	})
}

// Add returns a + b (same shape).
func Add(a, b *Tensor) *Tensor {
	assertSameShape("add", a, b)
	out := newResult(a.rows, a.cols, a, b)
	compute.ParallelGrain(len(out.Data), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] + b.Data[i]
		}
	})
	if out.requiresGrad {
		out.backFn = func() {
			if a.requiresGrad {
				a.ensureGrad()
				compute.ParallelGrain(len(out.Grad), elemGrain, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						a.Grad[i] += out.Grad[i]
					}
				})
			}
			if b.requiresGrad {
				b.ensureGrad()
				compute.ParallelGrain(len(out.Grad), elemGrain, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						b.Grad[i] += out.Grad[i]
					}
				})
			}
		}
	}
	return out
}

// Sub returns a - b (same shape).
func Sub(a, b *Tensor) *Tensor {
	assertSameShape("sub", a, b)
	out := newResult(a.rows, a.cols, a, b)
	compute.ParallelGrain(len(out.Data), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] - b.Data[i]
		}
	})
	if out.requiresGrad {
		out.backFn = func() {
			if a.requiresGrad {
				a.ensureGrad()
				compute.ParallelGrain(len(out.Grad), elemGrain, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						a.Grad[i] += out.Grad[i]
					}
				})
			}
			if b.requiresGrad {
				b.ensureGrad()
				compute.ParallelGrain(len(out.Grad), elemGrain, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						b.Grad[i] -= out.Grad[i]
					}
				})
			}
		}
	}
	return out
}

// Mul returns the elementwise product a ⊙ b (same shape).
func Mul(a, b *Tensor) *Tensor {
	assertSameShape("mul", a, b)
	out := newResult(a.rows, a.cols, a, b)
	compute.ParallelGrain(len(out.Data), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] * b.Data[i]
		}
	})
	if out.requiresGrad {
		out.backFn = func() {
			if a.requiresGrad {
				a.ensureGrad()
				compute.ParallelGrain(len(out.Grad), elemGrain, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						a.Grad[i] += out.Grad[i] * b.Data[i]
					}
				})
			}
			if b.requiresGrad {
				b.ensureGrad()
				compute.ParallelGrain(len(out.Grad), elemGrain, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						b.Grad[i] += out.Grad[i] * a.Data[i]
					}
				})
			}
		}
	}
	return out
}

// AddRowVec returns a + v broadcast over rows, for v of shape 1×cols
// (bias addition).
func AddRowVec(a, v *Tensor) *Tensor {
	if v.rows != 1 || v.cols != a.cols {
		panic(fmt.Sprintf("tensor: addrowvec %dx%d + %dx%d", a.rows, a.cols, v.rows, v.cols))
	}
	out := newResult(a.rows, a.cols, a, v)
	cols := a.cols
	compute.ParallelGrain(a.rows, rowGrain(cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*cols : (i+1)*cols]
			orow := out.Data[i*cols : (i+1)*cols]
			for j := range orow {
				orow[j] = arow[j] + v.Data[j]
			}
		}
	})
	if out.requiresGrad {
		out.backFn = func() {
			if a.requiresGrad {
				a.ensureGrad()
				compute.ParallelGrain(len(out.Grad), elemGrain, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						a.Grad[i] += out.Grad[i]
					}
				})
			}
			if v.requiresGrad {
				v.ensureGrad()
				// v.Grad[j] sums over every row: split the columns so each
				// chunk owns disjoint accumulators, rows in serial order.
				compute.ParallelGrain(cols, workGrain(a.rows), func(jlo, jhi int) {
					for i := 0; i < a.rows; i++ {
						for j := jlo; j < jhi; j++ {
							v.Grad[j] += out.Grad[i*cols+j]
						}
					}
				})
			}
		}
	}
	return out
}

// MulColVec returns a ⊙ c broadcast over columns, for c of shape rows×1
// (per-row scaling, e.g. attention coefficients).
func MulColVec(a, c *Tensor) *Tensor {
	if c.cols != 1 || c.rows != a.rows {
		panic(fmt.Sprintf("tensor: mulcolvec %dx%d ⊙ %dx%d", a.rows, a.cols, c.rows, c.cols))
	}
	out := newResult(a.rows, a.cols, a, c)
	cols := a.cols
	compute.ParallelGrain(a.rows, rowGrain(cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cv := c.Data[i]
			for j := 0; j < cols; j++ {
				out.Data[i*cols+j] = a.Data[i*cols+j] * cv
			}
		}
	})
	if out.requiresGrad {
		out.backFn = func() {
			if a.requiresGrad {
				a.ensureGrad()
				compute.ParallelGrain(a.rows, rowGrain(cols), func(lo, hi int) {
					for i := lo; i < hi; i++ {
						cv := c.Data[i]
						for j := 0; j < cols; j++ {
							a.Grad[i*cols+j] += out.Grad[i*cols+j] * cv
						}
					}
				})
			}
			if c.requiresGrad {
				c.ensureGrad()
				compute.ParallelGrain(a.rows, rowGrain(cols), func(lo, hi int) {
					for i := lo; i < hi; i++ {
						s := 0.0
						for j := 0; j < cols; j++ {
							s += out.Grad[i*cols+j] * a.Data[i*cols+j]
						}
						c.Grad[i] += s
					}
				})
			}
		}
	}
	return out
}

// Scale returns s·a for a constant s.
func Scale(a *Tensor, s float64) *Tensor {
	out := newResult(a.rows, a.cols, a)
	compute.ParallelGrain(len(out.Data), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] * s
		}
	})
	if out.requiresGrad {
		out.backFn = func() {
			a.ensureGrad()
			compute.ParallelGrain(len(out.Grad), elemGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					a.Grad[i] += out.Grad[i] * s
				}
			})
		}
	}
	return out
}

// unary builds an elementwise op with derivative df(x, f(x)).
func unary(a *Tensor, f func(float64) float64, df func(x, y float64) float64) *Tensor {
	out := newResult(a.rows, a.cols, a)
	compute.ParallelGrain(len(out.Data), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = f(a.Data[i])
		}
	})
	if out.requiresGrad {
		out.backFn = func() {
			a.ensureGrad()
			compute.ParallelGrain(len(out.Grad), elemGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					a.Grad[i] += out.Grad[i] * df(a.Data[i], out.Data[i])
				}
			})
		}
	}
	return out
}

// Sigmoid returns 1/(1+e^-a) elementwise.
func Sigmoid(a *Tensor) *Tensor {
	return unary(a,
		func(x float64) float64 { return 1 / (1 + math.Exp(-x)) },
		func(_, y float64) float64 { return y * (1 - y) })
}

// ReLU returns max(0, a) elementwise.
func ReLU(a *Tensor) *Tensor {
	return unary(a,
		func(x float64) float64 { return math.Max(0, x) },
		func(x, _ float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		})
}

// Tanh returns tanh(a) elementwise.
func Tanh(a *Tensor) *Tensor {
	return unary(a, math.Tanh, func(_, y float64) float64 { return 1 - y*y })
}

// RowSoftmax returns softmax over each row. Row-parallel: every row is
// normalised entirely within one chunk.
func RowSoftmax(a *Tensor) *Tensor {
	out := newResult(a.rows, a.cols, a)
	cols := a.cols
	compute.ParallelGrain(a.rows, rowGrain(cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.Data[i*cols : (i+1)*cols]
			orow := out.Data[i*cols : (i+1)*cols]
			mx := math.Inf(-1)
			for _, v := range row {
				if v > mx {
					mx = v
				}
			}
			sum := 0.0
			for j, v := range row {
				e := math.Exp(v - mx)
				orow[j] = e
				sum += e
			}
			for j := range orow {
				orow[j] /= sum
			}
		}
	})
	if out.requiresGrad {
		out.backFn = func() {
			a.ensureGrad()
			compute.ParallelGrain(a.rows, rowGrain(cols), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					orow := out.Data[i*cols : (i+1)*cols]
					grow := out.Grad[i*cols : (i+1)*cols]
					dot := 0.0
					for j := range orow {
						dot += orow[j] * grow[j]
					}
					for j := range orow {
						a.Grad[i*cols+j] += orow[j] * (grow[j] - dot)
					}
				}
			})
		}
	}
	return out
}

// MaskedRowSoftmax computes softmax over each row restricted to positions
// where mask is true; masked-out outputs are 0. Rows with no unmasked
// entries produce all zeros.
func MaskedRowSoftmax(a *Tensor, mask []bool) *Tensor {
	if len(mask) != len(a.Data) {
		panic(fmt.Sprintf("tensor: masked softmax mask len %d != %d", len(mask), len(a.Data)))
	}
	out := newResult(a.rows, a.cols, a)
	cols := a.cols
	compute.ParallelGrain(a.rows, rowGrain(cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.Data[i*cols : (i+1)*cols]
			mrow := mask[i*cols : (i+1)*cols]
			orow := out.Data[i*cols : (i+1)*cols]
			mx := math.Inf(-1)
			any := false
			for j, v := range row {
				if mrow[j] && v > mx {
					mx = v
					any = true
				}
			}
			if !any {
				continue
			}
			sum := 0.0
			for j, v := range row {
				if mrow[j] {
					e := math.Exp(v - mx)
					orow[j] = e
					sum += e
				}
			}
			for j := range orow {
				orow[j] /= sum
			}
		}
	})
	if out.requiresGrad {
		out.backFn = func() {
			a.ensureGrad()
			compute.ParallelGrain(a.rows, rowGrain(cols), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					orow := out.Data[i*cols : (i+1)*cols]
					grow := out.Grad[i*cols : (i+1)*cols]
					mrow := mask[i*cols : (i+1)*cols]
					dot := 0.0
					for j := range orow {
						if mrow[j] {
							dot += orow[j] * grow[j]
						}
					}
					for j := range orow {
						if mrow[j] {
							a.Grad[i*cols+j] += orow[j] * (grow[j] - dot)
						}
					}
				}
			})
		}
	}
	return out
}

// Sum returns the 1×1 sum of all elements. The reduction uses the fixed
// partition of compute.ReduceSum, so its value is independent of the
// thread count.
func Sum(a *Tensor) *Tensor {
	out := newResult(1, 1, a)
	out.Data[0] = compute.ReduceSum(len(a.Data), func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += a.Data[i]
		}
		return s
	})
	if out.requiresGrad {
		out.backFn = func() {
			a.ensureGrad()
			g := out.Grad[0]
			compute.ParallelGrain(len(a.Grad), elemGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					a.Grad[i] += g
				}
			})
		}
	}
	return out
}

// Mean returns the 1×1 mean of all elements.
func Mean(a *Tensor) *Tensor {
	return Scale(Sum(a), 1/float64(len(a.Data)))
}

// ConcatCols concatenates tensors with equal row counts along columns
// (multi-head concatenation).
func ConcatCols(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: concat of nothing")
	}
	rows := ts[0].rows
	total := 0
	for _, t := range ts {
		if t.rows != rows {
			panic(fmt.Sprintf("tensor: concat row mismatch %d vs %d", t.rows, rows))
		}
		total += t.cols
	}
	out := newResult(rows, total, ts...)
	off := 0
	for _, t := range ts {
		t := t
		toff := off
		compute.ParallelGrain(rows, rowGrain(t.cols), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				copy(out.Data[i*total+toff:i*total+toff+t.cols], t.Data[i*t.cols:(i+1)*t.cols])
			}
		})
		off += t.cols
	}
	if out.requiresGrad {
		out.backFn = func() {
			off := 0
			for _, t := range ts {
				if t.requiresGrad {
					t.ensureGrad()
					t := t
					toff := off
					compute.ParallelGrain(rows, rowGrain(t.cols), func(lo, hi int) {
						for i := lo; i < hi; i++ {
							for j := 0; j < t.cols; j++ {
								t.Grad[i*t.cols+j] += out.Grad[i*total+toff+j]
							}
						}
					})
				}
				off += t.cols
			}
		}
	}
	return out
}
