package tensor

import (
	"fmt"
	"math"
)

// MatMul returns a·b for a [m×k] and b [k×n].
func MatMul(a, b *Tensor) *Tensor {
	if a.cols != b.rows {
		panic(fmt.Sprintf("tensor: matmul %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	m, k, n := a.rows, a.cols, b.cols
	out := newResult(m, n, a, b)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	if out.requiresGrad {
		out.backFn = func() {
			if a.requiresGrad {
				a.ensureGrad()
				// dA = dOut · Bᵀ
				for i := 0; i < m; i++ {
					grow := out.Grad[i*n : (i+1)*n]
					agrow := a.Grad[i*k : (i+1)*k]
					for p := 0; p < k; p++ {
						brow := b.Data[p*n : (p+1)*n]
						s := 0.0
						for j := 0; j < n; j++ {
							s += grow[j] * brow[j]
						}
						agrow[p] += s
					}
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				// dB = Aᵀ · dOut
				for i := 0; i < m; i++ {
					arow := a.Data[i*k : (i+1)*k]
					grow := out.Grad[i*n : (i+1)*n]
					for p := 0; p < k; p++ {
						av := arow[p]
						if av == 0 {
							continue
						}
						bgrow := b.Grad[p*n : (p+1)*n]
						for j := 0; j < n; j++ {
							bgrow[j] += av * grow[j]
						}
					}
				}
			}
		}
	}
	return out
}

// Add returns a + b (same shape).
func Add(a, b *Tensor) *Tensor {
	assertSameShape("add", a, b)
	out := newResult(a.rows, a.cols, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	if out.requiresGrad {
		out.backFn = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				for i := range out.Grad {
					b.Grad[i] += out.Grad[i]
				}
			}
		}
	}
	return out
}

// Sub returns a - b (same shape).
func Sub(a, b *Tensor) *Tensor {
	assertSameShape("sub", a, b)
	out := newResult(a.rows, a.cols, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	if out.requiresGrad {
		out.backFn = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				for i := range out.Grad {
					b.Grad[i] -= out.Grad[i]
				}
			}
		}
	}
	return out
}

// Mul returns the elementwise product a ⊙ b (same shape).
func Mul(a, b *Tensor) *Tensor {
	assertSameShape("mul", a, b)
	out := newResult(a.rows, a.cols, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	if out.requiresGrad {
		out.backFn = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i] * b.Data[i]
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				for i := range out.Grad {
					b.Grad[i] += out.Grad[i] * a.Data[i]
				}
			}
		}
	}
	return out
}

// AddRowVec returns a + v broadcast over rows, for v of shape 1×cols
// (bias addition).
func AddRowVec(a, v *Tensor) *Tensor {
	if v.rows != 1 || v.cols != a.cols {
		panic(fmt.Sprintf("tensor: addrowvec %dx%d + %dx%d", a.rows, a.cols, v.rows, v.cols))
	}
	out := newResult(a.rows, a.cols, a, v)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			out.Data[i*a.cols+j] = a.Data[i*a.cols+j] + v.Data[j]
		}
	}
	if out.requiresGrad {
		out.backFn = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if v.requiresGrad {
				v.ensureGrad()
				for i := 0; i < a.rows; i++ {
					for j := 0; j < a.cols; j++ {
						v.Grad[j] += out.Grad[i*a.cols+j]
					}
				}
			}
		}
	}
	return out
}

// MulColVec returns a ⊙ c broadcast over columns, for c of shape rows×1
// (per-row scaling, e.g. attention coefficients).
func MulColVec(a, c *Tensor) *Tensor {
	if c.cols != 1 || c.rows != a.rows {
		panic(fmt.Sprintf("tensor: mulcolvec %dx%d ⊙ %dx%d", a.rows, a.cols, c.rows, c.cols))
	}
	out := newResult(a.rows, a.cols, a, c)
	for i := 0; i < a.rows; i++ {
		cv := c.Data[i]
		for j := 0; j < a.cols; j++ {
			out.Data[i*a.cols+j] = a.Data[i*a.cols+j] * cv
		}
	}
	if out.requiresGrad {
		out.backFn = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i := 0; i < a.rows; i++ {
					cv := c.Data[i]
					for j := 0; j < a.cols; j++ {
						a.Grad[i*a.cols+j] += out.Grad[i*a.cols+j] * cv
					}
				}
			}
			if c.requiresGrad {
				c.ensureGrad()
				for i := 0; i < a.rows; i++ {
					s := 0.0
					for j := 0; j < a.cols; j++ {
						s += out.Grad[i*a.cols+j] * a.Data[i*a.cols+j]
					}
					c.Grad[i] += s
				}
			}
		}
	}
	return out
}

// Scale returns s·a for a constant s.
func Scale(a *Tensor, s float64) *Tensor {
	out := newResult(a.rows, a.cols, a)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * s
	}
	if out.requiresGrad {
		out.backFn = func() {
			a.ensureGrad()
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i] * s
			}
		}
	}
	return out
}

// unary builds an elementwise op with derivative df(x, f(x)).
func unary(a *Tensor, f func(float64) float64, df func(x, y float64) float64) *Tensor {
	out := newResult(a.rows, a.cols, a)
	for i := range out.Data {
		out.Data[i] = f(a.Data[i])
	}
	if out.requiresGrad {
		out.backFn = func() {
			a.ensureGrad()
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i] * df(a.Data[i], out.Data[i])
			}
		}
	}
	return out
}

// Sigmoid returns 1/(1+e^-a) elementwise.
func Sigmoid(a *Tensor) *Tensor {
	return unary(a,
		func(x float64) float64 { return 1 / (1 + math.Exp(-x)) },
		func(_, y float64) float64 { return y * (1 - y) })
}

// ReLU returns max(0, a) elementwise.
func ReLU(a *Tensor) *Tensor {
	return unary(a,
		func(x float64) float64 { return math.Max(0, x) },
		func(x, _ float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		})
}

// Tanh returns tanh(a) elementwise.
func Tanh(a *Tensor) *Tensor {
	return unary(a, math.Tanh, func(_, y float64) float64 { return 1 - y*y })
}

// RowSoftmax returns softmax over each row.
func RowSoftmax(a *Tensor) *Tensor {
	out := newResult(a.rows, a.cols, a)
	for i := 0; i < a.rows; i++ {
		row := a.Data[i*a.cols : (i+1)*a.cols]
		orow := out.Data[i*a.cols : (i+1)*a.cols]
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - mx)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	if out.requiresGrad {
		out.backFn = func() {
			a.ensureGrad()
			for i := 0; i < a.rows; i++ {
				orow := out.Data[i*a.cols : (i+1)*a.cols]
				grow := out.Grad[i*a.cols : (i+1)*a.cols]
				dot := 0.0
				for j := range orow {
					dot += orow[j] * grow[j]
				}
				for j := range orow {
					a.Grad[i*a.cols+j] += orow[j] * (grow[j] - dot)
				}
			}
		}
	}
	return out
}

// MaskedRowSoftmax computes softmax over each row restricted to positions
// where mask is true; masked-out outputs are 0. Rows with no unmasked
// entries produce all zeros.
func MaskedRowSoftmax(a *Tensor, mask []bool) *Tensor {
	if len(mask) != len(a.Data) {
		panic(fmt.Sprintf("tensor: masked softmax mask len %d != %d", len(mask), len(a.Data)))
	}
	out := newResult(a.rows, a.cols, a)
	for i := 0; i < a.rows; i++ {
		row := a.Data[i*a.cols : (i+1)*a.cols]
		mrow := mask[i*a.cols : (i+1)*a.cols]
		orow := out.Data[i*a.cols : (i+1)*a.cols]
		mx := math.Inf(-1)
		any := false
		for j, v := range row {
			if mrow[j] && v > mx {
				mx = v
				any = true
			}
		}
		if !any {
			continue
		}
		sum := 0.0
		for j, v := range row {
			if mrow[j] {
				e := math.Exp(v - mx)
				orow[j] = e
				sum += e
			}
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	if out.requiresGrad {
		out.backFn = func() {
			a.ensureGrad()
			for i := 0; i < a.rows; i++ {
				orow := out.Data[i*a.cols : (i+1)*a.cols]
				grow := out.Grad[i*a.cols : (i+1)*a.cols]
				mrow := mask[i*a.cols : (i+1)*a.cols]
				dot := 0.0
				for j := range orow {
					if mrow[j] {
						dot += orow[j] * grow[j]
					}
				}
				for j := range orow {
					if mrow[j] {
						a.Grad[i*a.cols+j] += orow[j] * (grow[j] - dot)
					}
				}
			}
		}
	}
	return out
}

// Sum returns the 1×1 sum of all elements.
func Sum(a *Tensor) *Tensor {
	out := newResult(1, 1, a)
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	out.Data[0] = s
	if out.requiresGrad {
		out.backFn = func() {
			a.ensureGrad()
			g := out.Grad[0]
			for i := range a.Grad {
				a.Grad[i] += g
			}
		}
	}
	return out
}

// Mean returns the 1×1 mean of all elements.
func Mean(a *Tensor) *Tensor {
	return Scale(Sum(a), 1/float64(len(a.Data)))
}

// ConcatCols concatenates tensors with equal row counts along columns
// (multi-head concatenation).
func ConcatCols(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: concat of nothing")
	}
	rows := ts[0].rows
	total := 0
	for _, t := range ts {
		if t.rows != rows {
			panic(fmt.Sprintf("tensor: concat row mismatch %d vs %d", t.rows, rows))
		}
		total += t.cols
	}
	out := newResult(rows, total, ts...)
	off := 0
	for _, t := range ts {
		for i := 0; i < rows; i++ {
			copy(out.Data[i*total+off:i*total+off+t.cols], t.Data[i*t.cols:(i+1)*t.cols])
		}
		off += t.cols
	}
	if out.requiresGrad {
		out.backFn = func() {
			off := 0
			for _, t := range ts {
				if t.requiresGrad {
					t.ensureGrad()
					for i := 0; i < rows; i++ {
						for j := 0; j < t.cols; j++ {
							t.Grad[i*t.cols+j] += out.Grad[i*total+off+j]
						}
					}
				}
				off += t.cols
			}
		}
	}
	return out
}
