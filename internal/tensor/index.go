package tensor

import (
	"fmt"

	"mega/internal/compute"
)

// Indexed and shifted-row operations: the graph side of the models. In the
// DGL-style engine these back the gather/scatter aggregation; in the MEGA
// engine Narrow/PadRows implement the banded diagonal sweeps and
// SegmentMean implements duplicate synchronisation and graph readout.
//
// Gather directions split rows (each output row is owned by one chunk);
// scatter directions split columns, because arbitrary index lists may send
// many rows into one accumulator row — a column stripe is the only
// partition whose writes stay disjoint while preserving the serial
// ascending-i accumulation order.

// GatherRows returns x[idx] — a len(idx)×cols tensor whose row i is
// x.Row(idx[i]). The backward pass scatter-adds gradients.
func GatherRows(x *Tensor, idx []int32) *Tensor {
	out := newResult(len(idx), x.cols, x)
	cols := x.cols
	for _, id := range idx {
		if id < 0 || int(id) >= x.rows {
			panic(fmt.Sprintf("tensor: gather index %d out of %d rows", id, x.rows))
		}
	}
	compute.ParallelGrain(len(idx), rowGrain(cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			id := int(idx[i])
			copy(out.Data[i*cols:(i+1)*cols], x.Data[id*cols:(id+1)*cols])
		}
	})
	if out.requiresGrad {
		out.backFn = func() {
			x.ensureGrad()
			compute.ParallelGrain(cols, workGrain(len(idx)), func(jlo, jhi int) {
				for i, id := range idx {
					for j := jlo; j < jhi; j++ {
						x.Grad[int(id)*cols+j] += out.Grad[i*cols+j]
					}
				}
			})
		}
	}
	return out
}

// ScatterAddRows returns a numRows×cols tensor where row idx[i] accumulates
// x.Row(i) — the aggregation primitive of message passing.
func ScatterAddRows(x *Tensor, idx []int32, numRows int) *Tensor {
	if len(idx) != x.rows {
		panic(fmt.Sprintf("tensor: scatter index count %d != rows %d", len(idx), x.rows))
	}
	out := newResult(numRows, x.cols, x)
	cols := x.cols
	for _, id := range idx {
		if id < 0 || int(id) >= numRows {
			panic(fmt.Sprintf("tensor: scatter index %d out of %d rows", id, numRows))
		}
	}
	compute.ParallelGrain(cols, workGrain(len(idx)), func(jlo, jhi int) {
		for i, id := range idx {
			for j := jlo; j < jhi; j++ {
				out.Data[int(id)*cols+j] += x.Data[i*cols+j]
			}
		}
	})
	if out.requiresGrad {
		out.backFn = func() {
			x.ensureGrad()
			compute.ParallelGrain(len(idx), rowGrain(cols), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					id := int(idx[i])
					for j := 0; j < cols; j++ {
						x.Grad[i*cols+j] += out.Grad[id*cols+j]
					}
				}
			})
		}
	}
	return out
}

// SegmentMean returns a numSeg×cols tensor whose row s is the mean of the
// rows of x with seg[i] == s. Empty segments stay zero. Used for per-graph
// readout pooling and MEGA's duplicate-position synchronisation.
func SegmentMean(x *Tensor, seg []int32, numSeg int) *Tensor {
	if len(seg) != x.rows {
		panic(fmt.Sprintf("tensor: segment count %d != rows %d", len(seg), x.rows))
	}
	out := newResult(numSeg, x.cols, x)
	cols := x.cols
	counts := make([]float64, numSeg)
	for _, s := range seg {
		if s < 0 || int(s) >= numSeg {
			panic(fmt.Sprintf("tensor: segment id %d out of %d", s, numSeg))
		}
		counts[s]++
	}
	compute.ParallelGrain(cols, workGrain(len(seg)), func(jlo, jhi int) {
		for i, s := range seg {
			for j := jlo; j < jhi; j++ {
				out.Data[int(s)*cols+j] += x.Data[i*cols+j]
			}
		}
		for s := 0; s < numSeg; s++ {
			if counts[s] == 0 {
				continue
			}
			inv := 1 / counts[s]
			for j := jlo; j < jhi; j++ {
				out.Data[s*cols+j] *= inv
			}
		}
	})
	if out.requiresGrad {
		out.backFn = func() {
			x.ensureGrad()
			compute.ParallelGrain(len(seg), rowGrain(cols), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					inv := 1 / counts[seg[i]]
					for j := 0; j < cols; j++ {
						x.Grad[i*cols+j] += out.Grad[int(seg[i])*cols+j] * inv
					}
				}
			})
		}
	}
	return out
}

// Narrow returns rows [start, start+n) of x as a new tensor; gradients add
// back into the corresponding rows. This is the "shifted view" primitive of
// banded attention.
func Narrow(x *Tensor, start, n int) *Tensor {
	if start < 0 || n < 0 || start+n > x.rows {
		panic(fmt.Sprintf("tensor: narrow [%d,%d) of %d rows", start, start+n, x.rows))
	}
	out := newResult(n, x.cols, x)
	copy(out.Data, x.Data[start*x.cols:(start+n)*x.cols])
	if out.requiresGrad {
		out.backFn = func() {
			x.ensureGrad()
			base := start * x.cols
			compute.ParallelGrain(n*x.cols, elemGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					x.Grad[base+i] += out.Grad[i]
				}
			})
		}
	}
	return out
}

// PadRows returns x padded with `before` zero rows above and `after` zero
// rows below; gradients flow back to the unpadded region.
func PadRows(x *Tensor, before, after int) *Tensor {
	if before < 0 || after < 0 {
		panic(fmt.Sprintf("tensor: negative padding %d,%d", before, after))
	}
	out := newResult(before+x.rows+after, x.cols, x)
	copy(out.Data[before*x.cols:], x.Data)
	if out.requiresGrad {
		out.backFn = func() {
			x.ensureGrad()
			base := before * x.cols
			compute.ParallelGrain(len(x.Data), elemGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					x.Grad[i] += out.Grad[base+i]
				}
			})
		}
	}
	return out
}

// EmbedRows looks up rows of a trainable embedding table by categorical ID:
// the input-feature encoder. It is GatherRows with int32 categories.
func EmbedRows(table *Tensor, ids []int32) *Tensor {
	return GatherRows(table, ids)
}
