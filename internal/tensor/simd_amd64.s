//go:build amd64

#include "textflag.h"

// func saxpy32(alpha float32, x, y []float32)
//
// y[i] += alpha*x[i] for i < len(y). 16 elements per main-loop iteration
// (four 4-wide MULPS/ADDPS chains), then a 4-wide loop, then scalars.
// Unaligned loads/stores throughout — arena buffers carry no alignment
// guarantee beyond Go's slice allocation.
TEXT ·saxpy32(SB), NOSPLIT, $0-56
	MOVSS  alpha+0(FP), X0
	SHUFPS $0x00, X0, X0
	MOVQ   x_base+8(FP), SI
	MOVQ   y_base+32(FP), DI
	MOVQ   y_len+40(FP), CX
	XORQ   AX, AX

	MOVQ CX, BX
	ANDQ $-16, BX
	CMPQ AX, BX
	JGE  tail4

loop16:
	MOVUPS (SI)(AX*4), X1
	MOVUPS 16(SI)(AX*4), X2
	MOVUPS 32(SI)(AX*4), X3
	MOVUPS 48(SI)(AX*4), X4
	MULPS  X0, X1
	MULPS  X0, X2
	MULPS  X0, X3
	MULPS  X0, X4
	MOVUPS (DI)(AX*4), X5
	MOVUPS 16(DI)(AX*4), X6
	MOVUPS 32(DI)(AX*4), X7
	MOVUPS 48(DI)(AX*4), X8
	ADDPS  X1, X5
	ADDPS  X2, X6
	ADDPS  X3, X7
	ADDPS  X4, X8
	MOVUPS X5, (DI)(AX*4)
	MOVUPS X6, 16(DI)(AX*4)
	MOVUPS X7, 32(DI)(AX*4)
	MOVUPS X8, 48(DI)(AX*4)
	ADDQ   $16, AX
	CMPQ   AX, BX
	JLT    loop16

tail4:
	MOVQ CX, BX
	ANDQ $-4, BX
	CMPQ AX, BX
	JGE  tail1

loop4:
	MOVUPS (SI)(AX*4), X1
	MULPS  X0, X1
	MOVUPS (DI)(AX*4), X5
	ADDPS  X1, X5
	MOVUPS X5, (DI)(AX*4)
	ADDQ   $4, AX
	CMPQ   AX, BX
	JLT    loop4

tail1:
	CMPQ AX, CX
	JGE  done

loop1:
	MOVSS (SI)(AX*4), X1
	MULSS X0, X1
	MOVSS (DI)(AX*4), X5
	ADDSS X1, X5
	MOVSS X5, (DI)(AX*4)
	INCQ  AX
	CMPQ  AX, CX
	JLT   loop1

done:
	RET

// func matmulTile32(a, b, o []float32, stride int)
//
// o[0:16] += Σ_p a[p] * b[p*stride : p*stride+16], with the 16 partial
// sums held in X4–X7 across the whole sweep of a. Rows with a[p] == 0
// are skipped (UCOMISS; the parity flag sends NaN through the compute
// path so the zero-skip matches the scalar kernels' `av == 0` test).
TEXT ·matmulTile32(SB), NOSPLIT, $0-80
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), BX
	MOVQ o_base+48(FP), DI
	MOVQ stride+72(FP), R10
	SHLQ $2, R10

	MOVUPS (DI), X4
	MOVUPS 16(DI), X5
	MOVUPS 32(DI), X6
	MOVUPS 48(DI), X7
	XORPS  X9, X9

	XORQ AX, AX
	CMPQ AX, CX
	JGE  store

ploop:
	MOVSS   (SI)(AX*4), X0
	UCOMISS X9, X0
	JP      compute
	JE      next

compute:
	SHUFPS $0x00, X0, X0
	MOVUPS (BX), X1
	MULPS  X0, X1
	ADDPS  X1, X4
	MOVUPS 16(BX), X2
	MULPS  X0, X2
	ADDPS  X2, X5
	MOVUPS 32(BX), X3
	MULPS  X0, X3
	ADDPS  X3, X6
	MOVUPS 48(BX), X8
	MULPS  X0, X8
	ADDPS  X8, X7

next:
	ADDQ R10, BX
	INCQ AX
	CMPQ AX, CX
	JLT  ploop

store:
	MOVUPS X4, (DI)
	MOVUPS X5, 16(DI)
	MOVUPS X6, 32(DI)
	MOVUPS X7, 48(DI)
	RET
