package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestULPDistance32(t *testing.T) {
	cases := []struct {
		a, b float32
		want int64
	}{
		{1.0, 1.0, 0},
		{0, float32(math.Copysign(0, -1)), 0},
		{1.0, math.Nextafter32(1.0, 2.0), 1},
		{1.0, math.Nextafter32(1.0, 0.0), 1},
		{-1.0, math.Nextafter32(-1.0, -2.0), 1},
		// Smallest positive and negative subnormals straddle zero: 2 apart.
		{math.Float32frombits(1), math.Float32frombits(0x8000_0001), 2},
	}
	for _, c := range cases {
		if got := ULPDistance32(c.a, c.b); got != c.want {
			t.Errorf("ULPDistance32(%g, %g) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if got := ULPDistance32(float32(math.NaN()), 1); got != math.MaxInt64 {
		t.Errorf("NaN distance = %d, want MaxInt64", got)
	}
	// Symmetry and monotone growth over a sweep.
	prev := int64(0)
	for i := 1; i <= 64; i++ {
		x := float32(1.0)
		y := x
		for j := 0; j < i; j++ {
			y = math.Nextafter32(y, 2)
		}
		d := ULPDistance32(x, y)
		if d != int64(i) || ULPDistance32(y, x) != d {
			t.Fatalf("sweep %d: distance %d", i, d)
		}
		if d <= prev {
			t.Fatalf("sweep %d: distance not increasing", i)
		}
		prev = d
	}
}

func TestMeasureDivergence(t *testing.T) {
	ref := []float64{1.0, -2.0, 1e-8, 0.5}
	got := make([]float32, len(ref))
	for i, v := range ref {
		got[i] = float32(v)
	}
	d := MeasureDivergence(got, ref, 1e-6)
	if d.MaxULP != 0 || d.Compared != len(ref) {
		t.Fatalf("exact downcast: %+v", d)
	}
	if err := d.Within(0, 1e-7); err != nil {
		t.Fatalf("exact downcast out of envelope: %v", err)
	}
	// Perturb one element by 3 ULP.
	got[1] = math.Nextafter32(math.Nextafter32(math.Nextafter32(got[1], -3), -3), -3)
	d = MeasureDivergence(got, ref, 1e-6)
	if d.MaxULP != 3 {
		t.Fatalf("perturbed: MaxULP = %d, want 3", d.MaxULP)
	}
	if d.MaxRelErr <= 0 || d.MaxAbsErr <= 0 {
		t.Fatalf("perturbed: %+v", d)
	}
	if err := d.Within(2, 1); err == nil {
		t.Fatal("Within(2, …) should reject a 3-ULP gap")
	}
	// Near-zero references stay out of the ULP statistic but feed rel/abs.
	tiny := MeasureDivergence([]float32{1e-7}, []float64{0}, 1e-6)
	if tiny.MaxULP != 0 {
		t.Fatalf("near-zero ref contaminated ULP: %+v", tiny)
	}
	if tiny.MaxRelErr < 0.09 {
		t.Fatalf("near-zero rel err floored wrong: %+v", tiny)
	}
}

// randF32Pair builds matched float64/float32 random matrices (the f32 is
// the exact downcast of the f64).
func randF32Pair(rng *rand.Rand, rows, cols int) (*Tensor, *F32) {
	t64 := Randn(rng, rows, cols, 1)
	return t64, Downcast(t64)
}

func TestKernels32MatchF64(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	arena := NewArena()

	a64, a32 := randF32Pair(rng, 37, 65)
	b64, b32 := randF32Pair(rng, 65, 29)
	mm := MeasureDivergence(MatMul32(a32, b32, arena).Data, MatMul(a64, b64).Data, 1e-3)
	if err := mm.Within(4096, 1e-4); err != nil {
		t.Errorf("matmul32 diverged: %v (%+v)", err, mm)
	}

	g64 := Randn(rng, 1, 65, 1)
	be64 := Randn(rng, 1, 65, 1)
	ln := MeasureDivergence(
		LayerNorm32(a32, DowncastSlice(g64.Data), DowncastSlice(be64.Data), arena).Data,
		LayerNorm(a64, g64, be64).Data, 1e-3)
	if err := ln.Within(4096, 1e-3); err != nil {
		t.Errorf("layernorm32 diverged: %v (%+v)", err, ln)
	}

	bn := MeasureDivergence(
		BatchNorm32(a32, DowncastSlice(g64.Data), DowncastSlice(be64.Data), arena).Data,
		BatchNorm(a64, g64, be64).Data, 1e-3)
	if err := bn.Within(4096, 1e-4); err != nil {
		t.Errorf("batchnorm32 diverged: %v (%+v)", err, bn)
	}

	seg := make([]int32, 37)
	for i := range seg {
		seg[i] = int32(rng.Intn(5))
	}
	sm := MeasureDivergence(
		SegmentMean32(a32, seg, 5, arena).Data,
		SegmentMean(a64, seg, 5).Data, 1e-3)
	if err := sm.Within(256, 1e-4); err != nil {
		t.Errorf("segmentmean32 diverged: %v (%+v)", err, sm)
	}

	idx := []int32{0, 5, 5, 36, 2}
	gr32 := GatherRows32(a32, idx, arena)
	gr64 := GatherRows(a64, idx)
	for i := range gr32.Data {
		if gr32.Data[i] != float32(gr64.Data[i]) {
			t.Fatalf("gather32 differs at %d", i)
		}
	}
}

// randomPairs builds a band-like pair list over rows with numEdges edges.
func randomPairs(rng *rand.Rand, rows, numEdges, pairs int) (recv, send, edge []int32) {
	recv = make([]int32, pairs)
	send = make([]int32, pairs)
	edge = make([]int32, pairs)
	for p := 0; p < pairs; p += 2 {
		lo := int32(rng.Intn(rows - 1))
		off := int32(1 + rng.Intn(3))
		hi := lo + off
		if int(hi) >= rows {
			hi = int32(rows - 1)
		}
		e := int32(rng.Intn(numEdges))
		recv[p], send[p], edge[p] = lo, hi, e
		if p+1 < pairs {
			recv[p+1], send[p+1], edge[p+1] = hi, lo, e
		}
	}
	return recv, send, edge
}

func TestFusedSegmentAttention32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	arena := NewArena()
	const rows, d, heads, E, P = 48, 32, 4, 40, 160

	q64, q32 := randF32Pair(rng, rows, d)
	k64, k32 := randF32Pair(rng, rows, d)
	v64, v32 := randF32Pair(rng, rows, d)
	w64, w32 := randF32Pair(rng, E, d)
	recv, send, edge := randomPairs(rng, rows, E, P)
	byRecv := BuildSegments(recv, rows)
	bySend := BuildSegments(send, rows)
	byEdge := BuildSegments(edge, E)

	att64, eo64 := FusedSegmentAttention(q64, k64, v64, w64, recv, send, edge,
		byRecv, bySend, byEdge, heads, nil)
	for _, layout := range []AttnLayout{LayoutHeadMajor, LayoutInterleaved} {
		att32, eo32 := FusedSegmentAttention32(q32, k32, v32, w32, recv, send, edge,
			byRecv, byEdge, heads, layout, arena)
		da := MeasureDivergence(att32.Data, att64.Data, 1e-3)
		da.Merge(MeasureDivergence(eo32.Data, eo64.Data, 1e-3))
		if err := da.Within(2048, 1e-4); err != nil {
			t.Errorf("%v fused attention diverged: %v (%+v)", layout, err, da)
		}
		arena.PutF32(att32)
		arena.PutF32(eo32)
	}

	// Unmodulated variant (ew nil).
	attN64, _ := FusedSegmentAttention(q64, k64, v64, nil, recv, send, edge,
		byRecv, bySend, nil, heads, nil)
	attN32, eoN := FusedSegmentAttention32(q32, k32, v32, nil, recv, send, edge,
		byRecv, nil, heads, LayoutHeadMajor, arena)
	if eoN != nil {
		t.Fatal("nil ew must give nil edge output")
	}
	dn := MeasureDivergence(attN32.Data, attN64.Data, 1e-3)
	if err := dn.Within(2048, 1e-4); err != nil {
		t.Errorf("unmodulated fused attention diverged: %v (%+v)", err, dn)
	}
}

func TestAttention32LayoutsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	arena := NewArena()
	const rows, d, heads, E, P = 40, 48, 4, 32, 128

	_, q := randF32Pair(rng, rows, d)
	_, k := randF32Pair(rng, rows, d)
	_, v := randF32Pair(rng, rows, d)
	_, w := randF32Pair(rng, E, d)
	recv, send, edge := randomPairs(rng, rows, E, P)
	byRecv := BuildSegments(recv, rows)
	byEdge := BuildSegments(edge, E)

	hmA, hmE := FusedSegmentAttention32(q, k, v, w, recv, send, edge, byRecv, byEdge, heads, LayoutHeadMajor, arena)
	ilA, ilE := FusedSegmentAttention32(q, k, v, w, recv, send, edge, byRecv, byEdge, heads, LayoutInterleaved, arena)
	for i := range hmA.Data {
		if hmA.Data[i] != ilA.Data[i] {
			t.Fatalf("att layouts differ at %d: %x vs %x",
				i, math.Float32bits(hmA.Data[i]), math.Float32bits(ilA.Data[i]))
		}
	}
	for i := range hmE.Data {
		if hmE.Data[i] != ilE.Data[i] {
			t.Fatalf("edge-out layouts differ at %d", i)
		}
	}

	_, wh := randF32Pair(rng, rows, d)
	aL64 := Randn(rng, 1, d, 0.1)
	aR64 := Randn(rng, 1, d, 0.1)
	aL, aR := DowncastSlice(aL64.Data), DowncastSlice(aR64.Data)
	hm := FusedAdditiveAttention32(wh, aL, aR, recv, send, byRecv, heads, LayoutHeadMajor, arena)
	il := FusedAdditiveAttention32(wh, aL, aR, recv, send, byRecv, heads, LayoutInterleaved, arena)
	for i := range hm.Data {
		if hm.Data[i] != il.Data[i] {
			t.Fatalf("gat layouts differ at %d", i)
		}
	}

	// And GAT f32 against the f64 reference.
	wh64 := wh.Upcast()
	bySend := BuildSegments(send, rows)
	// Rebuild the f64 attention vectors from the rounded f32 values so the
	// reference sees exactly the weights the f32 kernel saw.
	for i, x := range aL {
		aL64.Data[i] = float64(x)
	}
	for i, x := range aR {
		aR64.Data[i] = float64(x)
	}
	ref := FusedAdditiveAttention(wh64, aL64, aR64, recv, send, byRecv, bySend, heads, nil)
	dg := MeasureDivergence(hm.Data, ref.Data, 1e-3)
	if err := dg.Within(2048, 1e-4); err != nil {
		t.Errorf("gat f32 diverged from f64: %v (%+v)", err, dg)
	}
}

func TestArenaStats(t *testing.T) {
	a := NewArena()
	b1 := a.Get(100)
	b2 := a.Get(100)
	a.Put(b1)
	b3 := a.Get(100) // hit
	s := a.Stats()
	if s.F64.Borrows != 3 || s.F64.BucketHits != 1 || s.F64.BucketMisses != 2 {
		t.Fatalf("f64 counters: %+v", s.F64)
	}
	if s.F64.InUseBytes != 1600 || s.F64.PeakBytes != 1600 {
		t.Fatalf("f64 bytes: %+v", s.F64)
	}
	a.Put(b2)
	a.Put(b3)
	if s := a.Stats(); s.F64.InUseBytes != 0 || s.F64.PeakBytes != 1600 {
		t.Fatalf("after release: %+v", s.F64)
	}

	c1 := a.Get32(64)
	a.Put32(c1)
	c2 := a.Get32(64)
	s = a.Stats()
	if s.F32.Borrows != 2 || s.F32.BucketHits != 1 || s.F32.BucketMisses != 1 {
		t.Fatalf("f32 counters: %+v", s.F32)
	}
	if s.F32.InUseBytes != 256 || s.F32.PeakBytes != 256 {
		t.Fatalf("f32 bytes: %+v", s.F32)
	}
	a.Put32(c2)

	// nil arena: degrade to make, no stats, no panic.
	var nilA *Arena
	_ = nilA.Get32(8)
	nilA.Put32(make([]float32, 8))
	if got := nilA.Stats(); got != (ArenaStats{}) {
		t.Fatalf("nil arena stats: %+v", got)
	}

	// GetF32/PutF32 round-trip through the pool.
	m := a.GetF32(4, 8)
	if m.Rows() != 4 || m.Cols() != 8 || len(m.Data) != 32 {
		t.Fatalf("GetF32 shape: %dx%d", m.Rows(), m.Cols())
	}
	a.PutF32(m)
	if m.Data != nil {
		t.Fatal("PutF32 must nil the payload")
	}
	a.PutF32(nil) // no-op
}
