package tensor

import (
	"encoding/json"
	"os"
	"runtime"
	"strings"
	"testing"
)

// benchSchemaVersion stamps the BENCH_*.json documents this package
// writes; bump it when the row or envelope shape changes.
const benchSchemaVersion = 1

// TestWriteBenchTensor regenerates BENCH_tensor.json: the serial-vs-
// parallel float64 kernel baselines plus the float32 fast-path kernels
// (tape-free matmul, fused segment attention in both scratch layouts).
// Gated behind BENCH_TENSOR_OUT so `go test ./...` stays fast; run via
// `make bench-compute`. Iteration counts come from -benchtime, which the
// Makefile pins for comparable runs.
func TestWriteBenchTensor(t *testing.T) {
	out := os.Getenv("BENCH_TENSOR_OUT")
	if out == "" {
		t.Skip("set BENCH_TENSOR_OUT=<path> to write the tensor bench (make bench-compute)")
	}

	type row struct {
		Name    string  `json:"name"`
		NsPerOp int64   `json:"ns_per_op"`
		GFLOPS  float64 `json:"gflops,omitempty"`
	}
	var rows []row
	ns := map[string]int64{}
	run := func(name string, fn func(b *testing.B)) {
		res := testing.Benchmark(fn)
		r := row{Name: name, NsPerOp: res.NsPerOp()}
		if g, ok := res.Extra["GFLOP/s"]; ok {
			r.GFLOPS = benchRound2(g)
		}
		rows = append(rows, r)
		ns[name] = r.NsPerOp
		t.Logf("%-36s %12d ns/op", name, r.NsPerOp)
	}

	run("MatMulSerial128", func(b *testing.B) { benchMatMul(b, 1, 128) })
	run("MatMulSerial256", func(b *testing.B) { benchMatMul(b, 1, 256) })
	run("MatMulSerial512", func(b *testing.B) { benchMatMul(b, 1, 512) })
	run("MatMulParallel128", func(b *testing.B) { benchMatMul(b, runtime.NumCPU(), 128) })
	run("MatMulParallel256", func(b *testing.B) { benchMatMul(b, runtime.NumCPU(), 256) })
	run("MatMulParallel512", func(b *testing.B) { benchMatMul(b, runtime.NumCPU(), 512) })
	run("MatMulBackwardSerial512", func(b *testing.B) { benchMatMulBackward(b, 1, 512) })
	run("MatMulBackwardParallel512", func(b *testing.B) { benchMatMulBackward(b, runtime.NumCPU(), 512) })
	run("ElementwiseSerial", func(b *testing.B) { benchElementwise(b, 1) })
	run("ElementwiseParallel", func(b *testing.B) { benchElementwise(b, runtime.NumCPU()) })
	run("LayerNormSerial", func(b *testing.B) { benchLayerNorm(b, 1) })
	run("LayerNormParallel", func(b *testing.B) { benchLayerNorm(b, runtime.NumCPU()) })

	run("MatMul32Serial128", func(b *testing.B) { benchMatMul32(b, 1, 128) })
	run("MatMul32Serial256", func(b *testing.B) { benchMatMul32(b, 1, 256) })
	run("MatMul32Serial512", func(b *testing.B) { benchMatMul32(b, 1, 512) })
	run("MatMul32Parallel128", func(b *testing.B) { benchMatMul32(b, runtime.NumCPU(), 128) })
	run("MatMul32Parallel256", func(b *testing.B) { benchMatMul32(b, runtime.NumCPU(), 256) })
	run("MatMul32Parallel512", func(b *testing.B) { benchMatMul32(b, runtime.NumCPU(), 512) })

	run("FusedAttention64", func(b *testing.B) { BenchmarkFusedAttention64(b) })
	run("FusedAttention32HeadMajor", func(b *testing.B) { benchFusedAttention32(b, LayoutHeadMajor) })
	run("FusedAttention32Interleaved", func(b *testing.B) { benchFusedAttention32(b, LayoutInterleaved) })

	ratio := func(num, den string) float64 {
		if ns[den] == 0 {
			return 0
		}
		return benchRound2(float64(ns[num]) / float64(ns[den]))
	}
	doc := map[string]any{
		"schema_version": benchSchemaVersion,
		"description": "Tensor kernel baselines: serial (1-thread pool) vs parallel (NumCPU pool) " +
			"float64 kernels, plus the float32 inference fast-path kernels — tape-free MatMul32 " +
			"and FusedSegmentAttention32 in the head-major and interleaved scratch layouts " +
			"(bit-identical outputs; the delta is pure memory traffic). ns_per_op from " +
			"testing.Benchmark at the Makefile's pinned -benchtime. Regenerate with " +
			"`make bench-compute`.",
		"machine": benchMachine(),
		"results": rows,
		"summary": map[string]any{
			"matmul512_f64_over_f32_serial":        ratio("MatMulSerial512", "MatMul32Serial512"),
			"attention_f64_over_f32_headmajor":     ratio("FusedAttention64", "FusedAttention32HeadMajor"),
			"attention_interleaved_over_headmajor": ratio("FusedAttention32Interleaved", "FusedAttention32HeadMajor"),
			"note": "On a 1-vCPU container serial and parallel run the same schedule, so those " +
				"pairs differ only by noise; the f64-over-f32 ratios are the meaningful ones " +
				"there. The equivalence suite proves bit-identical outputs at any thread count.",
		},
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// benchMachine is the shared machine-info envelope for bench documents
// written by this package.
func benchMachine() map[string]any {
	return map[string]any{
		"goos":       runtime.GOOS,
		"goarch":     runtime.GOARCH,
		"cpu":        benchCPUModel(),
		"num_cpu":    runtime.NumCPU(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"go_version": runtime.Version(),
	}
}

// benchCPUModel reads the CPU model string from /proc/cpuinfo (empty off
// Linux — the JSON still carries goos/goarch).
func benchCPUModel() string {
	buf, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(buf), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

func benchRound2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }
