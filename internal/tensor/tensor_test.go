package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// gradCheck compares autograd gradients of loss(x) against central-difference
// numerical gradients for every element of every input.
func gradCheck(t *testing.T, name string, inputs []*Tensor, loss func() *Tensor) {
	t.Helper()
	const eps = 1e-6
	const tol = 1e-4
	for _, in := range inputs {
		in.RequireGrad()
		in.Grad = nil // clear residue from earlier checks on shared tensors
	}
	out := loss()
	out.Backward()
	analytic := make([][]float64, len(inputs))
	for i, in := range inputs {
		analytic[i] = make([]float64, len(in.Data))
		copy(analytic[i], in.Grad)
	}
	for i, in := range inputs {
		for e := range in.Data {
			orig := in.Data[e]
			in.Data[e] = orig + eps
			up := loss().Item()
			in.Data[e] = orig - eps
			down := loss().Item()
			in.Data[e] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-analytic[i][e]) > tol*(1+math.Abs(numeric)) {
				t.Errorf("%s: input %d elem %d: analytic %v, numeric %v", name, i, e, analytic[i][e], numeric)
			}
		}
	}
}

func randTensor(rng *rand.Rand, rows, cols int) *Tensor {
	return Randn(rng, rows, cols, 1)
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched data length should panic")
		}
	}()
	New(2, 2, []float64{1})
}

func TestBasicAccessors(t *testing.T) {
	x := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if x.Rows() != 2 || x.Cols() != 3 || x.Size() != 6 {
		t.Error("shape accessors wrong")
	}
	if x.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v", x.At(1, 2))
	}
	x.Set(0, 0, 9)
	if x.At(0, 0) != 9 {
		t.Error("Set failed")
	}
	if !x.IsFinite() {
		t.Error("finite tensor reported non-finite")
	}
	x.Set(0, 0, math.NaN())
	if x.IsFinite() {
		t.Error("NaN not detected")
	}
}

func TestItemPanicsOnMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Item on matrix should panic")
		}
	}()
	Zeros(2, 2).Item()
}

func TestMatMulValues(t *testing.T) {
	a := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := New(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Errorf("matmul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch should panic")
		}
	}()
	MatMul(Zeros(2, 3), Zeros(2, 3))
}

func TestDetachAndClone(t *testing.T) {
	x := New(1, 2, []float64{1, 2}).RequireGrad()
	d := x.Detach()
	if d.RequiresGrad() {
		t.Error("detach should drop grad requirement")
	}
	c := x.Clone()
	if !c.RequiresGrad() {
		t.Error("clone should preserve grad requirement")
	}
	c.Data[0] = 99
	if x.Data[0] == 99 {
		t.Error("clone shares storage")
	}
}

func TestBackwardNonScalarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Backward on matrix should panic")
		}
	}()
	Zeros(2, 2).Backward()
}

func TestGradAccumulatesAcrossUses(t *testing.T) {
	// y = sum(x + x): dy/dx = 2 everywhere.
	x := New(1, 3, []float64{1, 2, 3}).RequireGrad()
	Sum(Add(x, x)).Backward()
	for i, g := range x.Grad {
		if g != 2 {
			t.Errorf("grad[%d] = %v, want 2", i, g)
		}
	}
}

func TestGradCheckMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randTensor(rng, 3, 4)
	b := randTensor(rng, 4, 2)
	gradCheck(t, "matmul", []*Tensor{a, b}, func() *Tensor { return Sum(MatMul(a, b)) })
}

func TestGradCheckElementwise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randTensor(rng, 3, 3)
	b := randTensor(rng, 3, 3)
	gradCheck(t, "add", []*Tensor{a, b}, func() *Tensor { return Sum(Add(a, b)) })
	gradCheck(t, "sub", []*Tensor{a, b}, func() *Tensor { return Sum(Sub(a, b)) })
	gradCheck(t, "mul", []*Tensor{a, b}, func() *Tensor { return Sum(Mul(a, b)) })
	gradCheck(t, "scale", []*Tensor{a}, func() *Tensor { return Sum(Scale(a, -2.5)) })
}

func TestGradCheckActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randTensor(rng, 2, 5)
	gradCheck(t, "sigmoid", []*Tensor{a}, func() *Tensor { return Sum(Sigmoid(a)) })
	gradCheck(t, "tanh", []*Tensor{a}, func() *Tensor { return Sum(Tanh(a)) })
	// Keep ReLU inputs away from the kink.
	for i := range a.Data {
		if math.Abs(a.Data[i]) < 0.1 {
			a.Data[i] = 0.5
		}
	}
	gradCheck(t, "relu", []*Tensor{a}, func() *Tensor { return Sum(ReLU(a)) })
}

func TestGradCheckBroadcasts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randTensor(rng, 4, 3)
	v := randTensor(rng, 1, 3)
	c := randTensor(rng, 4, 1)
	gradCheck(t, "addrowvec", []*Tensor{a, v}, func() *Tensor { return Sum(AddRowVec(a, v)) })
	gradCheck(t, "mulcolvec", []*Tensor{a, c}, func() *Tensor { return Sum(MulColVec(a, c)) })
}

func TestGradCheckSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randTensor(rng, 3, 4)
	// Weighted sum so the softmax grad isn't trivially zero.
	w := randTensor(rng, 3, 4)
	gradCheck(t, "rowsoftmax", []*Tensor{a}, func() *Tensor { return Sum(Mul(RowSoftmax(a), w)) })
}

func TestRowSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randTensor(rng, 5, 7)
	s := RowSoftmax(a)
	for i := 0; i < 5; i++ {
		sum := 0.0
		for j := 0; j < 7; j++ {
			sum += s.At(i, j)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
}

func TestMaskedRowSoftmax(t *testing.T) {
	a := New(2, 3, []float64{1, 2, 3, 1, 1, 1})
	mask := []bool{true, false, true, false, false, false}
	s := MaskedRowSoftmax(a, mask)
	if s.At(0, 1) != 0 {
		t.Error("masked position should be zero")
	}
	if math.Abs(s.At(0, 0)+s.At(0, 2)-1) > 1e-12 {
		t.Error("unmasked positions should sum to 1")
	}
	for j := 0; j < 3; j++ {
		if s.At(1, j) != 0 {
			t.Error("fully masked row should be zero")
		}
	}
}

func TestGradCheckMaskedSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randTensor(rng, 3, 4)
	w := randTensor(rng, 3, 4)
	mask := []bool{true, true, false, true, false, true, true, true, true, true, true, false}
	gradCheck(t, "maskedsoftmax", []*Tensor{a}, func() *Tensor {
		return Sum(Mul(MaskedRowSoftmax(a, mask), w))
	})
}

func TestGradCheckIndexOps(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randTensor(rng, 5, 3)
	idx := []int32{0, 2, 2, 4, 1}
	w := randTensor(rng, 5, 3)
	gradCheck(t, "gather", []*Tensor{x}, func() *Tensor { return Sum(Mul(GatherRows(x, idx), w)) })

	y := randTensor(rng, 4, 2)
	sidx := []int32{0, 2, 2, 1}
	w2 := randTensor(rng, 3, 2)
	gradCheck(t, "scatteradd", []*Tensor{y}, func() *Tensor {
		return Sum(Mul(ScatterAddRows(y, sidx, 3), w2))
	})

	z := randTensor(rng, 6, 2)
	seg := []int32{0, 0, 1, 1, 1, 0}
	w3 := randTensor(rng, 2, 2)
	gradCheck(t, "segmentmean", []*Tensor{z}, func() *Tensor {
		return Sum(Mul(SegmentMean(z, seg, 2), w3))
	})
}

func TestSegmentMeanValues(t *testing.T) {
	x := New(3, 2, []float64{1, 2, 3, 4, 10, 20})
	out := SegmentMean(x, []int32{0, 0, 1}, 3)
	want := []float64{2, 3, 10, 20, 0, 0}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("segmentmean[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestGradCheckNarrowPad(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randTensor(rng, 6, 2)
	w := randTensor(rng, 3, 2)
	gradCheck(t, "narrow", []*Tensor{x}, func() *Tensor { return Sum(Mul(Narrow(x, 2, 3), w)) })
	w2 := randTensor(rng, 8, 2)
	gradCheck(t, "padrows", []*Tensor{x}, func() *Tensor { return Sum(Mul(PadRows(x, 1, 1), w2)) })
}

func TestNarrowPadValues(t *testing.T) {
	x := New(3, 1, []float64{1, 2, 3})
	n := Narrow(x, 1, 2)
	if n.At(0, 0) != 2 || n.At(1, 0) != 3 {
		t.Errorf("narrow = %v", n.Data)
	}
	p := PadRows(x, 1, 2)
	want := []float64{0, 1, 2, 3, 0, 0}
	for i, w := range want {
		if p.Data[i] != w {
			t.Errorf("pad[%d] = %v, want %v", i, p.Data[i], w)
		}
	}
}

func TestGradCheckConcatCols(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randTensor(rng, 3, 2)
	b := randTensor(rng, 3, 4)
	w := randTensor(rng, 3, 6)
	gradCheck(t, "concat", []*Tensor{a, b}, func() *Tensor { return Sum(Mul(ConcatCols(a, b), w)) })
}

func TestGradCheckNorms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randTensor(rng, 4, 5)
	gamma := randTensor(rng, 1, 5)
	beta := randTensor(rng, 1, 5)
	w := randTensor(rng, 4, 5)
	gradCheck(t, "layernorm", []*Tensor{x, gamma, beta}, func() *Tensor {
		return Sum(Mul(LayerNorm(x, gamma, beta), w))
	})
	gradCheck(t, "batchnorm", []*Tensor{x, gamma, beta}, func() *Tensor {
		return Sum(Mul(BatchNorm(x, gamma, beta), w))
	})
}

func TestLayerNormRowStats(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := randTensor(rng, 3, 16)
	out := LayerNorm(x, Full(1, 16, 1), Zeros(1, 16))
	for i := 0; i < 3; i++ {
		mean, vari := 0.0, 0.0
		for j := 0; j < 16; j++ {
			mean += out.At(i, j)
		}
		mean /= 16
		for j := 0; j < 16; j++ {
			d := out.At(i, j) - mean
			vari += d * d
		}
		vari /= 16
		if math.Abs(mean) > 1e-9 || math.Abs(vari-1) > 1e-3 {
			t.Errorf("row %d: mean %v var %v", i, mean, vari)
		}
	}
}

func TestGradCheckLosses(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pred := randTensor(rng, 4, 1)
	target := randTensor(rng, 4, 1)
	gradCheck(t, "mse", []*Tensor{pred}, func() *Tensor { return MSELoss(pred, target) })
	// Keep MAE away from the kink.
	for i := range pred.Data {
		if math.Abs(pred.Data[i]-target.Data[i]) < 0.1 {
			pred.Data[i] = target.Data[i] + 0.5
		}
	}
	gradCheck(t, "mae", []*Tensor{pred}, func() *Tensor { return MAELoss(pred, target) })

	logits := randTensor(rng, 3, 4)
	labels := []int{1, 0, 3}
	gradCheck(t, "crossentropy", []*Tensor{logits}, func() *Tensor {
		return CrossEntropyLoss(logits, labels)
	})
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln(4).
	logits := Zeros(2, 4)
	loss := CrossEntropyLoss(logits, []int{0, 3})
	if math.Abs(loss.Item()-math.Log(4)) > 1e-9 {
		t.Errorf("loss = %v, want ln4 = %v", loss.Item(), math.Log(4))
	}
}

func TestAccuracy(t *testing.T) {
	logits := New(3, 2, []float64{2, 1, 0, 3, 5, 4})
	if acc := Accuracy(logits, []int{0, 1, 0}); acc != 1 {
		t.Errorf("accuracy = %v, want 1", acc)
	}
	if acc := Accuracy(logits, []int{1, 0, 1}); acc != 0 {
		t.Errorf("accuracy = %v, want 0", acc)
	}
	if acc := Accuracy(Zeros(0, 2), nil); acc != 0 {
		t.Errorf("empty accuracy = %v", acc)
	}
}

func TestEmbedRows(t *testing.T) {
	table := New(3, 2, []float64{1, 2, 3, 4, 5, 6})
	out := EmbedRows(table, []int32{2, 0})
	want := []float64{5, 6, 1, 2}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("embed[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestDiamondGraphGradient(t *testing.T) {
	// x feeds two branches that rejoin: y = sum(sigmoid(x) ⊙ tanh(x)).
	// Verifies the topological sweep handles shared subexpressions.
	rng := rand.New(rand.NewSource(14))
	x := randTensor(rng, 2, 3)
	gradCheck(t, "diamond", []*Tensor{x}, func() *Tensor {
		return Sum(Mul(Sigmoid(x), Tanh(x)))
	})
}

func TestMeanMatchesSumOverN(t *testing.T) {
	x := New(2, 2, []float64{1, 2, 3, 4})
	if m := Mean(x).Item(); m != 2.5 {
		t.Errorf("mean = %v, want 2.5", m)
	}
}

func TestZeroGrad(t *testing.T) {
	x := New(1, 2, []float64{1, 2}).RequireGrad()
	Sum(x).Backward()
	x.ZeroGrad()
	for _, g := range x.Grad {
		if g != 0 {
			t.Error("ZeroGrad left residue")
		}
	}
}

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 256, 128, 1)
	w := Randn(rng, 128, 128, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, w)
	}
}

func BenchmarkMatMulBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		a := Randn(rng, 128, 64, 1).RequireGrad()
		w := Randn(rng, 64, 64, 1).RequireGrad()
		Sum(MatMul(a, w)).Backward()
	}
}
