package tensor

import (
	"math/rand"
	"runtime"
	"testing"

	"mega/internal/compute"
)

// Serial-vs-parallel kernel benchmarks. "Serial" pins the compute pool to
// one thread (the pre-pool code path: every kernel runs inline on the
// caller); "Parallel" opens it to every core. Because the kernels are
// bit-deterministic at any thread count, the two configurations compute
// identical results — these benchmarks measure pure scheduling win.
// BENCH_tensor.json in the repo root records a reference run.

func benchMatMul(b *testing.B, threads, size int) {
	prev := compute.SetMaxThreads(threads)
	defer compute.SetMaxThreads(prev)
	x := randT(1001, size, size)
	w := randT(1002, size, size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, w)
	}
	flops := 2 * float64(size) * float64(size) * float64(size)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkMatMulSerial128(b *testing.B)   { benchMatMul(b, 1, 128) }
func BenchmarkMatMulSerial256(b *testing.B)   { benchMatMul(b, 1, 256) }
func BenchmarkMatMulSerial512(b *testing.B)   { benchMatMul(b, 1, 512) }
func BenchmarkMatMulParallel128(b *testing.B) { benchMatMul(b, runtime.NumCPU(), 128) }
func BenchmarkMatMulParallel256(b *testing.B) { benchMatMul(b, runtime.NumCPU(), 256) }
func BenchmarkMatMulParallel512(b *testing.B) { benchMatMul(b, runtime.NumCPU(), 512) }

func benchMatMulBackward(b *testing.B, threads, size int) {
	prev := compute.SetMaxThreads(threads)
	defer compute.SetMaxThreads(prev)
	x := randT(1003, size, size).RequireGrad()
	w := randT(1004, size, size).RequireGrad()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.ZeroGrad()
		w.ZeroGrad()
		Sum(MatMul(x, w)).Backward()
	}
}

func BenchmarkMatMulBackwardSerial512(b *testing.B) { benchMatMulBackward(b, 1, 512) }
func BenchmarkMatMulBackwardParallel512(b *testing.B) {
	benchMatMulBackward(b, runtime.NumCPU(), 512)
}

// benchElementwise measures the flat-split ops on a tensor large enough
// to cross elemGrain many times over.
func benchElementwise(b *testing.B, threads int) {
	prev := compute.SetMaxThreads(threads)
	defer compute.SetMaxThreads(prev)
	x := randT(1005, 1024, 512)
	y := randT(1006, 1024, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Add(Mul(x, y), Tanh(x))
	}
}

func BenchmarkElementwiseSerial(b *testing.B)   { benchElementwise(b, 1) }
func BenchmarkElementwiseParallel(b *testing.B) { benchElementwise(b, runtime.NumCPU()) }

func benchLayerNorm(b *testing.B, threads int) {
	prev := compute.SetMaxThreads(threads)
	defer compute.SetMaxThreads(prev)
	x := randT(1007, 4096, 128).RequireGrad()
	g := Full(1, 128, 1).RequireGrad()
	bt := Zeros(1, 128).RequireGrad()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.ZeroGrad()
		g.ZeroGrad()
		bt.ZeroGrad()
		Sum(LayerNorm(x, g, bt)).Backward()
	}
}

func BenchmarkLayerNormSerial(b *testing.B)   { benchLayerNorm(b, 1) }
func BenchmarkLayerNormParallel(b *testing.B) { benchLayerNorm(b, runtime.NumCPU()) }

// benchMatMul32 is the float32 fast-path counterpart of benchMatMul:
// same shapes, tape-free kernel, arena-pooled output.
func benchMatMul32(b *testing.B, threads, size int) {
	prev := compute.SetMaxThreads(threads)
	defer compute.SetMaxThreads(prev)
	rng := rand.New(rand.NewSource(1001))
	_, x := randF32Pair(rng, size, size)
	_, w := randF32Pair(rng, size, size)
	arena := NewArena()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.PutF32(MatMul32(x, w, arena))
	}
	flops := 2 * float64(size) * float64(size) * float64(size)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkMatMul32Serial128(b *testing.B)   { benchMatMul32(b, 1, 128) }
func BenchmarkMatMul32Serial256(b *testing.B)   { benchMatMul32(b, 1, 256) }
func BenchmarkMatMul32Serial512(b *testing.B)   { benchMatMul32(b, 1, 512) }
func BenchmarkMatMul32Parallel128(b *testing.B) { benchMatMul32(b, runtime.NumCPU(), 128) }
func BenchmarkMatMul32Parallel256(b *testing.B) { benchMatMul32(b, runtime.NumCPU(), 256) }
func BenchmarkMatMul32Parallel512(b *testing.B) { benchMatMul32(b, runtime.NumCPU(), 512) }

// Fused segment attention at a serving-shaped workload (512 nodes, dim 64,
// 4 heads, band-style pair list): float64 forward vs the float32 kernel in
// both scratch layouts. The layouts are bit-identical in output, so the
// delta is pure memory-traffic effect.
const (
	benchAttnRows  = 512
	benchAttnDim   = 64
	benchAttnHeads = 4
)

func benchAttnInputs32(rng *rand.Rand) (q, k, v, ew *F32, recv, send, edge []int32, byRecv, bySend, byEdge *Segments) {
	E, P := 2*benchAttnRows, 6*benchAttnRows
	recv, send, edge = randomPairs(rng, benchAttnRows, E, P)
	byRecv = BuildSegments(recv, benchAttnRows)
	bySend = BuildSegments(send, benchAttnRows)
	byEdge = BuildSegments(edge, E)
	_, q = randF32Pair(rng, benchAttnRows, benchAttnDim)
	_, k = randF32Pair(rng, benchAttnRows, benchAttnDim)
	_, v = randF32Pair(rng, benchAttnRows, benchAttnDim)
	_, ew = randF32Pair(rng, E, benchAttnDim)
	return
}

func benchFusedAttention32(b *testing.B, layout AttnLayout) {
	rng := rand.New(rand.NewSource(77))
	q, k, v, ew, recv, send, edge, byRecv, _, byEdge := benchAttnInputs32(rng)
	arena := NewArena()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		att, eo := FusedSegmentAttention32(q, k, v, ew, recv, send, edge, byRecv, byEdge, benchAttnHeads, layout, arena)
		arena.PutF32(att)
		arena.PutF32(eo)
	}
}

func BenchmarkFusedAttention32HeadMajor(b *testing.B)   { benchFusedAttention32(b, LayoutHeadMajor) }
func BenchmarkFusedAttention32Interleaved(b *testing.B) { benchFusedAttention32(b, LayoutInterleaved) }

func BenchmarkFusedAttention64(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	q32, k32, v32, ew32, recv, send, edge, byRecv, bySend, byEdge := benchAttnInputs32(rng)
	q, k, v, ew := q32.Upcast(), k32.Upcast(), v32.Upcast(), ew32.Upcast()
	arena := NewArena()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FusedSegmentAttention(q, k, v, ew, recv, send, edge, byRecv, bySend, byEdge, benchAttnHeads, arena)
	}
}
