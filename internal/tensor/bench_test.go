package tensor

import (
	"runtime"
	"testing"

	"mega/internal/compute"
)

// Serial-vs-parallel kernel benchmarks. "Serial" pins the compute pool to
// one thread (the pre-pool code path: every kernel runs inline on the
// caller); "Parallel" opens it to every core. Because the kernels are
// bit-deterministic at any thread count, the two configurations compute
// identical results — these benchmarks measure pure scheduling win.
// BENCH_tensor.json in the repo root records a reference run.

func benchMatMul(b *testing.B, threads, size int) {
	prev := compute.SetMaxThreads(threads)
	defer compute.SetMaxThreads(prev)
	x := randT(1001, size, size)
	w := randT(1002, size, size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, w)
	}
	flops := 2 * float64(size) * float64(size) * float64(size)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkMatMulSerial128(b *testing.B)   { benchMatMul(b, 1, 128) }
func BenchmarkMatMulSerial256(b *testing.B)   { benchMatMul(b, 1, 256) }
func BenchmarkMatMulSerial512(b *testing.B)   { benchMatMul(b, 1, 512) }
func BenchmarkMatMulParallel128(b *testing.B) { benchMatMul(b, runtime.NumCPU(), 128) }
func BenchmarkMatMulParallel256(b *testing.B) { benchMatMul(b, runtime.NumCPU(), 256) }
func BenchmarkMatMulParallel512(b *testing.B) { benchMatMul(b, runtime.NumCPU(), 512) }

func benchMatMulBackward(b *testing.B, threads, size int) {
	prev := compute.SetMaxThreads(threads)
	defer compute.SetMaxThreads(prev)
	x := randT(1003, size, size).RequireGrad()
	w := randT(1004, size, size).RequireGrad()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.ZeroGrad()
		w.ZeroGrad()
		Sum(MatMul(x, w)).Backward()
	}
}

func BenchmarkMatMulBackwardSerial512(b *testing.B) { benchMatMulBackward(b, 1, 512) }
func BenchmarkMatMulBackwardParallel512(b *testing.B) {
	benchMatMulBackward(b, runtime.NumCPU(), 512)
}

// benchElementwise measures the flat-split ops on a tensor large enough
// to cross elemGrain many times over.
func benchElementwise(b *testing.B, threads int) {
	prev := compute.SetMaxThreads(threads)
	defer compute.SetMaxThreads(prev)
	x := randT(1005, 1024, 512)
	y := randT(1006, 1024, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Add(Mul(x, y), Tanh(x))
	}
}

func BenchmarkElementwiseSerial(b *testing.B)   { benchElementwise(b, 1) }
func BenchmarkElementwiseParallel(b *testing.B) { benchElementwise(b, runtime.NumCPU()) }

func benchLayerNorm(b *testing.B, threads int) {
	prev := compute.SetMaxThreads(threads)
	defer compute.SetMaxThreads(prev)
	x := randT(1007, 4096, 128).RequireGrad()
	g := Full(1, 128, 1).RequireGrad()
	bt := Zeros(1, 128).RequireGrad()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.ZeroGrad()
		g.ZeroGrad()
		bt.ZeroGrad()
		Sum(LayerNorm(x, g, bt)).Backward()
	}
}

func BenchmarkLayerNormSerial(b *testing.B)   { benchLayerNorm(b, 1) }
func BenchmarkLayerNormParallel(b *testing.B) { benchLayerNorm(b, runtime.NumCPU()) }
