package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// Numeric gradient checking: every analytic backward pass is compared
// against a central-difference estimate. A case builds a scalar loss from
// fresh clones of its input templates; the harness runs the analytic
// backward once, then re-evaluates the loss at x±eps for every input
// element and compares.
//
// Central differences have truncation error O(eps²) and roundoff error
// O(machEps/eps); eps = 1e-5 on O(1) values keeps both near 1e-10, far
// below the relative tolerance used here.

type gradCase struct {
	name string
	// inputs are the gradient-checked templates; build receives clones
	// (with grad enabled on the analytic pass) and returns a 1×1 loss.
	// Constants that carry no gradient (targets, labels, masks) are
	// captured by the closure instead.
	inputs []*Tensor
	build  func(ins []*Tensor) *Tensor
	tol    float64 // relative tolerance (default 1e-6)
}

const gradEps = 1e-5

func checkGradients(t *testing.T, tc gradCase) {
	t.Helper()
	tol := tc.tol
	if tol == 0 {
		tol = 1e-6
	}

	// Analytic pass.
	ins := make([]*Tensor, len(tc.inputs))
	for i, in := range tc.inputs {
		ins[i] = in.Clone().RequireGrad()
	}
	loss := tc.build(ins)
	if loss.Rows() != 1 || loss.Cols() != 1 {
		t.Fatalf("%s: loss is %dx%d, want 1x1", tc.name, loss.Rows(), loss.Cols())
	}
	loss.Backward()

	// Numeric pass, one element at a time.
	eval := func(pi, e int, v float64) float64 {
		probe := make([]*Tensor, len(tc.inputs))
		for i, in := range tc.inputs {
			probe[i] = in.Clone()
		}
		probe[pi].Data[e] = v
		return tc.build(probe).Item()
	}
	for pi, in := range ins {
		if in.Grad == nil {
			t.Errorf("%s: input %d has no gradient after Backward", tc.name, pi)
			continue
		}
		for e := range in.Data {
			orig := tc.inputs[pi].Data[e]
			num := (eval(pi, e, orig+gradEps) - eval(pi, e, orig-gradEps)) / (2 * gradEps)
			got := in.Grad[e]
			scale := math.Max(1, math.Max(math.Abs(got), math.Abs(num)))
			if diff := math.Abs(got - num); diff > tol*scale {
				t.Errorf("%s: input %d elem %d: analytic %.10g, numeric %.10g (diff %.3g)",
					tc.name, pi, e, got, num, diff)
			}
		}
	}
}

// weightedSum reduces a tensor-valued op to a scalar with fixed non-uniform
// weights, so gradient errors cannot cancel across elements the way they
// would under a plain Sum.
func weightedSum(y *Tensor) *Tensor {
	w := Zeros(y.Rows(), y.Cols())
	for i := range w.Data {
		w.Data[i] = 1.5 + math.Cos(float64(i))
	}
	return Sum(Mul(y, w))
}

// randT returns a seeded rows×cols standard-normal tensor.
func randT(seed int64, rows, cols int) *Tensor {
	return Randn(rand.New(rand.NewSource(seed)), rows, cols, 1)
}

// randAway returns values with |x| ≥ margin, for ops with kinks or poles
// at zero (ReLU, Reciprocal, Div).
func randAway(seed int64, rows, cols int, margin float64) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := Zeros(rows, cols)
	for i := range t.Data {
		v := margin + rng.Float64()
		if rng.Intn(2) == 0 {
			v = -v
		}
		t.Data[i] = v
	}
	return t
}

func TestGradients(t *testing.T) {
	maskAlt := make([]bool, 6*5)
	for i := range maskAlt {
		maskAlt[i] = i%3 != 1
	}
	maskRows := make([]bool, 4*6)
	for i := range maskRows {
		maskRows[i] = i%2 == 0 || i/6 == 2
	}
	gatherIdx := []int32{0, 3, 1, 3, 4, 0, 2}
	scatterIdx := []int32{2, 0, 1, 0, 3, 2, 1}
	segIdx := []int32{0, 0, 1, 2, 2, 2, 4} // segment 3 deliberately empty
	embedIDs := []int32{1, 0, 2, 1, 1, 3}
	ceLabels := []int{2, 0, 3, 1, 2}

	maeTarget := randT(103, 6, 3)
	maePred := maeTarget.Clone()
	for i := range maePred.Data {
		// Keep |pred−target| ≥ 0.3 so no perturbation crosses the kink.
		if i%2 == 0 {
			maePred.Data[i] += 0.3 + 0.1*float64(i%5)
		} else {
			maePred.Data[i] -= 0.3 + 0.1*float64(i%7)
		}
	}

	cases := []gradCase{
		{name: "MatMul", inputs: []*Tensor{randT(1, 5, 7), randT(2, 7, 4)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(MatMul(ins[0], ins[1])) }},
		{name: "Add", inputs: []*Tensor{randT(3, 6, 5), randT(4, 6, 5)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(Add(ins[0], ins[1])) }},
		{name: "Sub", inputs: []*Tensor{randT(5, 6, 5), randT(6, 6, 5)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(Sub(ins[0], ins[1])) }},
		{name: "Mul", inputs: []*Tensor{randT(7, 6, 5), randT(8, 6, 5)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(Mul(ins[0], ins[1])) }},
		{name: "Div", inputs: []*Tensor{randT(9, 6, 5), randAway(10, 6, 5, 0.5)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(Div(ins[0], ins[1])) }},
		{name: "Scale", inputs: []*Tensor{randT(11, 4, 6)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(Scale(ins[0], -1.7)) }},
		{name: "AddScalar", inputs: []*Tensor{randT(12, 4, 6)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(AddScalar(ins[0], 2.5)) }},
		{name: "Reciprocal", inputs: []*Tensor{randAway(13, 4, 6, 0.5)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(Reciprocal(ins[0])) }},
		{name: "Exp", inputs: []*Tensor{randT(14, 4, 6)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(Exp(ins[0])) }},
		{name: "Sigmoid", inputs: []*Tensor{randT(15, 4, 6)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(Sigmoid(ins[0])) }},
		{name: "Tanh", inputs: []*Tensor{randT(16, 4, 6)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(Tanh(ins[0])) }},
		{name: "ReLU", inputs: []*Tensor{randAway(17, 4, 6, 0.2)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(ReLU(ins[0])) }},
		{name: "AddRowVec", inputs: []*Tensor{randT(18, 6, 5), randT(19, 1, 5)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(AddRowVec(ins[0], ins[1])) }},
		{name: "MulColVec", inputs: []*Tensor{randT(20, 6, 5), randT(21, 6, 1)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(MulColVec(ins[0], ins[1])) }},
		{name: "RowSoftmax", inputs: []*Tensor{randT(22, 5, 6)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(RowSoftmax(ins[0])) }},
		{name: "MaskedRowSoftmax", inputs: []*Tensor{randT(23, 4, 6)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(MaskedRowSoftmax(ins[0], maskRows)) }},
		{name: "Sum", inputs: []*Tensor{randT(24, 5, 7)},
			build: func(ins []*Tensor) *Tensor { return Sum(ins[0]) }},
		{name: "Mean", inputs: []*Tensor{randT(25, 5, 7)},
			build: func(ins []*Tensor) *Tensor { return Mean(ins[0]) }},
		{name: "RowSum", inputs: []*Tensor{randT(26, 5, 7)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(RowSum(ins[0])) }},
		{name: "RowDot", inputs: []*Tensor{randT(27, 5, 7), randT(28, 5, 7)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(RowDot(ins[0], ins[1])) }},
		{name: "ConcatCols", inputs: []*Tensor{randT(29, 5, 3), randT(30, 5, 2), randT(31, 5, 4)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(ConcatCols(ins[0], ins[1], ins[2])) }},
		{name: "NarrowCols", inputs: []*Tensor{randT(32, 5, 7)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(NarrowCols(ins[0], 2, 3)) }},
		{name: "MulMask", inputs: []*Tensor{randT(33, 6, 5)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(MulMask(ins[0], maskAlt)) }},
		{name: "LayerNorm", tol: 1e-5,
			inputs: []*Tensor{randT(34, 7, 6), AddScalar(randT(35, 1, 6), 1.5).Detach(), randT(36, 1, 6)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(LayerNorm(ins[0], ins[1], ins[2])) }},
		{name: "BatchNorm", tol: 1e-5,
			inputs: []*Tensor{randT(37, 7, 6), AddScalar(randT(38, 1, 6), 1.5).Detach(), randT(39, 1, 6)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(BatchNorm(ins[0], ins[1], ins[2])) }},
		{name: "GatherRows", inputs: []*Tensor{randT(40, 5, 4)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(GatherRows(ins[0], gatherIdx)) }},
		{name: "ScatterAddRows", inputs: []*Tensor{randT(41, 7, 4)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(ScatterAddRows(ins[0], scatterIdx, 4)) }},
		{name: "SegmentMean", inputs: []*Tensor{randT(42, 7, 4)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(SegmentMean(ins[0], segIdx, 5)) }},
		{name: "Narrow", inputs: []*Tensor{randT(43, 7, 4)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(Narrow(ins[0], 2, 4)) }},
		{name: "PadRows", inputs: []*Tensor{randT(44, 5, 4)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(PadRows(ins[0], 2, 3)) }},
		{name: "EmbedRows", inputs: []*Tensor{randT(45, 4, 5)},
			build: func(ins []*Tensor) *Tensor { return weightedSum(EmbedRows(ins[0], embedIDs)) }},
		{name: "MSELoss", inputs: []*Tensor{randT(46, 6, 3)},
			build: func(ins []*Tensor) *Tensor { return MSELoss(ins[0], randT(103, 6, 3)) }},
		{name: "MAELoss", inputs: []*Tensor{maePred},
			build: func(ins []*Tensor) *Tensor { return MAELoss(ins[0], maeTarget) }},
		{name: "CrossEntropyLoss", inputs: []*Tensor{randT(47, 5, 4)},
			build: func(ins []*Tensor) *Tensor { return CrossEntropyLoss(ins[0], ceLabels) }},
		{name: "Composite", tol: 1e-5,
			// A deeper graph exercising grad accumulation through shared
			// tensors: x feeds both branches.
			inputs: []*Tensor{randT(48, 5, 6), randT(49, 6, 6)},
			build: func(ins []*Tensor) *Tensor {
				h := MatMul(ins[0], ins[1])
				return weightedSum(Add(RowSoftmax(h), Tanh(h)))
			}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) { checkGradients(t, tc) })
	}
}
