package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestSIMDKernelsMatchReference pins whichever saxpy32/matmulTile32
// implementation is active (SSE on amd64, portable elsewhere) against
// plain scalar loops, bit for bit. Lengths sweep across the 16-wide,
// 4-wide, and scalar tails; inputs include ±0 and a NaN multiplier (the
// zero-skip must treat NaN as nonzero, like the scalar kernels' av == 0
// test).
func TestSIMDKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fill := func(n int) []float32 {
		v := make([]float32, n)
		for i := range v {
			switch rng.Intn(8) {
			case 0:
				v[i] = 0
			case 1:
				v[i] = float32(math.Copysign(0, -1))
			default:
				v[i] = float32(rng.NormFloat64())
			}
		}
		return v
	}

	for _, n := range []int{0, 1, 3, 4, 5, 15, 16, 17, 31, 32, 33, 64, 100} {
		for _, alpha := range []float32{0, -0.37, 2.5, float32(math.NaN())} {
			x := fill(n)
			got := fill(n)
			want := append([]float32(nil), got...)
			for i := range want {
				want[i] += alpha * x[i]
			}
			saxpy32(alpha, x, got)
			for i := range want {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("saxpy32 n=%d alpha=%v: elem %d got %x want %x",
						n, alpha, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
				}
			}
		}
	}

	for _, k := range []int{0, 1, 2, 7, 64, 128} {
		for _, stride := range []int{16, 17, 48, 64} {
			a := fill(k)
			if k > 3 {
				a[1], a[3] = 0, float32(math.NaN())
			}
			bsz := 16
			if k > 0 {
				bsz = (k-1)*stride + 16
			}
			b := fill(bsz)
			got := fill(16)
			want := append([]float32(nil), got...)
			for p := 0; p < k; p++ {
				av := a[p]
				if av == 0 {
					continue
				}
				for j := 0; j < 16; j++ {
					want[j] += av * b[p*stride+j]
				}
			}
			matmulTile32(a, b, got, stride)
			for j := range want {
				if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
					t.Fatalf("matmulTile32 k=%d stride=%d: col %d got %x want %x",
						k, stride, j, math.Float32bits(got[j]), math.Float32bits(want[j]))
				}
			}
		}
	}
}
