package tensor

import "sync"

// Arena is a step-scoped pool of scratch buffers for the fused attention
// path. Training steps and serve batches allocate the same buffer shapes
// over and over; checking them out of a pool instead of the heap makes the
// steady-state attention path allocation-free.
//
// Buffers are bucketed by exact length and precision (float64 for the
// training/serving tape path, float32 for the inference fast path). Get
// returns a zeroed buffer (the fused kernels accumulate into their
// scratch, so a dirty buffer would be a correctness bug, not just noise).
// Put zeroes before parking so the cost is paid off the critical Get path
// of the next step. A dirty-buffer Get32 variant with kernel-side clears
// was tried and measured ~25% slower end to end on the serving box —
// zeroing a just-released buffer while its lines are still cache-resident
// beats clearing a long-parked cold one right before use.
//
// An Arena is safe for concurrent use: serve workers running forwards in
// parallel share one arena per server. A nil *Arena is valid and degrades
// to plain make, so the staged path and tests pay nothing.
type Arena struct {
	mu      sync.Mutex
	pools   map[int][][]float64
	pools32 map[int][][]float32
	f64     ArenaPrecisionStats
	f32     ArenaPrecisionStats
}

// ArenaPrecisionStats are the occupancy counters for one precision's
// buckets. All byte figures count buffer payload (len × element size).
type ArenaPrecisionStats struct {
	// Borrows counts Get calls served (hit or miss).
	Borrows uint64 `json:"borrows"`
	// BucketHits counts Gets satisfied from a parked buffer.
	BucketHits uint64 `json:"bucket_hits"`
	// BucketMisses counts Gets that fell through to make.
	BucketMisses uint64 `json:"bucket_misses"`
	// InUseBytes is the payload currently checked out (Get minus Put).
	InUseBytes uint64 `json:"in_use_bytes"`
	// PeakBytes is the high-water mark of InUseBytes.
	PeakBytes uint64 `json:"peak_bytes"`
}

// ArenaStats is a point-in-time snapshot of both precisions' counters,
// exported on the serve /metrics endpoint.
type ArenaStats struct {
	F64 ArenaPrecisionStats `json:"f64"`
	F32 ArenaPrecisionStats `json:"f32"`
}

// NewArena creates an empty arena.
func NewArena() *Arena {
	return &Arena{
		pools:   make(map[int][][]float64),
		pools32: make(map[int][][]float32),
	}
}

// borrow updates one precision's counters for a Get of payloadBytes.
func (s *ArenaPrecisionStats) borrow(hit bool, payloadBytes uint64) {
	s.Borrows++
	if hit {
		s.BucketHits++
	} else {
		s.BucketMisses++
	}
	s.InUseBytes += payloadBytes
	if s.InUseBytes > s.PeakBytes {
		s.PeakBytes = s.InUseBytes
	}
}

// release updates one precision's counters for a Put of payloadBytes.
// Foreign buffers (never borrowed here) clamp at zero instead of
// underflowing.
func (s *ArenaPrecisionStats) release(payloadBytes uint64) {
	if s.InUseBytes >= payloadBytes {
		s.InUseBytes -= payloadBytes
	} else {
		s.InUseBytes = 0
	}
}

// Get checks out a zeroed float64 buffer of length n.
func (a *Arena) Get(n int) []float64 {
	if a == nil || n == 0 {
		return make([]float64, n)
	}
	a.mu.Lock()
	bucket := a.pools[n]
	if len(bucket) == 0 {
		a.f64.borrow(false, uint64(n)*8)
		a.mu.Unlock()
		return make([]float64, n)
	}
	buf := bucket[len(bucket)-1]
	a.pools[n] = bucket[:len(bucket)-1]
	a.f64.borrow(true, uint64(n)*8)
	a.mu.Unlock()
	return buf
}

// Put zeroes buf and parks it for reuse. Putting a buffer twice, or using
// it after Put, is a caller bug (the usual pool contract). A nil arena
// drops the buffer for the GC.
func (a *Arena) Put(buf []float64) {
	if a == nil || len(buf) == 0 {
		return
	}
	for i := range buf {
		buf[i] = 0
	}
	a.mu.Lock()
	a.pools[len(buf)] = append(a.pools[len(buf)], buf)
	a.f64.release(uint64(len(buf)) * 8)
	a.mu.Unlock()
}

// Get32 checks out a zeroed float32 buffer of length n — the inference
// fast path's counterpart of Get.
func (a *Arena) Get32(n int) []float32 {
	if a == nil || n == 0 {
		return make([]float32, n)
	}
	a.mu.Lock()
	bucket := a.pools32[n]
	if len(bucket) == 0 {
		a.f32.borrow(false, uint64(n)*4)
		a.mu.Unlock()
		return make([]float32, n)
	}
	buf := bucket[len(bucket)-1]
	a.pools32[n] = bucket[:len(bucket)-1]
	a.f32.borrow(true, uint64(n)*4)
	a.mu.Unlock()
	return buf
}

// Put32 zeroes buf and parks it, under the same contract as Put.
func (a *Arena) Put32(buf []float32) {
	if a == nil || len(buf) == 0 {
		return
	}
	for i := range buf {
		buf[i] = 0
	}
	a.mu.Lock()
	a.pools32[len(buf)] = append(a.pools32[len(buf)], buf)
	a.f32.release(uint64(len(buf)) * 4)
	a.mu.Unlock()
}

// Stats snapshots the occupancy counters. A nil arena reports zeros.
func (a *Arena) Stats() ArenaStats {
	if a == nil {
		return ArenaStats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return ArenaStats{F64: a.f64, F32: a.f32}
}

// Buffered reports how many buffers are currently parked across both
// precisions (test hook).
func (a *Arena) Buffered() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, b := range a.pools {
		n += len(b)
	}
	for _, b := range a.pools32 {
		n += len(b)
	}
	return n
}
