package tensor

import "sync"

// Arena is a step-scoped pool of float64 scratch buffers for the fused
// attention path. Training steps and serve batches allocate the same
// buffer shapes over and over; checking them out of a pool instead of
// the heap makes the steady-state attention path allocation-free.
//
// Buffers are bucketed by exact length. Get returns a zeroed buffer (the
// fused kernels accumulate into their scratch, so a dirty buffer would be
// a correctness bug, not just noise). Put zeroes before parking so the
// cost is paid off the critical Get path of the next step.
//
// An Arena is safe for concurrent use: serve workers running forwards in
// parallel share one arena per server. A nil *Arena is valid and degrades
// to plain make, so the staged path and tests pay nothing.
type Arena struct {
	mu    sync.Mutex
	pools map[int][][]float64
}

// NewArena creates an empty arena.
func NewArena() *Arena {
	return &Arena{pools: make(map[int][][]float64)}
}

// Get checks out a zeroed buffer of length n.
func (a *Arena) Get(n int) []float64 {
	if a == nil || n == 0 {
		return make([]float64, n)
	}
	a.mu.Lock()
	bucket := a.pools[n]
	if len(bucket) == 0 {
		a.mu.Unlock()
		return make([]float64, n)
	}
	buf := bucket[len(bucket)-1]
	a.pools[n] = bucket[:len(bucket)-1]
	a.mu.Unlock()
	return buf
}

// Put zeroes buf and parks it for reuse. Putting a buffer twice, or using
// it after Put, is a caller bug (the usual pool contract). A nil arena
// drops the buffer for the GC.
func (a *Arena) Put(buf []float64) {
	if a == nil || len(buf) == 0 {
		return
	}
	for i := range buf {
		buf[i] = 0
	}
	a.mu.Lock()
	a.pools[len(buf)] = append(a.pools[len(buf)], buf)
	a.mu.Unlock()
}

// Buffered reports how many buffers are currently parked (test hook).
func (a *Arena) Buffered() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, b := range a.pools {
		n += len(b)
	}
	return n
}
