package tensor

import (
	"math/rand"
	"testing"

	"mega/internal/compute"
)

// Parallel-vs-serial equivalence: every kernel must produce bit-identical
// forward values AND gradients at any thread count. The kernels partition
// work so that each output element (and each gradient accumulation order)
// is independent of how ranges are split across goroutines; these tests
// pin that guarantee with exact float64 equality, not tolerances.

// equivCase builds a tensor-valued result from clones of its inputs; the
// harness reduces it with weightedSum, backpropagates, and compares
// forward data, loss, and every input gradient across thread counts.
type equivCase struct {
	name   string
	inputs []*Tensor
	build  func(ins []*Tensor) *Tensor
}

// runAt executes the case under an n-thread budget and returns the forward
// data, scalar loss, and input gradients.
func runAt(n int, tc equivCase) (out []float64, loss float64, grads [][]float64) {
	prev := compute.SetMaxThreads(n)
	defer compute.SetMaxThreads(prev)
	ins := make([]*Tensor, len(tc.inputs))
	for i, in := range tc.inputs {
		ins[i] = in.Clone().RequireGrad()
	}
	y := tc.build(ins)
	l := weightedSum(y)
	l.Backward()
	grads = make([][]float64, len(ins))
	for i, in := range ins {
		grads[i] = in.Grad
	}
	return y.Data, l.Item(), grads
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestParallelEquivalence(t *testing.T) {
	// Sizes sit above the parallel grains (elemGrain 4096, flopGrain 32768)
	// so the kernels genuinely split; small shapes would run inline and
	// test nothing.
	bigMask := make([]bool, 300*40)
	for i := range bigMask {
		bigMask[i] = i%7 != 2
	}
	gatherIdx := make([]int32, 2000)
	scatterIdx := make([]int32, 2000)
	segIdx := make([]int32, 2000)
	idxRng := rand.New(rand.NewSource(11))
	for i := range gatherIdx {
		gatherIdx[i] = int32(idxRng.Intn(500))
		scatterIdx[i] = int32(idxRng.Intn(300))
		segIdx[i] = int32(idxRng.Intn(40))
	}
	ceLabels := make([]int, 500)
	for i := range ceLabels {
		ceLabels[i] = idxRng.Intn(10)
	}
	maeTarget := randT(200, 200, 100)

	cases := []equivCase{
		{name: "MatMul", inputs: []*Tensor{randT(50, 70, 90), randT(51, 90, 110)},
			build: func(ins []*Tensor) *Tensor { return MatMul(ins[0], ins[1]) }},
		{name: "MatMulTall", inputs: []*Tensor{randT(52, 600, 30), randT(53, 30, 70)},
			build: func(ins []*Tensor) *Tensor { return MatMul(ins[0], ins[1]) }},
		{name: "Elementwise", inputs: []*Tensor{randT(54, 130, 70), randAway(55, 130, 70, 0.3)},
			build: func(ins []*Tensor) *Tensor {
				return Div(Add(Mul(ins[0], ins[1]), Tanh(ins[0])), AddScalar(Exp(Scale(ins[1], -0.5)), 1))
			}},
		{name: "ReLUSigmoid", inputs: []*Tensor{randAway(56, 130, 70, 0.2)},
			build: func(ins []*Tensor) *Tensor { return Sigmoid(ReLU(ins[0])) }},
		{name: "RowSoftmax", inputs: []*Tensor{randT(57, 300, 40)},
			build: func(ins []*Tensor) *Tensor { return RowSoftmax(ins[0]) }},
		{name: "MaskedRowSoftmax", inputs: []*Tensor{randT(58, 300, 40)},
			build: func(ins []*Tensor) *Tensor { return MaskedRowSoftmax(ins[0], bigMask) }},
		{name: "LayerNorm", inputs: []*Tensor{randT(59, 1000, 64), randT(60, 1, 64), randT(61, 1, 64)},
			build: func(ins []*Tensor) *Tensor { return LayerNorm(ins[0], ins[1], ins[2]) }},
		{name: "BatchNorm", inputs: []*Tensor{randT(62, 1000, 64), randT(63, 1, 64), randT(64, 1, 64)},
			build: func(ins []*Tensor) *Tensor { return BatchNorm(ins[0], ins[1], ins[2]) }},
		{name: "AddRowVec", inputs: []*Tensor{randT(65, 600, 80), randT(66, 1, 80)},
			build: func(ins []*Tensor) *Tensor { return AddRowVec(ins[0], ins[1]) }},
		{name: "MulColVec", inputs: []*Tensor{randT(67, 600, 80), randT(68, 600, 1)},
			build: func(ins []*Tensor) *Tensor { return MulColVec(ins[0], ins[1]) }},
		{name: "GatherRows", inputs: []*Tensor{randT(69, 500, 64)},
			build: func(ins []*Tensor) *Tensor { return GatherRows(ins[0], gatherIdx) }},
		{name: "ScatterAddRows", inputs: []*Tensor{randT(70, 2000, 64)},
			build: func(ins []*Tensor) *Tensor { return ScatterAddRows(ins[0], scatterIdx, 300) }},
		{name: "SegmentMean", inputs: []*Tensor{randT(71, 2000, 64)},
			build: func(ins []*Tensor) *Tensor { return SegmentMean(ins[0], segIdx, 40) }},
		{name: "ConcatNarrow", inputs: []*Tensor{randT(72, 300, 40), randT(73, 300, 30)},
			build: func(ins []*Tensor) *Tensor {
				c := ConcatCols(ins[0], ins[1])
				return Add(NarrowCols(c, 10, 50), Narrow(PadRows(NarrowCols(c, 0, 50), 3, 5), 3, 300))
			}},
		{name: "RowOps", inputs: []*Tensor{randT(74, 600, 60), randT(75, 600, 60)},
			build: func(ins []*Tensor) *Tensor { return MulColVec(ins[0], RowDot(ins[0], ins[1])) }},
		{name: "CrossEntropy", inputs: []*Tensor{randT(76, 500, 10)},
			build: func(ins []*Tensor) *Tensor { return CrossEntropyLoss(ins[0], ceLabels) }},
		{name: "MAELoss", inputs: []*Tensor{randT(77, 200, 100)},
			build: func(ins []*Tensor) *Tensor { return MAELoss(ins[0], maeTarget) }},
		{name: "SumMean", inputs: []*Tensor{randT(78, 200, 100)},
			build: func(ins []*Tensor) *Tensor { return Add(Sum(ins[0]), Mean(ins[0])) }},
		{name: "AttentionBlock", inputs: []*Tensor{randT(79, 200, 64), randT(80, 64, 64), randT(81, 64, 200)},
			// A transformer-shaped composite: projection, scores, softmax,
			// weighted values, normalisation.
			build: func(ins []*Tensor) *Tensor {
				q := MatMul(ins[0], ins[1])
				att := RowSoftmax(Scale(MatMul(q, ins[2]), 0.125))
				g := Full(1, 64, 1)
				b := Zeros(1, 64)
				return LayerNorm(MatMul(att, q), g, b)
			}},
	}

	threads := []int{2, 3, 8, 32}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			refOut, refLoss, refGrads := runAt(1, tc)
			for _, n := range threads {
				out, loss, grads := runAt(n, tc)
				if loss != refLoss {
					t.Errorf("threads=%d: loss %v != serial %v", n, loss, refLoss)
				}
				if !sameFloats(out, refOut) {
					t.Errorf("threads=%d: forward output differs from serial", n)
				}
				for i := range grads {
					if !sameFloats(grads[i], refGrads[i]) {
						t.Errorf("threads=%d: gradient of input %d differs from serial", n, i)
					}
				}
			}
		})
	}
}

// TestMatMulMatchesNaive pins the blocked kernel against the textbook
// triple loop on shapes that are not multiples of the k-block.
func TestMatMulMatchesNaive(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {3, 65, 2}, {17, 64, 9}, {33, 130, 21}, {5, 200, 40}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randT(int64(90+m), m, k), randT(int64(91+n), k, n)
		got := MatMul(a, b)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				for p := 0; p < k; p++ {
					want += a.At(i, p) * b.At(p, j)
				}
				if diff := got.At(i, j) - want; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("%dx%dx%d: out[%d,%d] = %v, naive %v", m, k, n, i, j, got.At(i, j), want)
				}
			}
		}
	}
}
