package tensor

import (
	"math"
	"testing"
)

// TestBackwardFromMatchesBackward checks that seeding a scalar root with
// grad 1 and calling BackwardFrom reproduces Backward exactly.
func TestBackwardFromMatchesBackward(t *testing.T) {
	build := func() (*Tensor, *Tensor) {
		x := New(3, 2, []float64{1, -2, 3, 0.5, -1.5, 4}).RequireGrad()
		y := Sum(Mul(Scale(x, 2), x)) // 2·Σx²
		return x, y
	}
	x1, y1 := build()
	y1.Backward()
	x2, y2 := build()
	y2.ensureGrad()
	y2.Grad[0] = 1
	BackwardFrom(y2)
	for i := range x1.Grad {
		if math.Float64bits(x1.Grad[i]) != math.Float64bits(x2.Grad[i]) {
			t.Fatalf("grad[%d]: Backward %v vs BackwardFrom %v", i, x1.Grad[i], x2.Grad[i])
		}
	}
}

// TestBackwardFromMultiRoot checks that two roots sharing a subgraph run
// each backFn once, accumulating both contributions: with a = 2x,
// out1 = 3a, out2 = 5a and unit output grads, dx = 2·3 + 2·5 = 16.
func TestBackwardFromMultiRoot(t *testing.T) {
	x := New(2, 2, []float64{1, 2, 3, 4}).RequireGrad()
	a := Scale(x, 2)
	out1 := Scale(a, 3)
	out2 := Scale(a, 5)
	for _, out := range []*Tensor{out1, out2} {
		out.ensureGrad()
		for i := range out.Grad {
			out.Grad[i] = 1
		}
	}
	BackwardFrom(out1, out2)
	for i, g := range x.Grad {
		if g != 16 {
			t.Fatalf("x.Grad[%d] = %v, want 16", i, g)
		}
	}
}

// TestBackwardFromComposesTapes splits y = 3·x² across two tapes joined
// by a detached leaf and checks the chained gradients match the single
// tape bit for bit. This is the shard engine's cross-tape protocol:
// downstream runs first, its leaf grads seed the upstream outputs.
func TestBackwardFromComposesTapes(t *testing.T) {
	vals := []float64{1, -2, 0.5, 3}

	// Single tape reference.
	xr := New(2, 2, append([]float64(nil), vals...)).RequireGrad()
	yr := Scale(Mul(xr, xr), 3)
	yr.ensureGrad()
	for i := range yr.Grad {
		yr.Grad[i] = 1
	}
	BackwardFrom(yr)

	// Tape 1: out = x². Tape 2: z = 3·leaf, where leaf shares out's data.
	x := New(2, 2, append([]float64(nil), vals...)).RequireGrad()
	out := Mul(x, x)
	leaf := New(2, 2, out.Data).RequireGrad()
	z := Scale(leaf, 3)
	z.ensureGrad()
	for i := range z.Grad {
		z.Grad[i] = 1
	}
	BackwardFrom(z)
	out.ensureGrad()
	copy(out.Grad, leaf.Grad)
	BackwardFrom(out)

	for i := range xr.Grad {
		if math.Float64bits(xr.Grad[i]) != math.Float64bits(x.Grad[i]) {
			t.Fatalf("composed grad[%d] = %v, single-tape %v", i, x.Grad[i], xr.Grad[i])
		}
	}
}

// TestBackwardFromPreSeededIntermediate checks that a gradient pre-seeded
// into a mid-tape tensor (the kmod fold-back path) is accumulated on top
// of the in-tape contributions rather than overwritten.
func TestBackwardFromPreSeededIntermediate(t *testing.T) {
	x := New(1, 3, []float64{1, 2, 3}).RequireGrad()
	mid := Scale(x, 2)
	out := Scale(mid, 3)
	out.ensureGrad()
	for i := range out.Grad {
		out.Grad[i] = 1
	}
	mid.ensureGrad()
	for i := range mid.Grad {
		mid.Grad[i] = 10 // external consumer's contribution
	}
	BackwardFrom(out, mid)
	// dmid = 3 (from out) + 10 (pre-seeded) = 13; dx = 2·13 = 26.
	for i, g := range x.Grad {
		if g != 26 {
			t.Fatalf("x.Grad[%d] = %v, want 26", i, g)
		}
	}
}
