//go:build !amd64

package tensor

// Portable fallbacks for the SSE kernels in simd_amd64.s. Each SSE lane
// performs exactly one of these scalar multiply-adds in the same
// per-element order, so the two implementations are bit-identical — the
// assembly changes throughput, not numerics.

// saxpy32 computes y[i] += alpha*x[i] for i < len(y). len(x) must be at
// least len(y).
func saxpy32(alpha float32, x, y []float32) {
	x = x[:len(y)]
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// matmulTile32 accumulates one 16-column register tile of an output row:
// o[j] += Σ_p a[p]·b[p*stride+j] for j < 16, skipping rows with
// a[p] == 0 like the scalar kernels. len(o) must be at least 16 and
// len(b) at least (len(a)-1)*stride+16.
func matmulTile32(a, b, o []float32, stride int) {
	o = o[:16]
	var s [16]float32
	copy(s[:], o)
	for p, av := range a {
		if av == 0 {
			continue
		}
		row := b[p*stride:]
		for j := range s {
			s[j] += av * row[j]
		}
	}
	copy(o, s[:])
}
