package tensor

import (
	"fmt"
	"math"

	"mega/internal/compute"
)

// Fused banded attention. The staged pipeline materialises five pair-major
// intermediates per head per layer (gathered q/k/v/e rows, scores, exps,
// alphas, weighted values); this file computes the same arithmetic —
// bit-identically — as one custom autograd node that sweeps the pair list
// segment-by-segment and keeps only an [R,heads] max/denominator pair
// between forward and backward. The backward recomputes scores and alphas
// per segment instead of storing them.
//
// Bit-exactness contract: every multi-term accumulation below replicates
// the staged ops' accumulation order (ascending global pair index within
// each segment, the order ScatterAddRows/GatherRows-backward use) and
// their exact multiplication groupings. Parallel sweeps split over
// segment owners — each output row is written by exactly one chunk — so
// results are identical at any thread count, like every kernel in this
// package.

// Segments groups pair indices by an int32 key (receiver row, sender row,
// or edge ID) as a CSR: pairs of key k are Order[Start[k]:Start[k+1]],
// in ascending pair order. Built once per context via a stable counting
// sort and reused across layers and steps.
type Segments struct {
	Order []int32
	Start []int32
}

// BuildSegments groups pair indices 0..len(keys)-1 by keys[p] into
// numKeys segments, preserving ascending pair order within each segment.
func BuildSegments(keys []int32, numKeys int) *Segments {
	for _, k := range keys {
		if k < 0 || int(k) >= numKeys {
			panic(fmt.Sprintf("tensor: segment key %d out of %d", k, numKeys))
		}
	}
	start := make([]int32, numKeys+1)
	for _, k := range keys {
		start[k+1]++
	}
	for i := 0; i < numKeys; i++ {
		start[i+1] += start[i]
	}
	order := make([]int32, len(keys))
	next := make([]int32, numKeys)
	copy(next, start[:numKeys])
	for p, k := range keys {
		order[next[k]] = int32(p)
		next[k]++
	}
	return &Segments{Order: order, Start: start}
}

// Len returns the number of pairs in segment k.
func (s *Segments) Len(k int) int { return int(s.Start[k+1] - s.Start[k]) }

// FusedSegmentAttention computes multi-head scaled dot-product attention
// over a directed pair list in one pass: per pair p with receiver
// r=recv[p], sender s=send[p], edge e=edgeIdx[p],
//
//	score_p^a = ( q_r^a · (k_s^a ⊙ w_e^a) ) / √dk
//
// softmax-normalised per receiver (numerically stable via the per-segment
// max), aggregating alpha·v_s into att[r]. When ew is non-nil it also
// returns the per-edge mean of k⊙w (the GT edge stream input); edgeOut's
// gradient, if any, is folded into the single hand-written backward.
// When ew is nil the keys are unmodulated and edgeOut is nil.
//
// q, k, v are node-major [R,d]; ew is [numEdges,d] or nil. byRecv/bySend
// must group pair indices by recv/send; byEdge (required iff ew != nil)
// groups by edgeIdx. arena (optional) pools the scratch buffers.
func FusedSegmentAttention(q, k, v, ew *Tensor, recv, send, edgeIdx []int32,
	byRecv, bySend, byEdge *Segments, heads int, arena *Arena) (att, edgeOut *Tensor) {

	rows, d := q.rows, q.cols
	assertSameShape("fusedattn q/k", q, k)
	assertSameShape("fusedattn q/v", q, v)
	if heads < 1 || d%heads != 0 {
		panic(fmt.Sprintf("tensor: fusedattn %d cols with %d heads", d, heads))
	}
	P := len(recv)
	if len(send) != P || len(edgeIdx) != P {
		panic(fmt.Sprintf("tensor: fusedattn index lengths %d/%d/%d", len(recv), len(send), len(edgeIdx)))
	}
	numEdges := 0
	if ew != nil {
		if ew.cols != d {
			panic(fmt.Sprintf("tensor: fusedattn edge cols %d != %d", ew.cols, d))
		}
		numEdges = ew.rows
		if byEdge == nil || len(byEdge.Start) != numEdges+1 {
			panic("tensor: fusedattn missing/mis-sized edge segments")
		}
	}
	if byRecv == nil || len(byRecv.Start) != rows+1 || bySend == nil || len(bySend.Start) != rows+1 {
		panic("tensor: fusedattn missing/mis-sized recv/send segments")
	}
	for p := 0; p < P; p++ {
		if r := recv[p]; r < 0 || int(r) >= rows {
			panic(fmt.Sprintf("tensor: fusedattn recv %d out of %d rows", r, rows))
		}
		if s := send[p]; s < 0 || int(s) >= rows {
			panic(fmt.Sprintf("tensor: fusedattn send %d out of %d rows", s, rows))
		}
		if ew != nil {
			if e := edgeIdx[p]; e < 0 || int(e) >= numEdges {
				panic(fmt.Sprintf("tensor: fusedattn edge %d out of %d", e, numEdges))
			}
		}
	}

	dk := d / heads
	scale := 1 / math.Sqrt(float64(dk))
	// Parent order mirrors the staged graph's DFS order (value chain
	// first, then query, key, edge modulation) so the reverse-topological
	// backward visits every upstream node in exactly the staged order —
	// gradient accumulation into shared ancestors (e.g. the layer input
	// h feeding all three projections) is order-sensitive.
	parents := []*Tensor{v, q, k}
	if ew != nil {
		parents = append(parents, ew)
	}
	att = newResult(rows, d, parents...)

	// Scores: sBuf[p*heads+a], pair-parallel (each entry owned by one
	// chunk; the j-sum is a serial ascending register accumulation, the
	// RowSum∘Mul order of the staged path).
	sBuf := arena.Get(P * heads)
	pairGrain := workGrain(d)
	compute.ParallelGrain(P, pairGrain, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			r, s := int(recv[p])*d, int(send[p])*d
			var eOff int
			if ew != nil {
				eOff = int(edgeIdx[p]) * d
			}
			for a := 0; a < heads; a++ {
				base := a * dk
				sum := 0.0
				if ew != nil {
					for j := base; j < base+dk; j++ {
						sum += q.Data[r+j] * (k.Data[s+j] * ew.Data[eOff+j])
					}
				} else {
					for j := base; j < base+dk; j++ {
						sum += q.Data[r+j] * k.Data[s+j]
					}
				}
				sBuf[p*heads+a] = sum * scale
			}
		}
	})

	// Softmax + aggregation, receiver-segment-parallel: each receiver row
	// of att (and its max/denom) is owned by one chunk. Within a segment
	// pairs run in ascending global order — the ScatterAddRows order.
	maxBuf := arena.Get(rows * heads)
	denomBuf := arena.Get(rows * heads)
	segGrain := workGrain(2 * d * (P/rows + 1))
	compute.ParallelGrain(rows, segGrain, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			seg := byRecv.Order[byRecv.Start[r]:byRecv.Start[r+1]]
			if len(seg) == 0 {
				continue
			}
			for a := 0; a < heads; a++ {
				mx := math.Inf(-1)
				for _, p := range seg {
					if sv := sBuf[int(p)*heads+a]; sv > mx {
						mx = sv
					}
				}
				maxBuf[r*heads+a] = mx
				denom := 0.0
				for _, p := range seg {
					ex := math.Exp(sBuf[int(p)*heads+a] - mx)
					sBuf[int(p)*heads+a] = ex
					denom += ex
				}
				denomBuf[r*heads+a] = denom
				recip := 1 / (denom + 1e-9)
				base := a * dk
				for _, p := range seg {
					alpha := sBuf[int(p)*heads+a] * recip
					s := int(send[p]) * d
					o := r * d
					for j := base; j < base+dk; j++ {
						att.Data[o+j] += v.Data[s+j] * alpha
					}
				}
			}
		}
	})
	arena.Put(sBuf)

	// Edge stream: per-edge mean of k⊙w, edge-segment-parallel. Sum in
	// ascending pair order, then scale by 1/count — SegmentMean's order.
	if ew != nil {
		edgeOut = newResult(numEdges, d, att)
		edgeOut.backFn = func() {} // gradient consumed by att's backward
		compute.ParallelGrain(numEdges, segGrain, func(lo, hi int) {
			for e := lo; e < hi; e++ {
				seg := byEdge.Order[byEdge.Start[e]:byEdge.Start[e+1]]
				if len(seg) == 0 {
					continue
				}
				o, eOff := e*d, e*d
				for _, p := range seg {
					s := int(send[p]) * d
					for j := 0; j < d; j++ {
						edgeOut.Data[o+j] += k.Data[s+j] * ew.Data[eOff+j]
					}
				}
				inv := 1 / float64(len(seg))
				for j := 0; j < d; j++ {
					edgeOut.Data[o+j] *= inv
				}
			}
		})
	}

	if !att.requiresGrad {
		arena.Put(maxBuf)
		arena.Put(denomBuf)
		return att, edgeOut
	}

	att.backFn = func() {
		fusedAttentionBackward(q, k, v, ew, att, edgeOut, recv, send, edgeIdx,
			byRecv, bySend, byEdge, heads, dk, scale, maxBuf, denomBuf, arena)
		arena.Put(maxBuf)
		arena.Put(denomBuf)
	}
	return att, edgeOut
}

// fusedAttentionBackward recomputes per-segment exps/alphas from the saved
// [R,heads] max/denominator and accumulates gradients into the node-major
// inputs, replicating the staged chain's accumulation orders exactly:
// receiver-segment sweeps for dQ (gather-backward order over recv),
// sender-segment sweeps for dK/dV, edge-segment sweeps for dW.
func fusedAttentionBackward(q, k, v, ew, att, edgeOut *Tensor,
	recv, send, edgeIdx []int32, byRecv, bySend, byEdge *Segments,
	heads, dk int, scale float64, maxBuf, denomBuf []float64, arena *Arena) {

	if att.Grad == nil {
		return
	}
	d := q.cols
	rows := q.rows
	P := len(recv)
	dAtt := att.Grad
	var dEdge []float64 // nil when the edge output is unused (last layer)
	if edgeOut != nil {
		dEdge = edgeOut.Grad
	}

	// Pass 0, pair-parallel: recompute ex_p^a = exp(score-max) and the
	// alpha-gradient g_p^a = Σ_j dAtt[r]·v_s (MulColVec's c-grad order).
	exBuf := arena.Get(P * heads)
	gBuf := arena.Get(P * heads)
	pairGrain := workGrain(d)
	compute.ParallelGrain(P, pairGrain, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			r, s := int(recv[p]), int(send[p])*d
			var eOff int
			if ew != nil {
				eOff = int(edgeIdx[p]) * d
			}
			for a := 0; a < heads; a++ {
				base := a * dk
				sum := 0.0
				if ew != nil {
					for j := base; j < base+dk; j++ {
						sum += q.Data[r*d+j] * (k.Data[s+j] * ew.Data[eOff+j])
					}
				} else {
					for j := base; j < base+dk; j++ {
						sum += q.Data[r*d+j] * k.Data[s+j]
					}
				}
				exBuf[p*heads+a] = math.Exp(sum*scale - maxBuf[r*heads+a])
				g := 0.0
				for j := base; j < base+dk; j++ {
					g += dAtt[r*d+j] * v.Data[s+j]
				}
				gBuf[p*heads+a] = g
			}
		}
	})

	// Pass 1, receiver-segment-parallel: denominator gradient, then the
	// score gradient (overwriting gBuf with d(q·k̂)) and dQ. Orders match
	// the staged chain: the denom sum and the dQ accumulation both run in
	// ascending pair order within the segment.
	if q.requiresGrad {
		q.ensureGrad()
	}
	segGrain := workGrain(2 * d * (P/rows + 1))
	compute.ParallelGrain(rows, segGrain, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			seg := byRecv.Order[byRecv.Start[r]:byRecv.Start[r+1]]
			if len(seg) == 0 {
				continue
			}
			for a := 0; a < heads; a++ {
				recip := 1 / (denomBuf[r*heads+a] + 1e-9)
				dDenom := 0.0
				for _, p := range seg {
					rg := gBuf[int(p)*heads+a] * exBuf[int(p)*heads+a]
					dDenom += rg * ((-recip) * recip)
				}
				base := a * dk
				for _, p := range seg {
					pi := int(p)
					exg := gBuf[pi*heads+a]*recip + dDenom
					rdg := (exg * exBuf[pi*heads+a]) * scale
					gBuf[pi*heads+a] = rdg
					if q.Grad != nil {
						s := int(send[pi]) * d
						var eOff int
						if ew != nil {
							eOff = int(edgeIdx[pi]) * d
						}
						for j := base; j < base+dk; j++ {
							if ew != nil {
								q.Grad[r*d+j] += rdg * (k.Data[s+j] * ew.Data[eOff+j])
							} else {
								q.Grad[r*d+j] += rdg * k.Data[s+j]
							}
						}
					}
				}
			}
		}
	})

	// Pass 2, sender-segment-parallel: dV (alpha-weighted output grads)
	// and dK (score grads plus the edge-mean term), ascending pair order
	// within each sender segment — the gather-backward order over send.
	if k.requiresGrad || v.requiresGrad {
		k.ensureGrad()
		v.ensureGrad()
		compute.ParallelGrain(rows, segGrain, func(lo, hi int) {
			for s := lo; s < hi; s++ {
				seg := bySend.Order[bySend.Start[s]:bySend.Start[s+1]]
				for _, p := range seg {
					pi := int(p)
					r := int(recv[pi])
					var eOff int
					var einv float64
					if ew != nil {
						e := int(edgeIdx[pi])
						eOff = e * d
						if dEdge != nil {
							einv = 1 / float64(byEdge.Len(e))
						}
					}
					for a := 0; a < heads; a++ {
						alpha := exBuf[pi*heads+a] * (1 / (denomBuf[r*heads+a] + 1e-9))
						rdg := gBuf[pi*heads+a]
						base := a * dk
						for j := base; j < base+dk; j++ {
							v.Grad[s*d+j] += dAtt[r*d+j] * alpha
							km := rdg * q.Data[r*d+j]
							if dEdge != nil {
								km += dEdge[eOff+j] * einv
							}
							if ew != nil {
								k.Grad[s*d+j] += km * ew.Data[eOff+j]
							} else {
								k.Grad[s*d+j] += km
							}
						}
					}
				}
			}
		})
	}

	// Pass 3, edge-segment-parallel: dW, ascending pair order within each
	// edge segment — the gather-backward order over edgeIdx.
	if ew != nil && ew.requiresGrad {
		ew.ensureGrad()
		compute.ParallelGrain(ew.rows, segGrain, func(lo, hi int) {
			for e := lo; e < hi; e++ {
				seg := byEdge.Order[byEdge.Start[e]:byEdge.Start[e+1]]
				if len(seg) == 0 {
					continue
				}
				var einv float64
				if dEdge != nil {
					einv = 1 / float64(len(seg))
				}
				eOff := e * d
				for _, p := range seg {
					pi := int(p)
					r, s := int(recv[pi])*d, int(send[pi])*d
					for a := 0; a < heads; a++ {
						rdg := gBuf[pi*heads+a]
						base := a * dk
						for j := base; j < base+dk; j++ {
							km := rdg * q.Data[r+j]
							if dEdge != nil {
								km += dEdge[eOff+j] * einv
							}
							ew.Grad[eOff+j] += km * k.Data[s+j]
						}
					}
				}
			}
		})
	}

	arena.Put(exBuf)
	arena.Put(gBuf)
}
