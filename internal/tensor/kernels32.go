package tensor

import (
	"fmt"
	"math"

	"mega/internal/compute"
)

// Forward-only float32 kernels for the inference fast path. These mirror
// the float64 kernels' loop structure and deterministic decompositions
// (row splits for dense work, column stripes for scatter accumulation) but
// build no tape: outputs are plain F32 values whose payloads come from the
// arena's float32 buckets. Like every kernel in this package they are
// bit-identical at any thread count; across precisions the contract is the
// bounded divergence envelope measured by MeasureDivergence, not
// bit-identity.

// MatMul32 computes a·b with the same cache-blocked row-parallel loop
// structure as the float64 matmul (k tiled at matmulKBlock so the active
// block of b stays cache-resident), with the inner work done by the
// matmulTile32 micro-kernel: 16 output columns whose partial sums live in
// SSE registers across the whole k-block, 4-wide multiply-adds per b row.
// Per output element the accumulation order over p is unchanged — the
// same ascending-p chain the float64 kernel runs, k-blocks round-tripping
// through orow between sweeps — so results stay bit-deterministic across
// thread counts and architectures; only the throughput differs.
func MatMul32(a, b *F32, arena *Arena) *F32 {
	if a.cols != b.rows {
		panic(fmt.Sprintf("tensor: matmul32 %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	m, k, n := a.rows, a.cols, b.cols
	out := arena.GetF32(m, n)
	ad, bd, od := a.Data, b.Data, out.Data
	compute.ParallelGrain(m, workGrain(k*n), func(lo, hi int) {
		for kb := 0; kb < k; kb += matmulKBlock {
			kend := kb + matmulKBlock
			if kend > k {
				kend = k
			}
			for i := lo; i < hi; i++ {
				ablk := ad[i*k+kb : i*k+kend]
				orow := od[i*n : (i+1)*n]
				jb := 0
				for ; jb+16 <= n; jb += 16 {
					matmulTile32(ablk, bd[kb*n+jb:], orow[jb:jb+16], n)
				}
				if jb < n {
					tail := orow[jb:]
					for p := kb; p < kend; p++ {
						av := ad[i*k+p]
						if av == 0 {
							continue
						}
						brow := bd[p*n+jb : (p+1)*n]
						for j := range tail {
							tail[j] += av * brow[j]
						}
					}
				}
			}
		}
	})
	return out
}

// AddBias32 adds the 1×cols bias vector to every row of x, in place.
func AddBias32(x *F32, bias []float32) {
	if len(bias) != x.cols {
		panic(fmt.Sprintf("tensor: addbias32 %d != %d cols", len(bias), x.cols))
	}
	cols := x.cols
	compute.ParallelGrain(x.rows, rowGrain(cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := x.Data[i*cols : (i+1)*cols]
			for j := range row {
				row[j] += bias[j]
			}
		}
	})
}

// Add32 returns a + b elementwise.
func Add32(a, b *F32, arena *Arena) *F32 {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("tensor: add32 %dx%d + %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := arena.GetF32(a.rows, a.cols)
	compute.ParallelGrain(len(a.Data), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] + b.Data[i]
		}
	})
	return out
}

// ReLU32 applies max(0, x) in place.
func ReLU32(x *F32) {
	compute.ParallelGrain(len(x.Data), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if x.Data[i] < 0 {
				x.Data[i] = 0
			}
		}
	})
}

// LayerNorm32 normalises each row of x to zero mean and unit variance and
// applies gamma⊙x̂ + beta. Statistics accumulate in float32 (rows are
// model-dim wide — well within float32's stable summation range); the
// rsqrt goes through float64 like exp32 does, for one correctly-rounded
// special-function evaluation per row.
func LayerNorm32(x *F32, gamma, beta []float32, arena *Arena) *F32 {
	cols := x.cols
	if len(gamma) != cols || len(beta) != cols {
		panic(fmt.Sprintf("tensor: layernorm32 affine %d/%d for %d cols", len(gamma), len(beta), cols))
	}
	n := float32(cols)
	out := arena.GetF32(x.rows, cols)
	compute.ParallelGrain(x.rows, rowGrain(cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := x.Data[i*cols : (i+1)*cols]
			var mean float32
			for _, v := range row {
				mean += v
			}
			mean /= n
			var vari float32
			for _, v := range row {
				d := v - mean
				vari += d * d
			}
			vari /= n
			is := float32(1 / math.Sqrt(float64(vari)+normEps))
			orow := out.Data[i*cols : (i+1)*cols]
			for j, v := range row {
				orow[j] = gamma[j]*((v-mean)*is) + beta[j]
			}
		}
	})
	return out
}

// BatchNorm32 normalises each column of x over the batch (full-batch
// statistics, matching the float64 training-mode BatchNorm) and applies
// gamma⊙x̂ + beta. Column-striped like its float64 counterpart.
func BatchNorm32(x *F32, gamma, beta []float32, arena *Arena) *F32 {
	cols := x.cols
	if len(gamma) != cols || len(beta) != cols {
		panic(fmt.Sprintf("tensor: batchnorm32 affine %d/%d for %d cols", len(gamma), len(beta), cols))
	}
	m := float32(x.rows)
	out := arena.GetF32(x.rows, cols)
	compute.ParallelGrain(cols, workGrain(x.rows), func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			var mean float32
			for i := 0; i < x.rows; i++ {
				mean += x.Data[i*cols+j]
			}
			mean /= m
			var vari float32
			for i := 0; i < x.rows; i++ {
				d := x.Data[i*cols+j] - mean
				vari += d * d
			}
			vari /= m
			is := float32(1 / math.Sqrt(float64(vari)+normEps))
			for i := 0; i < x.rows; i++ {
				out.Data[i*cols+j] = gamma[j]*((x.Data[i*cols+j]-mean)*is) + beta[j]
			}
		}
	})
	return out
}

// GatherRows32 returns the rows of x selected by idx.
func GatherRows32(x *F32, idx []int32, arena *Arena) *F32 {
	cols := x.cols
	for _, id := range idx {
		if id < 0 || int(id) >= x.rows {
			panic(fmt.Sprintf("tensor: gather32 index %d out of %d rows", id, x.rows))
		}
	}
	out := arena.GetF32(len(idx), cols)
	compute.ParallelGrain(len(idx), rowGrain(cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			id := int(idx[i])
			copy(out.Data[i*cols:(i+1)*cols], x.Data[id*cols:(id+1)*cols])
		}
	})
	return out
}

// SegmentMean32 returns a numSeg×cols matrix whose row s is the mean of
// the rows of x with seg[i] == s. Empty segments stay zero. Column-striped
// scatter accumulation in ascending row order, like the float64 kernel.
func SegmentMean32(x *F32, seg []int32, numSeg int, arena *Arena) *F32 {
	if len(seg) != x.rows {
		panic(fmt.Sprintf("tensor: segmentmean32 count %d != rows %d", len(seg), x.rows))
	}
	cols := x.cols
	counts := make([]float32, numSeg)
	for _, s := range seg {
		if s < 0 || int(s) >= numSeg {
			panic(fmt.Sprintf("tensor: segmentmean32 id %d out of %d", s, numSeg))
		}
		counts[s]++
	}
	out := arena.GetF32(numSeg, cols)
	compute.ParallelGrain(cols, workGrain(len(seg)), func(jlo, jhi int) {
		for i, s := range seg {
			for j := jlo; j < jhi; j++ {
				out.Data[int(s)*cols+j] += x.Data[i*cols+j]
			}
		}
		for s := 0; s < numSeg; s++ {
			if counts[s] == 0 {
				continue
			}
			inv := 1 / counts[s]
			for j := jlo; j < jhi; j++ {
				out.Data[s*cols+j] *= inv
			}
		}
	})
	return out
}
