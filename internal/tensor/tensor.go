// Package tensor provides the dense 2-D tensor and reverse-mode autograd
// engine underneath the GNN models — the stand-in for PyTorch in this
// reproduction (see DESIGN.md, substitutions). Tensors are row-major
// float64 matrices; scalars are 1×1 tensors. Every differentiable op
// returns a new tensor carrying a backward closure; Backward() runs a
// topological sweep accumulating gradients into .Grad.
//
// The op set is deliberately the minimum the GatedGCN and Graph Transformer
// models need: dense linear algebra, elementwise math, row softmax, indexed
// gather/segment ops for graph aggregation, shifted-row ops for MEGA's
// banded attention, and fused normalisation layers.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major matrix with optional gradient tracking.
type Tensor struct {
	rows, cols int
	// Data is the row-major backing array, exposed for cheap I/O; treat
	// as read-only outside this package unless the tensor is a leaf.
	Data []float64
	// Grad accumulates d(output)/d(this) during Backward; nil until used.
	Grad []float64

	requiresGrad bool
	parents      []*Tensor
	backFn       func()
}

// New creates a rows×cols tensor wrapping data (not copied). It panics if
// the size does not match: shape errors are programming errors, caught in
// tests, not runtime conditions to handle.
func New(rows, cols int, data []float64) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Tensor{rows: rows, cols: cols, Data: data}
}

// Zeros creates a zero-filled rows×cols tensor.
func Zeros(rows, cols int) *Tensor {
	return &Tensor{rows: rows, cols: cols, Data: make([]float64, rows*cols)}
}

// Full creates a rows×cols tensor filled with v.
func Full(rows, cols int, v float64) *Tensor {
	t := Zeros(rows, cols)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Randn creates a rows×cols tensor of N(0, std²) samples.
func Randn(rng *rand.Rand, rows, cols int, std float64) *Tensor {
	t := Zeros(rows, cols)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
	return t
}

// Scalar creates a 1×1 tensor.
func Scalar(v float64) *Tensor { return New(1, 1, []float64{v}) }

// Rows returns the row count.
func (t *Tensor) Rows() int { return t.rows }

// Cols returns the column count.
func (t *Tensor) Cols() int { return t.cols }

// Size returns rows*cols.
func (t *Tensor) Size() int { return len(t.Data) }

// At returns element (i, j).
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.cols+j] }

// Set assigns element (i, j). Only meaningful on leaf tensors.
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.cols+j] = v }

// Item returns the single element of a 1×1 tensor.
func (t *Tensor) Item() float64 {
	if len(t.Data) != 1 {
		panic(fmt.Sprintf("tensor: Item on %dx%d tensor", t.rows, t.cols))
	}
	return t.Data[0]
}

// RequireGrad marks t as a trainable leaf and returns it.
func (t *Tensor) RequireGrad() *Tensor {
	t.requiresGrad = true
	return t
}

// RequiresGrad reports whether gradients flow into t.
func (t *Tensor) RequiresGrad() bool { return t.requiresGrad }

// ensureGrad allocates the gradient buffer on demand.
func (t *Tensor) ensureGrad() {
	if t.Grad == nil {
		t.Grad = make([]float64, len(t.Data))
	}
}

// ZeroGrad clears the gradient buffer.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// Detach returns a gradient-free copy sharing no state with t.
func (t *Tensor) Detach() *Tensor {
	d := Zeros(t.rows, t.cols)
	copy(d.Data, t.Data)
	return d
}

// Clone returns a deep copy preserving requiresGrad (as a new leaf).
func (t *Tensor) Clone() *Tensor {
	c := t.Detach()
	c.requiresGrad = t.requiresGrad
	return c
}

// newResult builds an op output whose gradient tracking follows its parents.
func newResult(rows, cols int, parents ...*Tensor) *Tensor {
	out := Zeros(rows, cols)
	for _, p := range parents {
		if p.requiresGrad {
			out.requiresGrad = true
		}
	}
	if out.requiresGrad {
		out.parents = parents
	}
	return out
}

// Backward runs reverse-mode differentiation from t (which must be 1×1,
// a loss) and accumulates gradients into every reachable tensor with
// requiresGrad.
func (t *Tensor) Backward() {
	if len(t.Data) != 1 {
		panic(fmt.Sprintf("tensor: Backward on non-scalar %dx%d tensor", t.rows, t.cols))
	}
	// Topological order via iterative DFS.
	var order []*Tensor
	visited := make(map[*Tensor]bool)
	type frame struct {
		t    *Tensor
		next int
	}
	stack := []frame{{t: t}}
	visited[t] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.t.parents) {
			p := f.t.parents[f.next]
			f.next++
			if !visited[p] && p.requiresGrad {
				visited[p] = true
				stack = append(stack, frame{t: p})
			}
			continue
		}
		order = append(order, f.t)
		stack = stack[:len(stack)-1]
	}
	// order is children-before-parents already (post-order pushes leaves
	// first); reverse iteration runs parents last.
	t.ensureGrad()
	t.Grad[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.backFn != nil {
			n.backFn()
		}
	}
}

// BackwardFrom runs reverse-mode differentiation from one or more output
// tensors whose .Grad buffers the caller has already seeded (allocating
// them if nil). Unlike Backward it does not require a scalar root: it is
// the engine-to-engine composition primitive — a downstream consumer
// hands back ∂loss/∂out for each tape output, and BackwardFrom pushes
// those seeds through this tape into its leaves.
//
// All roots share one traversal, so a tensor reachable from several
// roots runs its backFn exactly once, after every contribution to its
// own gradient has accumulated. Calling BackwardFrom twice on
// overlapping graphs double-counts, exactly like calling Backward twice.
func BackwardFrom(outs ...*Tensor) {
	var order []*Tensor
	visited := make(map[*Tensor]bool)
	type frame struct {
		t    *Tensor
		next int
	}
	var stack []frame
	for _, out := range outs {
		if out == nil || !out.requiresGrad || visited[out] {
			continue
		}
		out.ensureGrad()
		visited[out] = true
		stack = append(stack, frame{t: out})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(f.t.parents) {
				p := f.t.parents[f.next]
				f.next++
				if !visited[p] && p.requiresGrad {
					visited[p] = true
					stack = append(stack, frame{t: p})
				}
				continue
			}
			order = append(order, f.t)
			stack = stack[:len(stack)-1]
		}
	}
	// Each DFS appends children before parents, and a later root's
	// subgraph only appends nodes no earlier root reached — nodes shared
	// with an earlier root already sit deeper in order. Reverse iteration
	// therefore runs every node after all nodes that feed gradient into it.
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.backFn != nil {
			n.backFn()
		}
	}
}

// assertSameShape panics unless a and b have identical shapes.
func assertSameShape(op string, a, b *Tensor) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}

// isFinite reports whether every element is finite; used by tests and the
// trainer's divergence guard.
func (t *Tensor) IsFinite() bool {
	for _, v := range t.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
