package tensor

import (
	"sync"
	"testing"
)

func TestArenaGetPutReuse(t *testing.T) {
	a := NewArena()
	buf := a.Get(16)
	if len(buf) != 16 {
		t.Fatalf("Get(16) returned len %d", len(buf))
	}
	for i := range buf {
		buf[i] = float64(i + 1)
	}
	a.Put(buf)
	if n := a.Buffered(); n != 1 {
		t.Fatalf("Buffered = %d after one Put", n)
	}
	again := a.Get(16)
	if &again[0] != &buf[0] {
		t.Fatal("Get did not reuse the parked buffer")
	}
	for i, v := range again {
		if v != 0 {
			t.Fatalf("reused buffer dirty at %d: %v", i, v)
		}
	}
	// Different length must come from a different bucket.
	other := a.Get(8)
	if len(other) != 8 {
		t.Fatalf("Get(8) returned len %d", len(other))
	}
	if n := a.Buffered(); n != 0 {
		t.Fatalf("Buffered = %d after draining", n)
	}
}

func TestArenaNilSafe(t *testing.T) {
	var a *Arena
	buf := a.Get(4)
	if len(buf) != 4 {
		t.Fatalf("nil arena Get(4) returned len %d", len(buf))
	}
	a.Put(buf) // must not panic
	if n := a.Buffered(); n != 0 {
		t.Fatalf("nil arena Buffered = %d", n)
	}
}

func TestArenaZeroLength(t *testing.T) {
	a := NewArena()
	buf := a.Get(0)
	if len(buf) != 0 {
		t.Fatalf("Get(0) returned len %d", len(buf))
	}
	a.Put(buf)
	if n := a.Buffered(); n != 0 {
		t.Fatalf("zero-length buffer was parked: Buffered = %d", n)
	}
}

// TestArenaConcurrent exercises the pool under parallel checkout/return,
// mirroring serve workers sharing one server-owned arena. Run with -race.
func TestArenaConcurrent(t *testing.T) {
	a := NewArena()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 8 << (uint(i+w) % 3)
				buf := a.Get(n)
				for j := range buf {
					if buf[j] != 0 {
						t.Errorf("dirty buffer from concurrent Get")
						return
					}
					buf[j] = float64(w)
				}
				a.Put(buf)
			}
		}(w)
	}
	wg.Wait()
}
