package models

import (
	"math/rand"
	"os"

	"mega/internal/nn"
	"mega/internal/tensor"
)

// Model is a graph-prediction network runnable over any Context.
type Model interface {
	// Forward produces one output row per member graph.
	Forward(ctx *Context) *tensor.Tensor
	// Params returns every trainable tensor.
	Params() []*tensor.Tensor
	// Name identifies the configuration ("GCN" or "GT").
	Name() string
}

// Config sizes a model.
type Config struct {
	// Dim is the hidden dimension d (the paper profiles 64 and 128).
	Dim int
	// Layers is the number of stacked attention blocks.
	Layers int
	// Heads is the attention head count (GT only).
	Heads int
	// NodeTypes/EdgeTypes size the input embedding vocabularies.
	NodeTypes int
	EdgeTypes int
	// OutDim is the prediction width: 1 for regression, #classes for
	// classification.
	OutDim int
	// Seed seeds parameter initialisation.
	Seed int64
	// Attention selects the attention implementation: "fused" (the
	// single-pass kernel of internal/tensor/attention.go) or "staged"
	// (the original composed-op pipeline). Empty consults the
	// MEGA_ATTENTION environment variable, then defaults to fused. Both
	// paths produce bit-identical outputs and gradients; staged remains
	// as the reference the equivalence tests pin the kernel against.
	Attention string
}

// EnvAttention is the environment variable consulted when
// Config.Attention is empty ("fused" or "staged").
const EnvAttention = "MEGA_ATTENTION"

// fusedAttention resolves the attention toggle at model construction.
func (c Config) fusedAttention() bool {
	v := c.Attention
	if v == "" {
		v = os.Getenv(EnvAttention)
	}
	return v != "staged"
}

// withDefaults fills unset fields with the benchmark-suite defaults.
func (c Config) withDefaults() Config {
	if c.Dim == 0 {
		c.Dim = 64
	}
	if c.Layers == 0 {
		c.Layers = 4
	}
	if c.Heads == 0 {
		c.Heads = 4
	}
	if c.NodeTypes == 0 {
		c.NodeTypes = 32
	}
	if c.EdgeTypes == 0 {
		c.EdgeTypes = 8
	}
	if c.OutDim == 0 {
		c.OutDim = 1
	}
	return c
}

// encoder embeds categorical node and edge features into d-dim rows; shared
// by both models.
type encoder struct {
	node *nn.Embedding
	edge *nn.Embedding
}

func newEncoder(rng *rand.Rand, cfg Config) *encoder {
	return &encoder{
		node: nn.NewEmbedding(rng, cfg.NodeTypes, cfg.Dim),
		edge: nn.NewEmbedding(rng, cfg.EdgeTypes, cfg.Dim),
	}
}

func (e *encoder) forward(ctx *Context) (h, ee *tensor.Tensor) {
	h = e.node.Forward(ctx.NodeTypeIDs)
	ee = e.edge.Forward(ctx.EdgeTypeIDs)
	ctx.Prof.Memcpy(int64(h.Size()+ee.Size()) * 4)
	return h, ee
}

func (e *encoder) params() []*tensor.Tensor {
	return nn.CollectParams(e.node, e.edge)
}

// OpCounts tallies how many graph and neural operations one forward pass
// issues — the raw data behind Table I's scatter/gather/parameter rows.
type OpCounts struct {
	Params       int
	GatherCalls  int
	ScatterCalls int
	LinearCalls  int
}

// countingContext wraps a tiny context to count operation calls.
func countOps(m Model, ctx *Context) OpCounts {
	counter := &opCounter{}
	probe := *ctx
	probe.counter = counter
	_ = m.Forward(&probe)
	return OpCounts{
		Params:       nn.CountParams(m.Params()),
		GatherCalls:  counter.gathers,
		ScatterCalls: counter.scatters,
		LinearCalls:  counter.linears,
	}
}

// opCounter tallies abstract op invocations.
type opCounter struct {
	gathers  int
	scatters int
	linears  int
}
