package models

import (
	"math/rand"

	"mega/internal/nn"
	"mega/internal/tensor"
)

// GAT is the Graph Attention Network of Veličković et al. — the paper's
// reference [14] and the canonical graph-attention formulation MEGA
// accelerates. Each head computes per-pair scores
//
//	s_ij = LeakyReLU( a_l · W h_i + a_r · W h_j )
//
// normalised by softmax over each receiver's neighbours, aggregates
// α_ij · W h_j, and concatenates heads followed by an ELU-style
// nonlinearity (ReLU here). Edge features are not part of the original
// formulation; the shared edge-embedding stream passes through untouched.
//
// GAT is lighter than GT (one projection + two attention vectors per
// layer) but issues the same irregular per-edge operations, so it slots
// directly into the DGL-vs-MEGA comparison.
type GAT struct {
	cfg     Config
	fused   bool
	enc     *encoder
	layers  []*gatLayer
	readout *nn.MLP
}

var _ Model = (*GAT)(nil)

type gatLayer struct {
	w *nn.Linear
	// aL/aR are the left/right attention vectors, one dk-column block per
	// head (stored as 1×d rows for broadcasting).
	aL *tensor.Tensor
	aR *tensor.Tensor
	bn *nn.Norm
}

// NewGAT constructs the model.
func NewGAT(cfg Config) *GAT {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x6A7))
	m := &GAT{
		cfg:     cfg,
		fused:   cfg.fusedAttention(),
		enc:     newEncoder(rng, cfg),
		readout: nn.NewMLP(rng, cfg.Dim, cfg.Dim/2, cfg.OutDim),
	}
	for i := 0; i < cfg.Layers; i++ {
		m.layers = append(m.layers, &gatLayer{
			w:  nn.NewLinear(rng, cfg.Dim, cfg.Dim),
			aL: tensor.Randn(rng, 1, cfg.Dim, 0.1).RequireGrad(),
			aR: tensor.Randn(rng, 1, cfg.Dim, 0.1).RequireGrad(),
			bn: nn.NewNorm(nn.BatchNorm, cfg.Dim),
		})
	}
	return m
}

// Name implements Model.
func (m *GAT) Name() string { return "GAT" }

// Config returns the model configuration.
func (m *GAT) Config() Config { return m.cfg }

// Params implements Model.
func (m *GAT) Params() []*tensor.Tensor {
	out := m.enc.params()
	for _, l := range m.layers {
		out = append(out, l.w.Params()...)
		out = append(out, l.aL, l.aR, l.bn.Gamma, l.bn.Beta)
	}
	return append(out, m.readout.Params()...)
}

// Forward implements Model.
func (m *GAT) Forward(ctx *Context) *tensor.Tensor {
	h, _ := m.enc.forward(ctx)
	for _, l := range m.layers {
		h = l.forward(ctx, h, m.cfg.Heads, m.fused)
	}
	pooled := ctx.Readout(h)
	ctx.Prof.Linear(pooled.Rows(), pooled.Cols(), m.cfg.OutDim)
	return m.readout.Forward(pooled)
}

// leakyReLU applies max(x, 0.2x), GAT's score nonlinearity.
func leakyReLU(x *tensor.Tensor) *tensor.Tensor {
	return tensor.Add(tensor.ReLU(x), tensor.Scale(tensor.Sub(x, tensor.ReLU(x)), 0.2))
}

// forward runs one GAT block.
func (l *gatLayer) forward(ctx *Context, h *tensor.Tensor, heads int, fused bool) *tensor.Tensor {
	ctx.Prof.LayerStart()
	d := h.Cols()
	dk := d / heads

	wh := ctx.Linear(l.w, h)
	var att *tensor.Tensor
	if fused {
		// One kernel for score halves, leaky scores, softmax, and
		// aggregation; bit-identical to the staged pipeline below.
		att = ctx.FusedGATAttention(wh, l.aL, l.aR, heads)
	} else {
		// Per-row score halves: sL[i] = a_l·(Wh)_i per head, computed
		// densely then gathered per pair — the neural-then-graph split
		// of §II-A.
		sL := tensor.Mul(wh, broadcastRow(l.aL, wh.Rows()))
		sR := tensor.Mul(wh, broadcastRow(l.aR, wh.Rows()))

		whSend := ctx.GatherSend(wh)
		sLr := ctx.GatherRecv(sL)
		sRs := ctx.GatherSend(sR)

		headOuts := make([]*tensor.Tensor, heads)
		for a := 0; a < heads; a++ {
			lhs := tensor.RowSum(tensor.NarrowCols(sLr, a*dk, dk))
			rhs := tensor.RowSum(tensor.NarrowCols(sRs, a*dk, dk))
			score := ctx.Act(leakyReLU, tensor.Add(lhs, rhs))
			alpha := ctx.SegmentSoftmaxByRecv(score)
			va := tensor.NarrowCols(whSend, a*dk, dk)
			headOuts[a] = ctx.AggregateByRecv(tensor.MulColVec(va, alpha))
		}
		att = tensor.ConcatCols(headOuts...)
	}
	out := ctx.Act(tensor.ReLU, ctx.Norm(l.bn, tensor.Add(h, att)))
	return ctx.SyncDuplicates(out)
}

// broadcastRow tiles a 1×d row vector to rows×d without gradient fan-in
// surprises (the underlying tensor op handles accumulation).
func broadcastRow(v *tensor.Tensor, rows int) *tensor.Tensor {
	idx := make([]int32, rows)
	return tensor.GatherRows(v, idx)
}

// CountOps reports operation statistics for this model over the context.
func (m *GAT) CountOps(ctx *Context) OpCounts { return countOps(m, ctx) }
