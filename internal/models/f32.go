package models

import (
	"fmt"

	"mega/internal/nn"
	"mega/internal/tensor"
)

// Float32 inference fast path: frozen-weights, tape-free forwards for the
// models whose serving predictions are batch-composition independent.
//
// PrepareF32 downcasts a trained float64 model's parameters once (one
// rounding per weight, at load time) into an immutable ModelF32; its
// Forward is a straight-line float32 pass over a prebuilt Context —
// no autograd tape, no Grad buffers, scratch from the arena's float32
// buckets, attention in the head-major layout. Training never sees any of
// this: the float64 Model is read, not touched.
//
// GT (LayerNorm) and GAT (full-batch BatchNorm) are supported. GatedGCN is
// not: its serving answers already depend on micro-batch composition (see
// CHANGES PR 1), and the f32 path's differential harness needs a per-graph
// reference to diverge from.

// ModelF32 is a frozen float32 inference model.
type ModelF32 interface {
	// Forward runs the tape-free float32 pass, returning one output row
	// per member graph. The caller owns the result and should return its
	// payload to the arena when done.
	Forward(ctx *Context, arena *tensor.Arena) *tensor.F32
	// Name identifies the source model configuration.
	Name() string
	// SnapshotParams flattens every downcast parameter in a fixed order —
	// the determinism probe for checkpoint-downcast tests.
	SnapshotParams() []float32
}

// PrepareF32 downcasts m's parameters into a frozen float32 model using
// the head-major attention layout (the serving default).
func PrepareF32(m Model) (ModelF32, error) {
	return PrepareF32Layout(m, tensor.LayoutHeadMajor)
}

// PrepareF32Layout is PrepareF32 with an explicit attention scratch
// layout (the interleaved variant exists for the layout benchmark; both
// produce bit-identical outputs).
func PrepareF32Layout(m Model, layout tensor.AttnLayout) (ModelF32, error) {
	switch t := m.(type) {
	case *GT:
		return newGTF32(t, layout), nil
	case *GAT:
		return newGATF32(t, layout), nil
	default:
		return nil, fmt.Errorf("models: no float32 inference path for %s (batch-dependent normalisation)", m.Name())
	}
}

// linear32 is a frozen linear layer.
type linear32 struct {
	w *tensor.F32
	b []float32
}

func downLinear(l *nn.Linear) linear32 {
	return linear32{w: tensor.Downcast(l.W), b: tensor.DowncastSlice(l.B.Data)}
}

func (l linear32) forward(x *tensor.F32, arena *tensor.Arena) *tensor.F32 {
	out := tensor.MatMul32(x, l.w, arena)
	tensor.AddBias32(out, l.b)
	return out
}

func (l linear32) snapshot(dst []float32) []float32 {
	return append(append(dst, l.w.Data...), l.b...)
}

// norm32 is a frozen affine normalisation.
type norm32 struct {
	gamma, beta []float32
}

func downNorm(n *nn.Norm) norm32 {
	return norm32{gamma: tensor.DowncastSlice(n.Gamma.Data), beta: tensor.DowncastSlice(n.Beta.Data)}
}

func (n norm32) layerNorm(x *tensor.F32, arena *tensor.Arena) *tensor.F32 {
	return tensor.LayerNorm32(x, n.gamma, n.beta, arena)
}

func (n norm32) batchNorm(x *tensor.F32, arena *tensor.Arena) *tensor.F32 {
	return tensor.BatchNorm32(x, n.gamma, n.beta, arena)
}

func (n norm32) snapshot(dst []float32) []float32 {
	return append(append(dst, n.gamma...), n.beta...)
}

// mlp32 is the frozen readout head.
type mlp32 struct {
	l1, l2 linear32
}

func downMLP(m *nn.MLP) mlp32 {
	return mlp32{l1: downLinear(m.L1), l2: downLinear(m.L2)}
}

func (m mlp32) forward(x *tensor.F32, arena *tensor.Arena) *tensor.F32 {
	h := m.l1.forward(x, arena)
	tensor.ReLU32(h)
	out := m.l2.forward(h, arena)
	arena.PutF32(h)
	return out
}

// syncDuplicates32 averages duplicate rows per node slot and gathers back
// — the f32 counterpart of the context's Sync closure. Identity when the
// batch has no revisits.
func syncDuplicates32(ctx *Context, h *tensor.F32, arena *tensor.Arena) *tensor.F32 {
	if len(ctx.syncPositions) == 0 {
		return h
	}
	nodes := tensor.SegmentMean32(h, ctx.posToNode, ctx.numNodeSlots, arena)
	out := tensor.GatherRows32(nodes, ctx.posToNode, arena)
	arena.PutF32(nodes)
	arena.PutF32(h)
	return out
}

// readout32 pools working rows to per-graph rows: positions → node slots →
// graphs for MEGA contexts (so revisited nodes are not over-weighted),
// plain per-graph pooling otherwise — the same arithmetic as Readout.
func readout32(ctx *Context, h *tensor.F32, arena *tensor.Arena) *tensor.F32 {
	if ctx.posToNode == nil {
		return tensor.SegmentMean32(h, ctx.GraphSeg, ctx.NumGraphs, arena)
	}
	nodes := tensor.SegmentMean32(h, ctx.posToNode, ctx.numNodeSlots, arena)
	out := tensor.SegmentMean32(nodes, ctx.nodeGraph, ctx.NumGraphs, arena)
	arena.PutF32(nodes)
	return out
}

// ---------------------------------------------------------------------------
// GT

// GTF32 is the frozen float32 Graph Transformer.
type GTF32 struct {
	cfg     Config
	layout  tensor.AttnLayout
	nodeTab *tensor.F32
	edgeTab *tensor.F32
	layers  []*gtLayerF32
	readout mlp32
}

var _ ModelF32 = (*GTF32)(nil)

type gtLayerF32 struct {
	q, k, v, o linear32
	we, oe     linear32
	ffnH1      linear32
	ffnH2      linear32
	ffnE1      linear32
	ffnE2      linear32
	lnH1, lnH2 norm32
	lnE1, lnE2 norm32
}

func newGTF32(m *GT, layout tensor.AttnLayout) *GTF32 {
	out := &GTF32{
		cfg:     m.cfg,
		layout:  layout,
		nodeTab: tensor.Downcast(m.enc.node.Table),
		edgeTab: tensor.Downcast(m.enc.edge.Table),
		readout: downMLP(m.readout),
	}
	for _, l := range m.layers {
		out.layers = append(out.layers, &gtLayerF32{
			q: downLinear(l.q), k: downLinear(l.k), v: downLinear(l.v), o: downLinear(l.o),
			we: downLinear(l.we), oe: downLinear(l.oe),
			ffnH1: downLinear(l.ffnH1), ffnH2: downLinear(l.ffnH2),
			ffnE1: downLinear(l.ffnE1), ffnE2: downLinear(l.ffnE2),
			lnH1: downNorm(l.lnH1), lnH2: downNorm(l.lnH2),
			lnE1: downNorm(l.lnE1), lnE2: downNorm(l.lnE2),
		})
	}
	return out
}

// Name implements ModelF32.
func (m *GTF32) Name() string { return "GT" }

// Config returns the source model configuration.
func (m *GTF32) Config() Config { return m.cfg }

// SnapshotParams implements ModelF32.
func (m *GTF32) SnapshotParams() []float32 {
	out := append([]float32(nil), m.nodeTab.Data...)
	out = append(out, m.edgeTab.Data...)
	for _, l := range m.layers {
		for _, lin := range []linear32{l.q, l.k, l.v, l.o, l.we, l.oe, l.ffnH1, l.ffnH2, l.ffnE1, l.ffnE2} {
			out = lin.snapshot(out)
		}
		for _, n := range []norm32{l.lnH1, l.lnH2, l.lnE1, l.lnE2} {
			out = n.snapshot(out)
		}
	}
	out = m.readout.l1.snapshot(out)
	return m.readout.l2.snapshot(out)
}

// Forward implements ModelF32.
func (m *GTF32) Forward(ctx *Context, arena *tensor.Arena) *tensor.F32 {
	h := tensor.GatherRows32(m.nodeTab, ctx.NodeTypeIDs, arena)
	e := tensor.GatherRows32(m.edgeTab, ctx.EdgeTypeIDs, arena)
	for _, l := range m.layers {
		hn, en := l.forward(ctx, h, e, m.cfg.Heads, m.layout, arena)
		arena.PutF32(h)
		arena.PutF32(e)
		h, e = hn, en
	}
	pooled := readout32(ctx, h, arena)
	arena.PutF32(h)
	arena.PutF32(e)
	out := m.readout.forward(pooled, arena)
	arena.PutF32(pooled)
	return out
}

func (l *gtLayerF32) forward(ctx *Context, h, e *tensor.F32, heads int,
	layout tensor.AttnLayout, arena *tensor.Arena) (hOut, eOut *tensor.F32) {

	qh := l.q.forward(h, arena)
	kh := l.k.forward(h, arena)
	vh := l.v.forward(h, arena)
	eh := l.we.forward(e, arena)
	att, eAvg := tensor.FusedSegmentAttention32(qh, kh, vh, eh,
		ctx.RecvIdx, ctx.SendIdx, ctx.EdgeIdx,
		ctx.recvSegments(), ctx.edgeSegments(), heads, layout, arena)
	arena.PutF32(qh)
	arena.PutF32(kh)
	arena.PutF32(vh)
	arena.PutF32(eh)

	// Node stream: O projection, residual + LN, FFN, residual + LN.
	o := l.o.forward(att, arena)
	arena.PutF32(att)
	sum := tensor.Add32(h, o, arena)
	arena.PutF32(o)
	h1 := l.lnH1.layerNorm(sum, arena)
	arena.PutF32(sum)
	f := l.ffnH1.forward(h1, arena)
	tensor.ReLU32(f)
	ffn := l.ffnH2.forward(f, arena)
	arena.PutF32(f)
	sum = tensor.Add32(h1, ffn, arena)
	arena.PutF32(ffn)
	hOut = l.lnH2.layerNorm(sum, arena)
	arena.PutF32(sum)
	arena.PutF32(h1)

	// Edge stream on the per-edge mean of k⊙ê.
	eAgg := l.oe.forward(eAvg, arena)
	arena.PutF32(eAvg)
	sum = tensor.Add32(e, eAgg, arena)
	arena.PutF32(eAgg)
	e1 := l.lnE1.layerNorm(sum, arena)
	arena.PutF32(sum)
	f = l.ffnE1.forward(e1, arena)
	tensor.ReLU32(f)
	ffnE := l.ffnE2.forward(f, arena)
	arena.PutF32(f)
	sum = tensor.Add32(e1, ffnE, arena)
	arena.PutF32(ffnE)
	eOut = l.lnE2.layerNorm(sum, arena)
	arena.PutF32(sum)
	arena.PutF32(e1)

	hOut = syncDuplicates32(ctx, hOut, arena)
	return hOut, eOut
}

// ---------------------------------------------------------------------------
// GAT

// GATF32 is the frozen float32 Graph Attention Network.
type GATF32 struct {
	cfg     Config
	layout  tensor.AttnLayout
	nodeTab *tensor.F32
	layers  []*gatLayerF32
	readout mlp32
}

var _ ModelF32 = (*GATF32)(nil)

type gatLayerF32 struct {
	w      linear32
	aL, aR []float32
	bn     norm32
}

func newGATF32(m *GAT, layout tensor.AttnLayout) *GATF32 {
	out := &GATF32{
		cfg:     m.cfg,
		layout:  layout,
		nodeTab: tensor.Downcast(m.enc.node.Table),
		readout: downMLP(m.readout),
	}
	for _, l := range m.layers {
		out.layers = append(out.layers, &gatLayerF32{
			w:  downLinear(l.w),
			aL: tensor.DowncastSlice(l.aL.Data),
			aR: tensor.DowncastSlice(l.aR.Data),
			bn: downNorm(l.bn),
		})
	}
	return out
}

// Name implements ModelF32.
func (m *GATF32) Name() string { return "GAT" }

// SnapshotParams implements ModelF32.
func (m *GATF32) SnapshotParams() []float32 {
	out := append([]float32(nil), m.nodeTab.Data...)
	for _, l := range m.layers {
		out = l.w.snapshot(out)
		out = append(out, l.aL...)
		out = append(out, l.aR...)
		out = l.bn.snapshot(out)
	}
	out = m.readout.l1.snapshot(out)
	return m.readout.l2.snapshot(out)
}

// Forward implements ModelF32. Note GAT's BatchNorm runs full-batch
// statistics, so like the float64 path its outputs depend on batch
// composition; the serving layer only batches identical work, and the
// differential harness compares like-for-like batches.
func (m *GATF32) Forward(ctx *Context, arena *tensor.Arena) *tensor.F32 {
	h := tensor.GatherRows32(m.nodeTab, ctx.NodeTypeIDs, arena)
	for _, l := range m.layers {
		hn := l.forward(ctx, h, m.cfg.Heads, m.layout, arena)
		arena.PutF32(h)
		h = hn
	}
	pooled := readout32(ctx, h, arena)
	arena.PutF32(h)
	out := m.readout.forward(pooled, arena)
	arena.PutF32(pooled)
	return out
}

func (l *gatLayerF32) forward(ctx *Context, h *tensor.F32, heads int,
	layout tensor.AttnLayout, arena *tensor.Arena) *tensor.F32 {

	wh := l.w.forward(h, arena)
	att := tensor.FusedAdditiveAttention32(wh, l.aL, l.aR,
		ctx.RecvIdx, ctx.SendIdx, ctx.recvSegments(), heads, layout, arena)
	arena.PutF32(wh)
	sum := tensor.Add32(h, att, arena)
	arena.PutF32(att)
	out := l.bn.batchNorm(sum, arena)
	arena.PutF32(sum)
	tensor.ReLU32(out)
	return syncDuplicates32(ctx, out, arena)
}
