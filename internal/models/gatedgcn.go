package models

import (
	"math/rand"

	"mega/internal/nn"
	"mega/internal/tensor"
)

// GatedGCN is the Gated Graph ConvNet of Bresson & Laurent (the paper's
// "GCN" configuration, §III-1): each layer updates edge embeddings
//
//	ê_ij = C·e_ij + D·h_i + E·h_j
//
// and node embeddings through sigmoid-gated aggregation
//
//	h_i' = ReLU(BN(h_i + A·h_i + Σ_j η_ij ⊙ B·h_j)),
//	η_ij = σ(ê_ij) / (Σ_{j'} σ(ê_ij') + ε),
//
// with residual connections and batch normalisation on both streams —
// five d×d projections per layer, the 5d² parameter volume of Table I.
type GatedGCN struct {
	cfg     Config
	enc     *encoder
	layers  []*gcnLayer
	readout *nn.MLP
}

var _ Model = (*GatedGCN)(nil)

type gcnLayer struct {
	a, b, c, d, e *nn.Linear
	bnH, bnE      *nn.Norm
}

// NewGatedGCN constructs the model.
func NewGatedGCN(cfg Config) *GatedGCN {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x6CC))
	m := &GatedGCN{
		cfg:     cfg,
		enc:     newEncoder(rng, cfg),
		readout: nn.NewMLP(rng, cfg.Dim, cfg.Dim/2, cfg.OutDim),
	}
	for i := 0; i < cfg.Layers; i++ {
		m.layers = append(m.layers, &gcnLayer{
			a:   nn.NewLinear(rng, cfg.Dim, cfg.Dim),
			b:   nn.NewLinear(rng, cfg.Dim, cfg.Dim),
			c:   nn.NewLinear(rng, cfg.Dim, cfg.Dim),
			d:   nn.NewLinear(rng, cfg.Dim, cfg.Dim),
			e:   nn.NewLinear(rng, cfg.Dim, cfg.Dim),
			bnH: nn.NewNorm(nn.BatchNorm, cfg.Dim),
			bnE: nn.NewNorm(nn.BatchNorm, cfg.Dim),
		})
	}
	return m
}

// Name implements Model.
func (m *GatedGCN) Name() string { return "GCN" }

// Config returns the model configuration.
func (m *GatedGCN) Config() Config { return m.cfg }

// Params implements Model.
func (m *GatedGCN) Params() []*tensor.Tensor {
	out := m.enc.params()
	for _, l := range m.layers {
		out = append(out, nn.CollectParams(l.a, l.b, l.c, l.d, l.e, l.bnH, l.bnE)...)
	}
	return append(out, m.readout.Params()...)
}

// Forward implements Model.
func (m *GatedGCN) Forward(ctx *Context) *tensor.Tensor {
	h, e := m.enc.forward(ctx)
	for _, l := range m.layers {
		h, e = l.forward(ctx, h, e)
	}
	pooled := ctx.Readout(h)
	ctx.Prof.Linear(pooled.Rows(), pooled.Cols(), m.cfg.OutDim)
	return m.readout.Forward(pooled)
}

// forward runs one GatedGCN block.
func (l *gcnLayer) forward(ctx *Context, h, e *tensor.Tensor) (hOut, eOut *tensor.Tensor) {
	ctx.Prof.LayerStart()

	// Edge update: ê = C·e + D·h_recv + E·h_send, assembled per pair.
	dh := ctx.Linear(l.d, h)
	eh := ctx.Linear(l.e, h)
	ce := ctx.Linear(l.c, e)
	pairE := tensor.Add(tensor.Add(ctx.GatherEdges(ce), ctx.GatherRecv(dh)), ctx.GatherSend(eh))

	// Gated aggregation: η = σ(ê)/(Σσ(ê)+ε), message = η ⊙ B·h_send.
	gate := ctx.Act(tensor.Sigmoid, pairE)
	eta := ctx.NormalizeByRecvSum(gate, 1e-6)
	bh := ctx.Linear(l.b, h)
	msg := tensor.Mul(eta, ctx.GatherSend(bh))
	agg := ctx.AggregateByRecv(msg)

	// Node stream: residual + BN + ReLU.
	ah := ctx.Linear(l.a, h)
	hOut = ctx.Act(tensor.ReLU, ctx.Norm(l.bnH, tensor.Add(h, tensor.Add(ah, agg))))

	// Edge stream: residual + BN + ReLU over the per-edge reduction.
	eOut = ctx.Act(tensor.ReLU, ctx.Norm(l.bnE, tensor.Add(e, ctx.EdgeMean(pairE))))

	hOut = ctx.SyncDuplicates(hOut)
	return hOut, eOut
}

// CountOps reports Table I's operation statistics for this model over the
// given context.
func (m *GatedGCN) CountOps(ctx *Context) OpCounts { return countOps(m, ctx) }
