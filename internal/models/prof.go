package models

import "mega/internal/gpusim"

// EngineKind selects which memory-behaviour model a Prof reports to gpusim.
type EngineKind int

// Engine kinds.
const (
	// EngineDGL is the conventional gather/scatter baseline.
	EngineDGL EngineKind = iota + 1
	// EngineMega is the banded diagonal-attention engine.
	EngineMega
)

// String implements fmt.Stringer.
func (e EngineKind) String() string {
	if e == EngineMega {
		return "mega"
	}
	return "dgl"
}

// Prof translates the layer code's abstract operations into simulated GPU
// kernels. The same logical operation is profiled very differently per
// engine: a pair gather is an irregular per-row gather over node IDs for
// DGL but a shifted sequential sweep for MEGA — this asymmetry IS the
// paper's contribution, so it lives here, in one auditable place.
//
// A nil *Prof is valid and disables all accounting, so pure-convergence
// runs pay nothing.
type Prof struct {
	sim    *gpusim.Sim
	engine EngineKind

	nodeBuf  gpusim.Addr
	edgeBuf  gpusim.Addr
	elemSize int64 // bytes per feature scalar (fp32 on device)

	// MEGA state.
	window    int
	syncIdx   []int32 // path positions participating in duplicate groups
	sortedPer int     // dgl: keys sorted per layer (cub)

	// record holds replayable kernel emissions for backward accounting.
	record []func()
}

// NewProf attaches a profiler for one batch to the simulator. rows/edges
// size the simulated embedding buffers at the model dimension dim.
func NewProf(sim *gpusim.Sim, engine EngineKind, rows, edges, dim int) *Prof {
	p := &Prof{
		sim:      sim,
		engine:   engine,
		elemSize: 4,
	}
	rowBytes := int64(dim) * p.elemSize
	p.nodeBuf = sim.Alloc(int64(rows) * rowBytes)
	p.edgeBuf = sim.Alloc(int64(edges) * rowBytes)
	return p
}

// SetMegaBand configures MEGA-specific profiling state: the attention
// window and the duplicate positions synchronised per layer.
func (p *Prof) SetMegaBand(window int, syncIdx []int32) {
	if p == nil {
		return
	}
	p.window = window
	p.syncIdx = syncIdx
}

// SetDGLSortKeys configures how many index keys the baseline's cub sort
// phase orders per layer (the paper: "the cub module is utilized for
// sorting embeddings based on given indices").
func (p *Prof) SetDGLSortKeys(keys int) {
	if p == nil {
		return
	}
	p.sortedPer = keys
}

// emit records and executes one kernel emission.
func (p *Prof) emit(f func()) {
	p.record = append(p.record, f)
	f()
}

// LayerStart charges per-layer fixed costs: the cub sort for DGL.
func (p *Prof) LayerStart() {
	if p == nil || p.sim == nil {
		return
	}
	if p.engine == EngineDGL && p.sortedPer > 0 {
		keys := p.sortedPer
		p.emit(func() { p.sim.Sort("cub", keys, 4) })
	}
}

// Linear charges an m×k·k×n dense multiply (sgemm).
func (p *Prof) Linear(m, k, n int) {
	if p == nil || p.sim == nil {
		return
	}
	p.emit(func() { p.sim.Sgemm(m, k, n) })
}

// elementwise charges a streaming elementwise kernel over elems scalars.
func (p *Prof) elementwise(elems int) {
	if p == nil || p.sim == nil {
		return
	}
	p.emit(func() { p.sim.Elementwise("elementwise", elems, 4) })
}

// Elementwise is the exported form used by the models for activations and
// norms.
func (p *Prof) Elementwise(elems int) { p.elementwise(elems) }

// pairGatherNodes charges a node-row gather over the given row indices.
func (p *Prof) pairGatherNodes(c *Context, idx []int32, dim int) {
	if p == nil || p.sim == nil {
		return
	}
	rowBytes := int64(dim) * p.elemSize
	switch p.engine {
	case EngineMega:
		rows, w := c.NumRows, p.window
		if w < 1 {
			w = 1
		}
		p.emit(func() { p.sim.BandSweep("mega-band", p.nodeBuf, rows, 2*w, rowBytes) })
	default:
		// Copy the indices: the engine may reuse the slice.
		own := make([]int32, len(idx))
		copy(own, idx)
		p.emit(func() { p.sim.GatherRows("dgl-gather", p.nodeBuf, own, rowBytes) })
	}
}

// pairGatherEdges charges the per-pair edge-feature fetch.
func (p *Prof) pairGatherEdges(c *Context, dim int) {
	if p == nil || p.sim == nil {
		return
	}
	rowBytes := int64(dim) * p.elemSize
	switch p.engine {
	case EngineMega:
		// Band-ordered edges are contiguous per offset: one stream.
		bytes := int64(c.NumPairs()) * rowBytes
		buf := p.edgeBuf
		p.emit(func() { p.sim.Sequential("mega-band", gpusim.KindBand, buf, bytes, false) })
	default:
		own := make([]int32, len(c.EdgeIdx))
		copy(own, c.EdgeIdx)
		p.emit(func() { p.sim.GatherRows("dgl-gather", p.edgeBuf, own, rowBytes) })
	}
}

// pairScatter charges the aggregation of pair values into receiver rows.
func (p *Prof) pairScatter(c *Context, dim int) {
	if p == nil || p.sim == nil {
		return
	}
	rowBytes := int64(dim) * p.elemSize
	switch p.engine {
	case EngineMega:
		rows, w := c.NumRows, p.window
		if w < 1 {
			w = 1
		}
		p.emit(func() { p.sim.BandSweep("mega-band", p.nodeBuf, rows, 2*w, rowBytes) })
	default:
		own := make([]int32, len(c.RecvIdx))
		copy(own, c.RecvIdx)
		p.emit(func() { p.sim.ScatterRows("dgl-scatter", p.nodeBuf, own, rowBytes) })
	}
}

// edgeReduce charges writing updated edge embeddings back per edge.
func (p *Prof) edgeReduce(c *Context, dim int) {
	if p == nil || p.sim == nil {
		return
	}
	rowBytes := int64(dim) * p.elemSize
	switch p.engine {
	case EngineMega:
		bytes := int64(c.NumEdges) * rowBytes
		buf := p.edgeBuf
		p.emit(func() { p.sim.Sequential("mega-band", gpusim.KindBand, buf, bytes, true) })
	default:
		own := make([]int32, len(c.EdgeIdx))
		copy(own, c.EdgeIdx)
		p.emit(func() { p.sim.ScatterRows("dgl-scatter", p.edgeBuf, own, rowBytes) })
	}
}

// SyncCost charges MEGA's duplicate-position synchronisation.
func (p *Prof) SyncCost(dim int) {
	if p == nil || p.sim == nil || p.engine != EngineMega || len(p.syncIdx) == 0 {
		return
	}
	rowBytes := int64(dim) * p.elemSize
	idx := p.syncIdx
	p.emit(func() { p.sim.SyncRows("mega-sync", p.nodeBuf, idx, rowBytes) })
}

// Memcpy charges a host/device transfer (input upload per batch).
func (p *Prof) Memcpy(bytes int64) {
	if p == nil || p.sim == nil {
		return
	}
	p.emit(func() { p.sim.Memcpy(bytes) })
}

// Backward charges the backward pass: the standard 2× replay of the
// forward kernel sequence (gradients re-read activations and weights and
// write gradients of each).
func (p *Prof) Backward() {
	if p == nil || p.sim == nil {
		return
	}
	fwd := p.record
	for i := 0; i < 2; i++ {
		for _, f := range fwd {
			f()
		}
	}
	p.record = fwd[:0]
}

// Discard drops the recorded forward emissions without backward replay —
// used after inference-only (validation) forwards.
func (p *Prof) Discard() {
	if p == nil {
		return
	}
	p.record = p.record[:0]
}
