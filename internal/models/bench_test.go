package models

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"mega/internal/compute"
	"mega/internal/datasets"
	"mega/internal/graph"
	"mega/internal/tensor"
)

// Full-model benchmarks: one GT training step (forward + loss + backward)
// over a MEGA banded-attention context, serial pool vs all cores. The
// batch is 16 Erdős–Rényi graphs of 60 nodes — molecular-benchmark scale.

func benchInstances(b *testing.B) []datasets.Instance {
	b.Helper()
	rng := rand.New(rand.NewSource(21))
	insts := make([]datasets.Instance, 16)
	for i := range insts {
		g := graph.ErdosRenyiM(rng, 60, 180)
		nf := make([]int32, g.NumNodes())
		for j := range nf {
			nf[j] = int32(rng.Intn(8))
		}
		ef := make([]int32, g.NumEdges())
		for j := range ef {
			ef[j] = int32(rng.Intn(4))
		}
		insts[i] = datasets.Instance{G: g, NodeFeat: nf, EdgeFeat: ef, Target: rng.NormFloat64()}
	}
	return insts
}

func benchMegaStep(b *testing.B, threads, dim int) {
	prev := compute.SetMaxThreads(threads)
	defer compute.SetMaxThreads(prev)
	insts := benchInstances(b)
	ctx, err := NewMegaContext(insts, MegaOptions{}, nil, dim)
	if err != nil {
		b.Fatal(err)
	}
	model := NewGT(Config{
		Dim: dim, Layers: 4, Heads: 4,
		NodeTypes: 8, EdgeTypes: 4, OutDim: 1, Seed: 1,
	})
	params := model.Params()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range params {
			p.ZeroGrad()
		}
		out := model.Forward(ctx)
		tensor.MAELoss(out, ctx.Targets).Backward()
	}
}

func BenchmarkMegaGTStepSerial64(b *testing.B)    { benchMegaStep(b, 1, 64) }
func BenchmarkMegaGTStepParallel64(b *testing.B)  { benchMegaStep(b, runtime.NumCPU(), 64) }
func BenchmarkMegaGTStepSerial128(b *testing.B)   { benchMegaStep(b, 1, 128) }
func BenchmarkMegaGTStepParallel128(b *testing.B) { benchMegaStep(b, runtime.NumCPU(), 128) }

// benchMegaPreprocess isolates the CPU preprocessing fan-out (traversal +
// band construction + context assembly), the stage NewMegaContext
// parallelises per instance.
func benchMegaPreprocess(b *testing.B, threads int) {
	prev := compute.SetMaxThreads(threads)
	defer compute.SetMaxThreads(prev)
	insts := benchInstances(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewMegaContext(insts, MegaOptions{}, nil, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMegaPreprocessSerial(b *testing.B)   { benchMegaPreprocess(b, 1) }
func BenchmarkMegaPreprocessParallel(b *testing.B) { benchMegaPreprocess(b, runtime.NumCPU()) }

// Per-layer attention benchmarks: forward + backward of the attention
// block alone (projections and FFNs excluded — they are identical dense
// matmuls either way and would drown the comparison), fused kernel vs
// staged pipeline, on both engines' pair lists. Allocation counts are
// part of the result: the fused path with an arena is near allocation-
// free in steady state, the staged path builds its whole pair-major
// intermediate chain every step.
func benchAttentionContext(b *testing.B, engine EngineKind) *Context {
	b.Helper()
	insts := benchInstances(b)
	var ctx *Context
	var err error
	if engine == EngineMega {
		ctx, err = NewMegaContext(insts, MegaOptions{}, nil, 64)
	} else {
		ctx, err = NewDGLContext(insts, nil, 64)
	}
	if err != nil {
		b.Fatal(err)
	}
	ctx.Scratch = tensor.NewArena()
	return ctx
}

func benchAttentionGT(b *testing.B, engine EngineKind, fused bool) {
	ctx := benchAttentionContext(b, engine)
	const d, heads = 64, 4
	dk := d / heads
	rng := rand.New(rand.NewSource(7))
	qh := tensor.Randn(rng, ctx.NumRows, d, 0.5).RequireGrad()
	kh := tensor.Randn(rng, ctx.NumRows, d, 0.5).RequireGrad()
	vh := tensor.Randn(rng, ctx.NumRows, d, 0.5).RequireGrad()
	eh := tensor.Randn(rng, ctx.NumEdges, d, 0.5).RequireGrad()
	leaves := []*tensor.Tensor{qh, kh, vh, eh}
	step := func() {
		for _, p := range leaves {
			p.ZeroGrad()
		}
		var att, edgeAvg *tensor.Tensor
		if fused {
			att, edgeAvg = ctx.FusedGTAttention(qh, kh, vh, eh, heads)
		} else {
			qp := ctx.GatherRecv(qh)
			kp := ctx.GatherSend(kh)
			vp := ctx.GatherSend(vh)
			ep := ctx.GatherEdges(eh)
			kmod := tensor.Mul(kp, ep)
			headOuts := make([]*tensor.Tensor, heads)
			scale := 1 / math.Sqrt(float64(dk))
			for a := 0; a < heads; a++ {
				qa := tensor.NarrowCols(qp, a*dk, dk)
				ka := tensor.NarrowCols(kmod, a*dk, dk)
				va := tensor.NarrowCols(vp, a*dk, dk)
				score := tensor.Scale(tensor.RowDot(qa, ka), scale)
				alpha := ctx.SegmentSoftmaxByRecv(score)
				headOuts[a] = ctx.AggregateByRecv(tensor.MulColVec(va, alpha))
			}
			att = tensor.ConcatCols(headOuts...)
			edgeAvg = ctx.EdgeMean(kmod)
		}
		tensor.Add(tensor.Sum(att), tensor.Sum(edgeAvg)).Backward()
	}
	step() // warm the arena so the measured loop sees steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

func benchAttentionGAT(b *testing.B, engine EngineKind, fused bool) {
	ctx := benchAttentionContext(b, engine)
	const d, heads = 64, 4
	dk := d / heads
	rng := rand.New(rand.NewSource(8))
	wh := tensor.Randn(rng, ctx.NumRows, d, 0.5).RequireGrad()
	aL := tensor.Randn(rng, 1, d, 0.1).RequireGrad()
	aR := tensor.Randn(rng, 1, d, 0.1).RequireGrad()
	leaves := []*tensor.Tensor{wh, aL, aR}
	step := func() {
		for _, p := range leaves {
			p.ZeroGrad()
		}
		var att *tensor.Tensor
		if fused {
			att = ctx.FusedGATAttention(wh, aL, aR, heads)
		} else {
			sL := tensor.Mul(wh, broadcastRow(aL, wh.Rows()))
			sR := tensor.Mul(wh, broadcastRow(aR, wh.Rows()))
			whSend := ctx.GatherSend(wh)
			sLr := ctx.GatherRecv(sL)
			sRs := ctx.GatherSend(sR)
			headOuts := make([]*tensor.Tensor, heads)
			for a := 0; a < heads; a++ {
				lhs := tensor.RowSum(tensor.NarrowCols(sLr, a*dk, dk))
				rhs := tensor.RowSum(tensor.NarrowCols(sRs, a*dk, dk))
				score := ctx.Act(leakyReLU, tensor.Add(lhs, rhs))
				alpha := ctx.SegmentSoftmaxByRecv(score)
				va := tensor.NarrowCols(whSend, a*dk, dk)
				headOuts[a] = ctx.AggregateByRecv(tensor.MulColVec(va, alpha))
			}
			att = tensor.ConcatCols(headOuts...)
		}
		tensor.Sum(att).Backward()
	}
	step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

func BenchmarkAttentionGTMegaFused(b *testing.B)   { benchAttentionGT(b, EngineMega, true) }
func BenchmarkAttentionGTMegaStaged(b *testing.B)  { benchAttentionGT(b, EngineMega, false) }
func BenchmarkAttentionGTDGLFused(b *testing.B)    { benchAttentionGT(b, EngineDGL, true) }
func BenchmarkAttentionGTDGLStaged(b *testing.B)   { benchAttentionGT(b, EngineDGL, false) }
func BenchmarkAttentionGATMegaFused(b *testing.B)  { benchAttentionGAT(b, EngineMega, true) }
func BenchmarkAttentionGATMegaStaged(b *testing.B) { benchAttentionGAT(b, EngineMega, false) }
func BenchmarkAttentionGATDGLFused(b *testing.B)   { benchAttentionGAT(b, EngineDGL, true) }
func BenchmarkAttentionGATDGLStaged(b *testing.B)  { benchAttentionGAT(b, EngineDGL, false) }
