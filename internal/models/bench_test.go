package models

import (
	"math/rand"
	"runtime"
	"testing"

	"mega/internal/compute"
	"mega/internal/datasets"
	"mega/internal/graph"
	"mega/internal/tensor"
)

// Full-model benchmarks: one GT training step (forward + loss + backward)
// over a MEGA banded-attention context, serial pool vs all cores. The
// batch is 16 Erdős–Rényi graphs of 60 nodes — molecular-benchmark scale.

func benchInstances(b *testing.B) []datasets.Instance {
	b.Helper()
	rng := rand.New(rand.NewSource(21))
	insts := make([]datasets.Instance, 16)
	for i := range insts {
		g := graph.ErdosRenyiM(rng, 60, 180)
		nf := make([]int32, g.NumNodes())
		for j := range nf {
			nf[j] = int32(rng.Intn(8))
		}
		ef := make([]int32, g.NumEdges())
		for j := range ef {
			ef[j] = int32(rng.Intn(4))
		}
		insts[i] = datasets.Instance{G: g, NodeFeat: nf, EdgeFeat: ef, Target: rng.NormFloat64()}
	}
	return insts
}

func benchMegaStep(b *testing.B, threads, dim int) {
	prev := compute.SetMaxThreads(threads)
	defer compute.SetMaxThreads(prev)
	insts := benchInstances(b)
	ctx, err := NewMegaContext(insts, MegaOptions{}, nil, dim)
	if err != nil {
		b.Fatal(err)
	}
	model := NewGT(Config{
		Dim: dim, Layers: 4, Heads: 4,
		NodeTypes: 8, EdgeTypes: 4, OutDim: 1, Seed: 1,
	})
	params := model.Params()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range params {
			p.ZeroGrad()
		}
		out := model.Forward(ctx)
		tensor.MAELoss(out, ctx.Targets).Backward()
	}
}

func BenchmarkMegaGTStepSerial64(b *testing.B)    { benchMegaStep(b, 1, 64) }
func BenchmarkMegaGTStepParallel64(b *testing.B)  { benchMegaStep(b, runtime.NumCPU(), 64) }
func BenchmarkMegaGTStepSerial128(b *testing.B)   { benchMegaStep(b, 1, 128) }
func BenchmarkMegaGTStepParallel128(b *testing.B) { benchMegaStep(b, runtime.NumCPU(), 128) }

// benchMegaPreprocess isolates the CPU preprocessing fan-out (traversal +
// band construction + context assembly), the stage NewMegaContext
// parallelises per instance.
func benchMegaPreprocess(b *testing.B, threads int) {
	prev := compute.SetMaxThreads(threads)
	defer compute.SetMaxThreads(prev)
	insts := benchInstances(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewMegaContext(insts, MegaOptions{}, nil, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMegaPreprocessSerial(b *testing.B)   { benchMegaPreprocess(b, 1) }
func BenchmarkMegaPreprocessParallel(b *testing.B) { benchMegaPreprocess(b, runtime.NumCPU()) }
