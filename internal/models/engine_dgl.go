package models

import (
	"mega/internal/compute"
	"mega/internal/datasets"
	"mega/internal/gpusim"
	"mega/internal/graph"
)

// NewDGLContext builds the conventional gather/scatter context over a batch
// of instances: working rows are the batched node IDs, and the pair list is
// the directed edge list (each undirected edge contributes both
// directions), the layout DGL's message-passing kernels consume.
//
// sim may be nil to skip all profiling. dim sizes the simulated buffers.
func NewDGLContext(insts []datasets.Instance, sim *gpusim.Sim, dim int) (*Context, error) {
	members := make([]*graph.Graph, len(insts))
	for i, inst := range insts {
		members[i] = inst.G
	}
	b, err := graph.NewBatch(members)
	if err != nil {
		return nil, err
	}
	n := b.Merged.NumNodes()
	m := b.Merged.NumEdges()

	ctx := &Context{
		NumRows:   n,
		NumEdges:  m,
		NumGraphs: len(insts),
		GraphSeg:  b.GraphOf,
	}
	// Per-edge pair list: every directed pair's slot is a pure function of
	// the edge index, so the fill parallelises over disjoint ranges.
	edges := b.Merged.Edges()
	ctx.RecvIdx = make([]int32, 2*m)
	ctx.SendIdx = make([]int32, 2*m)
	ctx.EdgeIdx = make([]int32, 2*m)
	compute.ParallelGrain(m, 1024, func(lo, hi int) {
		for ei := lo; ei < hi; ei++ {
			e := edges[ei]
			ctx.RecvIdx[2*ei], ctx.RecvIdx[2*ei+1] = e.Dst, e.Src
			ctx.SendIdx[2*ei], ctx.SendIdx[2*ei+1] = e.Src, e.Dst
			ctx.EdgeIdx[2*ei], ctx.EdgeIdx[2*ei+1] = int32(ei), int32(ei)
		}
	})

	// Feature IDs: members own disjoint stripes at their batch offsets.
	nodeOff := make([]int, len(insts)+1)
	edgeOff := make([]int, len(insts)+1)
	for i, inst := range insts {
		nodeOff[i+1] = nodeOff[i] + len(inst.NodeFeat)
		edgeOff[i+1] = edgeOff[i] + len(inst.EdgeFeat)
	}
	ctx.NodeTypeIDs = make([]int32, nodeOff[len(insts)])
	ctx.EdgeTypeIDs = make([]int32, edgeOff[len(insts)])
	compute.Parallel(len(insts), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(ctx.NodeTypeIDs[nodeOff[i]:nodeOff[i+1]], insts[i].NodeFeat)
			copy(ctx.EdgeTypeIDs[edgeOff[i]:edgeOff[i+1]], insts[i].EdgeFeat)
		}
	})

	if sim != nil {
		prof := NewProf(sim, EngineDGL, n, m, dim)
		prof.SetDGLSortKeys(2 * m)
		ctx.Prof = prof
	}
	attachTargets(ctx, insts)
	return ctx, nil
}

// attachTargets fills regression targets and classification labels from
// the instances.
func attachTargets(ctx *Context, insts []datasets.Instance) {
	targets := make([]float64, len(insts))
	labels := make([]int, len(insts))
	for i, inst := range insts {
		targets[i] = inst.Target
		labels[i] = inst.Label
	}
	ctx.Targets = newColumn(targets)
	ctx.Labels = labels
}
