package models

import (
	"mega/internal/datasets"
	"mega/internal/gpusim"
	"mega/internal/graph"
)

// NewDGLContext builds the conventional gather/scatter context over a batch
// of instances: working rows are the batched node IDs, and the pair list is
// the directed edge list (each undirected edge contributes both
// directions), the layout DGL's message-passing kernels consume.
//
// sim may be nil to skip all profiling. dim sizes the simulated buffers.
func NewDGLContext(insts []datasets.Instance, sim *gpusim.Sim, dim int) (*Context, error) {
	members := make([]*graph.Graph, len(insts))
	for i, inst := range insts {
		members[i] = inst.G
	}
	b, err := graph.NewBatch(members)
	if err != nil {
		return nil, err
	}
	n := b.Merged.NumNodes()
	m := b.Merged.NumEdges()

	ctx := &Context{
		NumRows:   n,
		NumEdges:  m,
		NumGraphs: len(insts),
		GraphSeg:  b.GraphOf,
	}
	ctx.RecvIdx = make([]int32, 0, 2*m)
	ctx.SendIdx = make([]int32, 0, 2*m)
	ctx.EdgeIdx = make([]int32, 0, 2*m)
	for ei, e := range b.Merged.Edges() {
		ctx.RecvIdx = append(ctx.RecvIdx, e.Dst, e.Src)
		ctx.SendIdx = append(ctx.SendIdx, e.Src, e.Dst)
		ctx.EdgeIdx = append(ctx.EdgeIdx, int32(ei), int32(ei))
	}

	ctx.NodeTypeIDs = make([]int32, 0, n)
	ctx.EdgeTypeIDs = make([]int32, 0, m)
	for _, inst := range insts {
		ctx.NodeTypeIDs = append(ctx.NodeTypeIDs, inst.NodeFeat...)
		ctx.EdgeTypeIDs = append(ctx.EdgeTypeIDs, inst.EdgeFeat...)
	}

	if sim != nil {
		prof := NewProf(sim, EngineDGL, n, m, dim)
		prof.SetDGLSortKeys(2 * m)
		ctx.Prof = prof
	}
	attachTargets(ctx, insts)
	return ctx, nil
}

// attachTargets fills regression targets and classification labels from
// the instances.
func attachTargets(ctx *Context, insts []datasets.Instance) {
	targets := make([]float64, len(insts))
	labels := make([]int, len(insts))
	for i, inst := range insts {
		targets[i] = inst.Target
		labels[i] = inst.Label
	}
	ctx.Targets = newColumn(targets)
	ctx.Labels = labels
}
