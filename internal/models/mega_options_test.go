package models

import (
	"testing"

	"mega/internal/traverse"
)

// Regression tests for MegaOptions default resolution. The old logic
// applied traverse defaults only when EdgeCoverage, Window, and Start
// were ALL zero, so any partially-set Options silently turned the other
// zero fields into their literal (and usually nonsensical) values:
// EdgeCoverage 0 covered nothing, Start 0 pinned the walk to vertex 0.
// Defaults now resolve per field, with PinStart disambiguating the
// legitimate "start at vertex 0" request from the zero value.
func TestMegaOptionsTraverseDefaults(t *testing.T) {
	def := traverse.DefaultOptions()

	t.Run("zero value", func(t *testing.T) {
		got := MegaOptions{}.traverseOptions()
		if got != def {
			t.Fatalf("zero MegaOptions resolved to %+v, want defaults %+v", got, def)
		}
	})

	t.Run("window alone keeps other defaults", func(t *testing.T) {
		got := MegaOptions{Traverse: traverse.Options{Window: 3}}.traverseOptions()
		if got.Window != 3 {
			t.Fatalf("Window = %d, want 3", got.Window)
		}
		if got.EdgeCoverage != def.EdgeCoverage {
			t.Fatalf("EdgeCoverage = %v, want default %v", got.EdgeCoverage, def.EdgeCoverage)
		}
		if got.Start != def.Start {
			t.Fatalf("Start = %v, want default %v", got.Start, def.Start)
		}
	})

	t.Run("explicit fields survive", func(t *testing.T) {
		in := traverse.Options{Window: 2, EdgeCoverage: 0.5, DropEdges: 0.1, Start: 7, Seed: 9}
		got := MegaOptions{Traverse: in}.traverseOptions()
		if got != in {
			t.Fatalf("explicit options changed: %+v -> %+v", in, got)
		}
	})

	t.Run("PinStart zero means vertex 0", func(t *testing.T) {
		got := MegaOptions{}.PinStart(0).traverseOptions()
		if got.Start != 0 {
			t.Fatalf("PinStart(0) resolved Start to %v, want 0", got.Start)
		}
		if got.EdgeCoverage != def.EdgeCoverage {
			t.Fatalf("PinStart must not disturb EdgeCoverage: got %v", got.EdgeCoverage)
		}
	})

	t.Run("unpinned zero start is adaptive", func(t *testing.T) {
		got := MegaOptions{Traverse: traverse.Options{EdgeCoverage: 1}}.traverseOptions()
		if got.Start != def.Start {
			t.Fatalf("unpinned Start = %v, want default %v", got.Start, def.Start)
		}
	})
}
