package models

import (
	"math"
	"math/rand"

	"mega/internal/nn"
	"mega/internal/tensor"
)

// GT is the Graph Transformer of Dwivedi & Bresson (§III-1): multi-head
// scaled dot-product attention restricted to graph edges, with edge
// features modulating the scores, followed by residual + layer norm and a
// position-wise FFN on both node and edge streams.
//
// Per layer: Q, K, V, O projections (4d²), edge projection W_e (d²), edge
// output O_e (d²), and two d→2d→d FFNs (4d² each) — the 14d² parameter
// volume of Table I. The per-pair score of head a is
//
//	s_ij = ( q_i^a · (k_j^a ⊙ ŵ_ij^a) ) / √d_a,  ŵ = W_e·e_ij
//
// normalised by softmax over each receiver's pairs.
type GT struct {
	cfg     Config
	fused   bool
	enc     *encoder
	layers  []*gtLayer
	readout *nn.MLP
}

var _ Model = (*GT)(nil)

type gtLayer struct {
	q, k, v, o *nn.Linear
	we, oe     *nn.Linear
	ffnH1      *nn.Linear
	ffnH2      *nn.Linear
	ffnE1      *nn.Linear
	ffnE2      *nn.Linear
	lnH1, lnH2 *nn.Norm
	lnE1, lnE2 *nn.Norm
}

// NewGT constructs the model.
func NewGT(cfg Config) *GT {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x67))
	m := &GT{
		cfg:     cfg,
		fused:   cfg.fusedAttention(),
		enc:     newEncoder(rng, cfg),
		readout: nn.NewMLP(rng, cfg.Dim, cfg.Dim/2, cfg.OutDim),
	}
	for i := 0; i < cfg.Layers; i++ {
		m.layers = append(m.layers, &gtLayer{
			q:     nn.NewLinear(rng, cfg.Dim, cfg.Dim),
			k:     nn.NewLinear(rng, cfg.Dim, cfg.Dim),
			v:     nn.NewLinear(rng, cfg.Dim, cfg.Dim),
			o:     nn.NewLinear(rng, cfg.Dim, cfg.Dim),
			we:    nn.NewLinear(rng, cfg.Dim, cfg.Dim),
			oe:    nn.NewLinear(rng, cfg.Dim, cfg.Dim),
			ffnH1: nn.NewLinear(rng, cfg.Dim, 2*cfg.Dim),
			ffnH2: nn.NewLinear(rng, 2*cfg.Dim, cfg.Dim),
			ffnE1: nn.NewLinear(rng, cfg.Dim, 2*cfg.Dim),
			ffnE2: nn.NewLinear(rng, 2*cfg.Dim, cfg.Dim),
			lnH1:  nn.NewNorm(nn.LayerNorm, cfg.Dim),
			lnH2:  nn.NewNorm(nn.LayerNorm, cfg.Dim),
			lnE1:  nn.NewNorm(nn.LayerNorm, cfg.Dim),
			lnE2:  nn.NewNorm(nn.LayerNorm, cfg.Dim),
		})
	}
	return m
}

// Name implements Model.
func (m *GT) Name() string { return "GT" }

// Config returns the model configuration.
func (m *GT) Config() Config { return m.cfg }

// Params implements Model.
func (m *GT) Params() []*tensor.Tensor {
	out := m.enc.params()
	for _, l := range m.layers {
		out = append(out, nn.CollectParams(
			l.q, l.k, l.v, l.o, l.we, l.oe,
			l.ffnH1, l.ffnH2, l.ffnE1, l.ffnE2,
			l.lnH1, l.lnH2, l.lnE1, l.lnE2)...)
	}
	return append(out, m.readout.Params()...)
}

// Forward implements Model.
func (m *GT) Forward(ctx *Context) *tensor.Tensor {
	h, e := m.enc.forward(ctx)
	for _, l := range m.layers {
		h, e = l.forward(ctx, h, e, m.cfg.Heads, m.fused)
	}
	pooled := ctx.Readout(h)
	ctx.Prof.Linear(pooled.Rows(), pooled.Cols(), m.cfg.OutDim)
	return m.readout.Forward(pooled)
}

// forward runs one GT block. It is composed from the three stages below so
// the shard engine can run each stage on its own chunk-local context; the
// recomposition preserves the exact op and profiler-emission order of the
// original monolithic layer.
func (l *gtLayer) forward(ctx *Context, h, e *tensor.Tensor, heads int, fused bool) (hOut, eOut *tensor.Tensor) {
	ctx.Prof.LayerStart()
	var att, edgeAvg, kmod *tensor.Tensor
	if fused {
		// One kernel for the whole attention block (plus the per-edge
		// mean of k⊙ê consumed by the edge stream below); bit-identical
		// to the staged pipeline it replaces.
		qh := ctx.Linear(l.q, h)
		kh := ctx.Linear(l.k, h)
		vh := ctx.Linear(l.v, h)
		eh := ctx.Linear(l.we, e)
		att, edgeAvg = ctx.FusedGTAttention(qh, kh, vh, eh, heads)
	} else {
		att, kmod = l.forwardAttnStaged(ctx, h, e, heads)
	}

	hOut = l.nodeStream(ctx, h, att)

	// The fused path computed the per-edge reduction already; account it
	// here, at the staged emission point (the simulated L2 is
	// order-sensitive, so emission order is part of the contract).
	if fused {
		ctx.NoteEdgeMean(h.Cols())
	} else {
		edgeAvg = ctx.EdgeMean(kmod)
	}
	eOut = l.edgeStream(ctx, e, edgeAvg)

	hOut = ctx.SyncDuplicates(hOut)
	return hOut, eOut
}

// forwardAttnStaged runs the staged attention block: q/k/v/ê projections,
// per-pair gathers (the GT's five edge-indexed scatters of Table I), edge-
// modulated per-head scaled dot-product attention. It returns the
// aggregated attention output and the per-pair modulated keys k⊙ê, which
// the edge stream reduces per edge.
func (l *gtLayer) forwardAttnStaged(ctx *Context, h, e *tensor.Tensor, heads int) (att, kmod *tensor.Tensor) {
	d := h.Cols()
	dk := d / heads

	qh := ctx.Linear(l.q, h)
	kh := ctx.Linear(l.k, h)
	vh := ctx.Linear(l.v, h)
	eh := ctx.Linear(l.we, e)

	qp := ctx.GatherRecv(qh)
	kp := ctx.GatherSend(kh)
	vp := ctx.GatherSend(vh)
	ep := ctx.GatherEdges(eh)

	kmod = tensor.Mul(kp, ep) // edge features modulate keys
	headOuts := make([]*tensor.Tensor, heads)
	scale := 1 / math.Sqrt(float64(dk))
	for a := 0; a < heads; a++ {
		qa := tensor.NarrowCols(qp, a*dk, dk)
		ka := tensor.NarrowCols(kmod, a*dk, dk)
		va := tensor.NarrowCols(vp, a*dk, dk)
		score := tensor.Scale(tensor.RowDot(qa, ka), scale)
		alpha := ctx.SegmentSoftmaxByRecv(score)
		headOuts[a] = ctx.AggregateByRecv(tensor.MulColVec(va, alpha))
	}
	att = tensor.ConcatCols(headOuts...)
	return att, kmod
}

// nodeStream runs the node half of the block: O projection, residual + LN,
// FFN, residual + LN. Every op is row-local, so running it over a chunk's
// rows produces exactly the chunk's stripe of the full result.
func (l *gtLayer) nodeStream(ctx *Context, h, att *tensor.Tensor) *tensor.Tensor {
	h1 := ctx.Norm(l.lnH1, tensor.Add(h, ctx.Linear(l.o, att)))
	ffn := ctx.Linear(l.ffnH2, ctx.Act(tensor.ReLU, ctx.Linear(l.ffnH1, h1)))
	return ctx.Norm(l.lnH2, tensor.Add(h1, ffn))
}

// edgeStream runs the edge half of the block on an already-reduced per-edge
// mean eAvg: O_e projection, residual + LN, FFN, residual + LN. Row-local
// like nodeStream.
func (l *gtLayer) edgeStream(ctx *Context, e, eAvg *tensor.Tensor) *tensor.Tensor {
	eAgg := ctx.Linear(l.oe, eAvg)
	e1 := ctx.Norm(l.lnE1, tensor.Add(e, eAgg))
	ffnE := ctx.Linear(l.ffnE2, ctx.Act(tensor.ReLU, ctx.Linear(l.ffnE1, e1)))
	return ctx.Norm(l.lnE2, tensor.Add(e1, ffnE))
}

// CountOps reports Table I's operation statistics for this model over the
// given context.
func (m *GT) CountOps(ctx *Context) OpCounts { return countOps(m, ctx) }
