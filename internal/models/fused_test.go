package models

import (
	"runtime"
	"testing"

	"mega/internal/compute"
	"mega/internal/gpusim"
	"mega/internal/tensor"
)

// Fused-vs-staged equivalence: the fused attention kernel must reproduce
// the staged pipeline bit-for-bit — identical forward outputs, identical
// gradients on every parameter, at any thread count, on both engines, for
// both attention models. Exact equality, not tolerance: the kernel
// replicates the staged ops' accumulation orders, so any drift is a bug.

// buildEquivContext builds one context per engine over shared instances.
func equivContexts(t *testing.T) map[string]*Context {
	t.Helper()
	insts := testInstances(t, 6)
	megaCtx, err := NewMegaContext(insts, MegaOptions{}, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	dglCtx, err := NewDGLContext(insts, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Context{"mega": megaCtx, "dgl": dglCtx}
}

// newAttnModel builds a GT or GAT with the given attention mode.
func newAttnModel(t *testing.T, name, mode string) Model {
	t.Helper()
	cfg := smallConfig()
	cfg.Attention = mode
	switch name {
	case "GT":
		return NewGT(cfg)
	case "GAT":
		return NewGAT(cfg)
	}
	t.Fatalf("unknown model %q", name)
	return nil
}

// stepExact runs steps forward+backward passes (simulating training by
// scaling params with their gradients between steps, so later steps see
// diverging inputs if anything drifts) and returns the final outputs and
// parameter gradients.
func stepExact(t *testing.T, m Model, ctx *Context, steps int) (*tensor.Tensor, [][]float64) {
	t.Helper()
	params := m.Params()
	var out *tensor.Tensor
	for s := 0; s < steps; s++ {
		for _, p := range params {
			p.ZeroGrad()
		}
		out = m.Forward(ctx)
		loss := tensor.MAELoss(out, ctx.Targets)
		loss.Backward()
		if s+1 < steps {
			// A deterministic SGD-flavoured update keeps the
			// trajectories comparable across implementations.
			for _, p := range params {
				if p.Grad == nil {
					continue
				}
				for i := range p.Data {
					p.Data[i] -= 1e-3 * p.Grad[i]
				}
			}
		}
	}
	grads := make([][]float64, len(params))
	for i, p := range params {
		if p.Grad != nil {
			grads[i] = append([]float64(nil), p.Grad...)
		}
	}
	return out, grads
}

func TestFusedMatchesStagedExactly(t *testing.T) {
	ctxs := equivContexts(t)
	for _, model := range []string{"GT", "GAT"} {
		for engine, ctx := range ctxs {
			t.Run(model+"/"+engine, func(t *testing.T) {
				staged := newAttnModel(t, model, "staged")
				fused := newAttnModel(t, model, "fused")
				sOut, sGrads := stepExact(t, staged, ctx, 3)
				fOut, fGrads := stepExact(t, fused, ctx, 3)
				for i := range sOut.Data {
					if sOut.Data[i] != fOut.Data[i] {
						t.Fatalf("output %d: staged %v fused %v", i, sOut.Data[i], fOut.Data[i])
					}
				}
				if len(sGrads) != len(fGrads) {
					t.Fatalf("param count mismatch %d vs %d", len(sGrads), len(fGrads))
				}
				for pi := range sGrads {
					if len(sGrads[pi]) != len(fGrads[pi]) {
						t.Fatalf("param %d grad presence mismatch", pi)
					}
					for i := range sGrads[pi] {
						if sGrads[pi][i] != fGrads[pi][i] {
							t.Fatalf("param %d grad %d: staged %v fused %v",
								pi, i, sGrads[pi][i], fGrads[pi][i])
						}
					}
				}
			})
		}
	}
}

// TestFusedThreadInvariant pins that the fused path is bit-identical at
// any thread count (and so equal to the staged serial reference).
func TestFusedThreadInvariant(t *testing.T) {
	insts := testInstances(t, 6)
	run := func(threads int, model string) (*tensor.Tensor, [][]float64) {
		prev := compute.SetMaxThreads(threads)
		defer compute.SetMaxThreads(prev)
		ctx, err := NewMegaContext(insts, MegaOptions{}, nil, 16)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Scratch = tensor.NewArena()
		m := newAttnModel(t, model, "fused")
		return stepExact(t, m, ctx, 2)
	}
	for _, model := range []string{"GT", "GAT"} {
		base, baseG := run(1, model)
		for _, threads := range []int{2, runtime.NumCPU()} {
			out, grads := run(threads, model)
			for i := range base.Data {
				if base.Data[i] != out.Data[i] {
					t.Fatalf("%s output %d differs at %d threads", model, i, threads)
				}
			}
			for pi := range baseG {
				for i := range baseG[pi] {
					if baseG[pi][i] != grads[pi][i] {
						t.Fatalf("%s param %d grad %d differs at %d threads", model, pi, i, threads)
					}
				}
			}
		}
	}
}

// TestFusedOpCountsMatchStaged pins that Table I's abstract op accounting
// is independent of the attention implementation.
func TestFusedOpCountsMatchStaged(t *testing.T) {
	ctxs := equivContexts(t)
	for _, model := range []string{"GT", "GAT"} {
		for engine, ctx := range ctxs {
			staged := newAttnModel(t, model, "staged")
			fused := newAttnModel(t, model, "fused")
			var sc, fc OpCounts
			switch m := staged.(type) {
			case *GT:
				sc = m.CountOps(ctx)
			case *GAT:
				sc = m.CountOps(ctx)
			}
			switch m := fused.(type) {
			case *GT:
				fc = m.CountOps(ctx)
			case *GAT:
				fc = m.CountOps(ctx)
			}
			if sc != fc {
				t.Fatalf("%s/%s op counts: staged %+v fused %+v", model, engine, sc, fc)
			}
		}
	}
}

// TestFusedProfilingMatchesStaged pins that the fused path reports the
// exact same simulated-kernel stream as the staged path: gpusim's L2 is
// a real set-associative LRU, so identical cycle totals mean identical
// address streams in identical order — the "profiling stays honest"
// requirement.
func TestFusedProfilingMatchesStaged(t *testing.T) {
	insts := testInstances(t, 6)
	cycles := func(engine EngineKind, mode string) (float64, float64) {
		sim := gpusim.New(gpusim.GTX1080())
		var ctx *Context
		var err error
		if engine == EngineMega {
			ctx, err = NewMegaContext(insts, MegaOptions{}, sim, 16)
		} else {
			ctx, err = NewDGLContext(insts, sim, 16)
		}
		if err != nil {
			t.Fatal(err)
		}
		m := newAttnModel(t, "GT", mode)
		out := m.Forward(ctx)
		fwd := sim.TotalCycles()
		tensor.MAELoss(out, ctx.Targets).Backward()
		ctx.Prof.Backward()
		return fwd, sim.TotalCycles()
	}
	for _, engine := range []EngineKind{EngineMega, EngineDGL} {
		sf, st := cycles(engine, "staged")
		ff, ft := cycles(engine, "fused")
		if sf != ff || st != ft {
			t.Fatalf("%v cycles differ: staged fwd %v total %v, fused fwd %v total %v",
				engine, sf, st, ff, ft)
		}
	}
}

// TestFusedArenaReuseIsExact pins that reusing pooled scratch across many
// steps cannot perturb results: the second and later steps (served from
// the arena) must match a fresh-allocation run bit-for-bit.
func TestFusedArenaReuseIsExact(t *testing.T) {
	insts := testInstances(t, 4)
	run := func(arena *tensor.Arena) (*tensor.Tensor, [][]float64) {
		ctx, err := NewMegaContext(insts, MegaOptions{}, nil, 16)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Scratch = arena
		m := newAttnModel(t, "GT", "fused")
		return stepExact(t, m, ctx, 4)
	}
	base, baseG := run(nil)
	arena := tensor.NewArena()
	out, grads := run(arena)
	for i := range base.Data {
		if base.Data[i] != out.Data[i] {
			t.Fatalf("output %d differs under arena reuse", i)
		}
	}
	for pi := range baseG {
		for i := range baseG[pi] {
			if baseG[pi][i] != grads[pi][i] {
				t.Fatalf("param %d grad %d differs under arena reuse", pi, i)
			}
		}
	}
	if arena.Buffered() == 0 {
		t.Fatal("arena never reclaimed any scratch buffer")
	}
}
