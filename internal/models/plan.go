package models

import (
	"mega/internal/compute"
	"mega/internal/tensor"
)

// SegmentPlan is the topology-only part of a MEGA context for one graph,
// precomputed once per PreparedRep and reused across every batch the rep
// appears in. Before this existed, every forward re-enumerated the band
// mask into pair lists and re-ran the counting sorts behind the CSR
// segment groupings; a cached rep in a serving hot loop paid that on every
// request. The plan depends only on the band representation (never on
// features, targets, or batch composition), so it lives next to the rep in
// the serve cache and survives copy-on-write /update publication — a fresh
// PreparedRep simply builds a fresh plan on first use.
//
// All slices are read-only after construction and safe to share across
// concurrent forwards; batch assembly copies (with offsets) rather than
// mutating.
type SegmentPlan struct {
	// Recv/Send/Edge are the single-graph directed pair lists in the
	// canonical offset-major enumeration order (offset ascending, band
	// index ascending, low→high then high→low direction per masked slot).
	Recv, Send, Edge []int32
	// OffsetStart[o] is the first directed-pair index of offset o+1's
	// block: offset o's pairs are Recv[OffsetStart[o-1]:OffsetStart[o]].
	// Length Window+1.
	OffsetStart []int32
	// ByRecv/BySend/ByEdge are the CSR segment groupings of the pair list
	// (the duplicate-free single-graph case reuses them directly instead
	// of re-sorting per batch).
	ByRecv, BySend, ByEdge *tensor.Segments
	// PosToNode maps each path position to its node ID (the duplicate-
	// group table: positions sharing a node synchronise together).
	PosToNode []int32
	// SyncPositions lists every position belonging to a duplicate group,
	// in group order — non-empty iff the path revisits nodes.
	SyncPositions []int32
	// Rows/Edges/Nodes/Window size the graph's stripe of a batch.
	Rows, Edges, Nodes, Window int
}

// Plan returns the rep's segment plan, building it on first use (thread-
// safe; serve workers race benignly on the sync.Once).
func (p *PreparedRep) Plan() *SegmentPlan {
	p.planOnce.Do(func() { p.plan = buildSegmentPlan(p) })
	return p.plan
}

// buildSegmentPlan enumerates one graph's band mask into the canonical
// pair lists and groups them. The enumeration order is exactly the order
// NewMegaContextFromReps always produced — the plan is a cache, not a
// re-derivation, and the batch assembler's output is byte-identical to the
// pre-plan code (pinned by the training trajectory tests).
func buildSegmentPlan(mr *PreparedRep) *SegmentPlan {
	rep := mr.Rep
	rows := rep.Len()
	window := rep.Window
	plan := &SegmentPlan{
		Rows:   rows,
		Edges:  mr.Res.Graph.NumEdges(),
		Nodes:  mr.Res.Graph.NumNodes(),
		Window: window,
	}

	plan.OffsetStart = make([]int32, window+1)
	for o := 1; o <= window; o++ {
		c := int32(0)
		for _, on := range rep.Mask[o-1] {
			if on {
				c++
			}
		}
		plan.OffsetStart[o] = plan.OffsetStart[o-1] + 2*c
	}
	total := int(plan.OffsetStart[window])
	plan.Recv = make([]int32, total)
	plan.Send = make([]int32, total)
	plan.Edge = make([]int32, total)
	// Offset blocks are disjoint output ranges — fill them in parallel.
	compute.Parallel(window, func(olo, ohi int) {
		for o := olo + 1; o <= ohi; o++ {
			mask := rep.Mask[o-1]
			eids := rep.EdgeID[o-1]
			at := int(plan.OffsetStart[o-1])
			for i, on := range mask {
				if !on {
					continue
				}
				lo := int32(i)
				hi := int32(i + o)
				eid := eids[i]
				// Both directions share the pair's edge features —
				// the §III-C symmetric-diagonal reuse.
				plan.Recv[at], plan.Recv[at+1] = lo, hi
				plan.Send[at], plan.Send[at+1] = hi, lo
				plan.Edge[at], plan.Edge[at+1] = eid, eid
				at += 2
			}
		}
	})

	plan.ByRecv = tensor.BuildSegments(plan.Recv, rows)
	plan.BySend = tensor.BuildSegments(plan.Send, rows)
	plan.ByEdge = tensor.BuildSegments(plan.Edge, plan.Edges)

	plan.PosToNode = make([]int32, rows)
	for pi, v := range rep.Path {
		plan.PosToNode[pi] = v
	}
	for _, positions := range rep.SyncGroups() {
		plan.SyncPositions = append(plan.SyncPositions, positions...)
	}
	return plan
}
