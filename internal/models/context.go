// Package models implements the two GNN configurations the paper evaluates
// — Gated Graph ConvNet (GCN, Bresson & Laurent) and Graph Transformer (GT,
// Dwivedi & Bresson) — over two interchangeable attention engines:
//
//   - the DGL-style baseline (engine_dgl.go): per-directed-edge
//     gather/scatter aggregation over node IDs, profiled as irregular
//     gather/scatter/cub kernels;
//   - MEGA (engine_mega.go): the same mathematical aggregation expressed
//     over the band representation's pair list, profiled as sequential
//     banded sweeps plus a duplicate-synchronisation kernel.
//
// Both engines drive the identical layer code through a Context: a list of
// directed attention pairs (receiver row, sender row, undirected edge ID)
// over a working embedding matrix. The engines therefore share parameters
// exactly — the paper's "identical parameter counts" requirement — and
// differ only in row layout, pair order, duplicate handling, and the
// simulated memory behaviour reported to gpusim.
package models

import (
	"math"

	"mega/internal/nn"
	"mega/internal/tensor"
)

// Context carries everything one forward pass needs: the pair list, row
// metadata, readout segments, and the profiler that accounts simulated GPU
// cost.
type Context struct {
	// NumRows is the number of working embedding rows: total nodes for
	// the DGL engine, total path positions for MEGA.
	NumRows int
	// RecvIdx/SendIdx/EdgeIdx describe the directed attention pairs:
	// pair p aggregates row SendIdx[p] into row RecvIdx[p] using
	// undirected edge EdgeIdx[p]'s features.
	RecvIdx []int32
	SendIdx []int32
	EdgeIdx []int32
	// NumEdges is the undirected edge count (edge-embedding rows).
	NumEdges int
	// NodeTypeIDs[r] is the categorical node feature for working row r.
	NodeTypeIDs []int32
	// EdgeTypeIDs[e] is the categorical edge feature for edge e.
	EdgeTypeIDs []int32
	// GraphSeg[r] is the member-graph index of working row r; readout
	// pools rows by this segmentation.
	GraphSeg []int32
	// NumGraphs is the batch size for readout.
	NumGraphs int

	// Sync merges duplicate rows after each layer (MEGA's path revisits);
	// nil means rows are unique (DGL engine).
	Sync func(h *tensor.Tensor) *tensor.Tensor

	// ReadoutFn overrides the default per-graph mean pooling; the MEGA
	// engine uses it to pool nodes rather than path positions so that
	// revisited nodes are not over-weighted.
	ReadoutFn func(h *tensor.Tensor) *tensor.Tensor

	// Prof receives simulated-kernel notifications; nil disables
	// profiling entirely.
	Prof *Prof

	// Targets for training: exactly one of the two is used depending on
	// the dataset task.
	Targets *tensor.Tensor // [NumGraphs,1] regression targets
	Labels  []int          // classification labels

	// Scratch pools the fused attention path's forward/backward scratch
	// buffers across steps (owned by the train loop or the serve worker
	// pool); nil falls back to plain allocation.
	Scratch *tensor.Arena

	// counter tallies abstract op calls for Table I; nil outside
	// CountOps probes.
	counter *opCounter

	// MEGA-engine structural metadata, recorded so the shard engine can
	// re-derive the engine's sync/readout arithmetic chunk by chunk. Nil /
	// zero for the DGL engine.
	posToNode    []int32 // working row → globally unique node slot
	nodeGraph    []int32 // node slot → member-graph index
	numNodeSlots int     // total node slots across the batch
	maxWindow    int     // widest band half-width ω in the batch
	// syncPositions lists the rows belonging to duplicate groups (empty
	// means Sync is the identity); the tape-free f32 forward consults it
	// directly instead of going through the Sync closure.
	syncPositions []int32

	// Lazily-built CSR groupings of the pair list, shared by every fused
	// attention layer and step over this context.
	byRecv, bySend, byEdge *tensor.Segments
}

// recvSegments groups pairs by receiver row (built once, cached).
func (c *Context) recvSegments() *tensor.Segments {
	if c.byRecv == nil {
		c.byRecv = tensor.BuildSegments(c.RecvIdx, c.NumRows)
	}
	return c.byRecv
}

// sendSegments groups pairs by sender row.
func (c *Context) sendSegments() *tensor.Segments {
	if c.bySend == nil {
		c.bySend = tensor.BuildSegments(c.SendIdx, c.NumRows)
	}
	return c.bySend
}

// edgeSegments groups pairs by undirected edge ID.
func (c *Context) edgeSegments() *tensor.Segments {
	if c.byEdge == nil {
		c.byEdge = tensor.BuildSegments(c.EdgeIdx, c.NumEdges)
	}
	return c.byEdge
}

// NumPairs returns the directed pair count.
func (c *Context) NumPairs() int { return len(c.RecvIdx) }

// GatherRecv gathers h rows at each pair's receiver.
func (c *Context) GatherRecv(h *tensor.Tensor) *tensor.Tensor {
	if c.counter != nil {
		c.counter.gathers++
	}
	c.Prof.pairGatherNodes(c, c.RecvIdx, h.Cols())
	return tensor.GatherRows(h, c.RecvIdx)
}

// GatherSend gathers h rows at each pair's sender.
func (c *Context) GatherSend(h *tensor.Tensor) *tensor.Tensor {
	if c.counter != nil {
		c.counter.gathers++
	}
	c.Prof.pairGatherNodes(c, c.SendIdx, h.Cols())
	return tensor.GatherRows(h, c.SendIdx)
}

// GatherEdges gathers the undirected edge embedding behind each pair.
func (c *Context) GatherEdges(e *tensor.Tensor) *tensor.Tensor {
	if c.counter != nil {
		c.counter.gathers++
	}
	c.Prof.pairGatherEdges(c, e.Cols())
	return tensor.GatherRows(e, c.EdgeIdx)
}

// AggregateByRecv sums pair values into their receiver rows.
func (c *Context) AggregateByRecv(x *tensor.Tensor) *tensor.Tensor {
	if c.counter != nil {
		c.counter.scatters++
	}
	c.Prof.pairScatter(c, x.Cols())
	return tensor.ScatterAddRows(x, c.RecvIdx, c.NumRows)
}

// EdgeMean averages pair values back onto their undirected edges (both
// directions of an edge contribute), producing the updated edge embedding.
func (c *Context) EdgeMean(x *tensor.Tensor) *tensor.Tensor {
	if c.counter != nil {
		c.counter.scatters++
	}
	c.Prof.edgeReduce(c, x.Cols())
	return tensor.SegmentMean(x, c.EdgeIdx, c.NumEdges)
}

// Linear applies a linear layer with sgemm profiling and op counting.
func (c *Context) Linear(l *nn.Linear, x *tensor.Tensor) *tensor.Tensor {
	if c.counter != nil {
		c.counter.linears++
	}
	c.Prof.Linear(x.Rows(), x.Cols(), l.W.Cols())
	return l.Forward(x)
}

// Act applies an elementwise activation with profiling.
func (c *Context) Act(f func(*tensor.Tensor) *tensor.Tensor, x *tensor.Tensor) *tensor.Tensor {
	c.Prof.Elementwise(x.Size())
	return f(x)
}

// Norm applies a normalisation layer with profiling.
func (c *Context) Norm(n *nn.Norm, x *tensor.Tensor) *tensor.Tensor {
	c.Prof.Elementwise(2 * x.Size())
	return n.Forward(x)
}

// SegmentSoftmaxByRecv computes a numerically stable softmax of per-pair
// scores ([P,1]) grouped by receiver, the attention normalisation of GT.
func (c *Context) SegmentSoftmaxByRecv(score *tensor.Tensor) *tensor.Tensor {
	// Per-receiver max as a constant shift (no gradient contribution).
	maxPer := make([]float64, c.NumRows)
	for i := range maxPer {
		maxPer[i] = math.Inf(-1)
	}
	for p, r := range c.RecvIdx {
		if v := score.Data[p]; v > maxPer[r] {
			maxPer[r] = v
		}
	}
	shift := tensor.Zeros(len(c.RecvIdx), 1)
	for p, r := range c.RecvIdx {
		shift.Data[p] = maxPer[r]
	}
	ex := tensor.Exp(tensor.Sub(score, shift))
	denom := c.AggregateByRecv(ex)
	denomPer := c.GatherRecv(tensor.AddScalar(denom, 1e-9))
	return tensor.Div(ex, denomPer)
}

// NormalizeByRecvSum divides per-pair gate values ([P,d]) by the sum of the
// gates over each receiver (plus eps), GatedGCN's η normalisation.
func (c *Context) NormalizeByRecvSum(gate *tensor.Tensor, eps float64) *tensor.Tensor {
	denom := c.AggregateByRecv(gate)
	denomPer := c.GatherRecv(tensor.AddScalar(denom, eps))
	return tensor.Div(gate, denomPer)
}

// SyncDuplicates applies the engine's duplicate-row synchronisation.
func (c *Context) SyncDuplicates(h *tensor.Tensor) *tensor.Tensor {
	if c.Sync == nil {
		return h
	}
	return c.Sync(h)
}

// FusedGTAttention runs the GT layer's whole attention block — per-pair
// q/k/v/ê projections, edge-modulated scaled dot-product scores, segment
// softmax, and per-head aggregation — as one fused kernel, plus the
// per-edge mean of k⊙ê for the edge stream. Bit-identical to the staged
// pipeline. It tallies the same abstract op counts and emits the same
// simulated-kernel address streams as the staged ops it replaces (the
// kernel reads the same rows in the same band order, so profiling stays
// honest); only the edge-mean scatter is emitted separately, via
// NoteEdgeMean at the staged pipeline's emission point.
func (c *Context) FusedGTAttention(q, k, v, ew *tensor.Tensor, heads int) (att, edgeMean *tensor.Tensor) {
	if c.counter != nil {
		c.counter.gathers += 4 + heads
		c.counter.scatters += 2 * heads
	}
	c.Prof.pairGatherNodes(c, c.RecvIdx, q.Cols())
	c.Prof.pairGatherNodes(c, c.SendIdx, k.Cols())
	c.Prof.pairGatherNodes(c, c.SendIdx, v.Cols())
	c.Prof.pairGatherEdges(c, ew.Cols())
	dk := q.Cols() / heads
	for a := 0; a < heads; a++ {
		c.Prof.pairScatter(c, 1)
		c.Prof.pairGatherNodes(c, c.RecvIdx, 1)
		c.Prof.pairScatter(c, dk)
	}
	return tensor.FusedSegmentAttention(q, k, v, ew, c.RecvIdx, c.SendIdx, c.EdgeIdx,
		c.recvSegments(), c.sendSegments(), c.edgeSegments(), heads, c.Scratch)
}

// NoteEdgeMean accounts the edge-mean reduction already computed inside
// FusedGTAttention, at the exact point the staged pipeline emitted it —
// the simulated L2 is order-sensitive, so emission order is part of the
// profiling contract.
func (c *Context) NoteEdgeMean(cols int) {
	if c.counter != nil {
		c.counter.scatters++
	}
	c.Prof.edgeReduce(c, cols)
}

// FusedGATAttention runs the GAT layer's attention block — additive
// leaky-ReLU scores from the aL/aR attention vectors, segment softmax,
// per-head aggregation of Wh — as one fused kernel, bit-identical to the
// staged pipeline, with the staged path's op counts and kernel emissions.
func (c *Context) FusedGATAttention(wh, aL, aR *tensor.Tensor, heads int) *tensor.Tensor {
	if c.counter != nil {
		c.counter.gathers += 3 + heads
		c.counter.scatters += 2 * heads
	}
	c.Prof.pairGatherNodes(c, c.SendIdx, wh.Cols())
	c.Prof.pairGatherNodes(c, c.RecvIdx, wh.Cols())
	c.Prof.pairGatherNodes(c, c.SendIdx, wh.Cols())
	dk := wh.Cols() / heads
	for a := 0; a < heads; a++ {
		c.Prof.Elementwise(c.NumPairs())
		c.Prof.pairScatter(c, 1)
		c.Prof.pairGatherNodes(c, c.RecvIdx, 1)
		c.Prof.pairScatter(c, dk)
	}
	return tensor.FusedAdditiveAttention(wh, aL, aR, c.RecvIdx, c.SendIdx,
		c.recvSegments(), c.sendSegments(), heads, c.Scratch)
}

// Readout mean-pools working rows per member graph (or applies the
// engine's override).
func (c *Context) Readout(h *tensor.Tensor) *tensor.Tensor {
	c.Prof.elementwise(h.Size())
	if c.ReadoutFn != nil {
		return c.ReadoutFn(h)
	}
	return tensor.SegmentMean(h, c.GraphSeg, c.NumGraphs)
}
