// Package models implements the two GNN configurations the paper evaluates
// — Gated Graph ConvNet (GCN, Bresson & Laurent) and Graph Transformer (GT,
// Dwivedi & Bresson) — over two interchangeable attention engines:
//
//   - the DGL-style baseline (engine_dgl.go): per-directed-edge
//     gather/scatter aggregation over node IDs, profiled as irregular
//     gather/scatter/cub kernels;
//   - MEGA (engine_mega.go): the same mathematical aggregation expressed
//     over the band representation's pair list, profiled as sequential
//     banded sweeps plus a duplicate-synchronisation kernel.
//
// Both engines drive the identical layer code through a Context: a list of
// directed attention pairs (receiver row, sender row, undirected edge ID)
// over a working embedding matrix. The engines therefore share parameters
// exactly — the paper's "identical parameter counts" requirement — and
// differ only in row layout, pair order, duplicate handling, and the
// simulated memory behaviour reported to gpusim.
package models

import (
	"math"

	"mega/internal/nn"
	"mega/internal/tensor"
)

// Context carries everything one forward pass needs: the pair list, row
// metadata, readout segments, and the profiler that accounts simulated GPU
// cost.
type Context struct {
	// NumRows is the number of working embedding rows: total nodes for
	// the DGL engine, total path positions for MEGA.
	NumRows int
	// RecvIdx/SendIdx/EdgeIdx describe the directed attention pairs:
	// pair p aggregates row SendIdx[p] into row RecvIdx[p] using
	// undirected edge EdgeIdx[p]'s features.
	RecvIdx []int32
	SendIdx []int32
	EdgeIdx []int32
	// NumEdges is the undirected edge count (edge-embedding rows).
	NumEdges int
	// NodeTypeIDs[r] is the categorical node feature for working row r.
	NodeTypeIDs []int32
	// EdgeTypeIDs[e] is the categorical edge feature for edge e.
	EdgeTypeIDs []int32
	// GraphSeg[r] is the member-graph index of working row r; readout
	// pools rows by this segmentation.
	GraphSeg []int32
	// NumGraphs is the batch size for readout.
	NumGraphs int

	// Sync merges duplicate rows after each layer (MEGA's path revisits);
	// nil means rows are unique (DGL engine).
	Sync func(h *tensor.Tensor) *tensor.Tensor

	// ReadoutFn overrides the default per-graph mean pooling; the MEGA
	// engine uses it to pool nodes rather than path positions so that
	// revisited nodes are not over-weighted.
	ReadoutFn func(h *tensor.Tensor) *tensor.Tensor

	// Prof receives simulated-kernel notifications; nil disables
	// profiling entirely.
	Prof *Prof

	// Targets for training: exactly one of the two is used depending on
	// the dataset task.
	Targets *tensor.Tensor // [NumGraphs,1] regression targets
	Labels  []int          // classification labels

	// counter tallies abstract op calls for Table I; nil outside
	// CountOps probes.
	counter *opCounter
}

// NumPairs returns the directed pair count.
func (c *Context) NumPairs() int { return len(c.RecvIdx) }

// GatherRecv gathers h rows at each pair's receiver.
func (c *Context) GatherRecv(h *tensor.Tensor) *tensor.Tensor {
	if c.counter != nil {
		c.counter.gathers++
	}
	c.Prof.pairGatherNodes(c, c.RecvIdx, h.Cols())
	return tensor.GatherRows(h, c.RecvIdx)
}

// GatherSend gathers h rows at each pair's sender.
func (c *Context) GatherSend(h *tensor.Tensor) *tensor.Tensor {
	if c.counter != nil {
		c.counter.gathers++
	}
	c.Prof.pairGatherNodes(c, c.SendIdx, h.Cols())
	return tensor.GatherRows(h, c.SendIdx)
}

// GatherEdges gathers the undirected edge embedding behind each pair.
func (c *Context) GatherEdges(e *tensor.Tensor) *tensor.Tensor {
	if c.counter != nil {
		c.counter.gathers++
	}
	c.Prof.pairGatherEdges(c, e.Cols())
	return tensor.GatherRows(e, c.EdgeIdx)
}

// AggregateByRecv sums pair values into their receiver rows.
func (c *Context) AggregateByRecv(x *tensor.Tensor) *tensor.Tensor {
	if c.counter != nil {
		c.counter.scatters++
	}
	c.Prof.pairScatter(c, x.Cols())
	return tensor.ScatterAddRows(x, c.RecvIdx, c.NumRows)
}

// EdgeMean averages pair values back onto their undirected edges (both
// directions of an edge contribute), producing the updated edge embedding.
func (c *Context) EdgeMean(x *tensor.Tensor) *tensor.Tensor {
	if c.counter != nil {
		c.counter.scatters++
	}
	c.Prof.edgeReduce(c, x.Cols())
	return tensor.SegmentMean(x, c.EdgeIdx, c.NumEdges)
}

// Linear applies a linear layer with sgemm profiling and op counting.
func (c *Context) Linear(l *nn.Linear, x *tensor.Tensor) *tensor.Tensor {
	if c.counter != nil {
		c.counter.linears++
	}
	c.Prof.Linear(x.Rows(), x.Cols(), l.W.Cols())
	return l.Forward(x)
}

// Act applies an elementwise activation with profiling.
func (c *Context) Act(f func(*tensor.Tensor) *tensor.Tensor, x *tensor.Tensor) *tensor.Tensor {
	c.Prof.Elementwise(x.Size())
	return f(x)
}

// Norm applies a normalisation layer with profiling.
func (c *Context) Norm(n *nn.Norm, x *tensor.Tensor) *tensor.Tensor {
	c.Prof.Elementwise(2 * x.Size())
	return n.Forward(x)
}

// SegmentSoftmaxByRecv computes a numerically stable softmax of per-pair
// scores ([P,1]) grouped by receiver, the attention normalisation of GT.
func (c *Context) SegmentSoftmaxByRecv(score *tensor.Tensor) *tensor.Tensor {
	// Per-receiver max as a constant shift (no gradient contribution).
	maxPer := make([]float64, c.NumRows)
	for i := range maxPer {
		maxPer[i] = math.Inf(-1)
	}
	for p, r := range c.RecvIdx {
		if v := score.Data[p]; v > maxPer[r] {
			maxPer[r] = v
		}
	}
	shift := tensor.Zeros(len(c.RecvIdx), 1)
	for p, r := range c.RecvIdx {
		shift.Data[p] = maxPer[r]
	}
	ex := tensor.Exp(tensor.Sub(score, shift))
	denom := c.AggregateByRecv(ex)
	denomPer := c.GatherRecv(tensor.AddScalar(denom, 1e-9))
	return tensor.Div(ex, denomPer)
}

// NormalizeByRecvSum divides per-pair gate values ([P,d]) by the sum of the
// gates over each receiver (plus eps), GatedGCN's η normalisation.
func (c *Context) NormalizeByRecvSum(gate *tensor.Tensor, eps float64) *tensor.Tensor {
	denom := c.AggregateByRecv(gate)
	denomPer := c.GatherRecv(tensor.AddScalar(denom, eps))
	return tensor.Div(gate, denomPer)
}

// SyncDuplicates applies the engine's duplicate-row synchronisation.
func (c *Context) SyncDuplicates(h *tensor.Tensor) *tensor.Tensor {
	if c.Sync == nil {
		return h
	}
	return c.Sync(h)
}

// Readout mean-pools working rows per member graph (or applies the
// engine's override).
func (c *Context) Readout(h *tensor.Tensor) *tensor.Tensor {
	c.Prof.elementwise(h.Size())
	if c.ReadoutFn != nil {
		return c.ReadoutFn(h)
	}
	return tensor.SegmentMean(h, c.GraphSeg, c.NumGraphs)
}
