package models

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mega/internal/datasets"
	"mega/internal/gpusim"
	"mega/internal/graph"
	"mega/internal/nn"
	"mega/internal/tensor"
	"mega/internal/traverse"
)

// testInstances builds a small deterministic batch.
func testInstances(t *testing.T, n int) []datasets.Instance {
	t.Helper()
	d := datasets.ZINC(datasets.Config{TrainSize: n, ValSize: 0, TestSize: 0, Seed: 42})
	return d.Train
}

func smallConfig() Config {
	return Config{Dim: 16, Layers: 2, Heads: 2, NodeTypes: 28, EdgeTypes: 4, OutDim: 1, Seed: 1}
}

func TestDGLContextShape(t *testing.T) {
	insts := testInstances(t, 4)
	ctx, err := NewDGLContext(insts, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	wantNodes, wantEdges := 0, 0
	for _, inst := range insts {
		wantNodes += inst.G.NumNodes()
		wantEdges += inst.G.NumEdges()
	}
	if ctx.NumRows != wantNodes {
		t.Errorf("rows = %d, want %d", ctx.NumRows, wantNodes)
	}
	if ctx.NumEdges != wantEdges {
		t.Errorf("edges = %d, want %d", ctx.NumEdges, wantEdges)
	}
	if ctx.NumPairs() != 2*wantEdges {
		t.Errorf("pairs = %d, want %d", ctx.NumPairs(), 2*wantEdges)
	}
	if len(ctx.NodeTypeIDs) != wantNodes || len(ctx.GraphSeg) != wantNodes {
		t.Error("per-row metadata sized wrong")
	}
	if ctx.NumGraphs != 4 || ctx.Targets.Rows() != 4 {
		t.Error("targets sized wrong")
	}
}

func TestMegaContextShape(t *testing.T) {
	insts := testInstances(t, 4)
	ctx, err := NewMegaContext(insts, MegaOptions{}, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	wantNodes := 0
	for _, inst := range insts {
		wantNodes += inst.G.NumNodes()
	}
	// Paths at least visit every node.
	if ctx.NumRows < wantNodes {
		t.Errorf("rows = %d, want >= %d", ctx.NumRows, wantNodes)
	}
	if ctx.Sync == nil {
		t.Error("mega context must provide duplicate sync")
	}
	// Full coverage: every undirected edge appears as >= 2 directed pairs.
	if ctx.NumPairs() < 2*ctx.NumEdges {
		t.Errorf("pairs = %d, want >= %d", ctx.NumPairs(), 2*ctx.NumEdges)
	}
	for p := range ctx.RecvIdx {
		if ctx.RecvIdx[p] < 0 || int(ctx.RecvIdx[p]) >= ctx.NumRows {
			t.Fatalf("pair %d recv out of range", p)
		}
		if ctx.EdgeIdx[p] < 0 || int(ctx.EdgeIdx[p]) >= ctx.NumEdges {
			t.Fatalf("pair %d edge out of range", p)
		}
	}
}

func TestModelsForwardShapes(t *testing.T) {
	insts := testInstances(t, 3)
	for _, tt := range []struct {
		name  string
		build func() Model
	}{
		{name: "GCN", build: func() Model { return NewGatedGCN(smallConfig()) }},
		{name: "GT", build: func() Model { return NewGT(smallConfig()) }},
	} {
		t.Run(tt.name, func(t *testing.T) {
			m := tt.build()
			for _, engine := range []string{"dgl", "mega"} {
				var ctx *Context
				var err error
				if engine == "dgl" {
					ctx, err = NewDGLContext(insts, nil, 16)
				} else {
					ctx, err = NewMegaContext(insts, MegaOptions{}, nil, 16)
				}
				if err != nil {
					t.Fatal(err)
				}
				out := m.Forward(ctx)
				if out.Rows() != 3 || out.Cols() != 1 {
					t.Errorf("%s/%s: output %dx%d, want 3x1", tt.name, engine, out.Rows(), out.Cols())
				}
				if !out.IsFinite() {
					t.Errorf("%s/%s: non-finite output", tt.name, engine)
				}
			}
		})
	}
}

func TestParameterVolumesMatchTableI(t *testing.T) {
	// Table I: GCN attention blocks have 5d² parameters per layer, GT 14d².
	d := 16
	cfg := Config{Dim: d, Layers: 3, Heads: 2, NodeTypes: 4, EdgeTypes: 2, OutDim: 1, Seed: 1}

	gcn := NewGatedGCN(cfg)
	gcnTotal := nn.CountParams(gcn.Params())
	// Layers contribute 5d² weights (+5d biases +4d norm affines).
	gcnLayerPart := 3 * (5*d*d + 5*d + 4*d)
	if got := gcnTotal - gcnOverhead(cfg); got != gcnLayerPart {
		t.Errorf("GCN layer params = %d, want %d (5d² per layer)", got, gcnLayerPart)
	}

	gt := NewGT(cfg)
	gtTotal := nn.CountParams(gt.Params())
	// Weights 14d²; biases: q,k,v,o,we,oe = 6d, FFNs = 2d+d+2d+d = 6d;
	// four norms = 8d affine parameters.
	gtLayerPart := 3 * (14*d*d + 12*d + 8*d)
	if got := gtTotal - gcnOverhead(cfg); got != gtLayerPart {
		t.Errorf("GT layer params = %d, want %d (14d² per layer)", got, gtLayerPart)
	}
}

// gcnOverhead counts the shared encoder + readout parameters.
func gcnOverhead(cfg Config) int {
	embed := cfg.NodeTypes*cfg.Dim + cfg.EdgeTypes*cfg.Dim
	readout := cfg.Dim*(cfg.Dim/2) + cfg.Dim/2 + (cfg.Dim/2)*cfg.OutDim + cfg.OutDim
	return embed + readout
}

func TestGTHasMoreGraphOpsThanGCN(t *testing.T) {
	// Table I: GT issues 5x the edge scatters of GCN; both gather twice.
	insts := testInstances(t, 2)
	ctx, err := NewDGLContext(insts, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	gcnOps := NewGatedGCN(smallConfig()).CountOps(ctx)
	gtOps := NewGT(smallConfig()).CountOps(ctx)
	if gtOps.GatherCalls <= gcnOps.GatherCalls {
		t.Errorf("GT gathers %d should exceed GCN %d", gtOps.GatherCalls, gcnOps.GatherCalls)
	}
	if gtOps.ScatterCalls <= gcnOps.ScatterCalls {
		t.Errorf("GT scatters %d should exceed GCN %d", gtOps.ScatterCalls, gcnOps.ScatterCalls)
	}
	if gtOps.Params <= gcnOps.Params {
		t.Errorf("GT params %d should exceed GCN %d", gtOps.Params, gcnOps.Params)
	}
}

// pathInstance builds an instance whose graph is a simple path: its
// traversal has no revisits and no virtual edges, so the MEGA engine
// computes exactly the same function as the DGL engine.
func pathInstance(n int) datasets.Instance {
	g := graph.Path(n)
	nf := make([]int32, n)
	ef := make([]int32, g.NumEdges())
	for i := range nf {
		nf[i] = int32(i % 4)
	}
	for i := range ef {
		ef[i] = int32(i % 2)
	}
	return datasets.Instance{G: g, NodeFeat: nf, EdgeFeat: ef, Target: 1}
}

func TestEnginesAgreeOnRevisitFreeGraph(t *testing.T) {
	insts := []datasets.Instance{pathInstance(9)}
	dglCtx, err := NewDGLContext(insts, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	megaCtx, err := NewMegaContext(insts, MegaOptions{
		Traverse: traverse.Options{Window: 1, EdgeCoverage: 1},
	}.PinStart(0), nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if megaCtx.NumRows != 9 {
		t.Fatalf("path graph should have no revisits: rows = %d", megaCtx.NumRows)
	}
	for _, tt := range []struct {
		name  string
		build func() Model
	}{
		{name: "GCN", build: func() Model { return NewGatedGCN(smallConfig()) }},
		{name: "GT", build: func() Model { return NewGT(smallConfig()) }},
	} {
		t.Run(tt.name, func(t *testing.T) {
			m := tt.build()
			a := m.Forward(dglCtx).Item()
			b := m.Forward(megaCtx).Item()
			if math.Abs(a-b) > 1e-9 {
				t.Errorf("engines disagree on revisit-free graph: dgl %v vs mega %v", a, b)
			}
		})
	}
}

func TestGradientsFlowToAllParams(t *testing.T) {
	insts := testInstances(t, 2)
	ctx, err := NewDGLContext(insts, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []struct {
		name  string
		build func() Model
	}{
		{name: "GCN", build: func() Model { return NewGatedGCN(smallConfig()) }},
		{name: "GT", build: func() Model { return NewGT(smallConfig()) }},
	} {
		t.Run(tt.name, func(t *testing.T) {
			m := tt.build()
			out := m.Forward(ctx)
			tensor.MSELoss(out, ctx.Targets).Backward()
			withGrad := 0
			for _, p := range m.Params() {
				if p.Grad != nil {
					nz := false
					for _, g := range p.Grad {
						if g != 0 {
							nz = true
							break
						}
					}
					if nz {
						withGrad++
					}
				}
			}
			// The overwhelming majority of parameters must receive
			// gradient. Legitimate exceptions: unused embedding rows,
			// and the final layer's edge stream (its output is
			// discarded, as in the reference implementations).
			if frac := float64(withGrad) / float64(len(m.Params())); frac < 0.8 {
				t.Errorf("only %d/%d params got gradient", withGrad, len(m.Params()))
			}
		})
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	insts := testInstances(t, 8)
	for _, engine := range []string{"dgl", "mega"} {
		t.Run(engine, func(t *testing.T) {
			var ctx *Context
			var err error
			if engine == "dgl" {
				ctx, err = NewDGLContext(insts, nil, 16)
			} else {
				ctx, err = NewMegaContext(insts, MegaOptions{}, nil, 16)
			}
			if err != nil {
				t.Fatal(err)
			}
			m := NewGatedGCN(smallConfig())
			opt := nn.NewAdam(m.Params(), 3e-3)
			var first, last float64
			for step := 0; step < 30; step++ {
				opt.ZeroGrad()
				loss := tensor.MSELoss(m.Forward(ctx), ctx.Targets)
				loss.Backward()
				opt.Step()
				if step == 0 {
					first = loss.Item()
				}
				last = loss.Item()
			}
			if last >= first {
				t.Errorf("loss did not decrease: %v -> %v", first, last)
			}
		})
	}
}

func TestProfiledForwardEmitsExpectedKernels(t *testing.T) {
	insts := testInstances(t, 4)

	simDGL := gpusim.New(gpusim.GTX1080())
	ctxD, err := NewDGLContext(insts, simDGL, 16)
	if err != nil {
		t.Fatal(err)
	}
	m := NewGatedGCN(smallConfig())
	_ = m.Forward(ctxD)
	for _, k := range []string{"sgemm", "dgl-gather", "dgl-scatter", "cub"} {
		if _, ok := simDGL.Kernel(k); !ok {
			t.Errorf("dgl profile missing kernel %q", k)
		}
	}
	if _, ok := simDGL.Kernel("mega-band"); ok {
		t.Error("dgl profile should not contain mega kernels")
	}

	simMega := gpusim.New(gpusim.GTX1080())
	ctxM, err := NewMegaContext(insts, MegaOptions{}, simMega, 16)
	if err != nil {
		t.Fatal(err)
	}
	_ = m.Forward(ctxM)
	for _, k := range []string{"sgemm", "mega-band"} {
		if _, ok := simMega.Kernel(k); !ok {
			t.Errorf("mega profile missing kernel %q", k)
		}
	}
	for _, k := range []string{"dgl-gather", "dgl-scatter", "cub"} {
		if _, ok := simMega.Kernel(k); ok {
			t.Errorf("mega profile should not contain %q", k)
		}
	}
}

func TestBackwardProfilingReplays(t *testing.T) {
	insts := testInstances(t, 2)
	sim := gpusim.New(gpusim.GTX1080())
	ctx, err := NewDGLContext(insts, sim, 16)
	if err != nil {
		t.Fatal(err)
	}
	m := NewGatedGCN(smallConfig())
	_ = m.Forward(ctx)
	fwdCycles := sim.TotalCycles()
	ctx.Prof.Backward()
	if sim.TotalCycles() < 2.5*fwdCycles {
		t.Errorf("backward accounting too small: fwd %v total %v", fwdCycles, sim.TotalCycles())
	}
}

func TestMegaProfileFasterThanDGL(t *testing.T) {
	// The headline claim at profile level: one GT training step under
	// MEGA's kernels should cost fewer simulated cycles than under DGL's.
	insts := testInstances(t, 16)
	run := func(engine EngineKind) float64 {
		sim := gpusim.New(gpusim.GTX1080())
		var ctx *Context
		var err error
		if engine == EngineDGL {
			ctx, err = NewDGLContext(insts, sim, 64)
		} else {
			ctx, err = NewMegaContext(insts, MegaOptions{}, sim, 64)
		}
		if err != nil {
			t.Fatal(err)
		}
		m := NewGT(Config{Dim: 64, Layers: 4, Heads: 4, NodeTypes: 28, EdgeTypes: 4, OutDim: 1, Seed: 1})
		_ = m.Forward(ctx)
		ctx.Prof.Backward()
		return sim.TotalCycles()
	}
	dgl := run(EngineDGL)
	mega := run(EngineMega)
	if mega >= dgl {
		t.Errorf("mega cycles %v should be below dgl %v", mega, dgl)
	}
	t.Logf("speedup: %.2fx", dgl/mega)
}

func TestClassificationOutput(t *testing.T) {
	d := datasets.CSL(datasets.Config{TrainSize: 8, ValSize: 0, TestSize: 0, Seed: 1})
	ctx, err := NewDGLContext(d.Train, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.NodeTypes = d.NumNodeTypes
	cfg.EdgeTypes = d.NumEdgeTypes
	cfg.OutDim = d.NumClasses
	m := NewGT(cfg)
	out := m.Forward(ctx)
	if out.Rows() != 8 || out.Cols() != d.NumClasses {
		t.Fatalf("logits %dx%d", out.Rows(), out.Cols())
	}
	loss := tensor.CrossEntropyLoss(out, ctx.Labels)
	if !loss.IsFinite() {
		t.Error("non-finite classification loss")
	}
}

func TestEngineKindString(t *testing.T) {
	if EngineDGL.String() != "dgl" || EngineMega.String() != "mega" {
		t.Error("EngineKind strings wrong")
	}
}

func BenchmarkGCNForwardDGL(b *testing.B) {
	d := datasets.ZINC(datasets.Config{TrainSize: 32, ValSize: 0, TestSize: 0, Seed: 1})
	ctx, err := NewDGLContext(d.Train, nil, 64)
	if err != nil {
		b.Fatal(err)
	}
	m := NewGatedGCN(Config{Dim: 64, Layers: 4, NodeTypes: 28, EdgeTypes: 4, OutDim: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Forward(ctx)
	}
}

func BenchmarkGCNForwardMega(b *testing.B) {
	d := datasets.ZINC(datasets.Config{TrainSize: 32, ValSize: 0, TestSize: 0, Seed: 1})
	ctx, err := NewMegaContext(d.Train, MegaOptions{}, nil, 64)
	if err != nil {
		b.Fatal(err)
	}
	m := NewGatedGCN(Config{Dim: 64, Layers: 4, NodeTypes: 28, EdgeTypes: 4, OutDim: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Forward(ctx)
	}
}

var _ = rand.New // keep rand import if unused by edits

// starInstance forces revisits: a hub with many spokes at window 1.
func starInstance(spokes int) datasets.Instance {
	edges := make([]graph.Edge, spokes)
	for i := range edges {
		edges[i] = graph.Edge{Src: 0, Dst: graph.NodeID(i + 1)}
	}
	g := graph.MustNew(spokes+1, edges, false)
	return datasets.Instance{
		G:        g,
		NodeFeat: make([]int32, spokes+1),
		EdgeFeat: make([]int32, spokes),
		Target:   1,
	}
}

func TestSyncDuplicatesEqualisesRows(t *testing.T) {
	insts := []datasets.Instance{starInstance(6)}
	ctx, err := NewMegaContext(insts, MegaOptions{
		Traverse: traverse.Options{Window: 1, EdgeCoverage: 1},
	}.PinStart(0), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.NumRows <= 7 {
		t.Fatalf("star at ω=1 must have revisits: rows = %d", ctx.NumRows)
	}
	// Distinct values per row, then sync: duplicates of the same node
	// must converge to a common value.
	h := tensor.Zeros(ctx.NumRows, 4)
	for i := 0; i < ctx.NumRows; i++ {
		for j := 0; j < 4; j++ {
			h.Set(i, j, float64(i*10+j))
		}
	}
	synced := ctx.SyncDuplicates(h)
	// Rows that were duplicates of the same node must agree exactly after
	// synchronisation; with distinct pre-sync values, agreement can only
	// come from the sync averaging.
	agree := 0
	for a := 0; a < ctx.NumRows; a++ {
		for b := a + 1; b < ctx.NumRows; b++ {
			same := true
			for j := 0; j < 4; j++ {
				if synced.At(a, j) != synced.At(b, j) {
					same = false
					break
				}
			}
			if same {
				agree++
			}
		}
	}
	if agree == 0 {
		t.Error("no duplicate rows agree after sync")
	}
}

func TestMegaReadoutWeighsNodesEqually(t *testing.T) {
	// Exact node-level readout: a star's hub appears k times in the
	// path, but the readout must weigh it once. With constant row values
	// per PATH POSITION, position-mean and node-mean differ unless the
	// two-stage readout is used.
	insts := []datasets.Instance{starInstance(5)}
	ctx, err := NewMegaContext(insts, MegaOptions{
		Traverse: traverse.Options{Window: 1, EdgeCoverage: 1},
	}.PinStart(0), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: 1.0 at every position of the hub (node 0), 0 elsewhere. The
	// hub's positions are found through the sync grouping: its rows form
	// the largest group of positions synchronised to a common value.
	h := tensor.Zeros(ctx.NumRows, 1)
	hubRows := 0
	probe := tensor.Zeros(ctx.NumRows, 1)
	for i := 0; i < ctx.NumRows; i++ {
		probe.Set(i, 0, float64(i))
	}
	synced := ctx.SyncDuplicates(probe)
	groups := make(map[float64][]int)
	for i := 0; i < ctx.NumRows; i++ {
		groups[synced.At(i, 0)] = append(groups[synced.At(i, 0)], i)
	}
	var hubGroup []int
	for _, g := range groups {
		if len(g) > len(hubGroup) {
			hubGroup = g
		}
	}
	if len(hubGroup) < 2 {
		t.Fatal("no duplicated node found in star path")
	}
	for _, i := range hubGroup {
		h.Set(i, 0, 1)
		hubRows++
	}
	pooled := ctx.Readout(h)
	// Node-mean: hub contributes 1, five spokes contribute 0 -> 1/6.
	want := 1.0 / 6.0
	if got := pooled.At(0, 0); got != want {
		t.Errorf("readout = %v, want %v (node-weighted); position-weighted would be %v",
			got, want, float64(hubRows)/float64(ctx.NumRows))
	}
}

// Property: on revisit-free graphs (paths) of any size with any features,
// the two engines compute identical outputs.
func TestEnginesAgreeProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%16) + 3
		rng := rand.New(rand.NewSource(seed))
		g := graph.Path(n)
		nf := make([]int32, n)
		for i := range nf {
			nf[i] = int32(rng.Intn(4))
		}
		ef := make([]int32, g.NumEdges())
		for i := range ef {
			ef[i] = int32(rng.Intn(2))
		}
		insts := []datasets.Instance{{G: g, NodeFeat: nf, EdgeFeat: ef, Target: 1}}
		dglCtx, err := NewDGLContext(insts, nil, 16)
		if err != nil {
			return false
		}
		megaCtx, err := NewMegaContext(insts, MegaOptions{
			Traverse: traverse.Options{Window: 1, EdgeCoverage: 1},
		}.PinStart(0), nil, 16)
		if err != nil {
			return false
		}
		if megaCtx.NumRows != n {
			return false // path traversal must be revisit-free
		}
		m := NewGatedGCN(Config{Dim: 16, Layers: 2, NodeTypes: 4, EdgeTypes: 2, OutDim: 1, Seed: seed})
		a := m.Forward(dglCtx).Item()
		b := m.Forward(megaCtx).Item()
		return math.Abs(a-b) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGATForwardAndTraining(t *testing.T) {
	insts := testInstances(t, 6)
	for _, engine := range []string{"dgl", "mega"} {
		t.Run(engine, func(t *testing.T) {
			var ctx *Context
			var err error
			if engine == "dgl" {
				ctx, err = NewDGLContext(insts, nil, 16)
			} else {
				ctx, err = NewMegaContext(insts, MegaOptions{}, nil, 16)
			}
			if err != nil {
				t.Fatal(err)
			}
			m := NewGAT(smallConfig())
			out := m.Forward(ctx)
			if out.Rows() != 6 || out.Cols() != 1 {
				t.Fatalf("output %dx%d", out.Rows(), out.Cols())
			}
			if !out.IsFinite() {
				t.Fatal("non-finite output")
			}
			opt := nn.NewAdam(m.Params(), 3e-3)
			var first, last float64
			for step := 0; step < 25; step++ {
				opt.ZeroGrad()
				loss := tensor.MSELoss(m.Forward(ctx), ctx.Targets)
				loss.Backward()
				opt.Step()
				if step == 0 {
					first = loss.Item()
				}
				last = loss.Item()
			}
			if last >= first {
				t.Errorf("GAT loss did not decrease: %v -> %v", first, last)
			}
		})
	}
}

func TestGATEnginesAgreeOnRevisitFreeGraph(t *testing.T) {
	insts := []datasets.Instance{pathInstance(8)}
	dglCtx, err := NewDGLContext(insts, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	megaCtx, err := NewMegaContext(insts, MegaOptions{
		Traverse: traverse.Options{Window: 1, EdgeCoverage: 1},
	}.PinStart(0), nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	m := NewGAT(smallConfig())
	a := m.Forward(dglCtx).Item()
	b := m.Forward(megaCtx).Item()
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("GAT engines disagree: %v vs %v", a, b)
	}
}

func TestGATLighterThanGT(t *testing.T) {
	gat := nn.CountParams(NewGAT(smallConfig()).Params())
	gt := nn.CountParams(NewGT(smallConfig()).Params())
	gcn := nn.CountParams(NewGatedGCN(smallConfig()).Params())
	if gat >= gcn || gcn >= gt {
		t.Errorf("param ordering wrong: GAT %d, GCN %d, GT %d", gat, gcn, gt)
	}
}
