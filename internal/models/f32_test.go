package models

import (
	"testing"

	"mega/internal/datasets"
	"mega/internal/tensor"
)

// f32Envelope is the per-output divergence bound for whole-model forwards:
// several attention layers of f32 arithmetic against the f64 reference.
// Values chosen with ~8x headroom over observed worst cases so the test
// catches algorithmic drift (wrong accumulation order, a dropped scale)
// rather than natural rounding jitter.
const (
	f32MaxULP    = 1 << 14
	f32MaxRelErr = 5e-3
	f32RelFloor  = 1e-2
)

func TestPrepareF32RejectsBatchDependentModel(t *testing.T) {
	if _, err := PrepareF32(NewGatedGCN(smallConfig())); err == nil {
		t.Fatal("GatedGCN must not get an f32 path (batch-dependent normalisation)")
	}
	if _, err := PrepareF32(NewGT(smallConfig())); err != nil {
		t.Fatalf("GT: %v", err)
	}
	if _, err := PrepareF32(NewGAT(smallConfig())); err != nil {
		t.Fatalf("GAT: %v", err)
	}
}

func TestPrepareF32Deterministic(t *testing.T) {
	m := NewGT(smallConfig())
	a, err := PrepareF32(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PrepareF32Layout(m, tensor.LayoutInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.SnapshotParams(), b.SnapshotParams()
	if len(pa) == 0 || len(pa) != len(pb) {
		t.Fatalf("snapshot lengths %d/%d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("downcast not deterministic at %d: %v vs %v", i, pa[i], pb[i])
		}
	}
}

// forwardPair runs the same context through the f64 model and its frozen
// f32 twin and returns the measured divergence.
func forwardPair(t *testing.T, m Model, ctx *Context) tensor.Divergence {
	t.Helper()
	ref := m.Forward(ctx)
	arena := tensor.NewArena()
	for _, layout := range []tensor.AttnLayout{tensor.LayoutHeadMajor, tensor.LayoutInterleaved} {
		f32m, err := PrepareF32Layout(m, layout)
		if err != nil {
			t.Fatal(err)
		}
		got := f32m.Forward(ctx, arena)
		if got.Rows() != ref.Rows() || got.Cols() != ref.Cols() {
			t.Fatalf("%v: f32 output %dx%d, f64 %dx%d",
				layout, got.Rows(), got.Cols(), ref.Rows(), ref.Cols())
		}
		d := tensor.MeasureDivergence(got.Data, ref.Data, f32RelFloor)
		arena.PutF32(got)
		if layout == tensor.LayoutHeadMajor {
			defer func() {
				if s := arena.Stats(); s.F32.InUseBytes != 0 && !t.Failed() {
					t.Errorf("f32 forward leaked %d arena bytes", s.F32.InUseBytes)
				}
			}()
		}
		if err := d.Within(f32MaxULP, f32MaxRelErr); err != nil {
			t.Errorf("%v: %v (%+v)", layout, err, d)
		}
		if layout == tensor.LayoutInterleaved {
			return d
		}
	}
	panic("unreachable")
}

func TestGTF32MatchesF64(t *testing.T) {
	insts := testInstances(t, 6)
	ctx, err := NewMegaContext(insts, MegaOptions{}, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	d := forwardPair(t, NewGT(smallConfig()), ctx)
	t.Logf("GT divergence: %+v", d)
}

func TestGATF32MatchesF64(t *testing.T) {
	insts := testInstances(t, 6)
	ctx, err := NewMegaContext(insts, MegaOptions{}, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	d := forwardPair(t, NewGAT(smallConfig()), ctx)
	t.Logf("GAT divergence: %+v", d)
}

func TestGTF32MatchesF64Classification(t *testing.T) {
	d := datasets.CSL(datasets.Config{TrainSize: 6, ValSize: 0, TestSize: 0, Seed: 3})
	ctx, err := NewMegaContext(d.Train, MegaOptions{}, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.NodeTypes = d.NumNodeTypes
	cfg.EdgeTypes = d.NumEdgeTypes
	cfg.OutDim = d.NumClasses
	div := forwardPair(t, NewGT(cfg), ctx)
	t.Logf("GT/CSL divergence: %+v", div)
}

func TestGTF32SingleGraphSharedPlan(t *testing.T) {
	// Serving shape: one cached PreparedRep reused across contexts. The
	// single-graph fast path aliases the plan's index arrays; two builds
	// must produce identical contexts and identical f32 outputs.
	insts := testInstances(t, 1)
	rep, err := PrepareMega(insts[0].G, MegaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, err := NewMegaContextFromReps(insts, []*PreparedRep{rep}, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	ctx2, err := NewMegaContextFromReps(insts, []*PreparedRep{rep}, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if &ctx1.RecvIdx[0] != &ctx2.RecvIdx[0] {
		t.Error("single-graph contexts should share the cached plan's index arrays")
	}
	m, err := PrepareF32(NewGT(smallConfig()))
	if err != nil {
		t.Fatal(err)
	}
	arena := tensor.NewArena()
	a := m.Forward(ctx1, arena)
	b := m.Forward(ctx2, arena)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("plan reuse changed output at %d", i)
		}
	}
}
