package models

import (
	"testing"

	"mega/internal/traverse"
)

// sparsifiedShardSetup mirrors shardTestSetup but preprocesses through the
// effective-resistance sparsifier, so the shard plan cuts a path built
// over sparsified topology.
func sparsifiedShardSetup(t *testing.T, nInst int, frac float64) (*GT, *Context) {
	t.Helper()
	insts := testInstances(t, nInst)
	ctx, err := NewMegaContext(insts, MegaOptions{
		Traverse: traverse.Options{Window: 2, SparsifyFraction: frac, SparsifySeed: 17},
	}, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	return NewGT(smallConfig()), ctx
}

// TestShardForwardBitIdenticalSparsified extends the engine's core
// contract to sparsified reps: at every worker count the sharded forward
// over a sparsified context matches the monolithic forward bit for bit.
func TestShardForwardBitIdenticalSparsified(t *testing.T) {
	for _, frac := range []float64{0.75, 0.5} {
		m, ctx := sparsifiedShardSetup(t, 6, frac)
		want := m.Forward(ctx)
		for _, k := range []int{1, 2, 4, 8} {
			eng, err := NewShardEngine(m, ctx, k)
			if err != nil {
				t.Fatalf("frac=%v k=%d: %v", frac, k, err)
			}
			got := eng.Forward()
			if !bitsEqual(got.Data, want.Data) {
				t.Errorf("frac=%v k=%d: sharded output differs from single engine", frac, k)
			}
		}
	}
}

// TestSparsifiedContextDeterministic pins bit-reproducibility of the full
// sparsified preprocessing: two contexts built under identical options
// produce bit-identical forwards.
func TestSparsifiedContextDeterministic(t *testing.T) {
	m, ctx1 := sparsifiedShardSetup(t, 4, 0.5)
	a := m.Forward(ctx1)
	_, ctx2 := sparsifiedShardSetup(t, 4, 0.5)
	b := m.Forward(ctx2)
	if !bitsEqual(a.Data, b.Data) {
		t.Fatal("sparsified preprocessing not bit-reproducible for a fixed seed")
	}
}
