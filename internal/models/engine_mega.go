package models

import (
	"fmt"
	"sync"

	"mega/internal/band"
	"mega/internal/compute"
	"mega/internal/datasets"
	"mega/internal/gpusim"
	"mega/internal/graph"
	"mega/internal/tensor"
	"mega/internal/traverse"
)

// MegaOptions configures the MEGA engine's preprocessing.
type MegaOptions struct {
	// Traverse controls the path construction (window, coverage, edge
	// dropping). Zero-valued fields resolve per field to
	// traverse.DefaultOptions: EdgeCoverage 0 means full coverage and
	// Start 0 means highest-degree start — an explicit vertex-0 start
	// must be requested via PinStart, since 0 is also the zero value.
	Traverse traverse.Options

	// startPinned marks Traverse.Start as explicitly set, so a zero
	// Start means "vertex 0", not "use the default". Set via PinStart —
	// the explicit-set marker idiom of serve.Options.WithCacheCapacity.
	startPinned bool
}

// PinStart returns o with the traversal start pinned to v, unambiguously:
// PinStart(0) starts at vertex 0, whereas a zero Traverse.Start without
// PinStart resolves to the default (highest-degree) start.
func (o MegaOptions) PinStart(v graph.NodeID) MegaOptions {
	o.Traverse.Start = v
	o.startPinned = true
	return o
}

// traverseOptions resolves zero-valued fields to the engine defaults,
// per field: previously the defaults applied only when EdgeCoverage,
// Window, and Start were all zero, so an explicitly-set Window silently
// turned EdgeCoverage 0 into "cover nothing" and Start 0 into "vertex 0".
func (o MegaOptions) traverseOptions() traverse.Options {
	t := o.Traverse
	def := traverse.DefaultOptions()
	if t.EdgeCoverage == 0 {
		t.EdgeCoverage = def.EdgeCoverage
	}
	if t.Start == 0 && !o.startPinned {
		t.Start = def.Start
	}
	return t
}

// TraverseOptions returns the fully resolved traversal options this engine
// feeds traverse.Run — exported so subsystems that must reproduce the
// preprocessing bit-for-bit (the dynamic maintainer behind serve's /update)
// share the exact same defaulting.
func (o MegaOptions) TraverseOptions() traverse.Options { return o.traverseOptions() }

// PreparedRep is the CPU preprocessing output for one graph: the band
// representation plus the traversal it came from. It depends only on the
// graph topology and the traverse options — not on features, targets, or
// batch composition — so it can be computed once and reused across batches
// (the amortisation an inference cache exploits; see internal/serve).
type PreparedRep struct {
	Rep *band.Rep
	Res *traverse.Result

	// plan is the lazily-built per-graph segment plan (pair lists, CSR
	// segment groupings, duplicate-group tables) — see plan.go. Built at
	// most once per rep and shared read-only across batches.
	planOnce sync.Once
	plan     *SegmentPlan
}

// PrepareMega runs the MEGA preprocessing (traversal + band construction)
// for a single graph under the engine's option defaulting.
func PrepareMega(g *graph.Graph, opts MegaOptions) (*PreparedRep, error) {
	rep, res, err := band.FromGraph(g, opts.traverseOptions())
	if err != nil {
		return nil, err
	}
	return &PreparedRep{Rep: rep, Res: res}, nil
}

// NewMegaContext builds the banded-attention context: each instance is
// traversed into a path representation on the CPU ("the preprocessing
// occurs on the CPU and is decoupled from the interleaved graph and neural
// operations on the GPU", §I); the paths are concatenated and the pair list
// enumerates masked band entries in offset-major order — the order a GPU
// would sweep them sequentially.
//
// sim may be nil to skip profiling. dim sizes the simulated buffers.
func NewMegaContext(insts []datasets.Instance, opts MegaOptions, sim *gpusim.Sim, dim int) (*Context, error) {
	topts := opts.traverseOptions()

	// Per-instance traversals are independent: fan the preprocessing out
	// across the worker pool (the paper decouples this stage from the GPU
	// precisely so it can run ahead on the host).
	preps := make([]*PreparedRep, len(insts))
	errs := make([]error, len(insts))
	compute.Parallel(len(insts), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rep, res, err := band.FromGraph(insts[i].G, topts)
			if err != nil {
				errs[i] = err
				continue
			}
			preps[i] = &PreparedRep{Rep: rep, Res: res}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return NewMegaContextFromReps(insts, preps, sim, dim)
}

// NewMegaContextFromReps assembles the banded-attention context from
// already-computed path representations, one per instance — the entry point
// for callers that cache preprocessing across batches. preps[i] must have
// been produced from insts[i].G (a PrepareMega result, possibly retrieved
// by topology fingerprint).
func NewMegaContextFromReps(insts []datasets.Instance, preps []*PreparedRep, sim *gpusim.Sim, dim int) (*Context, error) {
	if len(preps) != len(insts) {
		return nil, fmt.Errorf("models: %d prepared reps for %d instances", len(preps), len(insts))
	}
	for i, p := range preps {
		if p == nil || p.Rep == nil || p.Res == nil {
			return nil, fmt.Errorf("models: prepared rep %d is nil", i)
		}
		if p.Res.Graph.NumNodes() != insts[i].G.NumNodes() {
			return nil, fmt.Errorf("models: prepared rep %d covers %d nodes, instance has %d",
				i, p.Res.Graph.NumNodes(), insts[i].G.NumNodes())
		}
	}
	// Per-graph segment plans: built once per rep and reused across every
	// batch it appears in (the serving cache's amortisation). The plans
	// carry the pair lists, CSR groupings, and duplicate tables the code
	// below used to re-derive from the band mask on every forward.
	plans := make([]*SegmentPlan, len(preps))
	compute.Parallel(len(preps), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			plans[i] = preps[i].Plan()
		}
	})

	totalRows, totalEdges, maxWindow := 0, 0, 1
	for _, pl := range plans {
		totalRows += pl.Rows
		totalEdges += pl.Edges
		if pl.Window > maxWindow {
			maxWindow = pl.Window
		}
	}

	ctx := &Context{
		NumRows:   totalRows,
		NumEdges:  totalEdges,
		NumGraphs: len(insts),
	}

	// Per-member row/edge/node prefix offsets: the batch layout is a pure
	// function of the preps, pinned up front so every parallel fill below
	// knows exactly which disjoint range it owns.
	rowOff := make([]int32, len(preps)+1)
	edgeOff := make([]int32, len(preps)+1)
	nodeOff := make([]int32, len(preps)+1)
	for gi, pl := range plans {
		rowOff[gi+1] = rowOff[gi] + int32(pl.Rows)
		edgeOff[gi+1] = edgeOff[gi] + int32(pl.Edges)
		nodeOff[gi+1] = nodeOff[gi] + int32(insts[gi].G.NumNodes())
	}

	// Offset-major pair enumeration: all offset-1 pairs of every member,
	// then offset-2, etc. — the sweep order of the banded kernel. Each
	// member's plan already holds its pairs in this order with per-offset
	// block boundaries, and a member's local enumeration maps monotonically
	// into the batch's global one, so assembly is block copies with row /
	// edge offset adds — byte-identical to the mask re-enumeration it
	// replaces, at any thread count. A single-graph batch (the serving
	// cache-hit hot path) skips even the copy and shares the plan's arrays
	// and segment groupings outright (they are read-only by contract).
	if len(preps) == 1 {
		pl := plans[0]
		ctx.RecvIdx, ctx.SendIdx, ctx.EdgeIdx = pl.Recv, pl.Send, pl.Edge
		ctx.byRecv, ctx.bySend, ctx.byEdge = pl.ByRecv, pl.BySend, pl.ByEdge
	} else {
		type fillJob struct {
			gi, o int
			pair  int // directed-pair index of the block's first pair
		}
		var jobs []fillJob
		totalPairs := 0
		for o := 1; o <= maxWindow; o++ {
			for gi, pl := range plans {
				if o > pl.Window {
					continue
				}
				if c := int(pl.OffsetStart[o] - pl.OffsetStart[o-1]); c > 0 {
					jobs = append(jobs, fillJob{gi: gi, o: o, pair: totalPairs})
					totalPairs += c
				}
			}
		}
		ctx.RecvIdx = make([]int32, totalPairs)
		ctx.SendIdx = make([]int32, totalPairs)
		ctx.EdgeIdx = make([]int32, totalPairs)
		compute.Parallel(len(jobs), func(jlo, jhi int) {
			for ji := jlo; ji < jhi; ji++ {
				job := jobs[ji]
				pl := plans[job.gi]
				blo, bhi := pl.OffsetStart[job.o-1], pl.OffsetStart[job.o]
				ro, eo := rowOff[job.gi], edgeOff[job.gi]
				at := job.pair
				for i := blo; i < bhi; i++ {
					ctx.RecvIdx[at] = pl.Recv[i] + ro
					ctx.SendIdx[at] = pl.Send[i] + ro
					ctx.EdgeIdx[at] = pl.Edge[i] + eo
					at++
				}
			}
		})
	}

	// Row and edge metadata: every member owns the [rowOff[gi], rowOff[gi+1])
	// and [edgeOff[gi], edgeOff[gi+1]) stripes, so members fill in parallel.
	// posToNode maps every working row to a globally unique node slot so
	// duplicate rows of the same node synchronise together.
	ctx.NodeTypeIDs = make([]int32, totalRows)
	ctx.EdgeTypeIDs = make([]int32, totalEdges)
	ctx.GraphSeg = make([]int32, totalRows)
	posToNode := make([]int32, totalRows)
	memberSync := make([][]int32, len(preps))
	compute.Parallel(len(preps), func(glo, ghi int) {
		for gi := glo; gi < ghi; gi++ {
			mr := preps[gi]
			pl := plans[gi]
			inst := insts[gi]
			ro, no, eo := rowOff[gi], nodeOff[gi], edgeOff[gi]
			for pi, v := range pl.PosToNode {
				ctx.NodeTypeIDs[ro+int32(pi)] = inst.NodeFeat[v]
				ctx.GraphSeg[ro+int32(pi)] = int32(gi)
				posToNode[ro+int32(pi)] = no + v
			}
			sync := make([]int32, len(pl.SyncPositions))
			for i, p := range pl.SyncPositions {
				sync[i] = ro + p
			}
			memberSync[gi] = sync
			// Edge features follow the (possibly edge-dropped) walked graph:
			// map its edges back to the instance's feature list by identity
			// of edge order when nothing is dropped, or by lookup otherwise.
			walked := mr.Res.Graph
			if walked.NumEdges() == inst.G.NumEdges() {
				copy(ctx.EdgeTypeIDs[eo:eo+int32(len(inst.EdgeFeat))], inst.EdgeFeat)
			} else {
				feat := edgeFeatureLookup(inst)
				for ei, e := range walked.Edges() {
					ctx.EdgeTypeIDs[eo+int32(ei)] = feat[edgeKey(e.Src, e.Dst)]
				}
			}
		}
	})
	var syncPositions []int32
	for _, s := range memberSync {
		syncPositions = append(syncPositions, s...)
	}

	// Duplicate synchronisation: average rows per node slot, then gather
	// back — one segment reduction per layer, charged as a sync kernel.
	numNodes := int(nodeOff[len(preps)])
	ctx.Sync = func(h *tensor.Tensor) *tensor.Tensor {
		if len(syncPositions) == 0 {
			return h
		}
		if ctx.Prof != nil {
			ctx.Prof.SyncCost(h.Cols())
		}
		return tensor.GatherRows(tensor.SegmentMean(h, posToNode, numNodes), posToNode)
	}

	// Exact node-level readout: pool positions to node slots first, then
	// nodes to graphs, so revisited nodes carry the same weight as in the
	// DGL engine.
	nodeGraph := make([]int32, numNodes)
	off := int32(0)
	for gi, inst := range insts {
		for v := 0; v < inst.G.NumNodes(); v++ {
			nodeGraph[off+int32(v)] = int32(gi)
		}
		off += int32(inst.G.NumNodes())
	}
	numGraphs := len(insts)
	ctx.ReadoutFn = func(h *tensor.Tensor) *tensor.Tensor {
		nodes := tensor.SegmentMean(h, posToNode, numNodes)
		return tensor.SegmentMean(nodes, nodeGraph, numGraphs)
	}

	// Record the structural metadata behind Sync/ReadoutFn so the shard
	// engine can replay the same arithmetic distributed across chunks.
	ctx.posToNode = posToNode
	ctx.nodeGraph = nodeGraph
	ctx.numNodeSlots = numNodes
	ctx.maxWindow = maxWindow
	ctx.syncPositions = syncPositions

	if sim != nil {
		prof := NewProf(sim, EngineMega, totalRows, totalEdges, dim)
		prof.SetMegaBand(maxWindow, syncPositions)
		ctx.Prof = prof
	}
	attachTargets(ctx, insts)
	return ctx, nil
}

// edgeKey canonicalises an undirected vertex pair.
func edgeKey(a, b int32) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{a, b}
}

// edgeFeatureLookup indexes an instance's edge features by vertex pair.
func edgeFeatureLookup(inst datasets.Instance) map[[2]int32]int32 {
	out := make(map[[2]int32]int32, inst.G.NumEdges())
	for i, e := range inst.G.Edges() {
		out[edgeKey(e.Src, e.Dst)] = inst.EdgeFeat[i]
	}
	return out
}

// newColumn builds an n×1 tensor from a slice.
func newColumn(xs []float64) *tensor.Tensor {
	t := tensor.Zeros(len(xs), 1)
	copy(t.Data, xs)
	return t
}
